(* Regenerate the golden streams used by test_trace.ml / test_span.ml:

     dune exec test/gen_golden.exe          > test/golden/treeadd_p2_trace.jsonl
     dune exec test/gen_golden.exe -- spans > test/golden/treeadd_p2_spans.jsonl

   Must stay in lockstep with Test_trace.run_treeadd and
   Test_span.run_treeadd: 2 processors, treeadd at the minimum tree size,
   site ids reset first. *)

open Olden
module B = Olden_benchmarks

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "trace" in
  Site.reset ();
  let cfg = Config.make ~nprocs:2 () in
  match mode with
  | "spans" ->
      let o, spans =
        Span.collect (fun () ->
            B.Treeadd.spec.B.Common.run cfg ~scale:1_000_000)
      in
      assert o.B.Common.ok;
      print_string (Span.jsonl spans)
  | _ ->
      let o, events =
        Trace.collect (fun () ->
            B.Treeadd.spec.B.Common.run cfg ~scale:1_000_000)
      in
      assert o.B.Common.ok;
      print_string (Jsonl.to_string events)
