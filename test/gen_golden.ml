(* Regenerate the golden trace stream used by test_trace.ml:

     dune exec test/gen_golden.exe > test/golden/treeadd_p2_trace.jsonl

   Must stay in lockstep with Test_trace.run_treeadd: 2 processors,
   treeadd at the minimum tree size, site ids reset first. *)

open Olden
module B = Olden_benchmarks

let () =
  Site.reset ();
  let cfg = Config.make ~nprocs:2 () in
  let o, events =
    Trace.collect (fun () -> B.Treeadd.spec.B.Common.run cfg ~scale:1_000_000)
  in
  assert o.B.Common.ok;
  print_string (Jsonl.to_string events)
