(* Test runner for the whole reproduction. *)

let () =
  Alcotest.run "olden"
    [
      ("heap", Test_heap.suite);
      ("machine", Test_machine.suite);
      ("cache", Test_cache.suite);
      ("engine", Test_engine.suite);
      ("coherence", Test_coherence.suite);
      ("compiler", Test_compiler.suite);
      ("interp", Test_interp.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("trace", Test_trace.suite);
      ("profile", Test_profile.suite);
      ("chaos", Test_chaos.suite);
      ("recovery", Test_recovery.suite);
      ("failover", Test_failover.suite);
      ("monitor", Test_monitor.suite);
      ("span", Test_span.suite);
      ("domains", Test_domains.suite);
      ("serving", Test_serving.suite);
    ]
