(* The tracing subsystem: JSON printing/parsing, the metrics registry,
   the emitter guard's zero-allocation property, exporter validity, and
   the golden treeadd event stream (byte-stable across runs and against
   the committed file). *)

open Olden
module B = Olden_benchmarks

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

(* --- Json ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 42);
        ("b", Json.List [ Json.Null; Json.Bool true; Json.Float 1.5 ]);
        ("c", Json.String "quo\"te\nline");
        ("d", Json.Obj []);
      ]
  in
  let s = Json.to_string j in
  check bool "roundtrip" true (Json.of_string s = j);
  check bool "pretty parses too" true
    (Json.of_string (Json.to_pretty_string j) = j);
  check string "deterministic rendering" s
    (Json.to_string (Json.of_string s))

let test_json_accessors () =
  let j = Json.of_string {|{"x": 7, "ys": ["a", "b"]}|} in
  check (Alcotest.option int) "member int" (Some 7)
    (Option.bind (Json.member "x" j) Json.int_value);
  check int "list length" 2
    (List.length (Json.to_list (Option.get (Json.member "ys" j))));
  check bool "missing member" true (Json.member "zzz" j = None)

let test_csv_field_quoting () =
  (* RFC 4180: fields with commas, quotes, or line breaks are wrapped in
     double quotes, embedded quotes doubled; plain fields pass through *)
  check string "plain" "t->left@treeadd" (Json.csv_field "t->left@treeadd");
  check string "comma" "\"a,b\"" (Json.csv_field "a,b");
  check string "quote" "\"say \"\"hi\"\"\"" (Json.csv_field "say \"hi\"");
  check string "newline" "\"two\nlines\"" (Json.csv_field "two\nlines");
  check string "empty" "" (Json.csv_field "")

(* --- Metrics -------------------------------------------------------------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "migrations" ~labels:[ ("proc", "0") ] in
  Metrics.inc c;
  Metrics.add c 4;
  (* find-or-create returns the same counter *)
  Metrics.inc (Metrics.counter m "migrations" ~labels:[ ("proc", "0") ]);
  check int "accumulated" 6
    (Metrics.count (Metrics.counter m "migrations" ~labels:[ ("proc", "0") ]));
  let h = Metrics.histogram m "latency" in
  List.iter (Metrics.observe h) [ 0; 1; 2; 100; 5000 ];
  check int "observations" 5 (Metrics.observations h);
  let j = Metrics.to_json m in
  check int "two entries" 2 (List.length (Json.to_list j));
  (* snapshot is byte-stable *)
  check string "stable snapshot" (Json.to_string j)
    (Json.to_string (Metrics.to_json m))

let test_metrics_quantile () =
  let m = Metrics.create () in
  (* empty histogram: every accessor is defined and zero *)
  let h = Metrics.histogram m "empty" in
  check int "empty p50" 0 (Metrics.quantile h 0.5);
  check int "empty p999" 0 (Metrics.quantile h 0.999);
  check int "empty min" 0 (Metrics.min_value h);
  check int "empty max" 0 (Metrics.max_value h);
  (* single observation: every quantile is exactly that value (the
     bucket bound is clamped to the observed maximum) *)
  let h1 = Metrics.histogram m "single" in
  Metrics.observe h1 5;
  List.iter
    (fun q -> check int "single-value quantile" 5 (Metrics.quantile h1 q))
    [ 0.; 0.5; 0.99; 1. ];
  (* single bucket, many observations: same clamping *)
  let hc = Metrics.histogram m "constant" in
  for _ = 1 to 100 do
    Metrics.observe hc 6
  done;
  check int "constant p50" 6 (Metrics.quantile hc 0.5);
  check int "constant p999" 6 (Metrics.quantile hc 0.999);
  (* exact boundary: 2 observations <= 1, 2 observations <= 3; the
     rank-2 (p50) observation is the last of the first bucket *)
  let hb = Metrics.histogram m "boundary" in
  List.iter (Metrics.observe hb) [ 1; 1; 2; 3 ];
  check int "boundary p50 = first bucket bound" 1 (Metrics.quantile hb 0.5);
  check int "boundary p75 = second bucket bound" 3 (Metrics.quantile hb 0.75);
  check int "boundary p100" 3 (Metrics.quantile hb 1.);
  check int "q clamped below" 1 (Metrics.quantile hb (-1.));
  check int "q clamped above" 3 (Metrics.quantile hb 2.);
  (* quantiles are monotone in q and bounded by min/max *)
  let hr = Metrics.histogram m "ramp" in
  List.iter (Metrics.observe hr) [ 0; 1; 2; 4; 9; 17; 170; 3000; 40000 ];
  let qs = List.map (Metrics.quantile hr) [ 0.1; 0.5; 0.9; 0.99; 1. ] in
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  check bool "monotone" true (mono qs);
  check bool "bounded" true
    (List.for_all
       (fun q -> q >= Metrics.min_value hr && q <= Metrics.max_value hr)
       qs);
  (* iter_buckets visits the populated buckets in bound order, counts
     summing to the observation count *)
  let bounds = ref [] and total = ref 0 in
  Metrics.iter_buckets hb (fun ~le ~n ->
      bounds := le :: !bounds;
      total := !total + n);
  check (Alcotest.list Alcotest.int) "populated bounds" [ 1; 3 ]
    (List.rev !bounds);
  check int "counts sum" (Metrics.observations hb) !total

let test_metrics_delta () =
  let m = Metrics.create () in
  let c = Metrics.counter m "moves" in
  let h = Metrics.histogram m "lat" in
  Metrics.add c 3;
  Metrics.observe h 10;
  let snap = Metrics.snapshot m in
  (* nothing changed: empty delta *)
  check string "empty delta" "[]" (Json.to_string (Metrics.delta_json m ~since:snap));
  Metrics.add c 4;
  Metrics.observe h 10;
  Metrics.observe h 100;
  let quiet = Metrics.counter m "quiet" in
  ignore quiet;
  let born = Metrics.counter m "born-later" in
  Metrics.inc born;
  let d = Json.to_list (Metrics.delta_json m ~since:snap) in
  (* changed entries only: the untouched "quiet" counter is omitted,
     the post-snapshot "born-later" counts from zero *)
  let names =
    List.filter_map
      (fun e -> Option.bind (Json.member "name" e) Json.string_value)
      d
  in
  check (Alcotest.list Alcotest.string) "changed entries, sorted"
    [ "born-later"; "lat"; "moves" ] names;
  let find name =
    List.find
      (fun e ->
        Option.bind (Json.member "name" e) Json.string_value = Some name)
      d
  in
  check (Alcotest.option Alcotest.int) "counter increment" (Some 4)
    (Option.bind (Json.member "value" (find "moves")) Json.int_value);
  check (Alcotest.option Alcotest.int) "new counter from zero" (Some 1)
    (Option.bind (Json.member "value" (find "born-later")) Json.int_value);
  let hist = Option.get (Json.member "histogram" (find "lat")) in
  check (Alcotest.option Alcotest.int) "windowed count" (Some 2)
    (Option.bind (Json.member "count" hist) Json.int_value);
  check (Alcotest.option Alcotest.int) "windowed sum" (Some 110)
    (Option.bind (Json.member "sum" hist) Json.int_value)

(* --- The emit guard allocates nothing when tracing is off ----------------- *)

let test_disabled_no_alloc () =
  assert (not (Trace.is_on ()));
  let probe () =
    (* the pattern every emission site uses *)
    for i = 1 to 10_000 do
      if Trace.is_on () then
        Trace.emit
          { Trace.time = i; proc = 0; tid = 0; site = 0; kind = Trace.Steal }
    done
  in
  probe ();
  (* warmed up *)
  let before = Gc.minor_words () in
  probe ();
  let words = Gc.minor_words () -. before in
  check bool "no allocation on the disabled path" true (words < 256.)

(* --- Collected benchmark runs --------------------------------------------- *)

(* A tiny deterministic treeadd: 2 processors, the minimum tree.  Sites
   are process-global, so reset ids first — repeated in-process runs then
   emit identical streams. *)
let run_treeadd () =
  Site.reset ();
  let cfg = Config.make ~nprocs:2 () in
  let o, events =
    Trace.collect (fun () ->
        B.Treeadd.spec.B.Common.run cfg ~scale:1_000_000)
  in
  check bool "verified" true o.B.Common.ok;
  events

let test_treeadd_stream () =
  let events = run_treeadd () in
  check bool "events emitted" true (Array.length events > 0);
  (* treeadd's heuristic picks migration everywhere, so the stream shows
     migrations and futures but no cache traffic *)
  let count p = Array.length (Array.of_seq (Seq.filter p (Array.to_seq events))) in
  check bool "migrations present" true
    (count (fun e -> match e.Trace.kind with
       | Trace.Migrate_send _ -> true | _ -> false) > 0);
  check bool "futures present" true
    (count (fun e -> match e.Trace.kind with
       | Trace.Future_spawn _ -> true | _ -> false) > 0);
  check int "spawns balance resolves"
    (count (fun e -> match e.Trace.kind with
       | Trace.Future_spawn _ -> true | _ -> false))
    (count (fun e -> match e.Trace.kind with
       | Trace.Future_resolve _ -> true | _ -> false));
  (* per-processor timestamps never run backwards *)
  let last = Hashtbl.create 4 in
  Array.iter
    (fun e ->
      let prev =
        Option.value ~default:min_int (Hashtbl.find_opt last e.Trace.proc)
      in
      check bool "clock monotone per processor" true (e.Trace.time >= prev);
      Hashtbl.replace last e.Trace.proc e.Trace.time)
    events

let test_byte_stable () =
  let a = Jsonl.to_string (run_treeadd ()) in
  let b = Jsonl.to_string (run_treeadd ()) in
  check string "two in-process runs render identically" a b

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden () =
  let got = Jsonl.to_string (run_treeadd ()) in
  let want = read_file "golden/treeadd_p2_trace.jsonl" in
  check string "matches the committed golden stream" want got

let test_metrics_snapshot_stable () =
  (* the machine-readable run report is byte-stable: every JSON emitter
     renders keys in fixed construction order, so two identical runs
     serialize identically *)
  let snap () =
    Site.reset ();
    let cfg = Config.make ~nprocs:2 () in
    let o, events =
      Trace.collect (fun () ->
          B.Treeadd.spec.B.Common.run cfg ~scale:1_000_000)
    in
    check bool "verified" true o.B.Common.ok;
    Json.to_string
      (B.Common.metrics_snapshot ~events B.Treeadd.spec ~cfg ~scale:1_000_000
         o)
  in
  check string "two identical runs snapshot identically" (snap ()) (snap ())

let test_em3d_run_twice_deterministic () =
  (* the fast-path dereference engine (memoized translations, bitmask
     coherence sets, direct dispatch) must not introduce any host-side
     nondeterminism: two identical em3d runs at 8 processors produce
     byte-identical metrics snapshots *)
  let snap () =
    Site.reset ();
    let cfg = Config.make ~nprocs:8 () in
    let o, events =
      Trace.collect (fun () -> B.Em3d.spec.B.Common.run cfg ~scale:1024)
    in
    check bool "verified" true o.B.Common.ok;
    Json.to_string
      (B.Common.metrics_snapshot ~events B.Em3d.spec ~cfg ~scale:1024 o)
  in
  check string "em3d run-twice byte-identical" (snap ()) (snap ())

let test_cache_events_em3d () =
  (* em3d is an M+C benchmark: its cache sites exercise the caching layer,
     so hits and line fetches appear in the stream *)
  Site.reset ();
  let cfg = Config.make ~nprocs:2 () in
  let o, events =
    Trace.collect (fun () -> B.Em3d.spec.B.Common.run cfg ~scale:1024)
  in
  check bool "verified" true o.B.Common.ok;
  let has p = Array.exists p events in
  check bool "cache misses traced" true
    (has (fun e -> match e.Trace.kind with
       | Trace.Cache_miss _ -> true | _ -> false));
  check bool "cache hits traced" true
    (has (fun e -> match e.Trace.kind with
       | Trace.Cache_hit _ -> true | _ -> false))

(* --- Exporters ------------------------------------------------------------ *)

let test_chrome_export () =
  let events = run_treeadd () in
  let j = Json.of_string (Chrome_trace.to_string ~nprocs:2 events) in
  let te = Json.to_list (Option.get (Json.member "traceEvents" j)) in
  check bool "has events" true (List.length te > Array.length events);
  (* every record carries the required trace_event fields *)
  List.iter
    (fun e ->
      check bool "has ph" true (Json.member "ph" e <> None);
      check bool "has pid" true (Json.member "pid" e <> None))
    te;
  (* flow arrows pair up: every start has a finish *)
  let phs =
    List.filter_map (fun e -> Option.bind (Json.member "ph" e) Json.string_value) te
  in
  let n p = List.length (List.filter (String.equal p) phs) in
  check int "flow starts match finishes" (n "s") (n "f")

let test_jsonl_export () =
  let events = run_treeadd () in
  let lines =
    String.split_on_char '\n' (String.trim (Jsonl.to_string events))
  in
  check int "one line per event" (Array.length events) (List.length lines);
  List.iter
    (fun line ->
      let j = Json.of_string line in
      check bool "has t/proc/ev" true
        (Json.member "t" j <> None
        && Json.member "proc" j <> None
        && Json.member "ev" j <> None))
    lines

let test_recorder () =
  let events = run_treeadd () in
  let m = Recorder.of_events events in
  let migrations =
    Array.length
      (Array.of_seq
         (Seq.filter
            (fun e ->
              match e.Trace.kind with
              | Trace.Migrate_arrive _ -> true
              | _ -> false)
            (Array.to_seq events)))
  in
  check int "one latency sample per completed migration" migrations
    (Metrics.observations (Metrics.histogram m "migration_latency_cycles"));
  check bool "per-kind counters populated" true
    (Metrics.count
       (Metrics.counter m "events" ~labels:[ ("kind", "migrate_send") ])
    > 0)

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "csv field quoting" `Quick test_csv_field_quoting;
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics quantiles" `Quick test_metrics_quantile;
    Alcotest.test_case "metrics windowed deltas" `Quick test_metrics_delta;
    Alcotest.test_case "disabled emit allocates nothing" `Quick
      test_disabled_no_alloc;
    Alcotest.test_case "treeadd stream shape" `Quick test_treeadd_stream;
    Alcotest.test_case "byte-stable stream" `Quick test_byte_stable;
    Alcotest.test_case "golden treeadd stream" `Quick test_golden;
    Alcotest.test_case "byte-stable metrics snapshot" `Quick
      test_metrics_snapshot_stable;
    Alcotest.test_case "em3d cache events" `Quick test_cache_events_em3d;
    Alcotest.test_case "em3d run-twice determinism" `Quick
      test_em3d_run_twice_deterministic;
    Alcotest.test_case "chrome exporter" `Quick test_chrome_export;
    Alcotest.test_case "jsonl exporter" `Quick test_jsonl_export;
    Alcotest.test_case "recorder metrics" `Quick test_recorder;
  ]
