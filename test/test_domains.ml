(* Multi-shard host execution: the conservative parallel-DES scheduler
   partitions simulated processors across shards and exchanges
   cross-shard events through epoch mailboxes, and the result must be a
   pure function of the program and configuration — byte-identical
   metrics snapshots, span streams, and time-series exports for any
   shard count, faults off or on (including crash-and-restart runs),
   with the multi-shard machinery demonstrably engaged. *)

open Olden
module B = Olden_benchmarks
module Event_queue = Olden_runtime.Event_queue

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

(* Small scales so the whole suite stays fast (test_benchmarks' table). *)
let test_scale (s : B.Common.spec) =
  match s.B.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

let snapshot ?faults ~host_domains (s : B.Common.spec) =
  Site.reset ();
  let cfg = Config.make ~nprocs:8 ~host_domains ?faults () in
  let scale = test_scale s in
  let o, events = Trace.collect (fun () -> s.B.Common.run cfg ~scale) in
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  Json.to_string (B.Common.metrics_snapshot ~events s ~cfg ~scale o)

(* --- Snapshots are byte-identical for any shard count ------------------- *)

let test_sharding_invisible_faults_off () =
  List.iter
    (fun (s : B.Common.spec) ->
      let base = snapshot ~host_domains:1 s in
      List.iter
        (fun d ->
          check string
            (Printf.sprintf "%s: domains=%d = domains=1" s.B.Common.name d)
            base
            (snapshot ~host_domains:d s))
        [ 2; 4 ])
    B.Registry.specs

let test_sharding_invisible_faulty sched () =
  List.iter
    (fun (s : B.Common.spec) ->
      let faults () = Option.get (Config.Faults.by_name sched ~seed:7) in
      let base = snapshot ~faults:(faults ()) ~host_domains:1 s in
      List.iter
        (fun d ->
          check string
            (Printf.sprintf "%s %s: domains=%d = domains=1" s.B.Common.name
               sched d)
            base
            (snapshot ~faults:(faults ()) ~host_domains:d s))
        [ 2; 4 ])
    B.Registry.specs

(* --- Span and time-series exports, too ----------------------------------- *)

let spans_jsonl ~host_domains (s : B.Common.spec) =
  Site.reset ();
  let cfg = Config.make ~nprocs:8 ~host_domains () in
  let o, spans =
    Span.collect (fun () -> s.B.Common.run cfg ~scale:(test_scale s))
  in
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  Span.jsonl spans

let timeseries_jsonl ~host_domains (s : B.Common.spec) =
  Site.reset ();
  let cfg = Config.make ~nprocs:8 ~host_domains () in
  (B.Common.hooks ()).monitor_interval <- Some 10_000;
  let o =
    Fun.protect
      ~finally:(fun () -> (B.Common.hooks ()).monitor_interval <- None)
      (fun () -> s.B.Common.run cfg ~scale:(test_scale s))
  in
  let m = Option.get (B.Common.hooks ()).last_monitor in
  (B.Common.hooks ()).last_monitor <- None;
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  Monitor.timeseries_jsonl ~site_names:(Site.labels ())
    ~header:[ ("benchmark", Json.String s.B.Common.name) ]
    m

let test_exports_identical () =
  List.iter
    (fun name ->
      let s =
        List.find
          (fun (s : B.Common.spec) -> s.B.Common.name = name)
          B.Registry.specs
      in
      check string
        (name ^ " span stream: domains=4 = domains=1")
        (spans_jsonl ~host_domains:1 s)
        (spans_jsonl ~host_domains:4 s);
      check string
        (name ^ " timeseries: domains=4 = domains=1")
        (timeseries_jsonl ~host_domains:1 s)
        (timeseries_jsonl ~host_domains:4 s))
    [ "TreeAdd"; "EM3D" ]

(* --- Determinism: run-twice at domains=4 --------------------------------- *)

let test_run_twice () =
  List.iter
    (fun (s : B.Common.spec) ->
      let faults = Config.Faults.mixed ~seed:7 () in
      check string
        (s.B.Common.name ^ ": domains=4 run-twice")
        (snapshot ~faults ~host_domains:4 s)
        (snapshot ~faults ~host_domains:4 s))
    [ B.Treeadd.spec; B.Em3d.spec; B.Health.spec ]

(* --- The sharded path actually engages ----------------------------------- *)

let test_machinery_engages () =
  let s = B.Em3d.spec in
  let run ~host_domains =
    Site.reset ();
    let report = ref None in
    (B.Common.hooks ()).inspect_engine <-
      Some (fun e -> report := Some (Engine.domain_report e));
    Fun.protect
      ~finally:(fun () -> (B.Common.hooks ()).inspect_engine <- None)
      (fun () ->
        let o =
          s.B.Common.run
            (Config.make ~nprocs:8 ~host_domains ())
            ~scale:(test_scale s)
        in
        check bool "verified" true o.B.Common.ok);
    Option.get !report
  in
  let single = run ~host_domains:1 in
  check int "one shard" 1 single.Engine.shards;
  check int "one shard: nothing deferred" 0 single.Engine.deferred_events;
  check int "one shard: no epochs" 0 single.Engine.epochs;
  let quad = run ~host_domains:4 in
  check int "four shards" 4 quad.Engine.shards;
  check bool "cross-shard events were deferred" true
    (quad.Engine.deferred_events > 0);
  check bool "epoch barriers were taken" true (quad.Engine.epochs > 0)

(* --- Sweep driver: pool size is invisible -------------------------------- *)

let test_pool_order () =
  let jobs = List.init 20 Fun.id in
  let run domains =
    let vs, st = Domain_pool.map ~domains (fun i -> (i * i) + 1) jobs in
    check int "workers spawned" (min domains 20) st.Domain_pool.domains;
    check int "per-worker stats sized to the pool"
      st.Domain_pool.domains
      (Array.length st.Domain_pool.busy_seconds);
    vs
  in
  let inline = run 1 in
  check (Alcotest.list int) "submission order"
    (List.map (fun i -> (i * i) + 1) jobs)
    inline;
  check (Alcotest.list int) "pool of 4 = inline" inline (run 4)

let test_pool_exception () =
  (* the earliest failed job in submission order wins, whatever domain
     ran it, and only after the pool has drained *)
  let ran = Array.make 16 false in
  match
    Domain_pool.map ~domains:4
      (fun i ->
        ran.(i) <- true;
        if i = 5 || i = 12 then failwith (Printf.sprintf "boom %d" i))
      (List.init 16 Fun.id)
  with
  | _ -> Alcotest.fail "expected the sweep to re-raise"
  | exception Failure m ->
      check string "first failure by submission order" "boom 5" m;
      check bool "later jobs still ran" true (Array.for_all Fun.id ran)

let test_pool_runs_simulations () =
  (* simulator runs as pool jobs: every formerly global piece of state
     (site registry, trace emitter, hooks, engine pointer) is
     domain-local, so results off a 4-domain pool must be byte-identical
     to the inline ones *)
  let specs = [ B.Treeadd.spec; B.Em3d.spec; B.Health.spec ] in
  let points =
    List.concat_map
      (fun (s : B.Common.spec) ->
        List.map
          (fun sched -> (s.B.Common.name ^ "/" ^ sched, (s, sched)))
          [ "none"; "mix"; "crash-mix" ])
      specs
  in
  let job ~label:_ ((s : B.Common.spec), sched) =
    let faults =
      if sched = "none" then None
      else Some (Option.get (Config.Faults.by_name sched ~seed:7))
    in
    snapshot ?faults ~host_domains:2 s
  in
  let run domains = Sweep.run ~domains job points in
  let inline, _ = run 1 in
  let pooled, st = run 4 in
  check int "pool of 4" 4 st.Domain_pool.domains;
  List.iter2
    (fun (a : string Sweep.point) (b : string Sweep.point) ->
      check string (a.Sweep.label ^ ": submission order kept") a.Sweep.label
        b.Sweep.label;
      check string (a.Sweep.label ^ ": pooled = inline") a.Sweep.value
        b.Sweep.value)
    inline pooled;
  check bool "efficiency within [0,1]" true
    (let e = Domain_pool.efficiency st in
     e >= 0. && e <= 1.)

(* --- Event_queue.take releases the vacated slot -------------------------- *)

let test_take_releases_payload () =
  (* after popping the last element the queue must not retain the
     payload: a weak pointer to it dies at the next major collection *)
  let q = Event_queue.create () in
  let w = Weak.create 1 in
  (let payload = ref 42 in
   Weak.set w 0 (Some payload);
   Event_queue.push q ~ready_at:1 ~seq:0 payload;
   let got = Event_queue.take q in
   check int "payload round-trips" 42 !(got.Event_queue.payload));
  Gc.full_major ();
  Gc.full_major ();
  check bool "vacated slot does not retain the payload" true
    (Weak.get w 0 = None)

let suite =
  [
    Alcotest.test_case "snapshots identical for 1/2/4 shards (faults off)"
      `Quick test_sharding_invisible_faults_off;
    Alcotest.test_case "snapshots identical for 1/2/4 shards (mix)" `Quick
      (test_sharding_invisible_faulty "mix");
    Alcotest.test_case "snapshots identical for 1/2/4 shards (crash-mix)"
      `Quick
      (test_sharding_invisible_faulty "crash-mix");
    Alcotest.test_case "span + timeseries exports identical across shards"
      `Quick test_exports_identical;
    Alcotest.test_case "domains=4 run-twice byte-identical" `Quick
      test_run_twice;
    Alcotest.test_case "multi-shard machinery engages" `Quick
      test_machinery_engages;
    Alcotest.test_case "pool keeps submission order for any size" `Quick
      test_pool_order;
    Alcotest.test_case "pool re-raises the earliest failure" `Quick
      test_pool_exception;
    Alcotest.test_case "simulations on a pool = inline, byte for byte"
      `Quick test_pool_runs_simulations;
    Alcotest.test_case "Event_queue.take releases the vacated slot" `Quick
      test_take_releases_payload;
  ]
