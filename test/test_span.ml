(* Causal span tracing: the golden 2-processor treeadd span tree, byte
   determinism of the olden-spans/v1 export across all ten benchmarks,
   exemplar trace ids naming real completed episodes whose root duration
   is the recorded latency, exact hop tiling of migration episodes, the
   flight-recorder dump on a forced deadlock, and zero perturbation of
   the simulation whether tracing is on or off. *)

open Olden
module B = Olden_benchmarks

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

(* Small scales so the whole suite stays fast (test_chaos's table). *)
let test_scale (s : B.Common.spec) =
  match s.B.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

let spec name =
  List.find (fun (s : B.Common.spec) -> s.B.Common.name = name)
    B.Registry.specs

(* One spanned run: fresh site registry so site ids are reproducible. *)
let spanned ?faults ?(nprocs = 8) ?(coherence = Config.Local)
    (s : B.Common.spec) =
  Site.reset ();
  let cfg = Config.make ~nprocs ~coherence ?faults () in
  let o, spans =
    Span.collect (fun () -> s.B.Common.run cfg ~scale:(test_scale s))
  in
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  (o, spans)

(* --- Golden 2-processor treeadd span tree -------------------------------- *)

let run_treeadd () =
  Site.reset ();
  let cfg = Config.make ~nprocs:2 () in
  let o, spans =
    Span.collect (fun () ->
        B.Treeadd.spec.B.Common.run cfg ~scale:1_000_000)
  in
  check bool "verified" true o.B.Common.ok;
  spans

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_golden () =
  let got = Span.jsonl (run_treeadd ()) in
  let want = read_file "golden/treeadd_p2_spans.jsonl" in
  check string "matches the committed golden span stream" want got

let test_treeadd_stream () =
  let spans = run_treeadd () in
  check bool "spans emitted" true (Array.length spans > 0);
  let count p =
    Array.fold_left (fun n s -> if p s then n + 1 else n) 0 spans
  in
  (* treeadd migrates: its episodes carry the full hop chain *)
  check bool "migrate episodes present" true
    (count (fun (s : Span.span) ->
         s.Span.kind = Span.Deref && s.Span.b = 2) > 0);
  check bool "send hops present" true
    (count (fun s -> s.Span.kind = Span.Send) > 0);
  (* every non-root names a parent that exists, with the same trace id *)
  let by_id = Hashtbl.create 512 in
  Array.iter (fun (s : Span.span) -> Hashtbl.replace by_id s.Span.id s) spans;
  Array.iter
    (fun (s : Span.span) ->
      if s.Span.parent >= 0 then
        match Hashtbl.find_opt by_id s.Span.parent with
        | None -> Alcotest.failf "span %d: parent %d missing" s.Span.id s.Span.parent
        | Some p ->
            check bool "child shares its parent's trace id" true
              (p.Span.trace_proc = s.Span.trace_proc
              && p.Span.trace_seq = s.Span.trace_seq))
    spans

(* MST's accumulation phase sends return stubs home: their roots carry
   the same propagated hop chain as migrations. *)
let test_return_stub_roots () =
  let _, spans = spanned (spec "MST") in
  let returns =
    Array.to_list spans
    |> List.filter (fun (s : Span.span) -> s.Span.kind = Span.Return)
  in
  check bool "return-stub roots present" true (returns <> []);
  List.iter
    (fun (r : Span.span) ->
      check int "return roots have no parent" (-1) r.Span.parent;
      let kids =
        Array.to_list spans
        |> List.filter (fun (s : Span.span) -> s.Span.parent = r.Span.id)
      in
      check bool "return root carries its hop chain" true
        (List.exists (fun (s : Span.span) -> s.Span.kind = Span.Send) kids))
    returns

(* --- Determinism: same seed, byte-identical export ------------------------ *)

let test_run_twice_byte_identical () =
  List.iter
    (fun (s : B.Common.spec) ->
      let _, spans1 = spanned s in
      let _, spans2 = spanned s in
      check string
        (s.B.Common.name ^ " olden-spans/v1 byte-identical")
        (Span.jsonl spans1) (Span.jsonl spans2))
    B.Registry.specs

(* --- Exemplars name real episodes ----------------------------------------- *)

(* Run with the monitor and the span collector together (what olden-run
   explain does) and hand back both. *)
let monitored_spanned ?faults ?(nprocs = 8) ?(coherence = Config.Local)
    (s : B.Common.spec) =
  Site.reset ();
  let cfg = Config.make ~nprocs ~coherence ?faults () in
  (B.Common.hooks ()).monitor_interval <- Some 10_000;
  let o, spans =
    Fun.protect
      ~finally:(fun () -> (B.Common.hooks ()).monitor_interval <- None)
      (fun () ->
        Span.collect (fun () -> s.B.Common.run cfg ~scale:(test_scale s)))
  in
  let m = Option.get (B.Common.hooks ()).last_monitor in
  (B.Common.hooks ()).last_monitor <- None;
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  (m, spans)

let root_of spans ~trace_proc ~trace_seq =
  Array.fold_left
    (fun acc (s : Span.span) ->
      if
        s.Span.parent = -1
        && s.Span.trace_proc = trace_proc
        && s.Span.trace_seq = trace_seq
      then Some s
      else acc)
    None spans

let check_exemplars name (m : Monitor.t) spans =
  let exemplars = Monitor.exemplars ~percentile:0.99 m in
  check bool (name ^ " retained exemplars") true (exemplars <> []);
  List.iter
    (fun (e : Monitor.exemplar) ->
      match
        root_of spans ~trace_proc:e.Monitor.ex_trace_proc
          ~trace_seq:e.Monitor.ex_trace_seq
      with
      | None ->
          Alcotest.failf "%s: exemplar trace %d:%d has no completed root"
            name e.Monitor.ex_trace_proc e.Monitor.ex_trace_seq
      | Some root ->
          check bool (name ^ " exemplar root is a dereference") true
            (root.Span.kind = Span.Deref);
          check int
            (name ^ " exemplar latency equals the root span duration")
            e.Monitor.ex_cycles
            (root.Span.t1 - root.Span.t0);
          check int
            (name ^ " exemplar mechanism matches the root")
            (Monitor.mech_index e.Monitor.ex_mech)
            root.Span.b)
    exemplars

let test_exemplars_real () =
  let m, spans =
    monitored_spanned ~faults:(Config.Faults.mixed ~seed:1 ()) (spec "EM3D")
  in
  check_exemplars "em3d/mix" m spans;
  let m, spans =
    monitored_spanned
      ~faults:(Config.Faults.crash_mix ~seed:2 ())
      ~coherence:Config.Global (spec "Health")
  in
  check_exemplars "health/crash-mix" m spans

(* --- Hop accounting: the chain tiles the episode -------------------------- *)

let test_hop_tiling () =
  let _, spans = spanned ~faults:(Config.Faults.mixed ~seed:1 ()) (spec "EM3D") in
  let checked = ref 0 in
  Array.iter
    (fun (root : Span.span) ->
      if root.Span.parent = -1 && root.Span.kind = Span.Deref && root.Span.b = 2
      then begin
        (* a migrated dereference: its direct hop children are contiguous
           and tile [first hop start, episode end] exactly — the per-hop
           cycles the explain view prints sum to the episode latency *)
        let hops =
          Array.to_list spans
          |> List.filter (fun (s : Span.span) ->
                 s.Span.parent = root.Span.id && Span.is_hop s.Span.kind)
          |> List.sort (fun (a : Span.span) b ->
                 compare (a.Span.t0, a.Span.id) (b.Span.t0, b.Span.id))
        in
        check bool "migrate episode has hops" true (hops <> []);
        let rec contiguous t = function
          | [] -> t
          | (h : Span.span) :: rest ->
              check int "hops contiguous" t h.Span.t0;
              contiguous h.Span.t1 rest
        in
        let t_end = contiguous (List.hd hops).Span.t0 hops in
        check int "last hop ends at the episode end" root.Span.t1 t_end;
        let hop_sum =
          List.fold_left (fun a (h : Span.span) -> a + h.Span.t1 - h.Span.t0) 0 hops
        in
        check bool "hop cycles within the episode latency" true
          (hop_sum <= root.Span.t1 - root.Span.t0);
        incr checked
      end)
    spans;
  check bool "saw migrated episodes" true (!checked > 0)

(* --- Flight recorder ------------------------------------------------------- *)

let test_flight_dump_on_deadlock () =
  let path = Filename.temp_file "olden_flight" ".dump" in
  Span.flight_set_path path;
  Span.flight_enable ();
  let site = Site.migrate "t.f" in
  let msg =
    Fun.protect
      ~finally:(fun () -> Span.flight_disable ())
      (fun () ->
        match
          let engine = Engine.create (Config.make ~nprocs:4 ()) in
          Engine.exec engine (fun () ->
              let r = ref None in
              let f =
                Ops.future (fun () ->
                    let a = Ops.alloc ~proc:1 2 in
                    Ops.store_int site a 0 1;
                    match !r with
                    | Some g -> Ops.touch g
                    | None -> Value.Int 0)
              in
              let g = Ops.future (fun () -> Ops.touch f) in
              r := Some g;
              ignore (Ops.touch f))
        with
        | exception Olden_runtime.Engine.Deadlock msg -> msg
        | () -> Alcotest.fail "expected a deadlock")
  in
  (* the enriched report: last span per parked processor + dump path *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check bool "report names the last span per parked proc" true
    (contains msg "last span per parked proc");
  check bool "report names the dump file" true
    (contains msg ("flight recorder: " ^ path));
  let dump = read_file path in
  Sys.remove path;
  check bool "dump states the reason" true (contains dump "reason: deadlock");
  check bool "dump carries machine state" true (contains dump "machine state:");
  check bool "dump replays the last span events" true
    (contains dump "last events (oldest first):");
  check bool "dump shows dereference spans" true (contains dump "deref")

(* --- Off means off ---------------------------------------------------------- *)

let test_off_by_default () =
  check bool "no span sink installed" false (Span.is_on ());
  (* the hooks are no-ops rather than errors when nothing is installed *)
  Span.child ~kind:Span.Drop ~proc:0 ~t0:0 ~t1:0 ~a:0 ~b:0;
  Span.clear ();
  check int "no ambient trace" (-1) (Span.trace_proc ())

let test_span_neutral () =
  (* collecting spans must not perturb the simulation: identical result,
     cycles, and statistics with the collector on and off *)
  let s = spec "MST" in
  Site.reset ();
  let plain = s.B.Common.run (Config.make ~nprocs:8 ()) ~scale:(test_scale s) in
  let o, _ = spanned s in
  check string "checksum unchanged" plain.B.Common.checksum o.B.Common.checksum;
  check int "total cycles unchanged" plain.B.Common.total_cycles
    o.B.Common.total_cycles;
  check string "stats unchanged"
    (Json.to_string (Stats.to_json plain.B.Common.total_stats))
    (Json.to_string (Stats.to_json o.B.Common.total_stats))

(* --- Chrome export ---------------------------------------------------------- *)

let test_chrome_export () =
  let spans = run_treeadd () in
  let j = Json.of_string (Span.chrome_to_string ~nprocs:2 spans) in
  let events = Json.to_list (Option.get (Json.member "traceEvents" j)) in
  check bool "has events" true (events <> []);
  (* cross-processor episodes produce flow arrows in start/finish pairs *)
  let phase e =
    Option.get (Option.bind (Json.member "ph" e) Json.string_value)
  in
  let starts = List.length (List.filter (fun e -> phase e = "s") events) in
  let finishes = List.length (List.filter (fun e -> phase e = "f") events) in
  check bool "flow arrows present" true (starts > 0);
  check int "flow starts pair with finishes" starts finishes

let suite =
  [
    Alcotest.test_case "golden treeadd span stream" `Quick test_golden;
    Alcotest.test_case "treeadd span tree well-formed" `Quick
      test_treeadd_stream;
    Alcotest.test_case "return stubs open propagated roots" `Quick
      test_return_stub_roots;
    Alcotest.test_case "run-twice byte-identical export (all ten)" `Slow
      test_run_twice_byte_identical;
    Alcotest.test_case "exemplars name real episodes" `Quick
      test_exemplars_real;
    Alcotest.test_case "migration hops tile the episode" `Quick
      test_hop_tiling;
    Alcotest.test_case "flight recorder dumps on deadlock" `Quick
      test_flight_dump_on_deadlock;
    Alcotest.test_case "off by default" `Quick test_off_by_default;
    Alcotest.test_case "span collection never perturbs the run" `Quick
      test_span_neutral;
    Alcotest.test_case "chrome export flow arrows" `Quick test_chrome_export;
  ]
