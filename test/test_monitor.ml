(* The simulated-time monitor: interval windows reconcile exactly with
   the end-of-run totals, monitored runs are cycle-identical to
   unmonitored ones, the JSONL/CSV exports are byte-deterministic across
   all ten benchmarks, latency quantiles are ordered and classified by
   the mechanism that actually served each dereference, and the fault
   and recovery episode histograms agree with the Stats counters. *)

open Olden
module B = Olden_benchmarks

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* Small scales so the whole suite stays fast (test_chaos's table). *)
let test_scale (s : B.Common.spec) =
  match s.B.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

(* One monitored run: fresh site registry (so site ids — hence per-site
   labels — are reproducible), monitor installed for the duration. *)
let monitored ?faults ?(interval = 10_000) ?(nprocs = 8)
    ?(coherence = Config.Local) (s : B.Common.spec) =
  Site.reset ();
  let cfg = Config.make ~nprocs ~coherence ?faults () in
  (B.Common.hooks ()).monitor_interval <- Some interval;
  let o =
    Fun.protect
      ~finally:(fun () -> (B.Common.hooks ()).monitor_interval <- None)
      (fun () -> s.B.Common.run cfg ~scale:(test_scale s))
  in
  let m = Option.get (B.Common.hooks ()).last_monitor in
  (B.Common.hooks ()).last_monitor <- None;
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  (o, m)

let spec name =
  List.find (fun (s : B.Common.spec) -> s.B.Common.name = name)
    B.Registry.specs

(* --- Windows reconcile with end-of-run totals --------------------------- *)

let test_windows_reconcile () =
  List.iter
    (fun name ->
      let o, m = monitored (spec name) in
      let ws = Monitor.windows m in
      check bool (name ^ " has windows") true (ws <> []);
      (* contiguous coverage from 0 to the makespan *)
      let rec contiguous t0 = function
        | [] -> true
        | (w : Monitor.window) :: rest ->
            w.Monitor.w_t0 = t0
            && w.Monitor.w_t1 > w.Monitor.w_t0
            && contiguous w.Monitor.w_t1 rest
      in
      check bool (name ^ " windows contiguous") true (contiguous 0 ws);
      check int
        (name ^ " last window ends at the makespan")
        o.B.Common.total_cycles
        (List.nth ws (List.length ws - 1)).Monitor.w_t1;
      (* summing every window's delta of a counter telescopes back to
         the end-of-run total, for every Stats field *)
      let totals = Stats.fields o.B.Common.total_stats in
      List.iteri
        (fun i (fname, total) ->
          let summed =
            List.fold_left
              (fun acc (w : Monitor.window) ->
                acc + snd (List.nth w.Monitor.w_stats i))
              0 ws
          in
          check int (name ^ " windowed " ^ fname ^ " reconciles") total summed)
        totals;
      (* same for the per-processor busy/comm/idle/recovery cycles: the
         deltas sum to the machine's totals, and busy+comm+idle spans
         each window exactly *)
      let nprocs = Array.length (B.Common.hooks ()).last_busy in
      for p = 0 to nprocs - 1 do
        let sum pick =
          List.fold_left
            (fun acc (w : Monitor.window) -> acc + pick w.Monitor.w_procs.(p))
            0 ws
        in
        check int
          (Printf.sprintf "%s p%d busy reconciles" name p)
          (B.Common.hooks ()).last_busy.(p)
          (sum (fun (b, _, _, _) -> b));
        check int
          (Printf.sprintf "%s p%d comm reconciles" name p)
          (B.Common.hooks ()).last_comm.(p)
          (sum (fun (_, c, _, _) -> c));
        check int
          (Printf.sprintf "%s p%d busy+comm+idle spans the run" name p)
          o.B.Common.total_cycles
          (sum (fun (b, c, i, _) -> b + c + i))
      done)
    [ "TreeAdd"; "EM3D"; "Health" ]

(* --- The monitor never perturbs the simulation -------------------------- *)

let test_monitor_neutral () =
  let s = spec "MST" in
  Site.reset ();
  let plain = s.B.Common.run (Config.make ~nprocs:8 ()) ~scale:(test_scale s) in
  let o, _ = monitored s in
  check string "checksum unchanged" plain.B.Common.checksum o.B.Common.checksum;
  check int "total cycles unchanged" plain.B.Common.total_cycles
    o.B.Common.total_cycles;
  check string "stats unchanged"
    (Json.to_string (Stats.to_json plain.B.Common.total_stats))
    (Json.to_string (Stats.to_json o.B.Common.total_stats))

(* --- Determinism: same seed, byte-identical exports ---------------------- *)

let test_run_twice_byte_identical () =
  List.iter
    (fun (s : B.Common.spec) ->
      let render () =
        let _, m = monitored s in
        let site_names = Site.labels () in
        ( Monitor.timeseries_jsonl ~site_names
            ~header:[ ("benchmark", Json.String s.B.Common.name) ]
            m,
          Monitor.csv m )
      in
      let jsonl1, csv1 = render () in
      let jsonl2, csv2 = render () in
      check string (s.B.Common.name ^ " JSONL byte-identical") jsonl1 jsonl2;
      check string (s.B.Common.name ^ " CSV byte-identical") csv1 csv2)
    B.Registry.specs

(* --- Latency quantiles --------------------------------------------------- *)

let test_quantiles_ordered () =
  List.iter
    (fun name ->
      let _, m = monitored (spec name) in
      let summaries =
        Monitor.deref_summaries m @ Monitor.episode_summaries m
      in
      check bool (name ^ " records dereferences") true (summaries <> []);
      List.iter
        (fun (kind, (s : Monitor.summary)) ->
          let ctx = name ^ " " ^ kind in
          check bool (ctx ^ " count > 0") true (s.Monitor.count > 0);
          check bool (ctx ^ " ordered") true
            (s.Monitor.min <= s.Monitor.p50
            && s.Monitor.p50 <= s.Monitor.p90
            && s.Monitor.p90 <= s.Monitor.p99
            && s.Monitor.p99 <= s.Monitor.p999
            && s.Monitor.p999 <= s.Monitor.max))
        summaries)
    [ "TreeAdd"; "EM3D"; "Barnes-Hut" ]

let test_mechanism_classification () =
  (* TreeAdd is the paper's pure-migration benchmark: its episodes are
     local or migrate, never cache; EM3D (M+C) caches its node scans *)
  let _, mt = monitored (spec "TreeAdd") in
  let mechs m = List.map fst (Monitor.deref_summaries m) in
  check (Alcotest.list string) "treeadd mechanisms" [ "local"; "migrate" ]
    (mechs mt);
  let _, me = monitored (spec "EM3D") in
  check bool "em3d uses the cache" true (List.mem "cache" (mechs me));
  (* per-site rows are labelled and agree with the aggregate count *)
  let per_site = Monitor.site_summaries ~site_names:(Site.labels ()) mt in
  check bool "per-site rows exist" true (per_site <> []);
  List.iter
    (fun (_, label, _, (s : Monitor.summary)) ->
      check bool (label ^ " is labelled") true
        (String.contains label '@' && s.Monitor.count > 0))
    per_site;
  let aggregate =
    List.assoc "migrate" (Monitor.deref_summaries mt)
  in
  let site_total =
    List.fold_left
      (fun acc (_, _, mech, (s : Monitor.summary)) ->
        if mech = "migrate" then acc + s.Monitor.count else acc)
      0 per_site
  in
  check int "per-site migrate counts sum to the aggregate"
    aggregate.Monitor.count site_total

(* --- Faults and recovery episodes ---------------------------------------- *)

let test_fault_episodes () =
  let o, m =
    monitored ~faults:(Config.Faults.mixed ~seed:1 ()) (spec "EM3D")
  in
  let s = o.B.Common.total_stats in
  check bool "the schedule produced retries" true (s.Stats.retries > 0);
  let episodes = Monitor.episode_summaries m in
  (match List.assoc_opt "retry_wait" episodes with
  | None -> Alcotest.fail "no retry_wait histogram under a lossy schedule"
  | Some rw ->
      (* thread-transfer ack chains count retries in Stats without a
         per-wait callback, so the histogram sees at most stats.retries *)
      check bool "retry episodes within stats.retries" true
        (rw.Monitor.count > 0 && rw.Monitor.count <= s.Stats.retries);
      check bool "retry waits sum within retry_cycles" true
        (rw.Monitor.sum <= s.Stats.retry_cycles));
  let oc, mc =
    monitored ~faults:(Config.Faults.crash_mix ~seed:2 ())
      ~coherence:Config.Global (spec "Health")
  in
  let sc = oc.B.Common.total_stats in
  if sc.Stats.crashes > 0 then begin
    match List.assoc_opt "recovery_stall" (Monitor.episode_summaries mc) with
    | None -> Alcotest.fail "crashes happened but no recovery_stall episodes"
    | Some rs ->
        check int "one recovery episode per crash" sc.Stats.crashes
          rs.Monitor.count;
        check int "recovery stalls sum to the stats counter"
          sc.Stats.recovery_stall_cycles rs.Monitor.sum
  end

(* --- Export shapes -------------------------------------------------------- *)

let test_csv_shape () =
  let _, m = monitored (spec "Power") in
  let csv = Monitor.csv m in
  let lines =
    String.split_on_char '\n' csv |> List.filter (fun l -> l <> "")
  in
  check int "one header plus one row per window"
    (1 + List.length (Monitor.windows m))
    (List.length lines);
  let cols line = List.length (String.split_on_char ',' line) in
  let header = List.hd lines in
  let nstats = List.length (Stats.fields (Stats.create ())) in
  check int "one column per series" (2 + nstats + (8 * 4)) (cols header);
  List.iter
    (fun l -> check int "row width matches header" (cols header) (cols l))
    lines;
  check bool "header names the time columns" true
    (String.length header > 5 && String.sub header 0 5 = "t0,t1")

let test_jsonl_shape () =
  let _, m = monitored (spec "Power") in
  let jsonl =
    Monitor.timeseries_jsonl ~site_names:(Site.labels ())
      ~header:[ ("benchmark", Json.String "Power") ]
      m
  in
  let lines =
    String.split_on_char '\n' jsonl |> List.filter (fun l -> l <> "")
  in
  check int "header + windows + latency summary"
    (2 + List.length (Monitor.windows m))
    (List.length lines);
  let parsed = List.map Json.of_string lines in
  let head = List.hd parsed in
  check (Alcotest.option string) "schema stamped"
    (Some "olden-timeseries/v1")
    (Option.bind (Json.member "schema" head) Json.string_value);
  check (Alcotest.option int) "window count advertised"
    (Some (List.length (Monitor.windows m)))
    (Option.bind (Json.member "windows" head) Json.int_value);
  let last = List.nth parsed (List.length parsed - 1) in
  check bool "closing latency summary" true
    (Json.member "latency_total" last <> None)

(* --- Off means off -------------------------------------------------------- *)

let test_off_by_default () =
  check bool "no monitor installed" false (Monitor.is_on ());
  (* the hooks are no-ops rather than errors when nothing is installed *)
  Monitor.tick 1_000;
  Monitor.deref ~sid:0 ~mech:Monitor.Cache ~cycles:10;
  Monitor.retry_wait ~cycles:5

let suite =
  [
    Alcotest.test_case "windows reconcile with totals" `Quick
      test_windows_reconcile;
    Alcotest.test_case "monitor never perturbs the run" `Quick
      test_monitor_neutral;
    Alcotest.test_case "run-twice byte-identical exports (all ten)" `Slow
      test_run_twice_byte_identical;
    Alcotest.test_case "latency quantiles ordered" `Quick
      test_quantiles_ordered;
    Alcotest.test_case "mechanism classification" `Quick
      test_mechanism_classification;
    Alcotest.test_case "fault and recovery episodes" `Quick
      test_fault_episodes;
    Alcotest.test_case "csv shape" `Quick test_csv_shape;
    Alcotest.test_case "jsonl shape" `Quick test_jsonl_shape;
    Alcotest.test_case "off by default" `Quick test_off_by_default;
  ]
