(* Open-system serving: the seeded arrival process is a pure function of
   (seed, stream, index), the mix grammar round-trips and rejects junk,
   serving snapshots are byte-identical run-twice, across host domain
   counts, and under fault schedules, the CLI's serve knobs follow the
   exit-2 usage-error discipline, and request-class labels with CSV
   metacharacters survive the RFC 4180 quoting in the latency export. *)

open Olden
module Serving = Olden.Serving

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Small but non-trivial: ~40 arrivals over 4 streams at the default
   rate, heap scale 64 (depth-6 tree / 64-node graph). *)
let spec ?(profile = Config.Serving.Poisson) ?(rate = 2.0)
    ?(duration = 20_000) ?(arrival_seed = 1) () =
  Config.Serving.make ~profile ~rate ~duration ~arrival_seed ()

(* --- The arrival process is stateless ------------------------------------ *)

let test_interarrival_pure () =
  List.iter
    (fun profile ->
      let spec = spec ~profile () in
      let name = Config.Serving.profile_to_string spec.Config.Serving.profile in
      for stream = 0 to 3 do
        for index = 0 to 63 do
          let a = Serving.interarrival ~spec ~stream ~index in
          check int
            (Printf.sprintf "%s s%d i%d recomputable in isolation" name
               stream index)
            a
            (Serving.interarrival ~spec ~stream ~index);
          check bool
            (Printf.sprintf "%s s%d i%d gap >= 1 cycle" name stream index)
            true (a >= 1)
        done
      done)
    [ Config.Serving.Poisson; Config.Serving.Bursty; Config.Serving.Diurnal ]

let test_arrivals_canonical () =
  let spec = spec () in
  let arr = Serving.arrivals ~spec in
  check bool "non-empty" true (arr <> []);
  (* canonical (offset, stream, index) order, horizon respected *)
  let rec ordered = function
    | a :: (b :: _ as rest) ->
        (a.Serving.a_offset, a.Serving.a_stream, a.Serving.a_index)
        < (b.Serving.a_offset, b.Serving.a_stream, b.Serving.a_index)
        && ordered rest
    | _ -> true
  in
  check bool "canonical injection order" true (ordered arr);
  List.iter
    (fun a ->
      check bool "inside the horizon" true
        (a.Serving.a_offset >= 0
        && a.Serving.a_offset < spec.Config.Serving.duration))
    arr;
  (* per-stream offsets telescope from the pure gaps *)
  List.iter
    (fun a ->
      let off = ref 0 in
      for i = 0 to a.Serving.a_index do
        off :=
          !off
          + Serving.interarrival ~spec ~stream:a.Serving.a_stream ~index:i
      done;
      check int
        (Printf.sprintf "s%d i%d offset telescopes" a.Serving.a_stream
           a.Serving.a_index)
        !off a.Serving.a_offset)
    arr

let test_profiles_differ () =
  (* same seed, three different processes: the streams must not collide *)
  let offsets profile =
    List.map
      (fun a -> a.Serving.a_offset)
      (Serving.arrivals ~spec:(spec ~profile ()))
  in
  let p = offsets Config.Serving.Poisson in
  check bool "bursty differs from poisson" true
    (offsets Config.Serving.Bursty <> p);
  check bool "diurnal differs from poisson" true
    (offsets Config.Serving.Diurnal <> p)

(* --- The mix grammar ------------------------------------------------------ *)

let test_mix_grammar () =
  (match Serving.mix_of_string "point=6,scan=3,update=1" with
  | Ok m ->
      check string "default round-trips" "point=6,scan=3,update=1"
        (Serving.mix_to_string m);
      check string "equals default_mix"
        (Serving.mix_to_string Serving.default_mix)
        (Serving.mix_to_string m)
  | Error e -> Alcotest.failf "default mix rejected: %s" e);
  (match Serving.mix_of_string "update=2,point=1" with
  | Ok m ->
      check string "canonicalized to class order" "point=1,update=2"
        (Serving.mix_to_string m)
  | Error e -> Alcotest.failf "two-class mix rejected: %s" e);
  (match Serving.mix_of_string "scan" with
  | Ok m ->
      check string "bare class means weight 1" "scan=1"
        (Serving.mix_to_string m)
  | Error e -> Alcotest.failf "bare class rejected: %s" e);
  List.iter
    (fun (bad, why) ->
      match Serving.mix_of_string bad with
      | Ok _ -> Alcotest.failf "%S accepted (%s)" bad why
      | Error _ -> ())
    [
      ("delete=1", "unknown class");
      ("point=1,point=2", "duplicate class");
      ("point=0", "zero weight");
      ("scan=-3", "negative weight");
      ("point=x", "non-numeric weight");
      ("", "empty mix");
    ]

(* --- Serving snapshots are deterministic ---------------------------------- *)

let serve ?faults ?(host_domains = 1) ?(arrival_seed = 1) heap =
  Site.reset ();
  let replication =
    (* a fail-stop schedule needs a mirror for every home *)
    match faults with
    | Some f when f.Config.failstop > 0. -> Some Config.default_replica
    | _ -> None
  in
  let cfg = Config.make ~nprocs:8 ~host_domains ?faults ?replication () in
  let r =
    Serving.run ~scale:64 ~cfg ~spec:(spec ~arrival_seed ())
      ~mix:Serving.default_mix heap
  in
  check bool
    (Serving.heap_name heap ^ " all admitted requests completed")
    true r.Serving.r_ok;
  Json.to_string (Serving.result_json r)

let test_run_twice () =
  List.iter
    (fun heap ->
      check string
        (Serving.heap_name heap ^ " run-twice byte-identical")
        (serve heap) (serve heap))
    Serving.all_heaps

let test_domains_invisible () =
  List.iter
    (fun heap ->
      check string
        (Serving.heap_name heap ^ " domains=4 = domains=1")
        (serve ~host_domains:1 heap)
        (serve ~host_domains:4 heap))
    Serving.all_heaps

let test_chaos_deterministic () =
  (* under fault schedules the serving export stays a pure function of
     (arrival_seed, fault_seed, config), shard count included *)
  List.iter
    (fun sched ->
      let faults () = Option.get (Config.Faults.by_name sched ~seed:7) in
      let base = serve ~faults:(faults ()) ~host_domains:1 Serving.Treeadd in
      check string
        (sched ^ ": run-twice byte-identical")
        base
        (serve ~faults:(faults ()) ~host_domains:1 Serving.Treeadd);
      check string
        (sched ^ ": domains=4 = domains=1")
        base
        (serve ~faults:(faults ()) ~host_domains:4 Serving.Treeadd))
    [ "mix"; "crash-mix"; "failstop" ]

let test_seed_matters () =
  check bool "different arrival seeds serve different streams" true
    (serve ~arrival_seed:1 Serving.Em3d <> serve ~arrival_seed:2 Serving.Em3d)

let test_sweep_finds_knee () =
  Site.reset ();
  let cfg = Config.make ~nprocs:8 () in
  let points, knee =
    Serving.saturation_sweep ~scale:64 ~cfg ~spec:(spec ())
      ~mix:Serving.default_mix Serving.Treeadd
  in
  check int "one point per default rate"
    (List.length Serving.default_sweep_rates)
    (List.length points);
  (* TreeAdd saturates near 0.3 req/kcy at 8 processors, well inside the
     default rate ladder *)
  match knee with
  | None -> Alcotest.fail "no saturation knee on TreeAdd"
  | Some k ->
      check bool "knee is one of the offered rates" true
        (List.mem k Serving.default_sweep_rates);
      List.iter
        (fun (p : Serving.sweep_point) ->
          if p.Serving.sw_offered >= k then
            check bool
              (Printf.sprintf "rate %g past the knee runs saturated"
                 p.Serving.sw_offered)
              true
              (p.Serving.sw_achieved < 0.9 *. p.Serving.sw_offered))
        points

(* --- CLI: serve follows the exit-2 usage discipline ----------------------- *)

(* Relative to the test binary, not the cwd: dune runs the suite from
   the build sandbox but `dune exec` runs it from the project root. *)
let exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "olden_run.exe"

let tmp suffix = Filename.temp_file "olden_serving" suffix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cli_usage_errors () =
  List.iter
    (fun (args, expect) ->
      let outfile = tmp ".out" in
      let code =
        Sys.command (Printf.sprintf "%s serve %s > %s 2>&1" exe args outfile)
      in
      let out = read_file outfile in
      check int (args ^ ": exit code") 2 code;
      check bool
        (Printf.sprintf "%s: one-line usage error (got %S)" args out)
        true
        (contains out expect)
    )
    [
      (* --rate=-1, not "--rate -1": cmdliner would eat the bare -1 as an
         unknown option before serve's validation sees it *)
      ("treeadd --profile lognormal", "unknown --profile lognormal");
      ("treeadd --rate=-1", "--rate must be positive");
      ("treeadd --duration 0", "--duration must be at least 1 cycle");
      ("treeadd --streams 0", "--streams must be at least 1");
      ("treeadd --mix point=0", "weight");
      ("treeadd --mix delete=1", "unknown");
      ("btree", "unknown heap btree");
    ]

let test_cli_serve_out () =
  (* `serve --out` exports olden-serving/v1, byte-identical run-twice *)
  let run out =
    Sys.command
      (Printf.sprintf
         "%s serve treeadd --procs 8 --scale 64 --rate 1 --duration 20000 \
          --out %s > /dev/null 2>&1"
         exe out)
  in
  let out1 = tmp ".json" and out2 = tmp ".json" in
  check int "first run exits 0" 0 (run out1);
  check int "second run exits 0" 0 (run out2);
  let a = read_file out1 in
  check string "export run-twice byte-identical" a (read_file out2);
  check bool "carries the schema tag" true
    (contains a "\"schema\": \"olden-serving/v1\"");
  check bool "rows carry request summaries" true (contains a "\"request\"")

(* --- Request-class labels survive CSV quoting ----------------------------- *)

let test_csv_quoting () =
  (* a hostile class label — commas, quotes, even a newline — must ride
     in one RFC 4180 field and round-trip verbatim *)
  let probe =
    {
      Monitor.stats = (fun () -> []);
      busy = (fun () -> Array.make 8 0);
      comm = (fun () -> Array.make 8 0);
      recovery_stall = (fun () -> Array.make 8 0);
    }
  in
  let m = Monitor.create ~interval:1_000 ~nprocs:8 ~probe in
  Monitor.install m;
  Fun.protect ~finally:Monitor.uninstall (fun () ->
      Monitor.request ~klass:"point,\"weird\"" ~cycles:100;
      Monitor.request ~klass:"point,\"weird\"" ~cycles:300;
      Monitor.request ~klass:"plain" ~cycles:200;
      Monitor.finish m ~makespan:1_000);
  let csv = Monitor.latency_csv m in
  (* the comma and the doubled quotes stay inside one quoted field *)
  check bool "hostile label is quoted" true
    (contains csv "\"point,\"\"weird\"\"\"");
  check bool "plain label is untouched" true (contains csv "request,plain,");
  (* no row gained a column: every line still has 12 unquoted commas *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  List.iter
    (fun line ->
      let commas = ref 0 and in_quotes = ref false in
      String.iter
        (fun c ->
          if c = '"' then in_quotes := not !in_quotes
          else if c = ',' && not !in_quotes then incr commas)
        line;
      check int
        (Printf.sprintf "12 columns separators in %S" line)
        12 !commas)
    lines;
  (* the hostile label did not leak into the JSON export either *)
  match Json.of_string (Json.to_string (Monitor.latency_json m)) with
  | j ->
      check bool "JSON round-trips the label" true
        (contains (Json.to_string j) "point,\\\"weird\\\"")
  | exception Json.Parse_error e ->
      Alcotest.failf "latency_json unparseable: %s" e

let suite =
  [
    Alcotest.test_case "interarrival gaps are pure per (stream, index)"
      `Quick test_interarrival_pure;
    Alcotest.test_case "arrivals merge in canonical order" `Quick
      test_arrivals_canonical;
    Alcotest.test_case "the three profiles generate distinct streams"
      `Quick test_profiles_differ;
    Alcotest.test_case "mix grammar round-trips and rejects junk" `Quick
      test_mix_grammar;
    Alcotest.test_case "serving snapshot run-twice byte-identical" `Quick
      test_run_twice;
    Alcotest.test_case "serving snapshot identical across host domains"
      `Quick test_domains_invisible;
    Alcotest.test_case "serving deterministic under mix/crash-mix/failstop"
      `Quick test_chaos_deterministic;
    Alcotest.test_case "arrival seed changes the served stream" `Quick
      test_seed_matters;
    Alcotest.test_case "offered-load sweep locates the TreeAdd knee" `Quick
      test_sweep_finds_knee;
    Alcotest.test_case "CLI serve: usage errors exit 2 with one line"
      `Quick test_cli_usage_errors;
    Alcotest.test_case "CLI serve --out: olden-serving/v1, run-twice" `Quick
      test_cli_serve_out;
    Alcotest.test_case "request-class labels survive RFC 4180 quoting"
      `Quick test_csv_quoting;
  ]
