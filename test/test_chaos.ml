(* The fault-injection layer: zero-probability schedules are
   bit-equivalent to no faults at all, faulty runs are deterministic
   (same seed + schedule => byte-identical metrics snapshots) for every
   Table 2 benchmark, chaos runs pass the coherence invariant checker
   and reproduce the fault-free checksum and heap, migrations to a
   flaky home degrade to caching instead of wedging, and the deadlock
   report names the parked sites. *)

open Olden
module B = Olden_benchmarks
module Check = Olden_check.Invariants

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool

(* Small scales so the whole suite stays fast (test_benchmarks' table). *)
let test_scale (s : B.Common.spec) =
  match s.B.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

let snapshot (s : B.Common.spec) cfg ~scale =
  Site.reset ();
  let o, events = Trace.collect (fun () -> s.B.Common.run cfg ~scale) in
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  (o, Json.to_string (B.Common.metrics_snapshot ~events s ~cfg ~scale o))

(* --- Zero-probability faults are exactly no faults ---------------------- *)

let test_zero_prob_faults_equivalent () =
  (* with every probability at zero the faulty code path must take the
     same branches, charge the same cycles, and count the same messages
     as the reliable one: snapshots are byte-identical *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let _, off = snapshot s (Config.make ~nprocs:8 ()) ~scale in
      let _, zero =
        snapshot s
          (Config.make ~nprocs:8
             ~faults:{ Config.no_faults with Config.fault_seed = 3 }
             ())
          ~scale
      in
      check string
        (s.B.Common.name ^ ": zero-probability faults = faults off")
        off zero)
    [ B.Treeadd.spec; B.Em3d.spec; B.Health.spec ]

(* --- Determinism under faults ------------------------------------------- *)

let test_fault_determinism () =
  (* same workload seed + same fault schedule => byte-identical metrics
     snapshots across two runs, for every Table 2 benchmark *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let faults = Config.Faults.mixed ~seed:7 () in
      let cfg () = Config.make ~nprocs:8 ~faults () in
      let _, first = snapshot s (cfg ()) ~scale in
      let _, second = snapshot s (cfg ()) ~scale in
      check string (s.B.Common.name ^ ": faulty run-twice") first second)
    B.Registry.specs

(* --- Chaos: invariants, checksum, heap ----------------------------------- *)

let run_checked (s : B.Common.spec) cfg ~scale ~inspect =
  (B.Common.hooks ()).inspect_engine <- Some inspect;
  Fun.protect
    ~finally:(fun () -> (B.Common.hooks ()).inspect_engine <- None)
    (fun () ->
      Site.reset ();
      s.B.Common.run cfg ~scale)

let test_chaos_clean (s : B.Common.spec) () =
  let scale = test_scale s in
  let ref_digest = ref "" in
  let ref_o =
    run_checked s (Config.make ~nprocs:8 ()) ~scale ~inspect:(fun e ->
        ref_digest := Check.heap_digest e)
  in
  check bool "fault-free verified" true ref_o.B.Common.ok;
  List.iter
    (fun sched ->
      List.iter
        (fun seed ->
          let faults = Option.get (Config.Faults.by_name sched ~seed) in
          let violations = ref [] in
          let o =
            run_checked s
              (Config.make ~nprocs:8 ~faults ())
              ~scale
              ~inspect:(fun e ->
                violations := Check.check ~expected_heap:!ref_digest e)
          in
          let tag fmt =
            Printf.ksprintf
              (fun m ->
                Printf.sprintf "%s %s seed=%d: %s" s.B.Common.name sched seed
                  m)
              fmt
          in
          check bool (tag "verified") true o.B.Common.ok;
          check string (tag "checksum") ref_o.B.Common.checksum
            o.B.Common.checksum;
          check string (tag "invariants")
            ""
            (String.concat "; "
               (List.map
                  (fun v -> Format.asprintf "%a" Check.pp_violation v)
                  !violations)))
        [ 1; 2 ])
    [ "drop"; "delay"; "dup"; "mix" ]

(* --- Graceful degradation ------------------------------------------------ *)

let test_flaky_home_falls_back () =
  (* a home that drops 90% of thread-state transfers forces migrations to
     give up; the dereference must fall back to caching and the run must
     still produce the right answer *)
  let s = B.Treeadd.spec in
  let scale = test_scale s in
  let reference = s.B.Common.run (Config.make ~nprocs:8 ()) ~scale in
  Site.reset ();
  let faults = Config.Faults.flaky_home ~seed:1 () in
  let o = s.B.Common.run (Config.make ~nprocs:8 ~faults ()) ~scale in
  check bool "verified under flaky homes" true o.B.Common.ok;
  check string "checksum matches reliable run" reference.B.Common.checksum
    o.B.Common.checksum;
  let st = o.B.Common.total_stats in
  check bool "some migrations gave up and degraded to caching" true
    (st.Stats.migration_fallbacks > 0);
  check bool "every fallback burned the configured attempts" true
    (st.Stats.retries >= st.Stats.migration_fallbacks)

(* --- Deadlock diagnostics ------------------------------------------------ *)

let test_deadlock_message () =
  (* the deadlock report must say where threads are parked (site labels)
     and how much work each processor still holds *)
  let cfg = Config.make ~nprocs:4 () in
  let engine = Engine.create cfg in
  let site = Site.migrate "t.f" in
  let wait = Site.make "chaos.wait" in
  let msg =
    match
      Engine.exec engine (fun () ->
          let r = ref None in
          let f =
            Ops.future (fun () ->
                let a = Ops.alloc ~proc:1 2 in
                Ops.store_int site a 0 1;
                match !r with
                | Some g -> Ops.touch ~site:wait g
                | None -> Value.Int 0)
          in
          let g = Ops.future (fun () -> Ops.touch f) in
          r := Some g;
          ignore (Ops.touch f))
    with
    | () -> Alcotest.fail "expected a deadlock"
    | exception Engine.Deadlock m -> m
  in
  let contains sub =
    let n = String.length sub and len = String.length msg in
    let rec at i =
      i + n <= len && (String.sub msg i n = sub || at (i + 1))
    in
    at 0
  in
  check bool
    (Printf.sprintf "names the parked site (got %S)" msg)
    true (contains "chaos.wait");
  check bool "labels anonymous futures" true (contains "fut#");
  check bool "reports pending continuations" true
    (contains "pending continuations:")

let suite =
  [
    Alcotest.test_case "zero-probability faults = faults off" `Quick
      test_zero_prob_faults_equivalent;
    Alcotest.test_case "same seed + schedule => identical snapshots" `Quick
      test_fault_determinism;
    Alcotest.test_case "chaos: treeadd clean" `Quick
      (test_chaos_clean B.Treeadd.spec);
    Alcotest.test_case "chaos: em3d clean" `Quick
      (test_chaos_clean B.Em3d.spec);
    Alcotest.test_case "flaky home degrades to caching" `Quick
      test_flaky_home_falls_back;
    Alcotest.test_case "deadlock report names parked sites" `Quick
      test_deadlock_message;
  ]
