(* The software cache: translation table (Figure 1), write logs, home
   directories, and the three coherence protocols' bookkeeping. *)

open Olden
module G = Config.Geometry

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- Translation table --------------------------------------------------- *)

let test_translation_insert_find () =
  let t = Translation.create () in
  check bool "initially absent" true (Translation.find t 42 = None);
  let e = Translation.insert t ~gpage:42 ~home:3 ~page_index:7 in
  check bool "found" true (Translation.find t 42 = Some e);
  check int "home" 3 e.Translation.home;
  check int "all lines invalid" 0 e.Translation.valid

let test_translation_line_bits () =
  let t = Translation.create () in
  let e = Translation.insert t ~gpage:1 ~home:0 ~page_index:0 in
  check bool "line 5 invalid" false (Translation.line_valid e 5);
  Translation.set_line_valid e 5;
  Translation.set_line_valid e 31;
  check bool "line 5 valid" true (Translation.line_valid e 5);
  check bool "line 31 valid" true (Translation.line_valid e 31);
  Translation.invalidate_line e 5;
  check bool "line 5 invalidated" false (Translation.line_valid e 5);
  check bool "line 31 survives" true (Translation.line_valid e 31);
  let dropped = Translation.invalidate_lines e ((1 lsl 31) lor (1 lsl 2)) in
  check int "only valid lines count" 1 dropped

let test_translation_collisions () =
  (* many pages, including ones an old modulo hash would collide, all stay
     findable; the probe statistic stays near the paper's ~1 *)
  let t = Translation.create () in
  let gpages =
    List.init 64 (fun i -> 5 + (i * G.hash_buckets))
    @ List.init 64 (fun i -> (3 lsl 16) lor i)
  in
  let entries =
    List.map
      (fun g ->
        (g, Translation.insert t ~gpage:g ~home:(g lsr 16) ~page_index:(g land 0xffff)))
      gpages
  in
  List.iter
    (fun (g, e) ->
      check bool "find" true (Translation.find t g = Some e))
    entries;
  let len = Translation.average_chain_length t in
  check bool "mean probe length small" true (len >= 1. && len < 3.)

let test_translation_flush () =
  let t = Translation.create () in
  ignore (Translation.insert t ~gpage:1 ~home:0 ~page_index:0);
  ignore (Translation.insert t ~gpage:2 ~home:1 ~page_index:0);
  Translation.flush t;
  check bool "all gone" true
    (Translation.find t 1 = None && Translation.find t 2 = None)

let test_translation_invalidate_homes () =
  let t = Translation.create () in
  let e1 = Translation.insert t ~gpage:1 ~home:3 ~page_index:0 in
  let e2 = Translation.insert t ~gpage:2 ~home:5 ~page_index:0 in
  Translation.set_line_valid e1 0;
  Translation.set_line_valid e1 1;
  Translation.set_line_valid e2 0;
  let dropped = Translation.invalidate_homes t (1 lsl 3) in
  check int "two lines dropped from home 3" 2 dropped;
  check bool "home 5 untouched" true (Translation.line_valid e2 0)

let test_mark_all_suspect () =
  let t = Translation.create () in
  let e = Translation.insert t ~gpage:9 ~home:0 ~page_index:0 in
  check bool "fresh entry not suspect" false (Translation.is_suspect t e);
  Translation.mark_all_suspect t;
  check bool "suspect after" true (Translation.is_suspect t e);
  Translation.clear_suspect t e;
  check bool "cleared" false (Translation.is_suspect t e);
  let e2 = Translation.insert t ~gpage:10 ~home:0 ~page_index:0 in
  check bool "entry inserted after epoch bump starts clean" false
    (Translation.is_suspect t e2)

(* --- Popcount ------------------------------------------------------------- *)

let test_popcount () =
  check int "zero" 0 (Config.popcount 0);
  check int "one bit" 1 (Config.popcount (1 lsl 17));
  check int "dense line mask" 32 (Config.popcount 0xFFFF_FFFF);
  check int "alternating" 16 (Config.popcount 0x5555_5555);
  check int "max_int" (Sys.int_size - 1) (Config.popcount max_int);
  (* agrees with the obvious bit-by-bit count on random masks *)
  let naive m =
    let rec go i acc =
      if i >= Sys.int_size then acc
      else go (i + 1) (acc + ((m lsr i) land 1))
    in
    go 0 0
  in
  let seed = ref 0x2545F491 in
  for _ = 1 to 1000 do
    seed := (!seed * 1103515245) + 12345;
    let m = !seed land max_int in
    check int "naive agreement" (naive m) (Config.popcount m)
  done

(* --- Differential test: open-addressed table vs list-based reference ------ *)

(* The reference model is the seed's translation table semantics in its
   plainest possible form: an association list of live entries, flushed by
   dropping the list and marked suspect by walking it.  The randomized
   driver applies identical operation sequences to the reference and the
   open-addressed table and asserts identical observable state after every
   step. *)
module Ref_table = struct
  type rentry = {
    home : int;
    page_index : int;
    mutable valid : int;
    mutable suspect : bool;
  }

  type t = { mutable entries : (int * rentry) list }

  let create () = { entries = [] }
  let find t gpage = List.assoc_opt gpage t.entries

  let insert t ~gpage ~home ~page_index =
    let e = { home; page_index; valid = 0; suspect = false } in
    t.entries <- (gpage, e) :: t.entries;
    e

  let flush t = t.entries <- []
  let mark_all_suspect t = List.iter (fun (_, e) -> e.suspect <- true) t.entries

  let invalidate_lines (e : rentry) mask =
    let dropped = Config.popcount (e.valid land mask) in
    e.valid <- e.valid land lnot mask;
    dropped

  let invalidate_homes t procs =
    List.fold_left
      (fun acc (_, e) ->
        if procs land (1 lsl e.home) <> 0 then begin
          let n = Config.popcount e.valid in
          e.valid <- 0;
          acc + n
        end
        else acc)
      0 t.entries
end

let prop_translation_differential =
  QCheck.Test.make ~name:"open-addressed table matches list-based reference"
    ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 120) (triple (int_bound 7) (int_bound 63) (int_bound 31)))
    (fun ops ->
      let t = Translation.create () in
      let r = Ref_table.create () in
      (* 4 homes x 16 pages: enough density to exercise probing *)
      let gpage_of sel = ((sel lsr 4) lsl 16) lor (sel land 0xf) in
      let agree () =
        (* every reference entry is observable in the table, equal in
           every visible field, and the table holds nothing more *)
        List.for_all
          (fun (gpage, (re : Ref_table.rentry)) ->
            match Translation.find t gpage with
            | None -> false
            | Some e ->
                e.Translation.home = re.Ref_table.home
                && e.Translation.page_index = re.Ref_table.page_index
                && e.Translation.valid = re.Ref_table.valid
                && Translation.is_suspect t e = re.Ref_table.suspect)
          r.Ref_table.entries
        && Translation.live_entries t = List.length r.Ref_table.entries
      in
      List.for_all
        (fun (kind, sel, line) ->
          let gpage = gpage_of sel in
          (match kind with
          | 0 -> (
              (* insert-if-absent, as the cache layer drives it *)
              match Ref_table.find r gpage with
              | Some _ -> ()
              | None ->
                  let home = gpage lsr 16 and page_index = gpage land 0xffff in
                  (* both models hand out fresh entries non-suspect, even
                     right after a mark_all_suspect *)
                  ignore (Ref_table.insert r ~gpage ~home ~page_index);
                  ignore (Translation.insert t ~gpage ~home ~page_index))
          | 1 ->
              (* lookups must agree even for absent pages *)
              assert (
                Option.is_some (Ref_table.find r gpage)
                = Option.is_some (Translation.find t gpage))
          | 2 -> (
              match (Ref_table.find r gpage, Translation.find t gpage) with
              | Some re, Some e ->
                  re.Ref_table.valid <- re.Ref_table.valid lor (1 lsl line);
                  Translation.set_line_valid e line
              | None, None -> ()
              | _ -> assert false)
          | 3 -> (
              let mask = (1 lsl line) lor (1 lsl (line * 7 mod 32)) in
              match (Ref_table.find r gpage, Translation.find t gpage) with
              | Some re, Some e ->
                  let a = Ref_table.invalidate_lines re mask in
                  let b = Translation.invalidate_lines e mask in
                  assert (a = b)
              | None, None -> ()
              | _ -> assert false)
          | 4 ->
              Ref_table.flush r;
              Translation.flush t
          | 5 ->
              Ref_table.mark_all_suspect r;
              Translation.mark_all_suspect t
          | 6 -> (
              match (Ref_table.find r gpage, Translation.find t gpage) with
              | Some re, Some e ->
                  re.Ref_table.suspect <- false;
                  Translation.clear_suspect t e
              | None, None -> ()
              | _ -> assert false)
          | _ ->
              let procs = 1 lsl (line land 3) in
              let a = Ref_table.invalidate_homes r procs in
              let b = Translation.invalidate_homes t procs in
              assert (a = b));
          agree ())
        ops)

(* --- Write log ------------------------------------------------------------ *)

let test_write_log () =
  let l = Write_log.create () in
  check bool "empty" true (Write_log.is_empty l);
  Write_log.record l ~gpage:10 ~line:3 ~home:1;
  Write_log.record l ~gpage:10 ~line:5 ~home:1;
  Write_log.record l ~gpage:20 ~line:0 ~home:2;
  check int "two dirty pages" 2 (List.length (Write_log.dirty_pages l));
  check int "three dirty lines" 3 (Write_log.line_count l);
  check bool "written procs" true (Write_log.written_procs l = [ 1; 2 ]);
  Write_log.clear_dirty l;
  check bool "dirty cleared" true (Write_log.is_empty l);
  check bool "written procs survive release" true
    (Write_log.written_procs l = [ 1; 2 ])

let test_write_log_absorb () =
  let a = Write_log.create () and b = Write_log.create () in
  Write_log.record a ~gpage:1 ~line:0 ~home:4;
  Write_log.record b ~gpage:2 ~line:0 ~home:7;
  Write_log.absorb_written_procs a ~from:b;
  check bool "absorbed" true (Write_log.written_procs a = [ 4; 7 ])

(* --- Home directory ------------------------------------------------------- *)

let test_directory_sharers () =
  let d = Directory.create () in
  Directory.add_sharer d ~page_index:3 ~proc:5;
  Directory.add_sharer d ~page_index:3 ~proc:6;
  Directory.add_sharer d ~page_index:3 ~proc:5;
  check int "distinct sharers" 2 (List.length (Directory.sharers d 3));
  check bool "shared" true (Directory.is_shared d 3);
  check bool "other page not shared" false (Directory.is_shared d 4);
  Directory.remove_sharer d ~page_index:3 ~proc:5;
  check bool "removed" true (Directory.sharers d 3 = [ 6 ])

let test_directory_timestamps () =
  let d = Directory.create () in
  Directory.record_write d ~page_index:0 ~line:4;
  (* the write is provisional until the release bumps the timestamp *)
  let mask, ts = Directory.stale_lines d ~page_index:0 ~since:0 in
  check int "provisional write already visible to since=0" (1 lsl 4) mask;
  check int "timestamp not yet bumped" 0 ts;
  Directory.bump_timestamp d ~page_index:0;
  let mask, ts = Directory.stale_lines d ~page_index:0 ~since:0 in
  check int "stale after release" (1 lsl 4) mask;
  check int "timestamp" 1 ts;
  let mask, _ = Directory.stale_lines d ~page_index:0 ~since:1 in
  check int "validated copy is current" 0 mask

(* --- Cache_system end to end ---------------------------------------------- *)

let mk_system ?(nprocs = 4) ?(coherence = Config.Local) () =
  let cfg = Config.make ~nprocs ~coherence () in
  let machine = Machine.create cfg in
  let memory = Memory.create ~nprocs in
  (Cache_system.create cfg machine memory, machine, memory)

let test_cache_read_local_remote () =
  let sys, machine, memory = mk_system () in
  let a = Memory.alloc memory ~proc:1 4 in
  Memory.store memory a 0 (Value.Int 11);
  (* local read takes no cache entry *)
  let v = Cache_system.read sys ~proc:1 a ~field:0 in
  check int "local read" 11 (Value.to_int v);
  check int "no miss" 0 (Machine.stats machine).Stats.cache_misses;
  (* first remote read misses, second hits *)
  let v = Cache_system.read sys ~proc:0 a ~field:0 in
  check int "remote read" 11 (Value.to_int v);
  check int "one miss" 1 (Machine.stats machine).Stats.cache_misses;
  let _ = Cache_system.read sys ~proc:0 a ~field:0 in
  check int "still one miss" 1 (Machine.stats machine).Stats.cache_misses;
  check int "one hit" 1 (Machine.stats machine).Stats.cache_hits;
  check int "one page entry" 1 (Machine.stats machine).Stats.pages_cached

let test_cache_write_through () =
  let sys, _machine, memory = mk_system () in
  let a = Memory.alloc memory ~proc:2 4 in
  Memory.store memory a 1 (Value.Int 1);
  let log = Write_log.create () in
  (* cache the line on proc 0 *)
  ignore (Cache_system.read sys ~proc:0 a ~field:1);
  (* write through from proc 0: home memory and own copy both updated *)
  Cache_system.write sys ~proc:0 a ~field:1 (Value.Int 99) ~log;
  check int "home updated" 99 (Value.to_int (Memory.load memory a 1));
  let v = Cache_system.read sys ~proc:0 a ~field:1 in
  check int "own cached copy updated" 99 (Value.to_int v);
  check bool "write logged" false (Write_log.is_empty log);
  check bool "written proc recorded" true (Write_log.written_procs log = [ 2 ])

let test_local_scheme_flush_on_migration () =
  let sys, machine, memory = mk_system ~coherence:Config.Local () in
  let a = Memory.alloc memory ~proc:1 4 in
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  Cache_system.on_migration_received sys ~proc:0;
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  check int "flush forces a re-miss" 2 (Machine.stats machine).Stats.cache_misses;
  check int "one flush counted" 1 (Machine.stats machine).Stats.cache_flushes

let test_local_scheme_return_refinement () =
  let sys, machine, memory = mk_system ~coherence:Config.Local () in
  let a = Memory.alloc memory ~proc:1 4 in
  let b = Memory.alloc memory ~proc:2 4 in
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  ignore (Cache_system.read sys ~proc:0 b ~field:0);
  (* a returning thread wrote only processor 1's memory *)
  let log = Write_log.create () in
  Write_log.record log ~gpage:0 ~line:0 ~home:1;
  Cache_system.on_return_received sys ~proc:0 ~log;
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  ignore (Cache_system.read sys ~proc:0 b ~field:0);
  (* a's line (homed at 1) re-missed; b's line survived *)
  check int "selective invalidation" 3 (Machine.stats machine).Stats.cache_misses

let test_global_scheme_eager_invalidation () =
  let sys, machine, memory = mk_system ~coherence:Config.Global () in
  let a = Memory.alloc memory ~proc:1 4 in
  Memory.store memory a 0 (Value.Int 1);
  (* proc 0 caches the line; proc 2 writes it and releases *)
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  let log = Write_log.create () in
  Cache_system.write sys ~proc:2 a ~field:0 (Value.Int 5) ~log;
  Cache_system.on_migration_sent sys ~proc:2 ~log;
  check bool "invalidation sent" true
    ((Machine.stats machine).Stats.invalidation_messages > 0);
  let v = Cache_system.read sys ~proc:0 a ~field:0 in
  check int "reader re-fetches the new value" 5 (Value.to_int v);
  check int "a second miss" 2 (Machine.stats machine).Stats.cache_misses

let test_bilateral_revalidation () =
  let sys, machine, memory = mk_system ~coherence:Config.Bilateral () in
  let a = Memory.alloc memory ~proc:1 (2 * G.words_per_line) in
  Memory.store memory a 0 (Value.Int 1);
  Memory.store memory a G.words_per_line (Value.Int 2);
  (* proc 0 caches both lines *)
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  ignore (Cache_system.read sys ~proc:0 a ~field:G.words_per_line);
  (* proc 2 writes line 0 and releases; proc 0 receives a migration *)
  let log = Write_log.create () in
  Cache_system.write sys ~proc:2 a ~field:0 (Value.Int 77) ~log;
  Cache_system.on_migration_sent sys ~proc:2 ~log;
  Cache_system.on_migration_received sys ~proc:0;
  let misses_before = (Machine.stats machine).Stats.cache_misses in
  (* reading line 1: revalidation says it is still good — no miss *)
  let v1 = Cache_system.read sys ~proc:0 a ~field:G.words_per_line in
  check int "unwritten line revalidates without transfer" misses_before
    (Machine.stats machine).Stats.cache_misses;
  check int "value intact" 2 (Value.to_int v1);
  (* reading line 0: stale, must re-fetch *)
  let v0 = Cache_system.read sys ~proc:0 a ~field:0 in
  check int "written line re-misses" (misses_before + 1)
    (Machine.stats machine).Stats.cache_misses;
  check int "fresh value" 77 (Value.to_int v0);
  check bool "revalidations counted" true
    ((Machine.stats machine).Stats.revalidations >= 1)

let test_write_tracking_costs () =
  (* Appendix A: 7 cycles for non-shared pages, 23 for shared. *)
  let sys, machine, memory = mk_system ~coherence:Config.Global () in
  let a = Memory.alloc memory ~proc:1 4 in
  let log = Write_log.create () in
  Cache_system.write sys ~proc:1 a ~field:0 (Value.Int 1) ~log;
  check int "non-shared cost" 7 (Machine.stats machine).Stats.write_track_cycles;
  ignore (Cache_system.read sys ~proc:0 a ~field:0) (* creates a sharer *);
  Cache_system.write sys ~proc:1 a ~field:0 (Value.Int 2) ~log;
  check int "shared cost" 30 (Machine.stats machine).Stats.write_track_cycles

let test_no_write_tracking_under_local () =
  let sys, machine, memory = mk_system ~coherence:Config.Local () in
  let a = Memory.alloc memory ~proc:1 4 in
  let log = Write_log.create () in
  Cache_system.write sys ~proc:0 a ~field:0 (Value.Int 1) ~log;
  check int "local scheme tracks no writes" 0
    (Machine.stats machine).Stats.write_track_cycles

let test_write_through_without_copy () =
  (* a write-through to a line the writer has not cached does not allocate
     a copy; the next read misses and sees the written value *)
  let sys, machine, memory = mk_system () in
  let a = Memory.alloc memory ~proc:1 4 in
  let log = Write_log.create () in
  Cache_system.write sys ~proc:0 a ~field:0 (Value.Int 5) ~log;
  check int "no fetch on write" 0 (Machine.stats machine).Stats.cache_misses;
  let v = Cache_system.read sys ~proc:0 a ~field:0 in
  check int "read misses" 1 (Machine.stats machine).Stats.cache_misses;
  check int "and sees the write" 5 (Value.to_int v)

let test_full_flush_without_refinement () =
  (* with the refinement disabled, a return flushes everything *)
  let cfg =
    Config.make ~nprocs:4 ~coherence:Config.Local
      ~return_invalidate_refinement:false ()
  in
  let machine = Machine.create cfg in
  let memory = Memory.create ~nprocs:4 in
  let sys = Cache_system.create cfg machine memory in
  let a = Memory.alloc memory ~proc:1 4 in
  let b = Memory.alloc memory ~proc:2 4 in
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  ignore (Cache_system.read sys ~proc:0 b ~field:0);
  let log = Write_log.create () in
  Write_log.record log ~gpage:0 ~line:0 ~home:1;
  Cache_system.on_return_received sys ~proc:0 ~log;
  ignore (Cache_system.read sys ~proc:0 a ~field:0);
  ignore (Cache_system.read sys ~proc:0 b ~field:0);
  (* both lines re-missed after the wholesale flush *)
  check int "full flush" 4 (Machine.stats machine).Stats.cache_misses

(* Protocol property: any release/acquire-bracketed sequence of writes is
   fully visible to the reader, under every scheme.  Random blocks of
   writes by random writers, each followed by a release (migration sent)
   and an acquire (migration received) at a random reader, whose reads
   must then see the latest values. *)
let prop_release_acquire_visibility coherence =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "release/acquire visibility (%s)"
         (Config.coherence_to_string coherence))
    ~count:60
    QCheck.(
      list_of_size Gen.(1 -- 12)
        (triple (int_bound 3) (list_of_size Gen.(1 -- 6) (int_bound 40))
           (int_bound 3)))
    (fun blocks ->
      let sys, _machine, memory = mk_system ~coherence () in
      let base = Memory.alloc memory ~proc:1 64 in
      let shadow = Array.make 64 0 in
      let version = ref 0 in
      List.for_all
        (fun (writer, fields, reader) ->
          let log = Write_log.create () in
          List.iter
            (fun f ->
              incr version;
              shadow.(f) <- !version;
              Cache_system.write sys ~proc:writer base ~field:f
                (Value.Int !version) ~log)
            fields;
          (* release at the writer, acquire at the reader *)
          Cache_system.on_migration_sent sys ~proc:writer ~log;
          Cache_system.on_migration_received sys ~proc:reader;
          List.for_all
            (fun f ->
              Value.to_int (Cache_system.read sys ~proc:reader base ~field:f)
              = shadow.(f))
            fields)
        blocks)

let suite =
  [
    Alcotest.test_case "translation insert/find" `Quick
      test_translation_insert_find;
    Alcotest.test_case "translation line bits" `Quick test_translation_line_bits;
    Alcotest.test_case "translation collisions" `Quick
      test_translation_collisions;
    Alcotest.test_case "translation flush" `Quick test_translation_flush;
    Alcotest.test_case "invalidate by home" `Quick
      test_translation_invalidate_homes;
    Alcotest.test_case "mark all suspect" `Quick test_mark_all_suspect;
    Alcotest.test_case "popcount" `Quick test_popcount;
    QCheck_alcotest.to_alcotest prop_translation_differential;
    Alcotest.test_case "write log" `Quick test_write_log;
    Alcotest.test_case "write log absorb" `Quick test_write_log_absorb;
    Alcotest.test_case "directory sharers" `Quick test_directory_sharers;
    Alcotest.test_case "directory timestamps" `Quick test_directory_timestamps;
    Alcotest.test_case "read local/remote" `Quick test_cache_read_local_remote;
    Alcotest.test_case "write-through" `Quick test_cache_write_through;
    Alcotest.test_case "local: flush on migration" `Quick
      test_local_scheme_flush_on_migration;
    Alcotest.test_case "local: return refinement" `Quick
      test_local_scheme_return_refinement;
    Alcotest.test_case "global: eager invalidation" `Quick
      test_global_scheme_eager_invalidation;
    Alcotest.test_case "bilateral: revalidation" `Quick
      test_bilateral_revalidation;
    Alcotest.test_case "write-through without copy" `Quick
      test_write_through_without_copy;
    Alcotest.test_case "full flush without refinement" `Quick
      test_full_flush_without_refinement;
    Alcotest.test_case "write-tracking costs" `Quick test_write_tracking_costs;
    Alcotest.test_case "local scheme tracks nothing" `Quick
      test_no_write_tracking_under_local;
    QCheck_alcotest.to_alcotest (prop_release_acquire_visibility Config.Local);
    QCheck_alcotest.to_alcotest (prop_release_acquire_visibility Config.Global);
    QCheck_alcotest.to_alcotest
      (prop_release_acquire_visibility Config.Bilateral);
  ]
