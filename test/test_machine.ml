(* Machine layer: clocks, messaging, handler occupancy, statistics. *)

open Olden

let check = Alcotest.check
let int = Alcotest.int

let mk ?(nprocs = 4) ?(contention = false) () =
  Machine.create (Config.make ~nprocs ~handler_contention:contention ())

let test_advance () =
  let m = mk () in
  Machine.advance m 0 100;
  Machine.advance m 0 50;
  Machine.advance m 2 30;
  check int "clock 0" 150 (Machine.now m 0);
  check int "clock 2" 30 (Machine.now m 2);
  check int "clock untouched" 0 (Machine.now m 1);
  check int "makespan" 150 (Machine.makespan m);
  check int "busy total" 180 (Machine.total_busy m)

let test_wait_until () =
  let m = mk () in
  Machine.advance m 1 10;
  Machine.wait_until m 1 100;
  check int "clock lifted" 100 (Machine.now m 1);
  Machine.wait_until m 1 50;
  check int "never moves backward" 100 (Machine.now m 1);
  (* waiting is idle time, not busy time *)
  check int "busy is only the advance" 10 (Machine.total_busy m)

let test_request_reply () =
  let m = mk () in
  let c = Config.default_costs in
  let reply = Machine.request_reply m ~src:0 ~dst:1 ~service:100 in
  check int "round trip" ((2 * c.Config.net_latency) + 100) reply;
  check int "requester blocked until reply" reply (Machine.now m 0);
  check int "home compute clock untouched" 0 (Machine.now m 1);
  check int "two messages" 2 (Machine.stats m).Stats.messages

let test_handler_contention () =
  let m = mk ~contention:true () in
  let c = Config.default_costs in
  (* two requests from different processors to the same home queue up *)
  let r1 = Machine.request_reply m ~src:0 ~dst:2 ~service:100 in
  let r2 = Machine.request_reply m ~src:1 ~dst:2 ~service:100 in
  check int "first unqueued" ((2 * c.Config.net_latency) + 100) r1;
  check int "second waits for the handler"
    ((2 * c.Config.net_latency) + 200)
    r2

let test_no_contention_flag () =
  let m = mk ~contention:false () in
  let r1 = Machine.request_reply m ~src:0 ~dst:2 ~service:100 in
  let r2 = Machine.request_reply m ~src:1 ~dst:2 ~service:100 in
  check int "handlers overlap when contention is off" r1 r2

let test_one_way () =
  let m = mk () in
  let c = Config.default_costs in
  let done_at = Machine.one_way m ~src:0 ~dst:3 ~service:40 in
  check int "delivery time" (c.Config.net_latency + 40) done_at;
  check int "sender does not block" 0 (Machine.now m 0);
  check int "one message" 1 (Machine.stats m).Stats.messages

let test_utilization () =
  let m = mk ~nprocs:2 () in
  Machine.advance m 0 100;
  Machine.advance m 1 50;
  Alcotest.check (Alcotest.float 1e-9) "utilization" 0.75 (Machine.utilization m)

let test_stats_copy_diff () =
  let s = Stats.create () in
  s.Stats.migrations <- 5;
  s.Stats.cache_misses <- 7;
  let snap = Stats.copy s in
  s.Stats.migrations <- 9;
  s.Stats.cache_misses <- 11;
  check int "copy is a snapshot" 5 snap.Stats.migrations;
  let d = Stats.diff s snap in
  check int "diff migrations" 4 d.Stats.migrations;
  check int "diff misses" 4 d.Stats.cache_misses

let test_stats_fractions () =
  let s = Stats.create () in
  s.Stats.cacheable_reads <- 100;
  s.Stats.cacheable_reads_remote <- 25;
  s.Stats.cacheable_writes <- 50;
  s.Stats.cacheable_writes_remote <- 10;
  s.Stats.cache_misses <- 7;
  Alcotest.check (Alcotest.float 1e-9) "remote read fraction" 0.25
    (Stats.remote_read_fraction s);
  Alcotest.check (Alcotest.float 1e-9) "remote write fraction" 0.2
    (Stats.remote_write_fraction s);
  Alcotest.check (Alcotest.float 1e-9) "remote miss fraction" 0.2
    (Stats.remote_miss_fraction s)

let prop_busy_le_makespan_times_procs =
  QCheck.Test.make ~name:"busy <= makespan * nprocs" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (pair (int_bound 3) (int_bound 1000)))
    (fun ops ->
      let m = mk () in
      List.iter (fun (p, c) -> Machine.advance m p c) ops;
      Machine.total_busy m <= Machine.makespan m * 4)

let suite =
  [
    Alcotest.test_case "advance" `Quick test_advance;
    Alcotest.test_case "wait_until" `Quick test_wait_until;
    Alcotest.test_case "request_reply" `Quick test_request_reply;
    Alcotest.test_case "handler contention" `Quick test_handler_contention;
    Alcotest.test_case "contention flag off" `Quick test_no_contention_flag;
    Alcotest.test_case "one_way" `Quick test_one_way;
    Alcotest.test_case "utilization" `Quick test_utilization;
    Alcotest.test_case "stats copy/diff" `Quick test_stats_copy_diff;
    Alcotest.test_case "stats fractions" `Quick test_stats_fractions;
    QCheck_alcotest.to_alcotest prop_busy_le_makespan_times_procs;
  ]

let test_timeline_buckets () =
  (* busy cycles land in the right buckets and are conserved *)
  let intervals = [ (0, 0, 100); (0, 150, 250); (1, 90, 110) ] in
  let grid, bucket_len =
    Olden_runtime.Timeline.buckets ~nprocs:2 ~makespan:400 ~width:4 intervals
  in
  check int "bucket length" 100 bucket_len;
  check int "p0 bucket 0" 100 grid.(0).(0);
  check int "p0 bucket 1" 50 grid.(0).(1);
  check int "p0 bucket 2" 50 grid.(0).(2);
  check int "p0 bucket 3" 0 grid.(0).(3);
  check int "p1 straddles buckets" 10 grid.(1).(0);
  check int "p1 second part" 10 grid.(1).(1);
  let total =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0
      [| grid.(0); grid.(1) |]
  in
  check int "conserved" (100 + 100 + 20) total

let grid_total grid =
  Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 grid

let test_timeline_single_interval () =
  (* one busy stretch, bucket boundaries exact *)
  let grid, bucket_len =
    Olden_runtime.Timeline.buckets ~nprocs:1 ~makespan:80 ~width:8
      [ (0, 20, 60) ]
  in
  check int "bucket length" 10 bucket_len;
  check int "before" 0 grid.(0).(1);
  check int "inside" 10 grid.(0).(3);
  check int "after" 0 grid.(0).(6);
  check int "conserved" 40 (grid_total grid)

let test_timeline_short_makespan () =
  (* makespan < width: bucket_len clamps to 1 and no cycle is counted
     twice (the old floor division piled everything into the last cell) *)
  let grid, bucket_len =
    Olden_runtime.Timeline.buckets ~nprocs:1 ~makespan:3 ~width:64
      [ (0, 0, 3) ]
  in
  check int "bucket length clamps to 1" 1 bucket_len;
  check int "cycle 0" 1 grid.(0).(0);
  check int "cycle 2" 1 grid.(0).(2);
  check int "nothing beyond makespan" 0 grid.(0).(3);
  check int "conserved" 3 (grid_total grid)

let test_timeline_zero_length_and_empty () =
  let grid, _ =
    Olden_runtime.Timeline.buckets ~nprocs:2 ~makespan:100 ~width:4
      [ (0, 50, 50); (1, 0, 0) ]
  in
  check int "zero-length intervals contribute nothing" 0 (grid_total grid);
  let grid, bucket_len =
    Olden_runtime.Timeline.buckets ~nprocs:2 ~makespan:100 ~width:4 []
  in
  check int "no intervals" 0 (grid_total grid);
  check int "bucket length still sane" 25 bucket_len

let test_timeline_spanning_interval () =
  (* an interval covering the whole (indivisible) makespan fills every
     bucket without loss: 103 = 4 buckets of 26 capped by the stop *)
  let grid, bucket_len =
    Olden_runtime.Timeline.buckets ~nprocs:1 ~makespan:103 ~width:4
      [ (0, 0, 103) ]
  in
  check int "ceiling bucket length" 26 bucket_len;
  check int "full bucket" 26 grid.(0).(0);
  check int "partial last bucket" (103 - (3 * 26)) grid.(0).(3);
  check int "conserved" 103 (grid_total grid)

let test_timeline_bad_width () =
  Alcotest.check_raises "width must be positive"
    (Invalid_argument "Timeline.buckets: width must be positive") (fun () ->
      ignore
        (Olden_runtime.Timeline.buckets ~nprocs:1 ~makespan:10 ~width:0 []))

let test_stats_to_json () =
  let s = Stats.create () in
  s.Stats.migrations <- 5;
  s.Stats.cacheable_reads <- 100;
  s.Stats.cacheable_reads_remote <- 25;
  let j = Stats.to_json s in
  let get name = Option.bind (Json.member name j) Json.int_value in
  check (Alcotest.option int) "counter field" (Some 5) (get "migrations");
  check (Alcotest.option int) "zero field present" (Some 0) (get "returns");
  (* every mutable counter appears exactly once *)
  check int "field count"
    (List.length (Stats.fields s))
    (match j with Json.Obj kvs -> List.length kvs - 3 | _ -> -1);
  (* snapshot schema is stable: derived fractions ride along as floats *)
  check Alcotest.bool "fraction present" true
    (Json.member "remote_read_fraction" j <> None)

(* Exhaustiveness audit: every counter in the Stats record — including
   the fault/retry/recovery ones added later — must round-trip through
   fields/copy/diff/to_json.  The record is all-int, so [Obj.size] counts
   its fields; poking each one to a distinct value catches any counter
   that [fields] (hence JSON, CSV, and the monitor's time-series) or
   copy/diff silently dropped. *)
let test_stats_exhaustive () =
  let s = Stats.create () in
  let nfields = Obj.size (Obj.repr s) in
  check int "fields lists every record field" nfields
    (List.length (Stats.fields s));
  for i = 0 to nfields - 1 do
    Obj.set_field (Obj.repr s) i (Obj.repr (i + 1))
  done;
  (* declaration order: field i reads back i + 1 *)
  List.iteri
    (fun i (name, v) -> check int (name ^ " via fields") (i + 1) v)
    (Stats.fields s);
  let snap = Stats.copy s in
  check
    (Alcotest.list (Alcotest.pair Alcotest.string int))
    "copy preserves every field" (Stats.fields s) (Stats.fields snap);
  for i = 0 to nfields - 1 do
    Obj.set_field (Obj.repr s) i (Obj.repr (3 * (i + 1)))
  done;
  List.iteri
    (fun i (name, v) -> check int (name ^ " via diff") (2 * (i + 1)) v)
    (Stats.fields (Stats.diff s snap));
  let j = Stats.to_json s in
  List.iter
    (fun (name, v) ->
      check (Alcotest.option int) (name ^ " via to_json") (Some v)
        (Option.bind (Json.member name j) Json.int_value))
    (Stats.fields s);
  (* the counters later PRs added are really in there *)
  let names = List.map fst (Stats.fields s) in
  List.iter
    (fun n -> check Alcotest.bool (n ^ " present") true (List.mem n names))
    [
      "msg_drops"; "outage_drops"; "msg_delays"; "msg_duplicates";
      "duplicates_suppressed"; "retries"; "retry_cycles";
      "migration_fallbacks"; "crashes"; "pages_lost_in_crash";
      "recovery_messages"; "recovery_stall_cycles";
    ]

let test_interval_recording () =
  let m = mk ~nprocs:2 () in
  Machine.set_record_intervals m true;
  Machine.advance m 0 40;
  Machine.advance m 1 10;
  Machine.advance m 0 5;
  check Alcotest.bool "intervals recorded in order" true
    (Machine.busy_intervals m = [ (0, 0, 40); (1, 0, 10); (0, 40, 45) ])

let suite =
  suite
  @ [
      Alcotest.test_case "timeline buckets" `Quick test_timeline_buckets;
      Alcotest.test_case "timeline single interval" `Quick
        test_timeline_single_interval;
      Alcotest.test_case "timeline short makespan" `Quick
        test_timeline_short_makespan;
      Alcotest.test_case "timeline zero-length/empty" `Quick
        test_timeline_zero_length_and_empty;
      Alcotest.test_case "timeline spanning interval" `Quick
        test_timeline_spanning_interval;
      Alcotest.test_case "timeline bad width" `Quick test_timeline_bad_width;
      Alcotest.test_case "stats to_json" `Quick test_stats_to_json;
      Alcotest.test_case "stats exhaustive round-trip" `Quick
        test_stats_exhaustive;
      Alcotest.test_case "interval recording" `Quick test_interval_recording;
    ]
