(* Fail-stop failover: seeded death schedules replay bit-for-bit (also
   across host-domain shard counts), a zero-probability schedule is
   exactly no faults, dying runs stay coherent under all three schemes
   (invariant checker, checksum, heap digest), forced deaths at the
   nastiest boundaries — state in flight to the victim, chained deaths
   of successors — neither wedge the run nor lose a store, unreplicated
   resident threads abort with a deterministic report, the retry-wait
   backoff can never overflow, undeliverable messages render the same
   one-liner everywhere, and the CLI's failover/recovery reports are
   archivable JSON. *)

open Olden
module B = Olden_benchmarks
module Check = Olden_check.Invariants

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

(* Small scales so the whole suite stays fast (test_chaos's table). *)
let test_scale (s : B.Common.spec) =
  match s.B.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

let snapshot (s : B.Common.spec) cfg ~scale =
  Site.reset ();
  let o, events = Trace.collect (fun () -> s.B.Common.run cfg ~scale) in
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  (o, Json.to_string (B.Common.metrics_snapshot ~events s ~cfg ~scale o))

let violations_string vs =
  String.concat "; "
    (List.map (fun v -> Format.asprintf "%a" Check.pp_violation v) vs)

let contains hay sub =
  let n = String.length sub and len = String.length hay in
  let rec at i = i + n <= len && (String.sub hay i n = sub || at (i + 1)) in
  at 0

(* --- Zero-probability deaths are exactly no faults ----------------------- *)

let test_zero_prob_failstop_equivalent () =
  (* a schedule whose only knob is failstop, set to zero, must take the
     same branches, charge the same cycles, and consume no PRNG state —
     and without replication configured the home-map indirection is the
     identity: the metrics snapshots are byte-identical to a fault-free
     run *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let _, off = snapshot s (Config.make ~nprocs:8 ()) ~scale in
      let _, zero =
        snapshot s
          (Config.make ~nprocs:8
             ~faults:(Config.Faults.failstop ~p:0.0 ~seed:3 ())
             ())
          ~scale
      in
      check string
        (s.B.Common.name ^ ": zero-probability failstop = faults off")
        off zero)
    [ B.Treeadd.spec; B.Em3d.spec; B.Health.spec ]

(* --- Determinism under deaths -------------------------------------------- *)

let test_failstop_determinism () =
  (* same workload + same death schedule => byte-identical snapshots
     across two runs, for every Table 2 benchmark; failstop-mix layers
     the message faults on top so the streams must stay independent *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let faults = Config.Faults.failstop_mix ~seed:5 () in
      let cfg () =
        Config.make ~nprocs:8 ~faults ~replication:Config.default_replica ()
      in
      let _, first = snapshot s (cfg ()) ~scale in
      let _, second = snapshot s (cfg ()) ~scale in
      check string (s.B.Common.name ^ ": failstop run-twice") first second)
    B.Registry.specs

let test_failstop_domains_deterministic () =
  (* the same death schedule must produce byte-identical snapshots for
     any host-domain shard count: failovers rewrite queues and mailboxes
     mid-run, and none of that may depend on the partition *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let faults = Config.Faults.failstop_mix ~seed:2 () in
      let snap d =
        snd
          (snapshot s
             (Config.make ~nprocs:8 ~faults
                ~replication:Config.default_replica ~host_domains:d ())
             ~scale)
      in
      let one = snap 1 in
      check string (s.B.Common.name ^ ": domains=2 matches domains=1") one
        (snap 2);
      check string (s.B.Common.name ^ ": domains=4 matches domains=1") one
        (snap 4);
      check string (s.B.Common.name ^ ": domains=4 run-twice") (snap 4)
        (snap 4))
    [ B.Treeadd.spec; B.Em3d.spec ]

(* --- Chaos under deaths: invariants, checksum, heap ---------------------- *)

let run_checked (s : B.Common.spec) cfg ~scale ~inspect =
  (B.Common.hooks ()).inspect_engine <- Some inspect;
  Fun.protect
    ~finally:(fun () -> (B.Common.hooks ()).inspect_engine <- None)
    (fun () ->
      Site.reset ();
      s.B.Common.run cfg ~scale)

let test_failstop_clean (s : B.Common.spec) () =
  let scale = test_scale s in
  List.iter
    (fun coherence ->
      let ref_digest = ref "" in
      let ref_o =
        run_checked s
          (Config.make ~nprocs:8 ~coherence ())
          ~scale
          ~inspect:(fun e -> ref_digest := Check.heap_digest e)
      in
      check bool "fault-free verified" true ref_o.B.Common.ok;
      List.iter
        (fun sched ->
          List.iter
            (fun seed ->
              let faults = Option.get (Config.Faults.by_name sched ~seed) in
              let violations = ref [] in
              let died = ref 0 in
              let o =
                run_checked s
                  (Config.make ~nprocs:8 ~coherence ~faults
                     ~replication:Config.default_replica ())
                  ~scale
                  ~inspect:(fun e ->
                    (match Engine.failover e with
                    | Some fo -> died := Failover.failstops fo
                    | None -> ());
                    let expected_heap =
                      if s.B.Common.heap_stable then Some !ref_digest
                      else None
                    in
                    violations := Check.check ?expected_heap e)
              in
              let tag fmt =
                Printf.ksprintf
                  (fun m ->
                    Printf.sprintf "%s %s %s seed=%d: %s" s.B.Common.name
                      (Config.coherence_to_string coherence)
                      sched seed m)
                  fmt
              in
              check bool (tag "verified") true o.B.Common.ok;
              check string (tag "checksum") ref_o.B.Common.checksum
                o.B.Common.checksum;
              check string (tag "invariants") ""
                (violations_string !violations);
              check int (tag "stats agree with the failover ledger")
                o.B.Common.total_stats.Stats.failstops !died)
            [ 1; 2 ])
        [ "failstop"; "failstop-mix" ])
    [ Config.Local; Config.Global; Config.Bilateral ]

(* --- Forced deaths at the nastiest boundaries ---------------------------- *)

(* A fault schedule with every probability at zero still activates the
   failover layer, so [Failover.schedule_failstop] is the only death
   source: the tests below place deaths exactly where they hurt. *)
let armed = { Config.no_faults with Config.fault_seed = 1 }

let test_failstop_with_state_in_flight () =
  (* the victim dies at the instant a migrated thread arrives: the event
     re-homes to the promoted successor, the interrupted store applies
     exactly once against the replicated pages, and later dereferences
     resolve through the rewritten home map *)
  Site.reset ();
  let cfg =
    Config.make ~nprocs:4 ~coherence:Config.Global ~faults:armed
      ~replication:Config.default_replica ()
  in
  let engine = Engine.create cfg in
  let fo = Option.get (Engine.failover engine) in
  Failover.schedule_failstop fo ~proc:1 ~at:0;
  let mig = Site.migrate "failover.t->mig" in
  let got = ref 0 in
  Engine.exec engine (fun () ->
      let a = Ops.alloc ~proc:1 2 in
      Ops.store_int mig a 0 41;
      let v = Ops.load_int mig a 0 in
      Ops.store_int mig a 0 (v + 1);
      got := Ops.load_int mig a 0);
  check int "store applied exactly once across the death" 42 !got;
  check int "one processor died" 1 (Failover.failstops fo);
  check int "the stride-1 backup was promoted" 2
    (Failover.successor_of fo ~proc:1);
  check int "the home map resolves the victim to its successor" 2
    (Machine.home_of (Engine.machine engine) 1);
  check bool "the death time was recorded" true
    (Failover.died_at fo ~proc:1 >= 0);
  check string "invariants" "" (violations_string (Check.check engine))

let test_chained_failstops () =
  (* the promoted successor itself dies: the victim's pages must fail
     over a second time, and the home map must resolve the original
     owner through the whole chain *)
  Site.reset ();
  let cfg =
    Config.make ~nprocs:4 ~coherence:Config.Global ~faults:armed
      ~replication:Config.default_replica ()
  in
  let engine = Engine.create cfg in
  let fo = Option.get (Engine.failover engine) in
  Failover.schedule_failstop fo ~proc:1 ~at:0;
  Failover.schedule_failstop fo ~proc:2 ~at:0;
  let mig = Site.migrate "failover.t->chain" in
  let got = ref 0 in
  Engine.exec engine (fun () ->
      let a = Ops.alloc ~proc:1 2 in
      Ops.store_int mig a 0 6;
      let v = Ops.load_int mig a 0 in
      Ops.store_int mig a 1 (v * 7);
      got := Ops.load_int mig a 1);
  check int "stores applied exactly once across both deaths" 42 !got;
  check int "both deaths fired" 2 (Failover.failstops fo);
  let resolved = Machine.home_of (Engine.machine engine) 1 in
  check bool "the original owner resolves to a live processor" true
    (not (Machine.is_dead (Engine.machine engine) resolved));
  check string "invariants" "" (violations_string (Check.check engine))

let test_unreplicated_threads_abort () =
  (* with [replica_spec.threads = false] a victim holding resident work
     cannot hand it to the successor: the run must abort with the
     deterministic Threads_lost report, not wedge or silently drop *)
  Site.reset ();
  let cfg =
    Config.make ~nprocs:4 ~coherence:Config.Global ~faults:armed
      ~replication:{ Config.stride = 1; threads = false }
      ()
  in
  let engine = Engine.create cfg in
  let fo = Option.get (Engine.failover engine) in
  Failover.schedule_failstop fo ~proc:1 ~at:0;
  let mig = Site.migrate "failover.t->lost" in
  (match
     Engine.exec engine (fun () ->
         let a = Ops.alloc ~proc:1 2 in
         Ops.store_int mig a 0 41;
         ignore (Ops.load_int mig a 0))
   with
  | () -> Alcotest.fail "expected Threads_lost"
  | exception Engine.Threads_lost msg ->
      check bool
        (Printf.sprintf "report names the victim (got %S)" msg)
        true
        (contains msg "p1 fail-stopped");
      check bool "report counts the resident task" true
        (contains msg "1 unreplicated resident task"));
  let s = Machine.stats (Engine.machine engine) in
  check int "the loss is counted" 1 s.Stats.threads_lost;
  check int "the death still went through the protocol" 1
    (Failover.failstops fo)

let test_replica_traffic_flows () =
  (* with replication on and no deaths, every write-through store at a
     home page is mirrored: replica traffic shows up in the stats (and
     in the message class breakdown), and the failover report is empty *)
  Site.reset ();
  let s = B.Treeadd.spec in
  let scale = test_scale s in
  let died = ref (-1) in
  let o =
    run_checked s
      (Config.make ~nprocs:8 ~faults:armed
         ~replication:Config.default_replica ())
      ~scale
      ~inspect:(fun e ->
        match Engine.failover e with
        | Some fo -> died := Failover.failstops fo
        | None -> ())
  in
  check bool "verified" true o.B.Common.ok;
  check bool "replica mirror traffic flowed" true
    (o.B.Common.total_stats.Stats.replica_messages > 0);
  check int "no processor died" 0 !died;
  check int "no pages failed over" 0
    o.B.Common.total_stats.Stats.pages_failed_over

(* --- The retry-wait backoff can never overflow --------------------------- *)

let test_retry_wait_overflow_guard () =
  (* timeout * backoff^attempt wraps long before attempt = 64; the cap
     must be applied inside the accumulation so every attempt count up
     to (and beyond) max_attempts yields a positive, capped wait *)
  let retry =
    {
      Config.default_retry with
      Config.timeout = max_int / 3;
      backoff = 7;
      max_timeout = max_int / 2;
    }
  in
  let plan =
    Fault_plan.create { Config.no_faults with Config.drop = 0.5 } retry
  in
  for attempt = 0 to 128 do
    let wait = Fault_plan.retry_wait plan ~attempt in
    check bool
      (Printf.sprintf "attempt %d: wait %d positive and capped" attempt wait)
      true
      (wait > 0 && wait <= retry.Config.max_timeout)
  done;
  check int "high attempts settle at the cap" retry.Config.max_timeout
    (Fault_plan.retry_wait plan ~attempt:Config.default_retry.Config.max_attempts)

(* --- Undeliverable payloads and their one-line rendering ----------------- *)

let test_undeliverable_all_schemes () =
  (* drop = 1.0 exhausts the retry budget under every coherence scheme;
     the payload must name dst/klass/attempts and the shared one-line
     rendering must match what the CLI prints *)
  List.iter
    (fun (coherence, klass) ->
      let faults =
        { Config.no_faults with Config.drop = 1.0; fault_seed = 1 }
      in
      let m =
        Machine.create (Config.make ~nprocs:4 ~coherence ~faults ())
      in
      match
        Machine.request_reply ~klass m ~src:0 ~dst:3 ~service:80
      with
      | _ -> Alcotest.fail "expected Undeliverable"
      | exception Machine.Undeliverable { dst; klass = k; attempts } ->
          let tag m =
            Printf.sprintf "%s/%s: %s"
              (Config.coherence_to_string coherence)
              (Fault_plan.klass_to_string klass)
              m
          in
          check int (tag "names the destination") 3 dst;
          check string (tag "names the message class")
            (Fault_plan.klass_to_string klass)
            (Fault_plan.klass_to_string k);
          check int (tag "burned the whole retry budget")
            Config.default_retry.Config.max_attempts attempts;
          check string (tag "one-line rendering")
            (Printf.sprintf
               "%s message to processor 3 undeliverable after %d attempts"
               (Fault_plan.klass_to_string klass)
               Config.default_retry.Config.max_attempts)
            (Machine.undeliverable_to_string ~dst ~klass:k ~attempts))
    [
      (Config.Local, Fault_plan.Data);
      (Config.Global, Fault_plan.Recovery);
      (Config.Bilateral, Fault_plan.Replica);
    ]

(* --- CLI: exit discipline and archivable reports ------------------------- *)

(* Relative to the test binary, not the cwd: dune runs the suite from
   the build sandbox but `dune exec` runs it from the project root. *)
let exe =
  Filename.concat
    (Filename.concat (Filename.dirname Sys.executable_name) "../bin")
    "olden_run.exe"

let tmp suffix = Filename.temp_file "olden_failover" suffix

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_cli_chaos_unknown_schedule () =
  (* an unknown schedule name is a usage error: exit 2 plus the valid
     names, before any benchmark runs *)
  let outfile = tmp ".out" in
  let code =
    Sys.command
      (Printf.sprintf "%s chaos treeadd --schedules nosuch > %s 2>&1" exe
         outfile)
  in
  check int "exit code" 2 code;
  let out = read_file outfile in
  check bool
    (Printf.sprintf "names the bad schedule (got %S)" out)
    true
    (contains out "unknown fault schedule nosuch");
  check bool "lists the valid names" true (contains out "failstop-mix")

let test_cli_failover_report_out () =
  (* the failover report exports as olden-recovery/v1 JSON, and two runs
     of the same (seed, schedule) produce byte-identical files *)
  let run out =
    Sys.command
      (Printf.sprintf
         "%s failover treeadd --procs 8 --scale 64 --fault-seed 1 --out %s \
          > /dev/null 2>&1"
         exe out)
  in
  let out1 = tmp ".json" and out2 = tmp ".json" in
  check int "first run exits 0" 0 (run out1);
  check int "second run exits 0" 0 (run out2);
  let a = read_file out1 in
  check string "report run-twice byte-identical" a (read_file out2);
  check bool "carries the schema tag" true
    (contains a "\"schema\": \"olden-recovery/v1\"");
  check bool "carries the kind" true (contains a "\"kind\": \"failover\"");
  check bool "rows name victims" true (contains a "\"victim\"")

let test_cli_recovery_report_out () =
  let outfile = tmp ".json" in
  let code =
    Sys.command
      (Printf.sprintf
         "%s recovery treeadd --procs 8 --scale 256 --fault-seed 1 --out \
          %s > /dev/null 2>&1"
         exe outfile)
  in
  check int "exits 0" 0 code;
  let a = read_file outfile in
  check bool "carries the schema tag" true
    (contains a "\"schema\": \"olden-recovery/v1\"");
  check bool "carries the kind" true (contains a "\"kind\": \"recovery\"")

let suite =
  [
    Alcotest.test_case "zero-probability failstop = faults off" `Quick
      test_zero_prob_failstop_equivalent;
    Alcotest.test_case "same seed + death schedule => identical snapshots"
      `Quick test_failstop_determinism;
    Alcotest.test_case "failstop snapshots identical across host domains"
      `Quick test_failstop_domains_deterministic;
    Alcotest.test_case "failstop: treeadd clean under all schemes" `Quick
      (test_failstop_clean B.Treeadd.spec);
    Alcotest.test_case "failstop: em3d clean under all schemes" `Quick
      (test_failstop_clean B.Em3d.spec);
    Alcotest.test_case "death with a migration in flight" `Quick
      test_failstop_with_state_in_flight;
    Alcotest.test_case "chained deaths of successors" `Quick
      test_chained_failstops;
    Alcotest.test_case "unreplicated resident threads abort the run" `Quick
      test_unreplicated_threads_abort;
    Alcotest.test_case "replica mirror traffic flows" `Quick
      test_replica_traffic_flows;
    Alcotest.test_case "retry-wait backoff never overflows" `Quick
      test_retry_wait_overflow_guard;
    Alcotest.test_case "undeliverable payloads render across schemes" `Quick
      test_undeliverable_all_schemes;
    Alcotest.test_case "chaos rejects unknown schedules with exit 2" `Quick
      test_cli_chaos_unknown_schedule;
    Alcotest.test_case "failover report exports olden-recovery/v1" `Quick
      test_cli_failover_report_out;
    Alcotest.test_case "recovery report exports olden-recovery/v1" `Quick
      test_cli_recovery_report_out;
  ]
