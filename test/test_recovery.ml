(* Crash-and-restart recovery: seeded crash schedules replay bit-for-bit,
   a zero-probability crash schedule is exactly no faults, crashing runs
   stay coherent under all three schemes (invariant checker, checksum,
   heap digest), forced crashes at the nastiest boundaries — state in
   flight to the victim, the home of outstanding cached copies, a double
   crash — neither wedge the run nor double-apply a store, retries and
   fallbacks are attributed to the sites that caused them, and an
   undeliverable message names its class and destination. *)

open Olden
module B = Olden_benchmarks
module Check = Olden_check.Invariants

let check = Alcotest.check
let string = Alcotest.string
let bool = Alcotest.bool
let int = Alcotest.int

(* Small scales so the whole suite stays fast (test_chaos's table). *)
let test_scale (s : B.Common.spec) =
  match s.B.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

let snapshot (s : B.Common.spec) cfg ~scale =
  Site.reset ();
  let o, events = Trace.collect (fun () -> s.B.Common.run cfg ~scale) in
  check bool (s.B.Common.name ^ " verified") true o.B.Common.ok;
  (o, Json.to_string (B.Common.metrics_snapshot ~events s ~cfg ~scale o))

let violations_string vs =
  String.concat "; "
    (List.map (fun v -> Format.asprintf "%a" Check.pp_violation v) vs)

(* --- Zero-probability crashes are exactly no faults --------------------- *)

let test_zero_prob_crash_equivalent () =
  (* a schedule whose only knob is crash, set to zero, must take the same
     branches, charge the same cycles, and consume no PRNG state: the
     metrics snapshots are byte-identical to a fault-free run *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let _, off = snapshot s (Config.make ~nprocs:8 ()) ~scale in
      let _, zero =
        snapshot s
          (Config.make ~nprocs:8
             ~faults:(Config.Faults.crash ~p:0.0 ~seed:3 ())
             ())
          ~scale
      in
      check string
        (s.B.Common.name ^ ": zero-probability crashes = faults off")
        off zero)
    [ B.Treeadd.spec; B.Em3d.spec; B.Health.spec ]

(* --- Determinism under crashes ------------------------------------------ *)

let test_crash_determinism () =
  (* same workload + same crash schedule => byte-identical snapshots
     across two runs, for every Table 2 benchmark; crash-mix layers the
     message faults on top so the streams must stay independent *)
  List.iter
    (fun (s : B.Common.spec) ->
      let scale = test_scale s in
      let faults = Config.Faults.crash_mix ~seed:5 () in
      let cfg () = Config.make ~nprocs:8 ~faults () in
      let _, first = snapshot s (cfg ()) ~scale in
      let _, second = snapshot s (cfg ()) ~scale in
      check string (s.B.Common.name ^ ": crashing run-twice") first second)
    B.Registry.specs

(* --- Chaos under crashes: invariants, checksum, heap -------------------- *)

let run_checked (s : B.Common.spec) cfg ~scale ~inspect =
  (B.Common.hooks ()).inspect_engine <- Some inspect;
  Fun.protect
    ~finally:(fun () -> (B.Common.hooks ()).inspect_engine <- None)
    (fun () ->
      Site.reset ();
      s.B.Common.run cfg ~scale)

let test_crash_clean (s : B.Common.spec) () =
  let scale = test_scale s in
  List.iter
    (fun coherence ->
      let ref_digest = ref "" in
      let ref_o =
        run_checked s
          (Config.make ~nprocs:8 ~coherence ())
          ~scale
          ~inspect:(fun e -> ref_digest := Check.heap_digest e)
      in
      check bool "fault-free verified" true ref_o.B.Common.ok;
      List.iter
        (fun sched ->
          List.iter
            (fun seed ->
              let faults = Option.get (Config.Faults.by_name sched ~seed) in
              let violations = ref [] in
              let crashed = ref 0 in
              let o =
                run_checked s
                  (Config.make ~nprocs:8 ~coherence ~faults ())
                  ~scale
                  ~inspect:(fun e ->
                    (match Engine.recovery e with
                    | Some r -> crashed := Recovery.total_crashes r
                    | None -> ());
                    let expected_heap =
                      if s.B.Common.heap_stable then Some !ref_digest
                      else None
                    in
                    violations := Check.check ?expected_heap e)
              in
              let tag fmt =
                Printf.ksprintf
                  (fun m ->
                    Printf.sprintf "%s %s %s seed=%d: %s" s.B.Common.name
                      (Config.coherence_to_string coherence)
                      sched seed m)
                  fmt
              in
              check bool (tag "verified") true o.B.Common.ok;
              check string (tag "checksum") ref_o.B.Common.checksum
                o.B.Common.checksum;
              check string (tag "invariants") ""
                (violations_string !violations);
              check int (tag "stats agree with the recovery ledger")
                o.B.Common.total_stats.Stats.crashes !crashed)
            [ 1; 2 ])
        [ "crash"; "crash-mix" ])
    [ Config.Local; Config.Global; Config.Bilateral ]

(* --- Forced crashes at the nastiest boundaries -------------------------- *)

(* A fault schedule with every probability at zero still activates the
   recovery layer, so [Recovery.schedule_crash] is the only crash
   source: the tests below place crashes exactly where they hurt. *)
let armed = { Config.no_faults with Config.fault_seed = 1 }

let test_crash_with_migration_in_flight () =
  (* the victim crashes at the instant a migrated thread arrives: the
     thread state survives (it is retried network state, not victim
     cache state), the interrupted store applies exactly once *)
  Site.reset ();
  let cfg = Config.make ~nprocs:4 ~coherence:Config.Global ~faults:armed () in
  let engine = Engine.create cfg in
  let r = Option.get (Engine.recovery engine) in
  Recovery.schedule_crash r ~proc:1 ~at:0;
  let mig = Site.migrate "recov.t->mig" in
  let got = ref 0 in
  Engine.exec engine (fun () ->
      let a = Ops.alloc ~proc:1 2 in
      Ops.store_int mig a 0 41;
      let v = Ops.load_int mig a 0 in
      Ops.store_int mig a 0 (v + 1);
      got := Ops.load_int mig a 0);
  check int "store applied exactly once across the crash" 42 !got;
  check int "the victim crashed once" 1 (Recovery.crashes r ~proc:1);
  check string "invariants" "" (violations_string (Check.check engine))

let test_home_crash_with_copies_outstanding () =
  (* the home of a cached page crashes while a remote sharer holds (and
     keeps fetching) copies: home pages and the directory survive the
     crash, so the fetches stay serviceable, the sharer registration
     outlives the crash, and a post-crash write at the home still
     invalidates the copy *)
  Site.reset ();
  let cfg = Config.make ~nprocs:4 ~coherence:Config.Global ~faults:armed () in
  let engine = Engine.create cfg in
  let r = Option.get (Engine.recovery engine) in
  Recovery.schedule_crash r ~proc:1 ~at:0;
  let csite = Site.cache "recov.t->cached" in
  let mig = Site.migrate "recov.t->home" in
  let first_sum = ref 0 and after = ref 0 and on_home = ref 0 in
  Engine.exec engine (fun () ->
      let a = Ops.alloc ~proc:1 10 in
      for i = 0 to 9 do
        Ops.store_int csite a i (i + 1)
      done;
      let fut =
        Ops.future (fun () ->
            (* migrates to p1 — the arrival is the crash boundary — then
               reads the page locally and overwrites slot 0 at the home *)
            let v = ref 0 in
            for i = 1 to 9 do
              v := !v + Ops.load_int mig a i
            done;
            on_home := !v;
            Ops.store_int mig a 0 100;
            Value.Int !v)
      in
      (* the stolen continuation, back on p0: cached reads of the same
         page while its home is crashing (slots p1 never writes) *)
      for i = 1 to 9 do
        first_sum := !first_sum + Ops.load_int csite a i
      done;
      ignore (Ops.touch fut);
      after := Ops.load_int csite a 0);
  check int "reads at the home see the write-through state" 54 !on_home;
  check int "cached reads survive the home's crash" 54 !first_sum;
  check int "post-crash write at the home invalidates the copy" 100 !after;
  check int "the home crashed once" 1 (Recovery.crashes r ~proc:1);
  check string "invariants" "" (violations_string (Check.check engine))

let test_double_crash_same_processor () =
  (* two forced orders for the same processor: the second fires at the
     victim's first boundary after the restart — recovery must cope with
     crashing again before any new state was rebuilt *)
  Site.reset ();
  let cfg = Config.make ~nprocs:4 ~coherence:Config.Global ~faults:armed () in
  let engine = Engine.create cfg in
  let r = Option.get (Engine.recovery engine) in
  Recovery.schedule_crash r ~proc:1 ~at:0;
  Recovery.schedule_crash r ~proc:1 ~at:1;
  let mig = Site.migrate "recov.t->twice" in
  let got = ref 0 in
  Engine.exec engine (fun () ->
      let a = Ops.alloc ~proc:1 2 in
      Ops.store_int mig a 0 6;
      let v = Ops.load_int mig a 0 in
      Ops.store_int mig a 1 (v * 7);
      got := Ops.load_int mig a 1);
  check int "both crashes fired" 2 (Recovery.crashes r ~proc:1);
  check int "stores still applied exactly once" 42 !got;
  check string "invariants" "" (violations_string (Check.check engine))

(* --- Per-site retry and fallback attribution ---------------------------- *)

let test_site_retry_attribution () =
  (* flaky homes force migration give-ups: the global counters must be
     recoverable from the per-site profile, and the metrics snapshot
     must carry the new per-site fields *)
  let s = B.Treeadd.spec in
  let scale = test_scale s in
  let faults = Config.Faults.flaky_home ~seed:1 () in
  let cfg = Config.make ~nprocs:8 ~faults () in
  let o, snap = snapshot s cfg ~scale in
  let st = o.B.Common.total_stats in
  let sum f = List.fold_left (fun n x -> n + f x) 0 (Site.all ()) in
  check bool "the schedule produced fallbacks" true
    (st.Stats.migration_fallbacks > 0);
  check int "per-site fallbacks sum to the global counter"
    st.Stats.migration_fallbacks
    (sum (fun (x : Site.t) -> x.Site.fallbacks));
  let site_retries = sum (fun (x : Site.t) -> x.Site.retries) in
  check bool "retries attributed to the sites that stalled" true
    (site_retries > 0 && site_retries <= st.Stats.retries);
  let contains sub =
    let n = String.length sub and len = String.length snap in
    let rec at i = i + n <= len && (String.sub snap i n = sub || at (i + 1)) in
    at 0
  in
  check bool "snapshot carries per-site retries" true (contains "\"retries\"");
  check bool "snapshot carries per-site fallbacks" true
    (contains "\"migration_fallbacks\"");
  check bool "snapshot carries per-proc recovery stall" true
    (contains "\"recovery_stall_cycles\"")

(* --- Undeliverable messages name their class ---------------------------- *)

let test_undeliverable_names_class () =
  (* drop = 1.0 exhausts the retry budget; the error must say what kind
     of message died and where it was headed — the difference between
     "a cache fetch is stuck" and "a crashed processor cannot announce
     its recovery" *)
  let faults = { Config.no_faults with Config.drop = 1.0; fault_seed = 1 } in
  let m = Machine.create (Config.make ~nprocs:4 ~faults ()) in
  match
    Machine.request_reply ~klass:Fault_plan.Recovery m ~src:0 ~dst:3
      ~service:80
  with
  | _ -> Alcotest.fail "expected Undeliverable"
  | exception Machine.Undeliverable { dst; klass; attempts } ->
      check int "names the destination" 3 dst;
      check string "names the message class" "recovery"
        (Fault_plan.klass_to_string klass);
      check int "burned the whole retry budget"
        Config.default_retry.Config.max_attempts attempts

let suite =
  [
    Alcotest.test_case "zero-probability crashes = faults off" `Quick
      test_zero_prob_crash_equivalent;
    Alcotest.test_case "same seed + crash schedule => identical snapshots"
      `Quick test_crash_determinism;
    Alcotest.test_case "crashes: treeadd clean under all schemes" `Quick
      (test_crash_clean B.Treeadd.spec);
    Alcotest.test_case "crashes: em3d clean under all schemes" `Quick
      (test_crash_clean B.Em3d.spec);
    Alcotest.test_case "crash with a migration in flight" `Quick
      test_crash_with_migration_in_flight;
    Alcotest.test_case "home crash with cached copies outstanding" `Quick
      test_home_crash_with_copies_outstanding;
    Alcotest.test_case "double crash of the same processor" `Quick
      test_double_crash_same_processor;
    Alcotest.test_case "retries and fallbacks attributed per site" `Quick
      test_site_retry_attribution;
    Alcotest.test_case "undeliverable errors name the message class" `Quick
      test_undeliverable_names_class;
  ]
