(* The profiler layer: per-site cost attribution, the dependency DAG and
   critical-path analysis (hand-built streams with known longest paths,
   ties, and the empty stream), per-processor accounting, snapshot
   diffing, and the trace summary digest. *)

open Olden
module B = Olden_benchmarks

let check = Alcotest.check
let int = Alcotest.int
let string = Alcotest.string
let bool = Alcotest.bool

let costs = (Config.make ~nprocs:2 ()).Config.costs

(* Event constructors for hand-built streams. *)
let ev ?(tid = 0) ?(site = -1) ~t ~p kind =
  { Trace.time = t; proc = p; tid; site; kind }

(* --- Attribution on hand-built streams ------------------------------------ *)

(* One migration (2800 cycles measured), one return stub (1200) charged
   back to the migration's site, one cache miss (model: 400) and one
   revalidation (model: 360) at another site. *)
let attribution_stream =
  [|
    ev ~t:100 ~p:0 ~tid:1 ~site:5 (Trace.Migrate_send { target = 1 });
    ev ~t:2900 ~p:1 ~tid:1 (Trace.Migrate_arrive { source = 0 });
    ev ~t:3000 ~p:1 ~tid:2 ~site:7
      (Trace.Cache_miss { home = 0; page = 3; line = 1 });
    ev ~t:3400 ~p:1 ~tid:2 ~site:7
      (Trace.Revalidate { home = 0; page = 3; dropped = 0 });
    ev ~t:5000 ~p:1 ~tid:1 (Trace.Return_send { target = 0 });
    ev ~t:6200 ~p:0 ~tid:1 (Trace.Return_arrive { source = 1 });
  |]

let test_attribution_charges () =
  let entries = Attribution.of_events ~costs attribution_stream in
  check int "two sites" 2 (List.length entries);
  let find site = List.find (fun e -> e.Attribution.site = site) entries in
  let migr = find 5 in
  check int "one migration" 1 migr.Attribution.migrations;
  check int "measured migration latency" 2800 migr.Attribution.migration_cycles;
  check int "return charged to the migration's site" 1
    migr.Attribution.returns;
  check int "measured return latency" 1200 migr.Attribution.return_cycles;
  let cache = find 7 in
  check int "one miss" 1 cache.Attribution.misses;
  check int "model miss round trip" (Config.miss_round_trip costs)
    cache.Attribution.miss_cycles;
  check int "one revalidation" 1 cache.Attribution.revalidations;
  check int "model revalidation stall"
    ((2 * costs.Config.net_latency) + costs.Config.timestamp_service)
    cache.Attribution.revalidate_cycles;
  check int "grand total covers every component"
    (2800 + 1200 + 400 + 360)
    (Attribution.grand_total entries);
  (* ranked by total, descending *)
  check int "largest first" 5 (List.nth entries 0).Attribution.site

let test_attribution_names () =
  let site_name = function 5 -> Some "t->left@treeadd" | _ -> None in
  let entries = Attribution.of_events ~site_name ~costs attribution_stream in
  let name site =
    (List.find (fun e -> e.Attribution.site = site) entries).Attribution.name
  in
  check string "named site" "t->left@treeadd" (name 5);
  check string "fallback name" "site#7" (name 7)

let test_attribution_unattributed () =
  (* a return stub from a thread that never migrated lands in the
     unattributed bucket, and an arrival with no matching send is
     ignored rather than inventing cost *)
  let events =
    [|
      ev ~t:10 ~p:0 ~tid:3 (Trace.Return_send { target = 1 });
      ev ~t:1210 ~p:1 ~tid:3 (Trace.Return_arrive { source = 0 });
      ev ~t:2000 ~p:0 ~tid:9 (Trace.Migrate_arrive { source = 1 });
    |]
  in
  let entries = Attribution.of_events ~costs events in
  check int "one bucket" 1 (List.length entries);
  let e = List.hd entries in
  check int "unattributed id" (-1) e.Attribution.site;
  check string "unattributed label" "<unattributed>" e.Attribution.name;
  check int "only the paired return counted" 1200 (Attribution.total e);
  check int "orphan arrival charged nothing" 0 e.Attribution.migrations

let test_attribution_empty () =
  check int "empty stream, no entries" 0
    (List.length (Attribution.of_events ~costs [||]))

let test_folded () =
  let entries = Attribution.of_events ~costs attribution_stream in
  let folded = Attribution.folded ~prefix:"test" entries in
  let lines = String.split_on_char '\n' (String.trim folded) in
  check int "one line per nonzero component" 4 (List.length lines);
  check bool "migration line present" true
    (List.mem "test;site#5;migration 2800" lines);
  check bool "return line present" true
    (List.mem "test;site#5;return 1200" lines);
  check bool "miss line present" true
    (List.mem "test;site#7;cache-miss 400" lines);
  check bool "revalidate line present" true
    (List.mem "test;site#7;revalidate 360" lines)

(* --- Dependency graph and critical path ----------------------------------- *)

let test_critical_path_migration_chain () =
  (* migrate out, compute, return: every hop class measurable by hand *)
  let events =
    [|
      ev ~t:0 ~p:0 ~tid:1 ~site:3 (Trace.Migrate_send { target = 1 });
      ev ~t:2800 ~p:1 ~tid:1 (Trace.Migrate_arrive { source = 0 });
      ev ~t:3000 ~p:1 ~tid:1 (Trace.Return_send { target = 0 });
      ev ~t:4200 ~p:0 ~tid:1 (Trace.Return_arrive { source = 1 });
    |]
  in
  let g = Depgraph.build events in
  check (Alcotest.option int) "last event ends the path" (Some 3)
    (Depgraph.last g);
  check (Alcotest.list int) "chain is the whole hop sequence" [ 0; 1; 2; 3 ]
    (Depgraph.chain g);
  let t = Critical_path.analyze events in
  check int "span is the last timestamp" 4200 t.Critical_path.span;
  check int "four hops" 4 t.Critical_path.length;
  check int "migration time on the path" 2800
    t.Critical_path.migration_cycles;
  check int "return time on the path" 1200 t.Critical_path.return_cycles;
  check int "compute is the remainder" 200 t.Critical_path.compute_cycles;
  check int "what-if bound removes the in-flight time" 200
    t.Critical_path.what_if_free_migration

let test_critical_path_future_wait () =
  (* a parked touch is released by a resolve on another processor: the
     post-park hop must take the Resolve edge (t=1000), not the stale
     program/processor edges (t=100) *)
  let events =
    [|
      ev ~t:0 ~p:0 ~tid:1 (Trace.Future_spawn { fid = 7 });
      ev ~t:50 ~p:1 ~tid:2 Trace.Steal;
      ev ~t:100 ~p:0 ~tid:1 (Trace.Future_touch { fid = 7; parked = true });
      ev ~t:1000 ~p:1 ~tid:2 (Trace.Future_resolve { fid = 7; waiters = 1 });
      ev ~t:1100 ~p:0 ~tid:1 (Trace.Future_touch { fid = 7; parked = false });
    |]
  in
  let g = Depgraph.build events in
  (match g.Depgraph.realized.(4) with
  | Depgraph.Resolve 3 -> ()
  | _ -> Alcotest.fail "post-park event must realize the Resolve edge");
  check (Alcotest.list int) "path runs through the resolver" [ 1; 3; 4 ]
    (Depgraph.chain g);
  let t = Critical_path.analyze events in
  check int "wait cycles measured from the resolve" 100
    t.Critical_path.wait_cycles;
  check int "steal hop from t=0" 50 t.Critical_path.steal_cycles;
  check int "resolver's compute" 950 t.Critical_path.compute_cycles;
  check int "migration-free bound is the whole span" 1100
    t.Critical_path.what_if_free_migration

let test_critical_path_ties () =
  (* equal timestamps: the latest emission wins, both for the path's
     endpoint and for the realized predecessor *)
  let events =
    [|
      ev ~t:100 ~p:0 ~tid:1 Trace.Steal;
      ev ~t:100 ~p:1 ~tid:2 Trace.Steal;
      ev ~t:200 ~p:0 ~tid:2 (Trace.Future_spawn { fid = 0 });
    |]
  in
  let g = Depgraph.build events in
  (* event 2 could follow event 0 (processor order) or event 1 (program
     order); both finished at t=100, so the later emission (index 1) is
     the realized predecessor *)
  (match g.Depgraph.realized.(2) with
  | Depgraph.Program 1 -> ()
  | _ -> Alcotest.fail "tie must resolve toward the latest emission");
  check (Alcotest.list int) "chain through the tie" [ 1; 2 ]
    (Depgraph.chain g);
  (* a two-way tie for the last event: index 1 wins *)
  let tie = [| events.(0); events.(1) |] in
  check (Alcotest.option int) "endpoint tie resolves to the later index"
    (Some 1)
    (Depgraph.last (Depgraph.build tie))

let test_critical_path_empty () =
  check (Alcotest.option int) "no last event" None
    (Depgraph.last (Depgraph.build [||]));
  check (Alcotest.list int) "no chain" [] (Depgraph.chain (Depgraph.build [||]));
  let t = Critical_path.analyze [||] in
  check int "zero span" 0 t.Critical_path.span;
  check int "zero hops" 0 t.Critical_path.length;
  check int "zero what-if" 0 t.Critical_path.what_if_free_migration;
  (* the printers cope with the empty analysis too *)
  let s = Format.asprintf "%a" (Critical_path.pp ?site_name:None ~tail:4) t in
  check bool "summary renders" true (String.length s > 0)

let test_breakdown_identity () =
  let rows =
    Critical_path.breakdown ~makespan:1000
      ~busy:[| 600; 800 |]
      ~comm:[| 150; 0 |]
      ()
  in
  List.iter
    (fun r ->
      check int "row sums to the makespan" 1000
        Critical_path.(r.busy + r.comm + r.idle))
    rows;
  check int "idle is the remainder" 250 (List.nth rows 0).Critical_path.idle;
  let s =
    Format.asprintf "%a" (fun ppf -> Critical_path.pp_breakdown ppf ~makespan:1000) rows
  in
  check bool "table renders the identity" true
    (let sub = "2 x makespan 1000" in
     let rec find i =
       i + String.length sub <= String.length s
       && (String.sub s i (String.length sub) = sub || find (i + 1))
     in
     find 0)

(* --- Reconciliation against a real run ------------------------------------ *)

(* 8-processor treeadd: migration counts in the attribution match the
   stream, and the machine's busy/comm/idle accounting tiles
   nprocs x makespan exactly. *)
let test_treeadd_reconciles () =
  Site.reset ();
  let cfg = Config.make ~nprocs:8 () in
  let o, events =
    Trace.collect (fun () -> B.Treeadd.spec.B.Common.run cfg ~scale:4096)
  in
  check bool "verified" true o.B.Common.ok;
  let entries = Attribution.of_events ~costs:cfg.Config.costs events in
  let arrivals =
    Array.fold_left
      (fun n e ->
        match e.Trace.kind with Trace.Migrate_arrive _ -> n + 1 | _ -> n)
      0 events
  in
  check int "every completed migration attributed" arrivals
    (List.fold_left (fun n e -> n + e.Attribution.migrations) 0 entries);
  check bool "attributed cycles are positive" true
    (Attribution.grand_total entries > 0);
  (* machine accounting: busy + comm + idle = nprocs x makespan *)
  let busy = (B.Common.hooks ()).last_busy and comm = (B.Common.hooks ()).last_comm in
  let makespan = Array.fold_left max 0 (B.Common.hooks ()).last_clocks in
  let rows = Critical_path.breakdown ~makespan ~busy ~comm () in
  List.iter
    (fun r ->
      check bool "idle never negative" true (r.Critical_path.idle >= 0);
      check int "row tiles the makespan" makespan
        Critical_path.(r.busy + r.comm + r.idle))
    rows;
  (* the critical path is bounded by the traced span and mostly compute
     for this migration-only benchmark *)
  let t = Critical_path.analyze events in
  check bool "path has hops" true (t.Critical_path.length > 0);
  check bool "breakdown covers the span" true
    (t.Critical_path.compute_cycles + t.Critical_path.migration_cycles
     + t.Critical_path.return_cycles + t.Critical_path.wait_cycles
     + t.Critical_path.steal_cycles
    <= t.Critical_path.span)

(* em3d exercises the cache layer: every comm cycle the machine accounts
   is a request/reply stall the attribution prices identically, so the
   two totals agree exactly (handler contention is off by default). *)
let test_em3d_stalls_match_comm () =
  Site.reset ();
  let cfg = Config.make ~nprocs:2 () in
  let o, events =
    Trace.collect (fun () -> B.Em3d.spec.B.Common.run cfg ~scale:1024)
  in
  check bool "verified" true o.B.Common.ok;
  let entries = Attribution.of_events ~costs:cfg.Config.costs events in
  let stalls =
    List.fold_left
      (fun n e ->
        n + e.Attribution.miss_cycles + e.Attribution.revalidate_cycles)
      0 entries
  in
  check bool "cache stalls attributed" true (stalls > 0);
  check int "attributed stalls equal machine comm" stalls
    (Array.fold_left ( + ) 0 (B.Common.hooks ()).last_comm)

(* --- Snapshot diffing ------------------------------------------------------ *)

let snapshot ?(verified = true) ?(measured = 1000) ?(migrations = 10) name =
  Printf.sprintf
    {|{"schema": "olden-metrics/v1", "benchmark": "%s", "verified": %b,
       "measured_cycles": %d, "total_cycles": %d,
       "stats": {"migrations": %d, "cache_misses": 0, "messages": 0}}|}
    name verified measured (measured + 500) migrations
  |> Json.of_string

let table names =
  Json.Obj
    [
      ("schema", Json.String "olden-metrics-table/v1");
      ("benchmarks", Json.List (List.map (fun n -> snapshot n) names));
    ]

let diff_exn ~tolerance ~base ~current =
  match Snapshot_diff.compare_json ~tolerance ~base ~current with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_diff_identical () =
  let base = snapshot "TreeAdd" in
  let r = diff_exn ~tolerance:0.05 ~base ~current:base in
  check int "no regressions" 0 (List.length (Snapshot_diff.regressions r));
  check bool "deltas reported" true (List.length r.Snapshot_diff.deltas >= 2)

let test_diff_regression () =
  let base = snapshot "TreeAdd" in
  let current = snapshot ~measured:1250 "TreeAdd" in
  let r = diff_exn ~tolerance:0.05 ~base ~current in
  let regs = Snapshot_diff.regressions r in
  check bool "cycle regression caught" true
    (List.exists
       (fun d -> d.Snapshot_diff.metric = "measured_cycles")
       regs);
  (* a generous tolerance swallows it *)
  let r = diff_exn ~tolerance:0.5 ~base ~current in
  check int "within tolerance" 0 (List.length (Snapshot_diff.regressions r))

let test_diff_context_not_gated () =
  (* mechanism counters are context: tripling migrations never gates *)
  let base = snapshot "TreeAdd" in
  let current = snapshot ~migrations:30 "TreeAdd" in
  let r = diff_exn ~tolerance:0.05 ~base ~current in
  check int "counters never gate" 0
    (List.length (Snapshot_diff.regressions r));
  (* improvements do not gate either *)
  let faster = snapshot ~measured:500 "TreeAdd" in
  let r = diff_exn ~tolerance:0.05 ~base ~current:faster in
  check int "improvement is not a regression" 0
    (List.length (Snapshot_diff.regressions r))

let test_diff_verified_flip () =
  let base = snapshot "TreeAdd" in
  let current = snapshot ~verified:false "TreeAdd" in
  let r = diff_exn ~tolerance:0.05 ~base ~current in
  check bool "verification failure gates" true
    (List.exists
       (fun d -> d.Snapshot_diff.metric = "verified")
       (Snapshot_diff.regressions r))

let test_diff_table_schema () =
  let base = table [ "TreeAdd"; "MST"; "EM3D" ] in
  let current = table [ "TreeAdd"; "EM3D"; "Power" ] in
  let r = diff_exn ~tolerance:0.05 ~base ~current in
  check (Alcotest.list string) "missing benchmarks listed" [ "MST" ]
    r.Snapshot_diff.missing;
  check (Alcotest.list string) "added benchmarks listed" [ "Power" ]
    r.Snapshot_diff.added;
  check int "matched benchmarks compared" (2 * 5)
    (List.length r.Snapshot_diff.deltas)

let test_diff_rejects_garbage () =
  let bad = Json.Obj [ ("schema", Json.String "nonsense/v9") ] in
  (match
     Snapshot_diff.compare_json ~tolerance:0.05 ~base:bad
       ~current:(snapshot "X")
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unrecognized schema must be rejected");
  match
    Snapshot_diff.compare_json ~tolerance:0.05 ~base:(Json.Int 3)
      ~current:(snapshot "X")
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-snapshot must be rejected"

(* --- Summary digest -------------------------------------------------------- *)

let test_summary_empty () =
  let s = Format.asprintf "%a" (Trace_summary.pp ?site_name:None ?head:None) [||] in
  check string "empty stream digest" "0 events\n" s

let test_summary_digest () =
  let events =
    [|
      ev ~t:0 ~p:0 ~tid:1 ~site:5 (Trace.Migrate_send { target = 1 });
      ev ~t:2800 ~p:1 ~tid:1 (Trace.Migrate_arrive { source = 0 });
      ev ~t:3000 ~p:1 ~tid:1 (Trace.Phase_mark "kernel");
    |]
  in
  let site_name = function 5 -> Some "t->left@treeadd" | _ -> None in
  let s =
    Format.asprintf "%a" (Trace_summary.pp ~site_name ~head:3) events
  in
  let contains sub =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check bool "event count" true (contains "3 events");
  check bool "time span" true (contains "time span: 0 .. 3000 cycles");
  check bool "kind totals" true (contains "migrate_send");
  check bool "phase marks" true (contains "kernel");
  check bool "head resolves site names" true (contains "t->left@treeadd")

let suite =
  [
    Alcotest.test_case "attribution charges" `Quick test_attribution_charges;
    Alcotest.test_case "attribution site names" `Quick test_attribution_names;
    Alcotest.test_case "attribution unattributed bucket" `Quick
      test_attribution_unattributed;
    Alcotest.test_case "attribution empty stream" `Quick
      test_attribution_empty;
    Alcotest.test_case "folded stacks" `Quick test_folded;
    Alcotest.test_case "critical path: migration chain" `Quick
      test_critical_path_migration_chain;
    Alcotest.test_case "critical path: future wait" `Quick
      test_critical_path_future_wait;
    Alcotest.test_case "critical path: ties" `Quick test_critical_path_ties;
    Alcotest.test_case "critical path: empty stream" `Quick
      test_critical_path_empty;
    Alcotest.test_case "processor breakdown identity" `Quick
      test_breakdown_identity;
    Alcotest.test_case "treeadd reconciliation (8 procs)" `Quick
      test_treeadd_reconciles;
    Alcotest.test_case "em3d stalls equal machine comm" `Quick
      test_em3d_stalls_match_comm;
    Alcotest.test_case "diff: identical snapshots" `Quick test_diff_identical;
    Alcotest.test_case "diff: cycle regression" `Quick test_diff_regression;
    Alcotest.test_case "diff: context metrics and improvements" `Quick
      test_diff_context_not_gated;
    Alcotest.test_case "diff: verified flip" `Quick test_diff_verified_flip;
    Alcotest.test_case "diff: table schema" `Quick test_diff_table_schema;
    Alcotest.test_case "diff: rejects garbage" `Quick
      test_diff_rejects_garbage;
    Alcotest.test_case "summary: empty stream" `Quick test_summary_empty;
    Alcotest.test_case "summary: digest" `Quick test_summary_digest;
  ]
