(* The benchmark harness: regenerates every table and figure of the paper
   (the reproduction proper), then runs Bechamel microbenchmarks of the
   simulator's own host-side performance — one Test.make per table/figure,
   each measuring a scaled-down regeneration of that artifact.

     dune exec bench/main.exe                # everything
     dune exec bench/main.exe -- tables      # only the paper tables/figures
     dune exec bench/main.exe -- micro       # only the Bechamel suite
     dune exec bench/main.exe -- snapshots   # only BENCH_table2.json
     dune exec bench/main.exe -- hostperf    # only BENCH_hostperf.json
     dune exec bench/main.exe -- latency     # only BENCH_latency.json
     dune exec bench/main.exe -- spans       # only BENCH_spans.json
     dune exec bench/main.exe -- serving     # only BENCH_serving.json

   Host-side throughput (hostperf) should be run under dune's release
   profile; the dev profile's checks distort the numbers.
*)

open Olden_benchmarks
module C = Olden_config

let ppf = Format.std_formatter

let rule () = Format.printf "%s@." (String.make 78 '-')

(* The snapshot modes below accept --domains N: each benchmark row is one
   job on an Olden_parallel pool, and the engine inside each run is
   sharded the same way.  Every job starts from a full Site.reset, so
   site ids are job-local and the artifacts are byte-identical for any
   pool size — CI cmp's a --domains 1 run against a --domains 4 run. *)
let sweep_rows ~domains job =
  let rows, _ =
    Olden_parallel.Sweep.run ~domains
      (fun ~label:_ s -> job s)
      (List.map (fun (s : Common.spec) -> (s.Common.name, s)) Registry.specs)
  in
  List.map (fun (p : _ Olden_parallel.Sweep.point) -> p.Olden_parallel.Sweep.value) rows

(* Machine-readable counterpart of Table 2: one olden-metrics/v1 snapshot
   per benchmark (8 processors, harness scale, traced so the snapshot
   includes event-derived histograms), written to BENCH_table2.json in
   the working directory. *)
let metrics_snapshots ~domains () =
  let module Json = Olden_trace.Json in
  let nprocs = 8 in
  let rows =
    sweep_rows ~domains (fun (s : Common.spec) ->
        let cfg = C.make ~nprocs ~host_domains:domains () in
        let scale = s.Common.default_scale in
        (Common.hooks ()).record_trace <- true;
        Olden_runtime.Site.reset ();
        let o = s.Common.run cfg ~scale in
        (Common.hooks ()).record_trace <- false;
        let events = Option.value ~default:[||] (Common.hooks ()).last_trace in
        Common.metrics_snapshot ~events s ~cfg ~scale o)
  in
  let file = "BENCH_table2.json" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_pretty_string
           (Json.Obj
              [
                ("schema", Json.String "olden-metrics-table/v1");
                ("nprocs", Json.Int nprocs);
                ("benchmarks", Json.List rows);
              ])));
  Format.printf "metrics snapshots: %s (%d benchmarks, %d processors)@." file
    (List.length rows) nprocs

(* Machine-readable latency distributions over the Table-2 suite: one
   monitored run per benchmark (8 processors, harness scale), each row
   carrying the end-to-end dereference/episode latency quantiles
   (olden-latency/v1, documented in docs/OBSERVABILITY.md).  Deterministic,
   so CI diffs it against bench/baseline_latency.json. *)
let latency_snapshots ~domains () =
  let module Json = Olden_trace.Json in
  let nprocs = 8 in
  let interval = 100_000 in
  let rows =
    sweep_rows ~domains (fun (s : Common.spec) ->
        let cfg = C.make ~nprocs ~host_domains:domains () in
        let scale = s.Common.default_scale in
        (Common.hooks ()).monitor_interval <- Some interval;
        (* full reset (not just profiles): site ids restart at 0 per
           benchmark, so per-site labels are stable run to run *)
        Olden_runtime.Site.reset ();
        let o =
          Fun.protect
            ~finally:(fun () -> (Common.hooks ()).monitor_interval <- None)
            (fun () -> s.Common.run cfg ~scale)
        in
        let m = Option.get (Common.hooks ()).last_monitor in
        (Common.hooks ()).last_monitor <- None;
        Json.Obj
          [
            ("benchmark", Json.String s.Common.name);
            ("choice", Json.String s.Common.choice);
            ("scale", Json.Int scale);
            ("coherence", Json.String (C.coherence_to_string cfg.C.coherence));
            ("policy", Json.String (C.policy_to_string cfg.C.policy));
            ("verified", Json.Bool o.Common.ok);
            ("measured_cycles", Json.Int (Common.measured_cycles s o));
            ("windows", Json.Int (List.length (Common.Monitor.windows m)));
            ( "latency",
              Common.Monitor.latency_json
                ~site_names:(Olden_runtime.Site.labels ())
                m );
          ])
  in
  let file = "BENCH_latency.json" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_pretty_string
           (Json.Obj
              [
                ("schema", Json.String "olden-latency/v1");
                ("nprocs", Json.Int nprocs);
                ("interval", Json.Int interval);
                ("benchmarks", Json.List rows);
              ])));
  Format.printf "latency snapshots: %s (%d benchmarks, %d processors)@." file
    (List.length rows) nprocs

(* Machine-readable span census over the Table-2 suite: one spanned run
   per benchmark (8 processors, harness scale) counting causal spans per
   kind — a cheap, fully deterministic canary for the olden-spans/v1
   exporter (CI additionally byte-compares two full exports). *)
let spans_census ~domains () =
  let module Json = Olden_trace.Json in
  let module Span = Olden_span.Span in
  let nprocs = 8 in
  let rows =
    sweep_rows ~domains (fun (s : Common.spec) ->
        let cfg = C.make ~nprocs ~host_domains:domains () in
        let scale = s.Common.default_scale in
        (Common.hooks ()).record_spans <- true;
        Olden_runtime.Site.reset ();
        let o =
          Fun.protect
            ~finally:(fun () -> (Common.hooks ()).record_spans <- false)
            (fun () -> s.Common.run cfg ~scale)
        in
        let spans = Option.value ~default:[||] (Common.hooks ()).last_spans in
        (Common.hooks ()).last_spans <- None;
        let counts = Hashtbl.create 8 in
        Array.iter
          (fun (sp : Span.span) ->
            let k = Span.kind_name sp.Span.kind in
            Hashtbl.replace counts k
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
          spans;
        let per_kind =
          Hashtbl.fold (fun k v acc -> (k, Json.Int v) :: acc) counts []
          |> List.sort compare
        in
        Json.Obj
          [
            ("benchmark", Json.String s.Common.name);
            ("scale", Json.Int scale);
            ("verified", Json.Bool o.Common.ok);
            ("spans", Json.Int (Array.length spans));
            ("per_kind", Json.Obj per_kind);
          ])
  in
  let file = "BENCH_spans.json" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_pretty_string
           (Json.Obj
              [
                ("schema", Json.String "olden-spans-census/v1");
                ("nprocs", Json.Int nprocs);
                ("benchmarks", Json.List rows);
              ])));
  Format.printf "span census: %s (%d benchmarks, %d processors)@." file
    (List.length rows) nprocs

(* Machine-readable open-system serving report: one row per (heap,
   coherence scheme) pair, each carrying throughput, per-request-class
   admission-to-completion quantiles, and an offered-load sweep with the
   saturation knee (olden-serving/v1, documented in docs/SERVING.md).
   Deterministic, so CI diffs it against bench/baseline_serving.json. *)
let serving_snapshots ~domains () =
  let module Json = Olden_trace.Json in
  let module Serving = Olden.Serving in
  let nprocs = 8 in
  let scale = 64 in
  let spec = C.Serving.make ~rate:0.5 ~duration:40_000 () in
  let mix = Serving.default_mix in
  let points =
    List.concat_map
      (fun heap ->
        List.map
          (fun coherence ->
            ( Printf.sprintf "%s/%s" (Serving.heap_name heap)
                (C.coherence_to_string coherence),
              (heap, coherence) ))
          [ C.Local; C.Global; C.Bilateral ])
      Serving.all_heaps
  in
  let rows, _ =
    Olden_parallel.Sweep.run ~domains
      (fun ~label:_ (heap, coherence) ->
        let cfg = C.make ~nprocs ~coherence ~host_domains:domains () in
        let r = Serving.run ~scale ~cfg ~spec ~mix heap in
        let sweep = Serving.saturation_sweep ~scale ~cfg ~spec ~mix heap in
        Serving.result_json ~sweep r)
      points
  in
  let rows =
    List.map
      (fun (p : _ Olden_parallel.Sweep.point) -> p.Olden_parallel.Sweep.value)
      rows
  in
  let file = "BENCH_serving.json" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_pretty_string
           (Json.Obj
              [
                ("schema", Json.String "olden-serving/v1");
                ("nprocs", Json.Int nprocs);
                ("scale", Json.Int scale);
                ("profile", Json.String (C.Serving.profile_to_string spec.C.Serving.profile));
                ("rate_rpk", Json.Float spec.C.Serving.rate);
                ("duration", Json.Int spec.C.Serving.duration);
                ("streams", Json.Int spec.C.Serving.streams);
                ("arrival_seed", Json.Int spec.C.Serving.arrival_seed);
                ("benchmarks", Json.List rows);
              ])));
  Format.printf "serving snapshots: %s (%d rows, %d processors)@." file
    (List.length rows) nprocs

let tables () =
  rule ();
  Tables.table1 ppf ();
  rule ();
  Format.printf
    "Machine model: %d-byte pages, %d-byte lines, %d-bucket translation \
     table (Figure 1); migration ~7x a line miss.@."
    C.Geometry.page_bytes C.Geometry.line_bytes C.Geometry.hash_buckets;
  rule ();
  Tables.table2 ppf ();
  rule ();
  Tables.table3 ppf ();
  rule ();
  Tables.appendix_a ppf ();
  rule ();
  Tables.figure2 ppf ();
  rule ();
  Tables.figure3 ppf ();
  rule ();
  Tables.figure4 ppf ();
  rule ();
  Tables.figure5 ppf ();
  rule ();
  Tables.defaults ppf ();
  rule ();
  (* ablations called out in DESIGN.md *)
  Format.printf
    "Ablation: local-scheme return-invalidation refinement (Section 3.2)@.";
  List.iter
    (fun refinement ->
      let cfg =
        {
          (C.make ~nprocs:32 ()) with
          C.return_invalidate_refinement = refinement;
        }
      in
      let o = Bisort.spec.Common.run cfg ~scale:32 in
      Format.printf "  refinement=%-5b kernel=%s misses=%d flushes=%d@."
        refinement
        (Common.commas o.Common.kernel_cycles)
        o.Common.kernel_stats.Stats.cache_misses
        o.Common.kernel_stats.Stats.cache_flushes)
    [ true; false ];
  rule ();
  Format.printf
    "Break-even path-affinity (Section 4 footnote 3; Section 7's platform      thresholds)@.";
  Breakeven.report ~n:2048 ppf ();
  rule ();
  Em3d.pp_sweep ppf (Em3d.remote_sweep ());
  rule ();
  metrics_snapshots ~domains:1 ();
  rule ()

(* Host-side throughput of the simulator itself over the Table-2 suite;
   the machine-readable report feeds CI's warn-only wall-clock comparison
   (see docs/PERFORMANCE.md). *)
let hostperf ~domains () =
  let module Json = Olden_trace.Json in
  let report = Hostperf.run ~domains () in
  Format.printf "%a" Hostperf.pp report;
  let file = "BENCH_hostperf.json" in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_pretty_string (Hostperf.to_json report)));
  Format.printf "host throughput: %s (%d benchmarks, %d processors)@." file
    (List.length report.Hostperf.rows)
    report.Hostperf.nprocs

(* --- Bechamel microbenchmarks -------------------------------------------- *)

let run_spec (s : Common.spec) ~scale ~nprocs =
  let o = s.Common.run (C.make ~nprocs ()) ~scale in
  assert o.Common.ok

let bech_tests =
  let open Bechamel in
  [
    (* Table 2's unit of work: one full benchmark simulation *)
    Test.make ~name:"table2/treeadd-sim"
      (Staged.stage (fun () -> run_spec Treeadd.spec ~scale:1024 ~nprocs:8));
    Test.make ~name:"table2/em3d-sim"
      (Staged.stage (fun () -> run_spec Em3d.spec ~scale:32 ~nprocs:8));
    (* Table 3's unit of work: a coherence-heavy run *)
    Test.make ~name:"table3/em3d-bilateral"
      (Staged.stage (fun () ->
           let o =
             Em3d.spec.Common.run
               (C.make ~nprocs:8 ~coherence:C.Bilateral ())
               ~scale:32
           in
           assert o.Common.ok));
    (* Figure 2's unit of work: a list traversal each way *)
    Test.make ~name:"figure2/blocked-migrate"
      (Staged.stage (fun () ->
           ignore
             (Listdist.run ~n:512 ~nprocs:8 ~layout:Listdist.Blocked
                ~mechanism:C.Migrate ())));
    Test.make ~name:"figure2/cyclic-cache"
      (Staged.stage (fun () ->
           ignore
             (Listdist.run ~n:512 ~nprocs:8 ~layout:Listdist.Cyclic
                ~mechanism:C.Cache ())));
    (* Figures 3-5: the compiler path *)
    Test.make ~name:"figure3-5/analyze+select"
      (Staged.stage (fun () ->
           ignore (Olden_compiler.Heuristic.of_source Tables.fig5_src)));
  ]

let micro () =
  let open Bechamel in
  let open Toolkit in
  Format.printf
    "Bechamel microbenchmarks (host-side cost of regenerating each artifact)@.";
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:(Some 10) ()
    in
    Benchmark.all cfg instances test
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Format.printf "  %-28s %12.0f ns/run@." name est
          | _ -> Format.printf "  %-28s (no estimate)@." name)
        results)
    bech_tests

(* --domains N anywhere after the mode word sizes the snapshot sweeps'
   domain pool (and the engine's shard count inside each run); outputs
   are byte-identical for any value. *)
let parse_domains () =
  let domains = ref 1 in
  let argv = Sys.argv in
  for i = 1 to Array.length argv - 1 do
    if argv.(i) = "--domains" then
      if i + 1 >= Array.length argv then begin
        prerr_endline "bench: --domains needs a value";
        exit 2
      end
      else
        match int_of_string_opt argv.(i + 1) with
        | Some n when n >= 1 -> domains := n
        | _ ->
            Printf.eprintf "bench: --domains must be at least 1 (got %s)\n"
              argv.(i + 1);
            exit 2
  done;
  !domains

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let domains = parse_domains () in
  (match what with
  | "tables" -> tables ()
  | "micro" -> micro ()
  | "snapshots" -> metrics_snapshots ~domains ()
  | "hostperf" -> hostperf ~domains ()
  | "latency" -> latency_snapshots ~domains ()
  | "spans" -> spans_census ~domains ()
  | "serving" -> serving_snapshots ~domains ()
  | _ ->
      tables ();
      micro ());
  Format.printf "done.@."
