(** The distributed heap: one section per processor (Section 2).

    Each section is a growable word array with a bump allocator; ALLOC
    hands out contiguous word ranges.  The page/line structure the cache
    uses is pure address arithmetic on top (see
    {!Olden_config.Geometry}). *)

type t

val create : nprocs:int -> t
(** @raise Invalid_argument if [nprocs <= 0]. *)

val nprocs : t -> int

val alloc : t -> proc:int -> int -> Gptr.t
(** [alloc t ~proc words] allocates [words] words on [proc] — Olden's
    ALLOC library routine.  @raise Invalid_argument on a bad processor or
    non-positive size. *)

val words_used : t -> int -> int
(** Current bump-pointer position of a processor's section. *)

val load : t -> Gptr.t -> int -> Value.t
(** [load t p field] reads the word at [p + field].
    @raise Invalid_argument outside the allocated range. *)

val store : t -> Gptr.t -> int -> Value.t -> unit

val blit_line :
  t -> proc:int -> line_index:int -> dst:Value.t array -> dst_pos:int -> unit
(** Copy the 16 words of one cache line of a section straight into [dst]
    at [dst_pos] — the cache layer's allocation-free line fill.  Words
    beyond the bump pointer read as [Nil] (a fetched line may straddle
    unallocated space). *)

val read_line : t -> proc:int -> line_index:int -> Value.t array
(** Allocating variant of {!blit_line}, for tests and tools. *)

val word_at : t -> proc:int -> addr:int -> Value.t
(** Raw word access by local address; unallocated words read as [Nil]. *)

val digest : t -> string
(** Hex digest over every allocated word of every section (floats by
    exact bit pattern): equal digests mean structurally equal heaps.
    Used by the invariant checker to compare a faulty run's final heap
    with the fault-free run's. *)
