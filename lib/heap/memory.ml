(* The distributed heap: one section per processor (Section 2).

   Each section is a growable word array with a bump allocator.  ALLOC
   rounds no sizes: Olden allocates objects contiguously; the cache layer
   imposes the page/line structure on top of plain word addresses. *)

type section = {
  mutable cells : Value.t array;
  mutable used : int; (* bump pointer, in words *)
}

type t = { sections : section array }

let initial_section_words = 4096

let create ~nprocs =
  if nprocs <= 0 then invalid_arg "Memory.create: nprocs must be positive";
  {
    sections =
      Array.init nprocs (fun _ ->
          { cells = Array.make initial_section_words Value.Nil; used = 0 });
  }

let nprocs t = Array.length t.sections

let ensure_capacity s words =
  let needed = s.used + words in
  if needed > Array.length s.cells then begin
    let cap = ref (Array.length s.cells) in
    while !cap < needed do
      cap := !cap * 2
    done;
    let cells = Array.make !cap Value.Nil in
    Array.blit s.cells 0 cells 0 s.used;
    s.cells <- cells
  end

(* Allocate [words] words on processor [proc]; returns the global pointer
   to the first word.  This is Olden's ALLOC library routine. *)
let alloc t ~proc words =
  if proc < 0 || proc >= nprocs t then
    invalid_arg (Printf.sprintf "Memory.alloc: no processor %d" proc);
  if words <= 0 then invalid_arg "Memory.alloc: size must be positive";
  let s = t.sections.(proc) in
  ensure_capacity s words;
  let addr = s.used in
  s.used <- s.used + words;
  Gptr.make ~proc ~addr

let words_used t proc = t.sections.(proc).used

(* Cold error paths, out of line so load/store compile to straight-line
   checks with no tuple or closure allocation. *)
let no_processor p =
  invalid_arg (Printf.sprintf "Memory: %s: no processor" (Gptr.to_string p))

let out_of_range p field =
  invalid_arg
    (Printf.sprintf "Memory: %s+%d: address out of allocated range"
       (Gptr.to_string p) field)

(* Direct (home) accesses; the runtime charges their costs. *)

let load t p field =
  let proc = Gptr.proc p and addr = Gptr.addr p + field in
  if proc >= nprocs t then no_processor p;
  let s = t.sections.(proc) in
  if addr < 0 || addr >= s.used then out_of_range p field;
  s.cells.(addr)

let store t p field v =
  let proc = Gptr.proc p and addr = Gptr.addr p + field in
  if proc >= nprocs t then no_processor p;
  let s = t.sections.(proc) in
  if addr < 0 || addr >= s.used then out_of_range p field;
  s.cells.(addr) <- v

(* Fill [dst] (at [dst_pos]) with one line of [proc]'s section directly —
   the cache's allocation-free line fill.  Words past the section's bump
   pointer read as Nil (the line straddles unallocated space). *)
let blit_line t ~proc ~line_index ~dst ~dst_pos =
  let words = Olden_config.Geometry.words_per_line in
  let base = line_index * words in
  let s = t.sections.(proc) in
  let avail = s.used - base in
  if avail >= words then Array.blit s.cells base dst dst_pos words
  else begin
    let n = if avail > 0 then avail else 0 in
    if n > 0 then Array.blit s.cells base dst dst_pos n;
    Array.fill dst (dst_pos + n) (words - n) Value.Nil
  end

(* Allocating variant, kept for tests and tools; the cache hot path uses
   [blit_line]. *)
let read_line t ~proc ~line_index =
  let words = Olden_config.Geometry.words_per_line in
  let dst = Array.make words Value.Nil in
  blit_line t ~proc ~line_index ~dst ~dst_pos:0;
  dst

let word_at t ~proc ~addr =
  let s = t.sections.(proc) in
  if addr < s.used then s.cells.(addr) else Value.Nil

(* A digest of every allocated word in every section, for whole-heap
   equality checks (the invariant checker compares a faulty run's final
   heap against the fault-free run's).  Floats are hashed by their exact
   bit pattern, so equal digests mean structurally equal heaps. *)
let digest t =
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun proc s ->
      Buffer.add_string buf (Printf.sprintf "#%d:%d\n" proc s.used);
      for i = 0 to s.used - 1 do
        (match s.cells.(i) with
        | Value.Nil -> Buffer.add_char buf 'n'
        | Value.Int v ->
            Buffer.add_char buf 'i';
            Buffer.add_string buf (string_of_int v)
        | Value.Float f ->
            Buffer.add_char buf 'f';
            Buffer.add_string buf (Int64.to_string (Int64.bits_of_float f))
        | Value.Ptr p ->
            Buffer.add_char buf 'p';
            Buffer.add_string buf (Gptr.to_string p));
        Buffer.add_char buf ';'
      done)
    t.sections;
  Digest.to_hex (Digest.string (Buffer.contents buf))
