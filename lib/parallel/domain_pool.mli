(** A fixed pool of OCaml domains draining a list of independent jobs.

    The assignment of jobs to domains is racy (an atomic claim counter),
    but results come back in submission order and the first failure in
    submission order is re-raised after the pool drains — so callers
    whose jobs are independent and deterministic observe identical
    output for any pool size.  Simulator runs qualify: every formerly
    ambient global (site registry, trace emitter, span collector,
    monitor, driver hooks, engine pointer) is domain-local state, though
    jobs must still reset per-run state they depend on (e.g.
    [Site.reset]) because pool domains are reused across jobs. *)

type stats = {
  domains : int;  (** workers actually spawned (≤ requested, ≤ jobs) *)
  wall_seconds : float;  (** whole [map] call, submission to last join *)
  busy_seconds : float array;  (** per worker, summed over its jobs *)
  wait_seconds : float array;
      (** per worker: lifetime minus busy — startup, claim contention,
          and the tail wait while other workers finish the last jobs *)
}

val efficiency : stats -> float
(** Parallel efficiency: total busy over [domains × wall] (1.0 when the
    pool never waited). *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list * stats
(** [map ~domains f jobs] runs [f] over [jobs] on a pool of [domains]
    workers (default 1, which runs inline on the calling domain) and
    returns the results in submission order.
    @raise Invalid_argument if [domains < 1].
    If any job raised, the exception of the earliest failed job (by
    submission order) is re-raised with its backtrace — but only after
    every worker has drained. *)
