(* Labeled sweep matrices over a domain pool: each point is an
   independent (label, input) job; results keep submission order and
   carry per-point wall time, so drivers can print a matrix identically
   for any pool size while still reporting where the host time went. *)

type 'b point = { label : string; seconds : float; value : 'b }

let run ?domains f points =
  let results, stats =
    Domain_pool.map ?domains
      (fun (label, input) ->
        let t0 = Unix.gettimeofday () in
        let value = f ~label input in
        { label; seconds = Unix.gettimeofday () -. t0; value })
      points
  in
  (results, stats)

let pp_stats ppf (st : Domain_pool.stats) =
  Format.fprintf ppf
    "pool: %d domain%s, %.2fs wall, %.0f%% parallel efficiency"
    st.Domain_pool.domains
    (if st.Domain_pool.domains = 1 then "" else "s")
    st.Domain_pool.wall_seconds
    (100. *. Domain_pool.efficiency st);
  Array.iteri
    (fun i b ->
      Format.fprintf ppf "@.  domain %d: %.2fs busy, %.2fs waiting" i b
        st.Domain_pool.wait_seconds.(i))
    st.Domain_pool.busy_seconds
