(** Labeled sweep matrices over a {!Domain_pool}: the driver behind
    parallel chaos/bench matrices.  Each point is an independent
    (label, input) job; results keep submission order and carry
    per-point wall time, so a driver prints the same matrix for any
    pool size. *)

type 'b point = {
  label : string;
  seconds : float;  (** host wall time of this point's job *)
  value : 'b;
}

val run :
  ?domains:int ->
  (label:string -> 'a -> 'b) ->
  (string * 'a) list ->
  'b point list * Domain_pool.stats
(** [run ~domains f points] evaluates [f ~label input] for every
    [(label, input)] point on a pool of [domains] workers (default 1);
    results are in submission order.  Failure and determinism semantics
    are {!Domain_pool.map}'s. *)

val pp_stats : Format.formatter -> Domain_pool.stats -> unit
(** Human-readable pool summary: wall time, parallel efficiency, and
    per-domain busy/wait seconds. *)
