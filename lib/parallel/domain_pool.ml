(* A fixed pool of OCaml domains draining a job list.

   Jobs are claimed from an atomic counter, so assignment of job to
   domain is racy — but each result lands in the slot of its submission
   index, results are returned in submission order, and the first
   failure (again in submission order) is re-raised after every worker
   has drained.  A caller whose jobs are independent and deterministic
   therefore observes identical output for any pool size, including 1
   (which runs everything inline on the calling domain).

   Simulator state that used to be ambient globals (site registry,
   trace emitter, span collector, monitor, driver hooks) is
   domain-local, so each worker carries its own copy; jobs must still
   reset whatever per-run state they care about (e.g. [Site.reset])
   because a pool domain is reused across jobs. *)

type stats = {
  domains : int;  (** workers actually spawned *)
  wall_seconds : float;  (** whole [map] call, submission to last join *)
  busy_seconds : float array;  (** per worker, summed over its jobs *)
  wait_seconds : float array;
      (** per worker: lifetime minus busy — startup, claim contention,
          and the tail wait while other workers finish the last jobs *)
}

let efficiency st =
  if st.domains = 0 || st.wall_seconds <= 0. then 1.
  else
    Array.fold_left ( +. ) 0. st.busy_seconds
    /. (float_of_int st.domains *. st.wall_seconds)

let map ?(domains = 1) f jobs =
  if domains < 1 then invalid_arg "Domain_pool.map: domains < 1";
  let jobs = Array.of_list jobs in
  let n = Array.length jobs in
  let results : ('b, exn * Printexc.raw_backtrace) result option array =
    Array.make n None
  in
  let next = Atomic.make 0 in
  let nworkers = max 1 (min domains n) in
  let busy = Array.make nworkers 0. and wait = Array.make nworkers 0. in
  let worker w () =
    let t_spawn = Unix.gettimeofday () in
    let rec drain acc =
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then acc
      else begin
        let t0 = Unix.gettimeofday () in
        let r =
          match f jobs.(i) with
          | v -> Ok v
          | exception e -> Error (e, Printexc.get_raw_backtrace ())
        in
        (* each slot is written by exactly one worker; publication to
           the caller happens-before via Domain.join *)
        results.(i) <- Some r;
        drain (acc +. (Unix.gettimeofday () -. t0))
      end
    in
    let b = drain 0. in
    busy.(w) <- b;
    wait.(w) <- Unix.gettimeofday () -. t_spawn -. b
  in
  let t_start = Unix.gettimeofday () in
  (if nworkers = 1 then worker 0 ()
   else begin
     let spawned =
       Array.init (nworkers - 1) (fun w -> Domain.spawn (worker (w + 1)))
     in
     worker 0 ();
     Array.iter Domain.join spawned
   end);
  let wall = Unix.gettimeofday () -. t_start in
  let out =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* the counter covered every index *))
      results
  in
  (* deterministic failure: the first failed job in submission order
     wins, whatever domain ran it *)
  Array.iter
    (function
      | Ok _ -> ()
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    out;
  let values =
    Array.to_list
      (Array.map (function Ok v -> v | Error _ -> assert false) out)
  in
  ( values,
    {
      domains = nworkers;
      wall_seconds = wall;
      busy_seconds = busy;
      wait_seconds = wait;
    } )
