(** Simulated-clock telemetry: interval time-series and end-to-end
    operation-latency histograms.

    The paper (and our Table-2 pipeline) reports one end-of-run counter
    table per benchmark; this layer watches the run *as simulated time
    passes*.  Two pillars:

    {ol
    {- {b Interval time-series}: at every multiple of a configurable
       simulated-time interval, sample the full {!Stats} record, the
       per-processor busy/comm/idle/recovery-stall cycles, and the
       monitor's own latency registry, and report the {e windowed
       deltas} (activity inside the window, not cumulative totals).
       Serialized as the [olden-timeseries/v1] JSONL schema and as CSV.}
    {- {b End-to-end latency}: the engine, machine, and recovery layers
       record each completed episode — a dereference (entry to
       completion, spanning cache misses, migration round-trips,
       retries, fallbacks, and crash replays), a migration delivery, a
       return-stub delivery, a retry backoff, a crash recovery — into
       log-bucketed {!Metrics} histograms with exact-rank
       p50/p90/p99/p999 quantiles, aggregated per mechanism and per
       dereference site.}}

    Like {!Trace}, the monitor is a single process-wide sink and is
    zero-cost when off: instrumentation sites are written

    {[ if Monitor.is_on () then Monitor.deref ~sid ~mech ~cycles ]}

    so with no monitor installed only one word is read.  The monitor
    only {e reads} simulated clocks — it never advances them — so
    monitored runs are cycle-identical to unmonitored ones, and the
    output is a pure function of (program, config, seed): same seed,
    byte-identical JSONL.  Schema reference: docs/OBSERVABILITY.md. *)

module Metrics = Olden_trace.Metrics
module Json = Olden_trace.Json

(** How a dereference episode was ultimately served. *)
type mech =
  | Local  (** same-processor data, or sequential mode *)
  | Cache  (** software caching (hit or miss) at the referencing proc *)
  | Migrate  (** the computation moved to the data's home *)
  | Fallback  (** migration gave up (faults); served by caching *)

val mech_name : mech -> string

val mech_index : mech -> int
(** 0 = local, 1 = cache, 2 = migrate, 3 = fallback — the mechanism
    code spans carry in their [b] payload. *)

(** Closures over the running machine, supplied by the driver
    ([Common.execute]); the monitor has no dependency on the machine
    layer, so every layer above [olden_trace] may call into it. *)
type probe = {
  stats : unit -> (string * int) list;
      (** the full [Stats.fields] of the live stats record *)
  busy : unit -> int array;
  comm : unit -> int array;
  recovery_stall : unit -> int array;
}

type t

val create : interval:int -> nprocs:int -> probe:probe -> t
(** A fresh monitor sampling at every [interval] simulated cycles.
    @raise Invalid_argument if [interval < 1]. *)

val interval : t -> int
val nprocs : t -> int

(** {2 The process-wide sink} *)

val install : t -> unit
(** @raise Invalid_argument if a monitor is already installed. *)

val uninstall : unit -> unit

val is_on : unit -> bool
(** Instrumentation sites must guard on this so the disabled path
    allocates nothing. *)

(** {2 Instrumentation hooks} (no-ops when no monitor is installed)

    All [cycles] are simulated-clock durations; [tick] carries the
    scheduler's global virtual time, which is monotonically
    non-decreasing across calls. *)

val tick : int -> unit
(** Advance the window clock; closes every interval window the given
    time has passed. *)

val deref : sid:int -> mech:mech -> cycles:int -> unit
(** A dereference episode completed: end-to-end latency [cycles], from
    the operation's entry to its completion on whichever processor
    finished it. *)

val migration : cycles:int -> unit
(** A migrated computation restarted at its target: [cycles] from
    episode entry at the source to restart at the target. *)

val return_stub : cycles:int -> unit
(** A return stub delivered its value back to the home processor. *)

val retry_wait : cycles:int -> unit
(** A sender finished one backoff wait before retransmitting. *)

val recovery_stall : cycles:int -> unit
(** A crashed processor completed its warm-restart protocol. *)

val request : klass:string -> cycles:int -> unit
(** A served request completed: admission→completion latency [cycles],
    bucketed under its request-class label (from the serving mix
    grammar, e.g. ["point"]).  Adds a per-class dimension to the
    latency exports; sections appear only when at least one request was
    recorded, so batch runs export byte-identical documents. *)

val finish : t -> makespan:int -> unit
(** Close the final (partial) window at [makespan].  Idempotent. *)

(** {2 Windows} *)

type window = {
  w_t0 : int;
  w_t1 : int;  (** the window spans simulated time [[w_t0, w_t1)] *)
  w_stats : (string * int) list;
      (** every [Stats] field, windowed delta, in declaration order *)
  w_procs : (int * int * int * int) array;
      (** per processor: (busy, comm, idle, recovery-stall) deltas.
          Idle is [span - busy - comm] and may go negative in a window
          when a long charge starts inside it; sums over all windows
          reconcile with the end-of-run totals. *)
  w_latency : Json.t;
      (** latency-registry delta entries ({!Metrics.delta_json}) *)
}

val windows : t -> window list
(** Closed windows in time order (only complete after {!finish}). *)

(** {2 Latency summaries} *)

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;  (** quantiles are {!Metrics.quantile} bucket bounds *)
}

val deref_summaries : t -> (string * summary) list
(** Per mechanism ([local], [cache], [migrate], [fallback] order),
    mechanisms with no episodes omitted. *)

val episode_summaries : t -> (string * summary) list
(** [migration], [return], [retry_wait], [recovery_stall] (in that
    order), kinds with no episodes omitted. *)

val site_summaries :
  ?site_names:(int * string) list -> t -> (int * string * string * summary) list
(** [(sid, label, mech, summary)] sorted by sid then mechanism;
    [site_names] maps sids to labels (e.g. [Site.labels ()]). *)

val request_summaries : t -> (string * summary) list
(** Per request class, sorted by class label; empty outside serving
    runs. *)

(** {2 Exemplars}

    While span tracing is on ({!Olden_span.Span.is_on}), the monitor
    retains the trace ids of the worst dereference episodes per
    mechanism (a small fixed number of slots, recorded without
    allocating), so tail-latency percentiles can be traced back to the
    concrete causal chains that produced them. *)

type exemplar = {
  ex_mech : mech;
  ex_cycles : int;  (** the episode's end-to-end latency *)
  ex_trace_proc : int;  (** trace id: origin processor... *)
  ex_trace_seq : int;  (** ...and root sequence number *)
}

val exemplars : ?percentile:float -> t -> exemplar list
(** Retained exemplars at or above the [percentile] (default 0.99)
    threshold of their own mechanism's latency histogram, worst first;
    deterministic order. *)

val deref_quantile : t -> mech -> float -> int
(** The mechanism's latency quantile ({!Metrics.quantile}). *)

(** {2 Serialization} (docs/OBSERVABILITY.md) *)

val latency_json : ?site_names:(int * string) list -> t -> Json.t
(** [{"deref":[..],"episode":[..],"per_site":[..]}] — the
    [olden-latency/v1] per-run payload.  Serving runs append a
    ["request"] list (one summary per request class); the key is absent
    when no requests were recorded. *)

val timeseries_jsonl :
  ?site_names:(int * string) list ->
  header:(string * Json.t) list ->
  t ->
  string
(** The [olden-timeseries/v1] document: a header line (schema, the
    caller's run-identity fields, interval, nprocs, window count), one
    line per window, and a closing [{"latency_total": ...}] line. *)

val csv : t -> string
(** One row per window, one column per series: [t0], [t1], every
    [Stats] field, then [pN_busy], [pN_comm], [pN_idle],
    [pN_recovery_stall] for each processor.  Header labels pass through
    {!Json.csv_field}, so an odd stat name cannot shift columns. *)

val latency_csv : ?site_names:(int * string) list -> t -> string
(** Latency summaries as CSV: one row per mechanism, episode kind,
    request class (serving runs only), and (site, mech) pair.  Site and
    class labels (and every text field) are quoted through
    {!Json.csv_field} — commas, quotes, or newlines in a label cannot
    corrupt the row. *)
