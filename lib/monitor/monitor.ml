(* Simulated-clock telemetry.  See monitor.mli for the model.

   Layering: this module depends only on olden_trace (Metrics + Json),
   so the machine, recovery, and runtime layers can all call into it
   without a dependency cycle; the driver supplies the machine state it
   samples as a [probe] of closures. *)

module Metrics = Olden_trace.Metrics
module Json = Olden_trace.Json
module Span = Olden_span.Span

type mech = Local | Cache | Migrate | Fallback

let mech_index = function Local -> 0 | Cache -> 1 | Migrate -> 2 | Fallback -> 3
let mech_name = function
  | Local -> "local"
  | Cache -> "cache"
  | Migrate -> "migrate"
  | Fallback -> "fallback"

let mechs = [| Local; Cache; Migrate; Fallback |]

type probe = {
  stats : unit -> (string * int) list;
  busy : unit -> int array;
  comm : unit -> int array;
  recovery_stall : unit -> int array;
}

type window = {
  w_t0 : int;
  w_t1 : int;
  w_stats : (string * int) list;
  w_procs : (int * int * int * int) array;
  w_latency : Json.t;
}

type t = {
  interval : int;
  nprocs : int;
  probe : probe;
  lat : Metrics.t; (* aggregate latency histograms; windowed via deltas *)
  deref_h : Metrics.histogram array; (* indexed by mech_index *)
  migration_h : Metrics.histogram;
  return_h : Metrics.histogram;
  retry_h : Metrics.histogram;
  recovery_h : Metrics.histogram;
  site_reg : Metrics.t; (* per-site histograms, kept out of window rows *)
  site_h : (int, Metrics.histogram) Hashtbl.t; (* sid * 4 + mech_index *)
  req_reg : Metrics.t; (* per-request-class admission→completion latency *)
  req_h : (string, Metrics.histogram) Hashtbl.t; (* keyed by class label *)
  (* Exemplars: per mechanism, the trace ids of the worst episodes seen,
     in fixed parallel int arrays so recording stays allocation-free.
     Populated only while span tracing is on (the trace id is what makes
     an exemplar useful); filtered against a percentile threshold at
     report time. *)
  ex_n : int array; (* exemplars held, per mech_index *)
  ex_cy : int array array; (* [mech].(slot) episode cycles *)
  ex_tp : int array array; (* [mech].(slot) trace proc *)
  ex_ts : int array array; (* [mech].(slot) trace seq *)
  mutable mark : int; (* left edge of the open window *)
  mutable prev_stats : (string * int) list;
  mutable prev_busy : int array;
  mutable prev_comm : int array;
  mutable prev_recovery : int array;
  mutable prev_lat : Metrics.snapshot;
  mutable rev_windows : window list;
  mutable finished : bool;
}

let exemplar_slots = 16

let create ~interval ~nprocs ~probe =
  if interval < 1 then invalid_arg "Monitor.create: interval < 1";
  let lat = Metrics.create () in
  {
    interval;
    nprocs;
    probe;
    lat;
    deref_h =
      Array.map
        (fun m ->
          Metrics.histogram lat
            ~labels:[ ("mech", mech_name m) ]
            "deref_latency")
        mechs;
    migration_h = Metrics.histogram lat "migration_latency";
    return_h = Metrics.histogram lat "return_latency";
    retry_h = Metrics.histogram lat "retry_wait_cycles";
    recovery_h = Metrics.histogram lat "recovery_stall_cycles";
    site_reg = Metrics.create ();
    site_h = Hashtbl.create 64;
    req_reg = Metrics.create ();
    req_h = Hashtbl.create 8;
    ex_n = Array.make 4 0;
    ex_cy = Array.init 4 (fun _ -> Array.make exemplar_slots 0);
    ex_tp = Array.init 4 (fun _ -> Array.make exemplar_slots 0);
    ex_ts = Array.init 4 (fun _ -> Array.make exemplar_slots 0);
    mark = 0;
    prev_stats = probe.stats ();
    prev_busy = probe.busy ();
    prev_comm = probe.comm ();
    prev_recovery = probe.recovery_stall ();
    prev_lat = Metrics.snapshot lat;
    rev_windows = [];
    finished = false;
  }

let interval t = t.interval
let nprocs t = t.nprocs

(* Close the open window at [t1]: compute every delta against the
   previous sample, then advance the sample point. *)
let sample t ~t1 =
  let stats = t.probe.stats () in
  let busy = t.probe.busy () in
  let comm = t.probe.comm () in
  let recovery = t.probe.recovery_stall () in
  let w_stats =
    List.map2
      (fun (name, v) (_, v0) -> (name, v - v0))
      stats t.prev_stats
  in
  let span = t1 - t.mark in
  let w_procs =
    Array.init t.nprocs (fun p ->
        let b = busy.(p) - t.prev_busy.(p) in
        let c = comm.(p) - t.prev_comm.(p) in
        let r =
          if p < Array.length recovery then
            recovery.(p) - t.prev_recovery.(p)
          else 0
        in
        (b, c, span - b - c, r))
  in
  let w_latency = Metrics.delta_json t.lat ~since:t.prev_lat in
  t.rev_windows <-
    { w_t0 = t.mark; w_t1 = t1; w_stats; w_procs; w_latency }
    :: t.rev_windows;
  t.mark <- t1;
  t.prev_stats <- stats;
  t.prev_busy <- busy;
  t.prev_comm <- comm;
  t.prev_recovery <- recovery;
  t.prev_lat <- Metrics.snapshot t.lat

let tick_m t time =
  if (not t.finished) && time - t.mark >= t.interval then
    (* close every whole window the clock has passed; [mark] stays a
       multiple of [interval], so one sample covers them all *)
    sample t ~t1:(time / t.interval * t.interval)

let finish t ~makespan =
  if not t.finished then begin
    if makespan > t.mark || t.rev_windows = [] then
      sample t ~t1:(max makespan t.mark);
    t.finished <- true
  end

let windows t = List.rev t.rev_windows

(* --- The domain-wide sink --------------------------------------------- *)

(* One installed monitor per domain: runs on different domains of the
   parallel sweep driver sample independently. *)
let active_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let active () = Domain.DLS.get active_key

let install m =
  let a = active () in
  (match !a with
  | Some _ -> invalid_arg "Monitor.install: a monitor is already installed"
  | None -> ());
  a := Some m

let uninstall () = active () := None
let is_on () = match !(active ()) with Some _ -> true | None -> false

(* Keep the worst [exemplar_slots] episodes per mechanism: append while
   there is room, otherwise displace the (first) smallest held exemplar
   when the new episode is strictly worse — deterministic, bounded, and
   allocation-free. *)
let note_exemplar t ~mech ~cycles =
  let m = mech_index mech in
  let tp = Span.trace_proc () in
  if tp >= 0 then begin
    let ts = Span.trace_seq () in
    let n = t.ex_n.(m) in
    if n < exemplar_slots then begin
      t.ex_cy.(m).(n) <- cycles;
      t.ex_tp.(m).(n) <- tp;
      t.ex_ts.(m).(n) <- ts;
      t.ex_n.(m) <- n + 1
    end
    else begin
      let worst = ref 0 in
      for i = 1 to n - 1 do
        if t.ex_cy.(m).(i) < t.ex_cy.(m).(!worst) then worst := i
      done;
      if cycles > t.ex_cy.(m).(!worst) then begin
        t.ex_cy.(m).(!worst) <- cycles;
        t.ex_tp.(m).(!worst) <- tp;
        t.ex_ts.(m).(!worst) <- ts
      end
    end
  end

let deref_m t ~sid ~mech ~cycles =
  Metrics.observe t.deref_h.(mech_index mech) cycles;
  if Span.is_on () then note_exemplar t ~mech ~cycles;
  if sid >= 0 then begin
    let key = (sid * 4) + mech_index mech in
    let h =
      match Hashtbl.find_opt t.site_h key with
      | Some h -> h
      | None ->
          let h =
            Metrics.histogram t.site_reg
              ~labels:
                [
                  ("mech", mech_name mech);
                  ("sid", Printf.sprintf "%06d" sid);
                ]
              "deref_latency"
          in
          Hashtbl.replace t.site_h key h;
          h
    in
    Metrics.observe h cycles
  end

let tick time =
  match !(active ()) with None -> () | Some t -> tick_m t time

let deref ~sid ~mech ~cycles =
  match !(active ()) with None -> () | Some t -> deref_m t ~sid ~mech ~cycles

let migration ~cycles =
  match !(active ()) with
  | None -> ()
  | Some t -> Metrics.observe t.migration_h cycles

let return_stub ~cycles =
  match !(active ()) with
  | None -> ()
  | Some t -> Metrics.observe t.return_h cycles

let retry_wait ~cycles =
  match !(active ()) with
  | None -> ()
  | Some t -> Metrics.observe t.retry_h cycles

let recovery_stall ~cycles =
  match !(active ()) with
  | None -> ()
  | Some t -> Metrics.observe t.recovery_h cycles

(* One served request's admission→completion latency, bucketed by its
   class label.  The histogram registry is separate from the windowed
   one (like per-site), so batch exports stay byte-identical when no
   requests were served. *)
let request_m t ~klass ~cycles =
  let h =
    match Hashtbl.find_opt t.req_h klass with
    | Some h -> h
    | None ->
        let h =
          Metrics.histogram t.req_reg
            ~labels:[ ("class", klass) ]
            "request_latency"
        in
        Hashtbl.replace t.req_h klass h;
        h
  in
  Metrics.observe h cycles

let request ~klass ~cycles =
  match !(active ()) with
  | None -> ()
  | Some t -> request_m t ~klass ~cycles

(* --- Latency summaries ------------------------------------------------- *)

type summary = {
  count : int;
  sum : int;
  min : int;
  max : int;
  mean : float;
  p50 : int;
  p90 : int;
  p99 : int;
  p999 : int;
}

let summarize h =
  {
    count = Metrics.observations h;
    sum = Metrics.sum h;
    min = Metrics.min_value h;
    max = Metrics.max_value h;
    mean = Metrics.mean h;
    p50 = Metrics.quantile h 0.5;
    p90 = Metrics.quantile h 0.9;
    p99 = Metrics.quantile h 0.99;
    p999 = Metrics.quantile h 0.999;
  }

let deref_summaries t =
  Array.to_list mechs
  |> List.filter_map (fun m ->
         let h = t.deref_h.(mech_index m) in
         if Metrics.observations h = 0 then None
         else Some (mech_name m, summarize h))

let episode_summaries t =
  [
    ("migration", t.migration_h);
    ("return", t.return_h);
    ("retry_wait", t.retry_h);
    ("recovery_stall", t.recovery_h);
  ]
  |> List.filter_map (fun (name, h) ->
         if Metrics.observations h = 0 then None
         else Some (name, summarize h))

let request_summaries t =
  Hashtbl.fold (fun klass h acc -> (klass, h) :: acc) t.req_h []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (klass, h) -> (klass, summarize h))

let site_summaries ?(site_names = []) t =
  Hashtbl.fold (fun key h acc -> (key, h) :: acc) t.site_h []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (key, h) ->
         let sid = key / 4 in
         let label =
           match List.assoc_opt sid site_names with
           | Some l -> l
           | None -> Printf.sprintf "site#%d" sid
         in
         (sid, label, mech_name mechs.(key mod 4), summarize h))

(* --- Exemplars ---------------------------------------------------------- *)

type exemplar = {
  ex_mech : mech;
  ex_cycles : int;
  ex_trace_proc : int;
  ex_trace_seq : int;
}

let deref_quantile t mech q = Metrics.quantile t.deref_h.(mech_index mech) q

(* The retained exemplars at or above the [percentile] threshold of
   their mechanism's own latency histogram, worst first (ties broken by
   trace id, so the order is deterministic). *)
let exemplars ?(percentile = 0.99) t =
  let out = ref [] in
  Array.iter
    (fun m ->
      let mi = mech_index m in
      if Metrics.observations t.deref_h.(mi) > 0 then begin
        let threshold = Metrics.quantile t.deref_h.(mi) percentile in
        for i = 0 to t.ex_n.(mi) - 1 do
          if t.ex_cy.(mi).(i) >= threshold then
            out :=
              {
                ex_mech = m;
                ex_cycles = t.ex_cy.(mi).(i);
                ex_trace_proc = t.ex_tp.(mi).(i);
                ex_trace_seq = t.ex_ts.(mi).(i);
              }
              :: !out
        done
      end)
    mechs;
  List.sort
    (fun a b ->
      if a.ex_cycles <> b.ex_cycles then compare b.ex_cycles a.ex_cycles
      else
        compare
          (a.ex_trace_proc, a.ex_trace_seq)
          (b.ex_trace_proc, b.ex_trace_seq))
    !out

(* --- Serialization ----------------------------------------------------- *)

let summary_fields s =
  [
    ("count", Json.Int s.count);
    ("sum", Json.Int s.sum);
    ("min", Json.Int s.min);
    ("max", Json.Int s.max);
    ("mean", Json.Float s.mean);
    ("p50", Json.Int s.p50);
    ("p90", Json.Int s.p90);
    ("p99", Json.Int s.p99);
    ("p999", Json.Int s.p999);
  ]

let latency_json ?site_names t =
  let deref =
    List.map
      (fun (m, s) -> Json.Obj (("mech", Json.String m) :: summary_fields s))
      (deref_summaries t)
  in
  let episode =
    List.map
      (fun (k, s) -> Json.Obj (("kind", Json.String k) :: summary_fields s))
      (episode_summaries t)
  in
  let per_site =
    List.map
      (fun (sid, label, m, s) ->
        Json.Obj
          ([
             ("sid", Json.Int sid);
             ("site", Json.String label);
             ("mech", Json.String m);
           ]
          @ summary_fields s))
      (site_summaries ?site_names t)
  in
  (* the request section appears only when requests were served, so
     every batch (non-serving) export stays byte-identical *)
  let request =
    match request_summaries t with
    | [] -> []
    | rows ->
        [
          ( "request",
            Json.List
              (List.map
                 (fun (k, s) ->
                   Json.Obj (("class", Json.String k) :: summary_fields s))
                 rows) );
        ]
  in
  Json.Obj
    ([
       ("deref", Json.List deref);
       ("episode", Json.List episode);
       ("per_site", Json.List per_site);
     ]
    @ request)

let window_json w =
  Json.Obj
    [
      ("t0", Json.Int w.w_t0);
      ("t1", Json.Int w.w_t1);
      ( "stats",
        Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) w.w_stats) );
      ( "per_proc",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun p (b, c, i, r) ->
                  Json.Obj
                    [
                      ("proc", Json.Int p);
                      ("busy", Json.Int b);
                      ("comm", Json.Int c);
                      ("idle", Json.Int i);
                      ("recovery_stall", Json.Int r);
                    ])
                w.w_procs)) );
      ("latency", w.w_latency);
    ]

let timeseries_jsonl ?site_names ~header t =
  let ws = windows t in
  let head =
    Json.Obj
      ([ ("schema", Json.String "olden-timeseries/v1") ]
      @ header
      @ [
          ("interval", Json.Int t.interval);
          ("nprocs", Json.Int t.nprocs);
          ("windows", Json.Int (List.length ws));
        ])
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Json.to_string head);
  Buffer.add_char buf '\n';
  List.iter
    (fun w ->
      Buffer.add_string buf (Json.to_string (window_json w));
      Buffer.add_char buf '\n')
    ws;
  Buffer.add_string buf
    (Json.to_string
       (Json.Obj [ ("latency_total", latency_json ?site_names t) ]));
  Buffer.add_char buf '\n';
  Buffer.contents buf

let csv t =
  let ws = windows t in
  let stat_names =
    match ws with
    | w :: _ -> List.map fst w.w_stats
    | [] -> List.map fst (t.probe.stats ())
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "t0,t1";
  (* stat names are identifiers today, but quote defensively: one odd
     label must not shift every column after it *)
  List.iter
    (fun n ->
      Buffer.add_char buf ',';
      Buffer.add_string buf (Json.csv_field n))
    stat_names;
  for p = 0 to t.nprocs - 1 do
    Buffer.add_string buf (Printf.sprintf ",p%d_busy,p%d_comm,p%d_idle,p%d_recovery_stall" p p p p)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun w ->
      Buffer.add_string buf (string_of_int w.w_t0);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int w.w_t1);
      List.iter
        (fun (_, v) ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v))
        w.w_stats;
      Array.iter
        (fun (b, c, i, r) ->
          Buffer.add_string buf (Printf.sprintf ",%d,%d,%d,%d" b c i r))
        w.w_procs;
      Buffer.add_char buf '\n')
    ws;
  Buffer.contents buf

(* Latency summaries as CSV: one row per mechanism, episode kind, and
   (site, mechanism) pair.  Site labels are "field@function" strings
   from user programs — always quoted through [Json.csv_field] so
   commas or quotes in a label cannot corrupt the row. *)
let latency_csv ?site_names t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "scope,kind,sid,site,count,sum,min,max,mean,p50,p90,p99,p999\n";
  let row ~scope ~kind ~sid ~site s =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s,%d,%d,%d,%d,%.3f,%d,%d,%d,%d\n"
         (Json.csv_field scope) (Json.csv_field kind) sid
         (Json.csv_field site) s.count s.sum s.min s.max s.mean s.p50 s.p90
         s.p99 s.p999)
  in
  List.iter
    (fun (m, s) -> row ~scope:"deref" ~kind:m ~sid:"" ~site:"" s)
    (deref_summaries t);
  List.iter
    (fun (k, s) -> row ~scope:"episode" ~kind:k ~sid:"" ~site:"" s)
    (episode_summaries t);
  (* request-class labels come from the mix grammar — user-controlled,
     so commas/quotes must survive the quoting in [row] *)
  List.iter
    (fun (k, s) -> row ~scope:"request" ~kind:k ~sid:"" ~site:"" s)
    (request_summaries t);
  List.iter
    (fun (sid, label, m, s) ->
      row ~scope:"site" ~kind:m ~sid:(string_of_int sid) ~site:label s)
    (site_summaries ?site_names t);
  Buffer.contents buf
