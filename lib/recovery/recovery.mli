(** Crash-and-restart recovery (docs/ROBUSTNESS.md).

    The software cache is write-through with the home processor as the
    source of truth, so cached state is reconstructible: a crash wipes a
    processor's translation table, cached page frames, write-log dirty
    set, and suspicion epochs, while its home pages, resident threads,
    and parked continuations survive (warm restart).  Crash decisions
    are a seeded schedule — pure in [(fault_seed, proc, time-window)]
    like the message-fault legs — so crashing runs replay
    bit-for-bit.

    Restart per coherence scheme: global announces recovery to every
    other processor ([Fault_plan.Recovery]-class messages under the
    standard retry/backoff) and homes prune the victim from sharer
    masks; bilateral revalidates refetched pages against home
    timestamps on first touch; local's whole-cache invalidate is the
    crash itself. *)

type t

val create : Olden_config.t -> Machine.t -> Olden_cache.Cache_system.t -> t

val schedule_crash : t -> proc:int -> at:int -> unit
(** Force a crash of [proc] at the first operation boundary at or after
    cycle [at] — one forced order is consumed per crash, so two orders
    for the same processor produce a double crash.  For tests; seeded
    schedules come from [fault_spec.crash]. *)

val maybe_crash : t -> proc:int -> log:Olden_cache.Write_log.t -> bool
(** Called by the engine at deterministic operation boundaries (before
    a dereference touches the cache, and on migration/return arrival).
    Fires at most one crash per boundary: settles the running thread's
    release obligations ([log]), drops the victim's volatile state, runs
    the per-scheme restart protocol, and charges the victim's clock.
    Returns whether a crash fired. *)

val crashes : t -> proc:int -> int
val last_crash_time : t -> proc:int -> int
(** Time of the latest crash of [proc]; [-1] if it never crashed.  The
    invariant checker compares sharer-registration times against this
    crash epoch. *)

val total_crashes : t -> int

type proc_report = {
  proc : int;
  crashes : int;
  pages_lost : int;  (** live cached pages wiped across all its crashes *)
  pages_refetched : int;
      (** page entries created since its first crash — the rebuild cost *)
  recovery_messages : int;
  stall_cycles : int;  (** victim clock spent inside restart protocols *)
}

val report : t -> proc_report list
(** One row per processor that crashed, in processor order. *)

val stall_cycles : t -> int array
(** Per-processor recovery stall, for the profiler's breakdown. *)
