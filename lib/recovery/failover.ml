(* Fail-stop failover.

   Unlike {!Recovery}'s crash-and-restart — where the victim comes back
   and only its volatile cache state is lost — a fail-stop death is
   permanent: the processor never computes again, and without a mirror
   its home pages would be unrecoverable.  The replication layer
   ({!Olden_config.replica_spec} + [Cache_system.mirror_store]) keeps a
   write-through copy of every home page at a deterministic backup, so a
   death costs time, never data.

   This module decides *when* a processor dies (a seeded schedule pure
   in [(fault_seed, proc, time-window)], like [crash_due]) and runs the
   failover protocol when one fires:

   - the victim is marked dead and its volatile cached state dropped;
   - every owner the victim was serving re-homes to the deterministic
     successor ({!Machine.backup_of}); from then on every send resolves
     through the home map, so requests racing the death replay against
     the promoted backup through the normal miss path;
   - dependents are handled per coherence scheme: global prunes the
     victim from every sharer mask and announces the promotion to each
     live processor (a retried [Recovery]-class request/reply);
     bilateral conservatively marks every live processor's cache
     all-suspect (first touch revalidates against the new home's
     stamps); local needs nothing — write-through kept every live copy
     coherent and the directories are intact;
   - the successor re-homes a fresh backup by mirroring the promoted
     pages to it ([Replica]-class one-ways), so a second death of the
     *successor* is survivable too.

   What happens to threads resident on the victim is the engine's
   business (their queues live there): with [replica_spec.threads] they
   move to the successor; without it they are lost and the run aborts
   with a deterministic report.  The engine records the loss here so the
   failover report names it. *)

module C = Olden_config
module Cache = Olden_cache.Cache_system
module Trace = Olden_trace.Trace
module G = Olden_config.Geometry

type proc_state = {
  mutable died_at : int; (* -1 while alive *)
  mutable successor : int; (* -1 until death *)
  mutable pages_moved : int; (* home pages promoted to the backup *)
  mutable cached_lost : int; (* live cached page entries dropped *)
  mutable messages : int; (* announcements + re-replication sends *)
  mutable threads_lost : int; (* unreplicated resident tasks lost *)
  mutable stall_cycles : int; (* successor cycles spent promoting *)
}

type t = {
  cfg : C.t;
  machine : Machine.t;
  cache : Cache.t;
  memory : Memory.t;
  procs : proc_state array;
  mutable forced : (int * int) list;
      (* (proc, at) death orders from tests, consumed one per death *)
}

let create cfg machine cache memory =
  {
    cfg;
    machine;
    cache;
    memory;
    procs =
      Array.init cfg.C.nprocs (fun _ ->
          {
            died_at = -1;
            successor = -1;
            pages_moved = 0;
            cached_lost = 0;
            messages = 0;
            threads_lost = 0;
            stall_cycles = 0;
          });
    forced = [];
  }

let schedule_failstop t ~proc ~at = t.forced <- t.forced @ [ (proc, at) ]

let died_at t ~proc = t.procs.(proc).died_at
let successor_of t ~proc = t.procs.(proc).successor

let failstops t =
  Array.fold_left (fun a p -> if p.died_at >= 0 then a + 1 else a) 0 t.procs

let note_threads_lost t ~proc ~count =
  t.procs.(proc).threads_lost <- t.procs.(proc).threads_lost + count

let emit ~proc ~time kind =
  if Trace.is_on () then
    Trace.emit
      { Trace.time; proc; tid = Trace.thread (); site = Trace.site (); kind }

(* Home pages the victim was serving for [owner]: everything its bump
   allocator handed out, rounded up to whole pages — that is what the
   mirror holds and what the successor must start serving. *)
let pages_of_owner t owner =
  let words = Memory.words_used t.memory owner in
  (words + G.words_per_page - 1) / G.words_per_page

(* The failover protocol.  Runs on the successor's clock: the victim is
   a corpse, so the promotion work — installing the mirrored pages,
   announcing the new home, re-homing a fresh backup — is the backup's
   to pay.  Returns the promoted successor. *)
let fail_over t ~victim =
  let r =
    match t.cfg.C.replication with
    | Some r -> r
    | None ->
        invalid_arg "Failover.fail_over: no replication configured"
  in
  let c = t.cfg.C.costs in
  let s = Machine.stats t.machine in
  let ps = t.procs.(victim) in
  let successor =
    Machine.backup_of t.machine ~stride:r.C.stride ~owner:victim
  in
  let died = Machine.now t.machine victim in
  let t0 = Machine.now t.machine successor in
  let module Span = Olden_span.Span in
  let span_on = Span.is_on () in
  let sprev = if span_on then Span.parent () else -1 in
  let sid = if span_on then Span.enter () else -1 in
  Machine.mark_dead t.machine victim;
  ps.died_at <- died;
  ps.successor <- successor;
  s.Stats.failstops <- s.Stats.failstops + 1;
  (* the victim's volatile cached state dies with it *)
  let lost = Cache.drop_processor_state t.cache ~proc:victim in
  ps.cached_lost <- ps.cached_lost + lost;
  emit ~proc:victim ~time:died (Trace.Failstop { pages_lost = lost });
  (* promote the backup: every owner the victim was serving re-homes,
     including the victim itself and any earlier victims it had been
     serving as a successor *)
  let moved = ref 0 in
  for owner = 0 to t.cfg.C.nprocs - 1 do
    if Machine.home_of t.machine owner = victim then begin
      Machine.rehome t.machine ~owner ~target:successor;
      moved := !moved + pages_of_owner t owner
    end
  done;
  ps.pages_moved <- ps.pages_moved + !moved;
  s.Stats.pages_failed_over <- s.Stats.pages_failed_over + !moved;
  (* the successor installs the mirror as the live copy: a table rebuild,
     priced like the whole-cache invalidate *)
  Machine.advance t.machine successor c.C.cache_flush;
  let homes = ref 0 in
  (match t.cfg.C.coherence with
  | C.Global ->
      (* announce the promotion to every live processor so requests stop
         targeting the corpse; each announcement is a normal retried
         request/reply riding the same lossy network *)
      for p = 0 to t.cfg.C.nprocs - 1 do
        if p <> successor && not (Machine.is_dead t.machine p) then begin
          incr homes;
          ps.messages <- ps.messages + 1;
          s.Stats.failover_messages <- s.Stats.failover_messages + 1;
          ignore
            (Machine.request_reply ~klass:Fault_plan.Recovery t.machine
               ~src:successor ~dst:p ~service:c.C.recovery_service)
        end
      done;
      (* strike the victim from every sharer mask: its copies are gone,
         and an invalidation chasing them would count a dead send *)
      for home = 0 to t.cfg.C.nprocs - 1 do
        if home <> victim then
          ignore (Cache.prune_crashed_sharer t.cache ~home ~proc:victim)
      done
  | C.Bilateral ->
      (* conservatively mark every live cache all-suspect: the first
         touch of any page revalidates against its (possibly promoted)
         home's timestamps *)
      for p = 0 to t.cfg.C.nprocs - 1 do
        if p <> victim && not (Machine.is_dead t.machine p) then
          Cache.on_migration_received t.cache ~proc:p
      done
  | C.Local ->
      (* write-through kept every live copy coherent and the home-side
         directories survive; nothing to announce *)
      ());
  (* re-home a fresh backup: mirror the promoted pages to the next
     candidate in the ring so a later death of the successor is
     survivable too *)
  let fresh = Machine.backup_of t.machine ~stride:r.C.stride ~owner:victim in
  if fresh <> successor && not (Machine.is_dead t.machine fresh) then begin
    for _page = 1 to !moved do
      ps.messages <- ps.messages + 1;
      s.Stats.failover_messages <- s.Stats.failover_messages + 1;
      ignore
        (Machine.one_way ~klass:Fault_plan.Replica t.machine ~src:successor
           ~dst:fresh ~service:c.C.store_service)
    done;
    Machine.count_bytes t.machine (!moved * G.page_bytes)
  end;
  let stall = Machine.now t.machine successor - t0 in
  ps.stall_cycles <- ps.stall_cycles + stall;
  if Olden_monitor.Monitor.is_on () then
    Olden_monitor.Monitor.recovery_stall ~cycles:stall;
  if span_on then
    Span.exit_emit ~id:sid ~prev:sprev ~kind:Span.Failover ~proc:successor
      ~t0
      ~t1:(Machine.now t.machine successor)
      ~a:!moved ~b:victim;
  emit ~proc:successor
    ~time:(Machine.now t.machine successor)
    (Trace.Failover { victim; pages = !moved; homes = !homes });
  successor

(* Is a fail-stop death due on [proc] right now?  Forced orders (tests)
   fire first; otherwise the seeded schedule decides.  Death is
   permanent, so no window latch is needed (the dead-set guard is the
   latch); the quorum-of-one guard never kills the last live processor —
   a machine with nobody left to promote has no failover story. *)
let pending t ~proc ~time =
  (not (Machine.is_dead t.machine proc))
  && Machine.live_count t.machine > 1
  &&
  let rec take acc = function
    | [] -> None
    | (p, at) :: rest when p = proc && at <= time ->
        Some (List.rev_append acc rest)
    | entry :: rest -> take (entry :: acc) rest
  in
  match take [] t.forced with
  | Some rest ->
      t.forced <- rest;
      true
  | None -> (
      match Machine.fault_plan t.machine with
      | None -> false
      | Some plan ->
          let spec = Fault_plan.spec plan in
          spec.C.failstop > 0.
          && spec.C.failstop_cycles > 0
          && Fault_plan.failstop_due plan ~proc ~time)

(* --- Reporting ------------------------------------------------------- *)

type proc_report = {
  victim : int;
  died_at : int;
  successor : int;
  pages_failed_over : int;
  cached_pages_lost : int;
  messages : int;
  threads_lost : int;
  stall_cycles : int;
}

let report t =
  let rows = ref [] in
  for proc = t.cfg.C.nprocs - 1 downto 0 do
    let ps = t.procs.(proc) in
    if ps.died_at >= 0 then
      rows :=
        {
          victim = proc;
          died_at = ps.died_at;
          successor = ps.successor;
          pages_failed_over = ps.pages_moved;
          cached_pages_lost = ps.cached_lost;
          messages = ps.messages;
          threads_lost = ps.threads_lost;
          stall_cycles = ps.stall_cycles;
        }
        :: !rows
  done;
  !rows
