(* Crash-and-restart recovery.

   The software cache is write-through with the home processor as the
   source of truth (Section 2.2), so a processor's cached state is
   reconstructible: a crash costs time, never data.  This module decides
   *when* a processor crashes (a seeded schedule, pure in
   [(fault_seed, proc, time-window)] like the message-fault legs) and
   runs the warm-restart protocol when one fires.

   What a crash destroys — the victim's volatile remote-access state:
   the translation table with every cached page frame, the running
   thread's write-log dirty set, and the suspicion epochs.  What
   survives a warm restart: the victim's home pages (they *are* the
   truth), resident threads and parked continuations (their stacks live
   in home memory), and the home-side directories.

   The restart protocol per coherence scheme:
   - global: the victim announces recovery to every other processor
     (a [Recovery]-class request/reply riding the standard retry and
     backoff discipline); each home prunes the victim from its sharer
     masks so eager invalidations stop chasing copies that no longer
     exist.  Invalidations already in flight toward the victim land on
     an empty table and are tolerated.
   - bilateral: nothing to announce — the wiped table means every
     refetched page revalidates against its home timestamp on first
     touch, which is exactly the scheme's normal suspect path.
   - local: the crash *is* the scheme's whole-cache invalidate; the
     victim just pays the flush cost and refetches on demand.

   Dereferences that were mid-flight against the lost table replay
   through the normal miss path: the engine checks for a due crash at
   deterministic operation boundaries *before* touching the cache, so a
   store is never double-applied and a load never reads a wiped frame. *)

module C = Olden_config
module Cache = Olden_cache.Cache_system
module Translation = Olden_cache.Translation
module Write_log = Olden_cache.Write_log
module Trace = Olden_trace.Trace

type proc_state = {
  mutable crashes : int;
  mutable last_crash_time : int; (* -1 before the first crash *)
  mutable last_window : int; (* last seeded window that fired *)
  mutable pages_lost : int;
  mutable messages : int; (* recovery announcements sent *)
  mutable stall_cycles : int; (* victim clock spent in restart protocols *)
  mutable ever_at_first_crash : int;
      (* [Translation.entries_ever] when the first crash hit; everything
         created after it is a post-crash refetch *)
}

type t = {
  cfg : C.t;
  machine : Machine.t;
  cache : Cache.t;
  procs : proc_state array;
  mutable forced : (int * int) list;
      (* (proc, at) crash orders from tests, consumed one per crash *)
}

let create cfg machine cache =
  {
    cfg;
    machine;
    cache;
    procs =
      Array.init cfg.C.nprocs (fun _ ->
          {
            crashes = 0;
            last_crash_time = -1;
            last_window = -1;
            pages_lost = 0;
            messages = 0;
            stall_cycles = 0;
            ever_at_first_crash = 0;
          });
    forced = [];
  }

let schedule_crash t ~proc ~at = t.forced <- t.forced @ [ (proc, at) ]

let crashes t ~proc = t.procs.(proc).crashes
let last_crash_time t ~proc = t.procs.(proc).last_crash_time
let total_crashes t = Array.fold_left (fun a p -> a + p.crashes) 0 t.procs

let emit ~proc ~time kind =
  if Trace.is_on () then
    Trace.emit
      { Trace.time; proc; tid = Trace.thread (); site = Trace.site (); kind }

(* The warm restart itself.  [log] is the write log of the thread running
   on the victim at crash time.  Write-through already placed both the
   data and the home-side knowledge (sharer registrations, timestamp
   stamps) at the homes, so the victim's pending release obligations are
   settled from the home side; the victim-side log is the simulator's
   vehicle for that settlement, and it runs *before* the state drop so
   sharers of pages the dying thread wrote still hear their
   invalidations. *)
let crash_and_recover t ~proc ~(log : Write_log.t) =
  let c = t.cfg.C.costs in
  let s = Machine.stats t.machine in
  let ps = t.procs.(proc) in
  let t0 = Machine.now t.machine proc in
  (* the whole warm restart is one Crash envelope span: the per-home
     recovery announcements below are retried request/replies, so their
     Rpc spans (and any drop/backoff events) nest under it — a crash in
     the middle of a dereference shows up inside that episode's tree *)
  let module Span = Olden_span.Span in
  let span_on = Span.is_on () in
  let sprev = if span_on then Span.parent () else -1 in
  let sid = if span_on then Span.enter () else -1 in
  if ps.crashes = 0 then
    ps.ever_at_first_crash <- Translation.entries_ever (Cache.table t.cache proc);
  ps.crashes <- ps.crashes + 1;
  ps.last_crash_time <- t0;
  s.Stats.crashes <- s.Stats.crashes + 1;
  (* settle the running thread's release obligations from the home side *)
  Cache.on_migration_sent t.cache ~proc ~log;
  let lost = Cache.drop_processor_state t.cache ~proc in
  ps.pages_lost <- ps.pages_lost + lost;
  s.Stats.pages_lost_in_crash <- s.Stats.pages_lost_in_crash + lost;
  emit ~proc ~time:t0 (Trace.Crash { pages_lost = lost });
  (* restart work: rebuild the empty table (charged as the whole-cache
     invalidate the local scheme already prices) *)
  Machine.advance t.machine proc c.C.cache_flush;
  let homes = ref 0 in
  (match t.cfg.C.coherence with
  | C.Global ->
      (* announce recovery to every other processor so its directory
         stops naming us as a sharer; the announcement is a normal
         retried request/reply, so it survives the same lossy network
         that may have caused the crash window *)
      for home = 0 to t.cfg.C.nprocs - 1 do
        if home <> proc then begin
          incr homes;
          ps.messages <- ps.messages + 1;
          s.Stats.recovery_messages <- s.Stats.recovery_messages + 1;
          ignore
            (Machine.request_reply ~klass:Fault_plan.Recovery t.machine
               ~src:proc ~dst:home ~service:c.C.recovery_service);
          ignore (Cache.prune_crashed_sharer t.cache ~home ~proc)
        end
      done
  | C.Bilateral | C.Local ->
      (* bilateral: the wiped table revalidates page-by-page on first
         touch; local: the wipe is the scheme's own flush — neither
         needs a message *)
      ());
  let stall = Machine.now t.machine proc - t0 in
  ps.stall_cycles <- ps.stall_cycles + stall;
  s.Stats.recovery_stall_cycles <- s.Stats.recovery_stall_cycles + stall;
  if Olden_monitor.Monitor.is_on () then
    Olden_monitor.Monitor.recovery_stall ~cycles:stall;
  if span_on then
    Span.exit_emit ~id:sid ~prev:sprev ~kind:Span.Crash ~proc ~t0
      ~t1:(Machine.now t.machine proc) ~a:lost ~b:!homes;
  emit ~proc ~time:(Machine.now t.machine proc)
    (Trace.Recover { homes = !homes; stall })

(* Is a crash due on [proc] right now?  Forced orders (tests) fire first,
   one per crash; otherwise the seeded schedule decides, at most once per
   (proc, window) — [Fault_plan.crash_due] is constant within a window,
   so without the [last_window] latch one positive window would crash the
   victim at every operation boundary it contains. *)
let crash_pending t ~proc ~time =
  let rec take acc = function
    | [] -> None
    | (p, at) :: rest when p = proc && at <= time ->
        Some (List.rev_append acc rest)
    | entry :: rest -> take (entry :: acc) rest
  in
  match take [] t.forced with
  | Some rest ->
      t.forced <- rest;
      true
  | None -> (
      match Machine.fault_plan t.machine with
      | None -> false
      | Some plan ->
          let spec = Fault_plan.spec plan in
          spec.C.crash > 0.
          && spec.C.crash_cycles > 0
          &&
          let window = time / spec.C.crash_cycles in
          let ps = t.procs.(proc) in
          window > ps.last_window
          && Fault_plan.crash_due plan ~proc ~time
          &&
          (ps.last_window <- window;
           true))

let maybe_crash t ~proc ~log =
  if crash_pending t ~proc ~time:(Machine.now t.machine proc) then begin
    crash_and_recover t ~proc ~log;
    true
  end
  else false

(* --- Reporting ------------------------------------------------------- *)

type proc_report = {
  proc : int;
  crashes : int;
  pages_lost : int;
  pages_refetched : int;
  recovery_messages : int;
  stall_cycles : int;
}

let report t =
  let rows = ref [] in
  for proc = t.cfg.C.nprocs - 1 downto 0 do
    let ps = t.procs.(proc) in
    if ps.crashes > 0 then
      rows :=
        {
          proc;
          crashes = ps.crashes;
          pages_lost = ps.pages_lost;
          pages_refetched =
            Translation.entries_ever (Cache.table t.cache proc)
            - ps.ever_at_first_crash;
          recovery_messages = ps.messages;
          stall_cycles = ps.stall_cycles;
        }
        :: !rows
  done;
  !rows

let stall_cycles t =
  Array.map (fun (ps : proc_state) -> ps.stall_cycles) t.procs
