(** Fail-stop failover: primary–backup home replication promoted on a
    permanent processor death.

    {!Recovery} handles crash-and-restart (the victim comes back; only
    volatile cache state is lost).  This module handles the stronger
    fault: a fail-stopped processor never computes again.  Survival
    rests on the replication layer ({!Olden_config.replica_spec}) having
    write-through-mirrored every home store to a deterministic backup;
    failover promotes that backup, rewrites the machine's home map so
    every later send resolves against it, handles dependents per
    coherence scheme, and re-homes a fresh backup.

    The engine drives it: {!pending} is consulted at task boundaries
    (before the victim would run anything), {!fail_over} runs the
    protocol, and the engine then moves or aborts the victim's resident
    work itself, recording losses through {!note_threads_lost}. *)

type t

val create :
  Olden_config.t -> Machine.t -> Olden_cache.Cache_system.t -> Memory.t -> t

val schedule_failstop : t -> proc:int -> at:int -> unit
(** Force a death of [proc] at the first task boundary at or after
    simulated time [at] (tests); consumed before the seeded schedule is
    consulted. *)

val pending : t -> proc:int -> time:int -> bool
(** Is a fail-stop death due on [proc] at [time]?  Forced orders fire
    first, then the seeded schedule ({!Fault_plan.failstop_due}).
    Always false for an already-dead processor and never true for the
    last live one (the quorum-of-one guard). *)

val fail_over : t -> victim:int -> int
(** Run the failover protocol: mark the victim dead, drop its cached
    state, re-home every owner it was serving to the deterministic
    successor, prune (global) or suspect (bilateral) dependents, and
    mirror the promoted pages to a fresh backup.  Returns the promoted
    successor.
    @raise Invalid_argument when the config carries no [replication]. *)

val note_threads_lost : t -> proc:int -> count:int -> unit
(** Record resident tasks lost with [proc] (engine-side bookkeeping for
    the unreplicated-threads case). *)

val failstops : t -> int
(** Processors dead so far. *)

val died_at : t -> proc:int -> int
(** Simulated time of [proc]'s death; -1 while alive. *)

val successor_of : t -> proc:int -> int
(** The backup promoted for [proc]; -1 while alive. *)

type proc_report = {
  victim : int;
  died_at : int;
  successor : int;
  pages_failed_over : int;  (** home pages whose service moved *)
  cached_pages_lost : int;  (** victim's live cached page entries *)
  messages : int;  (** announcements + re-replication sends *)
  threads_lost : int;  (** unreplicated resident tasks lost *)
  stall_cycles : int;  (** successor cycles spent on the promotion *)
}

val report : t -> proc_report list
(** One row per dead processor, in processor order. *)
