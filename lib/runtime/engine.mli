(** The Olden runtime: a deterministic discrete-event simulation of SPMD
    execution with computation migration, software caching, futures, and
    future stealing.

    Each simulated thread is an OCaml fiber.  Performing an {!Ops}
    operation hands control to the handler, which charges costs to the
    simulated machine and either resumes the fiber immediately (local
    work, cache accesses) or captures the continuation and schedules its
    resumption elsewhere or later (migrations, return stubs, touches of
    unresolved futures).  A processor left idle by an outgoing migration
    pops the most recent continuation from its own work list — Olden's
    future stealing.

    Scheduling runs items in globally minimal start-time order with
    deterministic tie-breaking, so a run is a pure function of the program
    and the configuration. *)

exception Null_dereference of string
(** Raised when a program dereferences {!Gptr.null}; carries the site
    name. *)

exception Deadlock of string
(** Raised when execution drains with parked touches outstanding, or the
    main thread never completes. *)

exception Threads_lost of string
(** Raised when a processor fail-stops holding resident work —
    queued events, work-list continuations, deferred mail, or parked
    waiters — and the replication layer does not cover thread state
    ([replica_spec.threads = false]): the tasks are unrecoverable, so
    the run aborts with a deterministic report instead of wedging. *)

type t

val create : Olden_config.t -> t

val memory : t -> Memory.t
(** The distributed heap — direct access for post-run verification (reads
    through this interface are free of simulated cost). *)

val machine : t -> Machine.t
val cache : t -> Olden_cache.Cache_system.t

val recovery : t -> Olden_recovery.Recovery.t option
(** The crash-and-restart layer; [Some] whenever a fault schedule is
    active (tests force crashes through it, the checker reads crash
    epochs from it). *)

val failover : t -> Olden_recovery.Failover.t option
(** The fail-stop failover layer; [Some] whenever a fault schedule is
    active (tests force deaths through {!Olden_recovery.Failover.schedule_failstop},
    the checker and the CLI read the promotion report from it). *)

val config : t -> Olden_config.t

val exec : t -> (unit -> unit) -> unit
(** Run a program to completion as the initial thread on processor 0.
    Exceptions raised by the program propagate. *)

val inject :
  t ->
  proc:int ->
  ready_at:int ->
  ?on_complete:(proc:int -> finish:int -> unit) ->
  (unit -> unit) ->
  unit
(** Admit a fresh thread into [proc]'s event queue at absolute simulated
    time [ready_at] — the open-loop entry point the serving driver uses
    to turn the engine into an open system.  The thread runs under the
    full effect handler (migration, caching, faults, failover), exactly
    like program-spawned work; a dead ingress processor redirects to its
    promoted successor.  Counts into [Stats.requests_admitted] /
    [requests_completed] and the machine's per-processor ingress tally.

    Must be called from inside the running program; a cross-shard
    injection is subject to the multi-domain lookahead contract —
    [ready_at] at least {!Olden_config.lookahead} cycles past the
    injecting processor's clock.  [on_complete] runs inside the
    injected fiber on the processor that finished it, receiving that
    processor and its clock at completion. *)

type report = {
  makespan : int;  (** finishing time in cycles *)
  stats : Stats.t;
  utilization : float;
  avg_chain_length : float;  (** translation-table chains (Figure 1) *)
  phases : (string * int) list;  (** phase marks, in program order *)
}

val report : t -> report

type domain_report = {
  shards : int;  (** host-side scheduler shards ([cfg.host_domains]) *)
  epochs : int;  (** epoch barriers taken (mailbox flushes) *)
  deferred_events : int;
      (** cross-shard events routed through the (src,dst) mailboxes *)
}

val domain_report : t -> domain_report
(** Counters of the conservative parallel-DES sharding.  With one shard
    nothing is ever deferred and both counters stay zero; results are
    bit-identical for any shard count (see docs/PERFORMANCE.md). *)

val phase_snapshots : t -> (string * int * Stats.t) list
(** Each phase mark with the statistics snapshot taken at it. *)

val flight_state : t -> string list
(** One line per processor (clock, busy/comm cycles, queued events,
    work-list depth, last span id) — the machine-state section of a
    flight-recorder dump ({!Olden_span.Span.flight_dump}). *)

val interval : t -> start:string -> stop:string option -> int * Stats.t
(** Duration and statistics of the region between two phase marks (or
    from [start] to the end of the run).
    @raise Invalid_argument if [start] was never marked. *)

val run : Olden_config.t -> (unit -> unit) -> report
(** [create] + [exec] + [report]. *)

(** {2 Fast-path operation entry points}

    Used by {!Ops} to run operations that cannot suspend the fiber — cache
    accesses, local references, allocation, touches of resolved futures —
    as plain function calls against the currently executing engine,
    bypassing effect dispatch (a [perform] allocates the effect
    constructor and crosses the handler boundary; the simulator's hot
    paths should cost neither).  Each raises {!Must_perform} without
    having mutated anything when the operation must capture the fiber
    (a migration, a park) or when no engine is running; the caller then
    performs the corresponding effect.  Observable simulated behavior is
    identical on either path. *)

exception Must_perform

val fast_work : int -> unit
val fast_self : unit -> int
val fast_nprocs : unit -> int
val fast_alloc : proc:int -> int -> Gptr.t
val fast_load : Site.t -> Gptr.t -> int -> Value.t
val fast_store : Site.t -> Gptr.t -> int -> Value.t -> unit
val fast_touch : Effects.fut -> Value.t
