(* A binary min-heap of scheduler items keyed by (ready_at, seq).

   The sequence number makes the simulation fully deterministic: two items
   ready at the same cycle pop in creation order. *)

type 'a item = { ready_at : int; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a item array; mutable size : int }

(* Slots at index >= size are dead, but the array still roots whatever
   item record they hold — on long runs that pins popped closures (and
   everything they capture) until the slot happens to be overwritten.
   Dead slots are therefore filled with this shared dummy item.  Its
   payload is a unit stand-in: [item] is an ordinary boxed record (the
   array is a pointer array, never a float array), and no caller ever
   reads a slot at index >= size, so the cast is unobservable. *)
let dummy_item = { ready_at = min_int; seq = min_int; payload = Obj.repr () }
let dummy () : 'a item = Obj.magic dummy_item

let create () = { arr = [||]; size = 0 }

let is_empty q = q.size = 0
let length q = q.size

let before a b = a.ready_at < b.ready_at || (a.ready_at = b.ready_at && a.seq < b.seq)

let grow q =
  let cap = max 16 (2 * Array.length q.arr) in
  let arr = Array.make cap (dummy ()) in
  Array.blit q.arr 0 arr 0 q.size;
  q.arr <- arr

let push q ~ready_at ~seq payload =
  let it = { ready_at; seq; payload } in
  if q.size = Array.length q.arr then
    if q.size = 0 then q.arr <- Array.make 16 (dummy ()) else grow q;
  q.arr.(q.size) <- it;
  q.size <- q.size + 1;
  (* sift up *)
  let i = ref (q.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before q.arr.(!i) q.arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = q.arr.(parent) in
    q.arr.(parent) <- q.arr.(!i);
    q.arr.(!i) <- tmp;
    i := parent
  done

let top q =
  if q.size = 0 then invalid_arg "Event_queue.top: empty queue";
  q.arr.(0)
(* Alloc-free variant of [peek] for the scheduler's hot scan: the caller
   tests [is_empty] first and reads [ready_at]/[seq] off the item. *)

let peek q = if q.size = 0 then None else Some q.arr.(0)

(* Remove and return the minimum item; raises on empty ([pop] wraps it in
   an option for callers that prefer that). *)
let take q =
  if q.size = 0 then invalid_arg "Event_queue.take: empty queue";
  let top = q.arr.(0) in
  q.size <- q.size - 1;
  if q.size > 0 then q.arr.(0) <- q.arr.(q.size);
  (* clear the vacated slot so the popped item is collectable now, not
     when the slot is next overwritten *)
  q.arr.(q.size) <- dummy ();
  if q.size > 0 then begin
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && before q.arr.(l) q.arr.(!smallest) then smallest := l;
      if r < q.size && before q.arr.(r) q.arr.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = q.arr.(!smallest) in
        q.arr.(!smallest) <- q.arr.(!i);
        q.arr.(!i) <- tmp;
        i := !smallest
      end
    done
  end;
  top

let pop q = if q.size = 0 then None else Some (take q)
