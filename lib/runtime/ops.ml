(* The operations available to an Olden program.  These are what the Olden
   compiler emits calls to; benchmark kernels are written directly against
   this interface. *)

(* Every operation tries the engine's fast path first: operations that
   cannot suspend the fiber run as plain function calls, and only those
   that must capture it (migrations, parks) — or calls outside any engine
   — pay for performing an effect.  [Engine.Must_perform] is raised before
   any state is mutated, so the two paths compose without double
   charging. *)

let work n =
  try Engine.fast_work n
  with Engine.Must_perform -> Effect.perform (Effects.Work n)

let self () =
  try Engine.fast_self ()
  with Engine.Must_perform -> Effect.perform Effects.Self

let nprocs () =
  try Engine.fast_nprocs ()
  with Engine.Must_perform -> Effect.perform Effects.Nprocs

(* ALLOC: allocate [words] words on processor [proc] (Section 2). *)
let alloc ~proc words =
  try Engine.fast_alloc ~proc words
  with Engine.Must_perform -> Effect.perform (Effects.Alloc (proc, words))

let alloc_local words = alloc ~proc:(self ()) words

(* A heap read/write through dereference site [site]. *)
let load site g field =
  try Engine.fast_load site g field
  with Engine.Must_perform -> Effect.perform (Effects.Load (site, g, field))

let store site g field v =
  try Engine.fast_store site g field v
  with Engine.Must_perform ->
    Effect.perform (Effects.Store (site, g, field, v))

let load_ptr site g field = Value.to_ptr (load site g field)
let load_int site g field = Value.to_int (load site g field)
let load_float site g field = Value.to_float (load site g field)

let store_ptr site g field p = store site g field (Value.Ptr p)
let store_int site g field i = store site g field (Value.Int i)
let store_float site g field f = store site g field (Value.Float f)

(* futurecall / touch (Section 2).  A futurecall always saves its return
   continuation on the work list, so it always performs; a touch of an
   already-resolved future completes immediately on the fast path. *)
let future body = Effect.perform (Effects.Future body)

let touch ?site fut =
  try Engine.fast_touch fut
  with Engine.Must_perform -> Effect.perform (Effects.Touch (site, fut))

(* A procedure-call boundary: Olden's return stub.  If the callee migrated,
   the thread returns to the caller's processor when the call completes;
   if it never migrated, the stub costs nothing. *)
let call f =
  let origin = self () in
  let result = f () in
  if self () <> origin then Effect.perform (Effects.Return_to origin);
  result

(* Measurement boundary: synchronize all processors and mark the time;
   used to separate structure building from the measured kernel. *)
let phase name = Effect.perform (Effects.Phase name)
