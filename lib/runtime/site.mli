(** Dereference sites.

    A site stands for one textual pointer dereference in the source
    program — the compiler's unit of mechanism choice (Section 4).  The
    heuristic in [Olden_compiler] (or the paper's published selection)
    assigns each site the mechanism used when the reference is remote. *)

type t = {
  sid : int;  (** unique id *)
  sname : string;  (** e.g. ["treeadd.t->left"] *)
  mutable mech : Olden_config.mechanism;
  mutable loads : int;  (** profile: loads through this site *)
  mutable stores : int;
  mutable remote : int;  (** remote references *)
  mutable migrations : int;  (** migrations this site caused *)
  mutable misses : int;  (** cache-line fetches this site caused *)
  mutable retries : int;
      (** retransmissions its messages needed (fault schedules only) *)
  mutable fallbacks : int;
      (** migrations through this site that gave up and cached instead *)
}

val make : ?mech:Olden_config.mechanism -> string -> t
(** Register a fresh site; the default mechanism is migration. *)

val migrate : string -> t
(** A site using computation migration. *)

val cache : string -> t
(** A site using software caching. *)

val set_mechanism : t -> Olden_config.mechanism -> unit
val mechanism : t -> Olden_config.mechanism
val name : t -> string

val all : unit -> t list
(** Every site registered so far, in creation order. *)

val label : t -> string
(** ["func.var->field"] rendered as ["var->field@func"] — the dereference
    first, its enclosing function second — for profiler tables and metric
    labels.  Names outside the convention pass through unchanged. *)

val labels : unit -> (int * string) list
(** [(sid, label)] for every registered site, in creation order: the
    site-name table drivers hand to {!Olden_trace.Recorder.of_events} and
    the profiler. *)

val reset : unit -> unit
(** Forget every site and restart the id counter.  Sites are process
    globals; tests that need identical sids across repeated in-process
    runs reset between them. *)

val reset_profiles : unit -> unit
(** Zero every site's counters (sites are global; reset between runs when
    profiling). *)

val profile : unit -> t list
(** Sites with traffic, busiest first. *)

val comm_cycles : Olden_config.costs -> t -> int
(** Communication cycles attributable to the site (migrations plus line
    fetches) under a cost model. *)

val pp_profile : Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
