(* The operations a simulated Olden thread can perform, expressed as OCaml
   effects.  Effect handlers give us exactly what Olden implements in SPARC
   assembly: the ability to capture a running thread's state (a one-shot
   continuation), ship it to another processor, and resume it there.

   Threads and futures are defined here because both the performers
   ([Ops]) and the handler ([Engine]) need them. *)

(* A simulated thread: carries the write log the coherence protocols need
   at releases (outgoing migrations) and returns, plus its seat — the
   processor the migration protocol considers the thread to reside at.
   On a healthy machine the seat always equals the physical processor;
   they diverge only after a fail-stop failover, when a migration's
   resolved target collapses onto the processor the thread already
   occupies (the successor adopted the page's home).  The hop then moves
   no state, but the protocol's release/acquire pair must still fire —
   the seat is what detects such collapsed hops. *)
type thread = {
  tid : int;
  mutable seat : int;
  log : Olden_cache.Write_log.t;
}

type cell_state =
  | Done of Value.t
  | Pending of waiter list

and waiter = {
  wk : (Value.t, unit) Effect.Deep.continuation;
  wproc : int; (* processor the toucher was on; it resumes there *)
  wthread : thread;
  wlabel : string; (* where it parked — for deadlock diagnostics *)
}

(* A future cell ("return continuation on the work list" plus result slot).
   The resolver's identity is kept so touching the result is an acquire
   with respect to the resolving thread's writes (the paper's "virtual
   locks" cover the data a thread wrote). *)
and fut = {
  fid : int;
  mutable state : cell_state;
  mutable resolver_proc : int;
  mutable resolver_seat : int;
      (* the resolver thread's seat: after a failover, resolver and
         toucher can share a physical processor while the protocol still
         considers them at different (virtual) locations, and the
         acquire-side invalidation must not be skipped *)
  mutable resolver_log : Olden_cache.Write_log.t option;
}

type _ Effect.t +=
  | Work : int -> unit Effect.t (* charge compute cycles *)
  | Alloc : int * int -> Gptr.t Effect.t (* ALLOC (proc, words) *)
  | Load : Site.t * Gptr.t * int -> Value.t Effect.t (* site, base, field *)
  | Store : Site.t * Gptr.t * int * Value.t -> unit Effect.t
  | Future : (unit -> Value.t) -> fut Effect.t (* futurecall *)
  | Touch : Site.t option * fut -> Value.t Effect.t
      (* the site, when known, labels the park for deadlock diagnostics *)
  | Self : int Effect.t (* current processor *)
  | Nprocs : int Effect.t
  | Return_to : int -> unit Effect.t (* return stub target *)
  | Phase : string -> unit Effect.t (* barrier + measurement boundary *)
