(** The operations available to an Olden program — what the Olden compiler
    emits calls to.  Benchmark kernels are written directly against this
    interface; each operation performs an effect that the {!Engine}
    handler turns into simulated cycles, migrations, cache traffic, or
    thread scheduling.

    Every function here must be called from inside a program executed by
    {!Engine.exec} / {!Engine.run}. *)

val work : int -> unit
(** Charge compute cycles on the current processor. *)

val self : unit -> int
(** The current (simulated) processor. *)

val nprocs : unit -> int

val alloc : proc:int -> int -> Gptr.t
(** ALLOC: allocate words on the named processor (Section 2).  No
    communication is needed even for a remote processor. *)

val alloc_local : int -> Gptr.t

val load : Site.t -> Gptr.t -> int -> Value.t
(** [load site p field] reads heap word [p + field] through [site]'s
    mechanism: a locality test, then a local load, a cache access, or a
    thread migration to the owner.
    @raise Engine.Null_dereference on {!Gptr.null}. *)

val store : Site.t -> Gptr.t -> int -> Value.t -> unit

val load_ptr : Site.t -> Gptr.t -> int -> Gptr.t
val load_int : Site.t -> Gptr.t -> int -> int
val load_float : Site.t -> Gptr.t -> int -> float
val store_ptr : Site.t -> Gptr.t -> int -> Gptr.t -> unit
val store_int : Site.t -> Gptr.t -> int -> int -> unit
val store_float : Site.t -> Gptr.t -> int -> float -> unit

val future : (unit -> Value.t) -> Effects.fut
(** futurecall: saves the return continuation on this processor's work
    list and evaluates the body directly; a new thread materializes only
    if the body migrates, leaving the processor to steal the continuation
    (Section 2). *)

val touch : ?site:Site.t -> Effects.fut -> Value.t
(** Block until the future resolves; an acquire with respect to the
    resolving thread's writes.  [site], when given, labels the park in
    deadlock diagnostics. *)

val call : (unit -> 'a) -> 'a
(** A procedure-call boundary: Olden's return stub.  If the callee
    migrated, the thread returns to the caller's processor when the call
    completes; if it never migrated, the stub costs nothing. *)

val phase : string -> unit
(** Measurement boundary: synchronize all processors and record the time
    and a statistics snapshot (used to separate structure building from
    the measured kernel). *)
