(* A text Gantt chart of processor activity.

   Renders the busy intervals recorded by the machine into one row per
   processor and a fixed number of time buckets; each cell shows how busy
   the processor was during that slice of the run.  Makes load imbalance,
   serial phases, and spawn waves visible at a glance:

     p 0 |################.....#########################################|
     p 1 |....##########################################................|
*)

let glyph_of_fraction f =
  if f <= 0.01 then '.'
  else if f < 0.35 then '-'
  else if f < 0.75 then '+'
  else '#'

(* Per-processor busy cycles per bucket.

   The bucket length must be the *ceiling* of makespan/width: with the
   floor, a makespan not divisible by [width] (and especially a makespan
   smaller than [width]) leaves the tail of the run beyond the last
   bucket, where clamping used to pile the overflow into the final cell —
   counting some cycles twice and losing others.  With the ceiling,
   [width * bucket_len >= makespan], so every cycle has exactly one
   bucket and busy time is conserved.  Zero-length intervals contribute
   nothing. *)
let buckets ~nprocs ~makespan ~width intervals =
  if width <= 0 then invalid_arg "Timeline.buckets: width must be positive";
  let grid = Array.make_matrix nprocs width 0 in
  let bucket_len = max 1 ((makespan + width - 1) / width) in
  List.iter
    (fun (proc, start, stop) ->
      if stop > start then begin
        let b0 = min (width - 1) (start / bucket_len) in
        let b1 = min (width - 1) ((stop - 1) / bucket_len) in
        for b = b0 to b1 do
          let lo = max start (b * bucket_len) in
          let hi = min stop ((b + 1) * bucket_len) in
          if hi > lo then grid.(proc).(b) <- grid.(proc).(b) + (hi - lo)
        done
      end)
    intervals;
  (grid, bucket_len)

let render ?(width = 64) ppf (machine : Machine.t) =
  let nprocs = Machine.nprocs machine in
  let makespan = max 1 (Machine.makespan machine) in
  let intervals = Machine.busy_intervals machine in
  if intervals = [] then
    Format.fprintf ppf
      "(no busy intervals recorded: enable recording before the run)@."
  else begin
    let grid, bucket_len = buckets ~nprocs ~makespan ~width intervals in
    Format.fprintf ppf
      "timeline: %d cycles across %d buckets of %d cycles ('#' busy, '.' idle)@."
      makespan width bucket_len;
    for p = 0 to nprocs - 1 do
      Format.fprintf ppf "p%2d |" p;
      for b = 0 to width - 1 do
        let f = float_of_int grid.(p).(b) /. float_of_int bucket_len in
        Format.pp_print_char ppf (glyph_of_fraction f)
      done;
      Format.fprintf ppf "|@."
    done
  end
