(* The Olden runtime: a deterministic discrete-event simulation of SPMD
   execution with computation migration, software caching, futures, and
   future stealing.

   Each simulated thread is an OCaml fiber.  Performing an effect hands
   control to the handler below, which charges costs to the simulated
   machine and either resumes the fiber immediately (local work, cache
   accesses) or captures the continuation and schedules its resumption
   elsewhere / later (migrations, return stubs, touches of unresolved
   futures).  A processor left idle by an outgoing migration pops the most
   recent continuation from its own work list — Olden's future stealing.

   Scheduling is by globally minimal start time, with sequence numbers
   breaking ties, so a run is a pure function of the program and the
   configuration. *)

module C = Olden_config
module Cache = Olden_cache.Cache_system
module Write_log = Olden_cache.Write_log
module Trace = Olden_trace.Trace
module Span = Olden_span.Span
module Monitor = Olden_monitor.Monitor
module Recovery = Olden_recovery.Recovery
module Failover = Olden_recovery.Failover
open Effects

exception Null_dereference of string
exception Deadlock of string

exception Threads_lost of string
(* A processor fail-stopped with unreplicated resident work
   ([replica_spec.threads = false]): the tasks are unrecoverable, so the
   run aborts with a deterministic report instead of wedging. *)

exception Must_perform
(* Raised — with [raise_notrace], before any state is mutated — by the
   immediate-path operation bodies when the operation must capture the
   current fiber (a migration or a park on an unresolved future), so the
   caller falls back to performing the effect. *)

type task = { thread : thread; go : unit -> unit }

type work_item = { pushed_at : int; wseq : int; wtask : task }

type phase_mark = { pname : string; at : int; snapshot : Stats.t }

type source = Src_event | Src_work

(* --- Host-side scheduler shards (conservative parallel DES) -----------

   Simulated processors are partitioned into [cfg.host_domains] contiguous
   shards.  Each shard caches the best runnable candidate over its own
   processors' event queues and work lists, so the per-step scan costs
   O(shards) comparisons plus one O(nprocs/shards) rescan of the shard
   whose state changed, instead of a full O(nprocs) sweep.

   The cache is sound because of the conservative-DES lookahead
   ({!Olden_config.lookahead}): every cross-processor event carries at
   least one network traversal of delay, so an event scheduled into
   another shard mid-epoch can never be due before the epoch's horizon.
   Cross-shard events are therefore routed through per-(src,dst)
   mailboxes and only merged into the destination queues at an epoch
   barrier — the moment the global frontier reaches the earliest deferred
   arrival — in (ready_at, seq) order.  Within a shard, and for every
   clock the executing task can touch (Machine only ever moves the
   executing processor's clock), a single dirty bit on the executing
   shard restores exactness.  Execution itself stays serialized in global
   (start, prio, avail, seq) order, so results are bit-identical for any
   shard count. *)

type shard = {
  s_lo : int;
  s_hi : int; (* procs [s_lo, s_hi) *)
  mutable s_dirty : bool;
  (* cached best candidate; [c_proc = -1] when the shard has nothing *)
  mutable c_start : int;
  mutable c_prio : int;
  mutable c_avail : int;
  mutable c_seq : int;
  mutable c_proc : int;
  mutable c_src : source;
}

type mail = { m_proc : int; m_ready : int; m_seq : int; m_task : task }

type t = {
  cfg : C.t;
  machine : Machine.t;
  memory : Memory.t;
  cache : Cache.t;
  recovery : Recovery.t option; (* Some iff a fault schedule is active *)
  failover : Failover.t option; (* Some iff a fault schedule is active *)
  events : task Event_queue.t array; (* per processor *)
  worklists : work_item Stack.t array; (* per processor, LIFO *)
  mutable seq : int;
  mutable cur_proc : int;
  mutable cur_thread : thread;
  mutable next_tid : int;
  mutable next_fid : int;
  mutable blocked : int; (* parked touch waiters *)
  mutable parked : (int * string) list;
      (* (processor, label) per parked waiter — deadlock diagnostics *)
  mutable phases : phase_mark list; (* newest first *)
  mutable finished : bool;
  (* conservative parallel-DES sharding (see above) *)
  shards : shard array;
  shard_of : int array; (* proc -> shard index *)
  mailboxes : mail list ref array array; (* [src_shard].[dst_shard], newest first *)
  mutable exec_shard : int; (* shard of the task being executed, -1 outside *)
  mutable mailbox_min : int; (* earliest deferred ready_at, max_int when none *)
  mutable epochs : int; (* barriers taken (mailbox flushes) *)
  mutable deferred : int; (* cross-shard events routed through mailboxes *)
}

let create cfg =
  let machine = Machine.create cfg in
  let memory = Memory.create ~nprocs:cfg.C.nprocs in
  let cache = Cache.create cfg machine memory in
  let dummy_thread = { tid = 0; seat = 0; log = Write_log.create () } in
  let nprocs = cfg.C.nprocs in
  let nshards = max 1 (min cfg.C.host_domains nprocs) in
  let chunk = (nprocs + nshards - 1) / nshards in
  let shards =
    Array.init nshards (fun i ->
        {
          s_lo = i * chunk;
          s_hi = min nprocs ((i + 1) * chunk);
          s_dirty = true;
          c_start = max_int;
          c_prio = max_int;
          c_avail = max_int;
          c_seq = max_int;
          c_proc = -1;
          c_src = Src_event;
        })
  in
  {
    cfg;
    machine;
    memory;
    cache;
    recovery =
      (* crash machinery exists whenever faults do, so tests can force
         crashes under any schedule; with [crash = 0] it decides nothing
         and consumes no randomness, keeping zero-probability runs
         bit-identical to fault-free ones *)
      (if cfg.C.faults <> None then Some (Recovery.create cfg machine cache)
       else None);
    failover =
      (* same deal as [recovery]: the fail-stop machinery exists whenever
         faults do (tests force deaths under any schedule); with
         [failstop = 0] it decides nothing and consumes no randomness *)
      (if cfg.C.faults <> None then
         Some (Failover.create cfg machine cache memory)
       else None);
    events = Array.init cfg.C.nprocs (fun _ -> Event_queue.create ());
    worklists = Array.init cfg.C.nprocs (fun _ -> Stack.create ());
    seq = 0;
    cur_proc = 0;
    cur_thread = dummy_thread;
    next_tid = 1;
    next_fid = 0;
    blocked = 0;
    parked = [];
    phases = [];
    finished = false;
    shards;
    shard_of = Array.init nprocs (fun p -> min (p / chunk) (nshards - 1));
    mailboxes = Array.init nshards (fun _ -> Array.init nshards (fun _ -> ref []));
    exec_shard = -1;
    mailbox_min = max_int;
    epochs = 0;
    deferred = 0;
  }

let memory t = t.memory
let machine t = t.machine
let cache t = t.cache
let recovery t = t.recovery
let failover t = t.failover
let config t = t.cfg
let stats t = Machine.stats t.machine
let costs t = t.cfg.C.costs

let new_thread t =
  let tid = t.next_tid in
  t.next_tid <- tid + 1;
  (* a fresh thread sits where its creator (virtually) sits: a future's
     parent continuation spawned after a collapsed hop must keep
     reporting the original owner as SELF, exactly like the fault-free
     run *)
  { tid; seat = t.cur_thread.seat; log = Write_log.create () }

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq

(* Schedule a task.  Same-shard events go straight into the processor's
   queue (the shard rescans before it is consulted again); cross-shard
   events are deferred into the (src,dst) mailbox until the next epoch
   barrier.  The lookahead invariant — every cross-processor event
   carries at least [Olden_config.lookahead] cycles of delay from the
   clock that sends it — is what makes the deferral order-preserving,
   and is asserted here at every deferral. *)
let schedule_event t ~proc ~ready_at task =
  let seq = next_seq t in
  let ds = t.shard_of.(proc) in
  if t.exec_shard >= 0 && ds <> t.exec_shard then begin
    assert (
      ready_at
      >= Machine.now t.machine t.cur_proc + C.lookahead t.cfg);
    let mb = t.mailboxes.(t.exec_shard).(ds) in
    mb := { m_proc = proc; m_ready = ready_at; m_seq = seq; m_task = task } :: !mb;
    if ready_at < t.mailbox_min then t.mailbox_min <- ready_at;
    t.deferred <- t.deferred + 1
  end
  else begin
    Event_queue.push t.events.(proc) ~ready_at ~seq task;
    t.shards.(ds).s_dirty <- true
  end

let push_work t ~proc task =
  Stack.push
    { pushed_at = Machine.now t.machine proc; wseq = next_seq t; wtask = task }
    t.worklists.(proc);
  t.shards.(t.shard_of.(proc)).s_dirty <- true

let now t = Machine.now t.machine t.cur_proc
let advance t cycles = Machine.advance t.machine t.cur_proc cycles

(* Low-tech event tracing, enabled by [cfg.trace]; the message is built
   lazily, and call sites guard on [t.cfg.C.trace] themselves so not even
   the message closure is allocated when tracing is off. *)
let trace t msg =
  if t.cfg.C.trace then
    Printf.eprintf "[t=%8d p=%2d tid=%d] %s\n%!" (now t) t.cur_proc
      t.cur_thread.tid (msg ())

(* Structured event emission (Olden_trace).  Every call site is guarded
   on [Trace.is_on] so nothing is allocated when no sink is installed. *)
let emit t ?(site = -1) kind =
  Trace.emit
    { Trace.time = now t; proc = t.cur_proc; tid = t.cur_thread.tid; site;
      kind }

(* A toucher acquiring a result resolved on another processor must not see
   stale copies of what the resolver wrote: the same invalidation applies
   as when a thread returns (Section 3.2). *)
let acquire_result t ~proc ~(toucher : thread) (cell : fut) =
  match cell.resolver_log with
  | Some log ->
      (* seats, not just physical processors: after a failover the
         resolver and toucher can share a processor while the protocol
         still places them at different virtual locations, and the
         invalidation must fire exactly as it would have between the
         original processors (on a healthy machine seat = processor, so
         the second test adds nothing) *)
      if cell.resolver_proc <> proc || cell.resolver_seat <> toucher.seat
      then Cache.on_return_received t.cache ~proc ~log;
      (* the resolver's writes become part of the toucher's causal past:
         a later release by the toucher must cover them too *)
      Write_log.absorb_written_procs toucher.log ~from:log
  | None -> ()

let remove_parked parked ~proc ~label =
  let rec go = function
    | [] -> []
    | (p, l) :: rest when p = proc && String.equal l label -> rest
    | entry :: rest -> entry :: go rest
  in
  go parked

(* Resolve a future: a release point for the resolving thread (its writes
   become visible through the cell), then wake every parked toucher on its
   own processor (remote wakeups pay a notification latency). *)
let resolve t (cell : fut) v =
  match cell.state with
  | Done _ -> failwith "Engine: future resolved twice"
  | Pending waiters ->
      cell.state <- Done v;
      if t.cfg.C.trace then
        trace t (fun () ->
            Printf.sprintf "resolve fut#%d (%d waiter(s))" cell.fid
              (List.length waiters));
      if Trace.is_on () then
        emit t
          (Trace.Future_resolve
             { fid = cell.fid; waiters = List.length waiters });
      Cache.on_migration_sent t.cache ~proc:t.cur_proc ~log:t.cur_thread.log;
      cell.resolver_proc <- t.cur_proc;
      cell.resolver_seat <- t.cur_thread.seat;
      cell.resolver_log <- Some t.cur_thread.log;
      let c = costs t in
      List.iter
        (fun w ->
          t.blocked <- t.blocked - 1;
          (* a waiter parked on a processor that has since fail-stopped
             wakes on its promoted successor (where its work list and
             parked-entry bookkeeping moved); the home map is the
             identity until a failover, so this resolves to [wproc]
             itself on a healthy machine *)
          let wdest =
            if Machine.is_dead t.machine w.wproc then
              Machine.home_of t.machine w.wproc
            else w.wproc
          in
          t.parked <- remove_parked t.parked ~proc:wdest ~label:w.wlabel;
          let delay = if wdest <> t.cur_proc then c.C.net_latency else 0 in
          schedule_event t ~proc:wdest ~ready_at:(now t + delay)
            {
              thread = w.wthread;
              go =
                (fun () ->
                  (* [t.cur_proc], not the captured destination: the
                     event may have been re-homed again while queued *)
                  acquire_result t ~proc:t.cur_proc ~toucher:w.wthread cell;
                  Effect.Deep.continue w.wk v);
            })
        (List.rev waiters)

(* Effective mechanism at a site, after the policy override (Table 2's
   migrate-only column; cache-only ablation). *)
let effective_mechanism t (site : Site.t) =
  match t.cfg.C.policy with
  | C.Heuristic -> site.Site.mech
  | C.Migrate_only -> C.Migrate
  | C.Cache_only -> C.Cache

(* Crash boundary: consult the recovery layer before an operation touches
   the cache (and when a migrated or returning thread arrives).  Firing
   *before* the operation is what makes replay safe: a store is never
   double-applied and a load never reads a wiped frame — the dereference
   simply runs against the empty table and refetches through the normal
   miss path. *)
let check_crash t ~proc ~(thread : thread) =
  match t.recovery with
  | None -> ()
  | Some r -> ignore (Recovery.maybe_crash r ~proc ~log:thread.log)

(* Suspend the current fiber and ship it to [target]: a computation
   migration.  [on_arrival] completes the interrupted operation there.
   [penalty] is the extra arrival latency charged by the faulty network
   (retransmission waits and delivery delays); zero on a reliable one. *)
let migrate_to t ~site ~target ~vseat ~penalty ~ep0
    ~(k : ('a, unit) Effect.Deep.continuation) ~(complete : unit -> 'a) =
  let c = costs t in
  let s = stats t in
  s.Stats.migrations <- s.Stats.migrations + 1;
  let thread = t.cur_thread in
  let source = t.cur_proc in
  if t.cfg.C.trace then
    trace t (fun () -> Printf.sprintf "migrate -> %d" target);
  (* an outgoing migration is a release point *)
  Cache.on_migration_sent t.cache ~proc:t.cur_proc ~log:thread.log;
  advance t c.C.migrate_send;
  if Trace.is_on () then emit t ~site (Trace.Migrate_send { target });
  Machine.count_bytes t.machine 256 (* registers + PC + frame *);
  let send_done = now t in
  let ready_at = send_done + c.C.net_latency + penalty in
  (* the trace context crosses the wire inside the scheduled closure:
     saved here, restored when the state arrives, so the hops at the
     target join this episode's tree.  The hop intervals telescope —
     send [ep0, send_done], wire, penalty, queue, replay, recv, service —
     so their durations sum exactly to the episode latency. *)
  let sctx =
    if Span.is_on () then begin
      Span.child ~kind:Span.Send ~proc:source ~t0:ep0 ~t1:send_done ~a:target
        ~b:0;
      Span.child ~kind:Span.Wire ~proc:source ~t0:send_done
        ~t1:(send_done + c.C.net_latency) ~a:0 ~b:0;
      if penalty > 0 then
        Span.child ~kind:Span.Penalty ~proc:target
          ~t0:(send_done + c.C.net_latency) ~t1:ready_at ~a:penalty ~b:0;
      Span.save ()
    end
    else Span.no_ctx
  in
  schedule_event t ~proc:target ~ready_at
    {
      thread;
      go =
        (fun () ->
          (* not the captured target: if the target fail-stopped while
             the state was in flight, this event was re-homed and now
             runs on the promoted successor's clock *)
          let target = t.cur_proc in
          let span_on = Span.is_on () in
          let t_arr = Machine.now t.machine target in
          if span_on then begin
            Span.restore sctx;
            if t_arr > ready_at then
              Span.child ~kind:Span.Queue ~proc:target ~t0:ready_at ~t1:t_arr
                ~a:0 ~b:0
          end;
          (* the target may have crashed while the state was in flight:
             recover first, then install — the transfer itself survives
             (it is retried network state, not victim cache state) *)
          check_crash t ~proc:target ~thread;
          let t_rc = Machine.now t.machine target in
          if span_on && t_rc > t_arr then
            Span.child ~kind:Span.Replay ~proc:target ~t0:t_arr ~t1:t_rc ~a:0
              ~b:0;
          Machine.advance t.machine target c.C.migrate_recv;
          if Trace.is_on () then
            Trace.emit
              { Trace.time = Machine.now t.machine target; proc = target;
                tid = thread.tid; site;
                kind = Trace.Migrate_arrive { source } };
          (* an incoming migration is an acquire point *)
          Cache.on_migration_received t.cache ~proc:target;
          (* the thread now sits at the page's (virtual) home: the
             original owner, even when a failover routed the state to
             the owner's promoted successor *)
          thread.seat <- vseat;
          let t_recv = Machine.now t.machine target in
          if span_on then
            Span.child ~kind:Span.Recv ~proc:target ~t0:t_rc ~t1:t_recv ~a:0
              ~b:0;
          if Monitor.is_on () then
            (* episode entry ([ep0]) to restart here: the migration leg *)
            Monitor.migration
              ~cycles:(Machine.now t.machine target - ep0);
          let v = complete () in
          if span_on then
            Span.child ~kind:Span.Service ~proc:target ~t0:t_recv
              ~t1:(Machine.now t.machine target) ~a:0 ~b:0;
          if Monitor.is_on () then
            (* entry to completion of the interrupted dereference *)
            Monitor.deref ~sid:site ~mech:Monitor.Migrate
              ~cycles:(Machine.now t.machine target - ep0);
          if span_on then
            Span.close_root
              ~t1:(Machine.now t.machine target)
              ~a:site ~b:2 (* mech code: migrate *);
          Effect.Deep.continue k v);
    }

(* --- Immediate operation bodies ------------------------------------ *)

(* Everything below runs to completion without capturing the fiber, so it
   is shared between the effect handler and the fast-path entry points
   [Ops] uses to bypass effect dispatch entirely (a [perform] allocates
   the effect constructor and crosses the handler boundary; a cache hit
   should cost neither).  Each body either finishes the operation or
   raises [Must_perform] before mutating anything. *)

let immediate_work t n = advance t n

let immediate_alloc t ~proc words =
  let c = costs t in
  (* ALLOC needs no round trip even for a remote processor: each
     allocator owns chunks of every heap section, so the address is
     computed locally (Section 2's ALLOC library routine). *)
  if Machine.home_of t.machine proc = t.cur_proc then advance t c.C.alloc_local
  else begin
    (stats t).Stats.remote_allocs <- (stats t).Stats.remote_allocs + 1;
    advance t (c.C.alloc_local + c.C.alloc_service);
    if Trace.is_on () then emit t (Trace.Remote_alloc { home = proc; words })
  end;
  Memory.alloc t.memory ~proc words

(* A dereference through the software cache: the body of the [C.Cache]
   arms below, also the degraded path a migration falls back to when its
   home keeps dropping thread transfers. *)
let cached_load t (site : Site.t) g field =
  site.Site.loads <- site.Site.loads + 1;
  if Gptr.proc g <> t.cur_proc then
    site.Site.remote <- site.Site.remote + 1;
  if Trace.is_on () then begin
    Trace.set_thread t.cur_thread.tid;
    Trace.set_site site.Site.sid
  end;
  let s = stats t in
  let before = s.Stats.cache_misses in
  let retries_before = s.Stats.retries in
  let v = Cache.read t.cache ~proc:t.cur_proc g ~field in
  site.Site.misses <- site.Site.misses + s.Stats.cache_misses - before;
  site.Site.retries <- site.Site.retries + s.Stats.retries - retries_before;
  v

let cached_store t (site : Site.t) g field v =
  site.Site.stores <- site.Site.stores + 1;
  if Gptr.proc g <> t.cur_proc then
    site.Site.remote <- site.Site.remote + 1;
  if Trace.is_on () then begin
    Trace.set_thread t.cur_thread.tid;
    Trace.set_site site.Site.sid
  end;
  let s = stats t in
  let retries_before = s.Stats.retries in
  Cache.write t.cache ~proc:t.cur_proc g ~field v ~log:t.cur_thread.log;
  site.Site.retries <- site.Site.retries + s.Stats.retries - retries_before

(* A migration whose source and home-map-resolved target are the same
   physical processor: the thread already sits on the successor that
   adopted the page's home, so no state crosses the network — but the
   protocol's release/acquire pair must still fire.  Under the local and
   bilateral schemes the acquire (cache flush / suspect-all) is what
   invalidates stale cached copies, and under the global scheme the
   release is what pushes the thread's pending invalidations; skipping
   them just because a death collapsed the hop would let surviving
   processors read pre-failover snapshots.  Fault-free runs never reach
   here: the home map is the identity, so a local access always finds
   [seat = Gptr.proc g]. *)
let collapsed_hop t ~seat =
  Cache.on_migration_sent t.cache ~proc:t.cur_proc ~log:t.cur_thread.log;
  Cache.on_migration_received t.cache ~proc:t.cur_proc;
  t.cur_thread.seat <- seat

let immediate_load_u t (site : Site.t) g field =
  if Gptr.is_null g then raise (Null_dereference (Site.name site));
  let c = costs t in
  if t.cfg.C.sequential then begin
    site.Site.loads <- site.Site.loads + 1;
    advance t c.C.local_ref;
    Memory.load t.memory g field
  end
  else begin
    check_crash t ~proc:t.cur_proc ~thread:t.cur_thread;
    match effective_mechanism t site with
    | C.Cache -> cached_load t site g field
    | C.Migrate ->
        (* the locality test reads through the home map: pages whose
           home fail-stopped over to *this* processor are local now
           (identity until a failover, so fault-free behaviour is
           untouched) *)
        let home = Gptr.proc g in
        if Machine.home_of t.machine home = t.cur_proc then begin
          if t.cur_thread.seat <> home then collapsed_hop t ~seat:home;
          site.Site.loads <- site.Site.loads + 1;
          advance t c.C.pointer_test;
          advance t c.C.local_ref;
          (stats t).Stats.local_refs <- (stats t).Stats.local_refs + 1;
          Memory.load t.memory g field
        end
        else raise_notrace Must_perform
  end

let immediate_store_u t (site : Site.t) g field v =
  if Gptr.is_null g then raise (Null_dereference (Site.name site));
  let c = costs t in
  if t.cfg.C.sequential then begin
    site.Site.stores <- site.Site.stores + 1;
    advance t c.C.local_ref;
    Memory.store t.memory g field v
  end
  else begin
    check_crash t ~proc:t.cur_proc ~thread:t.cur_thread;
    match effective_mechanism t site with
    | C.Cache -> cached_store t site g field v
    | C.Migrate ->
        let home = Gptr.proc g in
        if Machine.home_of t.machine home = t.cur_proc then begin
          if t.cur_thread.seat <> home then collapsed_hop t ~seat:home;
          site.Site.stores <- site.Site.stores + 1;
          advance t c.C.pointer_test;
          advance t c.C.local_ref;
          (stats t).Stats.local_refs <- (stats t).Stats.local_refs + 1;
          Memory.store t.memory g field v;
          Cache.note_migrate_write t.cache ~proc:t.cur_proc g ~field v
            ~log:t.cur_thread.log
        end
        else raise_notrace Must_perform
  end

(* Monitored entry points over the untimed bodies above.  A dereference
   that completes without capturing the fiber is a finished episode: its
   end-to-end latency (including any crash stall [check_crash] charged
   and any cache miss round-trips and retries inside [Cache.read/write])
   is the clock movement across the body.  [Must_perform] propagates
   before any mutation, so an aborted immediate attempt records
   nothing — the episode continues in the effect handler. *)

let completed_mech t (site : Site.t) =
  if t.cfg.C.sequential then Monitor.Local
  else
    match effective_mechanism t site with
    | C.Cache -> Monitor.Cache
    | C.Migrate -> Monitor.Local (* completed immediately: data was local *)

let mech_code = function
  | Monitor.Local -> 0
  | Monitor.Cache -> 1
  | Monitor.Migrate -> 2
  | Monitor.Fallback -> 3

(* Span roots open here, at episode entry, *before* the body runs: if the
   body raises [Must_perform] the root stays open in the ambient context
   and the effect-handler arm continues the same episode (the arm is
   always entered with the root already open — [Ops] tries the fast path
   first).  [Monitor.deref] runs before [close_root] so exemplars can
   read the trace id of the episode they record. *)

let immediate_load t (site : Site.t) g field =
  let mon = Monitor.is_on () in
  let sp = Span.is_on () in
  if not (mon || sp) then immediate_load_u t site g field
  else begin
    let ep0 = now t in
    if sp && not (Span.root_open ()) then
      Span.open_root ~kind:Span.Deref ~proc:t.cur_proc ~t0:ep0;
    let v = immediate_load_u t site g field in
    let mech = completed_mech t site in
    if mon then
      Monitor.deref ~sid:site.Site.sid ~mech ~cycles:(now t - ep0);
    if sp then
      Span.close_root ~t1:(now t) ~a:site.Site.sid ~b:(mech_code mech);
    v
  end

let immediate_store t (site : Site.t) g field v =
  let mon = Monitor.is_on () in
  let sp = Span.is_on () in
  if not (mon || sp) then immediate_store_u t site g field v
  else begin
    let ep0 = now t in
    if sp && not (Span.root_open ()) then
      Span.open_root ~kind:Span.Deref ~proc:t.cur_proc ~t0:ep0;
    immediate_store_u t site g field v;
    let mech = completed_mech t site in
    if mon then
      Monitor.deref ~sid:site.Site.sid ~mech ~cycles:(now t - ep0);
    if sp then
      Span.close_root ~t1:(now t) ~a:site.Site.sid ~b:(mech_code mech)
  end

let immediate_touch t (cell : fut) =
  match cell.state with
  | Done v ->
      let c = costs t in
      let s = stats t in
      s.Stats.touches <- s.Stats.touches + 1;
      advance t c.C.future_touch;
      if Trace.is_on () then
        emit t (Trace.Future_touch { fid = cell.fid; parked = false });
      acquire_result t ~proc:t.cur_proc ~toucher:t.cur_thread cell;
      v
  | Pending _ -> raise_notrace Must_perform

(* --- Fast-path entry points ----------------------------------------- *)

(* The engine currently driving fibers; set for the duration of [exec].
   [Ops] reads it to run non-suspending operations as plain calls,
   performing the effect only when [Must_perform] says the fiber must be
   captured (or when no engine is running, where the effect surfaces the
   usual [Effect.Unhandled]).  Domain-local so engines on different
   domains of the parallel sweep driver never see each other. *)
let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = Domain.DLS.get current_key

let engine () =
  match !(current ()) with Some t -> t | None -> raise_notrace Must_perform

let fast_work n = immediate_work (engine ()) n
(* SELF is the thread's virtual seat, not the physical processor: after a
   failover collapses a hop onto a promoted successor the program must
   still see itself "at" the original owner, so seat-relative allocation
   and [Ops.call]'s return stub behave exactly as on the healthy
   machine.  Identity while no processor has died. *)
let fast_self () = (engine ()).cur_thread.seat
let fast_nprocs () = (engine ()).cfg.C.nprocs
let fast_alloc ~proc words = immediate_alloc (engine ()) ~proc words
let fast_load site g field = immediate_load (engine ()) site g field
let fast_store site g field v = immediate_store (engine ()) site g field v
let fast_touch cell = immediate_touch (engine ()) cell

(* Decide the fate of a migration's thread-state transfer before the fiber
   is captured.  [Some penalty]: the state will arrive, [penalty] cycles
   late.  [None]: the home kept dropping the transfer and the sender gave
   up after its attempt budget ([retry.max_migration_attempts]); the
   thread pays the retry timers on its own clock and degrades to the
   caching mechanism instead of wedging on an unreachable home. *)
let try_migrate t ~(site : Site.t) ~home =
  let s = stats t in
  let retries_before = s.Stats.retries in
  let outcome =
    Machine.thread_delivery t.machine ~dst:home ~klass:Fault_plan.Migration
      ~send_time:(now t)
      ~give_up_after:(Some t.cfg.C.retry.C.max_migration_attempts)
  in
  site.Site.retries <- site.Site.retries + s.Stats.retries - retries_before;
  match outcome with
  | Machine.Delivered { penalty } -> Some penalty
  | Machine.Gave_up { penalty; attempts } ->
      s.Stats.migration_fallbacks <- s.Stats.migration_fallbacks + 1;
      site.Site.fallbacks <- site.Site.fallbacks + 1;
      Machine.stall t.machine t.cur_proc penalty;
      if Trace.is_on () then
        emit t ~site:site.Site.sid (Trace.Migrate_fallback { home; attempts });
      if Span.is_on () then begin
        Span.child ~kind:Span.Stall ~proc:t.cur_proc ~t0:(now t - penalty)
          ~t1:(now t) ~a:penalty ~b:attempts;
        Span.child ~kind:Span.Fallback ~proc:t.cur_proc ~t0:(now t)
          ~t1:(now t) ~a:home ~b:attempts
      end;
      None

let rec handler t : (unit, unit) Effect.Deep.handler =
  let effc : type a. a Effect.t -> ((a, unit) Effect.Deep.continuation -> unit) option =
    function
    | Work n ->
        Some
          (fun k ->
            immediate_work t n;
            Effect.Deep.continue k ())
    | Self -> Some (fun k -> Effect.Deep.continue k t.cur_thread.seat)
    | Nprocs -> Some (fun k -> Effect.Deep.continue k t.cfg.C.nprocs)
    | Alloc (proc, words) ->
        Some
          (fun k -> Effect.Deep.continue k (immediate_alloc t ~proc words))
    | Load (site, g, field) ->
        Some
          (fun k ->
            let ep0 = if Monitor.is_on () || Span.is_on () then now t else 0 in
            match immediate_load t site g field with
            | v -> Effect.Deep.continue k v
            | exception Must_perform -> (
                (* the reference must migrate: only here is the fiber
                   captured *)
                let c = costs t in
                let home = Gptr.proc g in
                if Span.is_on () && not (Span.root_open ()) then
                  Span.open_root ~kind:Span.Deref ~proc:t.cur_proc ~t0:ep0;
                advance t c.C.pointer_test;
                match try_migrate t ~site ~home with
                | Some penalty ->
                    site.Site.loads <- site.Site.loads + 1;
                    site.Site.remote <- site.Site.remote + 1;
                    site.Site.migrations <- site.Site.migrations + 1;
                    migrate_to t ~site:site.Site.sid
                      ~target:(Machine.home_of t.machine home) ~vseat:home
                      ~penalty ~ep0 ~k
                      ~complete:(fun () ->
                        (* re-resolve: the home may have failed over
                           while the state was in flight *)
                        Machine.advance t.machine
                          (Machine.home_of t.machine home) c.C.local_ref;
                        Memory.load t.memory g field)
                | None ->
                    let sp = Span.is_on () in
                    let prev = if sp then Span.parent () else -1 in
                    let cid = if sp then Span.enter () else -1 in
                    let cs0 = now t in
                    let v = cached_load t site g field in
                    if sp then
                      Span.exit_emit ~id:cid ~prev ~kind:Span.Cache_service
                        ~proc:t.cur_proc ~t0:cs0 ~t1:(now t) ~a:home ~b:0;
                    if Monitor.is_on () then
                      Monitor.deref ~sid:site.Site.sid
                        ~mech:Monitor.Fallback ~cycles:(now t - ep0);
                    if sp then
                      Span.close_root ~t1:(now t) ~a:site.Site.sid
                        ~b:3 (* mech code: fallback *);
                    Effect.Deep.continue k v))
    | Store (site, g, field, v) ->
        Some
          (fun k ->
            let ep0 = if Monitor.is_on () || Span.is_on () then now t else 0 in
            match immediate_store t site g field v with
            | () -> Effect.Deep.continue k ()
            | exception Must_perform -> (
                let c = costs t in
                let home = Gptr.proc g in
                if Span.is_on () && not (Span.root_open ()) then
                  Span.open_root ~kind:Span.Deref ~proc:t.cur_proc ~t0:ep0;
                advance t c.C.pointer_test;
                match try_migrate t ~site ~home with
                | Some penalty ->
                    site.Site.stores <- site.Site.stores + 1;
                    site.Site.remote <- site.Site.remote + 1;
                    site.Site.migrations <- site.Site.migrations + 1;
                    migrate_to t ~site:site.Site.sid
                      ~target:(Machine.home_of t.machine home) ~vseat:home
                      ~penalty ~ep0 ~k
                      ~complete:(fun () ->
                        let h = Machine.home_of t.machine home in
                        Machine.advance t.machine h c.C.local_ref;
                        Memory.store t.memory g field v;
                        Cache.note_migrate_write t.cache ~proc:h g ~field v
                          ~log:t.cur_thread.log)
                | None ->
                    let sp = Span.is_on () in
                    let prev = if sp then Span.parent () else -1 in
                    let cid = if sp then Span.enter () else -1 in
                    let cs0 = now t in
                    cached_store t site g field v;
                    if sp then
                      Span.exit_emit ~id:cid ~prev ~kind:Span.Cache_service
                        ~proc:t.cur_proc ~t0:cs0 ~t1:(now t) ~a:home ~b:0;
                    if Monitor.is_on () then
                      Monitor.deref ~sid:site.Site.sid
                        ~mech:Monitor.Fallback ~cycles:(now t - ep0);
                    if sp then
                      Span.close_root ~t1:(now t) ~a:site.Site.sid
                        ~b:3 (* mech code: fallback *);
                    Effect.Deep.continue k ()))
    | Future body ->
        Some
          (fun k ->
            let c = costs t in
            let s = stats t in
            s.Stats.futures <- s.Stats.futures + 1;
            advance t c.C.future_spawn;
            t.next_fid <- t.next_fid + 1;
            let cell =
              {
                fid = t.next_fid;
                state = Pending [];
                resolver_proc = -1;
                resolver_seat = -1;
                resolver_log = None;
              }
            in
            if t.cfg.C.trace then
              trace t (fun () ->
                  Printf.sprintf "future fut#%d spawned" cell.fid);
            if Trace.is_on () then
              emit t (Trace.Future_spawn { fid = cell.fid });
            (* Save the return continuation on this processor's work list.
               If it is stolen it becomes a new thread (with a fresh write
               log); if the body completes without migrating, the processor
               pops it right back — Olden's cheap no-migration path. *)
            let parent_thread = new_thread t in
            push_work t ~proc:t.cur_proc
              {
                thread = parent_thread;
                go = (fun () -> Effect.Deep.continue k cell);
              };
            (* The body is evaluated directly by the current thread, as
               Olden's futurecall does; only a migration during it hands
               control back to the scheduler. *)
            Effect.Deep.match_with
              (fun () ->
                let v = body () in
                resolve t cell v)
              () (handler t))
    | Touch (psite, cell) ->
        Some
          (fun k ->
            match immediate_touch t cell with
            | v -> Effect.Deep.continue k v
            | exception Must_perform -> (
                match cell.state with
                | Done _ -> assert false
                | Pending waiters ->
                    let c = costs t in
                    let s = stats t in
                    s.Stats.touches <- s.Stats.touches + 1;
                    advance t c.C.future_touch;
                    if t.cfg.C.trace then
                      trace t (fun () ->
                          Printf.sprintf "touch fut#%d: park" cell.fid);
                    if Trace.is_on () then
                      emit t
                        (Trace.Future_touch { fid = cell.fid; parked = true });
                    let label =
                      match psite with
                      | Some site -> Site.name site
                      | None -> Printf.sprintf "fut#%d" cell.fid
                    in
                    t.blocked <- t.blocked + 1;
                    t.parked <- (t.cur_proc, label) :: t.parked;
                    cell.state <-
                      Pending
                        ({ wk = k; wproc = t.cur_proc; wthread = t.cur_thread;
                           wlabel = label }
                        :: waiters)))
    | Return_to target ->
        Some
          (fun k ->
            (* the origin may have fail-stopped while the thread was
               away; its promoted successor adopts the continuation *)
            let origin = target in
            let target = Machine.home_of t.machine origin in
            if target = t.cur_proc then begin
              (if t.cur_thread.seat <> origin then begin
                 (* the return collapsed onto this processor through a
                    failover: still a release at the (virtual) source
                    and the origin's return-side acquire *)
                 Cache.on_migration_sent t.cache ~proc:t.cur_proc
                   ~log:t.cur_thread.log;
                 Cache.on_return_received t.cache ~proc:t.cur_proc
                   ~log:t.cur_thread.log;
                 t.cur_thread.seat <- origin
               end);
              Effect.Deep.continue k ()
            end
            else begin
              let c = costs t in
              let s = stats t in
              let sp = Span.is_on () in
              let ep0 = if Monitor.is_on () || sp then now t else 0 in
              s.Stats.returns <- s.Stats.returns + 1;
              let thread = t.cur_thread in
              let source = t.cur_proc in
              (* a return stub is its own episode: a fresh root whose
                 children are its send/wire/penalty/queue/replay/recv
                 hops and any fault events along the way *)
              if sp && not (Span.root_open ()) then
                Span.open_root ~kind:Span.Return ~proc:source ~t0:ep0;
              (* a return is also a release point *)
              Cache.on_migration_sent t.cache ~proc:t.cur_proc
                ~log:thread.log;
              advance t c.C.return_send;
              if Trace.is_on () then emit t (Trace.Return_send { target });
              Machine.count_bytes t.machine 64 (* registers + return addr *);
              (* a return stub must reach its origin: retry without an
                 attempt bound (only [max_attempts] backstops it) *)
              let penalty =
                match
                  Machine.thread_delivery t.machine ~dst:target
                    ~klass:Fault_plan.Return ~send_time:(now t)
                    ~give_up_after:None
                with
                | Machine.Delivered { penalty } -> penalty
                | Machine.Gave_up _ -> assert false
              in
              let send_done = now t in
              let ready_at = send_done + c.C.net_latency + penalty in
              let sctx =
                if sp then begin
                  Span.child ~kind:Span.Send ~proc:source ~t0:ep0
                    ~t1:send_done ~a:target ~b:0;
                  Span.child ~kind:Span.Wire ~proc:source ~t0:send_done
                    ~t1:(send_done + c.C.net_latency) ~a:0 ~b:0;
                  if penalty > 0 then
                    Span.child ~kind:Span.Penalty ~proc:target
                      ~t0:(send_done + c.C.net_latency) ~t1:ready_at
                      ~a:penalty ~b:0;
                  Span.save ()
                end
                else Span.no_ctx
              in
              schedule_event t ~proc:target ~ready_at
                {
                  thread;
                  go =
                    (fun () ->
                      (* not the captured target: if it fail-stopped
                         while the stub was in flight the event was
                         re-homed and runs on the successor's clock *)
                      let target = t.cur_proc in
                      let span_on = Span.is_on () in
                      let t_arr = Machine.now t.machine target in
                      if span_on then begin
                        Span.restore sctx;
                        if t_arr > ready_at then
                          Span.child ~kind:Span.Queue ~proc:target
                            ~t0:ready_at ~t1:t_arr ~a:0 ~b:0
                      end;
                      check_crash t ~proc:target ~thread;
                      let t_rc = Machine.now t.machine target in
                      if span_on && t_rc > t_arr then
                        Span.child ~kind:Span.Replay ~proc:target ~t0:t_arr
                          ~t1:t_rc ~a:0 ~b:0;
                      Machine.advance t.machine target c.C.return_recv;
                      if Trace.is_on () then
                        Trace.emit
                          { Trace.time = Machine.now t.machine target;
                            proc = target; tid = thread.tid; site = -1;
                            kind = Trace.Return_arrive { source } };
                      Cache.on_return_received t.cache ~proc:target
                        ~log:thread.log;
                      (* back at the (virtual) origin, wherever the home
                         map routed the stub *)
                      thread.seat <- origin;
                      if span_on then
                        Span.child ~kind:Span.Recv ~proc:target ~t0:t_rc
                          ~t1:(Machine.now t.machine target) ~a:0 ~b:0;
                      if Monitor.is_on () then
                        Monitor.return_stub
                          ~cycles:(Machine.now t.machine target - ep0);
                      if span_on then
                        Span.close_root
                          ~t1:(Machine.now t.machine target)
                          ~a:target ~b:0;
                      Effect.Deep.continue k ());
                }
            end)
    | Phase name ->
        Some
          (fun k ->
            (* measurement boundary: all processors synchronize *)
            let m = Machine.makespan t.machine in
            for p = 0 to t.cfg.C.nprocs - 1 do
              Machine.wait_until t.machine p m
            done;
            (* the one place a task moves clocks outside its own shard:
               every cached shard candidate may now be stale *)
            Array.iter (fun s -> s.s_dirty <- true) t.shards;
            t.phases <-
              { pname = name; at = m; snapshot = Stats.copy (stats t) }
              :: t.phases;
            if Trace.is_on () then
              Trace.emit
                { Trace.time = m; proc = t.cur_proc;
                  tid = t.cur_thread.tid; site = -1;
                  kind = Trace.Phase_mark name };
            Effect.Deep.continue k ())
    | _ -> None
  in
  { retc = Fun.id; exnc = raise; effc }

(* --- The scheduler loop -------------------------------------------- *)

(* Pick the next item to run: globally minimal start time.  At equal start
   times a processor steals from its own work list before accepting an
   arrived migration: futurecall continuations unfold depth-first and keep
   generating parallelism, so draining them first is what keeps spawn
   chains from being starved by arriving bodies (the continuation was
   saved by a thread that already owned the processor).  Remaining ties
   fall back to readiness time, then creation order, for determinism.

   The scan is sharded: each shard caches its own best candidate, and a
   step rescans only shards marked dirty (the executing shard, shards
   that received a direct push, every shard after a phase barrier), then
   compares the [host_domains] cached keys.  [rescan] is the original
   allocation-free scan body limited to one shard's processors. *)
let rescan t (s : shard) =
  s.c_start <- max_int;
  s.c_prio <- max_int;
  s.c_avail <- max_int;
  s.c_seq <- max_int;
  s.c_proc <- -1;
  for p = s.s_lo to s.s_hi - 1 do
    let clock = Machine.now t.machine p in
    let q = t.events.(p) in
    if not (Event_queue.is_empty q) then begin
      let it = Event_queue.top q in
      let avail = it.Event_queue.ready_at in
      let start = if clock > avail then clock else avail in
      let seq = it.Event_queue.seq in
      if
        start < s.c_start
        || (start = s.c_start
           && (1 < s.c_prio
              || (1 = s.c_prio
                 && (avail < s.c_avail
                    || (avail = s.c_avail && seq < s.c_seq)))))
      then begin
        s.c_start <- start;
        s.c_prio <- 1;
        s.c_avail <- avail;
        s.c_seq <- seq;
        s.c_proc <- p;
        s.c_src <- Src_event
      end
    end;
    let wl = t.worklists.(p) in
    if not (Stack.is_empty wl) then begin
      let w = Stack.top wl in
      let avail = w.pushed_at in
      let start = if clock > avail then clock else avail in
      if
        start < s.c_start
        || (start = s.c_start
           && (0 < s.c_prio
              || (0 = s.c_prio
                 && (avail < s.c_avail
                    || (avail = s.c_avail && w.wseq < s.c_seq)))))
      then begin
        s.c_start <- start;
        s.c_prio <- 0;
        s.c_avail <- avail;
        s.c_seq <- w.wseq;
        s.c_proc <- p;
        s.c_src <- Src_work
      end
    end
  done;
  s.s_dirty <- false

(* Candidate keys are unique (seq is globally unique), so this order is
   total and independent of the shard partition. *)
let shard_before (a : shard) (b : shard) =
  a.c_start < b.c_start
  || (a.c_start = b.c_start
     && (a.c_prio < b.c_prio
        || (a.c_prio = b.c_prio
           && (a.c_avail < b.c_avail
              || (a.c_avail = b.c_avail && a.c_seq < b.c_seq)))))

(* Epoch barrier: merge every (src,dst) mailbox into the destination
   queues, in (ready_at, seq) order per destination shard. *)
let flush_mailboxes t =
  let nshards = Array.length t.shards in
  for d = 0 to nshards - 1 do
    let pending = ref [] in
    for s = 0 to nshards - 1 do
      let mb = t.mailboxes.(s).(d) in
      if !mb <> [] then begin
        pending := List.rev_append !mb !pending;
        mb := []
      end
    done;
    match !pending with
    | [] -> ()
    | mails ->
        List.sort
          (fun a b ->
            if a.m_ready <> b.m_ready then compare a.m_ready b.m_ready
            else compare a.m_seq b.m_seq)
          mails
        |> List.iter (fun m ->
               Event_queue.push t.events.(m.m_proc) ~ready_at:m.m_ready
                 ~seq:m.m_seq m.m_task;
               (* per mail, not per mailbox: a failover may have
                  rewritten [m_proc] to a successor in another shard *)
               t.shards.(t.shard_of.(m.m_proc)).s_dirty <- true)
  done;
  t.mailbox_min <- max_int;
  t.epochs <- t.epochs + 1

(* A fail-stop observed at the scheduler: run the failover protocol
   (promote the backup, rewrite the home map, handle dependents), then
   deal with the victim's resident work.  With [replica_spec.threads]
   the victim's event queue, work list, deferred mail, and parked
   waiters all move to the promoted successor — events keep their
   (ready_at, seq) keys, so the global execution order stays total and
   shard-count independent.  Without it the tasks are unrecoverable and
   the run aborts with a deterministic report ([Threads_lost]). *)
let fail_stop t fo ~victim =
  let successor = Failover.fail_over fo ~victim in
  let replicate_threads =
    match t.cfg.C.replication with Some r -> r.C.threads | None -> false
  in
  let q = t.events.(victim) in
  let wl = t.worklists.(victim) in
  let mail_count = ref 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun mb ->
          List.iter (fun m -> if m.m_proc = victim then incr mail_count) !mb)
        row)
    t.mailboxes;
  let parked_count =
    List.fold_left
      (fun n (p, _) -> if p = victim then n + 1 else n)
      0 t.parked
  in
  if replicate_threads then begin
    (* resident events: re-home, keys unchanged *)
    while not (Event_queue.is_empty q) do
      let it = Event_queue.take q in
      Event_queue.push t.events.(successor)
        ~ready_at:it.Event_queue.ready_at ~seq:it.Event_queue.seq
        it.Event_queue.payload
    done;
    (* resident continuations: pop all, re-push bottom-first so the
       victim's LIFO order survives on top of the successor's stack *)
    let stack = ref [] in
    while not (Stack.is_empty wl) do
      stack := Stack.pop wl :: !stack
    done;
    List.iter (fun w -> Stack.push w t.worklists.(successor)) !stack;
    (* deferred cross-shard mail addressed to the victim *)
    if !mail_count > 0 then
      Array.iter
        (fun row ->
          Array.iter
            (fun mb ->
              mb :=
                List.map
                  (fun m ->
                    if m.m_proc = victim then { m with m_proc = successor }
                    else m)
                  !mb)
            row)
        t.mailboxes;
    (* parked-waiter bookkeeping follows the continuations *)
    if parked_count > 0 then
      t.parked <-
        List.map
          (fun (p, label) ->
            if p = victim then (successor, label) else (p, label))
          t.parked
  end
  else begin
    let lost =
      Event_queue.length q + Stack.length wl + !mail_count + parked_count
    in
    if lost > 0 then begin
      let s = stats t in
      s.Stats.threads_lost <- s.Stats.threads_lost + lost;
      Failover.note_threads_lost fo ~proc:victim ~count:lost;
      raise
        (Threads_lost
           (Printf.sprintf
              "p%d fail-stopped with %d unreplicated resident task(s) \
               (events=%d worklist=%d mail=%d parked=%d); rerun with \
               replica threads enabled or treat the computation as lost"
              victim lost (Event_queue.length q) (Stack.length wl)
              !mail_count parked_count))
    end
  end;
  (* the protocol moved several clocks (successor, announcement
     targets) and two queues changed shape: every cached shard
     candidate may be stale *)
  Array.iter (fun s -> s.s_dirty <- true) t.shards

let step t =
  (* Refresh dirty shards and pick the globally minimal candidate,
     flushing the mailboxes whenever the frontier has reached the
     earliest deferred arrival (the epoch barrier; the lookahead
     invariant keeps such flushes at least [Olden_config.lookahead]
     cycles of virtual time apart). *)
  let nshards = Array.length t.shards in
  let rec pick () =
    let best = ref (-1) in
    for i = 0 to nshards - 1 do
      let s = t.shards.(i) in
      if s.s_dirty then rescan t s;
      if s.c_proc >= 0 && (!best < 0 || shard_before s t.shards.(!best)) then
        best := i
    done;
    if
      t.mailbox_min < max_int
      && (!best < 0 || t.shards.(!best).c_start >= t.mailbox_min)
    then begin
      flush_mailboxes t;
      pick ()
    end
    else !best
  in
  let bi = pick () in
  if bi < 0 then false
  else begin
    let sh = t.shards.(bi) in
    let proc = sh.c_proc in
    let best_start = sh.c_start in
    match t.failover with
    | Some fo when Failover.pending fo ~proc ~time:best_start ->
        (* the pick observed a fail-stop: the victim dies *before*
           running its task; the task either moves to the promoted
           successor (replicated threads) or aborts the run.  The next
           [step] re-picks against the rewritten queues. *)
        fail_stop t fo ~victim:proc;
        true
    | _ ->
    (* [best_start] is the global virtual time: it never decreases across
       steps, so it drives the monitor's interval windows *)
    if Monitor.is_on () then Monitor.tick best_start;
    Machine.wait_until t.machine proc best_start;
    let task =
      match sh.c_src with
      | Src_event -> (Event_queue.take t.events.(proc)).Event_queue.payload
      | Src_work ->
          let w = Stack.pop t.worklists.(proc) in
          if t.cfg.C.trace then
            Printf.eprintf "[t=%8d p=%2d] steal (tid=%d)\n%!"
              (Machine.now t.machine proc) proc w.wtask.thread.tid;
          let s = stats t in
          s.Stats.steals <- s.Stats.steals + 1;
          Machine.advance t.machine proc (costs t).C.steal;
          if Trace.is_on () then
            Trace.emit
              { Trace.time = Machine.now t.machine proc; proc;
                tid = w.wtask.thread.tid; site = -1; kind = Trace.Steal };
          w.wtask
    in
    t.cur_proc <- proc;
    t.cur_thread <- task.thread;
    t.exec_shard <- bi;
    if Trace.is_on () then Trace.set_thread task.thread.tid;
    (* a task must not inherit the ambient span context of whatever ran
       last: cross-task context travels only inside scheduled closures
       (via [Span.save]/[restore]), which re-install it themselves *)
    if Span.is_on () then Span.clear ();
    task.go ();
    t.exec_shard <- -1;
    (* the executed task popped this shard's queue, moved this shard's
       clock, and may have pushed same-shard events *)
    sh.s_dirty <- true;
    true
  end

(* One line per processor for flight-recorder dumps: where each clock
   stands, what work is still queued, and the last span emitted there. *)
let flight_state t =
  let busy = Machine.busy_cycles t.machine in
  let comm = Machine.comm_cycles t.machine in
  List.init t.cfg.C.nprocs (fun p ->
      Printf.sprintf
        "p%d clock=%d busy=%d comm=%d events=%d worklist=%d last_span=%d" p
        (Machine.now t.machine p)
        busy.(p) comm.(p)
        (Event_queue.length t.events.(p))
        (Stack.length t.worklists.(p))
        (Span.last_span_on p))

(* The drained-but-blocked diagnostic: which sites the stuck threads
   parked at, and how many pending continuations each processor holds —
   enough to see where the missing resolution was supposed to come
   from. *)
let deadlock_message t =
  let parked = List.rev t.parked (* park order *) in
  let labels =
    (* dedup preserving first-park order, with multiplicities *)
    List.fold_left
      (fun acc (_, label) ->
        if List.mem_assoc label acc then
          List.map
            (fun (l, c) -> if String.equal l label then (l, c + 1) else (l, c))
            acc
        else acc @ [ (label, 1) ])
      [] parked
  in
  let per_proc = Array.make t.cfg.C.nprocs 0 in
  List.iter (fun (p, _) -> per_proc.(p) <- per_proc.(p) + 1) parked;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%d thread(s) parked on unresolved futures" t.blocked);
  if labels <> [] then begin
    Buffer.add_string buf "; parked at: ";
    Buffer.add_string buf
      (String.concat ", "
         (List.map
            (fun (l, c) -> if c = 1 then l else Printf.sprintf "%s (x%d)" l c)
            labels))
  end;
  let pending =
    List.filter
      (fun (_, c) -> c > 0)
      (List.init t.cfg.C.nprocs (fun p -> (p, per_proc.(p))))
  in
  if pending <> [] then begin
    Buffer.add_string buf "; pending continuations: ";
    Buffer.add_string buf
      (String.concat " "
         (List.map (fun (p, c) -> Printf.sprintf "p%d=%d" p c) pending))
  end;
  (* span tracing localizes the wedge further: the last span each parked
     processor emitted, and a flight-recorder dump when one is running *)
  let parked_procs =
    List.sort_uniq compare (List.map (fun (p, _) -> p) parked)
  in
  if Span.is_on () && parked_procs <> [] then begin
    Buffer.add_string buf "; last span per parked proc: ";
    Buffer.add_string buf
      (String.concat " "
         (List.map
            (fun p -> Printf.sprintf "p%d=#%d" p (Span.last_span_on p))
            parked_procs))
  end;
  (match Span.flight_dump ~reason:"deadlock" ~state:(flight_state t) with
  | Some path -> Buffer.add_string buf ("; flight recorder: " ^ path)
  | None -> ());
  Buffer.contents buf

(* Run [program] to completion as the initial thread on processor 0. *)
let exec t program =
  (* clear the ambient emitter context so events fired before the first
     dereference don't inherit a stale thread/site from a previous run;
     span ids and per-proc sequences restart so same-seed runs export
     byte-identical spans *)
  Trace.set_thread (-1);
  Trace.set_site (-1);
  Span.reset ();
  let main_thread = new_thread t in
  schedule_event t ~proc:0 ~ready_at:0
    {
      thread = main_thread;
      go =
        (fun () ->
          Effect.Deep.match_with
            (fun () ->
              program ();
              t.finished <- true)
            () (handler t));
    };
  let cur = current () in
  let saved = !cur in
  cur := Some t;
  Fun.protect
    ~finally:(fun () -> cur := saved)
    (fun () ->
      while step t do
        ()
      done);
  if t.blocked > 0 then raise (Deadlock (deadlock_message t));
  if not t.finished then raise (Deadlock "main thread never completed")

(* Open-loop injection: admit a fresh thread into the event queue at an
   absolute simulated time, independent of the main program's control
   flow.  This is how the serving driver turns the engine into an open
   system — each injected request starts at its ingress processor as a
   brand-new thread and runs under the full migrate-vs-cache machinery,
   exactly like work the program spawned itself.

   Called from inside the running program (the serving driver injects
   the whole arrival schedule from its main thread), so cross-shard
   pushes are subject to the lookahead contract: [ready_at] must be at
   least [Olden_config.lookahead] cycles past the injecting processor's
   clock.  [on_complete] runs inside the request's fiber on the
   processor that finished it, with that processor's clock — the serving
   driver measures admission→completion latency from it. *)
let inject t ~proc ~ready_at ?on_complete fn =
  (* an ingress processor that has fail-stopped redirects to its
     promoted successor, like every other send (identity on a healthy
     machine) *)
  let proc =
    if Machine.is_dead t.machine proc then Machine.home_of t.machine proc
    else proc
  in
  let thread = new_thread t in
  (* the request resides at its ingress processor, not wherever the
     injecting thread happens to sit *)
  thread.seat <- proc;
  Machine.note_ingress t.machine proc;
  schedule_event t ~proc ~ready_at
    {
      thread;
      go =
        (fun () ->
          Effect.Deep.match_with
            (fun () ->
              fn ();
              Machine.note_request_done t.machine;
              match on_complete with
              | Some f -> f ~proc:t.cur_proc ~finish:(now t)
              | None -> ())
            () (handler t));
    }

(* Host-side sharding counters: how often the conservative-DES machinery
   actually engaged.  All zero when [host_domains = 1] (one shard never
   defers). *)
type domain_report = {
  shards : int;
  epochs : int; (* epoch barriers taken (mailbox flushes) *)
  deferred_events : int; (* cross-shard events routed through mailboxes *)
}

let domain_report (t : t) =
  { shards = Array.length t.shards; epochs = t.epochs;
    deferred_events = t.deferred }

type report = {
  makespan : int;
  stats : Stats.t;
  utilization : float;
  avg_chain_length : float;
  phases : (string * int) list; (* in program order *)
}

let report (t : t) =
  {
    makespan = Machine.makespan t.machine;
    stats = Machine.stats t.machine;
    utilization = Machine.utilization t.machine;
    avg_chain_length = Cache.average_chain_length t.cache;
    phases = List.rev_map (fun p -> (p.pname, p.at)) t.phases;
  }

let phase_snapshots (t : t) =
  List.rev_map (fun p -> (p.pname, p.at, p.snapshot)) t.phases

let run cfg program =
  let t = create cfg in
  exec t program;
  report t

(* Duration and statistics of the region between phase marks [start] and
   [stop] (or the end of the run). *)
let interval t ~start ~stop =
  let marks = phase_snapshots t in
  let find name =
    List.find_opt (fun (n, _, _) -> String.equal n name) marks
  in
  match find start with
  | None -> invalid_arg ("Engine.interval: no phase " ^ start)
  | Some (_, t0, s0) ->
      let t1, s1 =
        match Option.bind stop find with
        | Some (_, t1, s1) -> (t1, s1)
        | None -> (Machine.makespan t.machine, Machine.stats t.machine)
      in
      (t1 - t0, Stats.diff s1 s0)
