(* A dereference site: one textual pointer dereference in the source
   program.  The compiler (here, the heuristic in [Olden_compiler], or the
   paper's published choice) assigns each site the mechanism used for
   remote references through it.  Sites are registered so a driver can list
   or override them. *)

type t = {
  sid : int;
  sname : string; (* e.g. "treeadd.t->left" *)
  mutable mech : Olden_config.mechanism;
  (* per-site profile, filled by the engine *)
  mutable loads : int;
  mutable stores : int;
  mutable remote : int; (* remote references through this site *)
  mutable migrations : int; (* migrations this site caused *)
  mutable misses : int; (* cache-line fetches this site caused *)
  mutable retries : int; (* retransmissions its messages needed (faults) *)
  mutable fallbacks : int; (* migrations that gave up and cached instead *)
}

(* The registry is domain-local: benchmark jobs running on different
   domains of the parallel sweep driver register sites independently, so
   each job that calls [reset] first sees a deterministic sid sequence
   regardless of what runs concurrently elsewhere. *)
type registry = { tbl : (int, t) Hashtbl.t; mutable counter : int }

let registry_key =
  Domain.DLS.new_key (fun () -> { tbl = Hashtbl.create 64; counter = 0 })

let registry () = Domain.DLS.get registry_key

let make ?(mech = Olden_config.Migrate) sname =
  let r = registry () in
  r.counter <- r.counter + 1;
  let s =
    { sid = r.counter; sname; mech; loads = 0; stores = 0; remote = 0;
      migrations = 0; misses = 0; retries = 0; fallbacks = 0 }
  in
  Hashtbl.replace r.tbl s.sid s;
  s

(* Forget every site and restart the id counter.  Sites are domain
   globals, so a run that wants the same sids as a fresh domain (e.g. the
   golden trace test, or any job meant to be byte-comparable across
   domain pools) must reset first. *)
let reset () =
  let r = registry () in
  Hashtbl.reset r.tbl;
  r.counter <- 0

let reset_profiles () =
  Hashtbl.iter
    (fun _ s ->
      s.loads <- 0;
      s.stores <- 0;
      s.remote <- 0;
      s.migrations <- 0;
      s.misses <- 0;
      s.retries <- 0;
      s.fallbacks <- 0)
    (registry ()).tbl

(* Sites with traffic, busiest first. *)
let profile () =
  Hashtbl.fold (fun _ s acc -> if s.loads + s.stores > 0 then s :: acc else acc)
    (registry ()).tbl []
  |> List.sort (fun a b -> compare (b.loads + b.stores) (a.loads + a.stores))

let migrate sname = make ~mech:Olden_config.Migrate sname
let cache sname = make ~mech:Olden_config.Cache sname

let set_mechanism s mech = s.mech <- mech
let mechanism s = s.mech
let name s = s.sname

let all () =
  Hashtbl.fold (fun _ s acc -> s :: acc) (registry ()).tbl []
  |> List.sort (fun a b -> compare a.sid b.sid)

(* Human-oriented label: registered names follow the "func.var->field"
   convention, which reads better reversed as "var->field@func" in ranked
   profiler tables (the dereference first, its function second).  Names
   outside the convention pass through unchanged. *)
let label s =
  match String.index_opt s.sname '.' with
  | Some i when i > 0 && i < String.length s.sname - 1 ->
      let func = String.sub s.sname 0 i in
      let deref =
        String.sub s.sname (i + 1) (String.length s.sname - i - 1)
      in
      deref ^ "@" ^ func
  | Some _ | None -> s.sname

let labels () = List.map (fun s -> (s.sid, label s)) (all ())

let pp ppf s =
  Format.fprintf ppf "%s:%s" s.sname
    (Olden_config.mechanism_to_string s.mech)

(* Communication cycles this site has cost (migrations plus line
   fetches), under the given cost model. *)
let comm_cycles (c : Olden_config.costs) s =
  (s.migrations * Olden_config.migration_latency c)
  + (s.misses * Olden_config.miss_round_trip c)

let pp_profile ppf s =
  Format.fprintf ppf
    "%-32s %-8s loads=%-9d stores=%-9d remote=%-8d migr=%-6d misses=%-6d comm=%d"
    s.sname
    (Olden_config.mechanism_to_string s.mech)
    s.loads s.stores s.remote s.migrations s.misses
    (comm_cycles Olden_config.default_costs s)
