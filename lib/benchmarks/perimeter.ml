(* Perimeter: perimeter of a quadtree-encoded raster image (Samet),
   Table 1: 4K x 4K image; heuristic choice M+C.

   The image (a disk) is encoded as a region quadtree.  The perimeter of
   the black region is computed by visiting every black leaf and, for each
   of its four sides, finding the greater-or-equal-size adjacent neighbor
   via parent pointers (Samet's algorithm) and counting the white cells
   along the shared border.  The tree traversal visits all four children
   and migrates; the neighbor finding may wander far from the current
   subtree — parent links are given a low path-affinity hint (Perimeter is
   one of the three benchmarks with explicit affinities in the paper), so
   those dereferences are cached. *)

open Common

let ir =
  {|
struct quad {
  quad parent @ 40;
  quad child0 @ 60;
  quad child1 @ 60;
  quad child2 @ 60;
  quad child3 @ 60;
  int color;
  int quadrant;
}

int adj_neighbor(quad q, int dir) {
  quad p = q->parent;
  if (p == null) { return 0; }
  work(12);
  return adj_neighbor(p, dir);
}

int count_border(quad n, int dir, int size) {
  if (n == null) { return 0; }
  if (n->color != 2) { work(20); return size; }
  int a = count_border(n->child0, dir, size / 2);
  int b = count_border(n->child1, dir, size / 2);
  return a + b;
}

int perimeter(quad q, int size) {
  if (q == null) { return 0; }
  if (q->color == 2) {
    int a = future perimeter(q->child0, size / 2);
    int b = future perimeter(q->child1, size / 2);
    int c = future perimeter(q->child2, size / 2);
    int d = perimeter(q->child3, size / 2);
    return touch(a) + touch(b) + touch(c) + d;
  }
  work(100);
  int r = adj_neighbor(q, 0);
  return r + count_border(q, 1, size);
}
|}

(* Node record: [parent; child0..3; color; quadrant]. *)
let off_parent = 0
let off_child i = 1 + i
let off_color = 5
let off_quadrant = 6
let node_words = 7

let white = 0
let black = 1
let grey = 2

type sites = {
  s_child : Site.t; (* traversal: migrate *)
  s_color : Site.t; (* own node fields during traversal: migrate *)
  s_parent : Site.t; (* neighbor finding going up: cache *)
  s_nchild : Site.t; (* neighbor finding descending the mirror path: cache *)
  s_ncolor : Site.t; (* neighbor color checks: cache *)
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  {
    s_child =
      site_of mech ~func:"perimeter" ~var:"q" ~field:"child0" ~fallback:C.Migrate;
    s_color =
      site_of mech ~func:"perimeter" ~var:"q" ~field:"color" ~fallback:C.Migrate;
    s_parent =
      site_of mech ~func:"adj_neighbor" ~var:"q" ~field:"parent" ~fallback:C.Cache;
    s_nchild =
      site_of mech ~func:"count_border" ~var:"n" ~field:"child0" ~fallback:C.Cache;
    s_ncolor =
      site_of mech ~func:"count_border" ~var:"n" ~field:"color" ~fallback:C.Cache;
  }

(* Quadrants: 0 = NW, 1 = NE, 2 = SW, 3 = SE; directions 0 = N, 1 = E,
   2 = S, 3 = W. *)
let adjacent ~dir ~quadrant =
  match dir with
  | 0 -> quadrant = 0 || quadrant = 1 (* north side *)
  | 1 -> quadrant = 1 || quadrant = 3 (* east side *)
  | 2 -> quadrant = 2 || quadrant = 3 (* south side *)
  | _ -> quadrant = 0 || quadrant = 2 (* west side *)

(* Mirror a quadrant across the axis of [dir]. *)
let reflect ~dir ~quadrant =
  match dir with
  | 0 | 2 -> quadrant lxor 2 (* N/S: flip vertical *)
  | _ -> quadrant lxor 1 (* E/W: flip horizontal *)

let opposite dir = (dir + 2) mod 4

(* The two child quadrants along side [dir]. *)
let side_children dir =
  match dir with
  | 0 -> (0, 1)
  | 1 -> (1, 3)
  | 2 -> (2, 3)
  | _ -> (0, 2)

(* --- The images (the paper speaks of a *set* of raster images) --------- *)

type region = Inside | Outside | Mixed

type image_kind =
  | Disk  (** one centred disc *)
  | Ring  (** an annulus: inner and outer boundary *)
  | Blobs  (** four overlapping discs *)

let image_kind_to_string = function
  | Disk -> "disk"
  | Ring -> "ring"
  | Blobs -> "blobs"

(* Square-vs-disc classification: [dmin]/[dmax] are the squared distances
   from the disc's centre to the nearest and farthest points of the
   square. *)
let square_range ~cx ~cy ~fx ~fy ~fs =
  let clamp v lo hi = Float.max lo (Float.min v hi) in
  let nx = clamp cx fx (fx +. fs) and ny = clamp cy fy (fy +. fs) in
  let d2 px py =
    let dx = px -. cx and dy = py -. cy in
    (dx *. dx) +. (dy *. dy)
  in
  let dmin = d2 nx ny in
  let corners =
    [ (fx, fy); (fx +. fs, fy); (fx, fy +. fs); (fx +. fs, fy +. fs) ]
  in
  let dmax =
    List.fold_left (fun acc (px, py) -> Float.max acc (d2 px py)) 0. corners
  in
  (dmin, dmax)

let discs_of ~kind ~image =
  let s = float_of_int image in
  match kind with
  | Disk | Ring -> [ (s /. 2., s /. 2., 0.375 *. s) ]
  | Blobs ->
      [
        (0.35 *. s, 0.35 *. s, 0.22 *. s);
        (0.65 *. s, 0.35 *. s, 0.18 *. s);
        (0.40 *. s, 0.68 *. s, 0.20 *. s);
        (0.68 *. s, 0.66 *. s, 0.15 *. s);
      ]

(* Black-pixel predicate, shared by the analytic classifier's pixel-level
   fallback and nothing else (regions are classified analytically). *)
let pixel_black ~kind ~image px py =
  let inside_disc (cx, cy, r) =
    let dx = px -. cx and dy = py -. cy in
    (dx *. dx) +. (dy *. dy) <= r *. r
  in
  match kind with
  | Disk | Blobs -> List.exists inside_disc (discs_of ~kind ~image)
  | Ring ->
      let s = float_of_int image in
      let cx = s /. 2. and cy = s /. 2. in
      let dx = px -. cx and dy = py -. cy in
      let d2 = (dx *. dx) +. (dy *. dy) in
      let ro = 0.375 *. s and ri = 0.20 *. s in
      d2 <= ro *. ro && d2 >= ri *. ri

let classify ?(kind = Disk) ~image ~x ~y ~size () =
  let fx = float_of_int x and fy = float_of_int y and fs = float_of_int size in
  let exact () =
    if size = 1 then
      if pixel_black ~kind ~image (fx +. 0.5) (fy +. 0.5) then Inside
      else Outside
    else Mixed
  in
  match kind with
  | Disk -> (
      let [@warning "-8"] [ (cx, cy, r) ] = discs_of ~kind ~image in
      let dmin, dmax = square_range ~cx ~cy ~fx ~fy ~fs in
      let r2 = r *. r in
      if dmax <= r2 then Inside
      else if dmin >= r2 then Outside
      else exact ())
  | Ring -> (
      let [@warning "-8"] [ (cx, cy, ro) ] = discs_of ~kind ~image in
      let ri = 0.20 *. float_of_int image in
      let dmin, dmax = square_range ~cx ~cy ~fx ~fy ~fs in
      let ro2 = ro *. ro and ri2 = ri *. ri in
      if dmin >= ri2 && dmax <= ro2 then Inside
      else if dmax <= ri2 || dmin >= ro2 then Outside
      else exact ())
  | Blobs ->
      let discs = discs_of ~kind ~image in
      let ranges =
        List.map (fun (cx, cy, r) -> (square_range ~cx ~cy ~fx ~fy ~fs, r *. r)) discs
      in
      if List.exists (fun ((_, dmax), r2) -> dmax <= r2) ranges then Inside
      else if List.for_all (fun ((dmin, _), r2) -> dmin >= r2) ranges then
        Outside
      else exact ()

(* --- Host-side reference ----------------------------------------------- *)

module Reference = struct
  type quad = {
    mutable parent : quad option;
    children : quad option array; (* length 4; all None for leaves *)
    color : int;
    quadrant : int;
  }

  let rec build ~kind ~image ~x ~y ~size ~quadrant =
    match classify ~kind ~image ~x ~y ~size () with
    | Inside -> { parent = None; children = Array.make 4 None; color = black; quadrant }
    | Outside -> { parent = None; children = Array.make 4 None; color = white; quadrant }
    | Mixed ->
        let half = size / 2 in
        let node = { parent = None; children = Array.make 4 None; color = grey; quadrant } in
        let mk i qx qy =
          let c = build ~kind ~image ~x:qx ~y:qy ~size:half ~quadrant:i in
          c.parent <- Some node;
          node.children.(i) <- Some c
        in
        mk 0 x y;
        mk 1 (x + half) y;
        mk 2 x (y + half);
        mk 3 (x + half) (y + half);
        node

  let rec adj_neighbor q dir =
    match q.parent with
    | None -> None
    | Some p ->
        if adjacent ~dir ~quadrant:q.quadrant then begin
          match adj_neighbor p dir with
          | None -> None
          | Some m ->
              if m.color <> grey then Some m
              else m.children.(reflect ~dir ~quadrant:q.quadrant)
        end
        else p.children.(reflect ~dir ~quadrant:q.quadrant)

  let rec count_border n dir size =
    match n with
    | None -> 0
    | Some n ->
        if n.color = white then size
        else if n.color = black then 0
        else begin
          let a, b = side_children dir in
          count_border n.children.(a) dir (size / 2)
          + count_border n.children.(b) dir (size / 2)
        end

  let rec perimeter q size =
    if q.color = grey then
      Array.fold_left
        (fun acc c -> match c with Some c -> acc + perimeter c (size / 2) | None -> acc)
        0 q.children
    else if q.color = black then begin
      let contribution = ref 0 in
      for dir = 0 to 3 do
        match adj_neighbor q dir with
        | None -> contribution := !contribution + size (* image border *)
        | Some n ->
            contribution := !contribution + count_border (Some n) (opposite dir) size
      done;
      !contribution
    end
    else 0

  let run ?(kind = Disk) ~image () =
    let root = build ~kind ~image ~x:0 ~y:0 ~size:image ~quadrant:0 in
    perimeter root image
end

(* --- The Olden program ------------------------------------------------- *)

let node_work = 100
let neighbor_work = 40
let border_work = 20

(* Build the quadtree, distributing the top levels over the processor
   range.  The black leaves cluster along the figure's boundary, so a
   range-split placement would give the boundary quadrants' processors all
   the work; instead the depth-3 regions (64 of them on a big image) are
   dealt *cyclically* over the processors — the load-balancing flavour of
   layout the paper expects the programmer to pick. *)
(* Build the quadtree, distributing the top levels over the processor
   range; the first-spawned children go to the far end (cf. TreeAdd). *)
let build ?(kind = Disk) sites ~image =
  let nprocs = Ops.nprocs () in
  let rec go ~x ~y ~size ~quadrant ~parent ~lo ~hi =
    let region = classify ~kind ~image ~x ~y ~size () in
    let node = Ops.alloc ~proc:lo node_words in
    Ops.store_ptr sites.s_parent node off_parent parent;
    Ops.store_int sites.s_color node off_quadrant quadrant;
    (match region with
    | Inside -> Ops.store_int sites.s_color node off_color black
    | Outside -> Ops.store_int sites.s_color node off_color white
    | Mixed -> Ops.store_int sites.s_color node off_color grey);
    (match region with
    | Inside | Outside ->
        for i = 0 to 3 do
          Ops.store_ptr sites.s_child node (off_child i) Gptr.null
        done
    | Mixed ->
        let half = size / 2 in
        let coords =
          [| (x, y); (x + half, y); (x, y + half); (x + half, y + half) |]
        in
        for i = 0 to 3 do
          let span = hi - lo in
          let j = 3 - i in
          let clo = lo + (j * span / 4) in
          let chi = lo + ((j + 1) * span / 4) in
          let clo = min clo (nprocs - 1) in
          let cx, cy = coords.(i) in
          let child =
            go ~x:cx ~y:cy ~size:half ~quadrant:i ~parent:node ~lo:clo
              ~hi:(max chi (clo + 1))
          in
          Ops.store_ptr sites.s_child node (off_child i) child
        done);
    node
  in
  Ops.call (fun () ->
      go ~x:0 ~y:0 ~size:image ~quadrant:0 ~parent:Gptr.null ~lo:0 ~hi:nprocs)

(* Samet's greater-or-equal adjacent neighbor, via cached dereferences. *)
let rec adj_neighbor sites q dir =
  let p = Ops.load_ptr sites.s_parent q off_parent in
  Ops.work neighbor_work;
  if Gptr.is_null p then Gptr.null
  else begin
    let quadrant = Ops.load_int sites.s_ncolor q off_quadrant in
    if adjacent ~dir ~quadrant then begin
      let m = adj_neighbor sites p dir in
      if Gptr.is_null m then Gptr.null
      else begin
        let mcolor = Ops.load_int sites.s_ncolor m off_color in
        if mcolor <> grey then m
        else Ops.load_ptr sites.s_nchild m (off_child (reflect ~dir ~quadrant))
      end
    end
    else Ops.load_ptr sites.s_nchild p (off_child (reflect ~dir ~quadrant))
  end

let rec count_border sites n dir size =
  if Gptr.is_null n then 0
  else begin
    let color = Ops.load_int sites.s_ncolor n off_color in
    Ops.work border_work;
    if color = white then size
    else if color = black then 0
    else begin
      let a, b = side_children dir in
      count_border sites (Ops.load_ptr sites.s_nchild n (off_child a)) dir (size / 2)
      + count_border sites (Ops.load_ptr sites.s_nchild n (off_child b)) dir (size / 2)
    end
  end

let rec perimeter sites q size ~span =
  if Gptr.is_null q then 0
  else begin
    let color = Ops.load_int sites.s_color q off_color in
    if color = grey then begin
      if span >= 2 then begin
        let futs =
          Array.init 3 (fun i ->
              let child = Ops.load_ptr sites.s_child q (off_child i) in
              Ops.future (fun () ->
                  Value.Int
                    (perimeter sites child (size / 2) ~span:(max 1 (span / 4)))))
        in
        let last = Ops.load_ptr sites.s_child q (off_child 3) in
        let d = perimeter sites last (size / 2) ~span:(max 1 (span / 4)) in
        Array.fold_left (fun acc f -> acc + Value.to_int (Ops.touch f)) d futs
      end
      else begin
        let sum = ref 0 in
        for i = 0 to 3 do
          let child = Ops.load_ptr sites.s_child q (off_child i) in
          sum := !sum + perimeter sites child (size / 2) ~span:1
        done;
        !sum
      end
    end
    else if color = black then begin
      Ops.work node_work;
      let contribution = ref 0 in
      for dir = 0 to 3 do
        let n = Ops.call (fun () -> adj_neighbor sites q dir) in
        if Gptr.is_null n then contribution := !contribution + size
        else
          contribution :=
            !contribution
            + Ops.call (fun () -> count_border sites n (opposite dir) size)
      done;
      !contribution
    end
    else 0
  end

let image_for scale = max 64 (4096 / scale)

let run_image ?(kind = Disk) cfg ~scale =
  let image = image_for scale in
  execute cfg ~program:(fun _engine ->
      let sites = make_sites () in
      let root = build ~kind sites ~image in
      let nprocs = Ops.nprocs () in
      Ops.phase "kernel";
      let total =
        Ops.call (fun () -> perimeter sites root image ~span:nprocs)
      in
      let expected = Reference.run ~kind ~image () in
      ( Printf.sprintf "perimeter=%d (%s %dx%d)" total
          (image_kind_to_string kind) image image,
        total = expected ))

let run cfg ~scale = run_image ~kind:Disk cfg ~scale

let spec =
  {
    name = "Perimeter";
    descr = "Computes the perimeter of a set of quad-tree encoded raster images";
    problem = "4K x 4K image";
    choice = "M+C";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 2;
    run;
  }
