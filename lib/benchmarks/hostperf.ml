(* Host-side throughput harness: how fast does the *simulator itself* run?

   Everything else in this library measures the simulated machine (cycles
   of the modelled CM-5); this module measures the host — wall-clock
   seconds to simulate the Table-2 suite, and the derived throughputs
   simulated-cycles/second and simulated-events/second.  These numbers
   are what the fast-path work on the dereference engine moves; the
   simulated results themselves must not move at all (that is the
   BENCH_table2.json gate's job).

   Timing uses the monotonic clock and reports the best of [repeats]
   runs per benchmark: the minimum is the standard estimator for "how
   fast can this go", being least polluted by GC pauses, scheduler
   preemption, and cache warm-up. *)

module C = Olden_config
module Json = Olden_trace.Json

type row = {
  name : string;
  scale : int;
  wall_seconds : float; (* best of [repeats] *)
  sim_cycles : int; (* the benchmark's measured (Table 2) cycles *)
  sim_events : int; (* simulated operation events, see [events_of] *)
  verified : bool;
}

type report = {
  nprocs : int;
  repeats : int;
  domains : int; (* host domains the suite's runs were spread over *)
  rows : row list;
  total_wall : float; (* sum of per-benchmark best times *)
  total_cycles : int;
  total_events : int;
  suite_wall : float; (* wall time of the whole sweep, all repeats *)
  pool_busy : float array; (* per-domain seconds spent running jobs *)
  pool_wait : float array; (* per-domain seconds idle (startup + tail) *)
}

(* One "event" is one simulated operation the runtime dispatched: a
   dereference (cacheable or migration-mechanism), a thread movement, a
   future operation, or a message.  The sum tracks how much discrete-event
   work a run asked of the simulator, independent of the cost model. *)
let events_of (st : Stats.t) =
  st.Stats.migrations + st.Stats.returns + st.Stats.futures + st.Stats.touches
  + st.Stats.steals + st.Stats.local_refs + st.Stats.cacheable_reads
  + st.Stats.cacheable_writes + st.Stats.messages

let clock = Unix.gettimeofday

let time_spec (s : Common.spec) ~nprocs ~repeats =
  let cfg = C.make ~nprocs () in
  let scale = s.Common.default_scale in
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to max 1 repeats do
    let t0 = clock () in
    let o = s.Common.run cfg ~scale in
    let dt = clock () -. t0 in
    if dt < !best then best := dt;
    last := Some o
  done;
  let o = Option.get !last in
  {
    name = s.Common.name;
    scale;
    wall_seconds = !best;
    sim_cycles = Common.measured_cycles s o;
    sim_events = events_of o.Common.total_stats;
    verified = o.Common.ok;
  }

(* Each benchmark (with its repeats) is one sweep point; with [domains]
   > 1 the points run concurrently on a domain pool, which is where the
   host-side speedup of the parallel sweep driver shows up.  Per-point
   numbers are unchanged by pooling (each job times itself), but they do
   get noisier under co-scheduling — the committed baselines are always
   taken at [domains = 1]. *)
let run ?(nprocs = 8) ?(repeats = 3) ?(domains = 1) () =
  let points = List.map (fun s -> (s.Common.name, s)) Registry.specs in
  let results, pool =
    Olden_parallel.Sweep.run ~domains
      (fun ~label:_ s -> time_spec s ~nprocs ~repeats)
      points
  in
  let rows = List.map (fun p -> p.Olden_parallel.Sweep.value) results in
  let total_wall = List.fold_left (fun a r -> a +. r.wall_seconds) 0. rows in
  let total_cycles = List.fold_left (fun a r -> a + r.sim_cycles) 0 rows in
  let total_events = List.fold_left (fun a r -> a + r.sim_events) 0 rows in
  {
    nprocs;
    repeats;
    domains = pool.Olden_parallel.Domain_pool.domains;
    rows;
    total_wall;
    total_cycles;
    total_events;
    suite_wall = pool.Olden_parallel.Domain_pool.wall_seconds;
    pool_busy = pool.Olden_parallel.Domain_pool.busy_seconds;
    pool_wait = pool.Olden_parallel.Domain_pool.wait_seconds;
  }

(* --- JSON ---------------------------------------------------------------- *)

let schema = "olden-hostperf/v1"

let row_to_json r =
  Json.Obj
    [
      ("benchmark", Json.String r.name);
      ("scale", Json.Int r.scale);
      ("wall_seconds", Json.Float r.wall_seconds);
      ("sim_cycles", Json.Int r.sim_cycles);
      ("sim_events", Json.Int r.sim_events);
      ( "cycles_per_sec",
        Json.Float (float_of_int r.sim_cycles /. r.wall_seconds) );
      ( "events_per_sec",
        Json.Float (float_of_int r.sim_events /. r.wall_seconds) );
      ("verified", Json.Bool r.verified);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("nprocs", Json.Int t.nprocs);
      ("repeats", Json.Int t.repeats);
      ("domains", Json.Int t.domains);
      ("benchmarks", Json.List (List.map row_to_json t.rows));
      ( "suite",
        Json.Obj
          [
            ("wall_seconds", Json.Float t.suite_wall);
            ( "per_domain",
              Json.List
                (List.init (Array.length t.pool_busy) (fun i ->
                     Json.Obj
                       [
                         ("busy_seconds", Json.Float t.pool_busy.(i));
                         ("wait_seconds", Json.Float t.pool_wait.(i));
                       ])) );
          ] );
      ( "aggregate",
        Json.Obj
          [
            ("wall_seconds", Json.Float t.total_wall);
            ("sim_cycles", Json.Int t.total_cycles);
            ("sim_events", Json.Int t.total_events);
            ( "cycles_per_sec",
              Json.Float (float_of_int t.total_cycles /. t.total_wall) );
            ( "events_per_sec",
              Json.Float (float_of_int t.total_events /. t.total_wall) );
          ] );
    ]

let of_json j =
  let open Json in
  let str k o = Option.bind (member k o) string_value in
  let int_m k o = Option.bind (member k o) int_value in
  let flt k o =
    match member k o with
    | Some (Float f) -> Some f
    | Some (Int i) -> Some (float_of_int i)
    | _ -> None
  in
  match str "schema" j with
  | Some s when String.equal s schema ->
      let rows =
        match member "benchmarks" j with
        | Some (List bs) ->
            List.filter_map
              (fun b ->
                match
                  ( str "benchmark" b,
                    int_m "scale" b,
                    flt "wall_seconds" b,
                    int_m "sim_cycles" b,
                    int_m "sim_events" b )
                with
                | Some name, Some scale, Some w, Some c, Some e ->
                    Some
                      {
                        name;
                        scale;
                        wall_seconds = w;
                        sim_cycles = c;
                        sim_events = e;
                        verified =
                          (match member "verified" b with
                          | Some (Bool v) -> v
                          | _ -> true);
                      }
                | _ -> None)
              bs
        | _ -> []
      in
      let total_wall =
        List.fold_left (fun a r -> a +. r.wall_seconds) 0. rows
      in
      (* the suite block is absent from pre-parallel baselines; default
         to a serial pool so comparisons keep working *)
      let suite = member "suite" j in
      let busy, wait =
        match Option.bind suite (member "per_domain") with
        | Some (List ds) ->
            ( Array.of_list
                (List.filter_map (fun d -> flt "busy_seconds" d) ds),
              Array.of_list
                (List.filter_map (fun d -> flt "wait_seconds" d) ds) )
        | _ -> ([||], [||])
      in
      Ok
        {
          nprocs = Option.value ~default:0 (int_m "nprocs" j);
          repeats = Option.value ~default:0 (int_m "repeats" j);
          domains = Option.value ~default:1 (int_m "domains" j);
          rows;
          total_wall;
          total_cycles = List.fold_left (fun a r -> a + r.sim_cycles) 0 rows;
          total_events = List.fold_left (fun a r -> a + r.sim_events) 0 rows;
          suite_wall =
            Option.value ~default:total_wall
              (Option.bind suite (flt "wall_seconds"));
          pool_busy = busy;
          pool_wait = wait;
        }
  | Some s -> Error (Printf.sprintf "unexpected schema %S (want %S)" s schema)
  | None -> Error "not an olden-hostperf snapshot (no schema field)"

let of_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          match
            Json.of_string (really_input_string ic (in_channel_length ic))
          with
          | exception _ -> Error (path ^ ": not valid JSON")
          | j -> of_json j)

(* --- Reporting ----------------------------------------------------------- *)

let mega f = f /. 1e6

let pp ppf t =
  Format.fprintf ppf
    "host throughput, %d processor(s), best of %d run(s) per benchmark:@."
    t.nprocs t.repeats;
  Format.fprintf ppf "  %-11s %10s %14s %12s %10s %10s@." "benchmark" "wall ms"
    "sim cycles" "sim events" "Mcyc/s" "Mev/s";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-11s %10.1f %14s %12s %10.2f %10.2f%s@." r.name
        (1000. *. r.wall_seconds)
        (Common.commas r.sim_cycles)
        (Common.commas r.sim_events)
        (mega (float_of_int r.sim_cycles /. r.wall_seconds))
        (mega (float_of_int r.sim_events /. r.wall_seconds))
        (if r.verified then "" else "  VERIFICATION FAILED"))
    t.rows;
  Format.fprintf ppf "  %-11s %10.1f %14s %12s %10.2f %10.2f@." "TOTAL"
    (1000. *. t.total_wall)
    (Common.commas t.total_cycles)
    (Common.commas t.total_events)
    (mega (float_of_int t.total_cycles /. t.total_wall))
    (mega (float_of_int t.total_events /. t.total_wall));
  if t.domains > 1 then begin
    let busy = Array.fold_left ( +. ) 0. t.pool_busy in
    Format.fprintf ppf
      "  suite on %d host domains: %.1f ms wall (%.0f%% parallel \
       efficiency)@."
      t.domains
      (1000. *. t.suite_wall)
      (100. *. busy /. (float_of_int t.domains *. t.suite_wall));
    Array.iteri
      (fun i b ->
        Format.fprintf ppf "    domain %d: %6.1f ms busy, %6.1f ms waiting@."
          i (1000. *. b)
          (1000. *. t.pool_wait.(i)))
      t.pool_busy
  end

(* Wall-clock comparison against a committed baseline.  Host timing is
   noisy (different machines, load, thermal state), so this never gates:
   the caller prints the comparison and exits 0 regardless — the warn-only
   contract the CI step relies on. *)
let pp_comparison ppf ~(baseline : report) (current : report) =
  Format.fprintf ppf
    "wall-clock vs baseline (speedup = baseline / current; >1.00x is \
     faster; host noise means this is advisory only):@.";
  List.iter
    (fun (r : row) ->
      match List.find_opt (fun (b : row) -> b.name = r.name) baseline.rows with
      | None -> Format.fprintf ppf "  %-11s (no baseline row)@." r.name
      | Some b ->
          let ratio = b.wall_seconds /. r.wall_seconds in
          Format.fprintf ppf "  %-11s %8.1f ms -> %8.1f ms   %5.2fx%s@." r.name
            (1000. *. b.wall_seconds)
            (1000. *. r.wall_seconds)
            ratio
            (if ratio < 0.9 then "  WARN: slower than baseline" else ""))
    current.rows;
  let agg = baseline.total_wall /. current.total_wall in
  Format.fprintf ppf "  %-11s %8.1f ms -> %8.1f ms   %5.2fx%s@." "TOTAL"
    (1000. *. baseline.total_wall)
    (1000. *. current.total_wall)
    agg
    (if agg < 0.9 then "  WARN: slower than baseline" else "")
