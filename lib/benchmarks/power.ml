(* Power: the Power System Optimization problem of Lumetta et al. (Table 1:
   10,000 customers; whole-program times, heuristic choice M).

   The network is a fixed four-level tree: a root feeds 10 feeders, each
   feeder 20 laterals, each lateral 5 branches, each branch 10 customer
   leaves.  Each pricing iteration sums optimized customer demands up the
   tree; the root then adjusts its price toward a capacity target.
   Customers do substantial local floating-point work, so Olden's overheads
   are small (the paper's one-processor speedup is 0.96).

   Layout follows the Olden idiom that makes futurecalls spawn threads:
   each level's list cells live on the processor that walks them, and each
   cell points to a header on the processor that owns the subtree below.
   The walker spawns a futurecall whose body's first dereference (of the
   header) migrates, so the walker's continuation is stolen and the spawn
   loop pipelines: one thread per feeder, then one per lateral. *)

open Common

let ir =
  {|
struct node {
  node next @ 95;
  node child @ 60;
  float demand;
  float coeff;
}

float compute_feeder(node cell, float price) {
  if (cell == null) { return 0.0; }
  float d = future compute_lateral(cell->child, price);
  float rest = compute_feeder(cell->next, price);
  return touch(d) + rest;
}

float compute_lateral(node n, float price) {
  if (n == null) { return 0.0; }
  float s = sum_leaves(n->child, price);
  float rest = compute_lateral(n->next, price);
  return s + rest;
}

float sum_leaves(node leaf, float price) {
  if (leaf == null) { return 0.0; }
  float d = leaf->coeff / price;
  work(700);
  return d + sum_leaves(leaf->next, price);
}
|}

(* Node layout: every record is [next; child; demand; coeff]. *)
let off_next = 0
let off_child = 1
let off_demand = 2
let off_coeff = 3
let node_words = 4

type sites = {
  s_next : Site.t;
  s_child : Site.t;
  s_coeff : Site.t;
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  (* all levels traverse with migration (heuristic choice M); the feeder
     walk's sites stand in for the identical walks at the other levels *)
  let next = site_of mech ~func:"compute_feeder" ~var:"cell" ~fallback:C.Migrate in
  let child = site_of mech ~func:"compute_feeder" ~var:"cell" ~fallback:C.Migrate in
  let coeff = site_of mech ~func:"sum_leaves" ~var:"leaf" ~fallback:C.Migrate in
  {
    s_next = next ~field:"next";
    s_child = child ~field:"child";
    s_coeff = coeff ~field:"coeff";
  }

(* Network shape (Lumetta et al.): 10 x 20 x 5 x 10 = 10,000 customers. *)
type shape = { feeders : int; laterals : int; branches : int; leaves : int }

let paper_shape = { feeders = 10; laterals = 20; branches = 5; leaves = 10 }

let shape_for scale =
  let rec shrink sh scale =
    if scale <= 1 then sh
    else if sh.leaves > 5 then shrink { sh with leaves = sh.leaves / 2 } (scale / 2)
    else if sh.branches > 2 then
      shrink { sh with branches = sh.branches - 2 } (scale / 2)
    else shrink { sh with laterals = max 4 (sh.laterals / 2) } (scale / 2)
  in
  shrink paper_shape scale

let customers sh = sh.feeders * sh.laterals * sh.branches * sh.leaves
let iterations = 8
let leaf_work = 700
let target_demand sh = 0.6 *. float_of_int (customers sh)
let initial_price = 1.0

(* Deterministic customer coefficient. *)
let coeff_of ~lateral ~branch ~leaf =
  let h = (lateral * 131) + (branch * 17) + leaf in
  0.5 +. (float_of_int (h mod 1000) /. 1000.)

(* --- Pure OCaml reference (same summation order) ---------------------- *)

(* Lists are built head = highest index, and the walkers sum
   head +. rest, so the reference folds indices downward,
   right-associated. *)
let rec sum_list k f =
  if k < 0 then 0.
  else begin
    let self = f k in
    let rest = sum_list (k - 1) f in
    self +. rest
  end

let reference sh =
  let price = ref initial_price in
  let total = ref 0. in
  for _ = 1 to iterations do
    let p = !price in
    let lateral_demand lateral =
      sum_list (sh.branches - 1) (fun b ->
          sum_list (sh.leaves - 1) (fun c ->
              coeff_of ~lateral ~branch:b ~leaf:c /. p))
    in
    let feeder_demand f =
      sum_list (sh.laterals - 1) (fun l ->
          lateral_demand ((f * sh.laterals) + l))
    in
    total := sum_list (sh.feeders - 1) feeder_demand;
    price := !price *. (!total /. target_demand sh)
  done;
  (!price, !total)

(* --- Structure construction ------------------------------------------- *)

type net = { feeder_cells : Gptr.t (* list on processor 0 *) }

let alloc_node sites ~proc ~next ~child ~coeff =
  let n = Ops.alloc ~proc node_words in
  Ops.store_ptr sites.s_next n off_next next;
  Ops.store_ptr sites.s_child n off_child child;
  Ops.store_float sites.s_coeff n off_coeff coeff;
  n

(* Builds list cells for indices [count-1 .. 0] with the head being the
   highest index, matching the reference's fold. *)
let rec build_list sites ~proc ~count ~make =
  if count = 0 then Gptr.null
  else begin
    let rest = build_list sites ~proc ~count:(count - 1) ~make in
    let child, coeff = make (count - 1) in
    alloc_node sites ~proc ~next:rest ~child ~coeff
  end

let build sites sh =
  let nprocs = Ops.nprocs () in
  let total_laterals = sh.feeders * sh.laterals in
  let lateral_proc lateral = block_owner ~nprocs ~n:total_laterals lateral in
  let feeder_proc f = lateral_proc (f * sh.laterals) in
  let build_lateral_subtree ~proc ~lateral =
    (* branch cells and customer leaves, all on the lateral's processor *)
    let branches =
      build_list sites ~proc ~count:sh.branches ~make:(fun b ->
          let leaves =
            build_list sites ~proc ~count:sh.leaves ~make:(fun c ->
                (Gptr.null, coeff_of ~lateral ~branch:b ~leaf:c))
          in
          (leaves, 0.))
    in
    alloc_node sites ~proc ~next:Gptr.null ~child:branches ~coeff:0.
  in
  (* The build is parallel too (the paper notes the building phases show
     excellent speedup): subtrees are built by futurecalled threads that
     migrate to their subtree's processor at their first store. *)
  let build_feeder ~feeder =
    let fproc = feeder_proc feeder in
    let futs =
      Array.init sh.laterals (fun l ->
          let lateral = (feeder * sh.laterals) + l in
          Ops.future (fun () ->
              Value.Ptr
                (build_lateral_subtree ~proc:(lateral_proc lateral) ~lateral)))
    in
    let lateral_cells =
      build_list sites ~proc:fproc ~count:sh.laterals ~make:(fun l ->
          (Value.to_ptr (Ops.touch futs.(l)), 0.))
    in
    alloc_node sites ~proc:fproc ~next:Gptr.null ~child:lateral_cells ~coeff:0.
  in
  let feeder_futs =
    Array.init sh.feeders (fun f ->
        Ops.future (fun () -> Value.Ptr (build_feeder ~feeder:f)))
  in
  let feeder_cells =
    build_list sites ~proc:0 ~count:sh.feeders ~make:(fun f ->
        (Value.to_ptr (Ops.touch feeder_futs.(f)), 0.))
  in
  { feeder_cells }

(* --- The demand pass --------------------------------------------------- *)

(* Customer leaves: the local optimization, the benchmark's real work. *)
let rec sum_leaves sites ~price leaf =
  if Gptr.is_null leaf then 0.
  else begin
    let coeff = Ops.load_float sites.s_coeff leaf off_coeff in
    Ops.work leaf_work;
    let self = coeff /. price in
    let rest = sum_leaves sites ~price (Ops.load_ptr sites.s_next leaf off_next) in
    self +. rest
  end

let rec sum_branches sites ~price branch =
  if Gptr.is_null branch then 0.
  else begin
    let leaves = Ops.load_ptr sites.s_child branch off_child in
    let self = sum_leaves sites ~price leaves in
    let rest =
      sum_branches sites ~price (Ops.load_ptr sites.s_next branch off_next)
    in
    Ops.work 10;
    self +. rest
  end

(* The body's first dereference (hdr->child) migrates to the lateral's
   processor; everything below is local. *)
let compute_lateral sites ~price hdr =
  let branches = Ops.load_ptr sites.s_child hdr off_child in
  sum_branches sites ~price branches

(* Walk a cell list spawning one futurecall per cell; bodies migrate away,
   so the walk's continuation is stolen and the spawns pipeline.  Touches
   happen after the whole tail is processed, preserving summation order. *)
let rec walk_spawning sites ~price ~body cell =
  if Gptr.is_null cell then 0.
  else begin
    let hdr = Ops.load_ptr sites.s_child cell off_child in
    let fut =
      Ops.future (fun () -> Value.Float (body hdr))
    in
    let rest =
      walk_spawning sites ~price ~body (Ops.load_ptr sites.s_next cell off_next)
    in
    Ops.work 10;
    Value.to_float (Ops.touch fut) +. rest
  end

let compute_feeder sites ~price hdr =
  let lateral_cells = Ops.load_ptr sites.s_child hdr off_child in
  walk_spawning sites ~price lateral_cells ~body:(fun lateral_hdr ->
      compute_lateral sites ~price lateral_hdr)

let total_demand sites ~price net =
  Ops.call (fun () ->
      walk_spawning sites ~price net.feeder_cells ~body:(fun feeder_hdr ->
          compute_feeder sites ~price feeder_hdr))

let run cfg ~scale =
  let sh = shape_for scale in
  execute cfg ~program:(fun _engine ->
      let sites = make_sites () in
      let net = build sites sh in
      Ops.phase "kernel";
      let price = ref initial_price in
      let total = ref 0. in
      for _ = 1 to iterations do
        let sum = total_demand sites ~price:!price net in
        total := sum;
        price := !price *. (sum /. target_demand sh)
      done;
      let ref_price, ref_total = reference sh in
      let ok =
        Float.abs (!price -. ref_price) <= 1e-9 *. Float.abs ref_price
        && Float.abs (!total -. ref_total) <= 1e-9 *. Float.abs ref_total
      in
      (Printf.sprintf "price=%.6f demand=%.3f" !price !total, ok))

let spec =
  {
    name = "Power";
    descr = "Solves the Power System Optimization problem";
    problem = "10,000 customers";
    choice = "M";
    whole_program = true;
    (* several lateral fibers share each processor, so allocation order
       (hence addresses) follows the scheduler *)
    heap_stable = false;
    ir;
    default_scale = 1;
    run;
  }
