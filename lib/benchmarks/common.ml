(* Shared infrastructure for the ten Olden benchmarks.

   Every benchmark provides a [spec]: identity and problem-size strings
   (Table 1), the paper's heuristic-choice column (Table 2), a
   mini-language model of its kernel (so the compiler heuristic actually
   chooses the mechanisms the OCaml kernel uses), and a driver that builds
   the structure, runs the kernel between phase marks, and verifies the
   result against a sequential reference. *)

module C = Olden_config
module Ops = Olden_runtime.Ops
module Site = Olden_runtime.Site
module Engine = Olden_runtime.Engine
module Prng = Prng
module Heuristic = Olden_compiler.Heuristic
module Analysis = Olden_compiler.Analysis
module Trace = Olden_trace.Trace
module Span = Olden_span.Span
module Flight = Olden_span.Flight
module Json = Olden_trace.Json
module Monitor = Olden_monitor.Monitor
module Recovery = Olden_recovery.Recovery

type outcome = {
  ok : bool; (* result matches the sequential reference *)
  checksum : string;
  kernel_cycles : int;
  total_cycles : int;
  kernel_stats : Stats.t;
  total_stats : Stats.t;
}

type spec = {
  name : string;
  descr : string; (* Table 1 description *)
  problem : string; (* Table 1 problem size (at scale 1) *)
  choice : string; (* paper's heuristic choice: "M" or "M+C" *)
  whole_program : bool; (* Table 2's W marker *)
  heap_stable : bool;
      (* final heap is bit-identical across message-timing perturbations:
         true when every processor's allocations come from one fiber in
         program order, false when concurrently-scheduled fibers allocate
         on the same processor (allocation order — hence addresses — then
         follows the scheduler, though the computed result does not).
         Chaos runs compare heap digests only when this holds; checksum
         equality is enforced regardless. *)
  ir : string; (* mini-language model of the kernel *)
  default_scale : int; (* problem-size divisor used by the bench harness *)
  run : C.t -> scale:int -> outcome;
}

(* Cycles counted for Table 2: whole-program benchmarks (Power, Barnes-Hut,
   Health) report total time, the rest kernel-only. *)
let measured_cycles spec outcome =
  if spec.whole_program then outcome.total_cycles else outcome.kernel_cycles

let measured_stats spec outcome =
  if spec.whole_program then outcome.total_stats else outcome.kernel_stats

(* --- Driving a build/kernel program ----------------------------------- *)

(* Driver hooks and the results [execute] leaves behind, bundled in one
   domain-local record: benchmark jobs running on different domains of
   the parallel sweep driver set their own flags and read their own
   results without interfering.  See the .mli for per-field docs. *)
type hooks = {
  mutable record_timeline : bool;
  mutable last_timeline : string option;
  mutable record_trace : bool;
  mutable last_trace : Trace.event array option;
  mutable last_busy : int array;
  mutable last_clocks : int array;
  mutable last_comm : int array;
  mutable last_recovery_stall : int array;
  mutable inspect_engine : (Engine.t -> unit) option;
  mutable monitor_interval : int option;
  mutable last_monitor : Monitor.t option;
  mutable record_spans : bool;
  mutable last_spans : Span.span array option;
}

let hooks_key =
  Domain.DLS.new_key (fun () ->
      {
        record_timeline = false;
        last_timeline = None;
        record_trace = false;
        last_trace = None;
        last_busy = [||];
        last_clocks = [||];
        last_comm = [||];
        last_recovery_stall = [||];
        inspect_engine = None;
        monitor_interval = None;
        last_monitor = None;
        record_spans = false;
        last_spans = None;
      })

let hooks () = Domain.DLS.get hooks_key

(* The program receives the engine so its verification step can inspect
   the heap directly (at host level, free of simulated cost). *)
let execute (cfg : C.t) ~(program : Engine.t -> string * bool) : outcome =
  let h = hooks () in
  let engine = Engine.create cfg in
  if h.record_timeline then
    Machine.set_record_intervals (Engine.machine engine) true;
  let result = ref ("", false) in
  let collector =
    if h.record_trace then begin
      let c = Trace.Collector.create () in
      Trace.install (Trace.Collector.add c);
      Some c
    end
    else None
  in
  let span_collector =
    if h.record_spans then begin
      let c = Span.Collector.create () in
      Span.install (Span.Collector.add c);
      Some c
    end
    else None
  in
  (* the flight recorder rides along on every faulty run: recording is
     allocation-free, and a wedged chaos run then leaves a post-mortem
     behind.  Fault-free runs stay untouched — spans off means not even
     the one-word guard reads differently from the seed behavior. *)
  let flight_here = cfg.C.faults <> None && not (Flight.is_enabled ()) in
  if flight_here then Span.flight_enable ();
  let monitor =
    Option.map
      (fun interval ->
        let machine = Engine.machine engine in
        let nprocs = Machine.nprocs machine in
        Monitor.create ~interval ~nprocs
          ~probe:
            {
              Monitor.stats = (fun () -> Stats.fields (Machine.stats machine));
              busy = (fun () -> Machine.busy_cycles machine);
              comm = (fun () -> Machine.comm_cycles machine);
              recovery_stall =
                (fun () ->
                  match Engine.recovery engine with
                  | Some r -> Recovery.stall_cycles r
                  | None -> Array.make nprocs 0);
            })
      h.monitor_interval
  in
  Option.iter Monitor.install monitor;
  Fun.protect
    ~finally:(fun () ->
      if Option.is_some monitor then Monitor.uninstall ();
      if Option.is_some span_collector then Span.uninstall ();
      (* disabling keeps the ring contents: a failure escaping [exec]
         can still be dumped by the caller's exception handler *)
      if flight_here then Span.flight_disable ();
      if Option.is_some collector then Trace.uninstall ())
    (fun () -> Engine.exec engine (fun () -> result := program engine));
  (match monitor with
  | Some m ->
      Monitor.finish m ~makespan:(Machine.makespan (Engine.machine engine));
      h.last_monitor <- Some m
  | None -> ());
  (match collector with
  | Some c -> h.last_trace <- Some (Trace.Collector.events c)
  | None -> ());
  (match span_collector with
  | Some c -> h.last_spans <- Some (Span.Collector.spans c)
  | None -> ());
  h.last_busy <- Machine.busy_cycles (Engine.machine engine);
  h.last_clocks <- Machine.clocks (Engine.machine engine);
  h.last_comm <- Machine.comm_cycles (Engine.machine engine);
  (h.last_recovery_stall <-
     (match Engine.recovery engine with
     | Some r -> Recovery.stall_cycles r
     | None -> Array.make (Machine.nprocs (Engine.machine engine)) 0));
  if h.record_timeline then
    h.last_timeline <-
      Some
        (Format.asprintf "%a" (Olden_runtime.Timeline.render ?width:None)
           (Engine.machine engine));
  (match h.inspect_engine with Some f -> f engine | None -> ());
  let report = Engine.report engine in
  let kernel_cycles, kernel_stats =
    match List.assoc_opt "kernel" report.Engine.phases with
    | Some _ -> Engine.interval engine ~start:"kernel" ~stop:None
    | None -> (report.Engine.makespan, report.Engine.stats)
  in
  let checksum, ok = !result in
  {
    ok;
    checksum;
    kernel_cycles;
    total_cycles = report.Engine.makespan;
    kernel_stats;
    total_stats = report.Engine.stats;
  }

(* --- Metrics snapshots -------------------------------------------------- *)

(* Site-id -> label lookup against the global registry, for labelling
   per-site metrics, trace summaries, and profiler tables: labels read
   "field@function" ("t->left@treeadd"), not bare ids. *)
let site_name sid =
  List.find_opt (fun (s : Site.t) -> s.Site.sid = sid) (Site.all ())
  |> Option.map Site.label

(* The machine-readable counterpart of [olden-run bench]'s report
   (schema: docs/OBSERVABILITY.md).  Always carries the run identity,
   Stats counters, the per-processor busy/clock arrays left by [execute],
   and the per-site profile; when an event stream is supplied the
   event-derived metrics registry (per-kind/per-proc/per-site counters and
   latency/burst histograms) is included under "metrics". *)
let metrics_snapshot ?events (spec : spec) ~(cfg : C.t) ~scale (o : outcome) :
    Json.t =
  let h = hooks () in
  let makespan = Array.fold_left max 0 h.last_clocks in
  let per_proc =
    List.init (Array.length h.last_busy) (fun p ->
        let comm =
          if p < Array.length h.last_comm then h.last_comm.(p) else 0
        in
        let stall =
          if p < Array.length h.last_recovery_stall then
            h.last_recovery_stall.(p)
          else 0
        in
        Json.Obj
          [
            ("proc", Json.Int p);
            ("busy_cycles", Json.Int h.last_busy.(p));
            ("comm_cycles", Json.Int comm);
            ("idle_cycles", Json.Int (makespan - h.last_busy.(p) - comm));
            ("recovery_stall_cycles", Json.Int stall);
            ("clock", Json.Int h.last_clocks.(p));
          ])
  in
  let per_site =
    List.map
      (fun (s : Site.t) ->
        Json.Obj
          [
            ("sid", Json.Int s.Site.sid);
            ("name", Json.String s.Site.sname);
            ("label", Json.String (Site.label s));
            ("mechanism", Json.String (C.mechanism_to_string s.Site.mech));
            ("loads", Json.Int s.Site.loads);
            ("stores", Json.Int s.Site.stores);
            ("remote", Json.Int s.Site.remote);
            ("migrations", Json.Int s.Site.migrations);
            ("misses", Json.Int s.Site.misses);
            ("retries", Json.Int s.Site.retries);
            ("migration_fallbacks", Json.Int s.Site.fallbacks);
            ("comm_cycles", Json.Int (Site.comm_cycles cfg.C.costs s));
          ])
      (Site.all ())
  in
  let event_metrics =
    match events with
    | None -> []
    | Some evs ->
        [ ("metrics", Olden_trace.Metrics.to_json
                        (Olden_trace.Recorder.of_events
                           ~site_table:(Site.labels ()) evs)) ]
  in
  Json.Obj
    ([
       ("schema", Json.String "olden-metrics/v1");
       ("benchmark", Json.String spec.name);
       ("choice", Json.String spec.choice);
       ("nprocs", Json.Int cfg.C.nprocs);
       ("scale", Json.Int scale);
       ("coherence", Json.String (C.coherence_to_string cfg.C.coherence));
       ("policy", Json.String (C.policy_to_string cfg.C.policy));
       ("verified", Json.Bool o.ok);
       ("checksum", Json.String o.checksum);
       ("measured_cycles", Json.Int (measured_cycles spec o));
       ("kernel_cycles", Json.Int o.kernel_cycles);
       ("total_cycles", Json.Int o.total_cycles);
       ("stats", Stats.to_json (measured_stats spec o));
       ("total_stats", Stats.to_json o.total_stats);
       ("per_proc", Json.List per_proc);
       ("per_site", Json.List per_site);
     ]
    @ event_metrics)

(* --- Coupling kernels to the compiler heuristic ------------------------ *)

(* Run the heuristic on a benchmark's IR model and return a site factory:
   the site for dereference [func.var->field] gets the mechanism the
   heuristic chose for that dereference in the model.  [fallback] covers
   dereferences the model does not contain (e.g. build-phase stores, which
   the paper does not time). *)
let sites_of_ir ir =
  let sel = Heuristic.of_source ir in
  let mech ~func ~var ~field ~fallback =
    let found =
      List.find_opt
        (fun (d : Analysis.deref_info) ->
          d.Analysis.deref_func = func
          && d.Analysis.dbase = Some var
          && d.Analysis.dfield = field)
        sel.Heuristic.analysis.Analysis.derefs
    in
    match found with
    | Some d -> Heuristic.mechanism_of_site sel d.Analysis.deref_id
    | None -> fallback
  in
  (sel, mech)

let site_of mech_fn ~func ~var ~field ~fallback =
  Site.make
    ~mech:(mech_fn ~func ~var ~field ~fallback)
    (Printf.sprintf "%s.%s->%s" func var field)

(* --- Data-distribution helpers ---------------------------------------- *)

(* Processor owning block [i] of [n] when distributed blocked over
   [nprocs] (Figure 2's blocked layout). *)
let block_owner ~nprocs ~n i =
  if n <= 0 then 0 else min (nprocs - 1) (i * nprocs / n)

(* Cyclic layout (Figure 2). *)
let cyclic_owner ~nprocs i = i mod nprocs

(* Scaled problem size: never below [floor]. *)
let scaled ~scale ~floor n = max floor (n / scale)

(* Format helpers for table output. *)
let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let b = Buffer.create (len + 4) in
  String.iteri
    (fun i ch ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b ch)
    s;
  Buffer.contents b
