(** Shared infrastructure for the ten Olden benchmarks.

    Every benchmark provides a {!spec}: identity and problem-size strings
    (Table 1), the paper's heuristic-choice column (Table 2), a
    mini-language model of its kernel (so the compiler heuristic actually
    chooses the mechanisms the OCaml kernel uses), and a driver that builds
    the structure, runs the kernel between phase marks, and verifies the
    result against a sequential reference. *)

module C = Olden_config
module Ops = Olden_runtime.Ops
module Site = Olden_runtime.Site
module Engine = Olden_runtime.Engine
module Prng = Prng
module Heuristic = Olden_compiler.Heuristic
module Analysis = Olden_compiler.Analysis
module Trace = Olden_trace.Trace
module Json = Olden_trace.Json
module Monitor = Olden_monitor.Monitor

type outcome = {
  ok : bool;  (** result matches the sequential reference *)
  checksum : string;
  kernel_cycles : int;
  total_cycles : int;
  kernel_stats : Stats.t;
  total_stats : Stats.t;
}

type spec = {
  name : string;
  descr : string;  (** Table 1 description *)
  problem : string;  (** Table 1 problem size (at scale 1) *)
  choice : string;  (** paper's heuristic choice: "M" or "M+C" *)
  whole_program : bool;  (** Table 2's W marker *)
  heap_stable : bool;
      (** final heap is bit-identical across message-timing perturbations
          (no two concurrently-scheduled fibers allocate on the same
          processor); chaos runs compare heap digests only when it holds *)
  ir : string;  (** mini-language model of the kernel *)
  default_scale : int;  (** problem-size divisor used by the harness *)
  run : C.t -> scale:int -> outcome;
}

val measured_cycles : spec -> outcome -> int
(** Whole-program benchmarks report total time, the rest kernel-only. *)

val measured_stats : spec -> outcome -> Stats.t

type hooks = {
  mutable record_timeline : bool;
      (** When set, {!execute} records busy intervals and leaves a
          rendered Gantt chart in [last_timeline] (a driver
          convenience). *)
  mutable last_timeline : string option;
  mutable record_trace : bool;
      (** When set, {!execute} installs a trace collector for the run and
          leaves the event stream in [last_trace].  When clear the sink
          is left alone, so a caller may wrap the run in [Trace.collect]
          itself. *)
  mutable last_trace : Trace.event array option;
  mutable last_busy : int array;
      (** Per-processor busy cycles of the most recent {!execute}. *)
  mutable last_clocks : int array;
      (** Per-processor final clocks of the most recent {!execute}. *)
  mutable last_comm : int array;
      (** Per-processor communication-stall cycles of the most recent
          {!execute} (time blocked on request/reply round trips). *)
  mutable last_recovery_stall : int array;
      (** Per-processor crash-recovery stall cycles of the most recent
          {!execute} (all zero when the run had no fault schedule). *)
  mutable inspect_engine : (Engine.t -> unit) option;
      (** When set, {!execute} calls this with the finished engine before
          returning, while heap, caches, and directories are still
          reachable — the hook the chaos harness uses to run the
          invariant checker. *)
  mutable monitor_interval : int option;
      (** When set, {!execute} creates a {!Monitor} sampling at that
          simulated-cycle interval, installs it for the run, and leaves
          the finished monitor (final window flushed) in
          [last_monitor]. *)
  mutable last_monitor : Monitor.t option;
  mutable record_spans : bool;
      (** When set, {!execute} installs a causal span collector
          ({!Olden_span.Span}) for the run and leaves the span stream in
          [last_spans].  Independently of this flag, any run with a fault
          schedule enables the allocation-free flight recorder for its
          duration (contents are retained after the run for
          post-mortems). *)
  mutable last_spans : Olden_span.Span.span array option;
}

val hooks : unit -> hooks
(** The calling domain's driver hooks.  Domain-local: benchmark jobs
    running on different domains of the parallel sweep driver
    ({!Olden_parallel}) each see their own flags and results. *)

val site_name : int -> string option
(** Site-id to label lookup against the global registry (for trace
    summaries, per-site metric labels, and profiler tables); labels read
    ["field@function"], e.g. ["t->left@treeadd"]. *)

val metrics_snapshot :
  ?events:Trace.event array -> spec -> cfg:C.t -> scale:int -> outcome -> Json.t
(** Machine-readable run report (schema ["olden-metrics/v1"], documented
    in docs/OBSERVABILITY.md): run identity, Stats counters,
    per-processor busy/clock arrays, per-site profile, and — when an
    event stream is supplied — the event-derived metrics registry. *)

val execute : C.t -> program:(Engine.t -> string * bool) -> outcome
(** Run a benchmark program (which receives the engine so verification can
    inspect the heap at host level) and package the outcome; the region
    after an optional ["kernel"] phase mark is the measured kernel. *)

val sites_of_ir :
  string ->
  Heuristic.t
  * (func:string ->
    var:string ->
    field:string ->
    fallback:C.mechanism ->
    C.mechanism)
(** Run the heuristic on a benchmark's IR model; the returned function maps
    a dereference [func.var->field] to the mechanism the heuristic chose
    ([fallback] covers dereferences the model does not contain). *)

val site_of :
  (func:string ->
  var:string ->
  field:string ->
  fallback:C.mechanism ->
  C.mechanism) ->
  func:string ->
  var:string ->
  field:string ->
  fallback:C.mechanism ->
  Site.t
(** Create a runtime site carrying the heuristic's mechanism. *)

val block_owner : nprocs:int -> n:int -> int -> int
(** Processor owning block [i] of [n] under a blocked distribution
    (Figure 2). *)

val cyclic_owner : nprocs:int -> int -> int
(** Cyclic distribution (Figure 2). *)

val scaled : scale:int -> floor:int -> int -> int
(** [n / scale], but never below [floor]. *)

val commas : int -> string
(** [1234567] as ["1,234,567"]. *)
