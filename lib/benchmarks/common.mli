(** Shared infrastructure for the ten Olden benchmarks.

    Every benchmark provides a {!spec}: identity and problem-size strings
    (Table 1), the paper's heuristic-choice column (Table 2), a
    mini-language model of its kernel (so the compiler heuristic actually
    chooses the mechanisms the OCaml kernel uses), and a driver that builds
    the structure, runs the kernel between phase marks, and verifies the
    result against a sequential reference. *)

module C = Olden_config
module Ops = Olden_runtime.Ops
module Site = Olden_runtime.Site
module Engine = Olden_runtime.Engine
module Prng = Prng
module Heuristic = Olden_compiler.Heuristic
module Analysis = Olden_compiler.Analysis
module Trace = Olden_trace.Trace
module Json = Olden_trace.Json
module Monitor = Olden_monitor.Monitor

type outcome = {
  ok : bool;  (** result matches the sequential reference *)
  checksum : string;
  kernel_cycles : int;
  total_cycles : int;
  kernel_stats : Stats.t;
  total_stats : Stats.t;
}

type spec = {
  name : string;
  descr : string;  (** Table 1 description *)
  problem : string;  (** Table 1 problem size (at scale 1) *)
  choice : string;  (** paper's heuristic choice: "M" or "M+C" *)
  whole_program : bool;  (** Table 2's W marker *)
  heap_stable : bool;
      (** final heap is bit-identical across message-timing perturbations
          (no two concurrently-scheduled fibers allocate on the same
          processor); chaos runs compare heap digests only when it holds *)
  ir : string;  (** mini-language model of the kernel *)
  default_scale : int;  (** problem-size divisor used by the harness *)
  run : C.t -> scale:int -> outcome;
}

val measured_cycles : spec -> outcome -> int
(** Whole-program benchmarks report total time, the rest kernel-only. *)

val measured_stats : spec -> outcome -> Stats.t

val record_timeline : bool ref
(** When set, {!execute} records busy intervals and leaves a rendered
    Gantt chart in {!last_timeline} (a driver convenience). *)

val last_timeline : string option ref

val record_trace : bool ref
(** When set, {!execute} installs a trace collector for the run and
    leaves the event stream in {!last_trace}.  When clear the sink is
    left alone, so a caller may wrap the run in [Trace.collect] itself. *)

val last_trace : Trace.event array option ref

val record_spans : bool ref
(** When set, {!execute} installs a causal span collector
    ({!Olden_span.Span}) for the run and leaves the span stream in
    {!last_spans}.  Independently of this flag, any run with a fault
    schedule enables the allocation-free flight recorder for its
    duration (contents are retained after the run for post-mortems). *)

val last_spans : Olden_span.Span.span array option ref

val last_busy : int array ref
(** Per-processor busy cycles of the most recent {!execute}. *)

val last_clocks : int array ref
(** Per-processor final clocks of the most recent {!execute}. *)

val last_comm : int array ref
(** Per-processor communication-stall cycles of the most recent
    {!execute} (time blocked on request/reply round trips). *)

val last_recovery_stall : int array ref
(** Per-processor crash-recovery stall cycles of the most recent
    {!execute} (all zero when the run had no fault schedule). *)

val inspect_engine : (Engine.t -> unit) option ref
(** When set, {!execute} calls this with the finished engine before
    returning, while heap, caches, and directories are still reachable —
    the hook the chaos harness uses to run the invariant checker. *)

val monitor_interval : int option ref
(** When set, {!execute} creates a {!Monitor} sampling at that
    simulated-cycle interval, installs it for the run, and leaves the
    finished monitor (final window flushed) in {!last_monitor}. *)

val last_monitor : Monitor.t option ref

val site_name : int -> string option
(** Site-id to label lookup against the global registry (for trace
    summaries, per-site metric labels, and profiler tables); labels read
    ["field@function"], e.g. ["t->left@treeadd"]. *)

val metrics_snapshot :
  ?events:Trace.event array -> spec -> cfg:C.t -> scale:int -> outcome -> Json.t
(** Machine-readable run report (schema ["olden-metrics/v1"], documented
    in docs/OBSERVABILITY.md): run identity, Stats counters,
    per-processor busy/clock arrays, per-site profile, and — when an
    event stream is supplied — the event-derived metrics registry. *)

val execute : C.t -> program:(Engine.t -> string * bool) -> outcome
(** Run a benchmark program (which receives the engine so verification can
    inspect the heap at host level) and package the outcome; the region
    after an optional ["kernel"] phase mark is the measured kernel. *)

val sites_of_ir :
  string ->
  Heuristic.t
  * (func:string ->
    var:string ->
    field:string ->
    fallback:C.mechanism ->
    C.mechanism)
(** Run the heuristic on a benchmark's IR model; the returned function maps
    a dereference [func.var->field] to the mechanism the heuristic chose
    ([fallback] covers dereferences the model does not contain). *)

val site_of :
  (func:string ->
  var:string ->
  field:string ->
  fallback:C.mechanism ->
  C.mechanism) ->
  func:string ->
  var:string ->
  field:string ->
  fallback:C.mechanism ->
  Site.t
(** Create a runtime site carrying the heuristic's mechanism. *)

val block_owner : nprocs:int -> n:int -> int -> int
(** Processor owning block [i] of [n] under a blocked distribution
    (Figure 2). *)

val cyclic_owner : nprocs:int -> int -> int
(** Cyclic distribution (Figure 2). *)

val scaled : scale:int -> floor:int -> int -> int
(** [n / scale], but never below [floor]. *)

val commas : int -> string
(** [1234567] as ["1,234,567"]. *)
