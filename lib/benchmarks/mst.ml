(* MST: Bentley's parallel minimum-spanning-tree algorithm (Table 1: 1K
   nodes; heuristic choice M).

   Vertices are distributed blocked over the processors, each processor
   holding a linked list of its vertices.  Each of the N-1 phases applies
   the "blue rule": every processor scans its local vertices, refreshing
   their distance to the most recently inserted vertex (an edge-weight
   hash-table lookup in Olden; here a pure weight function charged the same
   lookup cost — the access pattern and costs are identical, without the
   O(N^2) table build), and returns its local minimum; the coordinator
   combines the P minima and inserts the winner.  The per-phase work is
   O(N/P) per processor against O(P) migrations, so communication dominates
   and speedup is poor and degrades with P, as the paper reports (the
   migrations "serve mostly as a mechanism for synchronization").

   The paper specifies explicit path-affinities for MST; the vertex list is
   perfectly local (100%), and the per-processor scan is futurecalled. *)

open Common

let ir =
  {|
struct vertex {
  vertex next @ 100;
  int mindist;
  int intree;
  int id;
}

struct bucket {
  vertex head @ 0;
  bucket nextp @ 100;
}

int blue_rule(vertex v, int inserted) {
  int best = 1000000000;
  while (v != null) {
    if (v->intree == 0) {
      int d = v->mindist;
      work(280);
      if (d < best) { best = d; }
      v->mindist = d;
    }
    v = v->next;
  }
  return best;
}

int do_all_blue_rule(bucket b, int inserted) {
  if (b == null) { return 1000000000; }
  int local = future blue_rule(b->head, inserted);
  int rest = do_all_blue_rule(b->nextp, inserted);
  int m = touch(local);
  if (m < rest) { return m; }
  return rest;
}
|}

(* Vertex record: next, mindist, intree, id. *)
let off_next = 0
let off_mindist = 1
let off_intree = 2
let off_id = 3
let vertex_words = 4

(* Per-processor bucket: head of the local vertex list, next bucket. *)
let off_head = 0
let off_nextp = 1
let bucket_words = 2

type sites = {
  s_next : Site.t;
  s_mindist : Site.t;
  s_intree : Site.t;
  s_id : Site.t;
  s_head : Site.t;
  s_nextp : Site.t;
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  let v = site_of mech ~func:"blue_rule" ~var:"v" ~fallback:C.Migrate in
  let b = site_of mech ~func:"do_all_blue_rule" ~var:"b" ~fallback:C.Migrate in
  {
    s_next = v ~field:"next";
    s_mindist = v ~field:"mindist";
    s_intree = v ~field:"intree";
    s_id = v ~field:"id";
    s_head = b ~field:"head";
    s_nextp = b ~field:"nextp";
  }

(* Edge weight: a deterministic hash of the vertex pair, standing in for
   Olden's per-vertex hash tables (same lookup pattern, cost charged
   below). *)
let weight i j =
  let i, j = if i < j then (i, j) else (j, i) in
  let h = (i * 1000003) lxor (j * 998244353) in
  let h = h lxor (h lsr 17) in
  (h land 0xffff) + 1

let hash_lookup_cost = 280
let infinity_dist = 1_000_000_000

(* --- Pure OCaml reference: Prim's algorithm over the same weights ----- *)

let reference n =
  let mindist = Array.make n infinity_dist in
  let intree = Array.make n false in
  intree.(0) <- true;
  let total = ref 0 in
  let inserted = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref infinity_dist and besti = ref (-1) in
    for v = 0 to n - 1 do
      if not intree.(v) then begin
        let d = min mindist.(v) (weight v !inserted) in
        mindist.(v) <- d;
        if d < !best then begin
          best := d;
          besti := v
        end
      end
    done;
    total := !total + !best;
    intree.(!besti) <- true;
    inserted := !besti
  done;
  !total

(* --- The Olden program ------------------------------------------------- *)

(* Build the vertex lists: vertex i on processor [block_owner i], chained
   per processor, plus a chain of per-processor buckets rooted on
   processor 0. *)
let build sites n =
  let nprocs = Ops.nprocs () in
  let vertices =
    Array.init n (fun i ->
        let proc = block_owner ~nprocs ~n i in
        let v = Ops.alloc ~proc vertex_words in
        Ops.store_int sites.s_mindist v off_mindist infinity_dist;
        Ops.store_int sites.s_intree v off_intree 0;
        Ops.store_int sites.s_id v off_id i;
        v)
  in
  (* chain vertices per processor, in increasing index order *)
  let heads = Array.make nprocs Gptr.null in
  for i = n - 1 downto 0 do
    let proc = block_owner ~nprocs ~n i in
    Ops.store_ptr sites.s_next vertices.(i) off_next heads.(proc);
    heads.(proc) <- vertices.(i)
  done;
  (* bucket cells all live with the coordinator on processor 0: walking
     the chain is local, and each futurecalled scan migrates to its
     processor at its first vertex dereference *)
  let buckets =
    Array.init nprocs (fun p ->
        let b = Ops.alloc ~proc:0 bucket_words in
        Ops.store_ptr sites.s_head b off_head heads.(p);
        b)
  in
  (* chain highest processor first: the coordinator (processor 0) spawns
     the remote scans before falling into its own, which runs inline *)
  for p = 0 to nprocs - 1 do
    Ops.store_ptr sites.s_nextp buckets.(p) off_nextp
      (if p = 0 then Gptr.null else buckets.(p - 1))
  done;
  (vertices, buckets.(nprocs - 1))

(* One processor's blue-rule scan: walk the local vertex list, refresh
   distances against the newly inserted vertex, return the local minimum
   (encoded as dist * 2^20 + id so the coordinator can pick the argmin). *)
let rec blue_rule sites v ~inserted best =
  if Gptr.is_null v then best
  else begin
    let intree = Ops.load_int sites.s_intree v off_intree in
    let best =
      if intree = 0 then begin
        let id = Ops.load_int sites.s_id v off_id in
        let d0 = Ops.load_int sites.s_mindist v off_mindist in
        Ops.work hash_lookup_cost;
        let d = min d0 (weight id inserted) in
        Ops.store_int sites.s_mindist v off_mindist d;
        min best ((d lsl 20) lor id)
      end
      else best
    in
    blue_rule sites (Ops.load_ptr sites.s_next v off_next) ~inserted best
  end

(* Spawn one scan per processor; the body's first dereference (the bucket's
   vertex-list head) migrates it to that processor. *)
let rec do_all_blue_rule sites bucket ~inserted =
  if Gptr.is_null bucket then max_int
  else begin
    let head = Ops.load_ptr sites.s_head bucket off_head in
    let fut =
      Ops.future (fun () ->
          Value.Int (blue_rule sites head ~inserted max_int))
    in
    let rest =
      do_all_blue_rule sites
        (Ops.load_ptr sites.s_nextp bucket off_nextp)
        ~inserted
    in
    min (Value.to_int (Ops.touch fut)) rest
  end

let kernel sites ~n ~vertices ~bucket0 =
  let total = ref 0 in
  let inserted = ref 0 in
  for _ = 1 to n - 1 do
    let enc =
      Ops.call (fun () -> do_all_blue_rule sites bucket0 ~inserted:!inserted)
    in
    let best = enc lsr 20 and besti = enc land 0xfffff in
    total := !total + best;
    inserted := besti;
    (* insert the winner: the coordinator updates it (and returns) *)
    Ops.call (fun () ->
        Ops.store_int sites.s_intree vertices.(besti) off_intree 1);
    Ops.work 30
  done;
  !total

let run cfg ~scale =
  let n = scaled ~scale ~floor:64 1024 in
  execute cfg ~program:(fun _engine ->
      let sites = make_sites () in
      let vertices, bucket0 = build sites n in
      (* vertex 0 starts in the tree *)
      Ops.store_int sites.s_intree vertices.(0) off_intree 1;
      Ops.phase "kernel";
      let total = Ops.call (fun () -> kernel sites ~n ~vertices ~bucket0) in
      let expected = reference n in
      (Printf.sprintf "mst=%d" total, total = expected))

let spec =
  {
    name = "MST";
    descr = "Computes the minimum spanning tree of a graph";
    problem = "1K nodes";
    choice = "M";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 2;
    run;
  }
