(* Voronoi: the Voronoi diagram of a point set (Table 1: 64K points;
   heuristic choice M+C), computed as its dual — the Delaunay
   triangulation — with the Guibas-Stolfi divide-and-conquer algorithm on
   quad-edges.

   The divide phase solves the two halves of the x-sorted points (the
   first as a futurecall whose body migrates to the half's processors);
   the conquer phase walks the convex hulls of the two subresults,
   alternating between them irregularly while it knits them together.
   As the paper describes, the heuristic pins the merge on the processor
   that owns one subresult and brings the other in through the cache: all
   quad-edge and point dereferences in the merge are cached, and only the
   descent into a subproblem migrates.

   A quad-edge record holds four directed edge parts; an edge reference is
   (record, rotation).  Each part stores its onext reference (record and
   rotation words) and its origin point. *)

open Common

let ir =
  {|
struct qedge {
  qedge onextr @ 70;
  point data @ 70;
  int onextrot;
  int alive;
}

struct point {
  float x;
  float y;
}

struct anchor {
  anchor range @ 30;
}

int merge_hulls(qedge basel) {
  int n = 0;
  while (basel != null) {
    qedge lcand = basel->onextr;
    float x = lcand->data->x;
    work(60);
    basel = basel->onextr;
    n = n + 1;
  }
  return n;
}

int delaunay(anchor a, int depth) {
  if (depth == 0) { work(200); return 1; }
  int l = future delaunay(a->range, depth - 1);
  int r = delaunay(a->range, depth - 1);
  int m = merge_hulls(null);
  return touch(l) + r + m;
}
|}

(* Edge record: 4 parts of [next_rec; next_rot; data] at offsets 3*rot,
   plus an alive flag at offset 12. *)
let part_next_rec rot = 3 * rot
let part_next_rot rot = (3 * rot) + 1
let part_data rot = (3 * rot) + 2
let off_alive = 12
let edge_words = 13

let p_x = 0
let p_y = 1
let point_words = 2

let anchor_words = 1

type sites = {
  s_next : Site.t; (* onext record/rot words: cache *)
  s_data : Site.t; (* origin point pointers: cache *)
  s_point : Site.t; (* point coordinates: cache *)
  s_anchor : Site.t; (* per-range anchors: migrate (moves the builder) *)
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  {
    s_next =
      site_of mech ~func:"merge_hulls" ~var:"basel" ~field:"onextr"
        ~fallback:C.Cache;
    s_data =
      site_of mech ~func:"merge_hulls" ~var:"lcand" ~field:"data"
        ~fallback:C.Cache;
    s_point = Site.cache "voronoi.point.x";
    s_anchor =
      site_of mech ~func:"delaunay" ~var:"a" ~field:"range" ~fallback:C.Migrate;
  }

let ccw_work = 60
let incircle_work = 150
let makeedge_work = 80
let splice_work = 50

(* --- Host-side reference (the validated prototype) --------------------- *)

module Reference = struct
  type point = { px : float; py : float; idx : int }

  type record_ = {
    rid : int;
    next : (record_ * int) array;
    data : point option array;
    mutable alive : bool;
  }

  type eref = record_ * int

  let all_records : record_ list ref = ref []
  let next_id = ref 0

  let rot ((r, i) : eref) : eref = (r, (i + 1) land 3)
  let sym ((r, i) : eref) : eref = (r, (i + 2) land 3)
  let invrot ((r, i) : eref) : eref = (r, (i + 3) land 3)
  let onext ((r, i) : eref) : eref = r.next.(i)
  let oprev e = rot (onext (rot e))
  let lnext e = rot (onext (invrot e))
  let rprev e = onext (sym e)
  let org ((r, i) : eref) = match r.data.(i) with Some p -> p | None -> assert false
  let dest e = org (sym e)
  let set_onext ((r, i) : eref) (t : eref) = r.next.(i) <- t

  let dummy_record = { rid = -1; next = [||]; data = [||]; alive = false }

  let make_edge a b : eref =
    incr next_id;
    let r =
      {
        rid = !next_id;
        next = Array.make 4 (dummy_record, 0);
        data = [| Some a; None; Some b; None |];
        alive = true;
      }
    in
    r.next.(0) <- (r, 0);
    r.next.(1) <- (r, 3);
    r.next.(2) <- (r, 2);
    r.next.(3) <- (r, 1);
    all_records := r :: !all_records;
    (r, 0)

  let splice a b =
    let alpha = rot (onext a) and beta = rot (onext b) in
    let ta = onext a and tb = onext b in
    set_onext a tb;
    set_onext b ta;
    let talpha = onext alpha and tbeta = onext beta in
    set_onext alpha tbeta;
    set_onext beta talpha

  let connect a b =
    let e = make_edge (dest a) (org b) in
    splice e (lnext a);
    splice (sym e) b;
    e

  let delete_edge e =
    splice e (oprev e);
    splice (sym e) (oprev (sym e));
    (fst e).alive <- false

  let ccw a b c =
    ((b.px -. a.px) *. (c.py -. a.py)) -. ((b.py -. a.py) *. (c.px -. a.px)) > 0.

  let in_circle a b c d =
    let az = (a.px *. a.px) +. (a.py *. a.py) in
    let bz = (b.px *. b.px) +. (b.py *. b.py) in
    let cz = (c.px *. c.px) +. (c.py *. c.py) in
    let dz = (d.px *. d.px) +. (d.py *. d.py) in
    let m11 = a.px -. d.px and m12 = a.py -. d.py and m13 = az -. dz in
    let m21 = b.px -. d.px and m22 = b.py -. d.py and m23 = bz -. dz in
    let m31 = c.px -. d.px and m32 = c.py -. d.py and m33 = cz -. dz in
    (m11 *. ((m22 *. m33) -. (m23 *. m32)))
    -. (m12 *. ((m21 *. m33) -. (m23 *. m31)))
    +. (m13 *. ((m21 *. m32) -. (m22 *. m31)))
    > 0.

  let rightof p e = ccw p (dest e) (org e)
  let leftof p e = ccw p (org e) (dest e)

  let rec delaunay (pts : point array) lo hi : eref * eref =
    let n = hi - lo in
    if n = 2 then begin
      let a = make_edge pts.(lo) pts.(lo + 1) in
      (a, sym a)
    end
    else if n = 3 then begin
      let s1 = pts.(lo) and s2 = pts.(lo + 1) and s3 = pts.(lo + 2) in
      let a = make_edge s1 s2 in
      let b = make_edge s2 s3 in
      splice (sym a) b;
      if ccw s1 s2 s3 then begin
        let _c = connect b a in
        (a, sym b)
      end
      else if ccw s1 s3 s2 then begin
        let c = connect b a in
        (sym c, c)
      end
      else (a, sym b)
    end
    else begin
      let mid = (lo + hi) / 2 in
      let ldo, ldi = delaunay pts lo mid in
      let rdi, rdo = delaunay pts mid hi in
      let ldi = ref ldi and rdi = ref rdi and ldo = ref ldo and rdo = ref rdo in
      let continue_ = ref true in
      while !continue_ do
        if leftof (org !rdi) !ldi then ldi := lnext !ldi
        else if rightof (org !ldi) !rdi then rdi := rprev !rdi
        else continue_ := false
      done;
      let basel = ref (connect (sym !rdi) !ldi) in
      if org !ldi == org !ldo then ldo := sym !basel;
      if org !rdi == org !rdo then rdo := !basel;
      let merging = ref true in
      while !merging do
        let valid e = rightof (dest e) !basel in
        let lcand = ref (onext (sym !basel)) in
        if valid !lcand then begin
          while
            in_circle (dest !basel) (org !basel) (dest !lcand)
              (dest (onext !lcand))
          do
            let t = onext !lcand in
            delete_edge !lcand;
            lcand := t
          done
        end;
        let rcand = ref (oprev !basel) in
        if valid !rcand then begin
          while
            in_circle (dest !basel) (org !basel) (dest !rcand)
              (dest (oprev !rcand))
          do
            let t = oprev !rcand in
            delete_edge !rcand;
            rcand := t
          done
        end;
        if (not (valid !lcand)) && not (valid !rcand) then merging := false
        else if
          (not (valid !lcand))
          || (valid !rcand
             && in_circle (dest !lcand) (org !lcand) (org !rcand) (dest !rcand))
        then basel := connect !rcand (sym !basel)
        else basel := connect (sym !basel) (sym !lcand)
      done;
      (!ldo, !rdo)
    end

  (* The dual, mirrored: circumcentres of triangular left faces, in the
     same enumeration order as the simulated extraction. *)
  let circumcenter (ax, ay) (bx, by) (cx, cy) =
    let d =
      2. *. ((ax *. (by -. cy)) +. (bx *. (cy -. ay)) +. (cx *. (ay -. by)))
    in
    if Float.abs d < 1e-18 then None
    else begin
      let a2 = (ax *. ax) +. (ay *. ay) in
      let b2 = (bx *. bx) +. (by *. by) in
      let c2 = (cx *. cx) +. (cy *. cy) in
      let ux =
        ((a2 *. (by -. cy)) +. (b2 *. (cy -. ay)) +. (c2 *. (ay -. by))) /. d
      in
      let uy =
        ((a2 *. (cx -. bx)) +. (b2 *. (ax -. cx)) +. (c2 *. (bx -. ax))) /. d
      in
      Some (ux, uy)
    end

  let voronoi_vertices alive =
    let module S = Set.Make (struct
      type t = int * int

      let compare = compare
    end) in
    let seen = ref S.empty in
    let vertices = ref [] in
    (* records are cyclic: compare edge parts by id, never structurally *)
    let same (r1, i1) (r2, i2) = r1.rid = r2.rid && i1 = i2 in
    List.iter
      (fun e ->
        List.iter
          (fun e ->
            let rec cycle acc cur steps =
              if steps > 4 then None
              else begin
                let next = lnext cur in
                if same next e then Some (List.rev (cur :: acc))
                else cycle (cur :: acc) next (steps + 1)
              end
            in
            match cycle [] e 0 with
            | Some ([ _; _; _ ] as face) ->
                let part_key (r, i) = (r.rid * 4) + i in
                let face_id =
                  (List.fold_left (fun acc p -> min acc (part_key p)) max_int face, 0)
                in
                if not (S.mem face_id !seen) then begin
                  seen := S.add face_id !seen;
                  let pts =
                    List.map (fun part -> let p = org part in (p.px, p.py)) face
                  in
                  let pts =
                    match pts with
                    | [ a; b; c ] ->
                        if a <= b && a <= c then [ a; b; c ]
                        else if b <= a && b <= c then [ b; c; a ]
                        else [ c; a; b ]
                    | l -> l
                  in
                  match pts with
                  | [ a; b; c ] -> (
                      match circumcenter a b c with
                      | Some v -> vertices := v :: !vertices
                      | None -> ())
                  | _ -> ()
                end
            | _ -> ())
          [ e; sym e ])
      alive;
    !vertices

  (* Returns the alive (org, dest) index pairs plus the dual's vertices. *)
  let run pts_raw =
    all_records := [];
    next_id := 0;
    let pts =
      Array.mapi (fun i (x, y) -> { px = x; py = y; idx = i }) pts_raw
    in
    ignore (delaunay pts 0 (Array.length pts));
    let alive = List.filter (fun r -> r.alive) !all_records in
    let pairs =
      List.map
        (fun r ->
          let o = match r.data.(0) with Some p -> p.idx | None -> -1 in
          let d = match r.data.(2) with Some p -> p.idx | None -> -1 in
          (min o d, max o d))
        alive
    in
    let dual = voronoi_vertices (List.map (fun r -> (r, 0)) alive) in
    (List.sort compare pairs, dual)
end

(* --- The Olden program ------------------------------------------------- *)

type eref = Gptr.t * int

type state = {
  sites : sites;
  mutable records : Gptr.t list; (* every quad-edge record allocated *)
  point_index : (Gptr.t, int) Hashtbl.t;
}

let rot ((r, i) : eref) : eref = (r, (i + 1) land 3)
let sym ((r, i) : eref) : eref = (r, (i + 2) land 3)
let invrot ((r, i) : eref) : eref = (r, (i + 3) land 3)

let onext st ((r, i) : eref) : eref =
  let rec_ = Ops.load_ptr st.sites.s_next r (part_next_rec i) in
  let rot_ = Ops.load_int st.sites.s_next r (part_next_rot i) in
  (rec_, rot_)

let set_onext st ((r, i) : eref) ((tr, ti) : eref) =
  Ops.store_ptr st.sites.s_next r (part_next_rec i) tr;
  Ops.store_int st.sites.s_next r (part_next_rot i) ti

let oprev st e = rot (onext st (rot e))
let lnext st e = rot (onext st (invrot e))
let rprev st e = onext st (sym e)

let org st ((r, i) : eref) = Ops.load_ptr st.sites.s_data r (part_data i)
let dest st e = org st (sym e)

let coords st p =
  ( Ops.load_float st.sites.s_point p p_x,
    Ops.load_float st.sites.s_point p p_y )

let make_edge st a b : eref =
  let r = Ops.alloc ~proc:(Ops.self ()) edge_words in
  st.records <- r :: st.records;
  Ops.work makeedge_work;
  set_onext st (r, 0) (r, 0);
  set_onext st (r, 1) (r, 3);
  set_onext st (r, 2) (r, 2);
  set_onext st (r, 3) (r, 1);
  Ops.store_ptr st.sites.s_data r (part_data 0) a;
  Ops.store_ptr st.sites.s_data r (part_data 1) Gptr.null;
  Ops.store_ptr st.sites.s_data r (part_data 2) b;
  Ops.store_ptr st.sites.s_data r (part_data 3) Gptr.null;
  Ops.store_int st.sites.s_data r off_alive 1;
  (r, 0)

let splice st a b =
  Ops.work splice_work;
  let alpha = rot (onext st a) and beta = rot (onext st b) in
  let ta = onext st a and tb = onext st b in
  set_onext st a tb;
  set_onext st b ta;
  let talpha = onext st alpha and tbeta = onext st beta in
  set_onext st alpha tbeta;
  set_onext st beta talpha

let connect st a b =
  let e = make_edge st (dest st a) (org st b) in
  splice st e (lnext st a);
  splice st (sym e) b;
  e

let delete_edge st e =
  splice st e (oprev st e);
  splice st (sym e) (oprev st (sym e));
  Ops.store_int st.sites.s_data (fst e) off_alive 0

let ccw st a b c =
  let ax, ay = coords st a and bx, by = coords st b and cx, cy = coords st c in
  Ops.work ccw_work;
  ((bx -. ax) *. (cy -. ay)) -. ((by -. ay) *. (cx -. ax)) > 0.

let in_circle st a b c d =
  let ax, ay = coords st a and bx, by = coords st b in
  let cx, cy = coords st c and dx, dy = coords st d in
  Ops.work incircle_work;
  let az = (ax *. ax) +. (ay *. ay) in
  let bz = (bx *. bx) +. (by *. by) in
  let cz = (cx *. cx) +. (cy *. cy) in
  let dz = (dx *. dx) +. (dy *. dy) in
  let m11 = ax -. dx and m12 = ay -. dy and m13 = az -. dz in
  let m21 = bx -. dx and m22 = by -. dy and m23 = bz -. dz in
  let m31 = cx -. dx and m32 = cy -. dy and m33 = cz -. dz in
  (m11 *. ((m22 *. m33) -. (m23 *. m32)))
  -. (m12 *. ((m21 *. m33) -. (m23 *. m31)))
  +. (m13 *. ((m21 *. m32) -. (m22 *. m31)))
  > 0.

let rightof st p e = ccw st p (dest st e) (org st e)
let leftof st p e = ccw st p (org st e) (dest st e)

(* Points and range anchors are blocked over the processors; the anchor
   dereference at the head of each subproblem migrates the builder to its
   half. *)
let rec delaunay st (points : Gptr.t array) (anchors : Gptr.t array) lo hi
    ~span : eref * eref =
  (* touch this range's anchor: moves the thread to the range's processor *)
  ignore (Ops.load_ptr st.sites.s_anchor anchors.(lo) 0);
  let n = hi - lo in
  if n = 2 then begin
    let a = make_edge st points.(lo) points.(lo + 1) in
    (a, sym a)
  end
  else if n = 3 then begin
    let s1 = points.(lo) and s2 = points.(lo + 1) and s3 = points.(lo + 2) in
    let a = make_edge st s1 s2 in
    let b = make_edge st s2 s3 in
    splice st (sym a) b;
    if ccw st s1 s2 s3 then begin
      let _c = connect st b a in
      (a, sym b)
    end
    else if ccw st s1 s3 s2 then begin
      let c = connect st b a in
      (sym c, c)
    end
    else (a, sym b)
  end
  else begin
    let mid = (lo + hi) / 2 in
    let half = max 1 (span / 2) in
    let (ldo, ldi), (rdi, rdo) =
      if span >= 2 then begin
        (* futurecall the *right* half: its anchors live on the upper
           processors, so the body's first dereference migrates and the
           spawner's continuation (the local left half) is stolen *)
        let fut =
          Ops.future (fun () ->
              let r, o = delaunay st points anchors mid hi ~span:half in
              let cell = Ops.alloc ~proc:(Ops.self ()) 4 in
              Ops.store_ptr st.sites.s_data cell 0 (fst r);
              Ops.store_int st.sites.s_data cell 1 (snd r);
              Ops.store_ptr st.sites.s_data cell 2 (fst o);
              Ops.store_int st.sites.s_data cell 3 (snd o);
              Value.Ptr cell)
        in
        let left = delaunay st points anchors lo mid ~span:half in
        let cell = Value.to_ptr (Ops.touch fut) in
        let rdi =
          ( Ops.load_ptr st.sites.s_data cell 0,
            Ops.load_int st.sites.s_data cell 1 )
        in
        let rdo =
          ( Ops.load_ptr st.sites.s_data cell 2,
            Ops.load_int st.sites.s_data cell 3 )
        in
        (left, (rdi, rdo))
      end
      else
        ( delaunay st points anchors lo mid ~span:1,
          delaunay st points anchors mid hi ~span:1 )
    in
    (* the merge: pinned here; remote subresults arrive through the cache *)
    let ldi = ref ldi and rdi = ref rdi and ldo = ref ldo and rdo = ref rdo in
    let continue_ = ref true in
    while !continue_ do
      if leftof st (org st !rdi) !ldi then ldi := lnext st !ldi
      else if rightof st (org st !ldi) !rdi then rdi := rprev st !rdi
      else continue_ := false
    done;
    let basel = ref (connect st (sym !rdi) !ldi) in
    if Gptr.equal (org st !ldi) (org st !ldo) then ldo := sym !basel;
    if Gptr.equal (org st !rdi) (org st !rdo) then rdo := !basel;
    let merging = ref true in
    while !merging do
      let valid e = rightof st (dest st e) !basel in
      let lcand = ref (onext st (sym !basel)) in
      if valid !lcand then begin
        while
          in_circle st (dest st !basel) (org st !basel) (dest st !lcand)
            (dest st (onext st !lcand))
        do
          let t = onext st !lcand in
          delete_edge st !lcand;
          lcand := t
        done
      end;
      let rcand = ref (oprev st !basel) in
      if valid !rcand then begin
        while
          in_circle st (dest st !basel) (org st !basel) (dest st !rcand)
            (dest st (oprev st !rcand))
        do
          let t = oprev st !rcand in
          delete_edge st !rcand;
          rcand := t
        done
      end;
      if (not (valid !lcand)) && not (valid !rcand) then merging := false
      else if
        (not (valid !lcand))
        || (valid !rcand
           && in_circle st (dest st !lcand) (org st !lcand) (org st !rcand)
                (dest st !rcand))
      then basel := connect st !rcand (sym !basel)
      else basel := connect st (sym !basel) (sym !lcand)
    done;
    (!ldo, !rdo)
  end

(* --- The dual: the Voronoi diagram itself ------------------------------ *)

(* Each bounded face of the Delaunay triangulation contributes one Voronoi
   vertex — its circumcentre; each Delaunay edge crosses one Voronoi edge.
   The faces are enumerated by walking each alive edge's left-face (lnext)
   cycle; triangular cycles yield a vertex, the outer face (a longer
   cycle) is skipped.  Runs on the simulated machine with cached reads,
   like the merge. *)
let circumcenter (ax, ay) (bx, by) (cx, cy) =
  let d = 2. *. ((ax *. (by -. cy)) +. (bx *. (cy -. ay)) +. (cx *. (ay -. by))) in
  if Float.abs d < 1e-18 then None
  else begin
    let a2 = (ax *. ax) +. (ay *. ay) in
    let b2 = (bx *. bx) +. (by *. by) in
    let c2 = (cx *. cx) +. (cy *. cy) in
    let ux = ((a2 *. (by -. cy)) +. (b2 *. (cy -. ay)) +. (c2 *. (ay -. by))) /. d in
    let uy = ((a2 *. (cx -. bx)) +. (b2 *. (ax -. cx)) +. (c2 *. (bx -. ax))) /. d in
    Some (ux, uy)
  end

(* Enumerate Voronoi vertices: one per triangular left face, keyed by the
   face's canonical (minimal) edge part so each face counts once within a
   group (faces straddling groups are deduplicated by the caller). *)
let voronoi_vertices st ~alive =
  let module S = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let seen = ref S.empty in
  let vertices = ref [] in
  List.iter
    (fun (e : eref) ->
      List.iter
        (fun e ->
          (* walk the left-face cycle *)
          let rec cycle acc cur steps =
            if steps > 4 then None (* outer face: not a triangle *)
            else begin
              let next = lnext st cur in
              if next = e then Some (List.rev (cur :: acc))
              else cycle (cur :: acc) next (steps + 1)
            end
          in
          match cycle [] e 0 with
          | Some ([ _; _; _ ] as face) ->
              let part_key (r, i) = (((r : Gptr.t) :> int) * 4) + i in
              let face_id =
                (List.fold_left (fun acc p -> min acc (part_key p)) max_int face, 0)
              in
              if not (S.mem face_id !seen) then begin
                seen := S.add face_id !seen;
                (* rotate the cycle so it starts at the lexicographically
                   smallest origin point: intrinsic to the face, so the
                   circumcentre's operand order is independent of discovery
                   order and of the parallel schedule *)
                let pts =
                  List.map (fun part -> coords st (org st part)) face
                in
                Ops.work 120 (* circumcentre computation *);
                let pts =
                  match pts with
                  | [ a; b; c ] ->
                      if a <= b && a <= c then [ a; b; c ]
                      else if b <= a && b <= c then [ b; c; a ]
                      else [ c; a; b ]
                  | l -> l
                in
                match pts with
                | [ a; b; c ] -> (
                    match circumcenter a b c with
                    | Some v -> vertices := (face_id, v) :: !vertices
                    | None -> ())
                | _ -> ()
              end
          | _ -> ())
        [ e; sym e ])
    alive;
  !vertices

let points_for scale = scaled ~scale ~floor:64 65536

let run cfg ~scale =
  let n = points_for scale in
  execute cfg ~program:(fun engine ->
      let sites = make_sites () in
      let nprocs = Ops.nprocs () in
      let prng = Prng.create cfg.Olden_config.seed in
      let raw = Array.init n (fun _ -> (Prng.float prng, Prng.float prng)) in
      Array.sort compare raw;
      let st = { sites; records = []; point_index = Hashtbl.create (2 * n) } in
      let points =
        Array.mapi
          (fun i (x, y) ->
            let p = Ops.alloc ~proc:(block_owner ~nprocs ~n i) point_words in
            Ops.store_float sites.s_point p p_x x;
            Ops.store_float sites.s_point p p_y y;
            Hashtbl.replace st.point_index p i;
            p)
          raw
      in
      let anchors =
        Array.init n (fun i ->
            let a = Ops.alloc ~proc:(block_owner ~nprocs ~n i) anchor_words in
            Ops.store_ptr sites.s_anchor a 0 Gptr.null;
            a)
      in
      Ops.phase "kernel";
      let _hull =
        Ops.call (fun () -> delaunay st points anchors 0 n ~span:nprocs)
      in
      (* the diagram itself: circumcentres of the Delaunay faces.  One
         thread per processor walks its own edges (migrating there first);
         faces straddling groups are computed by each and deduplicated. *)
      let pin = Site.migrate "voronoi.dual.pin" in
      (* equal-size chunks of the edge records, contiguous in the address
         space: balanced work with mostly-local reads.  Each chunk's walker
         pins itself on the processor owning the chunk's records and does
         its own alive-filtering there, locally. *)
      let sorted =
        List.sort
          (fun r1 r2 -> compare ((r1 : Gptr.t) :> int) ((r2 : Gptr.t) :> int))
          st.records
      in
      let total = List.length sorted in
      let chunk_size = max 1 ((total + nprocs - 1) / nprocs) in
      let groups = Array.make nprocs [] in
      List.iteri
        (fun i r ->
          let c = min (nprocs - 1) (i / chunk_size) in
          groups.(c) <- r :: groups.(c))
        sorted;
      let results = Array.make nprocs [] in
      let dual =
        Ops.call (fun () ->
            let futs =
              Array.mapi
                (fun p group ->
                  Ops.future (fun () ->
                      (match group with
                      | [] -> ()
                      | r :: _ ->
                          (* pin this walker on its chunk's processor *)
                          ignore (Ops.load pin r off_alive);
                          let alive =
                            List.filter_map
                              (fun r ->
                                if
                                  Ops.load_int st.sites.s_data r off_alive = 1
                                then Some (r, 0)
                                else None)
                              group
                          in
                          results.(p) <- voronoi_vertices st ~alive);
                      Value.Int 0))
                groups
            in
            Array.iter (fun f -> ignore (Ops.touch f)) futs;
            (* global dedup of faces computed by several groups *)
            let module S = Set.Make (struct
              type t = int * int

              let compare = compare
            end) in
            let seen = ref S.empty in
            let out = ref [] in
            Array.iter
              (List.iter (fun (face_id, v) ->
                   if not (S.mem face_id !seen) then begin
                     seen := S.add face_id !seen;
                     out := v :: !out
                   end))
              results;
            !out)
      in
      (* verification: alive-edge pair sets and the dual's vertices match
         the reference exactly *)
      let expected_pairs, expected_dual = Reference.run raw in
      let memory = Engine.memory engine in
      let pairs =
        List.filter_map
          (fun r ->
            if Value.to_int (Memory.load memory r off_alive) = 1 then begin
              let o = Value.to_ptr (Memory.load memory r (part_data 0)) in
              let d = Value.to_ptr (Memory.load memory r (part_data 2)) in
              let oi = Hashtbl.find st.point_index o in
              let di = Hashtbl.find st.point_index d in
              Some (min oi di, max oi di)
            end
            else None)
          st.records
        |> List.sort compare
      in
      let dual_matches =
        List.length dual = List.length expected_dual
        && List.for_all2
             (fun (x1, y1) (x2, y2) -> Float.equal x1 x2 && Float.equal y1 y2)
             (List.sort compare dual)
             (List.sort compare expected_dual)
      in
      let ok = pairs = expected_pairs && dual_matches in
      ( Printf.sprintf "points=%d edges=%d voronoi-vertices=%d" n
          (List.length pairs) (List.length dual),
        ok ))

let spec =
  {
    name = "Voronoi";
    descr = "Computes the Voronoi Diagram of a set of points";
    problem = "64K points";
    choice = "M+C";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 8;
    run;
  }
