(* Bisort: adaptive bitonic sort on a binary tree (Bilardi & Nicolau),
   Table 1: 128K integers; heuristic choice M+C.

   The values live in-order in a complete binary tree (plus one spare
   value).  [bisort] sorts the two halves in opposite directions, creating
   a bitonic sequence, then [bimerge] merges it.  The merge walks a pair of
   search pointers down the two subtrees — a tree *search*, which the
   heuristic caches (each iteration follows one child, affinity 70% below
   the threshold) — and exchanges whole subtrees by deeply swapping their
   values, which keeps the data layout intact for the second (backward)
   sort; those swaps touch a lot of data per processor, so they migrate.

   The kernel runs a forward and then a backward sort, as in the paper. *)

open Common

let ir =
  {|
struct node {
  node left;
  node right;
  int value;
}

int bimerge(node root, int spr, int dir) {
  node pl = root->left;
  node pr = root->right;
  while (pl != null) {
    work(10);
    if (pl->value > pr->value) {
      pl = pl->left;
      pr = pr->left;
    } else {
      pl = pl->right;
      pr = pr->right;
    }
  }
  if (root->left != null) {
    root->value = bimerge(root->left, root->value, dir);
    spr = bimerge(root->right, spr, dir);
  }
  return spr;
}

int bisort(node root, int spr, int dir) {
  if (root->left == null) { work(5); return spr; }
  root->value = future bisort(root->left, root->value, dir);
  spr = bisort(root->right, spr, 1 - dir);
  spr = bimerge(root, spr, dir);
  return spr;
}

void swaptree(node a, node b) {
  if (a == null) { return; }
  int t = a->value;
  a->value = b->value;
  b->value = t;
  swaptree(a->left, b->left);
  swaptree(a->right, b->right);
}
|}

let off_left = 0
let off_right = 1
let off_value = 2
let node_words = 3

type sites = {
  (* tree traversal and subtree swaps: migrate *)
  s_left : Site.t;
  s_right : Site.t;
  s_value : Site.t;
  (* the pl/pr search-pointer walk: cache *)
  s_wleft : Site.t;
  s_wright : Site.t;
  s_wvalue : Site.t;
  (* deep subtree swap: the thread follows one side (migrate), the other is
     brought to it through the cache — "at most one variable per loop is
     selected for computation migration" (Section 4) *)
  s_sa_left : Site.t;
  s_sa_right : Site.t;
  s_sa_value : Site.t;
  s_sb_left : Site.t;
  s_sb_right : Site.t;
  s_sb_value : Site.t;
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  let t = site_of mech ~func:"bisort" ~var:"root" ~fallback:C.Migrate in
  let w = site_of mech ~func:"bimerge" ~var:"pl" ~fallback:C.Cache in
  let sa = site_of mech ~func:"swaptree" ~var:"a" ~fallback:C.Migrate in
  let sb = site_of mech ~func:"swaptree" ~var:"b" ~fallback:C.Cache in
  {
    s_left = t ~field:"left";
    s_right = t ~field:"right";
    s_value = t ~field:"value";
    s_wleft = w ~field:"left";
    s_wright = w ~field:"right";
    s_wvalue = w ~field:"value";
    s_sa_left = sa ~field:"left";
    s_sa_right = sa ~field:"right";
    s_sa_value = sa ~field:"value";
    s_sb_left = sb ~field:"left";
    s_sb_right = sb ~field:"right";
    s_sb_value = sb ~field:"value";
  }

let step_work = 25

(* --- Host-side reference (same algorithm on a mirror tree) ------------- *)

module Reference = struct
  type node = { mutable value : int; left : node option; right : node option }

  let rec build vals lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      Some
        { value = vals.(mid); left = build vals lo mid; right = build vals (mid + 1) hi }

  let rec inorder t acc =
    match t with None -> acc | Some n -> inorder n.left (n.value :: inorder n.right acc)

  let rec deep_swap a b =
    match (a, b) with
    | None, None -> ()
    | Some x, Some y ->
        let t = x.value in
        x.value <- y.value;
        y.value <- t;
        deep_swap x.left y.left;
        deep_swap x.right y.right
    | None, Some _ | Some _, None -> assert false

  let get = function Some x -> x | None -> assert false

  let rec bimerge root spr dir =
    let rv = root.value in
    let rightexchange = rv > spr <> dir in
    let spr =
      if rightexchange then begin
        root.value <- spr;
        rv
      end
      else spr
    in
    let pl = ref root.left and pr = ref root.right in
    while !pl <> None do
      let l = get !pl and r = get !pr in
      let elementexchange = l.value > r.value <> dir in
      if rightexchange then
        if elementexchange then begin
          let t = l.value in
          l.value <- r.value;
          r.value <- t;
          deep_swap l.right r.right;
          pl := l.left;
          pr := r.left
        end
        else begin
          pl := l.right;
          pr := r.right
        end
      else if elementexchange then begin
        let t = l.value in
        l.value <- r.value;
        r.value <- t;
        deep_swap l.left r.left;
        pl := l.right;
        pr := r.right
      end
      else begin
        pl := l.left;
        pr := r.left
      end
    done;
    match root.left with
    | None -> spr
    | Some l ->
        root.value <- bimerge l root.value dir;
        bimerge (get root.right) spr dir

  let rec bisort root spr dir =
    match root.left with
    | None ->
        if root.value > spr <> dir then begin
          let t = root.value in
          root.value <- spr;
          t
        end
        else spr
    | Some l ->
        root.value <- bisort l root.value dir;
        let spr = bisort (get root.right) spr (not dir) in
        bimerge root spr dir

  (* Runs forward then backward; returns both observed sequences. *)
  let run vals =
    let n = Array.length vals in
    let root = get (build vals 0 (n - 1)) in
    let spr = bisort root vals.(n - 1) false in
    let fwd = inorder (Some root) [ spr ] in
    let spr = bisort root spr true in
    let bwd = inorder (Some root) [ spr ] in
    (fwd, bwd)
end

(* --- The Olden program ------------------------------------------------- *)

(* Build the in-order complete tree over vals[lo, hi), distributing
   subtrees over the processor range [plo, phi) TreeAdd-style: the
   futurecalled left child to the far half. *)
let build sites vals =
  let nprocs = Ops.nprocs () in
  let rec go lo hi plo phi =
    if lo >= hi then Gptr.null
    else begin
      let mid = (lo + hi) / 2 in
      let node = Ops.alloc ~proc:plo node_words in
      let pmid = (plo + phi) / 2 in
      let left, right =
        if phi - plo >= 2 then
          (go lo mid pmid phi, go (mid + 1) hi plo pmid)
        else (go lo mid plo phi, go (mid + 1) hi plo phi)
      in
      Ops.store_ptr sites.s_left node off_left left;
      Ops.store_ptr sites.s_right node off_right right;
      Ops.store_int sites.s_value node off_value vals.(mid);
      node
    end
  in
  Ops.call (fun () -> go 0 (Array.length vals - 1) 0 nprocs)

(* Deep value swap of two equal-shape subtrees (the paper's expensive
   "swap the trees, not the pointers").  Done in three sweeps — read one
   side, exchange on the other, write back — so the thread touches a large
   amount of data on each processor between migrations, as the paper
   describes, instead of bouncing per node pair. *)
let rec collect_values sites ~left_site ~right_site ~value_site node acc =
  if Gptr.is_null node then acc
  else begin
    let v = Ops.load_int value_site node off_value in
    Ops.work 20;
    let acc =
      collect_values sites ~left_site ~right_site ~value_site
        (Ops.load_ptr left_site node off_left)
        (v :: acc)
    in
    collect_values sites ~left_site ~right_site ~value_site
      (Ops.load_ptr right_site node off_right)
      acc
  end

(* Write [values] over the subtree (same traversal order as the
   collection), returning the leftovers and the subtree's old values. *)
let rec exchange_values sites ~left_site ~right_site ~value_site node values
    old_acc =
  if Gptr.is_null node then (values, old_acc)
  else begin
    match values with
    | [] -> (values, old_acc)
    | v :: rest ->
        let old = Ops.load_int value_site node off_value in
        Ops.store_int value_site node off_value v;
        Ops.work 25;
        let rest, old_acc =
          exchange_values sites ~left_site ~right_site ~value_site
            (Ops.load_ptr left_site node off_left)
            rest (old :: old_acc)
        in
        exchange_values sites ~left_site ~right_site ~value_site
          (Ops.load_ptr right_site node off_right)
          rest old_acc
  end

let rec write_values sites ~left_site ~right_site ~value_site node values =
  if Gptr.is_null node then values
  else begin
    match values with
    | [] -> values
    | v :: rest ->
        Ops.store_int value_site node off_value v;
        Ops.work 20;
        let rest =
          write_values sites ~left_site ~right_site ~value_site
            (Ops.load_ptr left_site node off_left)
            rest
        in
        write_values sites ~left_site ~right_site ~value_site
          (Ops.load_ptr right_site node off_right)
          rest
  end

let deep_swap sites a b =
  if not (Gptr.is_null a) then begin
    (* sweep 1: read b's values (its own walk stays on b's side) *)
    let b_vals =
      List.rev
        (collect_values sites ~left_site:sites.s_sb_left
           ~right_site:sites.s_sb_right ~value_site:sites.s_sb_value b [])
    in
    (* sweep 2: write them over a, collecting a's old values *)
    let _, a_old =
      exchange_values sites ~left_site:sites.s_sa_left
        ~right_site:sites.s_sa_right ~value_site:sites.s_sa_value a b_vals []
    in
    (* sweep 3: write a's old values over b *)
    ignore
      (write_values sites ~left_site:sites.s_sb_left
         ~right_site:sites.s_sb_right ~value_site:sites.s_sb_value b
         (List.rev a_old))
  end

let rec bimerge sites root spr dir ~span =
  let rv = Ops.load_int sites.s_value root off_value in
  let rightexchange = rv > spr <> dir in
  let spr =
    if rightexchange then begin
      Ops.store_int sites.s_value root off_value spr;
      rv
    end
    else spr
  in
  (* the search-pointer walk: cached dereferences *)
  let pl = ref (Ops.load_ptr sites.s_wleft root off_left) in
  let pr = ref (Ops.load_ptr sites.s_wright root off_right) in
  while not (Gptr.is_null !pl) do
    let lv = Ops.load_int sites.s_wvalue !pl off_value in
    let rv = Ops.load_int sites.s_wvalue !pr off_value in
    Ops.work step_work;
    let elementexchange = lv > rv <> dir in
    if rightexchange then
      if elementexchange then begin
        Ops.store_int sites.s_wvalue !pl off_value rv;
        Ops.store_int sites.s_wvalue !pr off_value lv;
        Ops.call (fun () ->
            deep_swap sites
              (Ops.load_ptr sites.s_wright !pl off_right)
              (Ops.load_ptr sites.s_wright !pr off_right));
        pl := Ops.load_ptr sites.s_wleft !pl off_left;
        pr := Ops.load_ptr sites.s_wleft !pr off_left
      end
      else begin
        pl := Ops.load_ptr sites.s_wright !pl off_right;
        pr := Ops.load_ptr sites.s_wright !pr off_right
      end
    else if elementexchange then begin
      Ops.store_int sites.s_wvalue !pl off_value rv;
      Ops.store_int sites.s_wvalue !pr off_value lv;
      Ops.call (fun () ->
          deep_swap sites
            (Ops.load_ptr sites.s_wleft !pl off_left)
            (Ops.load_ptr sites.s_wleft !pr off_left));
      pl := Ops.load_ptr sites.s_wright !pl off_right;
      pr := Ops.load_ptr sites.s_wright !pr off_right
    end
    else begin
      pl := Ops.load_ptr sites.s_wleft !pl off_left;
      pr := Ops.load_ptr sites.s_wleft !pr off_left
    end
  done;
  let left = Ops.load_ptr sites.s_left root off_left in
  if Gptr.is_null left then spr
  else begin
    let rv = Ops.load_int sites.s_value root off_value in
    Ops.work 12;
    let half = max 1 (span / 2) in
    if span >= 2 then begin
      (* the two sub-merges are independent: futurecall the left one *)
      let fut =
        Ops.future (fun () -> Value.Int (bimerge sites left rv dir ~span:half))
      in
      let right = Ops.load_ptr sites.s_right root off_right in
      let spr = Ops.call (fun () -> bimerge sites right spr dir ~span:half) in
      Ops.store_int sites.s_value root off_value (Value.to_int (Ops.touch fut));
      spr
    end
    else begin
      Ops.store_int sites.s_value root off_value
        (Ops.call (fun () -> bimerge sites left rv dir ~span:1));
      let right = Ops.load_ptr sites.s_right root off_right in
      Ops.call (fun () -> bimerge sites right spr dir ~span:1)
    end
  end

(* [span] is the number of processors under this subtree; futurecalls only
   pay off while subtrees span processors (below that no migration can
   occur, so no thread would ever be created). *)
let rec bisort sites root spr dir ~span =
  let left = Ops.load_ptr sites.s_left root off_left in
  if Gptr.is_null left then begin
    let rv = Ops.load_int sites.s_value root off_value in
    Ops.work 20;
    if rv > spr <> dir then begin
      Ops.store_int sites.s_value root off_value spr;
      rv
    end
    else spr
  end
  else begin
    let rv = Ops.load_int sites.s_value root off_value in
    let half = max 1 (span / 2) in
    if span >= 2 then begin
      let fut =
        Ops.future (fun () -> Value.Int (bisort sites left rv dir ~span:half))
      in
      let right = Ops.load_ptr sites.s_right root off_right in
      let spr = bisort sites right spr (not dir) ~span:half in
      Ops.store_int sites.s_value root off_value (Value.to_int (Ops.touch fut));
      Ops.call (fun () -> bimerge sites root spr dir ~span)
    end
    else begin
      Ops.store_int sites.s_value root off_value
        (Ops.call (fun () -> bisort sites left rv dir ~span:1));
      let right = Ops.load_ptr sites.s_right root off_right in
      let spr = bisort sites right spr (not dir) ~span:1 in
      Ops.call (fun () -> bimerge sites root spr dir ~span:1)
    end
  end

let size_for scale = scaled ~scale ~floor:256 131072

let run cfg ~scale =
  let n = size_for scale in
  execute cfg ~program:(fun engine ->
      let sites = make_sites () in
      let prng = Prng.create cfg.Olden_config.seed in
      let vals = Array.init n (fun _ -> Prng.int prng 1_000_000) in
      let root = build sites vals in
      let nprocs = Ops.nprocs () in
      Ops.phase "kernel";
      let spr =
        Ops.call (fun () -> bisort sites root vals.(n - 1) false ~span:nprocs)
      in
      let spr2 = Ops.call (fun () -> bisort sites root spr true ~span:nprocs) in
      let expected_fwd, expected_bwd = Reference.run (Array.copy vals) in
      ignore expected_fwd;
      (* extract the final (backward-sorted) sequence from the heap *)
      let memory = Engine.memory engine in
      let rec inorder node acc =
        if Gptr.is_null node then acc
        else
          let l = Value.to_ptr (Memory.load memory node off_left) in
          let r = Value.to_ptr (Memory.load memory node off_right) in
          let v = Value.to_int (Memory.load memory node off_value) in
          inorder l (v :: inorder r acc)
      in
      let got = inorder root [ spr2 ] in
      let ok = got = expected_bwd in
      (Printf.sprintf "n=%d head=%s" n
         (match got with v :: _ -> string_of_int v | [] -> "-"),
       ok))

let spec =
  {
    name = "Bisort";
    descr = "Sorts by creating two disjoint bitonic sequences and merging";
    problem = "128K integers";
    choice = "M+C";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 16;
    run;
  }
