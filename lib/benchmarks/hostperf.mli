(** Host-side throughput harness.

    Measures the simulator itself: wall-clock seconds to run the Table-2
    suite on the host, and the derived throughputs simulated-cycles/sec
    and simulated-events/sec.  Simulated results are untouched by design;
    this is the instrument that sees the dereference fast-path work.

    The JSON snapshot (schema ["olden-hostperf/v1"], written to
    [BENCH_hostperf.json] by the harness and the [olden-run hostperf]
    subcommand) is documented in docs/PERFORMANCE.md. *)

type row = {
  name : string;
  scale : int;
  wall_seconds : float;  (** best of [repeats] runs *)
  sim_cycles : int;  (** the benchmark's measured (Table 2) cycles *)
  sim_events : int;  (** simulated operation events, see {!events_of} *)
  verified : bool;
}

type report = {
  nprocs : int;
  repeats : int;
  domains : int;
      (** host domains the suite's benchmark jobs were spread over *)
  rows : row list;
  total_wall : float;  (** sum of per-benchmark best times *)
  total_cycles : int;
  total_events : int;
  suite_wall : float;
      (** wall time of the whole sweep (all repeats, submission to last
          join) — with [domains > 1] this is what shrinks while
          [total_wall] stays roughly flat *)
  pool_busy : float array;  (** per-domain seconds spent running jobs *)
  pool_wait : float array;
      (** per-domain seconds idle (startup and tail of the sweep) *)
}

val events_of : Stats.t -> int
(** Simulated operation events of a run: dereferences (both mechanisms),
    thread movements, future operations, and messages. *)

val run : ?nprocs:int -> ?repeats:int -> ?domains:int -> unit -> report
(** Time the whole Table-2 suite; defaults: 8 processors, best of 3,
    serial.  With [domains > 1] each benchmark (with its repeats) is one
    job on an {!Olden_parallel.Domain_pool}; per-row numbers are then
    noisier under co-scheduling, so committed baselines are taken
    serially. *)

val to_json : report -> Olden_trace.Json.t
val of_json : Olden_trace.Json.t -> (report, string) result
val of_file : string -> (report, string) result

val pp : Format.formatter -> report -> unit
(** Human-readable throughput table. *)

val pp_comparison : Format.formatter -> baseline:report -> report -> unit
(** Per-benchmark and aggregate wall-clock ratios against a baseline
    report.  Advisory only — host timing is noisy; callers must not gate
    on it (the CI step is warn-only by contract). *)
