(* TreeAdd: adds the values in a balanced binary tree (Table 1: 1024K
   nodes).  The simplest of the suite: a divide-and-conquer sum where the
   heuristic chooses migration for every dereference (Figure 4), and
   subtrees distributed at a fixed depth give one large-grain thread per
   subtree (Section 2). *)

open Common

(* The kernel as the compiler sees it.  Default affinities (70%): the two
   recursive updates combine to 91%, above the 90% threshold, so the tree
   traversal migrates. *)
let ir =
  {|
struct tree {
  tree left;
  tree right;
  int val;
}

int TreeAdd(tree t) {
  if (t == null) { return 0; }
  int l = future TreeAdd(t->left);
  int r = TreeAdd(t->right);
  return touch(l) + r + t->val;
}
|}

(* Field offsets in the heap record. *)
let off_left = 0
let off_right = 1
let off_val = 2
let node_words = 3

type sites = { s_left : Site.t; s_right : Site.t; s_val : Site.t }

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  let site = site_of mech ~func:"TreeAdd" ~fallback:C.Migrate in
  {
    s_left = site ~var:"t" ~field:"left";
    s_right = site ~var:"t" ~field:"right";
    s_val = site ~var:"t" ~field:"val";
  }

(* Per-node compute charge, calibrated so that Olden's pointer-test and
   future overheads come to roughly a quarter of the node cost, matching
   the paper's 1-processor speedup of ~0.73 (their CM-5 sequential time is
   ~4.3us, about 140 cycles, per node). *)
let node_work = 200

(* Build a tree of [depth] levels, distributing subtrees over the
   processor range [lo, hi).  The futurecalled (left) child goes to the
   *other* half of the range: its first dereference then migrates, which is
   what makes Olden spawn a thread for it, while the right child stays
   local to the parent (Section 2's fixed-depth distribution).  Below a
   single-processor range the whole subtree is local. *)
let build sites depth =
  let nprocs = Ops.nprocs () in
  let rec go depth lo hi =
    if depth = 0 then Gptr.null
    else begin
      let node = Ops.alloc ~proc:lo node_words in
      let mid = (lo + hi) / 2 in
      let left, right =
        if hi - lo >= 2 then (go (depth - 1) mid hi, go (depth - 1) lo mid)
        else (go (depth - 1) lo hi, go (depth - 1) lo hi)
      in
      Ops.store_ptr sites.s_left node off_left left;
      Ops.store_ptr sites.s_right node off_right right;
      Ops.store_int sites.s_val node off_val 1;
      node
    end
  in
  Ops.call (fun () -> go depth 0 nprocs)

let rec tree_add sites t =
  if Gptr.is_null t then 0
  else begin
    let left = Ops.load_ptr sites.s_left t off_left in
    let right = Ops.load_ptr sites.s_right t off_right in
    let fl =
      Ops.future (fun () -> Value.Int (tree_add sites left))
    in
    let sum_right = Ops.call (fun () -> tree_add sites right) in
    let v = Ops.load_int sites.s_val t off_val in
    Ops.work node_work;
    Value.to_int (Ops.touch fl) + sum_right + v
  end

let depth_for scale =
  (* paper size: 2^20 - 1 nodes; each doubling of scale removes a level *)
  let rec shrink depth scale =
    if scale <= 1 || depth <= 4 then depth else shrink (depth - 1) (scale / 2)
  in
  shrink 20 scale

let run cfg ~scale =
  let depth = depth_for scale in
  execute cfg ~program:(fun _engine ->
      let sites = make_sites () in
      let root = build sites depth in
      Ops.phase "kernel";
      let sum = Ops.call (fun () -> tree_add sites root) in
      let expected = (1 lsl depth) - 1 in
      (string_of_int sum, sum = expected))

let spec =
  {
    name = "TreeAdd";
    descr = "Adds the values in a tree";
    problem = "1024K nodes";
    choice = "M";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 8;
    run;
  }
