(* EM3D: electromagnetic wave propagation in a 3D object (Culler et al.),
   Table 1: 2K nodes; heuristic choice M+C.

   The object is a bipartite graph of E and H nodes.  Each half-step
   recomputes one side from a weighted sum of its neighbors on the other
   side.  Nodes are distributed blocked and walked by one thread per
   processor (the node lists have perfect locality, so the heuristic picks
   migration for them); neighbor values mostly live on the same processor
   but a fraction are remote with no locality, so the heuristic picks
   software caching for the neighbor dereference.  With migration alone
   every remote neighbor read ping-pongs the thread, which is the paper's
   most dramatic migrate-only collapse (speedup 0.05 at 32). *)

open Common

let ir =
  {|
struct enode {
  enode next @ 100;
  enode nbr @ 20;
  float value;
  float coeff;
}

struct chain {
  enode head @ 0;
  chain nextp @ 100;
}

void update_node(enode n) {
  enode cursor = n;
  while (cursor != null) {
    float acc = cursor->value;
    enode other = cursor->nbr;
    acc = acc - cursor->coeff * other->value;
    work(40);
    cursor = cursor->next;
  }
}

void update_all(chain c) {
  if (c == null) { return; }
  int f = future update_node(c->head);
  update_all(c->nextp);
  touch(f);
}
|}

(* Node record: [value; next; deg; (nbr_ptr, weight) x degree]. *)
let off_value = 0
let off_next = 1
let off_deg = 2
let header_words = 3
let node_words degree = header_words + (2 * degree)
let off_nbr j = header_words + (2 * j)
let off_weight j = header_words + (2 * j) + 1

(* Chain record (one per processor, for spawning the walkers). *)
let off_head = 0
let off_nextp = 1
let chain_words = 2

type sites = {
  s_value_local : Site.t; (* a node's own value, read/written locally *)
  s_next : Site.t;
  s_deg : Site.t;
  s_nbr : Site.t;
  s_weight : Site.t;
  s_value_remote : Site.t; (* a neighbor's value: the cached site *)
  s_head : Site.t;
  s_nextp : Site.t;
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  let c = site_of mech ~func:"update_node" ~var:"cursor" ~fallback:C.Migrate in
  let o = site_of mech ~func:"update_node" ~var:"other" ~fallback:C.Cache in
  let ch = site_of mech ~func:"update_all" ~var:"c" ~fallback:C.Migrate in
  {
    s_value_local = c ~field:"value";
    s_next = c ~field:"next";
    s_deg = c ~field:"coeff";
    s_nbr = c ~field:"nbr";
    s_weight = c ~field:"coeff";
    s_value_remote = o ~field:"value";
    s_head = ch ~field:"head";
    s_nextp = ch ~field:"nextp";
  }

(* --- Graph description (host-side), shared by build and reference ----- *)

type side = { owner : int array; nbrs : int array array; weights : float array array }

type graph = { e : side; h : side; n : int; degree : int }

(* Neighbors: [local_fraction] stay on the same processor; the rest are
   drawn from a small window at the start of another processor's block,
   giving remote reads spatial reuse (the paper's remote-miss rates are a
   few percent: many reads per fetched line). *)
let describe ?(local_fraction = 0.80) ~n ~degree ~nprocs ~seed () =
  let prng = Prng.create seed in
  let side () =
    let owner = Array.init n (fun i -> block_owner ~nprocs ~n i) in
    let block_start p = ((p * n) + nprocs - 1) / nprocs in
    let block_len p =
      let next = if p = nprocs - 1 then n else block_start (p + 1) in
      max 1 (next - block_start p)
    in
    let nbrs =
      Array.init n (fun i ->
          let p = owner.(i) in
          Array.init degree (fun _ ->
              if nprocs = 1 || Prng.float prng < local_fraction then
                block_start p + Prng.int prng (block_len p)
              else begin
                (* remote neighbors sit on the adjacent partition's
                   boundary window: a 3D mesh cut shares boundary values
                   among many cells, which is what gives the paper its
                   low remote-miss rates *)
                let q = (p + 1) mod nprocs in
                let window = min 4 (block_len q) in
                block_start q + Prng.int prng window
              end))
    in
    let weights =
      Array.init n (fun _ ->
          Array.init degree (fun _ -> (Prng.float prng *. 0.02) +. 0.01))
    in
    { owner; nbrs; weights }
  in
  let e = side () in
  let h = side () in
  { e; h; n; degree }

(* --- Pure OCaml reference --------------------------------------------- *)

let reference g ~iterations =
  let ev = Array.init g.n (fun i -> 0.5 +. (float_of_int (i mod 97) /. 97.)) in
  let hv = Array.init g.n (fun i -> 0.3 +. (float_of_int (i mod 89) /. 89.)) in
  let half ~dst ~src side =
    for i = 0 to g.n - 1 do
      let acc = ref dst.(i) in
      for j = 0 to g.degree - 1 do
        acc := !acc -. (side.weights.(i).(j) *. src.(side.nbrs.(i).(j)))
      done;
      dst.(i) <- !acc
    done
  in
  for _ = 1 to iterations do
    half ~dst:ev ~src:hv g.e;
    half ~dst:hv ~src:ev g.h
  done;
  (ev, hv)

(* --- The Olden program ------------------------------------------------- *)

let edge_work = 40

type built = {
  e_nodes : Gptr.t array;
  h_nodes : Gptr.t array;
  e_chain : Gptr.t; (* per-processor chains, remote-first, on processor 0 *)
  h_chain : Gptr.t;
}

let build sites g =
  let nprocs = Ops.nprocs () in
  let init_value side i =
    match side with
    | `E -> 0.5 +. (float_of_int (i mod 97) /. 97.)
    | `H -> 0.3 +. (float_of_int (i mod 89) /. 89.)
  in
  let alloc_side tag (s : side) =
    Array.init g.n (fun i ->
        let node = Ops.alloc ~proc:s.owner.(i) (node_words g.degree) in
        Ops.store_float sites.s_value_local node off_value (init_value tag i);
        Ops.store_int sites.s_deg node off_deg g.degree;
        node)
  in
  let e_nodes = alloc_side `E g.e and h_nodes = alloc_side `H g.h in
  let wire (s : side) nodes others =
    (* per-processor lists in increasing index order *)
    let heads = Array.make nprocs Gptr.null in
    for i = g.n - 1 downto 0 do
      Ops.store_ptr sites.s_next nodes.(i) off_next heads.(s.owner.(i));
      heads.(s.owner.(i)) <- nodes.(i);
      for j = 0 to g.degree - 1 do
        Ops.store_ptr sites.s_nbr nodes.(i) (off_nbr j) others.(s.nbrs.(i).(j));
        Ops.store_float sites.s_weight nodes.(i) (off_weight j)
          s.weights.(i).(j)
      done
    done;
    (* chain of per-processor list heads, highest processor first so the
       coordinator's own chunk is spawned last (it runs inline) *)
    let cells =
      Array.init nprocs (fun p ->
          let c = Ops.alloc ~proc:0 chain_words in
          Ops.store_ptr sites.s_head c off_head heads.(p);
          c)
    in
    for p = 0 to nprocs - 1 do
      Ops.store_ptr sites.s_nextp cells.(p) off_nextp
        (if p = 0 then Gptr.null else cells.(p - 1))
    done;
    cells.(nprocs - 1)
  in
  let e_chain = wire g.e e_nodes h_nodes in
  let h_chain = wire g.h h_nodes e_nodes in
  { e_nodes; h_nodes; e_chain; h_chain }

(* Update every node of one local list: local fields through the migration
   sites, neighbor values through the cache. *)
let rec update_list sites ~degree node =
  if Gptr.is_null node then 0
  else begin
    let acc = ref (Ops.load_float sites.s_value_local node off_value) in
    for j = 0 to degree - 1 do
      let nbr = Ops.load_ptr sites.s_nbr node (off_nbr j) in
      let w = Ops.load_float sites.s_weight node (off_weight j) in
      let v = Ops.load_float sites.s_value_remote nbr off_value in
      Ops.work edge_work;
      acc := !acc -. (w *. v)
    done;
    Ops.store_float sites.s_value_local node off_value !acc;
    update_list sites ~degree (Ops.load_ptr sites.s_next node off_next)
  end

(* One half-step: one walker per processor. *)
let rec update_all sites ~degree chain =
  if Gptr.is_null chain then ()
  else begin
    let head = Ops.load_ptr sites.s_head chain off_head in
    let fut =
      Ops.future (fun () -> Value.Int (update_list sites ~degree head))
    in
    update_all sites ~degree (Ops.load_ptr sites.s_nextp chain off_nextp);
    ignore (Ops.touch fut)
  end

let kernel sites ~degree built ~iterations =
  for _ = 1 to iterations do
    Ops.call (fun () -> update_all sites ~degree built.e_chain);
    Ops.call (fun () -> update_all sites ~degree built.h_chain)
  done

let iterations = 10

let run_graph ?local_fraction cfg ~scale =
  let n = scaled ~scale ~floor:64 1024 in
  let degree = 20 in
  execute cfg ~program:(fun engine ->
      let sites = make_sites () in
      let g =
        describe ?local_fraction ~n ~degree ~nprocs:cfg.Olden_config.nprocs
          ~seed:cfg.Olden_config.seed ()
      in
      let built = build sites g in
      Ops.phase "kernel";
      kernel sites ~degree built ~iterations;
      let ev, hv = reference g ~iterations in
      let memory = Engine.memory engine in
      let ok = ref true in
      Array.iteri
        (fun i node ->
          let got = Value.to_float (Memory.load memory node off_value) in
          if not (Float.equal got ev.(i)) then ok := false)
        built.e_nodes;
      Array.iteri
        (fun i node ->
          let got = Value.to_float (Memory.load memory node off_value) in
          if not (Float.equal got hv.(i)) then ok := false)
        built.h_nodes;
      let checksum =
        Array.fold_left ( +. ) 0. ev +. Array.fold_left ( +. ) 0. hv
      in
      (Printf.sprintf "sum=%.6f" checksum, !ok))

let run cfg ~scale = run_graph cfg ~scale

(* The %-remote sweep: how the mechanism gap grows with the fraction of
   cross-processor edges (the knob of Culler et al.'s generator).  Caching
   degrades gently; migrate-only ping-pongs in proportion. *)
type sweep_point = {
  remote_fraction : float;
  heuristic_cycles : int;
  migrate_only_cycles : int;
}

let remote_sweep ?(nprocs = 16) ?(scale = 4)
    ?(fractions = [ 0.0; 0.05; 0.1; 0.2; 0.35; 0.5 ]) () =
  List.map
    (fun remote ->
      let local_fraction = 1. -. remote in
      let cycles policy =
        let cfg = Olden_config.make ~nprocs ~policy () in
        let o = run_graph ~local_fraction cfg ~scale in
        if not o.ok then failwith "EM3D sweep: verification failed";
        o.kernel_cycles
      in
      {
        remote_fraction = remote;
        heuristic_cycles = cycles Olden_config.Heuristic;
        migrate_only_cycles = cycles Olden_config.Migrate_only;
      })
    fractions

let pp_sweep ppf points =
  Format.fprintf ppf
    "EM3D: kernel cycles vs fraction of remote edges (M+C vs migrate-only)@.";
  List.iter
    (fun p ->
      Format.fprintf ppf
        "  remote %4.0f%%: heuristic %10d   migrate-only %10d   (%.1fx)@."
        (100. *. p.remote_fraction)
        p.heuristic_cycles p.migrate_only_cycles
        (float_of_int p.migrate_only_cycles /. float_of_int p.heuristic_cycles))
    points

let spec =
  {
    name = "EM3D";
    descr = "Simulates the propagation of electro-magnetic waves in a 3D object";
    problem = "2K nodes";
    choice = "M+C";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 1;
    run;
  }
