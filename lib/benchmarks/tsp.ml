(* TSP: estimate of the best Hamiltonian circuit, Karp's partitioning
   heuristic (Table 1: 32K cities; heuristic choice M).

   Cities live in a binary tree sorted by x coordinate (in-order),
   distributed by subtree like TreeAdd.  Small partitions are toured
   directly with greedy nearest-edge insertion (the quadratic work that
   dominates); larger subproblems solve both halves (the first as a
   futurecall) and then merge: the merge walks one tour to find the node
   closest to the other tour's head, walks the second for the node closest
   to that, and splices the two circular doubly-linked tours through the
   subtree's root city.  The merge walks are sequential and touch a lot of
   data per processor, so migration is the right mechanism throughout —
   the paper notes caching would increase communication here. *)

open Common

let ir =
  {|
struct city {
  city left @ 80;
  city right @ 80;
  city next @ 95;
  city prev @ 95;
  float x;
  float y;
}

city tsp(city t, int sz) {
  if (sz < 64) { work(600); return t; }
  city l = future tsp(t->left, sz / 2);
  city r = tsp(t->right, sz / 2);
  return merge(touch(l), r, t);
}

city merge(city a, city b, city t) {
  city p = a;
  float best = 1000000.0;
  while (p != null) {
    float d = p->x - b->x;
    work(25);
    if (d < best) { best = d; }
    p = p->next;
  }
  return a;
}
|}

let off_left = 0
let off_right = 1
let off_next = 2
let off_prev = 3
let off_x = 4
let off_y = 5
let node_words = 6

type sites = {
  s_left : Site.t;
  s_right : Site.t;
  s_next : Site.t;
  s_prev : Site.t;
  s_x : Site.t;
  s_y : Site.t;
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  let t = site_of mech ~func:"tsp" ~var:"t" ~fallback:C.Migrate in
  let w = site_of mech ~func:"merge" ~var:"p" ~fallback:C.Migrate in
  {
    s_left = t ~field:"left";
    s_right = t ~field:"right";
    s_next = w ~field:"next";
    s_prev = w ~field:"prev";
    s_x = w ~field:"x";
    s_y = w ~field:"y";
  }

let conquer_threshold = 64
let dist_work = 25
let insert_work = 18

let dist (x1, y1) (x2, y2) =
  let dx = x1 -. x2 and dy = y1 -. y2 in
  Float.sqrt ((dx *. dx) +. (dy *. dy))

(* --- Host-side reference ----------------------------------------------- *)

module Reference = struct
  type city = {
    id : int;
    x : float;
    y : float;
    mutable left : city option;
    mutable right : city option;
    mutable next : city option;
    mutable prev : city option;
  }

  let get = function Some c -> c | None -> assert false
  let pos c = (c.x, c.y)

  (* In-order balanced tree over cities sorted by x. *)
  let rec build (cities : city array) lo hi =
    if lo >= hi then None
    else begin
      let mid = (lo + hi) / 2 in
      let c = cities.(mid) in
      c.left <- build cities lo mid;
      c.right <- build cities (mid + 1) hi;
      Some c
    end

  let rec collect t acc =
    match t with
    | None -> acc
    | Some c -> collect c.left (c :: collect c.right acc)

  (* Greedy nearest-edge insertion over the subtree's cities. *)
  let conquer t =
    match collect t [] with
    | [] -> assert false
    | first :: rest ->
        first.next <- Some first;
        first.prev <- Some first;
        List.iter
          (fun c ->
            (* find the tour edge (p, p.next) whose detour through c is
               cheapest *)
            let best = ref infinity and best_after = ref first in
            let p = ref first in
            let continue_ = ref true in
            while !continue_ do
              let q = get !p.next in
              let detour =
                dist (pos !p) (pos c) +. dist (pos c) (pos q)
                -. dist (pos !p) (pos q)
              in
              if detour < !best then begin
                best := detour;
                best_after := !p
              end;
              p := q;
              if !p == first then continue_ := false
            done;
            let a = !best_after in
            let b = get a.next in
            a.next <- Some c;
            c.prev <- Some a;
            c.next <- Some b;
            b.prev <- Some c)
          rest;
        first

  let merge a b t =
    (* one scan: the node of tour [a] closest to [b]'s head; splice there
       (the merge is linear in the larger tour, the paper's sequential
       subtree walk) *)
    let na = ref a and best = ref infinity in
    let p = ref a and continue_ = ref true in
    while !continue_ do
      let d = dist (pos !p) (pos b) in
      if d < !best then begin
        best := d;
        na := !p
      end;
      p := get !p.next;
      if !p == a then continue_ := false
    done;
    let na = !na in
    let nb = b in
    let na_next = get na.next and nb_next = get nb.next in
    na.next <- Some t;
    t.prev <- Some na;
    t.next <- Some nb_next;
    nb_next.prev <- Some t;
    nb.next <- Some na_next;
    na_next.prev <- Some nb;
    a

  let rec tsp t sz =
    let c = get t in
    if sz <= conquer_threshold then conquer t
    else begin
      let l = tsp c.left (sz / 2) in
      let r = tsp c.right (sz / 2) in
      (* the root city is not in either half-tour; merge through it *)
      merge l r c
    end

  let tour_length start =
    let total = ref 0. and p = ref start and continue_ = ref true in
    let count = ref 0 in
    while !continue_ do
      total := !total +. dist (pos !p) (pos (get !p.next));
      incr count;
      p := get !p.next;
      if !p == start then continue_ := false
    done;
    (!total, !count)

  let run points =
    let cities =
      Array.mapi
        (fun i (x, y) ->
          { id = i; x; y; left = None; right = None; next = None; prev = None })
        points
    in
    let n = Array.length points in
    let root = build cities 0 n in
    let start = tsp root n in
    tour_length start
end

(* --- The Olden program ------------------------------------------------- *)

(* Build the x-sorted in-order tree; subtree ranges over processors,
   futurecalled left child to the far half. *)
let build sites (points : (float * float) array) =
  let nprocs = Ops.nprocs () in
  let rec go lo hi plo phi =
    if lo >= hi then Gptr.null
    else begin
      let mid = (lo + hi) / 2 in
      let node = Ops.alloc ~proc:plo node_words in
      let x, y = points.(mid) in
      let pmid = (plo + phi) / 2 in
      let left, right =
        if phi - plo >= 2 then (go lo mid pmid phi, go (mid + 1) hi plo pmid)
        else (go lo mid plo phi, go (mid + 1) hi plo phi)
      in
      Ops.store_ptr sites.s_left node off_left left;
      Ops.store_ptr sites.s_right node off_right right;
      Ops.store_ptr sites.s_next node off_next Gptr.null;
      Ops.store_ptr sites.s_prev node off_prev Gptr.null;
      Ops.store_float sites.s_x node off_x x;
      Ops.store_float sites.s_y node off_y y;
      node
    end
  in
  Ops.call (fun () -> go 0 (Array.length points) 0 nprocs)

let coords sites c =
  (Ops.load_float sites.s_x c off_x, Ops.load_float sites.s_y c off_y)

let rec collect sites t acc =
  if Gptr.is_null t then acc
  else begin
    let l = Ops.load_ptr sites.s_left t off_left in
    let r = Ops.load_ptr sites.s_right t off_right in
    collect sites l (t :: collect sites r acc)
  end

(* Greedy nearest-edge insertion; coordinates are read once per city, the
   quadratic scan itself uses the local copies (registers/stack in Olden
   terms) with its compute charged per comparison. *)
let conquer sites t =
  match collect sites t [] with
  | [] -> assert false
  | first :: rest ->
      Ops.store_ptr sites.s_next first off_next first;
      Ops.store_ptr sites.s_prev first off_prev first;
      (* local mirror of the tour as a growing list of (ptr, pos) *)
      let first_pos = coords sites first in
      let tour = ref [ (first, first_pos) ] in
      List.iter
        (fun c ->
          let cpos = coords sites c in
          let best = ref infinity and best_after = ref (first, first_pos) in
          (* walk the tour pairs (p, p.next) in order *)
          let arr = Array.of_list !tour in
          let k = Array.length arr in
          Ops.work (dist_work * k);
          for i = 0 to k - 1 do
            let _, ppos = arr.(i) in
            let _, qpos = arr.((i + 1) mod k) in
            let detour = dist ppos cpos +. dist cpos qpos -. dist ppos qpos in
            if detour < !best then begin
              best := detour;
              best_after := arr.(i)
            end
          done;
          let a, _ = !best_after in
          let b = Ops.load_ptr sites.s_next a off_next in
          Ops.store_ptr sites.s_next a off_next c;
          Ops.store_ptr sites.s_prev c off_prev a;
          Ops.store_ptr sites.s_next c off_next b;
          Ops.store_ptr sites.s_prev b off_prev c;
          Ops.work insert_work;
          (* keep the mirror in tour order: insert c after a *)
          let rec ins = function
            | [] -> []
            | ((p, _) as hd) :: tl ->
                if Gptr.equal p a then hd :: (c, cpos) :: tl else hd :: ins tl
          in
          tour := ins !tour)
        rest;
      first

(* Walk tour [a] for the node closest to position [target]. *)
let closest_on_tour sites start target =
  let rec go p best best_node =
    let d = dist (coords sites p) target in
    Ops.work dist_work;
    let best, best_node = if d < best then (d, p) else (best, best_node) in
    let next = Ops.load_ptr sites.s_next p off_next in
    if Gptr.equal next start then best_node else go next best best_node
  in
  go start infinity start

let merge sites a b t =
  let na = closest_on_tour sites a (coords sites b) in
  let nb = b in
  let na_next = Ops.load_ptr sites.s_next na off_next in
  let nb_next = Ops.load_ptr sites.s_next nb off_next in
  Ops.store_ptr sites.s_next na off_next t;
  Ops.store_ptr sites.s_prev t off_prev na;
  Ops.store_ptr sites.s_next t off_next nb_next;
  Ops.store_ptr sites.s_prev nb_next off_prev t;
  Ops.store_ptr sites.s_next nb off_next na_next;
  Ops.store_ptr sites.s_prev na_next off_prev nb;
  a

let rec tsp sites t sz ~span =
  if sz <= conquer_threshold then Ops.call (fun () -> conquer sites t)
  else begin
    let left = Ops.load_ptr sites.s_left t off_left in
    let right = Ops.load_ptr sites.s_right t off_right in
    let half = max 1 (span / 2) in
    if span >= 2 then begin
      let fut =
        Ops.future (fun () -> Value.Ptr (tsp sites left (sz / 2) ~span:half))
      in
      let r = tsp sites right (sz / 2) ~span:half in
      let l = Value.to_ptr (Ops.touch fut) in
      Ops.call (fun () -> merge sites l r t)
    end
    else begin
      let l = Ops.call (fun () -> tsp sites left (sz / 2) ~span:1) in
      let r = Ops.call (fun () -> tsp sites right (sz / 2) ~span:1) in
      Ops.call (fun () -> merge sites l r t)
    end
  end

let size_for scale = scaled ~scale ~floor:255 32767

let run cfg ~scale =
  let n = size_for scale in
  execute cfg ~program:(fun engine ->
      let sites = make_sites () in
      let prng = Prng.create cfg.Olden_config.seed in
      let points = Array.init n (fun _ -> (Prng.float prng, Prng.float prng)) in
      let root = build sites points in
      let nprocs = Ops.nprocs () in
      Ops.phase "kernel";
      let start = Ops.call (fun () -> tsp sites root n ~span:nprocs) in
      let expected_len, expected_count = Reference.run points in
      (* validate the heap tour *)
      let memory = Engine.memory engine in
      let total = ref 0. and count = ref 0 and p = ref start in
      let continue_ = ref true in
      let pos c =
        ( Value.to_float (Memory.load memory c off_x),
          Value.to_float (Memory.load memory c off_y) )
      in
      while !continue_ do
        let next = Value.to_ptr (Memory.load memory !p off_next) in
        let prev_of_next = Value.to_ptr (Memory.load memory next off_prev) in
        if not (Gptr.equal prev_of_next !p) then begin
          count := -1;
          continue_ := false
        end
        else begin
          total := !total +. dist (pos !p) (pos next);
          incr count;
          p := next;
          if Gptr.equal !p start then continue_ := false
        end
      done;
      let ok = !count = n && !count = expected_count && Float.equal !total expected_len in
      (Printf.sprintf "tour=%.4f cities=%d" !total !count, ok))

let spec =
  {
    name = "TSP";
    descr = "Computes an estimate of the best Hamiltonian circuit";
    problem = "32K cities";
    choice = "M";
    whole_program = false;
    heap_stable = true;
    ir;
    default_scale = 1;
    run;
  }
