(* Barnes-Hut: hierarchical N-body simulation (Table 1: 8K bodies;
   whole-program times; heuristic choice M+C).

   Each iteration rebuilds the octree (sequentially, as in the paper — the
   build grows into a substantial serial fraction as processors are added),
   computes centres of mass, walks the tree once per body to accumulate
   accelerations, and advances positions.  Bodies are distributed blocked
   (after an initial spatial sort); the heuristic migrates the per-body
   work to the bodies' owners, but caches the tree — even though the tree
   has high locality, migrating on it would serialize every walker on the
   processor that owns the root (the Section 4.3 bottleneck rule).  Cells
   are placed on the processor owning their region's bodies, so roughly
   half the cached cell reads are remote (Table 3 reports 55.6%). *)

open Common

let ir =
  {|
struct hnode {
  hnode child0 @ 70;
  hnode child1 @ 70;
  hnode next @ 100;
  float mass;
  float x;
}

struct chain {
  hnode head @ 0;
  chain nextp @ 100;
}

float gravsub(hnode b, hnode n) {
  if (n == null) { return 0.0; }
  float m = n->mass;
  work(60);
  float a = gravsub(b, n->child0);
  float c = gravsub(b, n->child1);
  return m + a + c;
}

void do_bodies(hnode b, hnode root) {
  hnode cursor = b;
  while (cursor != null) {
    float a = gravsub(cursor, root);
    cursor->x = a;
    work(40);
    cursor = cursor->next;
  }
}

void do_all(chain c, hnode root) {
  if (c == null) { return; }
  int f = future do_bodies(c->head, root);
  do_all(c->nextp, root);
  touch(f);
}
|}

(* Heap records.
   Body: [kind=0; mass; x; y; z; vx; vy; vz; ax; ay; az; next]
   Cell: [kind=1; mass; cx; cy; cz; size; child0..7] *)
let off_kind = 0
let off_mass = 1
let b_x = 2
let b_y = 3
let b_z = 4
let b_vx = 5
let b_vy = 6
let b_vz = 7
let b_ax = 8
let b_ay = 9
let b_az = 10
let b_next = 11
let body_words = 12

let c_x = 2
let c_y = 3
let c_z = 4
let c_size = 5
let c_child i = 6 + i
let cell_words = 14

let off_head = 0
let off_nextp = 1
let chain_words = 2

type sites = {
  s_body : Site.t; (* body fields: migrate (local to their owner) *)
  s_bnext : Site.t; (* per-processor body list: migrate *)
  s_cell : Site.t; (* tree cells during the walk: cache (bottleneck rule) *)
  s_cchild : Site.t;
  s_head : Site.t;
  s_nextp : Site.t;
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  {
    s_body = site_of mech ~func:"do_bodies" ~var:"cursor" ~field:"x" ~fallback:C.Migrate;
    s_bnext = site_of mech ~func:"do_bodies" ~var:"cursor" ~field:"next" ~fallback:C.Migrate;
    s_cell = site_of mech ~func:"gravsub" ~var:"n" ~field:"mass" ~fallback:C.Cache;
    s_cchild = site_of mech ~func:"gravsub" ~var:"n" ~field:"child0" ~fallback:C.Cache;
    s_head = site_of mech ~func:"do_all" ~var:"c" ~field:"head" ~fallback:C.Migrate;
    s_nextp = site_of mech ~func:"do_all" ~var:"c" ~field:"nextp" ~fallback:C.Migrate;
  }

let theta2 = 0.25 (* opening parameter squared *)
let eps2 = 1e-4
let dt = 0.001
let interact_work = 100
let open_work = 15
let update_work = 30
let iterations = 2

(* --- Shared pure math --------------------------------------------------- *)

let octant ~x ~y ~z ~cx ~cy ~cz =
  (if x >= cx then 1 else 0)
  lor (if y >= cy then 2 else 0)
  lor (if z >= cz then 4 else 0)

let octant_center ~cx ~cy ~cz ~size i =
  let q = size /. 4. in
  ( (if i land 1 = 1 then cx +. q else cx -. q),
    (if i land 2 = 2 then cy +. q else cy -. q),
    if i land 4 = 4 then cz +. q else cz -. q )

let accel ~bx ~by ~bz ~mx ~my ~mz ~m =
  let dx = mx -. bx and dy = my -. by and dz = mz -. bz in
  let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. eps2 in
  let inv = 1. /. (d2 *. Float.sqrt d2) in
  (m *. dx *. inv, m *. dy *. inv, m *. dz *. inv)

(* --- Host-side reference ----------------------------------------------- *)

module Reference = struct
  type node =
    | Empty
    | Body of body
    | Cell of cell

  and body = {
    mutable x : float;
    mutable y : float;
    mutable z : float;
    mutable vx : float;
    mutable vy : float;
    mutable vz : float;
    mass : float;
  }

  and cell = {
    mutable cmass : float;
    mutable cx : float;
    mutable cy : float;
    mutable cz : float;
    gx : float; (* geometric centre, fixed *)
    gy : float;
    gz : float;
    size : float;
    children : node array;
  }

  let new_cell ~gx ~gy ~gz ~size =
    { cmass = 0.; cx = gx; cy = gy; cz = gz; gx; gy; gz; size; children = Array.make 8 Empty }

  let rec insert cell (b : body) =
    let i = octant ~x:b.x ~y:b.y ~z:b.z ~cx:cell.gx ~cy:cell.gy ~cz:cell.gz in
    match cell.children.(i) with
    | Empty -> cell.children.(i) <- Body b
    | Body other ->
        let ncx, ncy, ncz =
          octant_center ~cx:cell.gx ~cy:cell.gy ~cz:cell.gz ~size:cell.size i
        in
        let sub = new_cell ~gx:ncx ~gy:ncy ~gz:ncz ~size:(cell.size /. 2.) in
        cell.children.(i) <- Cell sub;
        insert sub other;
        insert sub b
    | Cell sub -> insert sub b

  let rec compute_mass = function
    | Empty -> (0., 0., 0., 0.)
    | Body b -> (b.mass, b.mass *. b.x, b.mass *. b.y, b.mass *. b.z)
    | Cell c ->
        let m = ref 0. and sx = ref 0. and sy = ref 0. and sz = ref 0. in
        for i = 0 to 7 do
          let m', x', y', z' = compute_mass c.children.(i) in
          m := !m +. m';
          sx := !sx +. x';
          sy := !sy +. y';
          sz := !sz +. z'
        done;
        c.cmass <- !m;
        if !m > 0. then begin
          c.cx <- !sx /. !m;
          c.cy <- !sy /. !m;
          c.cz <- !sz /. !m
        end;
        (!m, !sx, !sy, !sz)

  let rec walk (b : body) node (ax, ay, az) =
    match node with
    | Empty -> (ax, ay, az)
    | Body other ->
        if other == b then (ax, ay, az)
        else begin
          let dx, dy, dz =
            accel ~bx:b.x ~by:b.y ~bz:b.z ~mx:other.x ~my:other.y ~mz:other.z
              ~m:other.mass
          in
          (ax +. dx, ay +. dy, az +. dz)
        end
    | Cell c ->
        let ddx = c.cx -. b.x and ddy = c.cy -. b.y and ddz = c.cz -. b.z in
        let d2 = (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) +. eps2 in
        if c.size *. c.size < theta2 *. d2 then begin
          let dx, dy, dz =
            accel ~bx:b.x ~by:b.y ~bz:b.z ~mx:c.cx ~my:c.cy ~mz:c.cz ~m:c.cmass
          in
          (ax +. dx, ay +. dy, az +. dz)
        end
        else begin
          let acc = ref (ax, ay, az) in
          for i = 0 to 7 do
            acc := walk b c.children.(i) !acc
          done;
          !acc
        end

  let clamp v = Float.max 0.0001 (Float.min v 0.9999)

  let run bodies_init ~iterations =
    let bodies =
      Array.map
        (fun (x, y, z, m) -> { x; y; z; vx = 0.; vy = 0.; vz = 0.; mass = m })
        bodies_init
    in
    for _ = 1 to iterations do
      let root = new_cell ~gx:0.5 ~gy:0.5 ~gz:0.5 ~size:1.0 in
      Array.iter (fun b -> insert root b) bodies;
      ignore (compute_mass (Cell root));
      let accs =
        Array.map (fun b -> walk b (Cell root) (0., 0., 0.)) bodies
      in
      Array.iteri
        (fun i b ->
          let ax, ay, az = accs.(i) in
          b.vx <- b.vx +. (ax *. dt);
          b.vy <- b.vy +. (ay *. dt);
          b.vz <- b.vz +. (az *. dt);
          b.x <- clamp (b.x +. (b.vx *. dt));
          b.y <- clamp (b.y +. (b.vy *. dt));
          b.z <- clamp (b.z +. (b.vz *. dt)))
        bodies
    done;
    bodies
end

(* --- The Olden program ------------------------------------------------- *)

(* Processor owning a spatial x coordinate (bodies are sorted by x and
   blocked, so this also places cells near their bodies). *)
let owner_of_x ~nprocs x =
  min (nprocs - 1) (int_of_float (x *. float_of_int nprocs))

let load_body sites b =
  ( Ops.load_float sites.s_body b b_x,
    Ops.load_float sites.s_body b b_y,
    Ops.load_float sites.s_body b b_z,
    Ops.load_float sites.s_body b off_mass )

(* Sequential tree build, from the main thread: cells are read and written
   through the cache, so the builder never migrates. *)
let insert_body sites ~nprocs ~cell ~bx ~by ~bz b =
  let rec go cell =
    let gx = Ops.load_float sites.s_cell cell c_x in
    let gy = Ops.load_float sites.s_cell cell c_y in
    let gz = Ops.load_float sites.s_cell cell c_z in
    let size = Ops.load_float sites.s_cell cell c_size in
    Ops.work open_work;
    let i = octant ~x:bx ~y:by ~z:bz ~cx:gx ~cy:gy ~cz:gz in
    let child = Ops.load_ptr sites.s_cchild cell (c_child i) in
    if Gptr.is_null child then Ops.store_ptr sites.s_cchild cell (c_child i) b
    else begin
      let kind = Ops.load_int sites.s_cell child off_kind in
      if kind = 1 then go child
      else begin
        (* split: a new subcell owned by the region's processor *)
        let ncx, ncy, ncz = octant_center ~cx:gx ~cy:gy ~cz:gz ~size i in
        let proc = owner_of_x ~nprocs ncx in
        let sub = Ops.alloc ~proc cell_words in
        Ops.store_int sites.s_cell sub off_kind 1;
        Ops.store_float sites.s_cell sub off_mass 0.;
        Ops.store_float sites.s_cell sub c_x ncx;
        Ops.store_float sites.s_cell sub c_y ncy;
        Ops.store_float sites.s_cell sub c_z ncz;
        Ops.store_float sites.s_cell sub c_size (size /. 2.);
        for j = 0 to 7 do
          Ops.store_ptr sites.s_cchild sub (c_child j) Gptr.null
        done;
        Ops.store_ptr sites.s_cchild cell (c_child i) sub;
        (* reinsert the displaced body, then continue with b *)
        let ox = Ops.load_float sites.s_cell child b_x in
        let oy = Ops.load_float sites.s_cell child b_y in
        let oz = Ops.load_float sites.s_cell child b_z in
        let rec reinsert cell' =
          let gx' = Ops.load_float sites.s_cell cell' c_x in
          let gy' = Ops.load_float sites.s_cell cell' c_y in
          let gz' = Ops.load_float sites.s_cell cell' c_z in
          ignore (Ops.load_float sites.s_cell cell' c_size);
          let i' = octant ~x:ox ~y:oy ~z:oz ~cx:gx' ~cy:gy' ~cz:gz' in
          let ch = Ops.load_ptr sites.s_cchild cell' (c_child i') in
          if Gptr.is_null ch then
            Ops.store_ptr sites.s_cchild cell' (c_child i') child
          else reinsert ch
        in
        reinsert sub;
        go sub
      end
    end
  in
  go cell

(* Centres of mass, sequential, through the cache. *)
let rec compute_mass sites node =
  if Gptr.is_null node then (0., 0., 0., 0.)
  else begin
    let kind = Ops.load_int sites.s_cell node off_kind in
    if kind = 0 then begin
      let m = Ops.load_float sites.s_cell node off_mass in
      let x = Ops.load_float sites.s_cell node b_x in
      let y = Ops.load_float sites.s_cell node b_y in
      let z = Ops.load_float sites.s_cell node b_z in
      Ops.work 10;
      (m, m *. x, m *. y, m *. z)
    end
    else begin
      let m = ref 0. and sx = ref 0. and sy = ref 0. and sz = ref 0. in
      for i = 0 to 7 do
        let child = Ops.load_ptr sites.s_cchild node (c_child i) in
        let m', x', y', z' = compute_mass sites child in
        m := !m +. m';
        sx := !sx +. x';
        sy := !sy +. y';
        sz := !sz +. z'
      done;
      Ops.work 20;
      Ops.store_float sites.s_cell node off_mass !m;
      if !m > 0. then begin
        Ops.store_float sites.s_cell node c_x (!sx /. !m);
        Ops.store_float sites.s_cell node c_y (!sy /. !m);
        Ops.store_float sites.s_cell node c_z (!sz /. !m)
      end;
      (!m, !sx, !sy, !sz)
    end
  end

(* The force walk for one body: cells through the cache. *)
let rec walk sites ~b ~bx ~by ~bz node (ax, ay, az) =
  if Gptr.is_null node then (ax, ay, az)
  else begin
    let kind = Ops.load_int sites.s_cell node off_kind in
    if kind = 0 then begin
      if Gptr.equal node b then (ax, ay, az)
      else begin
        let m = Ops.load_float sites.s_cell node off_mass in
        let mx = Ops.load_float sites.s_cell node b_x in
        let my = Ops.load_float sites.s_cell node b_y in
        let mz = Ops.load_float sites.s_cell node b_z in
        Ops.work interact_work;
        let dx, dy, dz = accel ~bx ~by ~bz ~mx ~my ~mz ~m in
        (ax +. dx, ay +. dy, az +. dz)
      end
    end
    else begin
      let cx = Ops.load_float sites.s_cell node c_x in
      let cy = Ops.load_float sites.s_cell node c_y in
      let cz = Ops.load_float sites.s_cell node c_z in
      let size = Ops.load_float sites.s_cell node c_size in
      Ops.work open_work;
      let ddx = cx -. bx and ddy = cy -. by and ddz = cz -. bz in
      let d2 = (ddx *. ddx) +. (ddy *. ddy) +. (ddz *. ddz) +. eps2 in
      if size *. size < theta2 *. d2 then begin
        let m = Ops.load_float sites.s_cell node off_mass in
        Ops.work interact_work;
        let dx, dy, dz = accel ~bx ~by ~bz ~mx:cx ~my:cy ~mz:cz ~m in
        (ax +. dx, ay +. dy, az +. dz)
      end
      else begin
        let acc = ref (ax, ay, az) in
        for i = 0 to 7 do
          let child = Ops.load_ptr sites.s_cchild node (c_child i) in
          acc := walk sites ~b ~bx ~by ~bz child !acc
        done;
        !acc
      end
    end
  end

(* Per-processor pass: forces then integration for the local body list. *)
let rec do_bodies sites ~root b =
  if not (Gptr.is_null b) then begin
    let bx, by, bz, _ = load_body sites b in
    let ax, ay, az = walk sites ~b ~bx ~by ~bz root (0., 0., 0.) in
    Ops.store_float sites.s_body b b_ax ax;
    Ops.store_float sites.s_body b b_ay ay;
    Ops.store_float sites.s_body b b_az az;
    Ops.work update_work;
    do_bodies sites ~root (Ops.load_ptr sites.s_bnext b b_next)
  end

let clamp = Reference.clamp

let rec update_bodies sites b =
  if not (Gptr.is_null b) then begin
    let read f = Ops.load_float sites.s_body b f in
    let vx = read b_vx +. (read b_ax *. dt) in
    let vy = read b_vy +. (read b_ay *. dt) in
    let vz = read b_vz +. (read b_az *. dt) in
    Ops.store_float sites.s_body b b_vx vx;
    Ops.store_float sites.s_body b b_vy vy;
    Ops.store_float sites.s_body b b_vz vz;
    Ops.store_float sites.s_body b b_x (clamp (read b_x +. (vx *. dt)));
    Ops.store_float sites.s_body b b_y (clamp (read b_y +. (vy *. dt)));
    Ops.store_float sites.s_body b b_z (clamp (read b_z +. (vz *. dt)));
    Ops.work update_work;
    update_bodies sites (Ops.load_ptr sites.s_bnext b b_next)
  end

(* Spawn a walker per processor over its body list. *)
let rec do_all sites chain ~body_pass ~root =
  if not (Gptr.is_null chain) then begin
    let head = Ops.load_ptr sites.s_head chain off_head in
    let fut =
      Ops.future (fun () ->
          (if body_pass then do_bodies sites ~root head
           else update_bodies sites head);
          Value.Int 0)
    in
    do_all sites (Ops.load_ptr sites.s_nextp chain off_nextp) ~body_pass ~root;
    ignore (Ops.touch fut)
  end

let bodies_for scale = scaled ~scale ~floor:128 8192

let run cfg ~scale =
  let n = bodies_for scale in
  execute cfg ~program:(fun engine ->
      let sites = make_sites () in
      let nprocs = Ops.nprocs () in
      let prng = Prng.create cfg.Olden_config.seed in
      let raw =
        Array.init n (fun _ ->
            (Prng.float prng, Prng.float prng, Prng.float prng, 1.0))
      in
      (* spatial sort by x, then block distribution *)
      Array.sort (fun (x1, _, _, _) (x2, _, _, _) -> compare x1 x2) raw;
      let bodies =
        Array.mapi
          (fun i (x, y, z, m) ->
            let proc = block_owner ~nprocs ~n i in
            let b = Ops.alloc ~proc body_words in
            Ops.store_int sites.s_body b off_kind 0;
            Ops.store_float sites.s_body b off_mass m;
            Ops.store_float sites.s_body b b_x x;
            Ops.store_float sites.s_body b b_y y;
            Ops.store_float sites.s_body b b_z z;
            List.iter
              (fun f -> Ops.store_float sites.s_body b f 0.)
              [ b_vx; b_vy; b_vz; b_ax; b_ay; b_az ];
            b)
          raw
      in
      (* per-processor body lists + the spawn chain (remote-first) *)
      let heads = Array.make nprocs Gptr.null in
      for i = n - 1 downto 0 do
        let proc = block_owner ~nprocs ~n i in
        Ops.store_ptr sites.s_bnext bodies.(i) b_next heads.(proc);
        heads.(proc) <- bodies.(i)
      done;
      let cells_chain =
        let cs =
          Array.init nprocs (fun p ->
              let c = Ops.alloc ~proc:0 chain_words in
              Ops.store_ptr sites.s_head c off_head heads.(p);
              c)
        in
        for p = 0 to nprocs - 1 do
          Ops.store_ptr sites.s_nextp cs.(p) off_nextp
            (if p = 0 then Gptr.null else cs.(p - 1))
        done;
        cs.(nprocs - 1)
      in
      Ops.phase "kernel";
      for _ = 1 to iterations do
        (* sequential tree build *)
        let root = Ops.alloc ~proc:0 cell_words in
        Ops.store_int sites.s_cell root off_kind 1;
        Ops.store_float sites.s_cell root off_mass 0.;
        Ops.store_float sites.s_cell root c_x 0.5;
        Ops.store_float sites.s_cell root c_y 0.5;
        Ops.store_float sites.s_cell root c_z 0.5;
        Ops.store_float sites.s_cell root c_size 1.0;
        for j = 0 to 7 do
          Ops.store_ptr sites.s_cchild root (c_child j) Gptr.null
        done;
        Array.iter
          (fun b ->
            let bx, by, bz, _ = load_body sites b in
            insert_body sites ~nprocs ~cell:root ~bx ~by ~bz b)
          bodies;
        ignore (compute_mass sites root);
        (* parallel force pass, then parallel update pass *)
        Ops.call (fun () -> do_all sites cells_chain ~body_pass:true ~root);
        Ops.call (fun () -> do_all sites cells_chain ~body_pass:false ~root)
      done;
      (* verify against the reference *)
      let expected = Reference.run raw ~iterations in
      let memory = Engine.memory engine in
      let ok = ref true in
      Array.iteri
        (fun i b ->
          let x = Value.to_float (Memory.load memory b b_x) in
          let y = Value.to_float (Memory.load memory b b_y) in
          let z = Value.to_float (Memory.load memory b b_z) in
          let e = expected.(i) in
          if
            not
              (Float.equal x e.Reference.x
              && Float.equal y e.Reference.y
              && Float.equal z e.Reference.z)
          then ok := false)
        bodies;
      let checksum =
        Array.fold_left (fun acc e -> acc +. e.Reference.x +. e.Reference.y) 0. expected
      in
      (Printf.sprintf "n=%d checksum=%.6f" n checksum, !ok))

let spec =
  {
    name = "Barnes-Hut";
    descr = "Solves the N-body problem using hierarchical methods";
    problem = "8K bodies";
    choice = "M+C";
    whole_program = true;
    heap_stable = true;
    ir;
    default_scale = 4;
    run;
  }
