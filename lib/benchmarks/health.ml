(* Health: simulation of the Colombian health-care system (Lomow et al.),
   Table 1: 1365 villages; whole-program times; heuristic choice M+C.

   Villages form a four-way tree five levels deep (1 + 4 + 16 + 64 + 256 +
   1024 = 1365).  Each time step the tree is traversed; at each village
   patients are generated, wait, are assessed, and are then either treated
   locally or referred up to the parent village.  The tree traversal
   migrates (futures per subtree); patient records referred across a
   processor boundary are accessed with software caching — but fewer than
   two percent of patients cross processors, so caching buys little and the
   paper measures a slight net loss from its overheads (M-only 16.52 vs
   M+C 16.42 at 32 processors).

   Patient generation and triage are driven by pure hashes of village and
   patient identity, so the simulation is deterministic and independent of
   list order and execution interleaving; the host-side reference then
   checks the heap outcome exactly. *)

open Common

let ir =
  {|
struct village {
  village child0 @ 95;
  village child1 @ 95;
  village child2 @ 95;
  village child3 @ 95;
  patient waiting @ 100;
  int vid;
  int seed;
}

struct patient {
  patient next @ 60;
  int entered;
  int assessed;
  int pid;
}

patient sim(village v, int time) {
  if (v == null) { return null; }
  patient r0 = future sim(v->child0, time);
  patient r1 = future sim(v->child1, time);
  patient r2 = future sim(v->child2, time);
  patient r3 = future sim(v->child3, time);
  patient q = v->waiting;
  while (q != null) {
    work(20);
    q = q->next;
  }
  work(80);
  patient up = touch(r0);
  touch(r1);
  touch(r2);
  touch(r3);
  return up;
}
|}

(* Village record:
   [child0..3; waiting; assess; inside; vid; treated; waitsum].
   Patient record: [next; entered; assessed; pid]. *)
let v_child i = i
let v_waiting = 4
let v_assess = 5
let v_inside = 6
let v_vid = 7
let v_treated = 8
let v_waitsum = 9
let village_words = 10

let p_next = 0
let p_entered = 1
let p_assessed = 2
let p_pid = 3
let patient_words = 4

type sites = {
  s_child : Site.t; (* tree traversal: migrate *)
  s_vfield : Site.t; (* village scalars and list heads: migrate (local) *)
  s_pnext : Site.t; (* patient chain links: cache *)
  s_pfield : Site.t; (* patient record fields: cache *)
}

let make_sites () =
  let _sel, mech = sites_of_ir ir in
  {
    s_child =
      site_of mech ~func:"sim" ~var:"v" ~field:"child0" ~fallback:C.Migrate;
    s_vfield =
      site_of mech ~func:"sim" ~var:"v" ~field:"waiting" ~fallback:C.Migrate;
    s_pnext = site_of mech ~func:"sim" ~var:"q" ~field:"next" ~fallback:C.Cache;
    s_pfield =
      site_of mech ~func:"sim" ~var:"q" ~field:"entered" ~fallback:C.Cache;
  }

(* Simulation parameters. *)
let branching = 4
let assess_time = 3
let treat_time = 10
let village_work = 700
let patient_work = 20

let levels_for scale = if scale >= 8 then 4 else if scale >= 2 then 5 else 6
let steps_for scale = if scale >= 4 then 20 else 40

let village_count levels =
  let rec go l acc pow = if l = 0 then acc else go (l - 1) (acc + pow) (pow * branching) in
  go levels 0 1

(* Pure decision hashes: identical on both sides. *)
let mix a b =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca6b) in
  let h = h lxor (h lsr 13) in
  h land 0x3fffffff

let generates ~vid ~time = mix vid (time + 7) mod 3 = 0
let treats_here ~vid ~pid = mix (vid + 13) pid mod 10 < 9

(* --- Host-side reference ----------------------------------------------- *)

module Reference = struct
  type patient = { mutable entered : int; pid : int }

  type village = {
    vid : int;
    level : int;
    children : village list;
    mutable waiting : patient list;
    mutable assess : patient list;
    mutable inside : (int * patient) list; (* assessed time, patient *)
    mutable treated : int;
    mutable waitsum : int;
  }

  let rec make ~vid ~level =
    let children =
      if level = 0 then []
      else
        List.init branching (fun i ->
            make ~vid:((vid * branching) + i + 1) ~level:(level - 1))
    in
    {
      vid;
      level;
      children;
      waiting = [];
      assess = [];
      inside = [];
      treated = 0;
      waitsum = 0;
    }

  (* One step at one village; returns patients referred up. *)
  let step_village ~time ~top v =
    v.inside <-
      List.filter (fun (at, _) -> time - at < treat_time) v.inside;
    let done_, rest =
      List.partition (fun p -> time - p.entered >= assess_time) v.assess
    in
    v.assess <- rest;
    let referred =
      List.filter
        (fun p ->
          if top || treats_here ~vid:v.vid ~pid:p.pid then begin
            v.treated <- v.treated + 1;
            v.waitsum <- v.waitsum + (time - p.entered);
            v.inside <- (time, p) :: v.inside;
            false
          end
          else true)
        done_
    in
    v.assess <- v.assess @ v.waiting;
    v.waiting <- [];
    if generates ~vid:v.vid ~time then
      v.waiting <-
        { entered = time; pid = mix v.vid time } :: v.waiting;
    referred

  let rec step ~time ~top v =
    let from_children =
      List.concat_map (step ~time ~top:false) v.children
    in
    let own = step_village ~time ~top v in
    List.iter
      (fun p ->
        p.entered <- time;
        v.waiting <- p :: v.waiting)
      from_children;
    own

  let run ~levels ~steps =
    let root = make ~vid:0 ~level:(levels - 1) in
    for time = 0 to steps - 1 do
      ignore (step ~time ~top:true root)
    done;
    let rec totals v =
      List.fold_left
        (fun (t, w) c ->
          let t', w' = totals c in
          (t + t', w + w'))
        (v.treated, v.waitsum) v.children
    in
    totals root
end

(* --- The Olden program ------------------------------------------------- *)

let build sites ~levels =
  let nprocs = Ops.nprocs () in
  let all = ref [] in
  let rec go ~vid ~level ~lo ~hi =
    let v = Ops.alloc ~proc:lo village_words in
    all := v :: !all;
    Ops.store_int sites.s_vfield v v_vid vid;
    Ops.store_int sites.s_vfield v v_treated 0;
    Ops.store_int sites.s_vfield v v_waitsum 0;
    Ops.store_ptr sites.s_vfield v v_waiting Gptr.null;
    Ops.store_ptr sites.s_vfield v v_assess Gptr.null;
    Ops.store_ptr sites.s_vfield v v_inside Gptr.null;
    for i = 0 to branching - 1 do
      let child =
        if level = 0 then Gptr.null
        else begin
          (* earlier-futurecalled children go to the far end of the range,
             as in TreeAdd, so their bodies migrate while the last child
             (spawned last) stays local and runs inline *)
          let span = hi - lo in
          let j = branching - 1 - i in
          let clo = lo + (j * span / branching) in
          let chi = lo + ((j + 1) * span / branching) in
          let clo = min clo (nprocs - 1) in
          go
            ~vid:((vid * branching) + i + 1)
            ~level:(level - 1) ~lo:clo ~hi:(max chi (clo + 1))
        end
      in
      Ops.store_ptr sites.s_child v (v_child i) child
    done;
    v
  in
  let root = Ops.call (fun () -> go ~vid:0 ~level:(levels - 1) ~lo:0 ~hi:nprocs) in
  (root, List.rev !all)

(* Walk the [v_inside] list dropping discharged patients.  Order-free. *)
let filter_inside sites v ~time =
  let rec go p kept =
    if Gptr.is_null p then kept
    else begin
      let next = Ops.load_ptr sites.s_pnext p p_next in
      let at = Ops.load_int sites.s_pfield p p_assessed in
      Ops.work patient_work;
      if time - at < treat_time then begin
        Ops.store_ptr sites.s_pnext p p_next kept;
        go next p
      end
      else go next kept
    end
  in
  let head = Ops.load_ptr sites.s_vfield v v_inside in
  Ops.store_ptr sites.s_vfield v v_inside (go head Gptr.null)

(* Scan the assess list: finished patients are treated here or referred.
   Returns the head of the referred chain. *)
let scan_assess sites v ~vid ~time ~top =
  let rec go p still referred =
    if Gptr.is_null p then (still, referred)
    else begin
      let next = Ops.load_ptr sites.s_pnext p p_next in
      let entered = Ops.load_int sites.s_pfield p p_entered in
      Ops.work patient_work;
      if time - entered >= assess_time then begin
        let pid = Ops.load_int sites.s_pfield p p_pid in
        if top || treats_here ~vid ~pid then begin
          Ops.store_int sites.s_vfield v v_treated
            (Ops.load_int sites.s_vfield v v_treated + 1);
          Ops.store_int sites.s_vfield v v_waitsum
            (Ops.load_int sites.s_vfield v v_waitsum + (time - entered));
          Ops.store_int sites.s_pfield p p_assessed time;
          Ops.store_ptr sites.s_pnext p p_next
            (Ops.load_ptr sites.s_vfield v v_inside);
          Ops.store_ptr sites.s_vfield v v_inside p;
          go next still referred
        end
        else begin
          Ops.store_ptr sites.s_pnext p p_next referred;
          go next still p
        end
      end
      else begin
        Ops.store_ptr sites.s_pnext p p_next still;
        go next p referred
      end
    end
  in
  let head = Ops.load_ptr sites.s_vfield v v_assess in
  let still, referred = go head Gptr.null Gptr.null in
  Ops.store_ptr sites.s_vfield v v_assess still;
  referred

(* Move the waiting list into assess, generate a possible new patient. *)
let admit sites v ~vid ~time =
  (* concatenate waiting onto assess *)
  let waiting = Ops.load_ptr sites.s_vfield v v_waiting in
  if not (Gptr.is_null waiting) then begin
    let rec tail p =
      let next = Ops.load_ptr sites.s_pnext p p_next in
      if Gptr.is_null next then p else tail next
    in
    let t = tail waiting in
    Ops.store_ptr sites.s_pnext t p_next
      (Ops.load_ptr sites.s_vfield v v_assess);
    Ops.store_ptr sites.s_vfield v v_assess waiting;
    Ops.store_ptr sites.s_vfield v v_waiting Gptr.null
  end;
  if generates ~vid ~time then begin
    let p = Ops.alloc ~proc:(Ops.self ()) patient_words in
    Ops.store_int sites.s_pfield p p_entered time;
    Ops.store_int sites.s_pfield p p_assessed 0;
    Ops.store_int sites.s_pfield p p_pid (mix vid time);
    Ops.store_ptr sites.s_pnext p p_next
      (Ops.load_ptr sites.s_vfield v v_waiting);
    Ops.store_ptr sites.s_vfield v v_waiting p
  end

(* Link a chain of referred patients (living on children's processors)
   into this village's waiting list: the cached accesses of the paper.
   The running list head is kept in a register so the patient-record
   traffic is all on the chain's side: under migration the thread moves to
   the chain once and comes back once, rather than bouncing per field. *)
let absorb sites v ~time chain =
  if not (Gptr.is_null chain) then begin
    let rec go p head =
      if Gptr.is_null p then head
      else begin
        let next = Ops.load_ptr sites.s_pnext p p_next in
        Ops.store_int sites.s_pfield p p_entered time;
        Ops.store_ptr sites.s_pnext p p_next head;
        Ops.work patient_work;
        go next p
      end
    in
    let head = go chain (Ops.load_ptr sites.s_vfield v v_waiting) in
    Ops.store_ptr sites.s_vfield v v_waiting head
  end

(* One simulation step over the subtree rooted at [v]; returns the chain of
   patients referred up.  The four child steps are futurecalled; touching
   them after the local work overlaps subtree execution. *)
let rec sim sites v ~time ~top =
  if Gptr.is_null v then Gptr.null
  else begin
    let futs =
      Array.init branching (fun i ->
          let child = Ops.load_ptr sites.s_child v (v_child i) in
          Ops.future (fun () ->
              Value.Ptr (sim sites child ~time ~top:false)))
    in
    let vid = Ops.load_int sites.s_vfield v v_vid in
    Ops.work village_work;
    filter_inside sites v ~time;
    let referred = scan_assess sites v ~vid ~time ~top in
    admit sites v ~vid ~time;
    Array.iter
      (fun f -> absorb sites v ~time (Value.to_ptr (Ops.touch f)))
      futs;
    referred
  end

let run cfg ~scale =
  let levels = levels_for scale and steps = steps_for scale in
  execute cfg ~program:(fun engine ->
      let sites = make_sites () in
      let root, villages = build sites ~levels in
      Ops.phase "kernel";
      for time = 0 to steps - 1 do
        ignore (Ops.call (fun () -> sim sites root ~time ~top:true))
      done;
      let expected_treated, expected_waitsum = Reference.run ~levels ~steps in
      let memory = Engine.memory engine in
      let treated, waitsum =
        List.fold_left
          (fun (t, w) v ->
            ( t + Value.to_int (Memory.load memory v v_treated),
              w + Value.to_int (Memory.load memory v v_waitsum) ))
          (0, 0) villages
      in
      ( Printf.sprintf "treated=%d waitsum=%d (villages=%d)" treated waitsum
          (village_count levels),
        treated = expected_treated && waitsum = expected_waitsum ))

let spec =
  {
    name = "Health";
    descr = "Simulates the Colombian health care system";
    problem = "1365 villages";
    choice = "M+C";
    whole_program = true;
    (* several village fibers share each processor and allocate patient
       records mid-simulation, so heap addresses follow the scheduler *)
    heap_stable = false;
    ir;
    default_scale = 1;
    run;
  }
