(* The flight recorder: a bounded ring of span events kept in fixed int
   arrays so that recording is allocation-free — it can stay on for the
   whole of a chaos run without perturbing the host allocator, and when a
   run wedges (deadlock, undeliverable message, invariant failure) the
   last [capacity] events are still in memory to dump post mortem.

   The ring stores raw integers; naming the kind codes and rendering the
   dump is the span layer's job ({!Span.flight_dump}), which keeps this
   module dependency-free.  Events survive {!disable}: the dump runs from
   a top-level exception handler, after the driver's cleanup path has
   already turned recording off.

   All recorder state is domain-local: chaos points running on different
   domains of the parallel sweep driver each keep their own ring and dump
   path, so concurrent faulty runs cannot interleave their post-mortems. *)

let fields = 10
(* slot layout: trace_proc, trace_seq, id, parent, kind code, proc, t0,
   t1, a, b *)

type recorder = {
  mutable cap : int;
  mutable buf : int array;
  mutable head : int; (* events ever recorded; the ring keeps the last [cap] *)
  mutable enabled : bool;
  mutable path : string;
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        cap = 0;
        buf = [||];
        head = 0;
        enabled = false;
        path = "flight-recorder.dump";
      })

let recorder () = Domain.DLS.get key

let default_capacity = 512

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Flight.enable: capacity < 1";
  let r = recorder () in
  if r.cap <> capacity then begin
    r.cap <- capacity;
    r.buf <- Array.make (capacity * fields) 0
  end;
  r.head <- 0;
  r.enabled <- true

let disable () = (recorder ()).enabled <- false
let is_enabled () = (recorder ()).enabled
let capacity () = (recorder ()).cap
let recorded () = (recorder ()).head

let set_path p = (recorder ()).path <- p
let get_path () = (recorder ()).path

(* Record one event.  Callers guard on {!is_enabled}; nothing here
   allocates. *)
let note ~tp ~ts ~id ~parent ~kind ~proc ~t0 ~t1 ~a ~b =
  let r = recorder () in
  let base = r.head mod r.cap * fields in
  let arr = r.buf in
  arr.(base) <- tp;
  arr.(base + 1) <- ts;
  arr.(base + 2) <- id;
  arr.(base + 3) <- parent;
  arr.(base + 4) <- kind;
  arr.(base + 5) <- proc;
  arr.(base + 6) <- t0;
  arr.(base + 7) <- t1;
  arr.(base + 8) <- a;
  arr.(base + 9) <- b;
  r.head <- r.head + 1

(* The retained events, oldest first, each as a [fields]-slot array. *)
let events () =
  let r = recorder () in
  if r.cap = 0 then [||]
  else begin
    let n = min r.head r.cap in
    let first = r.head - n in
    Array.init n (fun i ->
        let base = (first + i) mod r.cap * fields in
        Array.sub r.buf base fields)
  end

(* Dump the retained events plus caller-supplied per-processor state to
   [get_path ()].  [render] names one event line (the span layer knows
   the kind codes).  Returns the path written, or [None] when nothing was
   ever recorded. *)
let dump ~reason ~state ~render () =
  let r = recorder () in
  if r.cap = 0 then None
  else begin
    let file = r.path in
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "olden flight-recorder dump\nreason: %s\n" reason;
        let evs = events () in
        Printf.fprintf oc "events retained: %d (of %d recorded, ring %d)\n"
          (Array.length evs) r.head r.cap;
        if state <> [] then begin
          output_string oc "machine state:\n";
          List.iter (fun line -> Printf.fprintf oc "  %s\n" line) state
        end;
        output_string oc "last events (oldest first):\n";
        Array.iter
          (fun ev -> Printf.fprintf oc "  %s\n" (render ev))
          evs);
    Some file
  end
