(** Causal span tracing: every dereference opens a root span carrying a
    trace context (trace id = (origin proc, sequence), parent span id)
    that is propagated into scheduled cross-processor work, so migration
    legs, return stubs, retransmits, recovery messages, and crash
    replays form one causal tree per episode.  Zero-cost when off: one
    boolean load per hook. *)

module Json = Olden_trace.Json

type kind =
  | Deref  (** root: one dereference episode; a = site, b = mechanism *)
  | Return  (** root: return stub to origin; a = target proc *)
  | Send  (** hop: request marshalling + send occupancy; a = target *)
  | Wire  (** hop: network latency *)
  | Penalty  (** hop: fault-injected delivery penalty; a = cycles *)
  | Queue  (** hop: waiting in the target's event queue *)
  | Replay  (** hop: crash-recovery replay before the op re-runs *)
  | Recv  (** hop: receive + cache/thread state acquisition *)
  | Service  (** hop: running the continuation at the target *)
  | Cache_service  (** hop: software-cache service after a fallback *)
  | Stall  (** hop: sender stalled; a = penalty, b = attempts *)
  | Drop  (** event: message dropped; a = attempt, b = 1 if outage *)
  | Backoff  (** event: retry backoff; a = attempt, b = wait *)
  | Delay  (** event: fault-injected latency; a = cycles *)
  | Dup  (** event: duplicate delivery suppressed *)
  | Fallback  (** event: migration degraded; a = home, b = attempts *)
  | Rpc  (** event: request/reply envelope; a = dst, b = klass code *)
  | Crash  (** event: crash + restart; a = pages lost, b = homes *)
  | Failover  (** event: fail-stop promotion; a = pages moved, b = victim *)
  | Request  (** root: one served request; a = class code, b = ingress proc *)

type span = {
  trace_proc : int;
  trace_seq : int;
  id : int;
  parent : int;  (** -1 for roots *)
  kind : kind;
  proc : int;  (** clock domain that times this span *)
  t0 : int;
  t1 : int;
  a : int;  (** kind-specific payload *)
  b : int;
}

val kind_code : kind -> int
val kind_of_code : int -> kind
val kind_name : kind -> string
val is_hop : kind -> bool
val is_root : kind -> bool

(** {1 Sink} *)

val is_on : unit -> bool
(** True when the collector or the flight recorder is active — the one
    word read every instrumentation site is guarded by. *)

val install : (span -> unit) -> unit
val uninstall : unit -> unit

(** {1 Flight recorder} *)

val flight_enable : ?capacity:int -> unit -> unit
(** Turn on the allocation-free ring recorder (see {!Flight}). *)

val flight_disable : unit -> unit
(** Stop recording; the ring contents are kept for a post-mortem
    {!flight_dump}. *)

val flight_set_path : string -> unit
val flight_path : unit -> string

val flight_dump : reason:string -> state:string list -> string option
(** Write the retained events plus per-processor state lines to the
    configured path; [None] if the recorder was never enabled. *)

(** {1 Ambient context}

    The emitting side keeps the episode in flight as mutable context:
    the trace id, the current parent span id, and the open root.  All
    writes are guarded by {!is_on} at the call sites. *)

type saved
(** Snapshot of the ambient context, captured into scheduled-event
    closures ([save]) and reinstated when they run ([restore]) — this is
    how the trace context crosses the wire. *)

val no_ctx : saved
(** Preallocated empty snapshot (for closures built while off). *)

val save : unit -> saved
val restore : saved -> unit
val clear : unit -> unit

val reset : unit -> unit
(** Restart ids and per-processor sequences (once per [exec]), so
    same-seed runs export byte-identical spans. *)

val root_open : unit -> bool
val open_root : kind:kind -> proc:int -> t0:int -> unit
val close_root : t1:int -> a:int -> b:int -> unit
(** Emit the open root (parent -1) and clear the context; no-op when no
    root is open. *)

val root : kind:kind -> proc:int -> t0:int -> t1:int -> a:int -> b:int -> unit
(** Emit one complete root episode (parent -1) under a fresh trace id
    without touching the ambient context — used for request roots, which
    are recorded at completion so the dereference roots inside the
    request body keep their own episodes. *)

val child : kind:kind -> proc:int -> t0:int -> t1:int -> a:int -> b:int -> unit
(** Emit one span under the current context. *)

val parent : unit -> int
val enter : unit -> int
(** Reserve a fresh span id and make it the current parent — children
    emitted until the matching {!exit_emit} nest under it. *)

val exit_emit :
  id:int -> prev:int -> kind:kind -> proc:int -> t0:int -> t1:int -> a:int ->
  b:int -> unit
(** Emit the envelope span reserved by {!enter} and restore [prev] as
    the parent. *)

val trace_proc : unit -> int
(** Trace id of the episode in flight (-1 when none) — how [Monitor]
    links exemplars to spans. *)

val trace_seq : unit -> int

val last_span_on : int -> int
(** Last span id emitted on a processor (-1 if none) — surfaces in the
    deadlock report. *)

(** {1 Collection & export} *)

module Collector : sig
  type t

  val create : unit -> t
  val add : t -> span -> unit
  val length : t -> int
  val spans : t -> span array
end

val collect : (unit -> 'a) -> 'a * span array
(** Run [f] with a fresh collector installed; returns its result and the
    spans in emission order. *)

val span_json : span -> Json.t

val jsonl : span array -> string
(** The byte-stable [olden-spans/v1] export: a schema header line, then
    one span object per line in emission order. *)

val chrome_json : nprocs:int -> span array -> Json.t
val chrome_to_string : nprocs:int -> span array -> string
(** Chrome trace_event export: complete slices per processor track plus
    flow arrows where a child span runs on a different processor. *)

(** {1 Episode reconstruction} *)

type node = { span : span; mutable kids : node list }

val episode_tree :
  span array -> trace_proc:int -> trace_seq:int -> node option
(** The causal tree of one episode (children ordered by t0 then id);
    [None] if that trace id never completed a root span. *)

val describe : site_name:(int -> string) -> span -> string
(** One human-readable line for a span. *)

val explain :
  Buffer.t -> site_name:(int -> string) -> span array -> trace_proc:int ->
  trace_seq:int -> unit
(** Pretty-print one episode's causal chain: the tree, then hop
    accounting where direct hop children plus a synthesized "(compute)"
    residual sum exactly to the episode latency. *)
