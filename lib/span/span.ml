(* Causal span tracing for the Olden runtime.

   Every dereference opens a *root* span identified by a trace id
   (origin processor, per-processor sequence number); the engine and the
   machine layer then emit *child* spans under an ambient context — the
   current trace id plus the current parent span id — which is saved
   into scheduled-event closures and restored when they run, so
   migration legs, return stubs, retransmits, duplicate-suppressed
   deliveries, recovery messages, and crash replays all land in one
   causal tree even though they execute on other processors' clocks.

   Span kinds split three ways:

   - roots ([Deref], [Return]) — one per episode;
   - hops ([Send] .. [Stall]) — intervals that tile the episode: the
     durations of a root's direct hop children plus a synthesized
     "compute" residual always sum exactly to the episode latency
     (see {!explain});
   - events ([Drop] .. [Crash]) — point or overlapping annotations
     (fault decisions, retries, RPC envelopes) that explain *why* the
     hops took as long as they did.

   Like {!Trace}, emission must cost nothing when off: every site is
   guarded by [is_on ()], one boolean load.  The sink has two consumers
   with different cost budgets: the collector (allocates one record per
   span, only for export/tests) and the flight recorder ({!Flight}, a
   fixed int ring that is allocation-free and can stay on for whole
   chaos runs).  [on] is true when either is active. *)

module Json = Olden_trace.Json

type kind =
  | Deref (* root: one dereference episode; a = site, b = mechanism *)
  | Return (* root: return stub to origin; a = target proc *)
  | Send (* hop: request marshalling + send occupancy; a = target *)
  | Wire (* hop: network latency *)
  | Penalty (* hop: fault-injected delivery penalty; a = cycles *)
  | Queue (* hop: waiting in the target's event queue *)
  | Replay (* hop: crash-recovery replay before the op re-runs *)
  | Recv (* hop: receive + cache/thread state acquisition *)
  | Service (* hop: running the continuation at the target *)
  | Cache_service (* hop: software-cache service after a fallback *)
  | Stall (* hop: sender stalled by failed delivery; a = penalty, b = attempts *)
  | Drop (* event: message dropped; a = attempt, b = 1 if outage *)
  | Backoff (* event: retry backoff wait; a = attempt, b = wait *)
  | Delay (* event: fault-injected extra latency; a = cycles *)
  | Dup (* event: duplicate delivery suppressed *)
  | Fallback (* event: migration degraded to caching; a = home, b = attempts *)
  | Rpc (* event: one request/reply envelope; a = dst, b = klass code *)
  | Crash (* event: crash + warm restart; a = pages lost, b = homes notified *)
  | Failover (* event: fail-stop promotion; a = pages moved, b = victim *)
  | Request (* root: one served request; a = class code, b = ingress proc *)

type span = {
  trace_proc : int; (* trace id: processor that opened the root... *)
  trace_seq : int; (* ...and its per-processor root sequence number *)
  id : int; (* unique within a run, in emission order of [enter]/[child] *)
  parent : int; (* parent span id; -1 for roots *)
  kind : kind;
  proc : int; (* processor whose clock domain times this span *)
  t0 : int; (* simulated cycles, inclusive *)
  t1 : int; (* simulated cycles; t0 = t1 for point events *)
  a : int; (* kind-specific payload (see above) *)
  b : int;
}

let kind_code = function
  | Deref -> 0
  | Return -> 1
  | Send -> 2
  | Wire -> 3
  | Penalty -> 4
  | Queue -> 5
  | Replay -> 6
  | Recv -> 7
  | Service -> 8
  | Cache_service -> 9
  | Stall -> 10
  | Drop -> 11
  | Backoff -> 12
  | Delay -> 13
  | Dup -> 14
  | Fallback -> 15
  | Rpc -> 16
  | Crash -> 17
  | Failover -> 18
  | Request -> 19

let kind_of_code = function
  | 0 -> Deref
  | 1 -> Return
  | 2 -> Send
  | 3 -> Wire
  | 4 -> Penalty
  | 5 -> Queue
  | 6 -> Replay
  | 7 -> Recv
  | 8 -> Service
  | 9 -> Cache_service
  | 10 -> Stall
  | 11 -> Drop
  | 12 -> Backoff
  | 13 -> Delay
  | 14 -> Dup
  | 15 -> Fallback
  | 16 -> Rpc
  | 17 -> Crash
  | 18 -> Failover
  | 19 -> Request
  | c -> invalid_arg (Printf.sprintf "Span.kind_of_code: %d" c)

let kind_name = function
  | Deref -> "deref"
  | Return -> "return"
  | Send -> "send"
  | Wire -> "wire"
  | Penalty -> "penalty"
  | Queue -> "queue"
  | Replay -> "replay"
  | Recv -> "recv"
  | Service -> "service"
  | Cache_service -> "cache_service"
  | Stall -> "stall"
  | Drop -> "drop"
  | Backoff -> "backoff"
  | Delay -> "delay"
  | Dup -> "dup"
  | Fallback -> "fallback"
  | Rpc -> "rpc"
  | Crash -> "crash"
  | Failover -> "failover"
  | Request -> "request"

(* Hops tile an episode; events annotate it; roots own it. *)
let is_hop = function
  | Send | Wire | Penalty | Queue | Replay | Recv | Service | Cache_service
  | Stall ->
      true
  | Deref | Return | Drop | Backoff | Delay | Dup | Fallback | Rpc | Crash
  | Failover | Request ->
      false

let is_root = function Deref | Return | Request -> true | _ -> false

(* --- The sink ----------------------------------------------------------- *)

(* All ambient span state — the sink, the in-flight trace context, and
   the per-processor sequence/last-span arrays — lives in one record
   behind a domain-local key: engines running on different domains (the
   parallel sweep driver) keep fully independent span streams, and
   [Span.reset] per run keeps each stream's ids deterministic.  Hot hooks
   pay one [Domain.DLS.get] and field loads. *)

let max_procs = 1024

type state = {
  mutable on : bool;
  mutable collector_on : bool;
  mutable sink : span -> unit;
  mutable next_id : int;
  mutable ctx_tp : int; (* trace id of the episode in flight, -1 when none *)
  mutable ctx_ts : int;
  mutable ctx_parent : int; (* span id new children attach to *)
  mutable root_id : int;
  mutable root_t0 : int;
  mutable root_proc : int;
  mutable root_kind : int;
  root_seq : int array; (* next trace_seq per processor *)
  last_span : int array; (* last span id emitted per proc *)
}

let key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        collector_on = false;
        sink = (fun _ -> ());
        next_id = 0;
        ctx_tp = -1;
        ctx_ts = -1;
        ctx_parent = -1;
        root_id = -1;
        root_t0 = 0;
        root_proc = -1;
        root_kind = 0;
        root_seq = Array.make max_procs 0;
        last_span = Array.make max_procs (-1);
      })

let state () = Domain.DLS.get key

let refresh_on () =
  let g = state () in
  g.on <- g.collector_on || Flight.is_enabled ()

let is_on () = (state ()).on

let install sink =
  let g = state () in
  g.sink <- sink;
  g.collector_on <- true;
  refresh_on ()

let uninstall () =
  let g = state () in
  g.collector_on <- false;
  g.sink <- (fun _ -> ());
  refresh_on ()

let flight_enable ?capacity () =
  Flight.enable ?capacity ();
  refresh_on ()

let flight_disable () =
  Flight.disable ();
  refresh_on ()

let flight_set_path = Flight.set_path
let flight_path = Flight.get_path

(* --- Ambient context ---------------------------------------------------- *)

type saved = {
  s_tp : int;
  s_ts : int;
  s_parent : int;
  s_root : int;
  s_rt0 : int;
  s_rproc : int;
  s_rkind : int;
}

let no_ctx =
  {
    s_tp = -1;
    s_ts = -1;
    s_parent = -1;
    s_root = -1;
    s_rt0 = 0;
    s_rproc = -1;
    s_rkind = 0;
  }

let save () =
  let g = state () in
  {
    s_tp = g.ctx_tp;
    s_ts = g.ctx_ts;
    s_parent = g.ctx_parent;
    s_root = g.root_id;
    s_rt0 = g.root_t0;
    s_rproc = g.root_proc;
    s_rkind = g.root_kind;
  }

let restore s =
  let g = state () in
  g.ctx_tp <- s.s_tp;
  g.ctx_ts <- s.s_ts;
  g.ctx_parent <- s.s_parent;
  g.root_id <- s.s_root;
  g.root_t0 <- s.s_rt0;
  g.root_proc <- s.s_rproc;
  g.root_kind <- s.s_rkind

let clear () = restore no_ctx

let reset () =
  let g = state () in
  g.next_id <- 0;
  clear ();
  Array.fill g.root_seq 0 max_procs 0;
  Array.fill g.last_span 0 max_procs (-1)

let trace_proc () = (state ()).ctx_tp
let trace_seq () = (state ()).ctx_ts
let parent () = (state ()).ctx_parent
let root_open () = (state ()).root_id >= 0

let last_span_on proc =
  if proc < max_procs then (state ()).last_span.(proc) else -1

(* --- Emission ----------------------------------------------------------- *)

(* The collector consumer allocates the record; the flight recorder
   stores raw ints.  Guarding each consumer separately keeps the
   flight-only path (chaos runs) allocation-free. *)
let emit_raw ~tp ~ts ~id ~parent ~kind ~proc ~t0 ~t1 ~a ~b =
  let g = state () in
  if proc >= 0 && proc < max_procs then g.last_span.(proc) <- id;
  if Flight.is_enabled () then
    Flight.note ~tp ~ts ~id ~parent ~kind:(kind_code kind) ~proc ~t0 ~t1 ~a ~b;
  if g.collector_on then
    g.sink { trace_proc = tp; trace_seq = ts; id; parent; kind; proc; t0; t1; a; b }

let fresh_id () =
  let g = state () in
  let id = g.next_id in
  g.next_id <- id + 1;
  id

let open_root ~kind ~proc ~t0 =
  let g = state () in
  let seq = g.root_seq.(proc) in
  g.root_seq.(proc) <- seq + 1;
  g.ctx_tp <- proc;
  g.ctx_ts <- seq;
  let id = fresh_id () in
  g.root_id <- id;
  g.ctx_parent <- id;
  g.root_t0 <- t0;
  g.root_proc <- proc;
  g.root_kind <- kind_code kind

let close_root ~t1 ~a ~b =
  let g = state () in
  if g.root_id >= 0 then begin
    emit_raw ~tp:g.ctx_tp ~ts:g.ctx_ts ~id:g.root_id ~parent:(-1)
      ~kind:(kind_of_code g.root_kind) ~proc:g.root_proc ~t0:g.root_t0 ~t1 ~a ~b;
    clear ()
  end

(* A complete root episode in one shot (used for request roots, emitted
   at completion).  Unlike [open_root]/[close_root] this never touches
   the ambient context, so the dereference roots the request's body
   opened and closed on its own clock are unaffected — the request root
   gets its own trace id and stands alone in the stream. *)
let root ~kind ~proc ~t0 ~t1 ~a ~b =
  let g = state () in
  let seq = g.root_seq.(proc) in
  g.root_seq.(proc) <- seq + 1;
  emit_raw ~tp:proc ~ts:seq ~id:(fresh_id ()) ~parent:(-1) ~kind ~proc ~t0 ~t1
    ~a ~b

let child ~kind ~proc ~t0 ~t1 ~a ~b =
  let g = state () in
  emit_raw ~tp:g.ctx_tp ~ts:g.ctx_ts ~id:(fresh_id ()) ~parent:g.ctx_parent
    ~kind ~proc ~t0 ~t1 ~a ~b

(* Nested envelope spans (RPC, crash): reserve the id up front so fault
   events emitted inside attach to it, emit the envelope on exit.
   Usage:  let prev = parent () in let id = enter () in
           ... ; exit_emit ~id ~prev ~kind ... *)
let enter () =
  let id = fresh_id () in
  (state ()).ctx_parent <- id;
  id

let exit_emit ~id ~prev ~kind ~proc ~t0 ~t1 ~a ~b =
  let g = state () in
  g.ctx_parent <- prev;
  emit_raw ~tp:g.ctx_tp ~ts:g.ctx_ts ~id ~parent:prev ~kind ~proc ~t0 ~t1 ~a ~b

(* --- Collector ----------------------------------------------------------- *)

module Collector = struct
  type t = { mutable arr : span option array; mutable len : int }

  let create () = { arr = Array.make 1024 None; len = 0 }

  let add c sp =
    if c.len = Array.length c.arr then begin
      let bigger = Array.make (2 * c.len) None in
      Array.blit c.arr 0 bigger 0 c.len;
      c.arr <- bigger
    end;
    c.arr.(c.len) <- Some sp;
    c.len <- c.len + 1

  let length c = c.len

  let spans c =
    Array.init c.len (fun i ->
        match c.arr.(i) with Some sp -> sp | None -> assert false)
end

let collect f =
  let c = Collector.create () in
  install (Collector.add c);
  Fun.protect ~finally:uninstall (fun () ->
      let result = f () in
      (result, Collector.spans c))

(* --- olden-spans/v1 JSONL ------------------------------------------------ *)

let trace_label tp ts = string_of_int tp ^ ":" ^ string_of_int ts

let span_json sp =
  Json.Obj
    [
      ("trace", Json.String (trace_label sp.trace_proc sp.trace_seq));
      ("id", Json.Int sp.id);
      ("parent", Json.Int sp.parent);
      ("kind", Json.String (kind_name sp.kind));
      ("proc", Json.Int sp.proc);
      ("t0", Json.Int sp.t0);
      ("t1", Json.Int sp.t1);
      ("a", Json.Int sp.a);
      ("b", Json.Int sp.b);
    ]

let jsonl spans =
  let b = Buffer.create 4096 in
  Json.to_buffer b
    (Json.Obj
       [
         ("schema", Json.String "olden-spans/v1");
         ("spans", Json.Int (Array.length spans));
       ]);
  Buffer.add_char b '\n';
  Array.iter
    (fun sp ->
      Json.to_buffer b (span_json sp);
      Buffer.add_char b '\n')
    spans;
  Buffer.contents b

(* --- Chrome trace_event export ------------------------------------------ *)

(* Complete ("X") slices, one track per processor, plus flow arrows from
   a parent span's track to each child that runs on a different
   processor — migration legs and return stubs draw as arrows across
   tracks.  Cycles render as microseconds, like {!Chrome_trace}. *)
let chrome_json ~nprocs spans =
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let metadata =
    meta "process_name" 0 [ ("name", Json.String "olden spans") ]
    :: List.concat
         (List.init nprocs (fun p ->
              [
                meta "thread_name" p
                  [ ("name", Json.String (Printf.sprintf "proc %d" p)) ];
                meta "thread_sort_index" p [ ("sort_index", Json.Int p) ];
              ]))
  in
  let by_id = Hashtbl.create (Array.length spans) in
  Array.iter (fun sp -> Hashtbl.replace by_id sp.id sp) spans;
  let slice sp =
    Json.Obj
      [
        ("name", Json.String (kind_name sp.kind));
        ("ph", Json.String "X");
        ("ts", Json.Int sp.t0);
        ("dur", Json.Int (sp.t1 - sp.t0));
        ("pid", Json.Int 0);
        ("tid", Json.Int sp.proc);
        ( "args",
          Json.Obj
            [
              ("trace", Json.String (trace_label sp.trace_proc sp.trace_seq));
              ("id", Json.Int sp.id);
              ("parent", Json.Int sp.parent);
              ("a", Json.Int sp.a);
              ("b", Json.Int sp.b);
            ] );
      ]
  in
  let flow ~phase ~id ~ts ~tid extra =
    Json.Obj
      ([
         ("name", Json.String "causal");
         ("cat", Json.String "flow");
         ("ph", Json.String phase);
         ("id", Json.Int id);
         ("ts", Json.Int ts);
         ("pid", Json.Int 0);
         ("tid", Json.Int tid);
       ]
      @ extra)
  in
  let flows = ref [] in
  Array.iter
    (fun sp ->
      if sp.parent >= 0 then
        match Hashtbl.find_opt by_id sp.parent with
        | Some pa when pa.proc <> sp.proc && pa.proc >= 0 && sp.proc >= 0 ->
            flows :=
              flow ~phase:"f" ~id:sp.id ~ts:sp.t0 ~tid:sp.proc
                [ ("bp", Json.String "e") ]
              :: flow ~phase:"s" ~id:sp.id ~ts:(min pa.t1 sp.t0) ~tid:pa.proc []
              :: !flows
        | _ -> ())
    spans;
  let slices = Array.to_list (Array.map slice spans) in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata @ slices @ List.rev !flows));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("schema", Json.String "olden-spans/v1");
            ("time_unit", Json.String "simulated cycles (shown as us)");
          ] );
    ]

let chrome_to_string ~nprocs spans =
  Json.to_string (chrome_json ~nprocs spans) ^ "\n"

(* --- Episode reconstruction & explain ----------------------------------- *)

type node = { span : span; mutable kids : node list (* reverse order *) }

(* Build the causal tree of one episode, identified by its trace id.
   Returns the root node, or [None] if the trace id never completed a
   root span. *)
let episode_tree spans ~trace_proc ~trace_seq =
  let mine =
    Array.to_list spans
    |> List.filter (fun sp ->
           sp.trace_proc = trace_proc && sp.trace_seq = trace_seq)
  in
  let nodes = List.map (fun sp -> (sp.id, { span = sp; kids = [] })) mine in
  let find id = List.assoc_opt id nodes in
  let root = ref None in
  List.iter
    (fun (_, n) ->
      if n.span.parent < 0 then begin
        if is_root n.span.kind then root := Some n
      end
      else
        match find n.span.parent with
        | Some p -> p.kids <- n :: p.kids
        | None -> ())
    nodes;
  (match !root with
  | Some r ->
      let rec order n =
        n.kids <-
          List.sort
            (fun x y ->
              if x.span.t0 <> y.span.t0 then compare x.span.t0 y.span.t0
              else compare x.span.id y.span.id)
            (List.rev n.kids);
        List.iter order n.kids
      in
      order r
  | None -> ());
  !root

let mech_names = [| "local"; "cache"; "migrate"; "fallback" |]
let klass_names = [| "data"; "migration"; "return"; "recovery"; "replica" |]
let request_class_names = [| "point"; "scan"; "update" |]

let array_name names i =
  if i >= 0 && i < Array.length names then names.(i) else string_of_int i

(* One human line per span kind; [site_name] labels dereference sites. *)
let describe ~site_name sp =
  let dur = sp.t1 - sp.t0 in
  let iv =
    if dur = 0 then Printf.sprintf "@%d" sp.t0
    else Printf.sprintf "[%d, %d] %d cy" sp.t0 sp.t1 dur
  in
  let detail =
    match sp.kind with
    | Deref ->
        Printf.sprintf "site %s mech=%s" (site_name sp.a)
          (array_name mech_names sp.b)
    | Return -> Printf.sprintf "to proc %d" sp.a
    | Send -> Printf.sprintf "to proc %d" sp.a
    | Wire -> "network latency"
    | Penalty -> Printf.sprintf "delivery penalty %d cy" sp.a
    | Queue -> "queued at target"
    | Replay -> "crash-recovery replay"
    | Recv -> "receive + state acquisition"
    | Service -> "continuation at target"
    | Cache_service -> "software-cache service"
    | Stall -> Printf.sprintf "sender stalled %d cy after %d attempts" sp.a sp.b
    | Drop ->
        Printf.sprintf "attempt %d dropped%s" sp.a
          (if sp.b <> 0 then " (outage)" else "")
    | Backoff -> Printf.sprintf "retry backoff %d cy before attempt %d" sp.b sp.a
    | Delay -> Printf.sprintf "delivery delayed %d cy" sp.a
    | Dup -> "duplicate suppressed"
    | Fallback ->
        Printf.sprintf "gave up migrating to home %d after %d attempts" sp.a
          sp.b
    | Rpc -> Printf.sprintf "dst=%d klass=%s" sp.a (array_name klass_names sp.b)
    | Crash -> Printf.sprintf "%d pages lost, %d homes notified" sp.a sp.b
    | Failover ->
        Printf.sprintf "%d home pages promoted after p%d fail-stopped" sp.a
          sp.b
    | Request ->
        Printf.sprintf "class=%s ingress proc %d"
          (array_name request_class_names sp.a)
          sp.b
  in
  Printf.sprintf "%-13s proc %d  %-22s %s" (kind_name sp.kind) sp.proc iv
    detail

(* Pretty-print one episode's full causal chain: the tree, then the hop
   accounting.  Direct hop children tile the root interval; whatever the
   instrumented hops do not cover (pointer tests, local compute) is
   reported as one synthesized "(compute)" residual, so per-hop cycles
   always sum exactly to the episode latency. *)
let explain b ~site_name spans ~trace_proc ~trace_seq =
  match episode_tree spans ~trace_proc ~trace_seq with
  | None ->
      Buffer.add_string b
        (Printf.sprintf "  trace %s: no completed episode recorded\n"
           (trace_label trace_proc trace_seq))
  | Some root ->
      let rsp = root.span in
      let episode = rsp.t1 - rsp.t0 in
      Buffer.add_string b
        (Printf.sprintf "trace %s  span %d  %s\n"
           (trace_label trace_proc trace_seq)
           rsp.id (describe ~site_name rsp));
      let rec pp indent n =
        List.iter
          (fun k ->
            Buffer.add_string b
              (Printf.sprintf "%s%s %s\n" indent
                 (if is_hop k.span.kind then "+" else "*")
                 (describe ~site_name k.span));
            pp (indent ^ "  ") k)
          n.kids
      in
      pp "  " root;
      let hops = List.filter (fun k -> is_hop k.span.kind) root.kids in
      let hop_sum =
        List.fold_left (fun acc k -> acc + (k.span.t1 - k.span.t0)) 0 hops
      in
      let residual = episode - hop_sum in
      Buffer.add_string b "  hop accounting:\n";
      List.iter
        (fun k ->
          Buffer.add_string b
            (Printf.sprintf "    %-13s %8d cy\n"
               (kind_name k.span.kind)
               (k.span.t1 - k.span.t0)))
        hops;
      if residual <> 0 then
        Buffer.add_string b
          (Printf.sprintf "    %-13s %8d cy\n" "(compute)" residual);
      Buffer.add_string b
        (Printf.sprintf "    %-13s %8d cy  (episode %d cy)\n" "total"
           (hop_sum + residual) episode)

(* --- Flight-recorder dump ------------------------------------------------ *)

let render_flight_event ev =
  Printf.sprintf
    "trace=%s id=%d parent=%d kind=%s proc=%d t=[%d, %d] a=%d b=%d"
    (trace_label ev.(0) ev.(1))
    ev.(2) ev.(3)
    (kind_name (kind_of_code ev.(4)))
    ev.(5) ev.(6) ev.(7) ev.(8) ev.(9)

let flight_dump ~reason ~state =
  Flight.dump ~reason ~state ~render:render_flight_event ()
