(** Bounded allocation-free flight recorder for span events.

    A fixed ring of int slots retains the last [capacity] span events
    while enabled; on a failure (deadlock, undeliverable message,
    invariant violation) {!dump} writes them — plus caller-supplied
    machine state — to a file for post-mortem debugging.  Recording costs
    a few integer stores per event and never allocates; the ring contents
    survive {!disable} so a top-level exception handler can still dump
    after cleanup.  Kind codes are opaque here; the span layer
    ({!Span.flight_dump}) renders them. *)

val fields : int
(** Ints per recorded event: trace_proc, trace_seq, id, parent, kind
    code, proc, t0, t1, a, b. *)

val default_capacity : int

val enable : ?capacity:int -> unit -> unit
(** Start recording into a fresh ring (allocated once per capacity).
    @raise Invalid_argument if [capacity < 1]. *)

val disable : unit -> unit
val is_enabled : unit -> bool
val capacity : unit -> int

val recorded : unit -> int
(** Events ever recorded since {!enable} (may exceed the capacity). *)

val set_path : string -> unit
(** Where {!dump} writes (default ["flight-recorder.dump"]). *)

val get_path : unit -> string

val note :
  tp:int -> ts:int -> id:int -> parent:int -> kind:int -> proc:int ->
  t0:int -> t1:int -> a:int -> b:int -> unit
(** Record one event; caller guards on {!is_enabled}.  Allocation-free. *)

val events : unit -> int array array
(** Retained events, oldest first, each a [fields]-slot array. *)

val dump :
  reason:string -> state:string list -> render:(int array -> string) ->
  unit -> string option
(** Write the dump file; [None] when the recorder was never enabled. *)
