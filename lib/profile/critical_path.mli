(** Critical-path analysis over the migration/future/steal dependency DAG
    ({!Olden_trace.Depgraph}).

    The longest chain of realized dependencies from the first event to
    the last is the run's critical path: the sequence of hops no amount
    of extra processors could shorten.  Each hop is classified by what
    the time between it and its predecessor was spent on, giving the
    mechanism-level breakdown the paper's selection argument turns on —
    and a "what-if" bound: the makespan if migrations (and their return
    stubs) were free, i.e. the span minus the migration cycles on the
    critical path. *)

module Trace = Olden_trace.Trace

type hop_class =
  | Compute  (** local work between two events of the same thread/processor *)
  | Migration  (** a migration in flight (send to restart) *)
  | Return  (** a return stub in flight *)
  | Future_wait  (** parked on a future, released by its resolve *)
  | Steal  (** popping a continuation off the local work list *)

val hop_class_name : hop_class -> string

type hop = {
  index : int;  (** event index into the stream *)
  ev : Trace.event;
  cost : int;  (** cycles between the realized predecessor and this event *)
  cls : hop_class;
}

type t = {
  hops : hop list;  (** the critical path, in time order *)
  span : int;  (** timestamp of the last event — the traced makespan *)
  length : int;  (** number of events on the path *)
  compute_cycles : int;
  migration_cycles : int;
  return_cycles : int;
  wait_cycles : int;
  steal_cycles : int;
  what_if_free_migration : int;
      (** [span - migration_cycles - return_cycles]: the bound on the
          makespan were migrations free *)
}

val analyze : Trace.event array -> t
(** Empty streams yield a zero analysis (no hops, span 0). *)

val pp : ?site_name:(int -> string option) -> ?tail:int ->
  Format.formatter -> t -> unit
(** Breakdown plus the last [tail] hops of the path (default 0: summary
    only). *)

(** {2 Per-processor time accounting}

    Complements the path view: where each processor's share of the
    makespan went.  Busy and comm come from the machine's accounting
    ({!Machine.busy_cycles} / [comm_cycles]); idle is the remainder, so
    each row sums to the makespan and the table to
    [nprocs * makespan]. *)

type proc_row = {
  proc : int;
  busy : int;
  comm : int;
  idle : int;
  recovery : int;
      (** crash-recovery stall cycles, an overlay on [comm] (0 when the
          run had no fault schedule) *)
}

val breakdown :
  ?recovery:int array ->
  makespan:int ->
  busy:int array ->
  comm:int array ->
  unit ->
  proc_row list
(** [recovery] is the per-processor recovery-stall array from
    {!Olden_recovery.Recovery.stall_cycles}; rows beyond its length get
    0 (default: all 0). *)

val pp_breakdown : Format.formatter -> makespan:int -> proc_row list -> unit
(** The recovery column only renders when some row has a nonzero
    stall. *)
