(* Charge migration latency, cache-miss stalls, revalidation stalls, and
   return-stub overhead back to dereference sites, from the event stream
   alone.

   Send/arrive pairing is per thread id in FIFO order (a thread is
   one-shot; its hops are ordered), the same pairing the latency
   histograms in [Recorder] use.  A return stub has no site of its own —
   it is the tail end of a migration — so its latency is charged to the
   site of the thread's most recent migration. *)

module C = Olden_config
module Trace = Olden_trace.Trace

type entry = {
  site : int;
  name : string;
  migrations : int;
  migration_cycles : int;
  returns : int;
  return_cycles : int;
  misses : int;
  miss_cycles : int;
  revalidations : int;
  revalidate_cycles : int;
}

type acc = {
  mutable a_migrations : int;
  mutable a_migration_cycles : int;
  mutable a_returns : int;
  mutable a_return_cycles : int;
  mutable a_misses : int;
  mutable a_miss_cycles : int;
  mutable a_revalidations : int;
  mutable a_revalidate_cycles : int;
}

let total e =
  e.migration_cycles + e.return_cycles + e.miss_cycles + e.revalidate_cycles

let grand_total entries = List.fold_left (fun s e -> s + total e) 0 entries

type pending = { p_site : int; p_sent : int; p_is_return : bool }

let of_events ?(site_name = fun (_ : int) -> None) ~(costs : C.costs) events =
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 32 in
  let acc site =
    match Hashtbl.find_opt accs site with
    | Some a -> a
    | None ->
        let a =
          {
            a_migrations = 0;
            a_migration_cycles = 0;
            a_returns = 0;
            a_return_cycles = 0;
            a_misses = 0;
            a_miss_cycles = 0;
            a_revalidations = 0;
            a_revalidate_cycles = 0;
          }
        in
        Hashtbl.add accs site a;
        a
  in
  (* per-thread in-flight hops and the site of the last migration, for
     charging the eventual return stub *)
  let in_flight : (int, pending Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let queue_for tid =
    match Hashtbl.find_opt in_flight tid with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add in_flight tid q;
        q
  in
  let last_migration_site : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let miss_cost = C.miss_round_trip costs in
  let revalidate_cost =
    (2 * costs.C.net_latency) + costs.C.timestamp_service
  in
  Array.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.kind with
      | Trace.Migrate_send _ ->
          Hashtbl.replace last_migration_site ev.Trace.tid ev.Trace.site;
          Queue.push
            { p_site = ev.Trace.site; p_sent = ev.Trace.time;
              p_is_return = false }
            (queue_for ev.Trace.tid)
      | Trace.Return_send _ ->
          let site =
            Option.value ~default:(-1)
              (Hashtbl.find_opt last_migration_site ev.Trace.tid)
          in
          Queue.push
            { p_site = site; p_sent = ev.Trace.time; p_is_return = true }
            (queue_for ev.Trace.tid)
      | Trace.Migrate_arrive _ | Trace.Return_arrive _ -> (
          match Queue.take_opt (queue_for ev.Trace.tid) with
          | None -> ()
          | Some p ->
              let a = acc p.p_site in
              let latency = ev.Trace.time - p.p_sent in
              if p.p_is_return then begin
                a.a_returns <- a.a_returns + 1;
                a.a_return_cycles <- a.a_return_cycles + latency
              end
              else begin
                a.a_migrations <- a.a_migrations + 1;
                a.a_migration_cycles <- a.a_migration_cycles + latency
              end)
      | Trace.Cache_miss _ ->
          let a = acc ev.Trace.site in
          a.a_misses <- a.a_misses + 1;
          a.a_miss_cycles <- a.a_miss_cycles + miss_cost
      | Trace.Revalidate _ ->
          let a = acc ev.Trace.site in
          a.a_revalidations <- a.a_revalidations + 1;
          a.a_revalidate_cycles <- a.a_revalidate_cycles + revalidate_cost
      | _ -> ())
    events;
  Hashtbl.fold
    (fun site a rest ->
      let name =
        if site < 0 then "<unattributed>"
        else
          match site_name site with
          | Some n -> n
          | None -> Printf.sprintf "site#%d" site
      in
      {
        site;
        name;
        migrations = a.a_migrations;
        migration_cycles = a.a_migration_cycles;
        returns = a.a_returns;
        return_cycles = a.a_return_cycles;
        misses = a.a_misses;
        miss_cycles = a.a_miss_cycles;
        revalidations = a.a_revalidations;
        revalidate_cycles = a.a_revalidate_cycles;
      }
      :: rest)
    accs []
  |> List.filter (fun e -> total e > 0)
  |> List.sort (fun a b ->
         match compare (total b) (total a) with
         | 0 -> compare a.site b.site
         | c -> c)

let pp_table ppf entries =
  let gt = grand_total entries in
  Format.fprintf ppf
    "%-34s %6s %12s %6s %10s %6s %10s %10s %6s@." "site" "migr" "migr-cyc"
    "ret" "ret-cyc" "miss" "miss-cyc" "total" "%";
  List.iter
    (fun e ->
      let pct =
        if gt = 0 then 0. else 100. *. float_of_int (total e) /. float_of_int gt
      in
      Format.fprintf ppf "%-34s %6d %12d %6d %10d %6d %10d %10d %5.1f%%@."
        e.name e.migrations e.migration_cycles e.returns e.return_cycles
        (e.misses + e.revalidations)
        (e.miss_cycles + e.revalidate_cycles)
        (total e) pct)
    entries;
  Format.fprintf ppf "%-34s %6s %12s %6s %10s %6s %10s %10d 100.0%%@."
    "TOTAL" "" "" "" "" "" "" gt

let folded ?(prefix = "olden") entries =
  let b = Buffer.create 1024 in
  let line name component cycles =
    if cycles > 0 then
      Buffer.add_string b
        (Printf.sprintf "%s;%s;%s %d\n" prefix name component cycles)
  in
  List.iter
    (fun e ->
      line e.name "migration" e.migration_cycles;
      line e.name "return" e.return_cycles;
      line e.name "cache-miss" e.miss_cycles;
      line e.name "revalidate" e.revalidate_cycles)
    entries;
  Buffer.contents b
