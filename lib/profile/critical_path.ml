(* Critical-path analysis: walk the realized-dependency chain built by
   [Olden_trace.Depgraph] and classify every hop by what the elapsed time
   was spent on. *)

module Depgraph = Olden_trace.Depgraph
module Trace = Olden_trace.Trace

type hop_class = Compute | Migration | Return | Future_wait | Steal

let hop_class_name = function
  | Compute -> "compute"
  | Migration -> "migration"
  | Return -> "return"
  | Future_wait -> "future-wait"
  | Steal -> "steal"

type hop = {
  index : int;
  ev : Trace.event;
  cost : int;
  cls : hop_class;
}

type t = {
  hops : hop list;
  span : int;
  length : int;
  compute_cycles : int;
  migration_cycles : int;
  return_cycles : int;
  wait_cycles : int;
  steal_cycles : int;
  what_if_free_migration : int;
}

(* What the gap between an event and its realized predecessor was spent
   on.  The arriving end of a hop names the mechanism: an arrival means
   the thread was in flight, a post-park event reached through a Resolve
   edge means the thread was waiting on the future. *)
let classify (edge : Depgraph.edge) (ev : Trace.event) =
  match ev.Trace.kind with
  | Trace.Migrate_arrive _ -> Migration
  | Trace.Return_arrive _ -> Return
  | Trace.Steal -> Steal
  | _ -> ( match edge with Depgraph.Resolve _ -> Future_wait | _ -> Compute)

let analyze events =
  let g = Depgraph.build events in
  let indices = Depgraph.chain g in
  let hops =
    List.map
      (fun i ->
        let ev = g.Depgraph.events.(i) in
        let edge = g.Depgraph.realized.(i) in
        let cost =
          match Depgraph.predecessor edge with
          | None -> ev.Trace.time (* from t = 0 to the first event *)
          | Some j -> max 0 (ev.Trace.time - g.Depgraph.events.(j).Trace.time)
        in
        { index = i; ev; cost; cls = classify edge ev })
      indices
  in
  let sum cls =
    List.fold_left
      (fun acc h -> if h.cls = cls then acc + h.cost else acc)
      0 hops
  in
  let span =
    match List.rev hops with [] -> 0 | last :: _ -> last.ev.Trace.time
  in
  let migration_cycles = sum Migration and return_cycles = sum Return in
  {
    hops;
    span;
    length = List.length hops;
    compute_cycles = sum Compute;
    migration_cycles;
    return_cycles;
    wait_cycles = sum Future_wait;
    steal_cycles = sum Steal;
    what_if_free_migration = span - migration_cycles - return_cycles;
  }

let pp ?(site_name = fun (_ : int) -> None) ?(tail = 0) ppf t =
  Format.fprintf ppf "critical path: %d events, span %d cycles@." t.length
    t.span;
  let pct c =
    if t.span = 0 then 0. else 100. *. float_of_int c /. float_of_int t.span
  in
  List.iter
    (fun (label, c) ->
      if c > 0 then Format.fprintf ppf "  %-12s %10d cycles (%5.1f%%)@." label c (pct c))
    [
      ("compute", t.compute_cycles);
      ("migration", t.migration_cycles);
      ("return", t.return_cycles);
      ("future-wait", t.wait_cycles);
      ("steal", t.steal_cycles);
    ];
  Format.fprintf ppf
    "what-if (migrations free): %d cycles (%.2fx of the traced span)@."
    t.what_if_free_migration
    (if t.span = 0 then 1.
     else float_of_int t.what_if_free_migration /. float_of_int t.span);
  if tail > 0 && t.hops <> [] then begin
    let hops = Array.of_list t.hops in
    let n = Array.length hops in
    let first = max 0 (n - tail) in
    Format.fprintf ppf "last %d hops:@." (n - first);
    for i = first to n - 1 do
      let h = hops.(i) in
      let site =
        if h.ev.Trace.site < 0 then ""
        else
          match site_name h.ev.Trace.site with
          | Some s -> " site=" ^ s
          | None -> Printf.sprintf " site=%d" h.ev.Trace.site
      in
      Format.fprintf ppf "  [t=%8d p=%2d tid=%d] %-14s +%-8d %s%s@."
        h.ev.Trace.time h.ev.Trace.proc h.ev.Trace.tid
        (Trace.kind_name h.ev.Trace.kind)
        h.cost
        (hop_class_name h.cls)
        site
    done
  end

(* --- Per-processor accounting ------------------------------------------ *)

type proc_row = {
  proc : int;
  busy : int;
  comm : int;
  idle : int;
  recovery : int;
}

let breakdown ?(recovery = [||]) ~makespan ~busy ~comm () =
  List.init (Array.length busy) (fun p ->
      let b = busy.(p) and c = comm.(p) in
      let r = if p < Array.length recovery then recovery.(p) else 0 in
      { proc = p; busy = b; comm = c; idle = makespan - b - c; recovery = r })

let pp_breakdown ppf ~makespan rows =
  let with_recovery = List.exists (fun r -> r.recovery > 0) rows in
  let pct c =
    if makespan = 0 then 0.
    else 100. *. float_of_int c /. float_of_int makespan
  in
  if with_recovery then
    Format.fprintf ppf "%-5s %12s %12s %12s %12s  %s@." "proc" "busy" "comm"
      "idle" "recovery" "busy%"
  else
    Format.fprintf ppf "%-5s %12s %12s %12s  %s@." "proc" "busy" "comm" "idle"
      "busy%";
  List.iter
    (fun r ->
      if with_recovery then
        Format.fprintf ppf "p%-4d %12d %12d %12d %12d  %5.1f%%@." r.proc
          r.busy r.comm r.idle r.recovery (pct r.busy)
      else
        Format.fprintf ppf "p%-4d %12d %12d %12d  %5.1f%%@." r.proc r.busy
          r.comm r.idle (pct r.busy))
    rows;
  let tb = List.fold_left (fun a r -> a + r.busy) 0 rows in
  let tc = List.fold_left (fun a r -> a + r.comm) 0 rows in
  let ti = List.fold_left (fun a r -> a + r.idle) 0 rows in
  Format.fprintf ppf "%-5s %12d %12d %12d  (sum = %d x makespan %d)@." "all"
    tb tc ti (List.length rows) makespan
