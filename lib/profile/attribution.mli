(** Per-dereference-site cost attribution over a trace event stream.

    The paper's mechanism-selection argument is about where remote-access
    cycles go: each dereference site pays for the migrations, cache-line
    fetches, revalidations, and return stubs it causes.  This module
    charges those costs back to sites from the PR 1 event stream alone:

    - migration latency: each [Migrate_send] paired with the same
      thread's next arrival, the measured send-to-restart time charged
      to the site that migrated;
    - return-stub overhead: each [Return_send]/[Return_arrive] pair,
      charged to the site whose migration the thread is returning from
      (returns carry no site of their own);
    - cache-miss stalls: each [Cache_miss] at the cost-model round trip
      ([Olden_config.miss_round_trip]) — the event is stamped at reply
      time, so the model price is the stall actually paid sans queueing;
    - revalidation stalls (bilateral): each [Revalidate] at
      [2 * net_latency + timestamp_service].

    Events with no site (id [-1], e.g. build-phase flushes) accumulate
    under a single unattributed entry so totals still cover the whole
    stream. *)

module Trace = Olden_trace.Trace

type entry = {
  site : int;  (** dereference-site id; [-1] collects unattributed costs *)
  name : string;  (** site label, e.g. ["t->left@treeadd"] *)
  migrations : int;
  migration_cycles : int;  (** measured send-to-arrival latency, summed *)
  returns : int;
  return_cycles : int;
  misses : int;
  miss_cycles : int;
  revalidations : int;
  revalidate_cycles : int;
}

val total : entry -> int
(** All cycles attributed to the entry. *)

val of_events :
  ?site_name:(int -> string option) ->
  costs:Olden_config.costs ->
  Trace.event array ->
  entry list
(** Entries ranked by {!total} descending (ties by site id), empty
    entries dropped. *)

val grand_total : entry list -> int

val pp_table : Format.formatter -> entry list -> unit
(** The ranked per-site cost table. *)

val folded : ?prefix:string -> entry list -> string
(** Folded-stack (flamegraph-collapsed) rendering: one
    ["prefix;site;component cycles"] line per nonzero cost component,
    ready for [flamegraph.pl] or speedscope.  [prefix] defaults to
    ["olden"]. *)
