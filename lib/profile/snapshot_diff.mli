(** Compare two metrics snapshots — [olden-metrics/v1] objects, the
    [olden-metrics-table/v1] wrapper [bench/main.exe -- snapshots] writes
    to [BENCH_table2.json], or the [olden-latency/v1] table
    [bench/main.exe -- latency] writes to [BENCH_latency.json] — and
    report per-benchmark deltas.

    Cycle metrics ([measured_cycles], [total_cycles]) gate: a benchmark
    regresses when the current value exceeds the baseline by more than
    the relative [tolerance] (improvements never gate), or when its
    [verified] flag flips to false.  Mechanism counters (migrations,
    cache misses, messages) are reported for context but never gate.
    For latency snapshots the gated metrics are the per-mechanism
    dereference p99s; p50, counts, and episode quantiles are context.
    For serving snapshots ([olden-serving/v1], written by
    [bench/main.exe -- serving] and [olden-run serve --out]) the gates
    are per-scheme throughput — downward: less throughput is the
    regression — and the per-request-class p99s; counts, p50s, and the
    serve span are context.  CI runs this via [olden-run diff], which
    exits non-zero on any regression. *)

module Json = Olden_trace.Json

type delta = {
  benchmark : string;
  metric : string;
  base : int;
  current : int;
  rel : float;  (** (current - base) / base; 0 when base is 0 *)
  gated : bool;  (** whether this metric can fail the gate *)
  regressed : bool;
}

type report = {
  tolerance : float;
  deltas : delta list;  (** benchmark order of the baseline file *)
  missing : string list;  (** benchmarks in the baseline only *)
  added : string list;  (** benchmarks in the current file only *)
}

val regressions : report -> delta list

val compare_json :
  tolerance:float -> base:Json.t -> current:Json.t -> (report, string) result
(** [Error] when either value is not a recognizable snapshot. *)

val compare_files :
  tolerance:float -> base:string -> current:string -> (report, string) result
(** Reads and parses both paths. *)

val pp : Format.formatter -> report -> unit
