(* Per-benchmark deltas between two metrics snapshots, with a relative
   tolerance on the cycle metrics so CI can gate on "did this PR slow a
   benchmark down" without flaking on intentional cost-model changes. *)

module Json = Olden_trace.Json

type delta = {
  benchmark : string;
  metric : string;
  base : int;
  current : int;
  rel : float;
  gated : bool;
  regressed : bool;
}

type report = {
  tolerance : float;
  deltas : delta list;
  missing : string list;
  added : string list;
}

let regressions r = List.filter (fun d -> d.regressed) r.deltas

(* Normalize either schema to an association list of
   (benchmark name, snapshot object), preserving file order. *)
let snapshots_of_json j =
  let name_of s =
    match Option.bind (Json.member "benchmark" s) Json.string_value with
    | Some n -> Ok n
    | None -> Error "snapshot without a \"benchmark\" field"
  in
  let schema =
    Option.bind (Json.member "schema" j) Json.string_value
  in
  match schema with
  | Some "olden-metrics/v1" ->
      Result.map (fun n -> [ (n, j) ]) (name_of j)
  | Some
      (("olden-metrics-table/v1" | "olden-latency/v1" | "olden-serving/v1") as
       schema) ->
      let rows =
        match Json.member "benchmarks" j with
        | Some (Json.List rows) -> Ok rows
        | _ -> Error (schema ^ " without a \"benchmarks\" list")
      in
      Result.bind rows (fun rows ->
          List.fold_left
            (fun acc s ->
              Result.bind acc (fun acc ->
                  Result.map (fun n -> (n, s) :: acc) (name_of s)))
            (Ok []) rows
          |> Result.map List.rev)
  | Some other -> Error (Printf.sprintf "unrecognized schema %S" other)
  | None -> Error "not a metrics snapshot (no \"schema\" field)"

let int_field path s =
  let rec walk j = function
    | [] -> Json.int_value j
    | k :: rest -> Option.bind (Json.member k j) (fun j -> walk j rest)
  in
  walk s path

let bool_field path s =
  let rec walk j = function
    | [] -> ( match j with Json.Bool b -> Some b | _ -> None)
    | k :: rest -> Option.bind (Json.member k j) (fun j -> walk j rest)
  in
  walk s path

(* How a metric gates: [Gate_up] regresses when the value grows past the
   tolerance (cycles, latency quantiles), [Gate_down] when it shrinks
   (throughput: less is worse), [Context] never gates. *)
type gate = Gate_up | Gate_down | Context

(* The compared metrics: path into the snapshot, and how it gates. *)
let metrics =
  [
    ([ "measured_cycles" ], Gate_up);
    ([ "total_cycles" ], Gate_up);
    ([ "stats"; "migrations" ], Context);
    ([ "stats"; "cache_misses" ], Context);
    ([ "stats"; "messages" ], Context);
  ]

(* Per-tag quantile lists shared by the latency and serving schemas. *)
let tagged_group row ~list_key ~tag_key ~prefix ~quantiles =
  match Json.member list_key row with
  | Some (Json.List entries) ->
      List.concat_map
        (fun e ->
          match Option.bind (Json.member tag_key e) Json.string_value with
          | None -> []
          | Some tag ->
              List.filter_map
                (fun (field, gate) ->
                  Option.map
                    (fun v ->
                      (Printf.sprintf "%s.%s.%s" prefix tag field, gate, v))
                    (int_field [ field ] e))
                quantiles)
        entries
  | _ -> []

(* Metric values of one snapshot row, as (name, gate, value).  Rows of
   the metrics schemas use the fixed [metrics] path list; rows of
   olden-latency/v1 (recognized by their "latency" member) compare the
   per-mechanism dereference quantiles — p99 gated, p50 and count as
   context — and the per-episode-kind p99s as context; rows of
   olden-serving/v1 (recognized by their "serving" member) gate the
   throughput (downward) and the per-request-class p99s, with counts,
   p50s, and the serve span as context. *)
let row_metrics row =
  match (Json.member "serving" row, Json.member "latency" row) with
  | Some srv, _ ->
      List.filter_map
        (fun (path, gate) ->
          Option.map
            (fun v -> (String.concat "." path, gate, v))
            (int_field path row))
        [
          ([ "throughput_rpm" ], Gate_down);
          ([ "admitted" ], Context);
          ([ "completed" ], Context);
          ([ "serve_cycles" ], Context);
        ]
      @ tagged_group srv ~list_key:"request" ~tag_key:"class"
          ~prefix:"serving.request"
          ~quantiles:
            [ ("p99", Gate_up); ("p50", Context); ("count", Context) ]
  | None, Some lat ->
      tagged_group lat ~list_key:"deref" ~tag_key:"mech"
        ~prefix:"latency.deref"
        ~quantiles:[ ("p99", Gate_up); ("p50", Context); ("count", Context) ]
      @ tagged_group lat ~list_key:"episode" ~tag_key:"kind"
          ~prefix:"latency.episode"
          ~quantiles:[ ("p99", Context); ("count", Context) ]
  | None, None ->
      List.filter_map
        (fun (path, gate) ->
          Option.map
            (fun v -> (String.concat "." path, gate, v))
            (int_field path row))
        metrics

let compare_json ~tolerance ~base ~current =
  Result.bind (snapshots_of_json base) (fun base_rows ->
      Result.bind (snapshots_of_json current) (fun cur_rows ->
          let deltas =
            List.concat_map
              (fun (name, b) ->
                match List.assoc_opt name cur_rows with
                | None -> []
                | Some c ->
                    let verified =
                      let was = Option.value ~default:true (bool_field [ "verified" ] b) in
                      let is = Option.value ~default:true (bool_field [ "verified" ] c) in
                      if was && not is then
                        [
                          {
                            benchmark = name;
                            metric = "verified";
                            base = 1;
                            current = 0;
                            rel = -1.;
                            gated = true;
                            regressed = true;
                          };
                        ]
                      else []
                    in
                    let cur_metrics = row_metrics c in
                    verified
                    @ List.filter_map
                        (fun (metric, gate, bv) ->
                          List.find_map
                            (fun (m, _, cv) ->
                              if String.equal m metric then Some cv else None)
                            cur_metrics
                          |> Option.map (fun cv ->
                                 let rel =
                                   if bv = 0 then 0.
                                   else
                                     float_of_int (cv - bv) /. float_of_int bv
                                 in
                                 let regressed =
                                   match gate with
                                   | Gate_up -> rel > tolerance
                                   | Gate_down -> -.rel > tolerance
                                   | Context -> false
                                 in
                                 {
                                   benchmark = name;
                                   metric;
                                   base = bv;
                                   current = cv;
                                   rel;
                                   gated = gate <> Context;
                                   regressed;
                                 }))
                        (row_metrics b))
              base_rows
          in
          let names rows = List.map fst rows in
          let missing =
            List.filter
              (fun n -> not (List.mem_assoc n cur_rows))
              (names base_rows)
          in
          let added =
            List.filter
              (fun n -> not (List.mem_assoc n base_rows))
              (names cur_rows)
          in
          Ok { tolerance; deltas; missing; added }))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let compare_files ~tolerance ~base ~current =
  let parse path =
    match Json.of_string (read_file path) with
    | j -> Ok j
    | exception Json.Parse_error msg ->
        Error (Printf.sprintf "%s: %s" path msg)
    | exception Sys_error msg -> Error msg
  in
  Result.bind (parse base) (fun base ->
      Result.bind (parse current) (fun current ->
          compare_json ~tolerance ~base ~current))

let pp ppf r =
  Format.fprintf ppf "%-12s %-22s %14s %14s %8s@." "benchmark" "metric"
    "baseline" "current" "delta";
  List.iter
    (fun d ->
      (* a gated metric past the tolerance in the non-regressing
         direction is an improvement, whichever direction gates *)
      let flag =
        if d.regressed then "  REGRESSED"
        else if d.gated && Float.abs d.rel > r.tolerance then "  improved"
        else ""
      in
      Format.fprintf ppf "%-12s %-22s %14d %14d %+7.1f%%%s@." d.benchmark
        d.metric d.base d.current (100. *. d.rel) flag)
    r.deltas;
  List.iter
    (fun n -> Format.fprintf ppf "%-12s missing from current file@." n)
    r.missing;
  List.iter
    (fun n -> Format.fprintf ppf "%-12s new in current file@." n)
    r.added;
  let n = List.length (regressions r) in
  if n = 0 then
    Format.fprintf ppf "no regressions beyond %.1f%% tolerance@."
      (100. *. r.tolerance)
  else
    Format.fprintf ppf "%d regression(s) beyond %.1f%% tolerance@." n
      (100. *. r.tolerance)
