(** Coherence and delivery invariants over a finished run.

    The fault layer may change {e when} things happen, never {e what}
    state the protocols apply.  After a run completes these checks audit
    that claim: exactly-once delivery (every duplicate suppressed), sane
    fault counters, the busy + comm + idle accounting identity, home
    directory sharer sets consistent with the translation tables, no
    structurally impossible cache entries, fail-stop failover soundness
    (no send ever resolved to a dead processor, every home-map entry
    names a live server, death counters agree across the layers), and —
    given the digest of a fault-free reference run — a structurally
    equal final heap.

    Used by [olden-run chaos] and the chaos test suite; see
    docs/ROBUSTNESS.md. *)

type violation = { rule : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

val heap_digest : Olden_runtime.Engine.t -> string
(** Digest of the engine's final heap ({!Memory.digest}); feed it back as
    [expected_heap] when checking a faulty run of the same program. *)

val check :
  ?expected_heap:string -> Olden_runtime.Engine.t -> violation list
(** Every applicable invariant; empty means the run is clean.  The
    sharer-set and sharer-epoch checks only apply under the global
    coherence scheme (the epoch check additionally needs an active
    fault schedule, which is when crash tracking exists); the heap
    comparison only runs when [expected_heap] is given.  A non-empty
    result triggers a flight-recorder dump
    ({!Olden_span.Span.flight_dump}) when the recorder is running. *)
