(* Coherence and delivery invariants over a finished run.

   The fault layer (Fault_plan + the retry protocol in Machine and the
   engine) is allowed to change *when* things happen — retransmission
   waits, delivery delays, degraded migrations — but never *what* state
   the protocols apply: each message's effect must land exactly once, no
   write may be lost, and the home directories must stay consistent with
   the sharers' translation tables.  This module audits those claims after
   a run completes; the chaos harness and tests fail on any violation. *)

module C = Olden_config
module E = Olden_runtime.Engine
module Cache = Olden_cache.Cache_system
module Directory = Olden_cache.Directory
module Translation = Olden_cache.Translation
module Recovery = Olden_recovery.Recovery
module Failover = Olden_recovery.Failover
module G = Olden_config.Geometry

type violation = { rule : string; detail : string }

let violation rule fmt = Printf.ksprintf (fun detail -> { rule; detail }) fmt

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.detail

let heap_digest engine = Memory.digest (E.memory engine)

(* Every duplicate delivery the network minted (or retransmission of an
   already-serviced message) must have been discarded by the receiver's
   sequence-number check: the exactly-once property of the idempotent
   receive path. *)
let check_exactly_once (s : Stats.t) =
  if s.Stats.duplicates_suppressed = s.Stats.msg_duplicates then []
  else
    [
      violation "exactly-once"
        "%d duplicate deliveries but %d suppressed by the sequence check"
        s.Stats.msg_duplicates s.Stats.duplicates_suppressed;
    ]

(* Outage drops are a subset of all drops, and retry timers only ever run
   when something was lost. *)
let check_fault_counters (s : Stats.t) =
  let faults = []
  in
  let faults =
    if s.Stats.outage_drops <= s.Stats.msg_drops then faults
    else
      violation "fault-counters" "outage_drops=%d exceeds msg_drops=%d"
        s.Stats.outage_drops s.Stats.msg_drops
      :: faults
  in
  if s.Stats.msg_drops = 0 && s.Stats.retries > 0 then
    violation "fault-counters" "%d retries with no recorded drops"
      s.Stats.retries
    :: faults
  else faults

(* The profiler's accounting identity: every processor's makespan is
   exactly busy + comm + idle, even with retry stalls charged as
   communication. *)
let check_accounting machine =
  let n = Machine.nprocs machine in
  let span = Machine.makespan machine in
  let busy = Machine.busy_cycles machine in
  let comm = Machine.comm_cycles machine in
  let idle = Machine.idle_cycles machine in
  let bad = ref [] in
  for p = n - 1 downto 0 do
    if busy.(p) + comm.(p) + idle.(p) <> span then
      bad :=
        violation "accounting"
          "p%d: busy=%d + comm=%d + idle=%d <> makespan=%d" p busy.(p)
          comm.(p) idle.(p) span
        :: !bad
  done;
  !bad

(* Global scheme: a processor holding any valid line of a remote page must
   appear in the home directory's sharer set for that page — the home can
   over-approximate (a flushed copy is only discovered at the next
   release) but must never lose a sharer, or an invalidation would miss a
   live copy. *)
let check_sharer_sets engine =
  match (E.config engine).C.coherence with
  | C.Local | C.Bilateral -> [] (* no sharer tracking in these schemes *)
  | C.Global ->
      let cache = E.cache engine in
      let nprocs = Machine.nprocs (E.machine engine) in
      let bad = ref [] in
      for proc = 0 to nprocs - 1 do
        Translation.iter (Cache.table cache proc) (fun e ->
            if e.Translation.valid <> 0 then begin
              let mask =
                Directory.sharer_mask
                  (Cache.directory cache e.Translation.home)
                  e.Translation.page_index
              in
              if mask land (1 lsl proc) = 0 then
                bad :=
                  violation "sharer-sets"
                    "p%d holds %d valid line(s) of page %d homed at p%d \
                     but is not in the directory's sharer set"
                    proc
                    (let rec pop m = if m = 0 then 0 else (m land 1) + pop (m lsr 1) in
                     pop e.Translation.valid)
                    e.Translation.page_index e.Translation.home
                  :: !bad
            end)
      done;
      !bad

(* Recovery's sharer-epoch invariant (global scheme): once a processor
   crashes, every directory entry still naming it as a sharer must be a
   *re*-registration from after the crash — the warm-restart prune struck
   the stale ones, and anything the victim fetched since carries a
   registration stamp (in the victim's own clock domain) at or past its
   crash epoch.  A pre-crash stamp surviving in a live mask means a home
   missed the recovery announcement and would keep invalidating a copy
   that no longer exists. *)
let check_sharer_epochs engine =
  match E.recovery engine with
  | None -> []
  | Some r -> (
      match (E.config engine).C.coherence with
      | C.Local | C.Bilateral -> []
      | C.Global ->
          let cache = E.cache engine in
          let nprocs = Machine.nprocs (E.machine engine) in
          let bad = ref [] in
          for home = 0 to nprocs - 1 do
            let dir = Cache.directory cache home in
            Directory.iter_pages dir (fun page_index p ->
                let mask = p.Directory.sharers in
                for proc = 0 to nprocs - 1 do
                  if mask land (1 lsl proc) <> 0 then begin
                    let crashed_at = Recovery.last_crash_time r ~proc in
                    if crashed_at >= 0 then
                      let registered =
                        Directory.registered_at dir ~page_index ~proc
                      in
                      if registered < crashed_at then
                        bad :=
                          violation "sharer-epoch"
                            "home p%d still names p%d as sharer of page %d \
                             registered at t=%d, before its crash at t=%d"
                            home proc page_index registered crashed_at
                          :: !bad
                  end
                done)
          done;
          !bad)

(* Crash-counter sanity: the global counters must agree with the recovery
   layer's per-processor ledger, and under the global scheme every crash
   announces to exactly [nprocs - 1] homes. *)
let check_crash_counters engine (s : Stats.t) =
  match E.recovery engine with
  | None -> []
  | Some r ->
      let total = Recovery.total_crashes r in
      let bad =
        if s.Stats.crashes = total then []
        else
          [
            violation "crash-counters"
              "Stats.crashes=%d but the recovery ledger holds %d"
              s.Stats.crashes total;
          ]
      in
      let expected_msgs =
        match (E.config engine).C.coherence with
        | C.Global -> total * (Machine.nprocs (E.machine engine) - 1)
        | C.Local | C.Bilateral -> 0
      in
      if s.Stats.recovery_messages = expected_msgs then bad
      else
        violation "crash-counters"
          "recovery_messages=%d, expected %d (%d crash(es) under %s)"
          s.Stats.recovery_messages expected_msgs total
          (C.coherence_to_string (E.config engine).C.coherence)
        :: bad

(* Fail-stop failover invariants: no send may ever have resolved to a
   dead processor (the home map must always have been rewritten before
   traffic could chase a corpse); after the run every owner's home entry
   names a live server; the death counters agree between Stats, the
   machine's live set, and the failover ledger; and deaths can only have
   happened with a replication layer configured to absorb them. *)
let check_failover engine (s : Stats.t) =
  match E.failover engine with
  | None -> []
  | Some fo ->
      let machine = E.machine engine in
      let nprocs = Machine.nprocs machine in
      let bad = ref [] in
      if Machine.dead_sends machine > 0 then
        bad :=
          violation "failover" "%d send(s) resolved to a dead processor"
            (Machine.dead_sends machine)
          :: !bad;
      for owner = nprocs - 1 downto 0 do
        let h = Machine.home_of machine owner in
        if Machine.is_dead machine h then
          bad :=
            violation "failover"
              "owner p%d's home map names p%d, which is dead" owner h
          :: !bad
      done;
      let dead = nprocs - Machine.live_count machine in
      if s.Stats.failstops <> dead then
        bad :=
          violation "failover"
            "Stats.failstops=%d but %d processor(s) are dead"
            s.Stats.failstops dead
          :: !bad;
      if Failover.failstops fo <> dead then
        bad :=
          violation "failover"
            "failover ledger holds %d death(s) but %d processor(s) are dead"
            (Failover.failstops fo) dead
          :: !bad;
      (match (E.config engine).C.replication with
      | None when dead > 0 ->
          bad :=
            violation "failover"
              "%d fail-stop(s) survived with no replication configured" dead
            :: !bad
      | _ -> ());
      !bad

(* No structurally impossible cache entries: caches hold remote pages
   only (a processor's own section is always accessed directly), and a
   valid line's local copy exists. *)
let check_tables engine =
  let cache = E.cache engine in
  let nprocs = Machine.nprocs (E.machine engine) in
  let bad = ref [] in
  for proc = 0 to nprocs - 1 do
    Translation.iter (Cache.table cache proc) (fun e ->
        if e.Translation.home = proc then
          bad :=
            violation "tables" "p%d caches page %d of its own section" proc
              e.Translation.page_index
            :: !bad;
        if Array.length e.Translation.data <> G.words_per_page then
          bad :=
            violation "tables" "p%d: page %d copy has %d words (want %d)"
              proc e.Translation.page_index
              (Array.length e.Translation.data)
              G.words_per_page
            :: !bad)
  done;
  !bad

(* Final heap vs the fault-free reference: faults may reorder and delay,
   but every write must land and land once, so the heaps must be
   structurally equal. *)
let check_heap ~expected engine =
  let got = heap_digest engine in
  if String.equal got expected then []
  else
    [
      violation "heap" "final heap digest %s differs from fault-free %s" got
        expected;
    ]

(* Run every applicable invariant; [expected_heap] (the digest of a
   fault-free run of the same program and configuration) enables the
   whole-heap comparison. *)
let check ?expected_heap engine =
  let s = Machine.stats (E.machine engine) in
  let violations =
    check_exactly_once s
    @ check_fault_counters s
    @ check_accounting (E.machine engine)
    @ check_sharer_sets engine
    @ check_sharer_epochs engine
    @ check_crash_counters engine s
    @ check_failover engine s
    @ check_tables engine
    @
    match expected_heap with
    | None -> []
    | Some expected -> check_heap ~expected engine
  in
  (* a violated run is a failure like a deadlock: if the flight recorder
     was running, preserve its last span events for the post-mortem *)
  (if violations <> [] then
     let reason =
       Printf.sprintf "invariant-check failure: [%s] %s"
         (List.hd violations).rule (List.hd violations).detail
     in
     ignore
       (Olden_span.Span.flight_dump ~reason ~state:(E.flight_state engine)));
  violations
