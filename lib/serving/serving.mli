(** Open-system serving: Olden as a data-structure server.

    The batch pipeline measures closed programs — build a structure, run
    the kernel, stop the clock.  This driver instead keeps a persistent
    Olden heap (the TreeAdd tree, the EM3D bipartite graph, or the
    Health village hierarchy) and subjects it to a seeded {e open}
    arrival stream: requests enter at seeded ingress processors as fresh
    threads under the full migrate-vs-cache machinery
    ({!Olden_runtime.Engine.inject}), independent of how fast the system
    drains them.  The run reports throughput and admission-to-completion
    latency quantiles per request class from the simulated event clock,
    and an offered-load sweep locates the saturation knee per coherence
    scheme.

    Everything is a pure function of
    [(arrival_seed, fault_seed, config)]: the arrival process is a
    stateless hash per [(seed, stream, index)], injection order is
    canonical, and the engine underneath is deterministic for any
    [--domains] shard count — so serving snapshots are byte-identical
    run-to-run, across shard counts, and under a fixed fault schedule.
    Schema reference: docs/SERVING.md. *)

module C = Olden_config
module Monitor = Olden_monitor.Monitor
module Json = Olden_trace.Json

(** {2 Served heaps} *)

(** Which persistent Olden structure the server hosts.  Request bodies
    reuse the benchmark's own dereference sites, so the compiler
    heuristic's migrate-vs-cache choices apply to served traffic exactly
    as they do to the batch kernel. *)
type heap = Treeadd | Em3d | Health

val heap_name : heap -> string
(** Table-1 spelling: ["TreeAdd"], ["EM3D"], ["Health"]. *)

val heap_of_string : string -> heap option
(** Case-insensitive; accepts the {!heap_name} spellings. *)

val heap_names : string list
val all_heaps : heap list

(** {2 Request classes and the mix grammar} *)

(** What one request does to the heap: a point query (bounded hashed
    descent / neighbour gather), a bounded range or subtree scan, or a
    mutation. *)
type klass = Point | Scan | Update

val klass_name : klass -> string
val klass_code : klass -> int
(** 0 = point, 1 = scan, 2 = update — the class code request spans
    carry in their [a] payload ({!Olden_span.Span.Request}). *)

type mix
(** A weighted request-class mixture, canonicalized to point, scan,
    update order. *)

val default_mix : mix
(** [point=6,scan=3,update=1]. *)

val mix_of_string : string -> (mix, string) result
(** Parse ["point=6,scan=3,update=1"]; a bare class name means weight 1.
    Unknown classes, duplicate classes, and non-positive weights are
    errors (the CLI maps them to exit 2). *)

val mix_to_string : mix -> string
val mix_weights : mix -> (klass * int) list

(** {2 The seeded arrival process}

    Inter-arrival gaps are in simulated cycles and are pure functions of
    [(arrival_seed, stream, index)] — no generator state, so any
    arrival can be recomputed (and replayed) in isolation.  [rate] is
    the aggregate offered load in requests per 1000 cycles, split evenly
    over [streams] independent streams. *)

val interarrival : spec:C.Serving.spec -> stream:int -> index:int -> int
(** The gap (>= 1 cycle) preceding arrival [index] of [stream]:
    exponential for [Poisson]; Markov-modulated on/off windows for
    [Bursty] (dense bursts, long quiet gaps, same mean); a sinusoidal
    rate swing for [Diurnal]. *)

type arrival = {
  a_stream : int;
  a_index : int;  (** per-stream sequence number *)
  a_offset : int;  (** cycles after the serving epoch opens *)
}

val arrivals : spec:C.Serving.spec -> arrival list
(** Every arrival with offset inside [spec.duration], merged over
    streams in canonical (offset, stream, index) order — the order the
    driver injects them in. *)

(** {2 Running an open-loop serve} *)

type result = {
  r_heap : heap;
  r_scheme : C.coherence;
  r_spec : C.Serving.spec;
  r_mix : mix;
  r_admitted : int;  (** requests injected (= arrivals generated) *)
  r_completed : int;  (** requests that ran to completion *)
  r_serve_cycles : int;
      (** the serving epoch: from the ["kernel"] phase mark (heap built)
          to the last request draining *)
  r_total_cycles : int;  (** build + serve makespan *)
  r_throughput : float;  (** completed requests per 1000 cycles *)
  r_classes : (string * Monitor.summary) list;
      (** admission-to-completion latency per request class (p50/p99/
          p999 from the event clock), sorted by class label *)
  r_ingress : int array;  (** requests admitted per ingress processor *)
  r_checksum : string;
      (** request results folded in completion order — the determinism
          witness run-twice tests compare *)
  r_ok : bool;  (** every admitted request completed *)
}

val run : ?scale:int -> cfg:C.t -> spec:C.Serving.spec -> mix:mix -> heap -> result
(** Build the heap, open the serving epoch, inject every arrival at a
    seeded ingress processor, drain, and package the result.  [scale]
    (default 64) sizes the persistent structure exactly as the batch
    harness's scale knob does.  Latency quantiles need a monitor: one is
    installed for the run at a duration-derived interval unless the
    caller's driver hooks already request one.  The caller's hooks keep
    the finished monitor ([last_monitor]) for timeseries/CSV export. *)

(** {2 The offered-load sweep} *)

type sweep_point = {
  sw_offered : float;  (** offered load, requests per 1000 cycles *)
  sw_achieved : float;  (** achieved throughput over the serve span *)
  sw_p99 : int;  (** worst per-class p99 latency at this load *)
}

val default_sweep_rates : float list

val saturation_sweep :
  ?domains:int ->
  ?scale:int ->
  ?rates:float list ->
  cfg:C.t ->
  spec:C.Serving.spec ->
  mix:mix ->
  heap ->
  sweep_point list * float option
(** One {!run} per offered rate (on an {!Olden_parallel} pool of
    [domains] workers; results keep submission order, so the sweep is
    byte-identical for any pool size), plus the saturation knee: the
    first offered rate whose achieved throughput falls below 90% of
    offered, [None] if the server keeps up everywhere. *)

(** {2 Reporting} *)

val row_name : result -> string
(** ["TreeAdd/local"]-style snapshot row key: heap plus coherence
    scheme. *)

val result_json : ?sweep:sweep_point list * float option -> result -> Json.t
(** One [olden-serving/v1] benchmark row (docs/SERVING.md): run
    identity, counts, [throughput_rpm], per-class latency summaries
    under ["serving"."request"], and — when a sweep is supplied — the
    sweep points and ["knee_rpk"]. *)

val pp_result : Format.formatter -> result -> unit
(** Human-readable block: identity line, throughput, and one row per
    request class with count and latency quantiles. *)
