(* Open-system serving over persistent Olden heaps.

   The batch harness measures closed runs; this driver keeps one of three
   benchmark structures resident and drives it with a seeded open arrival
   stream.  Three layers:

   - Arrival processes (Poisson, Markov-modulated bursty, diurnal), each
     a *stateless* hash of (arrival_seed, stream, index): any arrival's
     gap can be recomputed in isolation, so the stream is replayable and
     the generated schedule is independent of evaluation order.

   - A request model that reuses the benchmarks' own dereference sites:
     a served point query walks the TreeAdd tree through the same
     migrate-annotated sites the kernel uses, an EM3D neighbour gather
     reads remote values through the cached site, Health villages are
     read through the sim's migrate sites.  The heuristic's mechanism
     choices therefore apply to served traffic unchanged.

   - An open-loop executor: arrivals are injected into the engine's
     event queue (Engine.inject) at absolute simulated times fixed
     before any request runs — admission does not wait for service, so
     queueing delay shows up in the measured latency, which is what
     makes the saturation knee observable.

   Determinism: the arrival schedule is canonical, injection happens in
   one host-side loop before the serving epoch opens, and the engine
   underneath is bit-identical for any host shard count — so the
   serving snapshot is a pure function of (arrival_seed, fault_seed,
   config). *)

module C = Olden_config
module Ops = Olden_runtime.Ops
module Site = Olden_runtime.Site
module Engine = Olden_runtime.Engine
module Common = Olden_benchmarks.Common
module Treeadd = Olden_benchmarks.Treeadd
module Em3d = Olden_benchmarks.Em3d
module Health = Olden_benchmarks.Health
module Monitor = Olden_monitor.Monitor
module Span = Olden_span.Span
module Json = Olden_trace.Json
module Sweep = Olden_parallel.Sweep

(* --- Served heaps ------------------------------------------------------ *)

type heap = Treeadd | Em3d | Health

let heap_name = function
  | Treeadd -> "TreeAdd"
  | Em3d -> "EM3D"
  | Health -> "Health"

let all_heaps = [ Treeadd; Em3d; Health ]
let heap_names = List.map heap_name all_heaps

let heap_of_string s =
  match String.lowercase_ascii s with
  | "treeadd" -> Some Treeadd
  | "em3d" -> Some Em3d
  | "health" -> Some Health
  | _ -> None

(* --- Request classes and the mix grammar ------------------------------- *)

type klass = Point | Scan | Update

let klass_name = function Point -> "point" | Scan -> "scan" | Update -> "update"
let klass_code = function Point -> 0 | Scan -> 1 | Update -> 2

let klass_of_string = function
  | "point" -> Some Point
  | "scan" -> Some Scan
  | "update" -> Some Update
  | _ -> None

type mix = (klass * int) list

let canonical m =
  List.filter_map
    (fun k -> Option.map (fun w -> (k, w)) (List.assoc_opt k m))
    [ Point; Scan; Update ]

let default_mix = [ (Point, 6); (Scan, 3); (Update, 1) ]

let mix_weights m = m

let mix_to_string m =
  String.concat ","
    (List.map (fun (k, w) -> Printf.sprintf "%s=%d" (klass_name k) w) m)

let mix_of_string str =
  let parts =
    String.split_on_char ',' str
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "mix: empty specification"
  else begin
    let rec go acc = function
      | [] -> Ok (canonical (List.rev acc))
      | part :: rest -> (
          let name, weight =
            match String.index_opt part '=' with
            | None -> (part, Ok 1)
            | Some i -> (
                let w =
                  String.trim
                    (String.sub part (i + 1) (String.length part - i - 1))
                in
                ( String.trim (String.sub part 0 i),
                  match int_of_string_opt w with
                  | Some n when n > 0 -> Ok n
                  | _ ->
                      Error
                        (Printf.sprintf
                           "mix: weight in %S must be a positive integer" part)
                ))
          in
          match klass_of_string (String.lowercase_ascii (String.trim name)) with
          | None ->
              Error
                (Printf.sprintf "mix: unknown request class %S (expected %s)"
                   name
                   (String.concat "|" (List.map klass_name [ Point; Scan; Update ])))
          | Some k ->
              if List.mem_assoc k acc then
                Error
                  (Printf.sprintf "mix: duplicate request class %S"
                     (klass_name k))
              else (
                match weight with
                | Ok w -> go ((k, w) :: acc) rest
                | Error e -> Error e))
    in
    go [] parts
  end

let pick_class (m : mix) h =
  let total = List.fold_left (fun a (_, w) -> a + w) 0 m in
  let rec go r = function
    | [] -> Point (* unreachable: canonical mixes are non-empty *)
    | (k, w) :: rest -> if r < w then k else go (r - w) rest
  in
  go (h mod total) m

(* --- The seeded arrival process ---------------------------------------- *)

(* Stateless avalanche hash (same family as Health's decision hashes),
   30-bit output so uniform draws are exact on every host. *)
let mix2 a b =
  let h = (a * 0x9e3779b1) lxor (b * 0x85ebca6b) in
  let h = h lxor (h lsr 13) in
  let h = (h * 0xc2b2ae35) lxor (h lsr 16) in
  h land 0x3fffffff

let hash ~seed ~stream ~index ~salt =
  mix2 (mix2 (mix2 (seed + 0x1234567) (stream + 0x51)) (index + 0x9e37)) (salt + 0xc3)

(* Salts partition the hash stream: the gap, class, ingress, and payload
   of one arrival are independent draws. *)
let salt_gap = 0
let salt_burst = 1
let salt_class = 2
let salt_ingress = 3
let salt_payload = 4

let uniform h = float_of_int (h + 1) /. 1073741825.0 (* (0, 1] *)

let interarrival ~(spec : C.Serving.spec) ~stream ~index =
  let seed = spec.C.Serving.arrival_seed in
  (* aggregate rate split evenly over the streams *)
  let mean =
    float_of_int spec.C.Serving.streams *. 1000. /. spec.C.Serving.rate
  in
  let u = uniform (hash ~seed ~stream ~index ~salt:salt_gap) in
  let exp_draw m = -.Float.log u *. m in
  let gap =
    match spec.C.Serving.profile with
    | C.Serving.Poisson -> exp_draw mean
    | C.Serving.Bursty ->
        (* on/off windows of eight arrivals each; a window is "on" with
           probability 1/2, five times denser than the mean, and the off
           windows stretch so the aggregate offered load is preserved *)
        let window = index lsr 3 in
        let on = hash ~seed ~stream ~index:window ~salt:salt_burst land 1 = 0 in
        if on then exp_draw (mean /. 5.) else exp_draw (mean *. 1.8)
    | C.Serving.Diurnal ->
        (* the offered rate swings sinusoidally (+-75%) with a 64-arrival
           period — a compressed day *)
        let phase = 2. *. Float.pi *. float_of_int (index land 63) /. 64. in
        exp_draw (mean *. (1. +. (0.75 *. Float.sin phase)))
  in
  max 1 (int_of_float (Float.round gap))

type arrival = { a_stream : int; a_index : int; a_offset : int }

let arrivals ~(spec : C.Serving.spec) =
  let out = ref [] in
  for s = 0 to spec.C.Serving.streams - 1 do
    let t = ref 0 and i = ref 0 and stop = ref false in
    while not !stop do
      t := !t + interarrival ~spec ~stream:s ~index:!i;
      if !t > spec.C.Serving.duration then stop := true
      else begin
        out := { a_stream = s; a_index = !i; a_offset = !t } :: !out;
        incr i
      end
    done
  done;
  (* canonical injection order; the key is unique per arrival, so the
     result is independent of generation order *)
  List.sort
    (fun a b ->
      compare
        (a.a_offset, a.a_stream, a.a_index)
        (b.a_offset, b.a_stream, b.a_index))
    !out

(* --- The request model ------------------------------------------------- *)

(* A server is the built heap plus a request dispatcher; each request
   body returns a small integer folded into the run checksum.  Bodies
   run as injected threads, so every dereference below goes through the
   full migrate-vs-cache machinery of the site it names. *)
type server = { request : klass -> int -> int }

let treeadd_server ~scale =
  let depth = Treeadd.depth_for scale in
  let s = Treeadd.make_sites () in
  let root = Treeadd.build s depth in
  let child t bit =
    if bit = 0 then Ops.load_ptr s.Treeadd.s_left t Treeadd.off_left
    else Ops.load_ptr s.Treeadd.s_right t Treeadd.off_right
  in
  (* hashed root-to-frontier descent, charging the kernel's per-node
     work so a served visit costs what a batch visit costs *)
  let rec descend t path levels =
    if Gptr.is_null t || levels = 0 then t
    else begin
      let next = child t (path land 1) in
      Ops.work Treeadd.node_work;
      if Gptr.is_null next then t else descend next (path lsr 1) (levels - 1)
    end
  in
  let rec subtree_sum t levels =
    if Gptr.is_null t || levels = 0 then 0
    else begin
      let l = child t 0 in
      let r = child t 1 in
      let v = Ops.load_int s.Treeadd.s_val t Treeadd.off_val in
      Ops.work Treeadd.node_work;
      v + subtree_sum l (levels - 1) + subtree_sum r (levels - 1)
    end
  in
  let request k payload =
    match k with
    | Point ->
        let t = descend root payload depth in
        if Gptr.is_null t then 0
        else Ops.load_int s.Treeadd.s_val t Treeadd.off_val
    | Scan ->
        (* bounded subtree scan: descend most of the way, sum the last
           four levels *)
        let t = descend root payload (max 0 (depth - 4)) in
        subtree_sum t 4
    | Update ->
        let t = descend root payload depth in
        if Gptr.is_null t then 0
        else begin
          let old = Ops.load_int s.Treeadd.s_val t Treeadd.off_val in
          Ops.store_int s.Treeadd.s_val t Treeadd.off_val
            ((payload land 0xff) + 1);
          old
        end
  in
  { request }

let em3d_server ~(cfg : C.t) ~scale =
  let n = Common.scaled ~scale ~floor:64 2048 in
  let degree = 8 in
  let s = Em3d.make_sites () in
  let g = Em3d.describe ~n ~degree ~nprocs:cfg.C.nprocs ~seed:cfg.C.seed () in
  let b = Em3d.build s g in
  let node_of payload =
    let side =
      if payload land 1 = 0 then b.Em3d.e_nodes else b.Em3d.h_nodes
    in
    side.((payload lsr 1) mod n)
  in
  (* one node's neighbour gather: local fields through the migrate
     sites, neighbour values through the cached site — the kernel's
     inner loop as a request body *)
  let gather node =
    let acc = ref (Ops.load_float s.Em3d.s_value_local node Em3d.off_value) in
    for j = 0 to degree - 1 do
      let nbr = Ops.load_ptr s.Em3d.s_nbr node (Em3d.off_nbr j) in
      let w = Ops.load_float s.Em3d.s_weight node (Em3d.off_weight j) in
      let v = Ops.load_float s.Em3d.s_value_remote nbr Em3d.off_value in
      Ops.work Em3d.edge_work;
      acc := !acc -. (w *. v)
    done;
    !acc
  in
  let fingerprint f = int_of_float (f *. 65536.) land 0x3fffffff in
  let request k payload =
    match k with
    | Point -> fingerprint (gather (node_of payload))
    | Scan ->
        (* bounded range scan along the per-processor node list *)
        let rec walk node left acc =
          if Gptr.is_null node || left = 0 then acc
          else begin
            let v = Ops.load_float s.Em3d.s_value_local node Em3d.off_value in
            Ops.work Em3d.edge_work;
            walk
              (Ops.load_ptr s.Em3d.s_next node Em3d.off_next)
              (left - 1) (acc +. v)
          end
        in
        fingerprint (walk (node_of payload) 8 0.)
    | Update ->
        let node = node_of payload in
        let acc = gather node in
        Ops.store_float s.Em3d.s_value_local node Em3d.off_value acc;
        fingerprint acc
  in
  { request }

let health_server ~scale =
  let levels = Health.levels_for scale in
  let s = Health.make_sites () in
  let root, villages = Health.build s ~levels in
  let varr = Array.of_list villages in
  let nv = Array.length varr in
  let request k payload =
    match k with
    | Point ->
        (* village status card: three scalar reads *)
        let v = varr.(payload mod nv) in
        let vid = Ops.load_int s.Health.s_vfield v Health.v_vid in
        let t = Ops.load_int s.Health.s_vfield v Health.v_treated in
        let w = Ops.load_int s.Health.s_vfield v Health.v_waitsum in
        Ops.work Health.patient_work;
        vid + t + w
    | Scan ->
        (* referral-path walk: root to a hashed leaf through the child
           sites the sim traverses *)
        let rec go v path acc =
          if Gptr.is_null v then acc
          else begin
            let vid = Ops.load_int s.Health.s_vfield v Health.v_vid in
            Ops.work Health.patient_work;
            go
              (Ops.load_ptr s.Health.s_child v (Health.v_child (path land 3)))
              (path lsr 2) (acc + vid)
          end
        in
        go root payload 0
    | Update ->
        (* register a treatment: read-modify-write two counters *)
        let v = varr.(payload mod nv) in
        let t = Ops.load_int s.Health.s_vfield v Health.v_treated in
        Ops.store_int s.Health.s_vfield v Health.v_treated (t + 1);
        let w = Ops.load_int s.Health.s_vfield v Health.v_waitsum in
        Ops.store_int s.Health.s_vfield v Health.v_waitsum
          (w + (payload land 0xf));
        Ops.work Health.patient_work;
        t + w
  in
  { request }

(* --- Running an open-loop serve ---------------------------------------- *)

type result = {
  r_heap : heap;
  r_scheme : C.coherence;
  r_spec : C.Serving.spec;
  r_mix : mix;
  r_admitted : int;
  r_completed : int;
  r_serve_cycles : int;
  r_total_cycles : int;
  r_throughput : float;
  r_classes : (string * Monitor.summary) list;
  r_ingress : int array;
  r_checksum : string;
  r_ok : bool;
}

let run ?(scale = 64) ~(cfg : C.t) ~(spec : C.Serving.spec) ~mix heap =
  let arr = arrivals ~spec in
  let hooks = Common.hooks () in
  let saved_interval = hooks.Common.monitor_interval in
  let saved_inspect = hooks.Common.inspect_engine in
  (* latency quantiles need a monitor; install one at a duration-derived
     interval unless the caller already asked for a specific one *)
  if saved_interval = None then
    hooks.Common.monitor_interval <-
      Some (max 1_000 (spec.C.Serving.duration / 8));
  let ingress_counts = ref [||] in
  hooks.Common.inspect_engine <-
    Some
      (fun e ->
        ingress_counts := Machine.ingress_counts (Engine.machine e);
        match saved_inspect with Some f -> f e | None -> ());
  let acc = ref 0 in
  Fun.protect
    ~finally:(fun () ->
      hooks.Common.monitor_interval <- saved_interval;
      hooks.Common.inspect_engine <- saved_inspect)
    (fun () ->
      (* site ids restart at 0 per serve, so per-site labels and traces
         are stable run to run *)
      Site.reset ();
      let outcome =
        Common.execute cfg ~program:(fun engine ->
            let server =
              match heap with
              | Treeadd -> treeadd_server ~scale
              | Em3d -> em3d_server ~cfg ~scale
              | Health -> health_server ~scale
            in
            Ops.phase "kernel";
            (* the serving epoch opens one lookahead past the built
               heap's clocks, so injections satisfy the multi-domain
               contract from any shard *)
            let base = Machine.now (Engine.machine engine) 0 + C.lookahead cfg in
            let seed = spec.C.Serving.arrival_seed in
            List.iter
              (fun a ->
                let draw salt =
                  hash ~seed ~stream:a.a_stream ~index:a.a_index ~salt
                in
                let k = pick_class mix (draw salt_class) in
                let ingress = draw salt_ingress mod cfg.C.nprocs in
                let payload = draw salt_payload in
                let admitted_at = base + a.a_offset in
                Engine.inject engine ~proc:ingress ~ready_at:admitted_at
                  ~on_complete:(fun ~proc ~finish ->
                    let cycles = finish - admitted_at in
                    if Monitor.is_on () then
                      Monitor.request ~klass:(klass_name k) ~cycles;
                    if Span.is_on () then
                      Span.root ~kind:Span.Request ~proc ~t0:admitted_at
                        ~t1:finish ~a:(klass_code k) ~b:ingress)
                  (fun () -> acc := mix2 !acc (server.request k payload)))
              arr;
            (* the checksum folds in completion order and is read after
               the drain; the program's own return value is a
               placeholder (the main fiber finishes before any request
               runs) *)
            ("serving", true))
      in
      let admitted = outcome.Common.total_stats.Stats.requests_admitted in
      let completed = outcome.Common.total_stats.Stats.requests_completed in
      let classes =
        match hooks.Common.last_monitor with
        | Some m -> Monitor.request_summaries m
        | None -> []
      in
      let serve_cycles = outcome.Common.kernel_cycles in
      let throughput =
        if serve_cycles <= 0 then 0.
        else float_of_int completed *. 1000. /. float_of_int serve_cycles
      in
      {
        r_heap = heap;
        r_scheme = cfg.C.coherence;
        r_spec = spec;
        r_mix = mix;
        r_admitted = admitted;
        r_completed = completed;
        r_serve_cycles = serve_cycles;
        r_total_cycles = outcome.Common.total_cycles;
        r_throughput = throughput;
        r_classes = classes;
        r_ingress = !ingress_counts;
        r_checksum = Printf.sprintf "acc=%d" !acc;
        r_ok = admitted = List.length arr && completed = admitted;
      })

(* --- The offered-load sweep -------------------------------------------- *)

type sweep_point = { sw_offered : float; sw_achieved : float; sw_p99 : int }

(* Straddles every heap's knee at 8 processors: TreeAdd saturates near
   0.3 req/kcy (every point query descends through migrate sites),
   Health near 1, EM3D near 1.5. *)
let default_sweep_rates = [ 0.25; 0.5; 1.0; 2.0; 4.0 ]

let saturation_sweep ?(domains = 1) ?scale ?(rates = default_sweep_rates)
    ~cfg ~(spec : C.Serving.spec) ~mix heap =
  let points =
    List.map
      (fun r -> (Printf.sprintf "%s@%.2f" (heap_name heap) r, r))
      rates
  in
  let pts, _stats =
    Sweep.run ~domains
      (fun ~label:_ rate ->
        let spec = { spec with C.Serving.rate } in
        let r = run ?scale ~cfg ~spec ~mix heap in
        let p99 =
          List.fold_left
            (fun best (_, (s : Monitor.summary)) -> max best s.Monitor.p99)
            0 r.r_classes
        in
        { sw_offered = rate; sw_achieved = r.r_throughput; sw_p99 = p99 })
      points
  in
  let values = List.map (fun (p : _ Sweep.point) -> p.Sweep.value) pts in
  let knee =
    Option.map
      (fun p -> p.sw_offered)
      (List.find_opt (fun p -> p.sw_achieved < 0.9 *. p.sw_offered) values)
  in
  (values, knee)

(* --- Reporting ---------------------------------------------------------- *)

let row_name r =
  Printf.sprintf "%s/%s" (heap_name r.r_heap)
    (C.coherence_to_string r.r_scheme)

(* requests per million cycles: the integer throughput metric the
   snapshot diff gates on (gating needs ints; per-kilocycle rates would
   round to one digit) *)
let rpm throughput = int_of_float (Float.round (throughput *. 1000.))

let summary_json (k, (s : Monitor.summary)) =
  Json.Obj
    [
      ("class", Json.String k);
      ("count", Json.Int s.Monitor.count);
      ("mean", Json.Float s.Monitor.mean);
      ("min", Json.Int s.Monitor.min);
      ("max", Json.Int s.Monitor.max);
      ("p50", Json.Int s.Monitor.p50);
      ("p90", Json.Int s.Monitor.p90);
      ("p99", Json.Int s.Monitor.p99);
      ("p999", Json.Int s.Monitor.p999);
    ]

let result_json ?sweep r =
  let sweep_fields =
    match sweep with
    | None -> []
    | Some (points, knee) ->
        [
          ( "sweep",
            Json.List
              (List.map
                 (fun p ->
                   Json.Obj
                     [
                       ("offered_rpk", Json.Float p.sw_offered);
                       ("achieved_rpk", Json.Float p.sw_achieved);
                       ("achieved_rpm", Json.Int (rpm p.sw_achieved));
                       ("p99", Json.Int p.sw_p99);
                     ])
                 points) );
          ( "knee_rpk",
            match knee with Some k -> Json.Float k | None -> Json.Null );
        ]
  in
  Json.Obj
    [
      ("benchmark", Json.String (row_name r));
      ("heap", Json.String (heap_name r.r_heap));
      ("coherence", Json.String (C.coherence_to_string r.r_scheme));
      ( "profile",
        Json.String (C.Serving.profile_to_string r.r_spec.C.Serving.profile) );
      ("rate_rpk", Json.Float r.r_spec.C.Serving.rate);
      ("duration", Json.Int r.r_spec.C.Serving.duration);
      ("streams", Json.Int r.r_spec.C.Serving.streams);
      ("arrival_seed", Json.Int r.r_spec.C.Serving.arrival_seed);
      ("mix", Json.String (mix_to_string r.r_mix));
      ("verified", Json.Bool r.r_ok);
      ("admitted", Json.Int r.r_admitted);
      ("completed", Json.Int r.r_completed);
      ("serve_cycles", Json.Int r.r_serve_cycles);
      ("total_cycles", Json.Int r.r_total_cycles);
      ("throughput_rpm", Json.Int (rpm r.r_throughput));
      ("checksum", Json.String r.r_checksum);
      ( "ingress",
        Json.List (Array.to_list (Array.map (fun i -> Json.Int i) r.r_ingress))
      );
      ( "serving",
        Json.Obj
          (("request", Json.List (List.map summary_json r.r_classes))
          :: sweep_fields) );
    ]

let pp_result ppf r =
  Format.fprintf ppf "%s: %s mix=%s@." (row_name r)
    (C.Serving.to_string r.r_spec)
    (mix_to_string r.r_mix);
  Format.fprintf ppf
    "  admitted %d  completed %d%s  serve %s cycles  throughput %.3f req/kcy@."
    r.r_admitted r.r_completed
    (if r.r_ok then "" else "  [INCOMPLETE]")
    (Common.commas r.r_serve_cycles)
    r.r_throughput;
  List.iter
    (fun (k, (s : Monitor.summary)) ->
      Format.fprintf ppf
        "  %-8s count %6d  p50 %8d  p90 %8d  p99 %8d  p999 %8d  max %8d@." k
        s.Monitor.count s.Monitor.p50 s.Monitor.p90 s.Monitor.p99
        s.Monitor.p999 s.Monitor.max)
    r.r_classes
