(* Machine description and cost model for the simulated CM-5.

   All costs are in cycles of the simulated machine.  The calibration
   anchor, taken from the paper (Section 4, footnote 3), is that a thread
   migration costs about seven times a cache-line miss.  Everything else is
   set to plausible CM-5 magnitudes; the reproduction targets ratios, not
   absolute times. *)

type coherence =
  | Local (* invalidate own cache on migration receipt; no traffic *)
  | Global (* eager release consistency: track sharers, send invalidations *)
  | Bilateral (* per-page timestamps; revalidate suspect pages on first miss *)

type mechanism =
  | Migrate
  | Cache

type policy =
  | Heuristic (* per-site mechanism chosen by the compiler heuristic *)
  | Migrate_only (* force migration at every remote reference (Table 2, last column) *)
  | Cache_only (* force software caching at every remote reference *)

let coherence_to_string = function
  | Local -> "local"
  | Global -> "global"
  | Bilateral -> "bilateral"

let coherence_of_string = function
  | "local" -> Some Local
  | "global" -> Some Global
  | "bilateral" -> Some Bilateral
  | _ -> None

let mechanism_to_string = function
  | Migrate -> "migrate"
  | Cache -> "cache"

let policy_to_string = function
  | Heuristic -> "heuristic"
  | Migrate_only -> "migrate-only"
  | Cache_only -> "cache-only"

let policy_of_string = function
  | "heuristic" -> Some Heuristic
  | "migrate-only" | "migrate_only" | "migrate" -> Some Migrate_only
  | "cache-only" | "cache_only" | "cache" -> Some Cache_only
  | _ -> None

(* Population count of an int bitmask, Kernighan style: one iteration per
   set bit, so line masks (<= 32 bits, usually sparse) and written-processor
   masks pay for what they hold.  The single shared implementation — the
   cache layer's valid masks, write logs, and invalidation accounting all
   count bits through this. *)
let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

(* Heap geometry (Section 3.2): 2 KB pages, 64 B lines, 32 lines per page,
   1024-bucket translation table, 32-bit words. *)
module Geometry = struct
  let word_bytes = 4
  let line_bytes = 64
  let page_bytes = 2048
  let words_per_line = line_bytes / word_bytes (* 16 *)
  let words_per_page = page_bytes / word_bytes (* 512 *)
  let lines_per_page = page_bytes / line_bytes (* 32 *)
  let hash_buckets = 1024

  let page_of_word w = w / words_per_page
  let line_of_word w = w mod words_per_page / words_per_line
  let line_index_of_word w = w / words_per_line
  let word_offset_in_page w = w mod words_per_page
end

type costs = {
  local_ref : int; (* a plain local load/store *)
  pointer_test : int; (* compiler-inserted locality check on a migrate site *)
  cache_probe : int; (* hash-table lookup + tag/valid check on a cache site *)
  net_latency : int; (* one-way message latency *)
  line_service : int; (* home handler time to service a line fetch *)
  store_service : int; (* home handler time to apply a write-through store *)
  alloc_service : int; (* home handler time for a remote ALLOC *)
  alloc_local : int; (* local allocation cost *)
  migrate_send : int; (* serialize registers + PC + frame and inject *)
  migrate_recv : int; (* install frame, restart thread *)
  return_send : int; (* return stub: registers + return address, no frame *)
  return_recv : int;
  future_spawn : int; (* push continuation on the work list *)
  future_touch : int; (* test + possible block *)
  steal : int; (* pop a continuation from the local work list *)
  cache_flush : int; (* local scheme: invalidate entire cache *)
  invalidate_line : int; (* apply one line invalidation *)
  write_track_nonshared : int; (* Appendix A: 7 instructions *)
  write_track_shared : int; (* Appendix A: 23 instructions *)
  timestamp_service : int; (* bilateral: home compares timestamps *)
  recovery_service : int; (* home handler time to process a recovery notice *)
}

let default_costs =
  {
    local_ref = 1;
    pointer_test = 3;
    cache_probe = 12;
    net_latency = 150;
    line_service = 100;
    store_service = 40;
    alloc_service = 60;
    alloc_local = 10;
    (* One-way migration experienced latency:
       migrate_send + net_latency + migrate_recv = 2800 = 7 * line miss (400).
       Injection is cheap (active messages); the receiver pays to install
       the frame and restart the thread, which also serializes arrivals at
       a hot target. *)
    migrate_send = 250;
    migrate_recv = 2400;
    return_send = 200;
    return_recv = 1050;
    future_spawn = 25;
    future_touch = 8;
    steal = 30;
    cache_flush = 120;
    invalidate_line = 6;
    write_track_nonshared = 7;
    write_track_shared = 23;
    timestamp_service = 60;
    recovery_service = 80;
  }

(* Cost of a full line miss round trip, excluding handler queueing. *)
let miss_round_trip c = (2 * c.net_latency) + c.line_service

(* --- Fault model -------------------------------------------------------- *)

(* The paper assumes the CM-5's reliable active-message network; the
   fault model below removes that assumption.  Every knob is a
   probability per delivery *attempt* (retransmissions draw fresh
   decisions), evaluated deterministically from [fault_seed] and the
   message's sequence number — never from wall clock or global mutable
   state — so a fault schedule is replayable bit-for-bit. *)
type fault_spec = {
  drop : float; (* P(an attempt is lost in the network) *)
  delay : float; (* P(a delivered attempt is delayed) *)
  delay_cycles : int; (* extra latency added to a delayed attempt *)
  duplicate : float; (* P(a delivered message arrives twice) *)
  outage : float; (* P(a handler is down during a given window) *)
  outage_cycles : int; (* length of a handler-outage window *)
  migrate_drop : float option;
      (* override of [drop] for thread-state transfers (migrations and
         returns); lets a chaos schedule target "flaky homes" without
         making cache fetches undeliverable *)
  crash : float; (* P(a processor crashes during a given window) *)
  crash_cycles : int; (* length of a crash-decision window *)
  failstop : float; (* P(a processor dies for good during a given window) *)
  failstop_cycles : int; (* length of a fail-stop-decision window *)
  fault_seed : int; (* schedule selector, independent of the workload seed *)
}

(* Retry protocol: a requester that hears nothing within [timeout] cycles
   retransmits, doubling the wait each time ([backoff]) up to
   [max_timeout].  A migration that fails [max_migration_attempts] times
   gives up and degrades to the caching mechanism; any other message that
   fails [max_attempts] times is undeliverable (the schedule is broken —
   e.g. drop = 1.0 on the cache path). *)
type retry_spec = {
  timeout : int; (* cycles before the first retransmission *)
  backoff : int; (* wait multiplier per retransmission *)
  max_timeout : int; (* cap on the backed-off wait *)
  max_migration_attempts : int; (* then fall back to caching *)
  max_attempts : int; (* then Machine.Undeliverable *)
}

let default_retry =
  {
    timeout = 400; (* about one line-miss round trip *)
    backoff = 2;
    max_timeout = 6400;
    max_migration_attempts = 4;
    max_attempts = 64;
  }

let no_faults =
  {
    drop = 0.;
    delay = 0.;
    delay_cycles = 0;
    duplicate = 0.;
    outage = 0.;
    outage_cycles = 0;
    migrate_drop = None;
    crash = 0.;
    crash_cycles = 0;
    failstop = 0.;
    failstop_cycles = 0;
    fault_seed = 0;
  }

(* Primary–backup home replication: every write-through store applied at
   a home page is mirrored to a deterministically chosen backup,
   [(home + stride) mod nprocs], as a [Fault_plan.Replica]-class message
   under the standard retry/backoff.  With the mirror in place a
   fail-stop death of the home is survivable: failover promotes the
   backup and rewrites the home map (docs/ROBUSTNESS.md).  [threads]
   extends the mirror to resident thread state — with it off, threads
   resident on a fail-stopped processor are lost and the run aborts with
   a deterministic report. *)
type replica_spec = {
  stride : int; (* backup of home h is (h + stride) mod nprocs *)
  threads : bool; (* replicate resident thread state too *)
}

let default_replica = { stride = 1; threads = true }

(* Named fault schedules, for the chaos CLI and tests. *)
module Faults = struct
  let drop ?(p = 0.05) ~seed () = { no_faults with drop = p; fault_seed = seed }

  let delay ?(p = 0.10) ?(cycles = 600) ~seed () =
    { no_faults with delay = p; delay_cycles = cycles; fault_seed = seed }

  let duplicate ?(p = 0.05) ~seed () =
    { no_faults with duplicate = p; fault_seed = seed }

  let outage ?(p = 0.02) ?(cycles = 2000) ~seed () =
    { no_faults with outage = p; outage_cycles = cycles; fault_seed = seed }

  let flaky_home ?(p = 0.9) ~seed () =
    { no_faults with migrate_drop = Some p; fault_seed = seed }

  (* Crash-and-restart: each processor rolls a crash die once per
     [cycles]-long window; a hit wipes its volatile remote-access state
     (translation table, cached frames, write log, suspicion epochs) and
     triggers the warm-restart protocol (docs/ROBUSTNESS.md). *)
  let crash ?(p = 0.02) ?(cycles = 4000) ~seed () =
    { no_faults with crash = p; crash_cycles = cycles; fault_seed = seed }

  (* Fail-stop: each processor rolls a death die once per [cycles]-long
     window; a hit kills it permanently — home pages fail over to the
     replicated backup, the home map is rewritten, and the victim never
     computes again.  Requires [replication] in the config. *)
  let failstop ?(p = 0.02) ?(cycles = 4000) ~seed () =
    { no_faults with failstop = p; failstop_cycles = cycles; fault_seed = seed }

  let mixed ?(p = 0.03) ~seed () =
    {
      no_faults with
      drop = p;
      delay = 2. *. p;
      delay_cycles = 600;
      duplicate = p;
      outage = p /. 2.;
      outage_cycles = 2000;
      fault_seed = seed;
    }

  (* Crashes layered on top of message-level faults: recovery notices
     themselves ride the lossy network and must survive retries. *)
  let crash_mix ?(p = 0.02) ~seed () =
    {
      (mixed ~p:(p /. 2.) ~seed ()) with
      crash = p;
      crash_cycles = 4000;
    }

  (* Fail-stop deaths layered on message faults: replica traffic and
     failover announcements themselves ride the lossy network. *)
  let failstop_mix ?(p = 0.02) ~seed () =
    {
      (mixed ~p:(p /. 2.) ~seed ()) with
      failstop = p;
      failstop_cycles = 4000;
    }

  let names =
    [
      "drop"; "delay"; "dup"; "outage"; "flaky-home"; "mix"; "crash";
      "crash-mix"; "failstop"; "failstop-mix";
    ]

  let by_name name ~seed =
    match name with
    | "drop" -> Some (drop ~seed ())
    | "delay" -> Some (delay ~seed ())
    | "dup" | "duplicate" -> Some (duplicate ~seed ())
    | "outage" -> Some (outage ~seed ())
    | "flaky-home" | "flaky_home" -> Some (flaky_home ~seed ())
    | "mix" | "mixed" -> Some (mixed ~seed ())
    | "crash" -> Some (crash ~seed ())
    | "crash-mix" | "crash_mix" -> Some (crash_mix ~seed ())
    | "failstop" -> Some (failstop ~seed ())
    | "failstop-mix" | "failstop_mix" -> Some (failstop_mix ~seed ())
    | _ -> None

  let to_string f =
    Printf.sprintf
      "drop=%.3f delay=%.3f/%d dup=%.3f outage=%.3f/%d%s%s%s seed=%d" f.drop
      f.delay f.delay_cycles f.duplicate f.outage f.outage_cycles
      (match f.migrate_drop with
      | Some p -> Printf.sprintf " migrate-drop=%.3f" p
      | None -> "")
      (if f.crash > 0. then
         Printf.sprintf " crash=%.3f/%d" f.crash f.crash_cycles
       else "")
      (if f.failstop > 0. then
         Printf.sprintf " failstop=%.3f/%d" f.failstop f.failstop_cycles
       else "")
      f.fault_seed
end

(* Open-system serving knobs: the arrival process and horizon the
   lib/serving driver runs under.  Deliberately a standalone spec rather
   than a field of [t] — serving is a driver concern layered on top of a
   machine config, and a batch run must not depend on (or even see)
   these values. *)
module Serving = struct
  type profile =
    | Poisson (* memoryless arrivals at the offered rate *)
    | Bursty (* Markov-modulated on/off: dense bursts, long quiet gaps *)
    | Diurnal (* the offered rate swings sinusoidally around the mean *)

  let profile_to_string = function
    | Poisson -> "poisson"
    | Bursty -> "bursty"
    | Diurnal -> "diurnal"

  let profile_of_string = function
    | "poisson" -> Some Poisson
    | "bursty" -> Some Bursty
    | "diurnal" -> Some Diurnal
    | _ -> None

  let profile_names = [ "poisson"; "bursty"; "diurnal" ]

  type spec = {
    profile : profile;
    rate : float; (* offered load, requests per 1000 simulated cycles *)
    duration : int; (* arrival horizon in simulated cycles *)
    streams : int; (* independent arrival streams (ingress shards) *)
    arrival_seed : int; (* arrival-process selector, independent of the
                           workload and fault seeds *)
  }

  let make ?(profile = Poisson) ?(rate = 2.0) ?(duration = 100_000)
      ?(streams = 4) ?(arrival_seed = 1) () =
    if not (rate > 0.) then
      invalid_arg "Olden_config.Serving.make: rate must be positive";
    if duration < 1 then
      invalid_arg "Olden_config.Serving.make: duration must be positive";
    if streams < 1 then
      invalid_arg "Olden_config.Serving.make: streams must be at least 1";
    { profile; rate; duration; streams; arrival_seed }

  let default = make ()

  let to_string s =
    Printf.sprintf "%s rate=%.2f/kcy duration=%d streams=%d seed=%d"
      (profile_to_string s.profile)
      s.rate s.duration s.streams s.arrival_seed
end

(* Experienced one-way migration latency, excluding queueing at the target. *)
let migration_latency c = c.migrate_send + c.net_latency + c.migrate_recv

type t = {
  nprocs : int;
  costs : costs;
  coherence : coherence;
  policy : policy;
  handler_contention : bool;
      (* model serialization of active-message handlers at the home node *)
  return_invalidate_refinement : bool;
      (* local scheme: on return, invalidate only lines homed at processors
         the returning thread wrote, instead of flushing *)
  sequential : bool;
      (* baseline mode: one processor, no pointer tests, no future overhead *)
  trace : bool; (* emit per-event log lines via Logs *)
  seed : int;
  faults : fault_spec option;
      (* None: the reliable network the paper assumes — bit-identical to
         runs predating the fault layer *)
  retry : retry_spec; (* consulted only when [faults] is [Some _] *)
  replication : replica_spec option;
      (* None: no home-page mirroring, the seed behaviour.  Some: every
         write-through store is mirrored to the backup so the machine
         survives fail-stop deaths.  Required when [faults] carries a
         non-zero [failstop] probability. *)
  host_domains : int;
      (* host-side execution shards: simulated processors are partitioned
         into this many shards of the engine's conservative parallel-DES
         scheduler (epochs bounded by the cross-processor lookahead,
         cross-shard events exchanged through mailboxes at epoch
         barriers).  Results are bit-identical for any value; 1 is the
         classic single-shard scheduler. *)
}

let default =
  {
    nprocs = 32;
    costs = default_costs;
    coherence = Local;
    policy = Heuristic;
    handler_contention = false;
    return_invalidate_refinement = true;
    sequential = false;
    trace = false;
    seed = 0x01de5 land 0xffff;
    faults = None;
    retry = default_retry;
    replication = None;
    host_domains = 1;
  }

let make ?(nprocs = 32) ?(costs = default_costs) ?(coherence = Local)
    ?(policy = Heuristic) ?(handler_contention = false)
    ?(return_invalidate_refinement = true) ?(trace = false) ?(seed = 42)
    ?faults ?(retry = default_retry) ?replication ?(host_domains = 1) () =
  if host_domains < 1 then invalid_arg "Olden_config.make: host_domains < 1";
  (match (faults, replication) with
  | Some f, None when f.failstop > 0. ->
      invalid_arg
        "Olden_config.make: a fail-stop schedule needs ~replication (a dead \
         home is unrecoverable without a mirror)"
  | _ -> ());
  (match replication with
  | Some r when r.stride < 1 ->
      invalid_arg "Olden_config.make: replication stride must be >= 1"
  | _ -> ());
  {
    nprocs;
    costs;
    coherence;
    policy;
    handler_contention;
    return_invalidate_refinement;
    sequential = false;
    trace;
    seed;
    faults;
    retry;
    replication;
    host_domains;
  }

(* The minimum delay any cross-processor event carries, in cycles: every
   cross-processor wakeup, migration leg, return, retransmit, and
   recovery message is scheduled at least one network traversal after the
   clock that sends it, and fault perturbations only ever add delay.
   This is the conservative parallel-DES lookahead: within an epoch of
   this width no shard can receive an event that should have pre-empted
   work it already agreed to run. *)
let lookahead t = t.costs.net_latency

(* The sequential baseline is the same program compiled without Olden:
   one processor, no locality tests, no cache probes, no future machinery. *)
let sequential_of t =
  {
    t with
    nprocs = 1;
    sequential = true;
    costs =
      {
        t.costs with
        pointer_test = 0;
        cache_probe = 0;
        future_spawn = 0;
        future_touch = 0;
        steal = 0;
      };
  }

(* Compiler heuristic parameters (Section 4.3). *)
module Heuristic_params = struct
  let threshold = 0.90
  let default_affinity = 0.70
end

(* Machine presets (Section 7): the mechanism trade-off shifts with the
   platform.  A network of workstations has such a high message latency
   that migration (one move, then local work) is favored; a machine with
   hardware shared-memory support makes misses so cheap that caching is
   favored.  The break-even path-affinity — and hence where the selection
   threshold belongs — follows the migration/miss cost ratio. *)
module Presets = struct
  (* The paper's platform: migration = 7 x miss (Section 4, footnote 3). *)
  let cm5 = default_costs

  (* Network of workstations: millisecond-class software messaging.  The
     fixed per-message software overhead dwarfs per-line service, so a
     migration costs only ~2 x a miss and pays off at much lower
     affinities. *)
  let now =
    {
      default_costs with
      net_latency = 6000;
      line_service = 800;
      store_service = 400;
      migrate_send = 2000;
      migrate_recv = 6000;
      return_send = 1500;
      return_recv = 3000;
    }

  (* Hybrid hardware-DSM (Alewife / FLASH / Typhoon-class): fine-grain
     access control makes a line miss ~40 cycles while moving a thread
     still costs a software trap, so migration = ~35 x a miss and caching
     is almost always right. *)
  let hardware_dsm =
    {
      default_costs with
      pointer_test = 1;
      cache_probe = 2;
      net_latency = 12;
      line_service = 16;
      store_service = 8;
      migrate_send = 200;
      migrate_recv = 1200;
      return_send = 150;
      return_recv = 600;
    }

  let by_name = [ ("cm5", cm5); ("now", now); ("hardware-dsm", hardware_dsm) ]

  (* One-way migration latency over line-miss round trip: the ratio that
     sets the break-even affinity (see Olden_benchmarks.Breakeven). *)
  let migration_miss_ratio c =
    float_of_int (c.migrate_send + c.net_latency + c.migrate_recv)
    /. float_of_int ((2 * c.net_latency) + c.line_service)
end

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nprocs=%d coherence=%s policy=%s contention=%b refinement=%b \
     seq=%b@]"
    t.nprocs
    (coherence_to_string t.coherence)
    (policy_to_string t.policy) t.handler_contention
    t.return_invalidate_refinement t.sequential
