(* Structured event tracing for the Olden runtime.

   The engine, the cache system, and the coherence directories emit
   events into a single process-wide sink.  Tracing must cost nothing
   when it is off: every emission site is written

     if Trace.is_on () then Trace.emit { ... }

   so with no sink installed the only work done is one boolean load —
   no event record is ever allocated.  [emit] itself re-checks the sink
   so a stray unguarded call is still safe.

   Events are stamped with simulated time, processor, thread id, and
   dereference-site id.  The engine knows its current thread and site;
   the cache and directory layers run beneath it and pick the stamps up
   from the context set by {!set_thread} / {!set_site} (both writes are
   themselves guarded, so the context costs nothing when tracing is
   off). *)

type kind =
  | Migrate_send of { target : int }
  | Migrate_arrive of { source : int }
  | Return_send of { target : int }
  | Return_arrive of { source : int }
  | Future_spawn of { fid : int }
  | Future_resolve of { fid : int; waiters : int }
  | Future_touch of { fid : int; parked : bool }
  | Steal
  | Cache_hit of { home : int; page : int; line : int }
  | Cache_miss of { home : int; page : int; line : int }
  | Cache_flush of { entries : int }
  | Suspect_all
  | Revalidate of { home : int; page : int; dropped : int }
  | Inval_send of { target : int; page : int }
  | Inval_recv of { source : int; page : int; dropped : int }
  | Dir_write of { page : int; line : int }
  | Dir_release of { page : int; ts : int }
  | Remote_alloc of { home : int; words : int }
  | Phase_mark of string
  | Fault_drop of { dst : int; attempt : int; outage : bool }
  | Fault_delay of { dst : int; cycles : int }
  | Fault_dup of { dst : int }
  | Retry of { dst : int; attempt : int; wait : int }
  | Migrate_fallback of { home : int; attempts : int }
  | Crash of { pages_lost : int }
  | Recover of { homes : int; stall : int }
  | Failstop of { pages_lost : int }
  | Failover of { victim : int; pages : int; homes : int }

type event = {
  time : int;  (* simulated cycles *)
  proc : int;
  tid : int;  (* -1 when no thread applies *)
  site : int;  (* dereference-site id; -1 when no site applies *)
  kind : kind;
}

(* --- The sink ---------------------------------------------------------- *)

(* All emitter state — the installed sink and the ambient thread/site
   context — lives in one record behind a domain-local key, so engines
   running on different domains (the parallel sweep driver) trace
   independently.  One [Domain.DLS.get] per hook keeps the off path at a
   couple of loads. *)
type emitter = {
  mutable on : bool;
  mutable sink : event -> unit;
  mutable cur_tid : int;
  mutable cur_site : int;
}

let emitter_key =
  Domain.DLS.new_key (fun () ->
      { on = false; sink = (fun _ -> ()); cur_tid = -1; cur_site = -1 })

let emitter () = Domain.DLS.get emitter_key

let is_on () = (emitter ()).on

let install sink =
  let e = emitter () in
  e.sink <- sink;
  e.on <- true

let uninstall () =
  let e = emitter () in
  e.on <- false;
  e.sink <- (fun _ -> ())

let emit ev =
  let e = emitter () in
  if e.on then e.sink ev

(* --- Emitter context --------------------------------------------------- *)

let set_thread tid = (emitter ()).cur_tid <- tid
let set_site site = (emitter ()).cur_site <- site
let thread () = (emitter ()).cur_tid
let site () = (emitter ()).cur_site

(* --- Collector --------------------------------------------------------- *)

module Collector = struct
  (* A grow-only vector (no Dynarray before OCaml 5.2). *)
  type t = { mutable arr : event option array; mutable len : int }

  let create () = { arr = Array.make 1024 None; len = 0 }

  let add c ev =
    if c.len = Array.length c.arr then begin
      let bigger = Array.make (2 * c.len) None in
      Array.blit c.arr 0 bigger 0 c.len;
      c.arr <- bigger
    end;
    c.arr.(c.len) <- Some ev;
    c.len <- c.len + 1

  let length c = c.len

  let events c =
    Array.init c.len (fun i ->
        match c.arr.(i) with Some ev -> ev | None -> assert false)
end

let collect f =
  let c = Collector.create () in
  install (Collector.add c);
  Fun.protect ~finally:uninstall (fun () ->
      let result = f () in
      (result, Collector.events c))

(* --- Names and structured arguments ------------------------------------ *)

let kind_name = function
  | Migrate_send _ -> "migrate_send"
  | Migrate_arrive _ -> "migrate_arrive"
  | Return_send _ -> "return_send"
  | Return_arrive _ -> "return_arrive"
  | Future_spawn _ -> "future_spawn"
  | Future_resolve _ -> "future_resolve"
  | Future_touch _ -> "future_touch"
  | Steal -> "steal"
  | Cache_hit _ -> "cache_hit"
  | Cache_miss _ -> "cache_miss"
  | Cache_flush _ -> "cache_flush"
  | Suspect_all -> "suspect_all"
  | Revalidate _ -> "revalidate"
  | Inval_send _ -> "inval_send"
  | Inval_recv _ -> "inval_recv"
  | Dir_write _ -> "dir_write"
  | Dir_release _ -> "dir_release"
  | Remote_alloc _ -> "remote_alloc"
  | Phase_mark _ -> "phase"
  | Fault_drop _ -> "fault_drop"
  | Fault_delay _ -> "fault_delay"
  | Fault_dup _ -> "fault_dup"
  | Retry _ -> "retry"
  | Migrate_fallback _ -> "migrate_fallback"
  | Crash _ -> "crash"
  | Recover _ -> "recover"
  | Failstop _ -> "failstop"
  | Failover _ -> "failover"

(* Payload fields beyond the common stamps, in a fixed order. *)
let kind_args = function
  | Migrate_send { target } | Return_send { target } ->
      [ ("target", Json.Int target) ]
  | Migrate_arrive { source } | Return_arrive { source } ->
      [ ("source", Json.Int source) ]
  | Future_spawn { fid } -> [ ("fid", Json.Int fid) ]
  | Future_resolve { fid; waiters } ->
      [ ("fid", Json.Int fid); ("waiters", Json.Int waiters) ]
  | Future_touch { fid; parked } ->
      [ ("fid", Json.Int fid); ("parked", Json.Bool parked) ]
  | Steal -> []
  | Cache_hit { home; page; line } | Cache_miss { home; page; line } ->
      [ ("home", Json.Int home); ("page", Json.Int page);
        ("line", Json.Int line) ]
  | Cache_flush { entries } -> [ ("entries", Json.Int entries) ]
  | Suspect_all -> []
  | Revalidate { home; page; dropped } ->
      [ ("home", Json.Int home); ("page", Json.Int page);
        ("dropped", Json.Int dropped) ]
  | Inval_send { target; page } ->
      [ ("target", Json.Int target); ("page", Json.Int page) ]
  | Inval_recv { source; page; dropped } ->
      [ ("source", Json.Int source); ("page", Json.Int page);
        ("dropped", Json.Int dropped) ]
  | Dir_write { page; line } ->
      [ ("page", Json.Int page); ("line", Json.Int line) ]
  | Dir_release { page; ts } ->
      [ ("page", Json.Int page); ("ts", Json.Int ts) ]
  | Remote_alloc { home; words } ->
      [ ("home", Json.Int home); ("words", Json.Int words) ]
  | Phase_mark name -> [ ("name", Json.String name) ]
  | Fault_drop { dst; attempt; outage } ->
      [ ("dst", Json.Int dst); ("attempt", Json.Int attempt);
        ("outage", Json.Bool outage) ]
  | Fault_delay { dst; cycles } ->
      [ ("dst", Json.Int dst); ("cycles", Json.Int cycles) ]
  | Fault_dup { dst } -> [ ("dst", Json.Int dst) ]
  | Retry { dst; attempt; wait } ->
      [ ("dst", Json.Int dst); ("attempt", Json.Int attempt);
        ("wait", Json.Int wait) ]
  | Migrate_fallback { home; attempts } ->
      [ ("home", Json.Int home); ("attempts", Json.Int attempts) ]
  | Crash { pages_lost } | Failstop { pages_lost } ->
      [ ("pages_lost", Json.Int pages_lost) ]
  | Recover { homes; stall } ->
      [ ("homes", Json.Int homes); ("stall", Json.Int stall) ]
  | Failover { victim; pages; homes } ->
      [ ("victim", Json.Int victim); ("pages", Json.Int pages);
        ("homes", Json.Int homes) ]

(* One line per event: the JSONL schema (docs/OBSERVABILITY.md). *)
let event_json ev =
  let stamps =
    [ ("t", Json.Int ev.time); ("proc", Json.Int ev.proc);
      ("tid", Json.Int ev.tid); ("site", Json.Int ev.site);
      ("ev", Json.String (kind_name ev.kind)) ]
  in
  Json.Obj (stamps @ kind_args ev.kind)
