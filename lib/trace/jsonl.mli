(** JSONL exporter: one JSON object per line, in emission order (see
    docs/OBSERVABILITY.md for the schema).  Deterministic. *)

val to_string : Trace.event array -> string
val to_buffer : Buffer.t -> Trace.event array -> unit
val write : out_channel -> Trace.event array -> unit
