(** Structured event tracing for the Olden runtime.

    A single process-wide sink receives every event the engine, cache
    system, and coherence directories emit.  Tracing is zero-cost when
    disabled: emission sites are written

    {[ if Trace.is_on () then Trace.emit { ... } ]}

    so with no sink installed nothing is allocated — only one boolean is
    read.  Event streams are deterministic: the engine is a pure
    function of the program and configuration, and events are emitted in
    scheduling order. *)

type kind =
  | Migrate_send of { target : int }
      (** a computation migration leaves for [target] *)
  | Migrate_arrive of { source : int }
      (** the migrated thread restarts here *)
  | Return_send of { target : int }  (** a return stub fires *)
  | Return_arrive of { source : int }
  | Future_spawn of { fid : int }
  | Future_resolve of { fid : int; waiters : int }
  | Future_touch of { fid : int; parked : bool }
  | Steal  (** a continuation popped from the local work list *)
  | Cache_hit of { home : int; page : int; line : int }
  | Cache_miss of { home : int; page : int; line : int }
      (** a line fetch from [home] *)
  | Cache_flush of { entries : int }
      (** local scheme: wholesale invalidation *)
  | Suspect_all  (** bilateral scheme: acquire marks every page suspect *)
  | Revalidate of { home : int; page : int; dropped : int }
  | Inval_send of { target : int; page : int }
  | Inval_recv of { source : int; page : int; dropped : int }
  | Dir_write of { page : int; line : int }
      (** home directory stamps a written line (bilateral) *)
  | Dir_release of { page : int; ts : int }
      (** home directory timestamp bump at a release *)
  | Remote_alloc of { home : int; words : int }
  | Phase_mark of string
  | Fault_drop of { dst : int; attempt : int; outage : bool }
      (** delivery attempt [attempt] toward [dst] was lost *)
  | Fault_delay of { dst : int; cycles : int }
      (** a delivery arrived [cycles] late *)
  | Fault_dup of { dst : int }  (** a delivery arrived twice *)
  | Retry of { dst : int; attempt : int; wait : int }
      (** the sender waited [wait] cycles, then retransmitted *)
  | Migrate_fallback of { home : int; attempts : int }
      (** migration to [home] gave up after [attempts]; caching instead *)
  | Crash of { pages_lost : int }
      (** [proc] crashed, wiping [pages_lost] live cached page entries *)
  | Recover of { homes : int; stall : int }
      (** [proc] completed warm restart, announcing to [homes] homes and
          stalling for [stall] cycles *)
  | Failstop of { pages_lost : int }
      (** [proc] died for good, dropping [pages_lost] live cached pages *)
  | Failover of { victim : int; pages : int; homes : int }
      (** [proc] was promoted: [pages] home pages of [victim] re-homed
          here, [homes] live processors notified *)

type event = {
  time : int;  (** simulated cycles on [proc]'s clock *)
  proc : int;
  tid : int;  (** simulated thread id; -1 when no thread applies *)
  site : int;  (** dereference-site id; -1 when no site applies *)
  kind : kind;
}

val is_on : unit -> bool
(** Whether a sink is installed.  Emission sites must guard on this so
    the disabled path allocates nothing. *)

val install : (event -> unit) -> unit
val uninstall : unit -> unit

val emit : event -> unit
(** Deliver to the sink; a no-op when tracing is off. *)

(** {2 Emitter context}

    The cache and directory layers run beneath the engine and do not
    know the current thread or dereference site; the engine deposits
    them here (guarded, so this too is free when tracing is off). *)

val set_thread : int -> unit
val set_site : int -> unit
val thread : unit -> int
val site : unit -> int

(** {2 Collecting} *)

module Collector : sig
  type t

  val create : unit -> t
  val add : t -> event -> unit
  val length : t -> int
  val events : t -> event array
end

val collect : (unit -> 'a) -> 'a * event array
(** Run a thunk with a fresh collector installed; uninstalls afterwards
    (also on exception). *)

(** {2 Names and serialization} *)

val kind_name : kind -> string

val kind_args : kind -> (string * Json.t) list
(** Payload fields beyond the common stamps, in a fixed order. *)

val event_json : event -> Json.t
(** The JSONL schema: [{"t":..,"proc":..,"tid":..,"site":..,"ev":..,...}]. *)
