(** Derive a {!Metrics} registry from an event stream: per-kind,
    per-processor, and per-site counters, migration/return latency
    histograms, and cache-miss-burst histograms.

    [site_name] maps a dereference-site id to a human-readable name for
    the per-site labels (default: ids only).  [site_table] is the same
    thing as an association table — pass the runtime's site registry
    (e.g. [Site.labels ()], entries like ["t->left@treeadd"]) so the
    labels read [field@function] end-to-end; when both are given the
    table wins and [site_name] covers ids the table misses. *)

val of_events :
  ?site_table:(int * string) list ->
  ?site_name:(int -> string option) ->
  Trace.event array ->
  Metrics.t

val lookup : (int * string) list -> int -> string option
(** A site-name table as a lookup function (hashed once; shared by the
    profiler and trace summary). *)
