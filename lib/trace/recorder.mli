(** Derive a {!Metrics} registry from an event stream: per-kind,
    per-processor, and per-site counters, migration/return latency
    histograms, and cache-miss-burst histograms.

    [site_name] maps a dereference-site id to a human-readable name for
    the per-site labels (default: ids only). *)

val of_events :
  ?site_name:(int -> string option) -> Trace.event array -> Metrics.t
