(** Compact textual digest of an event stream (for [olden-run trace]):
    totals per kind, per-processor activity, phase marks, and the first
    [head] raw events. *)

val pp :
  ?site_name:(int -> string option) ->
  ?head:int ->
  Format.formatter ->
  Trace.event array ->
  unit
