(** The dependency DAG implied by an event stream.

    Every event waits on at most a handful of predecessors: the previous
    event of its thread (program order; for arrivals this is the matching
    send), the previous event on its processor (one compute thread per
    processor), and — when the thread's previous event was a parked
    future touch — the [Future_resolve] that released it.  The realized
    predecessor is the one with the latest timestamp: the dependency that
    actually determined when the event could happen.  Walking realized
    predecessors backwards from the last event yields the run's critical
    path (see [Olden_profile.Critical_path]). *)

type edge =
  | Start  (** no predecessor: the first event of the run *)
  | Program of int  (** previous event of the same thread *)
  | Processor of int  (** previous event on the same processor *)
  | Resolve of int  (** the [Future_resolve] that unparked this thread *)

val predecessor : edge -> int option
(** The predecessor's event index, if any. *)

type t = {
  events : Trace.event array;
  realized : edge array;  (** per event, the latest-finishing dependency *)
}

val build : Trace.event array -> t

val last : t -> int option
(** Index of the event with the greatest timestamp (ties resolved toward
    the latest emission, matching scheduler order); [None] on an empty
    stream. *)

val chain : t -> int list
(** Realized-predecessor chain from the first event to {!last}, in time
    order — the critical path as event indices.  Empty for an empty
    stream. *)
