(** Chrome [trace_event] exporter (Perfetto / chrome://tracing).

    One process, one track per simulated processor; runtime events
    become thread-scoped instants, and migrations / return stubs also
    emit flow arrows between tracks.  1 simulated cycle is reported as
    1 us.  Output is deterministic. *)

val to_json : nprocs:int -> Trace.event array -> Json.t
val to_string : nprocs:int -> Trace.event array -> string
val write : out_channel -> nprocs:int -> Trace.event array -> unit
