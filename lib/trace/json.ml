(* A minimal JSON tree, printer, and parser.

   The container has no JSON library, and the exporters need deterministic
   byte-for-byte output (the golden trace test and the "run twice, get
   identical files" guarantee depend on it), so we own the printing:
   objects keep their construction order, floats print through one
   format string, and strings escape exactly the mandatory characters.
   The parser exists so tests can check that exported artifacts are
   well-formed without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to b s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

(* %.12g round-trips every float the simulator produces (ratios and
   fractions of 63-bit counters) and never prints OCaml's non-JSON
   "nan"/"inf" spellings for finite input. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.12g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      escape_to b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape_to b k;
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string j =
  let b = Buffer.create 256 in
  to_buffer b j;
  Buffer.contents b

(* Pretty printer: two-space indentation, used for the metrics snapshots
   people read by hand (traces stay compact). *)
let rec pretty_to_buffer b ~indent j =
  let pad n = Buffer.add_string b (String.make n ' ') in
  match j with
  | List (_ :: _ as items) ->
      Buffer.add_string b "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          pretty_to_buffer b ~indent:(indent + 2) item)
        items;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b ']'
  | Obj (_ :: _ as fields) ->
      Buffer.add_string b "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ",\n";
          pad (indent + 2);
          Buffer.add_char b '"';
          escape_to b k;
          Buffer.add_string b "\": ";
          pretty_to_buffer b ~indent:(indent + 2) v)
        fields;
      Buffer.add_char b '\n';
      pad indent;
      Buffer.add_char b '}'
  | other -> to_buffer b other

let to_pretty_string j =
  let b = Buffer.create 1024 in
  pretty_to_buffer b ~indent:0 j;
  Buffer.add_char b '\n';
  Buffer.contents b

(* --- Parsing ----------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error cur msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let skip_ws cur =
  while
    cur.pos < String.length cur.src
    && (match cur.src.[cur.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    cur.pos <- cur.pos + 1
  done

let expect cur ch =
  match peek cur with
  | Some c when c = ch -> cur.pos <- cur.pos + 1
  | _ -> error cur (Printf.sprintf "expected '%c'" ch)

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else error cur ("expected " ^ word)

let parse_string_body cur =
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> error cur "unterminated string"
    | Some '"' -> cur.pos <- cur.pos + 1
    | Some '\\' -> (
        cur.pos <- cur.pos + 1;
        match peek cur with
        | Some '"' -> Buffer.add_char b '"'; cur.pos <- cur.pos + 1; go ()
        | Some '\\' -> Buffer.add_char b '\\'; cur.pos <- cur.pos + 1; go ()
        | Some '/' -> Buffer.add_char b '/'; cur.pos <- cur.pos + 1; go ()
        | Some 'n' -> Buffer.add_char b '\n'; cur.pos <- cur.pos + 1; go ()
        | Some 'r' -> Buffer.add_char b '\r'; cur.pos <- cur.pos + 1; go ()
        | Some 't' -> Buffer.add_char b '\t'; cur.pos <- cur.pos + 1; go ()
        | Some 'b' -> Buffer.add_char b '\b'; cur.pos <- cur.pos + 1; go ()
        | Some 'f' -> Buffer.add_char b '\012'; cur.pos <- cur.pos + 1; go ()
        | Some 'u' ->
            if cur.pos + 5 > String.length cur.src then
              error cur "truncated \\u escape";
            let hex = String.sub cur.src (cur.pos + 1) 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> error cur "bad \\u escape"
            in
            (* traces only ever escape control characters, so plain
               one-byte decoding is enough *)
            if code < 0x80 then Buffer.add_char b (Char.chr code)
            else Buffer.add_string b (Printf.sprintf "\\u%04x" code);
            cur.pos <- cur.pos + 5;
            go ()
        | _ -> error cur "bad escape")
    | Some c ->
        Buffer.add_char b c;
        cur.pos <- cur.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number cur =
  let start = cur.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    cur.pos < String.length cur.src && is_num_char cur.src.[cur.pos]
  do
    cur.pos <- cur.pos + 1
  done;
  let s = String.sub cur.src start (cur.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error cur ("bad number " ^ s))

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> error cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' ->
      cur.pos <- cur.pos + 1;
      String (parse_string_body cur)
  | Some '[' ->
      cur.pos <- cur.pos + 1;
      skip_ws cur;
      if peek cur = Some ']' then begin
        cur.pos <- cur.pos + 1;
        List []
      end
      else begin
        let items = ref [ parse_value cur ] in
        skip_ws cur;
        while peek cur = Some ',' do
          cur.pos <- cur.pos + 1;
          items := parse_value cur :: !items;
          skip_ws cur
        done;
        expect cur ']';
        List (List.rev !items)
      end
  | Some '{' ->
      cur.pos <- cur.pos + 1;
      skip_ws cur;
      if peek cur = Some '}' then begin
        cur.pos <- cur.pos + 1;
        Obj []
      end
      else begin
        let field () =
          skip_ws cur;
          expect cur '"';
          let k = parse_string_body cur in
          skip_ws cur;
          expect cur ':';
          let v = parse_value cur in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws cur;
        while peek cur = Some ',' do
          cur.pos <- cur.pos + 1;
          fields := field () :: !fields;
          skip_ws cur
        done;
        expect cur '}';
        Obj (List.rev !fields)
      end
  | Some _ -> parse_number cur

let of_string s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then error cur "trailing garbage";
  v

(* --- Accessors used by tests ------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function List items -> items | _ -> []

let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None

(* --- CSV field quoting -------------------------------------------------- *)

(* RFC 4180: a field containing a comma, quote, CR, or LF is wrapped in
   double quotes with embedded quotes doubled; anything else passes
   through unchanged (so numeric columns stay bare). *)
let csv_field s =
  let needs_quoting =
    String.exists (function '"' | ',' | '\n' | '\r' -> true | _ -> false) s
  in
  if not needs_quoting then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
