(** A minimal JSON tree, printer, and parser — deterministic output so
    exported traces and metrics snapshots are byte-stable across runs.
    Objects print their fields in construction order. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line rendering. *)

val to_buffer : Buffer.t -> t -> unit

val to_pretty_string : t -> string
(** Two-space-indented rendering with a trailing newline (for metrics
    snapshots). *)

exception Parse_error of string

val of_string : string -> t
(** @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** Field lookup on an object; [None] elsewhere. *)

val to_list : t -> t list
(** The elements of a [List]; [[]] for any other constructor. *)

val string_value : t -> string option
val int_value : t -> int option

val csv_field : string -> string
(** RFC 4180 quoting for one CSV field: wrapped in double quotes (with
    embedded quotes doubled) when it contains a comma, quote, or
    newline; returned unchanged otherwise. *)
