(* Build the dependency DAG an event stream implies.

   One forward pass maintains, per thread, the index of its previous
   event; per processor, the index of the previous event there; and per
   future id, the index of its resolve.  Each event's realized
   predecessor is whichever candidate finished last (ties go to the
   candidate emitted latest, which matches the scheduler's tie-breaking
   on sequence numbers — later emission means a later or equal effect). *)

type edge =
  | Start
  | Program of int
  | Processor of int
  | Resolve of int

let predecessor = function
  | Start -> None
  | Program i | Processor i | Resolve i -> Some i

type t = {
  events : Trace.event array;
  realized : edge array;
}

let build events =
  let n = Array.length events in
  let realized = Array.make n Start in
  let last_of_tid : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let last_of_proc : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let resolve_of_fid : (int, int) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    let ev = events.(i) in
    let candidates = ref [] in
    (match Hashtbl.find_opt last_of_proc ev.Trace.proc with
    | Some j -> candidates := Processor j :: !candidates
    | None -> ());
    (match Hashtbl.find_opt last_of_tid ev.Trace.tid with
    | Some j ->
        candidates := Program j :: !candidates;
        (* a thread resuming after a parked touch additionally waited for
           the future's resolve *)
        (match events.(j).Trace.kind with
        | Trace.Future_touch { fid; parked = true } -> (
            match Hashtbl.find_opt resolve_of_fid fid with
            | Some r -> candidates := Resolve r :: !candidates
            | None -> ())
        | _ -> ())
    | None -> ());
    (* the latest-finishing dependency wins; ties prefer the latest
       emission (larger index) for determinism *)
    let best =
      List.fold_left
        (fun best edge ->
          match predecessor edge with
          | None -> best
          | Some j -> (
              let key = (events.(j).Trace.time, j) in
              match best with
              | None -> Some (key, edge)
              | Some (bkey, _) when key > bkey -> Some (key, edge)
              | Some _ -> best))
        None !candidates
    in
    (match best with Some (_, edge) -> realized.(i) <- edge | None -> ());
    Hashtbl.replace last_of_tid ev.Trace.tid i;
    Hashtbl.replace last_of_proc ev.Trace.proc i;
    match ev.Trace.kind with
    | Trace.Future_resolve { fid; _ } -> Hashtbl.replace resolve_of_fid fid i
    | _ -> ()
  done;
  { events; realized }

let last t =
  let n = Array.length t.events in
  if n = 0 then None
  else begin
    let best = ref 0 in
    for i = 1 to n - 1 do
      (* >= : ties resolve toward the latest emission *)
      if t.events.(i).Trace.time >= t.events.(!best).Trace.time then best := i
    done;
    Some !best
  end

let chain t =
  match last t with
  | None -> []
  | Some stop ->
      let rec walk i acc =
        let acc = i :: acc in
        match predecessor t.realized.(i) with
        | Some j -> walk j acc
        | None -> acc
      in
      walk stop []
