(* Compact textual digest of an event stream, for `olden-run trace`:
   totals per event kind, a per-processor activity table, the phase
   marks, and optionally the first few raw events. *)

let kind_order ev = Trace.kind_name ev

let pp ?(site_name = fun (_ : int) -> None) ?(head = 0) ppf events =
  let n = Array.length events in
  Format.fprintf ppf "%d events@." n;
  if n > 0 then begin
    let first = events.(0) and last = events.(n - 1) in
    Format.fprintf ppf "time span: %d .. %d cycles@." first.Trace.time
      last.Trace.time;
    (* totals per kind *)
    let kinds : (string, int ref) Hashtbl.t = Hashtbl.create 16 in
    let nprocs = ref 0 in
    Array.iter
      (fun (ev : Trace.event) ->
        nprocs := max !nprocs (ev.Trace.proc + 1);
        let k = kind_order ev.Trace.kind in
        match Hashtbl.find_opt kinds k with
        | Some r -> incr r
        | None -> Hashtbl.add kinds k (ref 1))
      events;
    let sorted =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) kinds []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    Format.fprintf ppf "by kind:@.";
    List.iter
      (fun (k, c) -> Format.fprintf ppf "  %-16s %9d@." k c)
      sorted;
    (* per-processor row: total events and the dominant kind there *)
    Format.fprintf ppf "by processor:@.";
    for p = 0 to !nprocs - 1 do
      let mine : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
      let total = ref 0 in
      Array.iter
        (fun (ev : Trace.event) ->
          if ev.Trace.proc = p then begin
            incr total;
            let k = kind_order ev.Trace.kind in
            match Hashtbl.find_opt mine k with
            | Some r -> incr r
            | None -> Hashtbl.add mine k (ref 1)
          end)
        events;
      let top =
        Hashtbl.fold (fun k r acc -> (k, !r) :: acc) mine []
        |> List.sort (fun (ka, a) (kb, b) ->
               match compare b a with 0 -> compare ka kb | c -> c)
      in
      match top with
      | [] -> Format.fprintf ppf "  p%-3d %9d events@." p 0
      | (k, c) :: _ ->
          Format.fprintf ppf "  p%-3d %9d events (mostly %s: %d)@." p !total
            k c
    done;
    (* phase marks *)
    let phases =
      Array.to_list events
      |> List.filter_map (fun (ev : Trace.event) ->
             match ev.Trace.kind with
             | Trace.Phase_mark name -> Some (name, ev.Trace.time)
             | _ -> None)
    in
    if phases <> [] then begin
      Format.fprintf ppf "phases:@.";
      List.iter
        (fun (name, at) -> Format.fprintf ppf "  %-16s t=%d@." name at)
        phases
    end;
    if head > 0 then begin
      Format.fprintf ppf "first %d events:@." (min head n);
      Array.iteri
        (fun i ev ->
          if i < head then begin
            let site =
              if ev.Trace.site < 0 then ""
              else
                match site_name ev.Trace.site with
                | Some s -> " site=" ^ s
                | None -> Printf.sprintf " site=%d" ev.Trace.site
            in
            Format.fprintf ppf "  [t=%8d p=%2d tid=%d]%s %s@." ev.Trace.time
              ev.Trace.proc ev.Trace.tid site
              (Json.to_string (Json.Obj (Trace.kind_args ev.Trace.kind))
              |> fun args ->
              Trace.kind_name ev.Trace.kind
              ^ if args = "{}" then "" else " " ^ args)
          end)
        events
    end
  end
