(* Derive a metrics registry from an event stream.

   This is where the per-mechanism breakdowns the flat [Stats] record
   cannot express come from:

   - "events"            — one counter per event kind (labels: kind);
   - "events_by_proc"    — the same, split per processor;
   - "events_by_site"    — cache/migration traffic split per
                           dereference site (labels: site id, and the
                           site's name when a resolver is given);
   - "migration_latency_cycles" / "return_latency_cycles" — histograms
     of send-to-arrival time, pairing each send with the same thread's
     next arrival;
   - "miss_burst"        — histogram of runs of consecutive cache
     misses on one processor uninterrupted by a hit there: long bursts
     are cold caches or invalidation storms, the signature the
     migrate-vs-cache trade-off turns on. *)

(* A site-name table (e.g. [Site.labels ()], sourced from the runtime's
   site registry) as a lookup function.  Tables are tiny — tens of sites —
   but lookups run per event, so build a hashtable once. *)
let lookup table =
  let h = Hashtbl.create (List.length table) in
  List.iter (fun (sid, name) -> Hashtbl.replace h sid name) table;
  fun sid -> Hashtbl.find_opt h sid

let of_events ?site_table ?(site_name = fun (_ : int) -> None) events =
  let site_name =
    match site_table with
    | None -> site_name
    | Some table ->
        let find = lookup table in
        fun sid ->
          (match find sid with Some _ as r -> r | None -> site_name sid)
  in
  let m = Metrics.create () in
  let migration_latency = Metrics.histogram m "migration_latency_cycles" in
  let return_latency = Metrics.histogram m "return_latency_cycles" in
  let pending_sends : (int, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let send_queue tid =
    match Hashtbl.find_opt pending_sends tid with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add pending_sends tid q;
        q
  in
  let bursts : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let burst proc =
    match Hashtbl.find_opt bursts proc with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add bursts proc r;
        r
  in
  let miss_burst = Metrics.histogram m "miss_burst" in
  let end_burst r =
    if !r > 0 then begin
      Metrics.observe miss_burst !r;
      r := 0
    end
  in
  let site_labels site =
    let id = [ ("site", string_of_int site) ] in
    match site_name site with
    | Some name -> ("site_name", name) :: id
    | None -> id
  in
  Array.iter
    (fun (ev : Trace.event) ->
      let kind = Trace.kind_name ev.Trace.kind in
      Metrics.inc (Metrics.counter m ~labels:[ ("kind", kind) ] "events");
      Metrics.inc
        (Metrics.counter m
           ~labels:
             [ ("kind", kind); ("proc", string_of_int ev.Trace.proc) ]
           "events_by_proc");
      if ev.Trace.site >= 0 then
        Metrics.inc
          (Metrics.counter m
             ~labels:(("kind", kind) :: site_labels ev.Trace.site)
             "events_by_site");
      (match ev.Trace.kind with
      | Trace.Migrate_send _ | Trace.Return_send _ ->
          Queue.push ev.Trace.time (send_queue ev.Trace.tid)
      | Trace.Migrate_arrive _ -> (
          match Queue.take_opt (send_queue ev.Trace.tid) with
          | Some sent -> Metrics.observe migration_latency (ev.Trace.time - sent)
          | None -> ())
      | Trace.Return_arrive _ -> (
          match Queue.take_opt (send_queue ev.Trace.tid) with
          | Some sent -> Metrics.observe return_latency (ev.Trace.time - sent)
          | None -> ())
      | _ -> ());
      match ev.Trace.kind with
      | Trace.Cache_miss _ -> incr (burst ev.Trace.proc)
      | Trace.Cache_hit _ -> end_burst (burst ev.Trace.proc)
      | _ -> ())
    events;
  (* close the bursts still open at end of run, lowest proc first so the
     snapshot stays deterministic *)
  Hashtbl.fold (fun proc r acc -> (proc, r) :: acc) bursts []
  |> List.sort compare
  |> List.iter (fun (_, r) -> end_burst r);
  m
