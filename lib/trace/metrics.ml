(* A registry of named counters and histograms.

   This generalizes the flat [Stats] record: metrics are created on
   demand, carry label sets (e.g. [("proc", "3")] or [("site",
   "treeadd.t->left")]), and snapshot to a stable JSON schema — entries
   sorted by name then labels, so two identical runs serialize to
   identical bytes.

   Histograms use power-of-two buckets: observation [v] lands in bucket
   [ceil(log2 (v + 1))], i.e. bucket upper bounds 0, 1, 3, 7, 15, ... —
   cheap, and wide enough for cycle-scale latencies. *)

type labels = (string * string) list

type counter = { mutable count : int }

let buckets_count = 48 (* covers every value an OCaml int can hold *)

type histogram = {
  mutable observations : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array; (* buckets.(i): observations <= 2^i - 1 *)
}

type metric =
  | Counter of counter
  | Histogram of histogram

type t = { table : (string * labels, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let normalize labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let counter t ?(labels = []) name =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
      let c = { count = 0 } in
      Hashtbl.add t.table key (Counter c);
      c

let add c n = c.count <- c.count + n
let inc c = add c 1
let count c = c.count

let histogram t ?(labels = []) name =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
  | None ->
      let h =
        {
          observations = 0;
          sum = 0;
          min_v = max_int;
          max_v = min_int;
          buckets = Array.make buckets_count 0;
        }
      in
      Hashtbl.add t.table key (Histogram h);
      h

let bucket_of v =
  let v = max 0 v in
  let rec go i bound =
    if v <= bound || i = buckets_count - 1 then i
    else go (i + 1) ((2 * bound) + 1)
  in
  go 0 0

let observe h v =
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let observations h = h.observations
let sum h = h.sum
let min_value h = if h.observations = 0 then 0 else h.min_v
let max_value h = if h.observations = 0 then 0 else h.max_v

let mean h =
  if h.observations = 0 then 0.
  else float_of_int h.sum /. float_of_int h.observations

(* Populated buckets in increasing bound order, as (upper bound, count). *)
let iter_buckets h f =
  let bound = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then f ~le:!bound ~n;
      if i < buckets_count - 1 then bound := (2 * !bound) + 1)
    h.buckets

(* Exact-rank quantile over the log-bucketed data: the smallest bucket
   upper bound covering at least [ceil (q * count)] observations, clamped
   to the observed maximum.  The rank is exact; the returned value is an
   upper bound on the true quantile tight to the bucket resolution (a
   factor of two), and exact when the histogram holds one distinct value.
   Empty histogram: 0. *)
let quantile h q =
  if h.observations = 0 then 0
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.observations)) in
      if r < 1 then 1 else if r > h.observations then h.observations else r
    in
    let result = ref 0 in
    let cum = ref 0 in
    (try
       iter_buckets h (fun ~le ~n ->
           cum := !cum + n;
           if !cum >= rank then begin
             result := le;
             raise Exit
           end)
     with Exit -> ());
    if !result > h.max_v then h.max_v else !result
  end

(* --- Snapshots --------------------------------------------------------- *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let histogram_json h =
  (* only the populated prefix of the bucket array, as (upper bound,
     count) pairs with empty buckets skipped *)
  let cells = ref [] in
  let bound = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then cells := (!bound, n) :: !cells;
      if i < buckets_count - 1 then bound := (2 * !bound) + 1)
    h.buckets;
  let mean =
    if h.observations = 0 then 0.
    else float_of_int h.sum /. float_of_int h.observations
  in
  Json.Obj
    [
      ("count", Json.Int h.observations);
      ("sum", Json.Int h.sum);
      ("min", Json.Int (if h.observations = 0 then 0 else h.min_v));
      ("max", Json.Int (if h.observations = 0 then 0 else h.max_v));
      ("mean", Json.Float mean);
      ( "buckets",
        Json.List
          (List.rev_map
             (fun (le, n) ->
               Json.Obj [ ("le", Json.Int le); ("n", Json.Int n) ])
             !cells) );
    ]

let sorted_entries t =
  Hashtbl.fold (fun key metric acc -> (key, metric) :: acc) t.table []
  |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)

let render_common (name, labels) =
  let common = [ ("name", Json.String name) ] in
  if labels = [] then common else common @ [ ("labels", labels_json labels) ]

let to_json t =
  let render (key, metric) =
    let common = render_common key in
    match metric with
    | Counter c -> Json.Obj (common @ [ ("value", Json.Int c.count) ])
    | Histogram h -> Json.Obj (common @ [ ("histogram", histogram_json h) ])
  in
  Json.List (List.map render (sorted_entries t))

(* --- Windowed deltas --------------------------------------------------- *)

type snapshot = (string * labels, metric) Hashtbl.t

let copy_metric = function
  | Counter c -> Counter { count = c.count }
  | Histogram h -> Histogram { h with buckets = Array.copy h.buckets }

let snapshot t =
  let s = Hashtbl.create (max 16 (Hashtbl.length t.table)) in
  Hashtbl.iter (fun key metric -> Hashtbl.replace s key (copy_metric metric)) t.table;
  s

let zero_histogram =
  {
    observations = 0;
    sum = 0;
    min_v = max_int;
    max_v = min_int;
    buckets = Array.make buckets_count 0;
  }

let delta_json t ~since =
  let render (key, metric) =
    match metric with
    | Counter c ->
        let before =
          match Hashtbl.find_opt since key with
          | Some (Counter o) -> o.count
          | _ -> 0
        in
        let d = c.count - before in
        if d = 0 then None
        else Some (Json.Obj (render_common key @ [ ("value", Json.Int d) ]))
    | Histogram h ->
        let before =
          match Hashtbl.find_opt since key with
          | Some (Histogram o) -> o
          | _ -> zero_histogram
        in
        let dcount = h.observations - before.observations in
        if dcount = 0 then None
        else begin
          let cells = ref [] in
          let bound = ref 0 in
          Array.iteri
            (fun i n ->
              let grew = n - before.buckets.(i) in
              if grew > 0 then cells := (!bound, grew) :: !cells;
              if i < buckets_count - 1 then bound := (2 * !bound) + 1)
            h.buckets;
          let hist =
            Json.Obj
              [
                ("count", Json.Int dcount);
                ("sum", Json.Int (h.sum - before.sum));
                ( "buckets",
                  Json.List
                    (List.rev_map
                       (fun (le, n) ->
                         Json.Obj [ ("le", Json.Int le); ("n", Json.Int n) ])
                       !cells) );
              ]
          in
          Some (Json.Obj (render_common key @ [ ("histogram", hist) ]))
        end
  in
  Json.List (List.filter_map render (sorted_entries t))
