(* A registry of named counters and histograms.

   This generalizes the flat [Stats] record: metrics are created on
   demand, carry label sets (e.g. [("proc", "3")] or [("site",
   "treeadd.t->left")]), and snapshot to a stable JSON schema — entries
   sorted by name then labels, so two identical runs serialize to
   identical bytes.

   Histograms use power-of-two buckets: observation [v] lands in bucket
   [ceil(log2 (v + 1))], i.e. bucket upper bounds 0, 1, 3, 7, 15, ... —
   cheap, and wide enough for cycle-scale latencies. *)

type labels = (string * string) list

type counter = { mutable count : int }

let buckets_count = 48 (* covers every value an OCaml int can hold *)

type histogram = {
  mutable observations : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
  buckets : int array; (* buckets.(i): observations <= 2^i - 1 *)
}

type metric =
  | Counter of counter
  | Histogram of histogram

type t = { table : (string * labels, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let normalize labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let counter t ?(labels = []) name =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | Some (Counter c) -> c
  | Some (Histogram _) ->
      invalid_arg ("Metrics.counter: " ^ name ^ " is a histogram")
  | None ->
      let c = { count = 0 } in
      Hashtbl.add t.table key (Counter c);
      c

let add c n = c.count <- c.count + n
let inc c = add c 1
let count c = c.count

let histogram t ?(labels = []) name =
  let key = (name, normalize labels) in
  match Hashtbl.find_opt t.table key with
  | Some (Histogram h) -> h
  | Some (Counter _) ->
      invalid_arg ("Metrics.histogram: " ^ name ^ " is a counter")
  | None ->
      let h =
        {
          observations = 0;
          sum = 0;
          min_v = max_int;
          max_v = min_int;
          buckets = Array.make buckets_count 0;
        }
      in
      Hashtbl.add t.table key (Histogram h);
      h

let bucket_of v =
  let v = max 0 v in
  let rec go i bound =
    if v <= bound || i = buckets_count - 1 then i
    else go (i + 1) ((2 * bound) + 1)
  in
  go 0 0

let observe h v =
  h.observations <- h.observations + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let b = bucket_of v in
  h.buckets.(b) <- h.buckets.(b) + 1

let observations h = h.observations

(* --- Snapshots --------------------------------------------------------- *)

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let histogram_json h =
  (* only the populated prefix of the bucket array, as (upper bound,
     count) pairs with empty buckets skipped *)
  let cells = ref [] in
  let bound = ref 0 in
  Array.iteri
    (fun i n ->
      if n > 0 then cells := (!bound, n) :: !cells;
      if i < buckets_count - 1 then bound := (2 * !bound) + 1)
    h.buckets;
  let mean =
    if h.observations = 0 then 0.
    else float_of_int h.sum /. float_of_int h.observations
  in
  Json.Obj
    [
      ("count", Json.Int h.observations);
      ("sum", Json.Int h.sum);
      ("min", Json.Int (if h.observations = 0 then 0 else h.min_v));
      ("max", Json.Int (if h.observations = 0 then 0 else h.max_v));
      ("mean", Json.Float mean);
      ( "buckets",
        Json.List
          (List.rev_map
             (fun (le, n) ->
               Json.Obj [ ("le", Json.Int le); ("n", Json.Int n) ])
             !cells) );
    ]

let to_json t =
  let entries =
    Hashtbl.fold (fun key metric acc -> (key, metric) :: acc) t.table []
    |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
  in
  let render ((name, labels), metric) =
    let common = [ ("name", Json.String name) ] in
    let common =
      if labels = [] then common
      else common @ [ ("labels", labels_json labels) ]
    in
    match metric with
    | Counter c -> Json.Obj (common @ [ ("value", Json.Int c.count) ])
    | Histogram h -> Json.Obj (common @ [ ("histogram", histogram_json h) ])
  in
  Json.List (List.map render entries)
