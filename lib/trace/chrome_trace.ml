(* Chrome trace_event exporter.

   Produces the JSON object format understood by Perfetto and
   chrome://tracing: one process ("olden simulation"), one track per
   simulated processor (pid 0, tid = processor number).  Every runtime
   event becomes a thread-scoped instant event whose args carry the
   simulated thread id, dereference-site id, and the kind's payload;
   migrations and return stubs additionally emit flow arrows (ph "s"/"f")
   so the thread's hop from processor to processor is drawn across
   tracks.  Simulated cycles are reported as microseconds — absolute
   units are meaningless for a simulator, and 1 cycle = 1 us keeps the
   timeline readable. *)

let metadata ~nprocs =
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  meta "process_name" 0 [ ("name", Json.String "olden simulation") ]
  :: List.concat
       (List.init nprocs (fun p ->
            [
              meta "thread_name" p
                [ ("name", Json.String (Printf.sprintf "proc %d" p)) ];
              meta "thread_sort_index" p [ ("sort_index", Json.Int p) ];
            ]))

let instant (ev : Trace.event) =
  let args =
    ("tid", Json.Int ev.Trace.tid)
    :: ("site", Json.Int ev.Trace.site)
    :: Trace.kind_args ev.Trace.kind
  in
  Json.Obj
    [
      ("name", Json.String (Trace.kind_name ev.Trace.kind));
      ("ph", Json.String "i");
      ("s", Json.String "t");
      ("ts", Json.Int ev.Trace.time);
      ("pid", Json.Int 0);
      ("tid", Json.Int ev.Trace.proc);
      ("args", Json.Obj args);
    ]

let flow ~phase ~name ~id (ev : Trace.event) =
  let fields =
    [
      ("name", Json.String name);
      ("cat", Json.String "flow");
      ("ph", Json.String phase);
      ("id", Json.Int id);
      ("ts", Json.Int ev.Trace.time);
      ("pid", Json.Int 0);
      ("tid", Json.Int ev.Trace.proc);
    ]
  in
  (* binding point "enclosing slice" lets the arrow land on the instant *)
  if phase = "f" then Json.Obj (fields @ [ ("bp", Json.String "e") ])
  else Json.Obj fields

(* Pair each send with the next arrival of the same simulated thread
   (per-thread FIFO: a thread is one-shot, its hops are ordered). *)
let flows events =
  let next_id = ref 0 in
  let pending : (int, int Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let queue_for tid =
    match Hashtbl.find_opt pending tid with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add pending tid q;
        q
  in
  let out = ref [] in
  Array.iter
    (fun (ev : Trace.event) ->
      match ev.Trace.kind with
      | Trace.Migrate_send _ | Trace.Return_send _ ->
          incr next_id;
          Queue.push !next_id (queue_for ev.Trace.tid);
          let name =
            match ev.Trace.kind with
            | Trace.Migrate_send _ -> "migration"
            | _ -> "return"
          in
          out := flow ~phase:"s" ~name ~id:!next_id ev :: !out
      | Trace.Migrate_arrive _ | Trace.Return_arrive _ -> (
          let q = queue_for ev.Trace.tid in
          match Queue.take_opt q with
          | None -> ()
          | Some id ->
              let name =
                match ev.Trace.kind with
                | Trace.Migrate_arrive _ -> "migration"
                | _ -> "return"
              in
              out := flow ~phase:"f" ~name ~id ev :: !out)
      | _ -> ())
    events;
  List.rev !out

let to_json ~nprocs events =
  let instants = Array.to_list (Array.map instant events) in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata ~nprocs @ instants @ flows events));
      ("displayTimeUnit", Json.String "ms");
      ( "otherData",
        Json.Obj
          [
            ("schema", Json.String "olden-trace/v1");
            ("time_unit", Json.String "simulated cycles (shown as us)");
          ] );
    ]

let write oc ~nprocs events =
  let b = Buffer.create 65536 in
  Json.to_buffer b (to_json ~nprocs events);
  Buffer.add_char b '\n';
  Buffer.output_buffer oc b

let to_string ~nprocs events =
  Json.to_string (to_json ~nprocs events) ^ "\n"
