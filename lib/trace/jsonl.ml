(* JSONL exporter: one event object per line, for jq/python scripting.
   Line i is [Trace.event_json] of event i, in emission order — the
   format the golden trace test pins down. *)

let to_buffer b events =
  Array.iter
    (fun ev ->
      Json.to_buffer b (Trace.event_json ev);
      Buffer.add_char b '\n')
    events

let to_string events =
  let b = Buffer.create 4096 in
  to_buffer b events;
  Buffer.contents b

let write oc events = output_string oc (to_string events)
