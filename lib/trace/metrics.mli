(** A registry of named counters and histograms with label sets — the
    generalization of the flat {!Stats} record.  Snapshots serialize to
    a stable JSON schema: entries sorted by name then labels, so
    identical runs produce identical bytes
    (see docs/OBSERVABILITY.md). *)

type t

type labels = (string * string) list

type counter
type histogram

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Find or create.  @raise Invalid_argument if the name+labels is
    already a histogram. *)

val inc : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val histogram : t -> ?labels:labels -> string -> histogram
(** Find or create a power-of-two-bucket histogram (bucket upper bounds
    0, 1, 3, 7, 15, ...). *)

val observe : histogram -> int -> unit
val observations : histogram -> int

val sum : histogram -> int
val min_value : histogram -> int
(** 0 when empty. *)

val max_value : histogram -> int
(** 0 when empty. *)

val mean : histogram -> float
(** 0. when empty. *)

val iter_buckets : histogram -> (le:int -> n:int -> unit) -> unit
(** Iterate the populated buckets in increasing bound order; [le] is the
    bucket's inclusive upper bound (0, 1, 3, 7, ...), [n] its count.
    Empty buckets are skipped. *)

val quantile : histogram -> float -> int
(** [quantile h q] is the smallest bucket upper bound covering at least
    [ceil (q *. count)] observations (rank clamped to [1, count]),
    itself clamped to the observed maximum — an exact-rank quantile at
    bucket resolution, i.e. an upper bound on the true quantile tight to
    a factor of two (exact when the histogram holds one distinct value).
    [q] is clamped to [0, 1].  Returns 0 on an empty histogram. *)

val to_json : t -> Json.t
(** [[{"name":..,"labels":{..},"value":..} | {"name":..,"labels":{..},
    "histogram":{"count","sum","min","max","mean","buckets":[{"le","n"}]}}]],
    sorted by name then labels. *)

(** {2 Windowed deltas}

    The monitor layer samples a registry at interval boundaries and
    reports per-window activity.  A {!snapshot} is a deep copy of the
    registry's current values; {!delta_json} renders only what changed
    since it was taken, in the same sorted, byte-stable shape as
    {!to_json}. *)

type snapshot

val snapshot : t -> snapshot

val delta_json : t -> since:snapshot -> Json.t
(** Entries whose value changed since [since], sorted by name then
    labels.  Counters render the increment; histograms render the
    per-window count/sum and only the buckets that grew.  Metrics
    created after [since] count from zero. *)
