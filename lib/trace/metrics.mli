(** A registry of named counters and histograms with label sets — the
    generalization of the flat {!Stats} record.  Snapshots serialize to
    a stable JSON schema: entries sorted by name then labels, so
    identical runs produce identical bytes
    (see docs/OBSERVABILITY.md). *)

type t

type labels = (string * string) list

type counter
type histogram

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Find or create.  @raise Invalid_argument if the name+labels is
    already a histogram. *)

val inc : counter -> unit
val add : counter -> int -> unit
val count : counter -> int

val histogram : t -> ?labels:labels -> string -> histogram
(** Find or create a power-of-two-bucket histogram (bucket upper bounds
    0, 1, 3, 7, 15, ...). *)

val observe : histogram -> int -> unit
val observations : histogram -> int

val to_json : t -> Json.t
(** [[{"name":..,"labels":{..},"value":..} | {"name":..,"labels":{..},
    "histogram":{"count","sum","min","max","mean","buckets":[{"le","n"}]}}]],
    sorted by name then labels. *)
