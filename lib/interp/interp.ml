(* Interpreter for mini-Olden programs on the simulated machine.

   This is the end-to-end path of the paper's system: the heuristic
   analyzes the source and assigns a mechanism to every dereference site;
   the interpreter then executes the program against the Olden runtime,
   with each dereference going through the site the compiler created for
   it.  Per-operation work costs stand in for the instructions lcc would
   have emitted. *)

open Olden_compiler
module Ops = Olden_runtime.Ops
module Site = Olden_runtime.Site
module Engine = Olden_runtime.Engine

exception Runtime_error of string

(* Language values: runtime values plus first-class futures. *)
type rvalue =
  | V of Value.t
  | F of Olden_runtime.Effects.fut

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let as_value = function
  | V v -> v
  | F _ -> err "future used where a value was expected (missing touch?)"

let as_int r =
  match as_value r with
  | Value.Int i -> i
  | Value.Nil -> 0
  | v -> err "expected int, got %s" (Value.to_string v)

let as_float r =
  match as_value r with
  | Value.Float f -> f
  | Value.Int i -> float_of_int i
  | v -> err "expected float, got %s" (Value.to_string v)

let as_ptr r =
  match as_value r with
  | Value.Ptr p -> p
  | Value.Nil -> Gptr.null
  | v -> err "expected pointer, got %s" (Value.to_string v)

let truthy r =
  match as_value r with
  | Value.Int 0 | Value.Nil -> false
  | Value.Ptr p -> not (Gptr.is_null p)
  | Value.Int _ | Value.Float _ -> true

(* A compiled program: parsed, type-checked, analyzed, with one runtime
   site per dereference. *)
type compiled = {
  prog : Ast.program;
  selection : Heuristic.t;
  tc : Typecheck.info;
  sites : (int, Site.t * int) Hashtbl.t; (* deref id -> site, field offset *)
}

let compile ?selection (prog : Ast.program) : compiled =
  let tc = Typecheck.check prog in
  let selection =
    match selection with Some s -> s | None -> Heuristic.of_program prog
  in
  let sites = Hashtbl.create 64 in
  List.iter
    (fun (d : Analysis.deref_info) ->
      let id = d.Analysis.deref_id in
      match Typecheck.struct_of_deref tc id with
      | None -> () (* dead code never touched by the checker *)
      | Some sname ->
          let offset =
            match Ast.field_offset prog ~sname ~field:d.Analysis.dfield with
            | Some o -> o
            | None -> err "no offset for %s.%s" sname d.Analysis.dfield
          in
          let mech = Heuristic.mechanism_of_site selection id in
          let site =
            Site.make ~mech
              (Printf.sprintf "%s.%s->%s#%d" d.Analysis.deref_func
                 (match d.Analysis.dbase with Some v -> v | None -> "_")
                 d.Analysis.dfield id)
          in
          Hashtbl.replace sites id (site, offset))
    selection.Heuristic.analysis.Analysis.derefs;
  { prog; selection; tc; sites }

let compile_source ?selection src = compile ?selection (Parser.parse_program src)

(* --- Evaluation ------------------------------------------------------ *)

exception Return_exc of rvalue

type frame = (string, rvalue) Hashtbl.t

type state = {
  c : compiled;
  prng : Prng.t;
  out : Buffer.t; (* print() output *)
}

let site_of st (d : Ast.deref) =
  match Hashtbl.find_opt st.c.sites d.Ast.d_id with
  | Some entry -> entry
  | None -> err "dereference site %d was not compiled" d.Ast.d_id

let rec eval st (frame : frame) (e : Ast.expr) : rvalue =
  match e with
  | Ast.Null -> V Value.Nil
  | Ast.Int_lit i -> V (Value.Int i)
  | Ast.Float_lit f -> V (Value.Float f)
  | Ast.Var v -> (
      match Hashtbl.find_opt frame v with
      | Some r -> r
      | None -> err "unbound variable %s" v)
  | Ast.Deref d ->
      let base = as_ptr (eval st frame d.Ast.d_base) in
      let site, offset = site_of st d in
      Ops.work 1;
      V (Ops.load site base offset)
  | Ast.Call (f, args) ->
      let argv = List.map (eval st frame) args in
      (* a call is a return-stub boundary: if the callee migrates, the
         thread comes back here *)
      Ops.call (fun () -> apply st f argv)
  | Ast.Future_call (f, args) ->
      let argv = List.map (eval st frame) args in
      F
        (Ops.future (fun () ->
             as_value (Ops.call (fun () -> apply st f argv))))
  | Ast.Touch e' -> (
      match eval st frame e' with
      | F fut -> V (Ops.touch fut)
      | V v -> V v (* touching a non-future is a no-op, as in Olden *))
  | Ast.Unop (op, e') -> (
      let r = eval st frame e' in
      Ops.work 1;
      match (op, as_value r) with
      | Ast.Neg, Value.Int i -> V (Value.Int (-i))
      | Ast.Neg, Value.Float f -> V (Value.Float (-.f))
      | Ast.Not, _ -> V (Value.of_bool (not (truthy r)))
      | Ast.Neg, v -> err "cannot negate %s" (Value.to_string v))
  | Ast.Binop (op, a, b) -> eval_binop st frame op a b
  | Ast.Alloc_on (sname, pe) ->
      let proc = as_int (eval st frame pe) in
      let words =
        match Ast.struct_words st.c.prog sname with
        | Some w -> w
        | None -> err "unknown struct %s" sname
      in
      let nprocs = Ops.nprocs () in
      let proc = ((proc mod nprocs) + nprocs) mod nprocs in
      V (Value.Ptr (Ops.alloc ~proc words))
  | Ast.Builtin (name, args) -> eval_builtin st frame name args

and eval_binop st frame op a b =
  match op with
  | Ast.And ->
      if truthy (eval st frame a) then V (Value.of_bool (truthy (eval st frame b)))
      else V (Value.of_bool false)
  | Ast.Or ->
      if truthy (eval st frame a) then V (Value.of_bool true)
      else V (Value.of_bool (truthy (eval st frame b)))
  | _ -> (
      let ra = eval st frame a in
      let rb = eval st frame b in
      Ops.work 1;
      let arith fi ff =
        match (as_value ra, as_value rb) with
        | Value.Float _, _ | _, Value.Float _ ->
            V (Value.Float (ff (as_float ra) (as_float rb)))
        | _ -> V (Value.Int (fi (as_int ra) (as_int rb)))
      in
      let compare_vals () =
        match (as_value ra, as_value rb) with
        | Value.Ptr p, Value.Ptr q -> compare (Gptr.compare p q) 0
        | (Value.Ptr _ | Value.Nil), (Value.Ptr _ | Value.Nil) ->
            compare (as_ptr ra) (as_ptr rb)
        | Value.Float _, _ | _, Value.Float _ ->
            compare (as_float ra) (as_float rb)
        | _ -> compare (as_int ra) (as_int rb)
      in
      match op with
      | Ast.Add -> arith ( + ) ( +. )
      | Ast.Sub -> arith ( - ) ( -. )
      | Ast.Mul -> arith ( * ) ( *. )
      | Ast.Div ->
          if
            (match as_value rb with
            | Value.Int 0 -> true
            | Value.Float f -> f = 0.
            | _ -> false)
          then err "division by zero"
          else arith ( / ) ( /. )
      | Ast.Mod -> V (Value.Int (as_int ra mod as_int rb))
      | Ast.Eq -> V (Value.of_bool (compare_vals () = 0))
      | Ast.Ne -> V (Value.of_bool (compare_vals () <> 0))
      | Ast.Lt -> V (Value.of_bool (compare_vals () < 0))
      | Ast.Le -> V (Value.of_bool (compare_vals () <= 0))
      | Ast.Gt -> V (Value.of_bool (compare_vals () > 0))
      | Ast.Ge -> V (Value.of_bool (compare_vals () >= 0))
      | Ast.And | Ast.Or -> assert false)

and eval_builtin st frame name args =
  let argv = List.map (eval st frame) args in
  match (name, argv) with
  | "self", [] -> V (Value.Int (Ops.self ()))
  | "nprocs", [] -> V (Value.Int (Ops.nprocs ()))
  | "rand", [ n ] -> V (Value.Int (Prng.int st.prng (max 1 (as_int n))))
  | "work", [ n ] ->
      Ops.work (max 0 (as_int n));
      V Value.Nil
  | "print", [ r ] ->
      Buffer.add_string st.out (Value.to_string (as_value r));
      Buffer.add_char st.out '\n';
      V Value.Nil
  | _ -> err "bad builtin call %s/%d" name (List.length argv)

and exec_stmt st frame (s : Ast.stmt) : unit =
  match s with
  | Ast.Decl (_, v, init) ->
      let r =
        match init with Some e -> eval st frame e | None -> V Value.Nil
      in
      Ops.work 1;
      Hashtbl.replace frame v r
  | Ast.Assign (v, e) ->
      let r = eval st frame e in
      Ops.work 1;
      if not (Hashtbl.mem frame v) then err "assignment to unbound %s" v;
      Hashtbl.replace frame v r
  | Ast.Field_assign (d, e) ->
      let base = as_ptr (eval st frame d.Ast.d_base) in
      let r = eval st frame e in
      let site, offset = site_of st d in
      Ops.work 1;
      Ops.store site base offset (as_value r)
  | Ast.If (c, th, el) ->
      Ops.work 1;
      if truthy (eval st frame c) then exec_block st frame th
      else exec_block st frame el
  | Ast.While w ->
      let rec loop () =
        Ops.work 1;
        if truthy (eval st frame w.Ast.w_cond) then begin
          exec_block st frame w.Ast.w_body;
          loop ()
        end
      in
      loop ()
  | Ast.Return (Some e) -> raise (Return_exc (eval st frame e))
  | Ast.Return None -> raise (Return_exc (V Value.Nil))
  | Ast.Expr e -> ignore (eval st frame e)

and exec_block st frame b = List.iter (exec_stmt st frame) b

and apply st fname argv : rvalue =
  match Ast.find_func st.c.prog fname with
  | None -> err "unknown function %s" fname
  | Some f ->
      if List.length argv <> List.length f.Ast.f_params then
        err "%s: arity mismatch" fname;
      let frame = Hashtbl.create 8 in
      List.iter2
        (fun (_, p) v -> Hashtbl.replace frame p v)
        f.Ast.f_params argv;
      Ops.work 2 (* call overhead *);
      (try
         exec_block st frame f.Ast.f_body;
         V Value.Nil
       with Return_exc r -> r)

(* --- Entry points ----------------------------------------------------- *)

type result = {
  return_value : Value.t;
  output : string; (* everything print()ed *)
  report : Engine.report;
}

let run ?(entry = "main") ?(args = []) (cfg : Olden_config.t) (c : compiled) :
    result =
  let st =
    { c; prng = Prng.create cfg.Olden_config.seed; out = Buffer.create 256 }
  in
  let ret = ref Value.Nil in
  let engine = Engine.create cfg in
  Engine.exec engine (fun () ->
      let argv = List.map (fun v -> V v) args in
      ret := as_value (apply st entry argv));
  { return_value = !ret; output = Buffer.contents st.out; report = Engine.report engine }

let run_source ?entry ?args cfg src = run ?entry ?args cfg (compile_source src)
