(* Public facade of the Olden reproduction.

   A user program is an ordinary OCaml function that performs its heap
   traffic through [Ops] and is executed on the simulated machine by
   [Engine.run]:

   {[
     let cfg = Olden.Config.make ~nprocs:8 () in
     let report =
       Olden.Engine.run cfg (fun () ->
         let site = Olden.Site.migrate "demo.t->next" in
         ...)
     in
     Format.printf "makespan: %d cycles@." report.Olden.Engine.makespan
   ]} *)

module Config = Olden_config
module Geometry = Olden_config.Geometry
module Gptr = Gptr
module Value = Value
module Memory = Memory
module Machine = Machine
module Stats = Stats
module Write_log = Olden_cache.Write_log
module Translation = Olden_cache.Translation
module Directory = Olden_cache.Directory
module Cache_system = Olden_cache.Cache_system
module Site = Olden_runtime.Site
module Ops = Olden_runtime.Ops
module Engine = Olden_runtime.Engine
module Fault_plan = Fault_plan
module Recovery = Olden_recovery.Recovery
module Failover = Olden_recovery.Failover
module Effects = Olden_runtime.Effects
module Prng = Prng
module Timeline = Olden_runtime.Timeline
module Trace = Olden_trace.Trace
module Span = Olden_span.Span
module Monitor = Olden_monitor.Monitor
module Json = Olden_trace.Json
module Metrics = Olden_trace.Metrics
module Chrome_trace = Olden_trace.Chrome_trace
module Jsonl = Olden_trace.Jsonl
module Recorder = Olden_trace.Recorder
module Trace_summary = Olden_trace.Summary
module Depgraph = Olden_trace.Depgraph
module Attribution = Olden_profile.Attribution
module Critical_path = Olden_profile.Critical_path
module Snapshot_diff = Olden_profile.Snapshot_diff
module Domain_pool = Olden_parallel.Domain_pool
module Sweep = Olden_parallel.Sweep
module Serving = Olden_serving.Serving
