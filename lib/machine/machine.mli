(** The simulated distributed-memory machine.

    Deterministic discrete-event timing: each processor carries a cycle
    clock for its compute thread plus a separate availability time for its
    active-message handler.  Handler occupancy (when enabled) models the
    serialization of requests at a hot home node without rewinding the
    home's compute clock: handler cycles interleave with computation, as
    with the CM-5's interrupt-driven active messages. *)

type t

exception
  Undeliverable of { dst : int; klass : Fault_plan.klass; attempts : int }
(** A message exhausted [retry_spec.max_attempts] retransmissions; names
    the destination processor and the message class that failed. *)

val undeliverable_to_string :
  dst:int -> klass:Fault_plan.klass -> attempts:int -> string
(** The canonical one-line rendering of an {!Undeliverable} payload —
    what the CLI prints and what tests assert against. *)

val create : Olden_config.t -> t

val nprocs : t -> int
val costs : t -> Olden_config.costs
val stats : t -> Stats.t

val fault_plan : t -> Fault_plan.t option
(** The active fault schedule, when [cfg.faults] is set. *)

(** {2 The home map and the dead set}

    Fail-stop failover works through one indirection: every message send
    resolves its destination processor through the home map, which is
    the identity until a failover rewrites it (so the fault-free
    simulation is bit-identical to a machine without the map).  The
    failover layer ({!Olden_recovery.Failover}) marks victims dead and
    points their entries at the promoted backup. *)

val home_of : t -> int -> int
(** [home_of t owner] is the processor currently serving [owner]'s home
    pages: [owner] itself until a failover promotes a backup. *)

val is_dead : t -> int -> bool
(** Has this processor fail-stopped?  Permanent. *)

val mark_dead : t -> int -> unit
(** Record a fail-stop death.  The failover layer must also {!rehome}
    every owner the victim was serving. *)

val rehome : t -> owner:int -> target:int -> unit
(** Point [owner]'s home-map entry at [target] (the promoted backup). *)

val live_count : t -> int
(** Processors not (yet) fail-stopped. *)

val dead_sends : t -> int
(** Sends whose destination, *after* home-map resolution, was still a
    dead processor.  Zero when the failover protocol is correct — the
    invariant checker asserts it. *)

val backup_of : t -> stride:int -> owner:int -> int
(** The deterministic backup for [owner]'s home pages: the first live
    processor at or after [(owner + stride) mod nprocs] that is not the
    one currently serving them.  Returns the serving processor itself
    only when no other live processor exists (no mirror possible). *)

val now : t -> int -> int
(** Current cycle count of a processor's compute clock. *)

(** {2 Serving ingress accounting}

    The open-loop serving driver ({!Olden_serving.Serving}) admits each
    request at a seeded ingress processor; the machine keeps the
    per-processor admission tally so ingress load balance shows up in
    serving snapshots.  All zero outside serving runs. *)

val note_ingress : t -> int -> unit
(** Count one request admitted at a processor (also bumps
    [Stats.requests_admitted]). *)

val note_request_done : t -> unit
(** Count one injected request that ran to completion. *)

val ingress_counts : t -> int array
(** Per-processor requests admitted (a copy). *)

val advance : t -> int -> int -> unit
(** [advance t proc cycles] charges computation.
    @raise Invalid_argument on a negative cost. *)

val wait_until : t -> int -> int -> unit
(** Move a processor's clock forward to a time (idle waiting); never moves
    it backward and charges no busy time. *)

val stall : t -> int -> int -> unit
(** [stall t proc cycles] parks [proc]'s compute thread on a retry timer:
    the clock advances, the cycles count as communication (not busy), so
    the [busy + comm + idle] accounting identity is preserved. *)

val request_reply :
  ?klass:Fault_plan.klass -> t -> src:int -> dst:int -> service:int -> int
(** A blocking round trip from [src] to the handler of [dst]: network
    latency both ways plus handler service, plus queueing when
    [handler_contention] is on.  Advances [src]'s clock to the reply time
    and returns it.  Under a fault schedule the requester stalls and
    retransmits on loss (bounded exponential backoff); the receive path is
    idempotent — duplicates and retransmissions of serviced requests are
    recognized by sequence number and do not re-execute the service.
    @raise Undeliverable when the retry budget is exhausted. *)

val one_way :
  ?klass:Fault_plan.klass -> t -> src:int -> dst:int -> service:int -> int
(** A non-blocking message; returns the time the handler finishes.  Under
    a fault schedule the transport retransmits in the background: losses
    push the delivery time back without blocking the sender, and the
    handler effect is applied exactly once.  [klass] (default [Data])
    classifies the traffic for the fault plan and error reporting —
    replica mirroring sends [Fault_plan.Replica].
    @raise Undeliverable when the retry budget is exhausted. *)

type delivery =
  | Delivered of { penalty : int }
      (** arrival is [penalty] cycles later than the fault-free schedule *)
  | Gave_up of { penalty : int; attempts : int }
      (** the sender abandoned the transfer after [attempts] tries, having
          burned [penalty] cycles on retry timers *)

val thread_delivery :
  t ->
  dst:int ->
  klass:Fault_plan.klass ->
  send_time:int ->
  give_up_after:int option ->
  delivery
(** Deliver a thread-state transfer (migration or return stub) sent at
    [send_time].  The engine charges the base send/receive costs and the
    one base message; this only accounts for faults: lost forward legs
    delay the arrival by the backoff wait, lost acknowledgements trigger
    retransmissions that the receiver's sequence check discards (the fiber
    resumes exactly once).  [give_up_after] bounds the forward attempts —
    used by migrations so a flaky home degrades to caching instead of
    wedging the thread; with [None] the transfer retries up to
    [max_attempts].  Reliable network: always [Delivered {penalty = 0}].
    @raise Undeliverable when the retry budget is exhausted. *)

val count_bytes : t -> int -> unit
(** Account payload bytes to the statistics. *)

val makespan : t -> int
(** Finishing time of the whole run (max over clocks). *)

val total_busy : t -> int

val utilization : t -> float
(** [total_busy / (makespan * nprocs)]. *)

val busy_cycles : t -> int array
(** Per-processor busy time (a copy). *)

val clocks : t -> int array
(** Per-processor clocks (a copy). *)

val comm_cycles : t -> int array
(** Per-processor cycles the compute thread spent blocked on
    request/reply round trips (cache-line fetches, revalidations) — a
    copy. *)

val idle_cycles : t -> int array
(** Per-processor idle time against the final makespan:
    [makespan - busy - comm], so [busy + comm + idle] sums to
    [nprocs * makespan] exactly (the profiler's accounting identity). *)

val set_record_intervals : t -> bool -> unit
(** Enable recording of per-processor busy intervals (for timelines). *)

val busy_intervals : t -> (int * int * int) list
(** Recorded [(proc, start, stop)] busy intervals, in charge order. *)

val pp : Format.formatter -> t -> unit
