(* Counters accumulated over one simulated run.

   These feed Table 2 (migration counts, overheads) and Table 3 (cacheable
   reads/writes, remote fractions, miss rates, pages cached). *)

type t = {
  mutable migrations : int;
  mutable returns : int;
  mutable futures : int;
  mutable touches : int;
  mutable steals : int;
  mutable local_refs : int;
  mutable cacheable_reads : int; (* reads at caching sites *)
  mutable cacheable_reads_remote : int;
  mutable cacheable_writes : int;
  mutable cacheable_writes_remote : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_flushes : int;
  mutable lines_invalidated : int;
  mutable invalidation_messages : int;
  mutable revalidations : int; (* bilateral timestamp checks *)
  mutable pages_cached : int; (* distinct page entries ever created *)
  mutable remote_allocs : int;
  mutable messages : int;
  mutable bytes : int;
  mutable write_track_cycles : int;
  mutable msg_drops : int;
  mutable outage_drops : int;
  mutable msg_delays : int;
  mutable msg_duplicates : int;
  mutable duplicates_suppressed : int;
  mutable retries : int;
  mutable retry_cycles : int;
  mutable migration_fallbacks : int;
  mutable crashes : int;
  mutable pages_lost_in_crash : int; (* live cached pages dropped by crashes *)
  mutable recovery_messages : int; (* warm-restart announcements sent *)
  mutable recovery_stall_cycles : int; (* victim cycles spent recovering *)
  mutable replica_messages : int; (* write-through mirrors sent to backups *)
  mutable failstops : int; (* processors permanently lost *)
  mutable pages_failed_over : int; (* home pages promoted to a backup *)
  mutable failover_messages : int; (* failover announcements + re-replication *)
  mutable threads_lost : int; (* unreplicated work lost with a victim *)
  mutable requests_admitted : int; (* open-loop requests injected (serving) *)
  mutable requests_completed : int; (* injected requests that ran to completion *)
}

let create () =
  {
    migrations = 0;
    returns = 0;
    futures = 0;
    touches = 0;
    steals = 0;
    local_refs = 0;
    cacheable_reads = 0;
    cacheable_reads_remote = 0;
    cacheable_writes = 0;
    cacheable_writes_remote = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_flushes = 0;
    lines_invalidated = 0;
    invalidation_messages = 0;
    revalidations = 0;
    pages_cached = 0;
    remote_allocs = 0;
    messages = 0;
    bytes = 0;
    write_track_cycles = 0;
    msg_drops = 0;
    outage_drops = 0;
    msg_delays = 0;
    msg_duplicates = 0;
    duplicates_suppressed = 0;
    retries = 0;
    retry_cycles = 0;
    migration_fallbacks = 0;
    crashes = 0;
    pages_lost_in_crash = 0;
    recovery_messages = 0;
    recovery_stall_cycles = 0;
    replica_messages = 0;
    failstops = 0;
    pages_failed_over = 0;
    failover_messages = 0;
    threads_lost = 0;
    requests_admitted = 0;
    requests_completed = 0;
  }

(* Snapshot for phase-relative measurements.  Written out field by field
   on purpose: every field is mutable, so the snapshot must be a fresh
   record — the [{ t with ... }] shorthand also copies, but reads as if
   it shared structure, and silently keeps "copying" if a field is ever
   made immutable. *)
let copy t =
  {
    migrations = t.migrations;
    returns = t.returns;
    futures = t.futures;
    touches = t.touches;
    steals = t.steals;
    local_refs = t.local_refs;
    cacheable_reads = t.cacheable_reads;
    cacheable_reads_remote = t.cacheable_reads_remote;
    cacheable_writes = t.cacheable_writes;
    cacheable_writes_remote = t.cacheable_writes_remote;
    cache_hits = t.cache_hits;
    cache_misses = t.cache_misses;
    cache_flushes = t.cache_flushes;
    lines_invalidated = t.lines_invalidated;
    invalidation_messages = t.invalidation_messages;
    revalidations = t.revalidations;
    pages_cached = t.pages_cached;
    remote_allocs = t.remote_allocs;
    messages = t.messages;
    bytes = t.bytes;
    write_track_cycles = t.write_track_cycles;
    msg_drops = t.msg_drops;
    outage_drops = t.outage_drops;
    msg_delays = t.msg_delays;
    msg_duplicates = t.msg_duplicates;
    duplicates_suppressed = t.duplicates_suppressed;
    retries = t.retries;
    retry_cycles = t.retry_cycles;
    migration_fallbacks = t.migration_fallbacks;
    crashes = t.crashes;
    pages_lost_in_crash = t.pages_lost_in_crash;
    recovery_messages = t.recovery_messages;
    recovery_stall_cycles = t.recovery_stall_cycles;
    replica_messages = t.replica_messages;
    failstops = t.failstops;
    pages_failed_over = t.pages_failed_over;
    failover_messages = t.failover_messages;
    threads_lost = t.threads_lost;
    requests_admitted = t.requests_admitted;
    requests_completed = t.requests_completed;
  }

(* Counter-wise difference [b - a]; used to isolate a kernel phase. *)
let diff b a =
  {
    migrations = b.migrations - a.migrations;
    returns = b.returns - a.returns;
    futures = b.futures - a.futures;
    touches = b.touches - a.touches;
    steals = b.steals - a.steals;
    local_refs = b.local_refs - a.local_refs;
    cacheable_reads = b.cacheable_reads - a.cacheable_reads;
    cacheable_reads_remote = b.cacheable_reads_remote - a.cacheable_reads_remote;
    cacheable_writes = b.cacheable_writes - a.cacheable_writes;
    cacheable_writes_remote =
      b.cacheable_writes_remote - a.cacheable_writes_remote;
    cache_hits = b.cache_hits - a.cache_hits;
    cache_misses = b.cache_misses - a.cache_misses;
    cache_flushes = b.cache_flushes - a.cache_flushes;
    lines_invalidated = b.lines_invalidated - a.lines_invalidated;
    invalidation_messages = b.invalidation_messages - a.invalidation_messages;
    revalidations = b.revalidations - a.revalidations;
    pages_cached = b.pages_cached - a.pages_cached;
    remote_allocs = b.remote_allocs - a.remote_allocs;
    messages = b.messages - a.messages;
    bytes = b.bytes - a.bytes;
    write_track_cycles = b.write_track_cycles - a.write_track_cycles;
    msg_drops = b.msg_drops - a.msg_drops;
    outage_drops = b.outage_drops - a.outage_drops;
    msg_delays = b.msg_delays - a.msg_delays;
    msg_duplicates = b.msg_duplicates - a.msg_duplicates;
    duplicates_suppressed = b.duplicates_suppressed - a.duplicates_suppressed;
    retries = b.retries - a.retries;
    retry_cycles = b.retry_cycles - a.retry_cycles;
    migration_fallbacks = b.migration_fallbacks - a.migration_fallbacks;
    crashes = b.crashes - a.crashes;
    pages_lost_in_crash = b.pages_lost_in_crash - a.pages_lost_in_crash;
    recovery_messages = b.recovery_messages - a.recovery_messages;
    recovery_stall_cycles = b.recovery_stall_cycles - a.recovery_stall_cycles;
    replica_messages = b.replica_messages - a.replica_messages;
    failstops = b.failstops - a.failstops;
    pages_failed_over = b.pages_failed_over - a.pages_failed_over;
    failover_messages = b.failover_messages - a.failover_messages;
    threads_lost = b.threads_lost - a.threads_lost;
    requests_admitted = b.requests_admitted - a.requests_admitted;
    requests_completed = b.requests_completed - a.requests_completed;
  }

let remote_read_fraction t =
  if t.cacheable_reads = 0 then 0.
  else float_of_int t.cacheable_reads_remote /. float_of_int t.cacheable_reads

let remote_write_fraction t =
  if t.cacheable_writes = 0 then 0.
  else
    float_of_int t.cacheable_writes_remote /. float_of_int t.cacheable_writes

(* "% of remote references that miss" (Table 3). *)
let remote_miss_fraction t =
  let remote = t.cacheable_reads_remote + t.cacheable_writes_remote in
  if remote = 0 then 0. else float_of_int t.cache_misses /. float_of_int remote

(* The counters by name, in declaration order — the single source for
   both the JSON snapshot and any future tabular export. *)
let fields t =
  [
    ("migrations", t.migrations);
    ("returns", t.returns);
    ("futures", t.futures);
    ("touches", t.touches);
    ("steals", t.steals);
    ("local_refs", t.local_refs);
    ("cacheable_reads", t.cacheable_reads);
    ("cacheable_reads_remote", t.cacheable_reads_remote);
    ("cacheable_writes", t.cacheable_writes);
    ("cacheable_writes_remote", t.cacheable_writes_remote);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("cache_flushes", t.cache_flushes);
    ("lines_invalidated", t.lines_invalidated);
    ("invalidation_messages", t.invalidation_messages);
    ("revalidations", t.revalidations);
    ("pages_cached", t.pages_cached);
    ("remote_allocs", t.remote_allocs);
    ("messages", t.messages);
    ("bytes", t.bytes);
    ("write_track_cycles", t.write_track_cycles);
    ("msg_drops", t.msg_drops);
    ("outage_drops", t.outage_drops);
    ("msg_delays", t.msg_delays);
    ("msg_duplicates", t.msg_duplicates);
    ("duplicates_suppressed", t.duplicates_suppressed);
    ("retries", t.retries);
    ("retry_cycles", t.retry_cycles);
    ("migration_fallbacks", t.migration_fallbacks);
    ("crashes", t.crashes);
    ("pages_lost_in_crash", t.pages_lost_in_crash);
    ("recovery_messages", t.recovery_messages);
    ("recovery_stall_cycles", t.recovery_stall_cycles);
    ("replica_messages", t.replica_messages);
    ("failstops", t.failstops);
    ("pages_failed_over", t.pages_failed_over);
    ("failover_messages", t.failover_messages);
    ("threads_lost", t.threads_lost);
    ("requests_admitted", t.requests_admitted);
    ("requests_completed", t.requests_completed);
  ]

let to_json t =
  let module J = Olden_trace.Json in
  J.Obj
    (List.map (fun (name, v) -> (name, J.Int v)) (fields t)
    @ [
        ("remote_read_fraction", J.Float (remote_read_fraction t));
        ("remote_write_fraction", J.Float (remote_write_fraction t));
        ("remote_miss_fraction", J.Float (remote_miss_fraction t));
      ])

let pp ppf t =
  Format.fprintf ppf
    "@[<v>migrations=%d returns=%d futures=%d touches=%d steals=%d@,\
     cacheable: reads=%d (%.2f%% remote) writes=%d (%.2f%% remote)@,\
     cache: hits=%d misses=%d flushes=%d pages=%d@,\
     invalidations: lines=%d msgs=%d revalidations=%d@,\
     messages=%d bytes=%d write-track-cycles=%d@]"
    t.migrations t.returns t.futures t.touches t.steals t.cacheable_reads
    (100. *. remote_read_fraction t)
    t.cacheable_writes
    (100. *. remote_write_fraction t)
    t.cache_hits t.cache_misses t.cache_flushes t.pages_cached
    t.lines_invalidated t.invalidation_messages t.revalidations t.messages
    t.bytes t.write_track_cycles;
  if
    t.msg_drops + t.msg_delays + t.msg_duplicates + t.retries
    + t.migration_fallbacks
    > 0
  then
    Format.fprintf ppf
      "@,\
       @[<v>faults: drops=%d (outages=%d) delays=%d dups=%d suppressed=%d@,\
       retries=%d retry-cycles=%d migration-fallbacks=%d@]"
      t.msg_drops t.outage_drops t.msg_delays t.msg_duplicates
      t.duplicates_suppressed t.retries t.retry_cycles t.migration_fallbacks;
  if t.crashes > 0 then
    Format.fprintf ppf
      "@,\
       @[<v>crashes=%d pages-lost=%d recovery-msgs=%d recovery-stall=%d@]"
      t.crashes t.pages_lost_in_crash t.recovery_messages
      t.recovery_stall_cycles;
  if t.failstops > 0 || t.replica_messages > 0 then
    Format.fprintf ppf
      "@,\
       @[<v>failstops=%d pages-failed-over=%d replica-msgs=%d \
       failover-msgs=%d threads-lost=%d@]"
      t.failstops t.pages_failed_over t.replica_messages t.failover_messages
      t.threads_lost
