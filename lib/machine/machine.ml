(* The simulated distributed-memory machine.

   Deterministic discrete-event timing: each processor carries a cycle
   clock for its compute thread, plus a separate availability time for its
   active-message handler.  Handler occupancy models the serialization of
   requests at a hot home node (the bottleneck of Section 4.3) without
   having to rewind the home's compute clock; handler cycles are assumed to
   be interleaved with computation, which matches the CM-5's interrupt-driven
   active messages closely enough for the ratios we reproduce. *)

module Trace = Olden_trace.Trace
module Span = Olden_span.Span

type t = {
  cfg : Olden_config.t;
  clock : int array; (* per-processor compute clock, cycles *)
  handler_free : int array; (* time the AM handler becomes free *)
  busy : int array; (* total busy cycles, for utilization accounting *)
  comm : int array; (* cycles a processor's compute thread spent blocked
                       on request/reply round trips *)
  stats : Stats.t;
  fault : Fault_plan.t option; (* None: the network is reliable *)
  home : int array;
      (* the home map: [home.(owner)] is the processor currently serving
         [owner]'s pages.  Identity until a fail-stop failover promotes a
         backup; every message send resolves its destination through it,
         so a request racing a death replays against the new home instead
         of targeting a corpse. *)
  dead : bool array; (* fail-stopped processors, permanently *)
  mutable sends_to_dead : int;
      (* sends whose *resolved* destination was still dead — must stay 0
         when the failover protocol is correct (the checker asserts it) *)
  mutable intervals : (int * int * int) list;
      (* busy intervals (proc, start, stop), newest first, when recording *)
  mutable record_intervals : bool;
  ingress : int array;
      (* open-loop serving requests admitted at each processor; identity
         zero outside serving runs, so batch exports never see it *)
}

exception
  Undeliverable of { dst : int; klass : Fault_plan.klass; attempts : int }

(* The one-line rendering every consumer (CLI, logs, tests) shares, so
   "what died and where was it headed" reads the same everywhere. *)
let undeliverable_to_string ~dst ~klass ~attempts =
  Printf.sprintf "%s message to processor %d undeliverable after %d attempts"
    (Fault_plan.klass_to_string klass)
    dst attempts

let create cfg =
  let n = cfg.Olden_config.nprocs in
  {
    cfg;
    clock = Array.make n 0;
    handler_free = Array.make n 0;
    busy = Array.make n 0;
    comm = Array.make n 0;
    stats = Stats.create ();
    fault =
      Option.map
        (fun spec -> Fault_plan.create spec cfg.Olden_config.retry)
        cfg.Olden_config.faults;
    home = Array.init n Fun.id;
    dead = Array.make n false;
    sends_to_dead = 0;
    intervals = [];
    record_intervals = false;
    ingress = Array.make n 0;
  }

let set_record_intervals t flag = t.record_intervals <- flag
let busy_intervals t = List.rev t.intervals

let nprocs t = t.cfg.Olden_config.nprocs
let costs t = t.cfg.Olden_config.costs
let stats t = t.stats
let fault_plan t = t.fault
let now t proc = t.clock.(proc)

(* --- Fail-stop bookkeeping: the home map and the dead set ------------- *)

let home_of t owner = t.home.(owner)
let is_dead t proc = t.dead.(proc)
let mark_dead t proc = t.dead.(proc) <- true
let rehome t ~owner ~target = t.home.(owner) <- target

let live_count t =
  Array.fold_left (fun n d -> if d then n else n + 1) 0 t.dead

let dead_sends t = t.sends_to_dead

(* --- Serving ingress accounting --------------------------------------- *)

let note_ingress t proc =
  t.ingress.(proc) <- t.ingress.(proc) + 1;
  t.stats.Stats.requests_admitted <- t.stats.Stats.requests_admitted + 1

let note_request_done t =
  t.stats.Stats.requests_completed <- t.stats.Stats.requests_completed + 1

let ingress_counts t = Array.copy t.ingress

(* Every send resolves its destination through the home map: before any
   failover this is the identity and perturbs nothing; afterwards traffic
   aimed at a dead home lands at its promoted backup.  A resolved
   destination that is still dead is a failover-protocol bug, counted so
   the invariant checker can assert it never happened. *)
let resolve t dst =
  let d = t.home.(dst) in
  if t.dead.(d) then t.sends_to_dead <- t.sends_to_dead + 1;
  d

(* The deterministic backup for [owner]'s home pages: the first live
   processor at or after [(owner + stride) mod nprocs] that is not the
   one currently serving them.  After a failover this walks past the
   promoted backup to elect the fresh one. *)
let backup_of t ~stride ~owner =
  let n = nprocs t in
  let serving = t.home.(owner) in
  let rec go k =
    if k >= n then serving
    else
      let c = (owner + stride + k) mod n in
      if c <> serving && not t.dead.(c) then c else go (k + 1)
  in
  go 0

(* Charge [cycles] of computation on [proc]. *)
let advance t proc cycles =
  if cycles < 0 then invalid_arg "Machine.advance: negative cost";
  let start = t.clock.(proc) in
  t.clock.(proc) <- start + cycles;
  t.busy.(proc) <- t.busy.(proc) + cycles;
  if t.record_intervals && cycles > 0 then
    t.intervals <- (proc, start, start + cycles) :: t.intervals

(* Move a processor's clock forward to [time] (idle waiting, e.g. a thread
   arriving at a processor that has nothing else to do). *)
let wait_until t proc time =
  if time > t.clock.(proc) then t.clock.(proc) <- time

(* A compute thread stalled on a retry timer: the clock moves but no busy
   time is charged, and the cycles count as communication so the profiler's
   busy + comm + idle accounting identity still holds. *)
let stall t proc cycles =
  if cycles > 0 then begin
    t.clock.(proc) <- t.clock.(proc) + cycles;
    t.comm.(proc) <- t.comm.(proc) + cycles
  end

(* --- Fault bookkeeping helpers -------------------------------------- *)

(* Trace events for faults reuse the emitter's thread/site context; every
   call site guards on [Trace.is_on] via these helpers. *)
let emit_fault ~proc ~time kind =
  if Trace.is_on () then
    Trace.emit
      { Trace.time; proc; tid = Trace.thread (); site = Trace.site (); kind }

let note_drop t ~dst ~time ~attempt ~outage =
  t.stats.Stats.msg_drops <- t.stats.Stats.msg_drops + 1;
  if outage then t.stats.Stats.outage_drops <- t.stats.Stats.outage_drops + 1;
  emit_fault ~proc:dst ~time (Trace.Fault_drop { dst; attempt; outage });
  if Span.is_on () then
    Span.child ~kind:Span.Drop ~proc:dst ~t0:time ~t1:time ~a:attempt
      ~b:(if outage then 1 else 0)

let note_delay t ~dst ~time ~cycles =
  if cycles > 0 then begin
    t.stats.Stats.msg_delays <- t.stats.Stats.msg_delays + 1;
    emit_fault ~proc:dst ~time (Trace.Fault_delay { dst; cycles });
    if Span.is_on () then
      Span.child ~kind:Span.Delay ~proc:dst ~t0:(time - cycles) ~t1:time
        ~a:cycles ~b:0
  end

(* A duplicate delivery: the receiver's sequence-number check discards it.
   [duplicates_suppressed] equals [msg_duplicates] exactly when the
   idempotent receive path catches every duplicate — the invariant the
   checker asserts.  [note_suppressed] is for deliveries whose transmission
   was already counted (a retransmission reaching an already-serviced
   handler); [note_duplicate] also counts the extra copy the network
   minted. *)
let note_suppressed t ~dst ~time =
  t.stats.Stats.msg_duplicates <- t.stats.Stats.msg_duplicates + 1;
  t.stats.Stats.duplicates_suppressed <-
    t.stats.Stats.duplicates_suppressed + 1;
  emit_fault ~proc:dst ~time (Trace.Fault_dup { dst });
  if Span.is_on () then
    Span.child ~kind:Span.Dup ~proc:dst ~t0:time ~t1:time ~a:0 ~b:0

let note_duplicate t ~dst ~time =
  t.stats.Stats.messages <- t.stats.Stats.messages + 1;
  note_suppressed t ~dst ~time

(* Charge one retry timer: raise [Undeliverable] when the budget is gone,
   otherwise count the retransmission and return the backoff wait. *)
let note_retry t plan ~dst ~klass ~time ~attempt =
  if attempt + 1 >= (Fault_plan.retry plan).Olden_config.max_attempts then
    raise (Undeliverable { dst; klass; attempts = attempt + 1 });
  let wait = Fault_plan.retry_wait plan ~attempt in
  t.stats.Stats.retries <- t.stats.Stats.retries + 1;
  t.stats.Stats.retry_cycles <- t.stats.Stats.retry_cycles + wait;
  emit_fault ~proc:dst ~time (Trace.Retry { dst; attempt; wait });
  if Span.is_on () then
    Span.child ~kind:Span.Backoff ~proc:dst ~t0:time ~t1:(time + wait)
      ~a:attempt ~b:wait;
  if Olden_monitor.Monitor.is_on () then
    Olden_monitor.Monitor.retry_wait ~cycles:wait;
  wait

(* Deliver one attempt into [dst]'s handler and return the service finish
   time (shared by the reliable and faulty paths). *)
let handler_accept t ~dst ~arrive ~service =
  let start =
    if t.cfg.Olden_config.handler_contention then
      max arrive t.handler_free.(dst)
    else arrive
  in
  t.handler_free.(dst) <- start + service;
  start + service

(* A request/reply round trip from [src] to the handler of [dst].  The
   requester blocks; the reply arrives after network latency both ways plus
   handler service, plus any queueing if the handler is busy.  Returns the
   reply arrival time and advances the requester's clock to it. *)
let request_reply_reliable t ~src ~dst ~service =
  let c = costs t in
  let arrive = t.clock.(src) + c.Olden_config.net_latency in
  let reply = handler_accept t ~dst ~arrive ~service + c.Olden_config.net_latency in
  t.stats.Stats.messages <- t.stats.Stats.messages + 2;
  t.comm.(src) <- t.comm.(src) + (reply - t.clock.(src));
  t.clock.(src) <- reply;
  reply

(* The same round trip over the faulty network.  Each logical request
   carries one sequence number; a lost request or reply makes the blocked
   requester stall for the backoff wait and retransmit under the same
   sequence number.  The receiver's sequence check makes the service
   idempotent: a retransmission of an already-serviced request only
   re-sends the cached reply, and duplicated deliveries are discarded.
   With a schedule whose probabilities are all zero this degenerates to
   exactly the reliable path: same clocks, same handler occupancy, same
   counters. *)
let request_reply_faulty t plan ~klass ~src ~dst ~service =
  let c = costs t in
  let seq = Fault_plan.fresh_seq plan in
  let serviced = ref false in
  let attempt = ref 0 in
  let reply = ref (-1) in
  while !reply < 0 do
    let k = !attempt in
    let fwd = Fault_plan.decide plan ~klass ~leg:Fault_plan.Forward ~seq ~attempt:k in
    t.stats.Stats.messages <- t.stats.Stats.messages + 1;
    let arrive =
      t.clock.(src) + c.Olden_config.net_latency + fwd.Fault_plan.delay
    in
    let outage =
      (not fwd.Fault_plan.dropped)
      && Fault_plan.handler_down plan ~proc:dst ~time:arrive
    in
    if fwd.Fault_plan.dropped || outage then begin
      note_drop t ~dst ~time:arrive ~attempt:k ~outage;
      let wait = note_retry t plan ~dst ~klass ~time:t.clock.(src) ~attempt:k in
      stall t src wait;
      incr attempt
    end
    else begin
      note_delay t ~dst ~time:arrive ~cycles:fwd.Fault_plan.delay;
      if fwd.Fault_plan.duplicated then note_duplicate t ~dst ~time:arrive;
      let finish =
        if !serviced then begin
          (* retransmission of an already-serviced request: the sequence
             check recognizes it and re-sends the cached reply without
             executing the service again *)
          note_suppressed t ~dst ~time:arrive;
          arrive
        end
        else begin
          serviced := true;
          handler_accept t ~dst ~arrive ~service
        end
      in
      let ack = Fault_plan.decide plan ~klass ~leg:Fault_plan.Ack ~seq ~attempt:k in
      t.stats.Stats.messages <- t.stats.Stats.messages + 1;
      let back = finish + c.Olden_config.net_latency + ack.Fault_plan.delay in
      if ack.Fault_plan.dropped then begin
        note_drop t ~dst:src ~time:back ~attempt:k ~outage:false;
        let wait = note_retry t plan ~dst ~klass ~time:t.clock.(src) ~attempt:k in
        stall t src wait;
        incr attempt
      end
      else begin
        note_delay t ~dst:src ~time:back ~cycles:ack.Fault_plan.delay;
        if ack.Fault_plan.duplicated then note_duplicate t ~dst:src ~time:back;
        t.comm.(src) <- t.comm.(src) + (back - t.clock.(src));
        t.clock.(src) <- back;
        reply := back
      end
    end
  done;
  !reply

let klass_code = function
  | Fault_plan.Data -> 0
  | Fault_plan.Migration -> 1
  | Fault_plan.Return -> 2
  | Fault_plan.Recovery -> 3
  | Fault_plan.Replica -> 4

let request_reply ?(klass = Fault_plan.Data) t ~src ~dst ~service =
  let dst = resolve t dst in
  if Span.is_on () then begin
    (* one Rpc envelope span per logical round trip; the fault events
       the legs emit (drop/backoff/delay/dup) nest under it *)
    let t0 = t.clock.(src) in
    let prev = Span.parent () in
    let id = Span.enter () in
    let finish () =
      Span.exit_emit ~id ~prev ~kind:Span.Rpc ~proc:src ~t0 ~t1:t.clock.(src)
        ~a:dst ~b:(klass_code klass)
    in
    match
      match t.fault with
      | None -> request_reply_reliable t ~src ~dst ~service
      | Some plan -> request_reply_faulty t plan ~klass ~src ~dst ~service
    with
    | reply ->
        finish ();
        reply
    | exception e ->
        (* Undeliverable: still emit the envelope so the flight recorder
           shows the failed RPC as the last thing that happened *)
        finish ();
        raise e
  end
  else
    match t.fault with
    | None -> request_reply_reliable t ~src ~dst ~service
    | Some plan -> request_reply_faulty t plan ~klass ~src ~dst ~service

(* A one-way message whose effect is applied at the destination handler;
   the sender does not block.  Returns the time the handler finishes.
   Under faults the transport layer retransmits in the background — lost
   attempts push the delivery time back by the backoff wait without
   touching the sender's clock, and the effect is applied exactly once. *)
let one_way ?(klass = Fault_plan.Data) t ~src ~dst ~service =
  let dst = resolve t dst in
  let c = costs t in
  match t.fault with
  | None ->
      t.stats.Stats.messages <- t.stats.Stats.messages + 1;
      handler_accept t ~dst ~arrive:(t.clock.(src) + c.Olden_config.net_latency)
        ~service
  | Some plan ->
      let seq = Fault_plan.fresh_seq plan in
      let lag = ref 0 in
      let attempt = ref 0 in
      let finish = ref (-1) in
      while !finish < 0 do
        let k = !attempt in
        let fwd =
          Fault_plan.decide plan ~klass ~leg:Fault_plan.Forward ~seq
            ~attempt:k
        in
        t.stats.Stats.messages <- t.stats.Stats.messages + 1;
        let arrive =
          t.clock.(src) + !lag + c.Olden_config.net_latency
          + fwd.Fault_plan.delay
        in
        let outage =
          (not fwd.Fault_plan.dropped)
          && Fault_plan.handler_down plan ~proc:dst ~time:arrive
        in
        if fwd.Fault_plan.dropped || outage then begin
          note_drop t ~dst ~time:arrive ~attempt:k ~outage;
          let wait =
            note_retry t plan ~dst ~klass ~time:t.clock.(src) ~attempt:k
          in
          lag := !lag + wait;
          incr attempt
        end
        else begin
          note_delay t ~dst ~time:arrive ~cycles:fwd.Fault_plan.delay;
          if fwd.Fault_plan.duplicated then note_duplicate t ~dst ~time:arrive;
          finish := handler_accept t ~dst ~arrive ~service
        end
      done;
      !finish

(* Reliable delivery of a thread-state transfer (migration or return stub).
   The base message cost is charged by the engine; this only answers: how
   much later than the fault-free schedule does the state arrive, or did
   the sender give up?  Lost forward legs delay the arrival by the backoff
   wait; a lost acknowledgement triggers a retransmission that the
   receiver's sequence check discards (the thread must start exactly
   once), delaying nothing. *)
type delivery =
  | Delivered of { penalty : int }
  | Gave_up of { penalty : int; attempts : int }

let thread_delivery t ~dst ~klass ~send_time ~give_up_after =
  let dst = resolve t dst in
  match t.fault with
  | None -> Delivered { penalty = 0 }
  | Some plan ->
      let c = costs t in
      let seq = Fault_plan.fresh_seq plan in
      let max_attempts = (Fault_plan.retry plan).Olden_config.max_attempts in
      let penalty = ref 0 in
      let attempt = ref 0 in
      let result = ref None in
      while !result = None do
        let k = !attempt in
        let fwd = Fault_plan.decide plan ~klass ~leg:Fault_plan.Forward ~seq ~attempt:k in
        if k > 0 then t.stats.Stats.messages <- t.stats.Stats.messages + 1;
        let arrive =
          send_time + !penalty + c.Olden_config.net_latency
          + fwd.Fault_plan.delay
        in
        let outage =
          (not fwd.Fault_plan.dropped)
          && Fault_plan.handler_down plan ~proc:dst ~time:arrive
        in
        if fwd.Fault_plan.dropped || outage then begin
          note_drop t ~dst ~time:arrive ~attempt:k ~outage;
          let attempts = k + 1 in
          match give_up_after with
          | Some n when attempts >= n ->
              result := Some (Gave_up { penalty = !penalty; attempts })
          | _ ->
              let wait = note_retry t plan ~dst ~klass ~time:send_time ~attempt:k in
              penalty := !penalty + wait;
              incr attempt
        end
        else begin
          note_delay t ~dst ~time:arrive ~cycles:fwd.Fault_plan.delay;
          penalty := !penalty + fwd.Fault_plan.delay;
          if fwd.Fault_plan.duplicated then note_duplicate t ~dst ~time:arrive;
          (* acknowledgement chain: each lost ack triggers one background
             retransmission of the state, which the receiver's sequence
             check discards — the fiber is resumed exactly once *)
          let j = ref k in
          let acked = ref false in
          while not !acked do
            let ack =
              Fault_plan.decide plan ~klass ~leg:Fault_plan.Ack ~seq
                ~attempt:!j
            in
            if ack.Fault_plan.dropped && !j + 1 < max_attempts then begin
              t.stats.Stats.msg_drops <- t.stats.Stats.msg_drops + 1;
              t.stats.Stats.retries <- t.stats.Stats.retries + 1;
              note_duplicate t ~dst ~time:arrive;
              incr j
            end
            else acked := true
          done;
          result := Some (Delivered { penalty = !penalty })
        end
      done;
      Option.get !result

let count_bytes t n = t.stats.Stats.bytes <- t.stats.Stats.bytes + n

(* Finishing time of the whole run. *)
let makespan t = Array.fold_left max 0 t.clock

let total_busy t = Array.fold_left ( + ) 0 t.busy

let utilization t =
  let span = makespan t in
  if span = 0 then 1.
  else float_of_int (total_busy t) /. float_of_int (span * nprocs t)

let pp ppf t =
  Format.fprintf ppf "@[<v>makespan=%d utilization=%.3f@,%a@]" (makespan t)
    (utilization t) Stats.pp t.stats

let busy_cycles t = Array.copy t.busy
let clocks t = Array.copy t.clock
let comm_cycles t = Array.copy t.comm

(* Per-processor idle time relative to the whole run: whatever part of
   the makespan was neither charged as computation nor spent blocked on a
   round trip.  By construction busy + comm + idle sums to
   [nprocs * makespan] exactly — the accounting identity the profiler's
   reconciliation line leans on. *)
let idle_cycles t =
  let span = makespan t in
  Array.init (nprocs t) (fun p -> span - t.busy.(p) - t.comm.(p))
