(* The simulated distributed-memory machine.

   Deterministic discrete-event timing: each processor carries a cycle
   clock for its compute thread, plus a separate availability time for its
   active-message handler.  Handler occupancy models the serialization of
   requests at a hot home node (the bottleneck of Section 4.3) without
   having to rewind the home's compute clock; handler cycles are assumed to
   be interleaved with computation, which matches the CM-5's interrupt-driven
   active messages closely enough for the ratios we reproduce. *)

type t = {
  cfg : Olden_config.t;
  clock : int array; (* per-processor compute clock, cycles *)
  handler_free : int array; (* time the AM handler becomes free *)
  busy : int array; (* total busy cycles, for utilization accounting *)
  comm : int array; (* cycles a processor's compute thread spent blocked
                       on request/reply round trips *)
  stats : Stats.t;
  mutable intervals : (int * int * int) list;
      (* busy intervals (proc, start, stop), newest first, when recording *)
  mutable record_intervals : bool;
}

let create cfg =
  let n = cfg.Olden_config.nprocs in
  {
    cfg;
    clock = Array.make n 0;
    handler_free = Array.make n 0;
    busy = Array.make n 0;
    comm = Array.make n 0;
    stats = Stats.create ();
    intervals = [];
    record_intervals = false;
  }

let set_record_intervals t flag = t.record_intervals <- flag
let busy_intervals t = List.rev t.intervals

let nprocs t = t.cfg.Olden_config.nprocs
let costs t = t.cfg.Olden_config.costs
let stats t = t.stats
let now t proc = t.clock.(proc)

(* Charge [cycles] of computation on [proc]. *)
let advance t proc cycles =
  if cycles < 0 then invalid_arg "Machine.advance: negative cost";
  let start = t.clock.(proc) in
  t.clock.(proc) <- start + cycles;
  t.busy.(proc) <- t.busy.(proc) + cycles;
  if t.record_intervals && cycles > 0 then
    t.intervals <- (proc, start, start + cycles) :: t.intervals

(* Move a processor's clock forward to [time] (idle waiting, e.g. a thread
   arriving at a processor that has nothing else to do). *)
let wait_until t proc time =
  if time > t.clock.(proc) then t.clock.(proc) <- time

(* A request/reply round trip from [src] to the handler of [dst].  The
   requester blocks; the reply arrives after network latency both ways plus
   handler service, plus any queueing if the handler is busy.  Returns the
   reply arrival time and advances the requester's clock to it. *)
let request_reply t ~src ~dst ~service =
  let c = costs t in
  let arrive = t.clock.(src) + c.Olden_config.net_latency in
  let start =
    if t.cfg.Olden_config.handler_contention then
      max arrive t.handler_free.(dst)
    else arrive
  in
  t.handler_free.(dst) <- start + service;
  let reply = start + service + c.Olden_config.net_latency in
  t.stats.Stats.messages <- t.stats.Stats.messages + 2;
  t.comm.(src) <- t.comm.(src) + (reply - t.clock.(src));
  t.clock.(src) <- reply;
  reply

(* A one-way message whose effect is applied at the destination handler;
   the sender does not block.  Returns the time the handler finishes. *)
let one_way t ~src ~dst ~service =
  let c = costs t in
  let arrive = t.clock.(src) + c.Olden_config.net_latency in
  let start =
    if t.cfg.Olden_config.handler_contention then
      max arrive t.handler_free.(dst)
    else arrive
  in
  t.handler_free.(dst) <- start + service;
  t.stats.Stats.messages <- t.stats.Stats.messages + 1;
  start + service

let count_bytes t n = t.stats.Stats.bytes <- t.stats.Stats.bytes + n

(* Finishing time of the whole run. *)
let makespan t = Array.fold_left max 0 t.clock

let total_busy t = Array.fold_left ( + ) 0 t.busy

let utilization t =
  let span = makespan t in
  if span = 0 then 1.
  else float_of_int (total_busy t) /. float_of_int (span * nprocs t)

let pp ppf t =
  Format.fprintf ppf "@[<v>makespan=%d utilization=%.3f@,%a@]" (makespan t)
    (utilization t) Stats.pp t.stats

let busy_cycles t = Array.copy t.busy
let clocks t = Array.copy t.clock
let comm_cycles t = Array.copy t.comm

(* Per-processor idle time relative to the whole run: whatever part of
   the makespan was neither charged as computation nor spent blocked on a
   round trip.  By construction busy + comm + idle sums to
   [nprocs * makespan] exactly — the accounting identity the profiler's
   reconciliation line leans on. *)
let idle_cycles t =
  let span = makespan t in
  Array.init (nprocs t) (fun p -> span - t.busy.(p) - t.comm.(p))
