(** Deterministic splitmix64 PRNG.

    All workload generation draws from this so every simulation is
    reproducible from its seed, independent of the OCaml stdlib. *)

type t

val create : int -> t

val next_int64 : t -> int64

val int : t -> int -> int
(** Uniform in [\[0, bound)]. @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val split : t -> t
(** An independent stream (for per-processor generators). *)
