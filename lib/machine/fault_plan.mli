(** Deterministic fault injection for the simulated network.

    A fault plan turns an {!Olden_config.fault_spec} into per-message
    decisions: drop, delay, or duplicate a delivery attempt, or declare a
    destination handler down for a window of simulated time.  Every
    decision is a pure function of the schedule seed and the message's
    identity (sequence number, attempt, leg) drawn through {!Prng}, so a
    fault schedule is replayable bit-for-bit.

    The plan only decides; the retry/timeout protocol reacting to it
    lives in {!Machine} and the engine. *)

type klass =
  | Data  (** cache-line fetches, revalidations, stores, invalidations *)
  | Migration  (** forward thread-state transfer (honors [migrate_drop]) *)
  | Return  (** return-stub thread-state transfer *)
  | Recovery  (** warm-restart announcement from a crashed processor *)
  | Replica  (** write-through mirror of a home store to its backup *)

val klass_to_string : klass -> string

type leg =
  | Forward  (** the payload-carrying message *)
  | Ack  (** the reply / acknowledgement coming back *)

type decision = {
  dropped : bool;
  delay : int;  (** extra latency in cycles; 0 when not delayed *)
  duplicated : bool;
}

type t

val create : Olden_config.fault_spec -> Olden_config.retry_spec -> t

val spec : t -> Olden_config.fault_spec
val retry : t -> Olden_config.retry_spec

val fresh_seq : t -> int
(** Sequence number for one logical message; retransmissions reuse it
    (that is what makes the receive path's duplicate suppression work). *)

val decide : t -> klass:klass -> leg:leg -> seq:int -> attempt:int -> decision
(** The fate of delivery attempt [attempt] of message [seq].  A dropped
    attempt is neither delayed nor duplicated. *)

val handler_down : t -> proc:int -> time:int -> bool
(** Transient outages: is [proc]'s active-message handler down at
    [time]?  Constant within each [outage_cycles]-long window. *)

val crash_due : t -> proc:int -> time:int -> bool
(** Seeded crash schedule: does [proc] crash in the window containing
    [time]?  Constant within each [crash_cycles]-long window; the caller
    must fire at most one crash per positive window. *)

val failstop_due : t -> proc:int -> time:int -> bool
(** Seeded fail-stop schedule: does [proc] die for good in the window
    containing [time]?  Constant within each [failstop_cycles]-long
    window (independent of the crash schedule); the failover layer
    latches the death so a positive window fires at most once. *)

val retry_wait : t -> attempt:int -> int
(** Cycles a sender waits after losing [attempt] before retransmitting:
    [timeout * backoff^attempt], capped at [max_timeout].  The cap is
    applied inside the accumulation, so high attempt counts (up to
    [max_attempts]) can never overflow into a negative wait. *)
