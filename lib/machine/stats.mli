(** Counters accumulated over one simulated run.

    These feed Table 2 (migration and future counts) and Table 3
    (cacheable reads/writes, remote fractions, miss rates, pages cached)
    of the paper.  All fields are mutable; the runtime and cache layers
    update them in place. *)

type t = {
  mutable migrations : int;  (** computation migrations sent *)
  mutable returns : int;  (** return-stub migrations sent *)
  mutable futures : int;  (** futurecalls executed *)
  mutable touches : int;
  mutable steals : int;  (** continuations popped from work lists *)
  mutable local_refs : int;  (** local references through migrate sites *)
  mutable cacheable_reads : int;  (** reads at caching sites (any locality) *)
  mutable cacheable_reads_remote : int;
  mutable cacheable_writes : int;
  mutable cacheable_writes_remote : int;
  mutable cache_hits : int;
  mutable cache_misses : int;  (** line fetches *)
  mutable cache_flushes : int;  (** whole-cache invalidations (local scheme) *)
  mutable lines_invalidated : int;
  mutable invalidation_messages : int;
  mutable revalidations : int;  (** bilateral timestamp checks *)
  mutable pages_cached : int;  (** distinct page entries ever created *)
  mutable remote_allocs : int;
  mutable messages : int;
  mutable bytes : int;
  mutable write_track_cycles : int;  (** Appendix A write-tracking overhead *)
  mutable msg_drops : int;  (** delivery attempts lost (faults, incl. outages) *)
  mutable outage_drops : int;  (** subset of drops due to handler outages *)
  mutable msg_delays : int;  (** delivery attempts that arrived late *)
  mutable msg_duplicates : int;  (** duplicate deliveries observed at receivers *)
  mutable duplicates_suppressed : int;
      (** deliveries discarded by the sequence-number check — equals
          [msg_duplicates] when the idempotent receive path is correct *)
  mutable retries : int;  (** retransmission attempts *)
  mutable retry_cycles : int;  (** cycles spent waiting on retry timers *)
  mutable migration_fallbacks : int;
      (** migrations that gave up on a flaky home and degraded to caching *)
  mutable crashes : int;  (** processor crash-and-restart events *)
  mutable pages_lost_in_crash : int;
      (** live cached page entries wiped by crashes *)
  mutable recovery_messages : int;
      (** warm-restart announcements sent to homes (global scheme) *)
  mutable recovery_stall_cycles : int;
      (** cycles crash victims spent in the restart protocol *)
  mutable replica_messages : int;
      (** write-through mirrors sent to backup processors (replication) *)
  mutable failstops : int;  (** processors permanently lost (fail-stop) *)
  mutable pages_failed_over : int;
      (** home pages whose service moved to a promoted backup *)
  mutable failover_messages : int;
      (** failover announcements and re-replication traffic *)
  mutable threads_lost : int;
      (** unreplicated tasks lost with a fail-stopped processor *)
  mutable requests_admitted : int;
      (** open-loop serving requests injected into the event queue *)
  mutable requests_completed : int;
      (** injected serving requests that ran to completion *)
}

val create : unit -> t

val copy : t -> t
(** Snapshot, for phase-relative measurements. *)

val diff : t -> t -> t
(** [diff b a] is the counter-wise difference [b - a]. *)

val remote_read_fraction : t -> float
(** Fraction of cacheable reads that referenced remote memory (Table 3). *)

val remote_write_fraction : t -> float

val remote_miss_fraction : t -> float
(** Fraction of remote cacheable references that missed (Table 3's
    "% of remote references that miss"). *)

val fields : t -> (string * int) list
(** Every counter with its name, in declaration order. *)

val to_json : t -> Olden_trace.Json.t
(** All counters plus the derived fractions, as a stable JSON object
    (used by the metrics snapshots; see docs/OBSERVABILITY.md). *)

val pp : Format.formatter -> t -> unit
