(* Deterministic fault injection for the simulated network.

   The paper's runtime rides the CM-5's reliable active messages; this
   module removes that assumption.  A fault plan is a *seeded schedule*:
   every decision — drop this attempt, delay it, duplicate it, take this
   handler down for a window — is a pure function of the plan's seed and
   the message's identity (sequence number, attempt number, leg), drawn
   through the runtime's splitmix64 {!Prng}.  Nothing depends on host
   state or call order across messages, so a fault schedule replays
   bit-for-bit and two runs with the same seed see the same faults.

   The plan only *decides*; the retry/timeout protocol that reacts to the
   decisions lives in {!Machine} (request/reply and one-way messages) and
   the engine (thread-state transfers). *)

type klass =
  | Data (* cache-line fetches, revalidations, stores, invalidations *)
  | Migration (* forward thread-state transfer to a (possibly flaky) home *)
  | Return (* return-stub thread-state transfer back to the origin *)
  | Recovery (* warm-restart announcement from a crashed processor *)
  | Replica (* write-through mirror of a home store to its backup *)

let klass_to_string = function
  | Data -> "data"
  | Migration -> "migration"
  | Return -> "return"
  | Recovery -> "recovery"
  | Replica -> "replica"

type leg = Forward | Ack

type decision = {
  dropped : bool; (* the attempt vanished in the network *)
  delay : int; (* extra latency (0 when not delayed) *)
  duplicated : bool; (* the attempt was delivered twice *)
}

type t = {
  spec : Olden_config.fault_spec;
  retry : Olden_config.retry_spec;
  mutable next_seq : int; (* logical message sequence numbers *)
}

let create spec retry = { spec; retry; next_seq = 0 }

let spec t = t.spec
let retry t = t.retry

(* Allocate the sequence number carried by one logical message.  The
   scheduler is deterministic, so allocation order — and with it every
   per-message decision — is reproducible. *)
let fresh_seq t =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  seq

(* One independent splitmix64 stream per (message, attempt, leg): the
   stream key mixes the schedule seed with the message identity, so the
   decision is insensitive to what any other message drew. *)
let stream t ~seq ~attempt ~salt =
  Prng.create
    (t.spec.Olden_config.fault_seed
    lxor (seq * 0x9E3779B9)
    lxor (attempt * 0x85EBCA6B)
    lxor (salt * 0xC2B2AE3D))

let drop_probability t = function
  | Data -> t.spec.Olden_config.drop
  | Migration ->
      Option.value ~default:t.spec.Olden_config.drop
        t.spec.Olden_config.migrate_drop
  | Return -> t.spec.Olden_config.drop
  | Recovery -> t.spec.Olden_config.drop
  | Replica -> t.spec.Olden_config.drop

let decide t ~klass ~leg ~seq ~attempt =
  let salt = match leg with Forward -> 0x0f0e | Ack -> 0x0acc in
  let p = stream t ~seq ~attempt ~salt in
  (* fixed draw order: drop, delay, duplicate *)
  let dropped = Prng.float p < drop_probability t klass in
  let delayed = Prng.float p < t.spec.Olden_config.delay in
  let duplicated = Prng.float p < t.spec.Olden_config.duplicate in
  if dropped then { dropped = true; delay = 0; duplicated = false }
  else
    {
      dropped = false;
      delay = (if delayed then t.spec.Olden_config.delay_cycles else 0);
      duplicated;
    }

(* Transient handler outages: simulated time is divided into windows of
   [outage_cycles]; each (processor, window) pair is independently down
   with probability [outage].  Keyed by window index — not by PRNG call
   order — so every message attempt arriving in the same window agrees on
   whether the handler was up. *)
let handler_down t ~proc ~time =
  let s = t.spec in
  s.Olden_config.outage > 0.
  && s.Olden_config.outage_cycles > 0
  &&
  let window = time / s.Olden_config.outage_cycles in
  let p =
    stream t ~seq:(proc * 0x51ed) ~attempt:window ~salt:0x0d0c
  in
  Prng.float p < s.Olden_config.outage

(* Crash decisions mirror handler outages: time is divided into windows
   of [crash_cycles]; each (processor, window) pair independently crashes
   with probability [crash], keyed by the window index so the decision is
   insensitive to how often the engine polls.  The recovery layer tracks
   which windows already fired so one positive window means one crash. *)
let crash_due t ~proc ~time =
  let s = t.spec in
  s.Olden_config.crash > 0.
  && s.Olden_config.crash_cycles > 0
  &&
  let window = time / s.Olden_config.crash_cycles in
  let p = stream t ~seq:(proc * 0x51ed) ~attempt:window ~salt:0x0c4a in
  Prng.float p < s.Olden_config.crash

(* Fail-stop decisions use the same windowed keying as crashes, under a
   distinct salt so the two schedules draw independently.  A positive
   window kills the processor permanently; the failover layer latches the
   death so the window can only fire once. *)
let failstop_due t ~proc ~time =
  let s = t.spec in
  s.Olden_config.failstop > 0.
  && s.Olden_config.failstop_cycles > 0
  &&
  let window = time / s.Olden_config.failstop_cycles in
  let p = stream t ~seq:(proc * 0x51ed) ~attempt:window ~salt:0x0f57 in
  Prng.float p < s.Olden_config.failstop

(* Bounded exponential backoff: wait [timeout * backoff^attempt] cycles
   before retransmission [attempt + 1], capped at [max_timeout].  The
   accumulated wait is capped *inside* the loop: with max_attempts = 64,
   [timeout * backoff^attempt] overflows the host int long before the
   final [min] would apply, and a wrapped-negative wait would move clocks
   backwards. *)
let retry_wait t ~attempt =
  let r = t.retry in
  let cap = r.Olden_config.max_timeout in
  let rec go wait k =
    if k <= 0 || wait >= cap then wait
    else
      let next = wait * r.Olden_config.backoff in
      if next < wait then cap (* overflow wrapped; the cap dominates *)
      else go next (k - 1)
  in
  min (go r.Olden_config.timeout attempt) cap
