(** Home-side per-page bookkeeping (Appendix A).

    The local-knowledge scheme needs none of this.  The global scheme
    tracks sharers (recorded when the home services cache requests) so a
    releasing thread's written lines can be invalidated eagerly.  The
    bilateral scheme keeps a timestamp per page plus per-line write stamps
    so a revalidating sharer is told exactly which lines to drop. *)

type page = {
  mutable sharers : int;  (** bitmask of processors holding a copy (global) *)
  mutable ts : int;  (** current timestamp (bilateral) *)
  line_ts : int array;  (** per-line stamp of the last release-visible write *)
  mutable ever_shared : bool;  (** drives the 7-vs-23-cycle write-track cost *)
}

type t

val create :
  ?home:int -> ?clock:(unit -> int) -> ?track_registrations:bool -> unit -> t
(** [home] is the processor whose heap section this directory covers and
    [clock] its cycle clock; both only stamp the directory's trace
    events (defaults: [-1] and a clock stuck at 0, fine for tests).
    [track_registrations] additionally records when each sharer was
    registered, which the recovery checker's sharer-epoch invariant
    consumes (default off: it costs a hash write per registration). *)

val get : t -> int -> page
(** The record for a local page index, created on demand. *)

val add_sharer : ?at:int -> t -> page_index:int -> proc:int -> unit
(** Register [proc] as a sharer.  [at] stamps the registration time in
    the sharer's own clock domain (falls back to the home clock) when
    registration tracking is on. *)

val remove_sharer : t -> page_index:int -> proc:int -> unit

val sharer_mask : t -> int -> int
(** Current sharers as a bitmask (bit [p] = processor [p] holds a copy). *)

val registered_at : t -> page_index:int -> proc:int -> int
(** Time of [proc]'s latest registration as a sharer of [page_index];
    [0] when unknown or when registration tracking is off. *)

val prune_sharer : t -> proc:int -> int
(** Strike a crashed processor from every sharer mask; returns the
    number of pages it was pruned from. *)

val iter_pages : t -> (int -> page -> unit) -> unit
(** Iterate over every page record ever created, keyed by local page
    index (order unspecified). *)

val sharers : t -> int -> int list
(** The same set as a sorted list; derived from {!sharer_mask}. *)

val is_shared : t -> int -> bool
(** Whether the page was ever fetched by a remote processor. *)

val record_write : t -> page_index:int -> line:int -> unit
(** A write-through arrived: stamp the line with the next (unreleased)
    timestamp. *)

val bump_timestamp : t -> page_index:int -> unit
(** A release makes the logged writes visible. *)

val stale_lines : t -> page_index:int -> since:int -> int * int
(** [(mask, ts)]: lines written after timestamp [since], and the current
    timestamp — the home's answer to a bilateral revalidation. *)
