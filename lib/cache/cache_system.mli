(** The complete software-caching subsystem: one translation table per
    processor, one home directory per processor, and the paper's three
    coherence protocols wired to the machine's cost model.

    Reads and writes here are those the compiler assigned to the *caching*
    mechanism; migration-mechanism references never reach this module
    (except {!note_migrate_write}, which keeps coherence informed of heap
    writes made through migration sites). *)

type t

val create : Olden_config.t -> Machine.t -> Memory.t -> t

val table : t -> int -> Translation.t
(** A processor's translation table (exposed for tests and tools). *)

val directory : t -> int -> Directory.t
(** A home processor's page directory (exposed for the invariant checker
    and tools). *)

val read : t -> proc:int -> Gptr.t -> field:int -> Value.t
(** A read through the caching mechanism: locality test, then either a
    direct local load or a cache lookup with a line fetch on a miss.
    Charges all costs to the machine. *)

val write : t -> proc:int -> Gptr.t -> field:int -> Value.t ->
  log:Write_log.t -> unit
(** A write through the caching mechanism: write-through to the home
    (updating the writer's own cached copy if present), write-tracking
    costs under the global/bilateral schemes, and write-log recording. *)

val note_migrate_write : t -> proc:int -> Gptr.t -> field:int ->
  Value.t -> log:Write_log.t -> unit
(** Record a heap write made through a migration site: it is not counted
    as cacheable traffic, but coherence must still see it at the next
    release.  Takes the stored value so a promoted successor's own
    cached copy of an adopted page (made back when the page's home was
    remote to it) stays coherent — the release-time invalidation sweeps
    skip the writer itself. *)

(** {2 Coherence events} *)

val on_migration_received : t -> proc:int -> unit
(** An acquire: local scheme flushes the whole cache; bilateral marks all
    pages suspect; global does nothing. *)

val on_migration_sent : t -> proc:int -> log:Write_log.t -> unit
(** A release: global pushes line invalidations to sharers of the written
    pages; bilateral stamps the written pages at their homes; local does
    nothing.  Clears the log's dirty set. *)

val on_return_received : t -> proc:int -> log:Write_log.t -> unit
(** A thread (or future result) arrives back: the local scheme invalidates
    only lines homed at processors the thread wrote (the Section 3.2
    refinement; a full flush when the refinement is disabled); bilateral
    marks all pages suspect. *)

(** {2 Crash recovery} *)

val drop_processor_state : t -> proc:int -> int
(** A processor crash: wipe [proc]'s translation table, cached page
    frames, and suspicion epochs (O(1) via the generation and epoch
    counters).  Home pages are the write-through source of truth and
    survive.  Returns the number of live page entries lost. *)

val prune_crashed_sharer : t -> home:int -> proc:int -> int
(** A home processing a warm-restart announcement: strike the crashed
    processor from every sharer mask in [home]'s directory; returns the
    number of pages it was pruned from.  Only meaningful under the
    global scheme, harmless elsewhere. *)

val average_chain_length : t -> float
(** Mean translation-table chain length across processors. *)
