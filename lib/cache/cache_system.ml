(* The complete software-caching subsystem: one translation table per
   processor, one home directory per processor, and the three coherence
   protocols of the paper wired to the machine's cost model.

   Reads and writes here are those the compiler assigned to the *caching*
   mechanism; migration-mechanism references never reach this module. *)

module G = Olden_config.Geometry
module C = Olden_config
module Trace = Olden_trace.Trace

type t = {
  cfg : C.t;
  machine : Machine.t;
  memory : Memory.t;
  tables : Translation.t array;
  directories : Directory.t array;
}

let create cfg machine memory =
  let n = cfg.C.nprocs in
  {
    cfg;
    machine;
    memory;
    tables = Array.init n (fun _ -> Translation.create ());
    directories =
      Array.init n (fun home ->
          (* the home's clock stamps the directory's own trace events;
             registration times are tracked only under a fault schedule,
             for the recovery checker's sharer-epoch invariant.  The
             clock reads through the home map: after a fail-stop
             failover the directory is served by the promoted backup,
             so its stamps come from the successor's clock. *)
          Directory.create ~home
            ~clock:(fun () -> Machine.now machine (Machine.home_of machine home))
            ~track_registrations:(cfg.C.faults <> None) ());
  }

let table t proc = t.tables.(proc)
let directory t home = t.directories.(home)
let stats t = Machine.stats t.machine
let coherence t = t.cfg.C.coherence
let costs t = t.cfg.C.costs

(* Stamp an event with [proc]'s clock and the engine-deposited thread /
   site context.  Only ever called under a [Trace.is_on] guard. *)
let emit t ~proc kind =
  Trace.emit
    { Trace.time = Machine.now t.machine proc; proc; tid = Trace.thread ();
      site = Trace.site (); kind }

(* Locate (or allocate, on first touch) the cache entry on [proc] for the
   page containing word [addr] of processor [home]. *)
let entry_for t ~proc ~home ~addr =
  let gpage = (home lsl 16) lor G.page_of_word addr in
  let tbl = t.tables.(proc) in
  let e = Translation.probe tbl gpage in
  if e != Translation.no_entry then e
  else begin
    let s = stats t in
    s.Stats.pages_cached <- s.Stats.pages_cached + 1;
    Translation.insert tbl ~gpage ~home ~page_index:(G.page_of_word addr)
  end

(* Bilateral: a suspect page must be revalidated against its home before
   use; the home answers with the mask of lines written since the copy's
   timestamp. *)
let revalidate t ~proc (e : Translation.entry) =
  let c = costs t in
  ignore
    (Machine.request_reply t.machine ~src:proc ~dst:e.home
       ~service:c.C.timestamp_service);
  let mask, ts =
    Directory.stale_lines t.directories.(e.home) ~page_index:e.page_index
      ~since:e.ts
  in
  let dropped = Translation.invalidate_lines e mask in
  let s = stats t in
  s.Stats.revalidations <- s.Stats.revalidations + 1;
  s.Stats.lines_invalidated <- s.Stats.lines_invalidated + dropped;
  if Trace.is_on () then
    emit t ~proc
      (Trace.Revalidate { home = e.home; page = e.page_index; dropped });
  e.ts <- ts;
  Translation.clear_suspect t.tables.(proc) e

(* Fetch one line from the home into the local copy. *)
let fetch_line t ~proc (e : Translation.entry) ~line =
  let c = costs t in
  ignore
    (Machine.request_reply t.machine ~src:proc ~dst:e.home
       ~service:c.C.line_service);
  Machine.count_bytes t.machine G.line_bytes;
  let line_index = (e.page_index * G.lines_per_page) + line in
  (* zero-allocation fill: blit straight from the home section *)
  Memory.blit_line t.memory ~proc:e.home ~line_index ~dst:e.data
    ~dst_pos:(line * G.words_per_line);
  Translation.set_line_valid e line;
  (match coherence t with
  | C.Global ->
      (* [at]: the requester's clock (now past the reply), so the stamp
         is comparable with the requester's crash epoch *)
      Directory.add_sharer ~at:(Machine.now t.machine proc)
        t.directories.(e.home) ~page_index:e.page_index ~proc
  | C.Bilateral | C.Local ->
      (* sharers are not tracked, but sharedness drives write-track cost *)
      let p = Directory.get t.directories.(e.home) e.page_index in
      p.Directory.ever_shared <- true);
  let s = stats t in
  s.Stats.cache_misses <- s.Stats.cache_misses + 1;
  if Trace.is_on () then
    emit t ~proc
      (Trace.Cache_miss { home = e.home; page = e.page_index; line })

(* A read through the caching mechanism on [proc].  The compiler-inserted
   check tests locality first (as cheap as a migration site's test); only
   remote addresses pay the hash-table probe. *)
let read t ~proc gptr ~field =
  let c = costs t in
  Machine.advance t.machine proc c.C.pointer_test;
  let s = stats t in
  s.Stats.cacheable_reads <- s.Stats.cacheable_reads + 1;
  let home = Gptr.proc gptr and addr = Gptr.addr gptr + field in
  if home = proc then begin
    Machine.advance t.machine proc c.C.local_ref;
    Memory.load t.memory gptr field
  end
  else begin
    Machine.advance t.machine proc c.C.cache_probe;
    s.Stats.cacheable_reads_remote <- s.Stats.cacheable_reads_remote + 1;
    let e = entry_for t ~proc ~home ~addr in
    if Translation.is_suspect t.tables.(proc) e then revalidate t ~proc e;
    let line = G.line_of_word addr in
    if Translation.line_valid e line then begin
      s.Stats.cache_hits <- s.Stats.cache_hits + 1;
      if Trace.is_on () then
        emit t ~proc
          (Trace.Cache_hit { home; page = e.page_index; line })
    end
    else fetch_line t ~proc e ~line;
    Machine.advance t.machine proc c.C.local_ref;
    e.data.(G.word_offset_in_page addr)
  end

(* Primary–backup mirroring: when replication is configured, every store
   applied at a home page is also sent to the page's current backup as a
   [Replica]-class one-way message, so the backup's copy stays
   word-identical to the home's (what makes a fail-stop death of the
   home survivable).  The mirror is pure cost model — the host-level
   section array plays both roles — but the message rides the faulty
   network like any other traffic: drops retry under backoff, and an
   exhausted budget raises [Undeliverable] naming the [replica] class. *)
let mirror_store t ~proc ~home =
  match t.cfg.C.replication with
  | None -> ()
  | Some r ->
      let backup =
        Machine.backup_of t.machine ~stride:r.C.stride ~owner:home
      in
      if backup <> Machine.home_of t.machine home then begin
        let c = costs t in
        ignore
          (Machine.one_way ~klass:Fault_plan.Replica t.machine ~src:proc
             ~dst:backup ~service:c.C.store_service);
        Machine.count_bytes t.machine (G.word_bytes + 8);
        let s = stats t in
        s.Stats.replica_messages <- s.Stats.replica_messages + 1
      end

(* Write-tracking overhead charged by the compiler-inserted code under the
   global and bilateral schemes (Appendix A: 7 cycles for non-shared pages,
   23 for shared ones). *)
let charge_write_tracking t ~proc ~home ~page_index =
  match coherence t with
  | C.Local -> ()
  | C.Global | C.Bilateral ->
      let c = costs t in
      let cost =
        if Directory.is_shared t.directories.(home) page_index then
          c.C.write_track_shared
        else c.C.write_track_nonshared
      in
      Machine.advance t.machine proc cost;
      let s = stats t in
      s.Stats.write_track_cycles <- s.Stats.write_track_cycles + cost

(* A write through the caching mechanism: write-through to the home,
   updating the local copy if the line is cached.  The write is logged in
   the thread's write log for later release processing. *)
let write t ~proc gptr ~field v ~(log : Write_log.t) =
  let c = costs t in
  Machine.advance t.machine proc c.C.pointer_test;
  let s = stats t in
  s.Stats.cacheable_writes <- s.Stats.cacheable_writes + 1;
  let home = Gptr.proc gptr and addr = Gptr.addr gptr + field in
  let page_index = G.page_of_word addr and line = G.line_of_word addr in
  charge_write_tracking t ~proc ~home ~page_index;
  Memory.store t.memory gptr field v;
  let gpage = (home lsl 16) lor page_index in
  Write_log.record log ~gpage ~line ~home;
  (match coherence t with
  | C.Bilateral -> Directory.record_write t.directories.(home) ~page_index ~line
  | C.Global | C.Local -> ());
  if home = proc then begin
    Machine.advance t.machine proc c.C.local_ref;
    mirror_store t ~proc ~home
  end
  else begin
    Machine.advance t.machine proc c.C.cache_probe;
    s.Stats.cacheable_writes_remote <- s.Stats.cacheable_writes_remote + 1;
    (* write-through: a one-way store message; the writer does not block *)
    ignore (Machine.one_way t.machine ~src:proc ~dst:home ~service:c.C.store_service);
    Machine.advance t.machine proc c.C.local_ref;
    Machine.count_bytes t.machine (G.word_bytes + 8);
    mirror_store t ~proc ~home;
    (* keep our own cached copy coherent with our write *)
    let e = Translation.probe t.tables.(proc) ((home lsl 16) lor page_index) in
    if e != Translation.no_entry && Translation.line_valid e line then
      e.data.(G.word_offset_in_page addr) <- v
  end

(* Also used by migration-mechanism writes: coherence must still know about
   them (they are heap writes visible at a release), but they are not
   counted as cacheable. *)
let note_migrate_write t ~proc gptr ~field v ~(log : Write_log.t) =
  let home = Gptr.proc gptr and addr = Gptr.addr gptr + field in
  let page_index = G.page_of_word addr and line = G.line_of_word addr in
  charge_write_tracking t ~proc ~home ~page_index;
  let gpage = (home lsl 16) lor page_index in
  Write_log.record log ~gpage ~line ~home;
  mirror_store t ~proc ~home;
  (* after a failover the writer can be the promoted successor, serving
     [home]'s pages while still holding a cached copy it made back when
     the home was remote.  The release-time invalidation sweeps skip the
     writer itself (its copy is normally updated in place by [write]),
     so keep that copy coherent here the same way — on a healthy machine
     a migration-mechanism write always runs at the home ([home = proc])
     and this does nothing. *)
  if home <> proc then begin
    let e = Translation.probe t.tables.(proc) gpage in
    if e != Translation.no_entry && Translation.line_valid e line then
      e.data.(G.word_offset_in_page addr) <- v
  end;
  match coherence t with
  | C.Bilateral -> Directory.record_write t.directories.(home) ~page_index ~line
  | C.Global | C.Local -> ()

(* --- Coherence events ---------------------------------------------- *)

(* A migration arrives at [proc] (an acquire). *)
let on_migration_received t ~proc =
  let c = costs t in
  let s = stats t in
  match coherence t with
  | C.Local ->
      Machine.advance t.machine proc c.C.cache_flush;
      s.Stats.cache_flushes <- s.Stats.cache_flushes + 1;
      if Trace.is_on () then
        emit t ~proc
          (Trace.Cache_flush
             { entries = Translation.entry_count t.tables.(proc) });
      Translation.flush t.tables.(proc)
  | C.Bilateral ->
      Machine.advance t.machine proc c.C.cache_flush;
      if Trace.is_on () then emit t ~proc Trace.Suspect_all;
      Translation.mark_all_suspect t.tables.(proc)
  | C.Global -> ()

(* A migration leaves [proc] carrying thread state with write log [log]
   (a release). *)
let on_migration_sent t ~proc ~(log : Write_log.t) =
  let c = costs t in
  let s = stats t in
  (match coherence t with
  | C.Local -> ()
  | C.Global ->
      (* eager release consistency: invalidate the written lines at every
         sharer of each written page (sharer sets are bitmasks; no List.mem
         on the hot path) *)
      List.iter
        (fun (gpage, mask) ->
          let home = gpage lsr 16 and page_index = gpage land 0xffff in
          let sharers = Directory.sharer_mask t.directories.(home) page_index in
          let rec each sharer rest =
            if rest <> 0 then begin
              (if rest land 1 <> 0 && sharer <> proc then begin
                 ignore
                   (Machine.one_way t.machine ~src:proc ~dst:sharer
                      ~service:c.C.invalidate_line);
                 s.Stats.invalidation_messages <-
                   s.Stats.invalidation_messages + 1;
                 if Trace.is_on () then
                   emit t ~proc
                     (Trace.Inval_send { target = sharer; page = page_index });
                 let e = Translation.probe t.tables.(sharer) gpage in
                 if e != Translation.no_entry then begin
                   let dropped = Translation.invalidate_lines e mask in
                   s.Stats.lines_invalidated <-
                     s.Stats.lines_invalidated + dropped;
                   if Trace.is_on () then
                     emit t ~proc:sharer
                       (Trace.Inval_recv
                          { source = proc; page = page_index; dropped })
                 end
               end);
              each (sharer + 1) (rest lsr 1)
            end
          in
          each 0 sharers)
        (Write_log.dirty_pages log);
      Write_log.clear_dirty log
  | C.Bilateral ->
      (* stamp the written pages at their homes so revalidations notice *)
      List.iter
        (fun (gpage, _mask) ->
          let home = gpage lsr 16 and page_index = gpage land 0xffff in
          if home <> proc then begin
            ignore
              (Machine.one_way t.machine ~src:proc ~dst:home
                 ~service:c.C.invalidate_line);
            s.Stats.invalidation_messages <-
              s.Stats.invalidation_messages + 1;
            if Trace.is_on () then
              emit t ~proc (Trace.Inval_send { target = home; page = page_index })
          end;
          Directory.bump_timestamp t.directories.(home) ~page_index)
        (Write_log.dirty_pages log);
      Write_log.clear_dirty log)

(* A thread returns (return stub) to [proc]; under the local scheme's
   refinement only lines homed at processors the thread wrote need to go
   (Section 3.2). *)
let on_return_received t ~proc ~(log : Write_log.t) =
  let c = costs t in
  let s = stats t in
  match coherence t with
  | C.Local ->
      if t.cfg.C.return_invalidate_refinement then begin
        let written = Write_log.written_mask log in
        let dropped = Translation.invalidate_homes t.tables.(proc) written in
        Machine.advance t.machine proc
          (c.C.invalidate_line * C.popcount written);
        s.Stats.lines_invalidated <- s.Stats.lines_invalidated + dropped;
        if Trace.is_on () && written <> 0 then
          emit t ~proc
            (Trace.Inval_recv { source = -1; page = -1; dropped })
      end
      else begin
        Machine.advance t.machine proc c.C.cache_flush;
        s.Stats.cache_flushes <- s.Stats.cache_flushes + 1;
        if Trace.is_on () then
          emit t ~proc
            (Trace.Cache_flush
               { entries = Translation.entry_count t.tables.(proc) });
        Translation.flush t.tables.(proc)
      end
  | C.Bilateral ->
      Machine.advance t.machine proc c.C.cache_flush;
      if Trace.is_on () then emit t ~proc Trace.Suspect_all;
      Translation.mark_all_suspect t.tables.(proc)
  | C.Global -> ()

(* --- Crash recovery ------------------------------------------------- *)

(* A crash wipes [proc]'s volatile remote-access state: every cached page
   frame and translation entry goes, and the suspicion epoch advances so
   any entry a stale pointer could still reach reads as suspect.  Home
   pages (the write-through source of truth) are untouched.  Returns the
   number of live page entries lost. *)
let drop_processor_state t ~proc =
  let tbl = t.tables.(proc) in
  let lost = Translation.live_entries tbl in
  Translation.flush tbl;
  Translation.mark_all_suspect tbl;
  lost

(* A home learns that sharer [proc] crashed: strike it from every sharer
   mask so the global scheme stops sending it invalidations for copies it
   no longer holds.  Returns the number of pages pruned. *)
let prune_crashed_sharer t ~home ~proc =
  Directory.prune_sharer t.directories.(home) ~proc

let average_chain_length t =
  let n = Array.length t.tables in
  let sum =
    Array.fold_left (fun acc tbl -> acc +. Translation.average_chain_length tbl) 0. t.tables
  in
  sum /. float_of_int n
