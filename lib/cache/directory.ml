(* Home-side per-page bookkeeping.

   The local-knowledge scheme needs none of this.  The global scheme tracks
   sharers (recorded when the home services cache requests) so that a
   releasing thread's written lines can be invalidated eagerly.  The
   bilateral scheme keeps a timestamp per page, plus per-line write stamps
   so a revalidating sharer can be told exactly which lines to drop
   (Appendix A). *)

type page = {
  mutable sharers : int; (* bitmask of processors holding a copy (global) *)
  mutable ts : int; (* current timestamp (bilateral scheme) *)
  line_ts : int array; (* per-line stamp of the last release-visible write *)
  mutable ever_shared : bool; (* drives the 7-vs-23-cycle write-track cost *)
}

module Trace = Olden_trace.Trace

type t = {
  pages : (int, page) Hashtbl.t; (* local page index -> record *)
  home : int; (* which processor's heap section this directory covers *)
  clock : unit -> int; (* the home's cycle clock, for event stamps *)
  registered : (int * int, int) Hashtbl.t option;
      (* (page_index, proc) -> time of the latest sharer registration;
         kept only under a fault schedule, where the recovery checker
         needs to prove no mask names a processor past its crash epoch *)
}

(* Standalone directories (tests, tools) need no identity or clock; the
   cache system passes both so directory-side events carry real stamps. *)
let create ?(home = -1) ?(clock = fun () -> 0) ?(track_registrations = false)
    () =
  {
    pages = Hashtbl.create 64;
    home;
    clock;
    registered = (if track_registrations then Some (Hashtbl.create 64) else None);
  }

(* Home-side bookkeeping runs under the home's identity; thread and site
   context are whatever the engine last deposited. *)
let emit t kind =
  Trace.emit
    { Trace.time = t.clock (); proc = t.home; tid = Trace.thread ();
      site = Trace.site (); kind }

let get t page_index =
  match Hashtbl.find_opt t.pages page_index with
  | Some p -> p
  | None ->
      let p =
        {
          sharers = 0;
          ts = 0;
          line_ts = Array.make Olden_config.Geometry.lines_per_page 0;
          ever_shared = false;
        }
      in
      Hashtbl.add t.pages page_index p;
      p

let add_sharer ?at t ~page_index ~proc =
  let p = get t page_index in
  p.ever_shared <- true;
  p.sharers <- p.sharers lor (1 lsl proc);
  match t.registered with
  | None -> ()
  | Some reg ->
      (* stamp with the *sharer's* clock when the caller provides it: the
         recovery checker compares registration times against the
         sharer's crash epoch, and per-processor clocks are not mutually
         synchronized *)
      let time = match at with Some time -> time | None -> t.clock () in
      Hashtbl.replace reg (page_index, proc) time

let registered_at t ~page_index ~proc =
  match t.registered with
  | None -> 0
  | Some reg ->
      Option.value ~default:0 (Hashtbl.find_opt reg (page_index, proc))

(* A crashed sharer lost its copies: strike it from every mask.  Returns
   the number of pages it was pruned from (the invalidations the global
   scheme will no longer waste on it). *)
let prune_sharer t ~proc =
  let bit = 1 lsl proc in
  let pruned = ref 0 in
  Hashtbl.iter
    (fun _index p ->
      if p.sharers land bit <> 0 then begin
        p.sharers <- p.sharers land lnot bit;
        incr pruned
      end)
    t.pages;
  !pruned

let iter_pages t f = Hashtbl.iter f t.pages

let remove_sharer t ~page_index ~proc =
  match Hashtbl.find_opt t.pages page_index with
  | None -> ()
  | Some p -> p.sharers <- p.sharers land lnot (1 lsl proc)

let sharer_mask t page_index =
  match Hashtbl.find_opt t.pages page_index with
  | None -> 0
  | Some p -> p.sharers

let sharers t page_index =
  let rec go p mask acc =
    if mask = 0 then List.rev acc
    else if mask land 1 <> 0 then go (p + 1) (mask lsr 1) (p :: acc)
    else go (p + 1) (mask lsr 1) acc
  in
  go 0 (sharer_mask t page_index) []

let is_shared t page_index =
  match Hashtbl.find_opt t.pages page_index with
  | None -> false
  | Some p -> p.ever_shared

(* Record a write-through arriving at the home: stamp the line with the
   next (not yet released) timestamp so a reader validated at the current
   timestamp will be told to drop it. *)
let record_write t ~page_index ~line =
  let p = get t page_index in
  p.line_ts.(line) <- p.ts + 1;
  if Trace.is_on () then emit t (Trace.Dir_write { page = page_index; line })

(* A release (outgoing migration) makes the logged writes visible:
   advance the page timestamp past all pending stamps. *)
let bump_timestamp t ~page_index =
  let p = get t page_index in
  p.ts <- p.ts + 1;
  if Trace.is_on () then
    emit t (Trace.Dir_release { page = page_index; ts = p.ts })

(* Bilateral revalidation: given the sharer's last-validated timestamp,
   return the mask of lines written since then and the current timestamp. *)
let stale_lines t ~page_index ~since =
  match Hashtbl.find_opt t.pages page_index with
  | None -> (0, 0)
  | Some p ->
      let mask = ref 0 in
      Array.iteri
        (fun line ts -> if ts > since then mask := !mask lor (1 lsl line))
        p.line_ts;
      (!mask, p.ts)
