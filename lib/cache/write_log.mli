(** Per-thread record of heap writes, at line granularity.

    The global- and bilateral-knowledge coherence schemes consume the dirty
    set at each outgoing migration (a release); the local scheme's return
    refinement needs the set of processors whose memories the thread wrote
    (Section 3.2 of the paper). *)

type t

val create : unit -> t

val record : t -> gpage:int -> line:int -> home:int -> unit
(** Log one written line of global page [gpage] homed at [home]. *)

val dirty_pages : t -> (int * int) list
(** [(gpage, line bitmask)] pairs written since the last release. *)

val written_procs : t -> int list
(** Sorted distinct processors the thread has written — cumulative, never
    cleared (a thread "might have updated" them at any earlier point).
    Derived from {!written_mask}; prefer the mask on hot paths. *)

val written_mask : t -> int
(** The same set as an int bitmask (bit [p] = processor [p] written). *)

val is_empty : t -> bool
(** No dirty lines pending release. *)

val clear_dirty : t -> unit
(** Called after a release has pushed or stamped the logged writes. *)

val line_count : t -> int
(** Number of dirty lines pending. *)

val absorb_written_procs : t -> from:t -> unit
(** Acquiring another thread's result makes its writes part of this
    thread's causal past: merge the written-processor sets so a later
    release/return covers them too. *)
