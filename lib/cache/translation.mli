(** Olden's software-cache translation table (Figure 1 of the paper),
    rebuilt as an open-addressed, array-backed hash table for host speed.

    Each entry describes one cached remote 2 KB page: a tag identifying
    the global page, 32 per-line valid bits, and the local copy of the
    data.  The cache is fully associative and write-through; it grows
    with use (Olden uses all of local memory as cache) and is emptied
    only by coherence events.

    Host-speed machinery, none of it observable in simulated results: a
    one-entry last-translation memo (the real Olden runtime's TLB) in
    front of a linear-probing slot array, {!flush} and
    {!mark_all_suspect} in O(1) via generation/epoch counters, and an
    allocation-free {!probe} for the hit path. *)

type entry = {
  gpage : int;  (** global page id (the tag) *)
  home : int;  (** owning processor *)
  page_index : int;  (** page number within the home's section *)
  mutable valid : int;  (** bitmask over the 32 lines *)
  data : Value.t array;  (** local copy, words_per_page words *)
  mutable ts : int;  (** bilateral: home timestamp at last validation *)
  mutable egen : int;  (** internal: flush generation (see {!flush}) *)
  mutable vepoch : int;  (** internal: suspicion epoch at last validation *)
}

type t

val create : unit -> t

val no_entry : entry
(** The miss sentinel returned by {!probe}; compare with [==]. *)

val probe : t -> int -> entry
(** Allocation-free lookup by global page id: the live entry, or
    {!no_entry} if the page is not cached.  The hot path of every
    cacheable remote dereference. *)

val find : t -> int -> entry option
(** Option-returning wrapper over {!probe}, for tests and tools. *)

val insert : t -> gpage:int -> home:int -> page_index:int -> entry
(** Allocate a fully-invalid entry (page-granularity allocation on first
    miss, as in Blizzard-S).  The page must not already be present — the
    caller probes first; a duplicate insert would shadow the live
    entry. *)

val line_valid : entry -> int -> bool
val set_line_valid : entry -> int -> unit
val invalidate_line : entry -> int -> unit

val invalidate_lines : entry -> int -> int
(** Invalidate the lines in a bitmask; returns how many were valid. *)

val is_suspect : t -> entry -> bool
(** Bilateral: must this entry revalidate against its home before use? *)

val clear_suspect : t -> entry -> unit
(** Mark the entry validated at the current suspicion epoch. *)

val flush : t -> unit
(** Drop every entry: the local-knowledge scheme's wholesale invalidation
    on migration receipt.  O(1) — bumps the table's generation; stale
    slots are reused by later inserts. *)

val mark_all_suspect : t -> unit
(** Bilateral scheme, on migration receipt: every page misses on its
    first access and revalidates against its home.  O(1) — bumps the
    suspicion epoch. *)

val invalidate_homes : t -> int -> int
(** [invalidate_homes t procs] invalidates every line homed at a
    processor whose bit is set in the [procs] bitmask (the local scheme's
    return refinement); returns the number of lines dropped. *)

val iter : t -> (entry -> unit) -> unit
(** Iterate the live (current-generation) entries, in slot order. *)

val live_entries : t -> int
(** Entries currently cached — what a coherence flush drops.  O(1).
    This is what [Trace.Cache_flush]'s [entries] field reports. *)

val entries_ever : t -> int
(** Entries ever created, cumulative across flushes — the allocation
    pressure the table has seen.  Distinct from {!live_entries}: a flush
    resets the live population but not this counter. *)

val entry_count : t -> int
(** Alias for {!live_entries}, kept for existing callers. *)

val average_chain_length : t -> float
(** Mean linear-probe sequence length over live entries (1.0 = every
    entry in its home slot) — the open-addressed analogue of the paper's
    bucket-chain statistic, reported there as about one in practice. *)
