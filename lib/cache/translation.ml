(* Olden's software cache translation table (Figure 1), rebuilt for host
   speed.

   The original implementation mirrored the paper's structure literally: a
   1024-bucket hash table of entry *lists*.  That put a cons cell, a list
   walk, and an option allocation on every dereference the simulator
   models.  This version keeps the same observable semantics (same
   entries, same valid bits, same counters) on an open-addressed,
   array-backed table:

   - linear probing over a power-of-two slot array, no tombstones: the
     only deletion is the wholesale [flush], done by bumping a generation
     counter, so a stale slot is exactly as free as a never-used one;
   - a one-entry last-translation memo (the real Olden runtime's
     single-entry TLB): repeated hits to the same page skip the probe;
   - [mark_all_suspect] bumps a suspicion epoch instead of walking every
     entry; an entry is suspect when its last-validated epoch is behind;
   - the common-case [probe] returns the entry itself (or the [no_entry]
     sentinel), so a cache hit allocates nothing.

   Each entry still describes one cached 2 KB remote page: a tag
   identifying the global page, 32 per-line valid bits, and the local
   copy of the data.  The cache is fully associative and write-through;
   it grows with use and is only emptied by coherence events, mirroring
   Olden's use of all local memory as cache. *)

module G = Olden_config.Geometry

type entry = {
  gpage : int; (* global page id (tag) *)
  home : int; (* owning processor *)
  page_index : int; (* page number within the home's section *)
  mutable valid : int; (* bitmask over the 32 lines *)
  data : Value.t array; (* local copy, words_per_page words *)
  mutable ts : int; (* bilateral: home timestamp at last validation *)
  mutable egen : int; (* internal: flush generation this entry belongs to *)
  mutable vepoch : int; (* internal: suspicion epoch at last validation *)
}

(* The miss sentinel: [egen = -1] never equals a live generation, so the
   probe loop needs no separate emptiness test for it. *)
let no_entry =
  {
    gpage = -1;
    home = -1;
    page_index = -1;
    valid = 0;
    data = [||];
    ts = 0;
    egen = -1;
    vepoch = 0;
  }

type t = {
  mutable slots : entry array; (* power-of-two sized, holds [no_entry] too *)
  mutable mask : int; (* capacity - 1 *)
  mutable gen : int; (* current flush generation; a slot whose entry has
                        an older [egen] is free *)
  mutable sepoch : int; (* suspicion epoch: entries validated earlier are
                           suspect (bilateral scheme) *)
  mutable live : int; (* entries of the current generation *)
  mutable ever : int; (* entries ever created, across flushes *)
  mutable lookups : int;
  mutable memo : entry; (* last translation: the one-entry TLB *)
}

let create () =
  {
    slots = Array.make G.hash_buckets no_entry;
    mask = G.hash_buckets - 1;
    gen = 0;
    sepoch = 0;
    live = 0;
    ever = 0;
    lookups = 0;
    memo = no_entry;
  }

(* Global page ids are [home lsl 16 lor page_index]: several processors'
   dense page ranges, which any mask-the-low-bits hash would pile into one
   small slot window (fatal for linear probing — primary clustering).  A
   multiplicative mix (Knuth's golden-ratio constant, sized to OCaml's
   63-bit int) spreads them across the whole table first. *)
let home_slot t gpage =
  let h = gpage * 0x3C79AC492BA7B653 in
  (h lsr 24) land t.mask

(* The hot path: find the live entry for [gpage], or [no_entry] (test
   with [==]).  Zero allocation; the memo skips even the probe when the
   same page is touched twice in a row. *)
let probe t gpage =
  t.lookups <- t.lookups + 1;
  let m = t.memo in
  if m.gpage = gpage && m.egen = t.gen then m
  else begin
    let slots = t.slots and mask = t.mask and gen = t.gen in
    let rec go i =
      let e = Array.unsafe_get slots i in
      if e.egen <> gen then no_entry
      else if e.gpage = gpage then begin
        t.memo <- e;
        e
      end
      else go ((i + 1) land mask)
    in
    go (home_slot t gpage)
  end

let find t gpage =
  let e = probe t gpage in
  if e == no_entry then None else Some e

(* Double the table, keeping only live entries (stale generations are
   dropped, which also shortens future probe sequences). *)
let grow t =
  let old = t.slots in
  let cap = 2 * Array.length old in
  t.slots <- Array.make cap no_entry;
  t.mask <- cap - 1;
  Array.iter
    (fun e ->
      if e.egen = t.gen then begin
        let rec place i =
          if t.slots.(i) == no_entry then t.slots.(i) <- e
          else place ((i + 1) land t.mask)
        in
        place (home_slot t e.gpage)
      end)
    old

(* Allocate a (fully invalid) entry for [gpage]; performed at page
   granularity on the first miss to the page, as in Blizzard-S.  The
   caller must have probed first: inserting an already-present page
   would shadow the live entry. *)
let insert t ~gpage ~home ~page_index =
  if 2 * (t.live + 1) > Array.length t.slots then grow t;
  let e =
    {
      gpage;
      home;
      page_index;
      valid = 0;
      data = Array.make G.words_per_page Value.Nil;
      ts = 0;
      egen = t.gen;
      vepoch = t.sepoch;
    }
  in
  let mask = t.mask and gen = t.gen in
  let rec place i =
    if t.slots.(i).egen <> gen then t.slots.(i) <- e
    else place ((i + 1) land mask)
  in
  place (home_slot t gpage);
  t.live <- t.live + 1;
  t.ever <- t.ever + 1;
  t.memo <- e;
  e

let line_valid e line = e.valid land (1 lsl line) <> 0
let set_line_valid e line = e.valid <- e.valid lor (1 lsl line)
let invalidate_line e line = e.valid <- e.valid land lnot (1 lsl line)

let invalidate_lines e mask =
  let before = e.valid in
  e.valid <- e.valid land lnot mask;
  (* number of lines actually invalidated *)
  Olden_config.popcount (before land mask)

(* Bilateral suspicion is epoch-based: [mark_all_suspect] advances the
   table's epoch in O(1); an entry validated at an older epoch must
   revalidate before its next use. *)
let is_suspect t e = e.vepoch <> t.sepoch
let clear_suspect t e = e.vepoch <- t.sepoch

let mark_all_suspect t = t.sepoch <- t.sepoch + 1

(* Local-knowledge scheme: clear the whole cache on migration receipt.
   A generation bump frees every slot at once; entries are re-allocated
   on next use.  [entries_ever] keeps counting across flushes. *)
let flush t =
  t.gen <- t.gen + 1;
  t.live <- 0;
  t.memo <- no_entry

let live_entries t = t.live
let entries_ever t = t.ever
let entry_count t = t.live

let iter t f =
  Array.iter (fun e -> if e.egen = t.gen then f e) t.slots

(* Invalidate every line whose home processor is in the [procs] bitmask
   (the local scheme's return refinement). Returns the number of lines
   invalidated. *)
let invalidate_homes t procs =
  let count = ref 0 in
  iter t (fun e ->
      if procs land (1 lsl e.home) <> 0 then begin
        count := !count + Olden_config.popcount e.valid;
        e.valid <- 0
      end);
  !count

(* Mean linear-probe sequence length over live entries (1.0 = every entry
   in its home slot) — the open-addressed analogue of the paper's
   bucket-chain statistic, which it reports as about one in practice. *)
let average_chain_length t =
  let total = ref 0 and n = ref 0 in
  Array.iteri
    (fun i e ->
      if e.egen = t.gen then begin
        incr n;
        let cap = Array.length t.slots in
        total := !total + ((i - home_slot t e.gpage + cap) land (cap - 1)) + 1
      end)
    t.slots;
  if !n = 0 then 0. else float_of_int !total /. float_of_int !n
