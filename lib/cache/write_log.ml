(* Per-thread record of heap writes, kept at line granularity.

   The global- and bilateral-knowledge coherence schemes need to know, at
   each outgoing migration (a "release"), which lines the thread wrote; the
   local scheme's return refinement needs the set of processors whose
   memories the thread wrote (Section 3.2).

   [record] runs on every cacheable (and migration-mechanism) write, so it
   is hot: the dirty set is a hashtable of mutable line-mask cells with a
   one-page memo in front — consecutive writes to the same page (the
   common case) update one cell without touching the table — and the
   written-processor set is an int bitmask, not a list. *)

type t = {
  dirty : (int, int ref) Hashtbl.t; (* global page id -> bitmask of lines *)
  mutable written : int; (* bitmask of processors written, cumulative *)
  mutable memo_gpage : int; (* last page written; min_int = no memo *)
  mutable memo_cell : int ref; (* its mask cell *)
}

let create () =
  {
    dirty = Hashtbl.create 16;
    written = 0;
    memo_gpage = min_int;
    memo_cell = ref 0;
  }

(* Written-processor masks live in one OCaml int. *)
let max_procs = Sys.int_size - 1

let record t ~gpage ~line ~home =
  if home < 0 || home >= max_procs then
    invalid_arg (Printf.sprintf "Write_log.record: processor %d out of range" home);
  let bit = 1 lsl line in
  if t.memo_gpage = gpage then t.memo_cell := !(t.memo_cell) lor bit
  else begin
    (match Hashtbl.find_opt t.dirty gpage with
    | Some cell ->
        cell := !cell lor bit;
        t.memo_cell <- cell
    | None ->
        let cell = ref bit in
        Hashtbl.add t.dirty gpage cell;
        t.memo_cell <- cell);
    t.memo_gpage <- gpage
  end;
  t.written <- t.written lor (1 lsl home)

(* Sorted extraction keeps release processing deterministic (the order
   coherence messages are issued in) regardless of hashtable internals. *)
let dirty_pages t =
  Hashtbl.fold (fun gpage cell acc -> (gpage, !cell) :: acc) t.dirty []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let written_mask t = t.written

let written_procs t =
  let rec go p mask acc =
    if mask = 0 then List.rev acc
    else if mask land 1 <> 0 then go (p + 1) (mask lsr 1) (p :: acc)
    else go (p + 1) (mask lsr 1) acc
  in
  go 0 t.written []

let is_empty t = Hashtbl.length t.dirty = 0

(* Called after a release has pushed/stamped the logged writes. *)
let clear_dirty t =
  Hashtbl.reset t.dirty;
  t.memo_gpage <- min_int

let line_count t =
  Hashtbl.fold
    (fun _ cell acc -> acc + Olden_config.popcount !cell)
    t.dirty 0

(* Acquiring another thread's result makes its writes part of what this
   thread "has written" for later release/return invalidation purposes
   (transitive causality through future touches). *)
let absorb_written_procs t ~from = t.written <- t.written lor from.written
