(* Heap layer: global pointers, values, per-processor memories, geometry. *)

open Olden
module G = Config.Geometry

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* --- Gptr --------------------------------------------------------------- *)

let test_gptr_roundtrip () =
  List.iter
    (fun (proc, addr) ->
      let p = Gptr.make ~proc ~addr in
      check int "proc" proc (Gptr.proc p);
      check int "addr" addr (Gptr.addr p);
      check bool "not null" false (Gptr.is_null p))
    [ (0, 0); (0, 1); (31, 0); (31, Gptr.max_addr); (511, 12345); (1, 511) ]

let test_gptr_null () =
  check bool "null is null" true (Gptr.is_null Gptr.null);
  Alcotest.check_raises "proc of null" (Invalid_argument "Gptr.proc: null pointer")
    (fun () -> ignore (Gptr.proc Gptr.null));
  (* proc 0 / addr 0 must be distinguishable from null *)
  check bool "zero pointer is not null" false
    (Gptr.is_null (Gptr.make ~proc:0 ~addr:0))

let test_gptr_offset () =
  let p = Gptr.make ~proc:3 ~addr:100 in
  let q = Gptr.offset p 28 in
  check int "offset proc" 3 (Gptr.proc q);
  check int "offset addr" 128 (Gptr.addr q)

let test_gptr_bounds () =
  Alcotest.check_raises "negative proc"
    (Invalid_argument "Gptr.make: processor -1 out of range") (fun () ->
      ignore (Gptr.make ~proc:(-1) ~addr:0));
  Alcotest.check_raises "huge addr"
    (Invalid_argument
       (Printf.sprintf "Gptr.make: address %d out of range" (Gptr.max_addr + 1)))
    (fun () -> ignore (Gptr.make ~proc:0 ~addr:(Gptr.max_addr + 1)))

let prop_gptr_roundtrip =
  QCheck.Test.make ~name:"gptr encode/decode roundtrip" ~count:500
    QCheck.(pair (int_bound (Gptr.max_procs - 1)) (int_bound Gptr.max_addr))
    (fun (proc, addr) ->
      let p = Gptr.make ~proc ~addr in
      Gptr.proc p = proc && Gptr.addr p = addr && not (Gptr.is_null p))

let prop_gptr_equal_iff_same =
  QCheck.Test.make ~name:"gptr equality is structural" ~count:500
    QCheck.(
      quad (int_bound 63) (int_bound 4095) (int_bound 63) (int_bound 4095))
    (fun (p1, a1, p2, a2) ->
      let x = Gptr.make ~proc:p1 ~addr:a1 and y = Gptr.make ~proc:p2 ~addr:a2 in
      Gptr.equal x y = (p1 = p2 && a1 = a2))

(* --- Value --------------------------------------------------------------- *)

let test_value_accessors () =
  check int "to_int" 42 (Value.to_int (Value.Int 42));
  check (Alcotest.float 0.) "to_float of int" 3. (Value.to_float (Value.Int 3));
  check bool "nil to_ptr is null" true (Gptr.is_null (Value.to_ptr Value.Nil));
  check bool "bool roundtrip" true (Value.to_bool (Value.of_bool true));
  check bool "equal" true (Value.equal (Value.Float 1.5) (Value.Float 1.5));
  check bool "distinct constructors differ" false
    (Value.equal (Value.Int 0) Value.Nil)

let test_value_errors () =
  Alcotest.check_raises "int of ptr"
    (Invalid_argument "Value.to_int: <1,2>") (fun () ->
      ignore (Value.to_int (Value.Ptr (Gptr.make ~proc:1 ~addr:2))))

(* --- Memory -------------------------------------------------------------- *)

let test_memory_alloc_store_load () =
  let m = Memory.create ~nprocs:4 in
  let a = Memory.alloc m ~proc:2 3 in
  check int "owner" 2 (Gptr.proc a);
  Memory.store m a 0 (Value.Int 7);
  Memory.store m a 2 (Value.Ptr a);
  check bool "load word 0" true (Value.equal (Value.Int 7) (Memory.load m a 0));
  check bool "load word 1 default nil" true
    (Value.equal Value.Nil (Memory.load m a 1));
  check bool "load word 2" true (Value.equal (Value.Ptr a) (Memory.load m a 2))

let test_memory_bump_allocation () =
  let m = Memory.create ~nprocs:2 in
  let a = Memory.alloc m ~proc:0 4 in
  let b = Memory.alloc m ~proc:0 4 in
  let c = Memory.alloc m ~proc:1 4 in
  check int "sequential addresses" (Gptr.addr a + 4) (Gptr.addr b);
  check int "independent sections" 0 (Gptr.addr c);
  check int "words used" 8 (Memory.words_used m 0)

let test_memory_bounds () =
  let m = Memory.create ~nprocs:2 in
  let a = Memory.alloc m ~proc:0 2 in
  Alcotest.check_raises "out of range"
    (Invalid_argument
       (Printf.sprintf "Memory: %s+2: address out of allocated range"
          (Gptr.to_string a)))
    (fun () -> ignore (Memory.load m a 2))

let test_memory_growth () =
  let m = Memory.create ~nprocs:1 in
  (* force several section doublings *)
  let last = ref Gptr.null in
  for _ = 1 to 10000 do
    last := Memory.alloc m ~proc:0 3
  done;
  Memory.store m !last 2 (Value.Int 99);
  check int "value survives growth" 99 (Value.to_int (Memory.load m !last 2))

let test_read_line () =
  let m = Memory.create ~nprocs:1 in
  let a = Memory.alloc m ~proc:0 G.words_per_line in
  for i = 0 to G.words_per_line - 1 do
    Memory.store m a i (Value.Int i)
  done;
  let line = Memory.read_line m ~proc:0 ~line_index:0 in
  check int "line width" G.words_per_line (Array.length line);
  Array.iteri (fun i v -> check int "line word" i (Value.to_int v)) line;
  (* a line past the bump pointer reads as Nil *)
  let beyond = Memory.read_line m ~proc:0 ~line_index:5 in
  Array.iter (fun v -> check bool "nil" true (Value.equal Value.Nil v)) beyond

(* --- Geometry ------------------------------------------------------------ *)

let test_geometry () =
  check int "words per line" 16 G.words_per_line;
  check int "words per page" 512 G.words_per_page;
  check int "lines per page" 32 G.lines_per_page;
  check int "hash buckets" 1024 G.hash_buckets;
  check int "page of word" 2 (G.page_of_word 1025);
  check int "line of word within page" 0 (G.line_of_word 1025);
  check int "line of word" 31 (G.line_of_word ((512 * 7) + 511));
  check int "word offset in page" 1 (G.word_offset_in_page 1025)

let prop_geometry_consistent =
  QCheck.Test.make ~name:"page/line arithmetic consistent" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun w ->
      let page = G.page_of_word w
      and line = G.line_of_word w
      and off = G.word_offset_in_page w in
      (page * G.words_per_page) + off = w
      && line = off / G.words_per_line
      && G.line_index_of_word w = (page * G.lines_per_page) + line)

let suite =
  [
    Alcotest.test_case "gptr roundtrip" `Quick test_gptr_roundtrip;
    Alcotest.test_case "gptr null" `Quick test_gptr_null;
    Alcotest.test_case "gptr offset" `Quick test_gptr_offset;
    Alcotest.test_case "gptr bounds" `Quick test_gptr_bounds;
    QCheck_alcotest.to_alcotest prop_gptr_roundtrip;
    QCheck_alcotest.to_alcotest prop_gptr_equal_iff_same;
    Alcotest.test_case "value accessors" `Quick test_value_accessors;
    Alcotest.test_case "value errors" `Quick test_value_errors;
    Alcotest.test_case "memory alloc/store/load" `Quick
      test_memory_alloc_store_load;
    Alcotest.test_case "memory bump allocation" `Quick
      test_memory_bump_allocation;
    Alcotest.test_case "memory bounds" `Quick test_memory_bounds;
    Alcotest.test_case "memory growth" `Quick test_memory_growth;
    Alcotest.test_case "read_line" `Quick test_read_line;
    Alcotest.test_case "geometry" `Quick test_geometry;
    QCheck_alcotest.to_alcotest prop_geometry_consistent;
  ]
