(* The runtime engine: migration, return stubs, futures, touch, future
   stealing, phases, policies, determinism. *)

open Olden

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let run ?(nprocs = 4) ?(policy = Config.Heuristic) ?(coherence = Config.Local)
    program =
  let cfg = Config.make ~nprocs ~policy ~coherence () in
  let engine = Engine.create cfg in
  Engine.exec engine program;
  engine

let test_work_charges_clock () =
  let engine = run (fun () -> Ops.work 123) in
  check int "makespan" 123 (Engine.report engine).Engine.makespan

let test_self_nprocs () =
  let seen = ref (-1, -1) in
  ignore (run ~nprocs:7 (fun () -> seen := (Ops.self (), Ops.nprocs ())));
  check bool "starts on processor 0 of 7" true (!seen = (0, 7))

let test_local_load_store () =
  let site = Site.migrate "t.f" in
  let engine =
    run (fun () ->
        let a = Ops.alloc ~proc:0 2 in
        Ops.store_int site a 0 5;
        assert (Ops.load_int site a 0 = 5))
  in
  check int "no migrations" 0 (Engine.report engine).Engine.stats.Stats.migrations

let test_migration_on_remote_deref () =
  let site = Site.migrate "t.f" in
  let where = ref (-1) in
  let engine =
    run (fun () ->
        let a = Ops.alloc ~proc:2 2 in
        Ops.store_int site a 0 5 (* migrates to 2 *);
        where := Ops.self ())
  in
  check int "thread moved to the owner" 2 !where;
  check int "one migration" 1 (Engine.report engine).Engine.stats.Stats.migrations

let test_return_stub () =
  let site = Site.migrate "t.f" in
  let where = ref (-1) in
  let engine =
    run (fun () ->
        let a = Ops.alloc ~proc:3 2 in
        let v = Ops.call (fun () -> Ops.store_int site a 0 1; 42) in
        assert (v = 42);
        where := Ops.self ())
  in
  check int "returned to the caller's processor" 0 !where;
  check int "one return" 1 (Engine.report engine).Engine.stats.Stats.returns

let test_call_without_migration_is_free () =
  let engine =
    run (fun () -> assert (Ops.call (fun () -> Ops.work 1; 9) = 9))
  in
  check int "no return message" 0 (Engine.report engine).Engine.stats.Stats.returns

let test_null_dereference_raises () =
  let site = Site.migrate "t.f" in
  Alcotest.check_raises "null deref"
    (Olden_runtime.Engine.Null_dereference "t.f") (fun () ->
      ignore (run (fun () -> ignore (Ops.load site Gptr.null 0))))

let test_future_no_migration_runs_inline () =
  (* body never migrates: no new thread, continuation popped locally *)
  let order = ref [] in
  let engine =
    run (fun () ->
        let f =
          Ops.future (fun () ->
              order := `Body :: !order;
              Value.Int 1)
        in
        order := `Parent :: !order;
        ignore (Ops.touch f))
  in
  check bool "body ran before the continuation" true
    (List.rev !order = [ `Body; `Parent ]);
  let stats = (Engine.report engine).Engine.stats in
  check int "a steal pops the saved continuation" 1 stats.Stats.steals;
  check int "no migration" 0 stats.Stats.migrations

let test_future_with_migration_steals () =
  (* body migrates away: the continuation is stolen and runs in parallel *)
  let site = Site.migrate "t.f" in
  let parent_proc = ref (-1) in
  let engine =
    run (fun () ->
        let a = Ops.alloc ~proc:1 2 in
        Ops.store_int site a 0 0 (* move the main thread to 1 first *);
        let b = Ops.alloc ~proc:2 2 in
        let f =
          Ops.future (fun () ->
              Ops.store_int site b 0 7 (* migrates to 2 *);
              Ops.work 10_000;
              Value.Int (Ops.load_int site b 0))
        in
        parent_proc := Ops.self () (* stolen continuation stays on 1 *);
        Ops.work 500;
        assert (Value.to_int (Ops.touch f) = 7))
  in
  check int "continuation stolen on the spawning processor" 1 !parent_proc;
  let stats = (Engine.report engine).Engine.stats in
  check bool "migrated" true (stats.Stats.migrations >= 1);
  check int "one future, one touch" 2 (stats.Stats.futures + stats.Stats.touches)

let test_touch_blocks_until_resolved () =
  let site = Site.migrate "t.f" in
  let v = ref 0 in
  ignore
    (run (fun () ->
         let b = Ops.alloc ~proc:3 2 in
         let f =
           Ops.future (fun () ->
               Ops.store_int site b 0 1;
               Ops.work 50_000;
               Value.Int 77)
         in
         v := Value.to_int (Ops.touch f)));
  check int "touch waited for the slow body" 77 !v

let test_parallelism_overlaps () =
  (* two long bodies on two remote processors: makespan ~ one body *)
  let site = Site.migrate "t.f" in
  let engine =
    run ~nprocs:4 (fun () ->
        let spawn proc =
          let a = Ops.alloc ~proc 2 in
          Ops.future (fun () ->
              Ops.store_int site a 0 1;
              Ops.work 100_000;
              Value.Int 0)
        in
        let f1 = spawn 1 in
        let f2 = spawn 2 in
        ignore (Ops.touch f1);
        ignore (Ops.touch f2))
  in
  let span = (Engine.report engine).Engine.makespan in
  check bool "both bodies overlapped" true (span < 150_000)

let test_deadlock_detection () =
  (* two futures that touch each other can never resolve; the engine must
     detect the drained-but-blocked state rather than hang *)
  let site = Site.migrate "t.f" in
  check bool "deadlock detected" true
    (match
       run (fun () ->
           let r = ref None in
           let f =
             Ops.future (fun () ->
                 let a = Ops.alloc ~proc:1 2 in
                 (* migrate away so the rest of this body runs after the
                    spawner has filled [r] *)
                 Ops.store_int site a 0 1;
                 match !r with
                 | Some g -> Ops.touch g
                 | None -> Value.Int 0)
           in
           let g = Ops.future (fun () -> Ops.touch f) in
           r := Some g;
           ignore (Ops.touch f))
     with
    | exception Olden_runtime.Engine.Deadlock _ -> true
    | _engine -> false)

let test_phase_barrier_and_interval () =
  let cfg = Config.make ~nprocs:2 () in
  let engine = Engine.create cfg in
  Engine.exec engine (fun () ->
      Ops.work 100;
      Ops.phase "kernel";
      Ops.work 50);
  let cycles, _stats = Engine.interval engine ~start:"kernel" ~stop:None in
  check int "kernel interval" 50 cycles;
  check int "total" 150 (Engine.report engine).Engine.makespan

let test_policy_override_migrate_only () =
  let site = Site.cache "t.f" in
  let engine =
    run ~policy:Config.Migrate_only (fun () ->
        let a = Ops.alloc ~proc:1 2 in
        Ops.store_int site a 0 3;
        ignore (Ops.load_int site a 0))
  in
  let stats = (Engine.report engine).Engine.stats in
  check bool "cache site forced to migrate" true (stats.Stats.migrations >= 1);
  check int "no cacheable accesses" 0 stats.Stats.cacheable_reads

let test_policy_override_cache_only () =
  let site = Site.migrate "t.f" in
  let engine =
    run ~policy:Config.Cache_only (fun () ->
        let a = Ops.alloc ~proc:1 2 in
        Ops.store_int site a 0 3;
        ignore (Ops.load_int site a 0))
  in
  let stats = (Engine.report engine).Engine.stats in
  check int "no migrations" 0 stats.Stats.migrations;
  check bool "cacheable accesses counted" true (stats.Stats.cacheable_reads >= 1)

let test_sequential_mode () =
  let cfg = Config.sequential_of (Config.make ~nprocs:32 ()) in
  let engine = Engine.create cfg in
  let site = Site.migrate "t.f" in
  Engine.exec engine (fun () ->
      let a = Ops.alloc ~proc:0 2 in
      Ops.store_int site a 0 1;
      let f = Ops.future (fun () -> Value.Int (Ops.load_int site a 0)) in
      assert (Value.to_int (Ops.touch f) = 1);
      Ops.work 10);
  let r = Engine.report engine in
  check int "one processor" 0 r.Engine.stats.Stats.migrations;
  (* no pointer-test or future overhead in the baseline *)
  check int "baseline cycles" (10 + 10 + 1 + 1) r.Engine.makespan

let test_determinism () =
  let program () =
    let site = Site.migrate "t.f" in
    let rec spawn depth proc =
      if depth = 0 then 1
      else begin
        let a = Ops.alloc ~proc 2 in
        Ops.store_int site a 0 depth;
        let f =
          Ops.future (fun () -> Value.Int (spawn (depth - 1) ((proc + 1) mod 4)))
        in
        let r = spawn (depth - 1) ((proc + 2) mod 4) in
        Value.to_int (Ops.touch f) + r
      end
    in
    ignore (Ops.call (fun () -> spawn 6 0))
  in
  let r1 = (Engine.report (run program)).Engine.makespan in
  let r2 = (Engine.report (run program)).Engine.makespan in
  check int "identical makespans" r1 r2

let test_remote_alloc_cost () =
  let engine =
    run (fun () ->
        ignore (Ops.alloc ~proc:0 4);
        ignore (Ops.alloc ~proc:2 4))
  in
  check int "remote alloc counted" 1
    (Engine.report engine).Engine.stats.Stats.remote_allocs

let prop_tree_sum_any_shape =
  (* a random tree distributed any way always sums correctly *)
  QCheck.Test.make ~name:"future tree sum is correct on any layout" ~count:60
    QCheck.(pair (int_range 1 6) (int_range 1 8))
    (fun (depth, nprocs) ->
      let site = Site.migrate "q.f" in
      let total = ref 0 in
      let cfg = Config.make ~nprocs () in
      let engine = Engine.create cfg in
      Engine.exec engine (fun () ->
          let prng = Prng.create ((depth * 131) + nprocs) in
          let rec build d =
            if d = 0 then (Gptr.null, 0)
            else begin
              let node = Ops.alloc ~proc:(Prng.int prng nprocs) 3 in
              let l, sl = build (d - 1) in
              let r, sr = build (d - 1) in
              let v = Prng.int prng 100 in
              Ops.store_ptr site node 0 l;
              Ops.store_ptr site node 1 r;
              Ops.store_int site node 2 v;
              (node, sl + sr + v)
            end
          in
          let root, expected = Ops.call (fun () -> build depth) in
          let rec sum t =
            if Gptr.is_null t then 0
            else begin
              let l = Ops.load_ptr site t 0 in
              let r = Ops.load_ptr site t 1 in
              let f = Ops.future (fun () -> Value.Int (sum l)) in
              let sr = Ops.call (fun () -> sum r) in
              Value.to_int (Ops.touch f) + sr + Ops.load_int site t 2
            end
          in
          total := Ops.call (fun () -> sum root) - expected);
      !total = 0)

let suite =
  [
    Alcotest.test_case "work charges the clock" `Quick test_work_charges_clock;
    Alcotest.test_case "self/nprocs" `Quick test_self_nprocs;
    Alcotest.test_case "local load/store" `Quick test_local_load_store;
    Alcotest.test_case "migration on remote deref" `Quick
      test_migration_on_remote_deref;
    Alcotest.test_case "return stub" `Quick test_return_stub;
    Alcotest.test_case "call without migration" `Quick
      test_call_without_migration_is_free;
    Alcotest.test_case "null dereference" `Quick test_null_dereference_raises;
    Alcotest.test_case "future runs inline" `Quick
      test_future_no_migration_runs_inline;
    Alcotest.test_case "future migration steals" `Quick
      test_future_with_migration_steals;
    Alcotest.test_case "touch blocks" `Quick test_touch_blocks_until_resolved;
    Alcotest.test_case "parallelism overlaps" `Quick test_parallelism_overlaps;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "phase barrier and interval" `Quick
      test_phase_barrier_and_interval;
    Alcotest.test_case "migrate-only override" `Quick
      test_policy_override_migrate_only;
    Alcotest.test_case "cache-only override" `Quick
      test_policy_override_cache_only;
    Alcotest.test_case "sequential mode" `Quick test_sequential_mode;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "remote alloc" `Quick test_remote_alloc_cost;
    QCheck_alcotest.to_alcotest prop_tree_sum_any_shape;
  ]
