test/test_olden.mli:
