test/test_benchmarks.ml: Alcotest Barneshut Breakeven Common Em3d Health List Listdist Mst Olden_benchmarks Olden_config Perimeter Power Printf Registry Stats Suite Tables Treeadd Voronoi
