test/test_machine.ml: Alcotest Array Config Gen List Machine Olden Olden_runtime QCheck QCheck_alcotest Stats
