test/test_engine.ml: Alcotest Config Engine Gptr List Olden Olden_runtime Ops Prng QCheck QCheck_alcotest Site Stats Value
