test/test_interp.ml: Alcotest Array Filename List Olden_compiler Olden_config Olden_interp Olden_runtime Printf QCheck QCheck_alcotest Stats String Sys Value
