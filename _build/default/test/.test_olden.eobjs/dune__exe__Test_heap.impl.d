test/test_heap.ml: Alcotest Array Config Gptr List Memory Olden Printf QCheck QCheck_alcotest Value
