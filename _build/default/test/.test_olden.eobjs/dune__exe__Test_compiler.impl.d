test/test_compiler.ml: Affinity Alcotest Analysis Ast Float Format Heuristic Lexer List Olden_benchmarks Olden_compiler Olden_config Parser QCheck QCheck_alcotest Typecheck
