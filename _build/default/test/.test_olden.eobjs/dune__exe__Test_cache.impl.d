test/test_cache.ml: Alcotest Array Cache_system Config Directory Gen List Machine Memory Olden Printf QCheck QCheck_alcotest Stats Translation Value Write_log
