test/test_coherence.ml: Array Config Engine List Olden Ops Printf QCheck QCheck_alcotest Site Value
