(* Coherence soundness: a properly synchronized program (threads only
   share data across future/touch and migration edges, as Olden's
   semantics guarantee) computes the same result under every coherence
   scheme, every mechanism policy, and any processor count — and that
   result equals the sequential one.  This is the Appendix A claim,
   exercised with randomized programs. *)

open Olden

(* A random "phased update" program, EM3D-like: two arrays of cells on
   random processors; in each phase, one side is recomputed from the other
   side through randomly chosen remote references; phases are separated by
   future/touch synchronization.  The result is a function of the program
   description only. *)

type program = {
  n : int;
  phases : int;
  owners_a : int array;
  owners_b : int array;
  nbrs : int array array; (* per phase per cell: the index read *)
  mechanisms : Config.mechanism array; (* per phase *)
}

let gen_program ~nprocs =
  QCheck.Gen.(
    let* n = 4 -- 24 in
    let* phases = 1 -- 5 in
    let* owners_a = array_size (return n) (int_bound (nprocs - 1)) in
    let* owners_b = array_size (return n) (int_bound (nprocs - 1)) in
    let* nbrs =
      array_size (return phases) (array_size (return n) (int_bound (n - 1)))
    in
    let* mechs =
      array_size (return phases)
        (map (fun b -> if b then Config.Migrate else Config.Cache) bool)
    in
    return { n; phases; owners_a; owners_b; nbrs; mechanisms = mechs })

let print_program p =
  Printf.sprintf "{n=%d phases=%d}" p.n p.phases

(* Reference result, pure OCaml.  Within a phase the parallel bodies read
   the other (frozen) side and write distinct cells of their own side, so a
   plain in-place loop matches any interleaving. *)
let reference p =
  let a = Array.init p.n (fun i -> i + 1) in
  let b = Array.init p.n (fun i -> (2 * i) + 1) in
  for ph = 0 to p.phases - 1 do
    let src, dst = if ph mod 2 = 0 then (b, a) else (a, b) in
    for i = 0 to p.n - 1 do
      dst.(i) <- dst.(i) + (3 * src.(p.nbrs.(ph).(i))) + ph
    done
  done;
  (Array.fold_left ( + ) 0 a * 31) + Array.fold_left ( + ) 0 b

(* The same computation on the simulated machine: each phase spawns one
   future per cell-group owner; each body updates its cells reading the
   other side through the phase's mechanism. *)
let simulate p ~nprocs ~coherence ~policy =
  let cfg = Config.make ~nprocs ~coherence ~policy () in
  let engine = Engine.create cfg in
  let result = ref 0 in
  Engine.exec engine (fun () ->
      let s_own = Site.migrate "coh.own" in
      let cells_a =
        Array.init p.n (fun i -> Ops.alloc ~proc:(p.owners_a.(i) mod nprocs) 1)
      in
      let cells_b =
        Array.init p.n (fun i -> Ops.alloc ~proc:(p.owners_b.(i) mod nprocs) 1)
      in
      Array.iteri (fun i c -> Ops.store_int s_own c 0 (i + 1)) cells_a;
      Array.iteri (fun i c -> Ops.store_int s_own c 0 ((2 * i) + 1)) cells_b;
      for ph = 0 to p.phases - 1 do
        let site =
          Site.make ~mech:p.mechanisms.(ph)
            (Printf.sprintf "coh.phase%d" ph)
        in
        let src, dst =
          if ph mod 2 = 0 then (cells_b, cells_a) else (cells_a, cells_b)
        in
        (* one future per cell: reads src.(nbr), updates dst.(i) *)
        let futs =
          Array.init p.n (fun i ->
              Ops.future (fun () ->
                  let v = Ops.load_int site src.(p.nbrs.(ph).(i)) 0 in
                  let d = Ops.load_int site dst.(i) 0 in
                  Ops.store_int site dst.(i) 0 (d + (3 * v) + ph);
                  Value.Int 0))
        in
        Array.iter (fun f -> ignore (Ops.touch f)) futs
      done;
      let sum arr =
        Array.fold_left (fun acc c -> acc + Ops.load_int s_own c 0) 0 arr
      in
      result := (sum cells_a * 31) + sum cells_b);
  !result

let arb_program = QCheck.make ~print:print_program (gen_program ~nprocs:6)

let coherence_test coherence policy =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "synchronized programs are sequentially consistent (%s, %s)"
         (Config.coherence_to_string coherence)
         (Config.policy_to_string policy))
    ~count:40 arb_program
    (fun p ->
      let expected = reference p in
      List.for_all
        (fun nprocs ->
          simulate p ~nprocs ~coherence ~policy = expected)
        [ 1; 3; 6 ])

let all_schemes_agree =
  QCheck.Test.make ~name:"all schemes and policies agree" ~count:25 arb_program
    (fun p ->
      let expected = reference p in
      List.for_all
        (fun coherence ->
          List.for_all
            (fun policy ->
              simulate p ~nprocs:5 ~coherence ~policy = expected)
            [ Config.Heuristic; Config.Migrate_only; Config.Cache_only ])
        [ Config.Local; Config.Global; Config.Bilateral ])

let suite =
  [
    QCheck_alcotest.to_alcotest (coherence_test Config.Local Config.Heuristic);
    QCheck_alcotest.to_alcotest (coherence_test Config.Global Config.Heuristic);
    QCheck_alcotest.to_alcotest
      (coherence_test Config.Bilateral Config.Heuristic);
    QCheck_alcotest.to_alcotest (coherence_test Config.Local Config.Cache_only);
    QCheck_alcotest.to_alcotest (coherence_test Config.Global Config.Cache_only);
    QCheck_alcotest.to_alcotest
      (coherence_test Config.Bilateral Config.Cache_only);
    QCheck_alcotest.to_alcotest all_schemes_agree;
  ]
