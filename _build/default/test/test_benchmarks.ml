(* The ten benchmarks: every one verifies against its reference at several
   processor counts and under every coherence scheme and policy; the
   Figure 2 counts are exact; speedup sanity holds. *)

open Olden_benchmarks
module C = Olden_config

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* Small scales so the whole suite stays fast. *)
let test_scale (s : Common.spec) =
  match s.Common.name with
  | "TreeAdd" -> 256
  | "Power" -> 8
  | "TSP" -> 32
  | "MST" -> 8
  | "Bisort" -> 128
  | "Voronoi" -> 64
  | "EM3D" -> 8
  | "Barnes-Hut" -> 16
  | "Perimeter" -> 16
  | "Health" -> 8
  | _ -> 16

let verify_case (s : Common.spec) ~nprocs ~coherence ~policy () =
  let cfg = C.make ~nprocs ~coherence ~policy () in
  let o = s.Common.run cfg ~scale:(test_scale s) in
  check bool
    (Printf.sprintf "%s verified (%s)" s.Common.name o.Common.checksum)
    true o.Common.ok

let verification_tests =
  List.concat_map
    (fun (s : Common.spec) ->
      [
        Alcotest.test_case
          (Printf.sprintf "%s: 1 proc" s.Common.name)
          `Quick
          (verify_case s ~nprocs:1 ~coherence:C.Local ~policy:C.Heuristic);
        Alcotest.test_case
          (Printf.sprintf "%s: 4 procs" s.Common.name)
          `Quick
          (verify_case s ~nprocs:4 ~coherence:C.Local ~policy:C.Heuristic);
        Alcotest.test_case
          (Printf.sprintf "%s: 32 procs" s.Common.name)
          `Quick
          (verify_case s ~nprocs:32 ~coherence:C.Local ~policy:C.Heuristic);
        Alcotest.test_case
          (Printf.sprintf "%s: global coherence" s.Common.name)
          `Quick
          (verify_case s ~nprocs:8 ~coherence:C.Global ~policy:C.Heuristic);
        Alcotest.test_case
          (Printf.sprintf "%s: bilateral coherence" s.Common.name)
          `Quick
          (verify_case s ~nprocs:8 ~coherence:C.Bilateral ~policy:C.Heuristic);
        Alcotest.test_case
          (Printf.sprintf "%s: migrate-only" s.Common.name)
          `Quick
          (verify_case s ~nprocs:8 ~coherence:C.Local ~policy:C.Migrate_only);
        Alcotest.test_case
          (Printf.sprintf "%s: cache-only" s.Common.name)
          `Quick
          (verify_case s ~nprocs:8 ~coherence:C.Local ~policy:C.Cache_only);
      ])
    Registry.specs

(* --- Figure 2 exact counts ------------------------------------------------ *)

let test_figure2_blocked_migrate () =
  let r =
    Listdist.run ~n:1024 ~nprocs:16 ~layout:Listdist.Blocked
      ~mechanism:C.Migrate ()
  in
  check int "P-1 migrations" 15 r.Listdist.migrations;
  check int "no remote fetches" 0 r.Listdist.remote_fetches;
  check int "sum" (1024 * 1025 / 2) r.Listdist.sum

let test_figure2_cyclic_migrate () =
  let r =
    Listdist.run ~n:1024 ~nprocs:16 ~layout:Listdist.Cyclic
      ~mechanism:C.Migrate ()
  in
  check int "N-1 migrations" 1023 r.Listdist.migrations

let test_figure2_cache_counts () =
  (* both layouts touch N(P-1)/P remote elements; we read two fields per
     element, so the fetch count is twice the paper's element count *)
  List.iter
    (fun layout ->
      let r =
        Listdist.run ~n:1024 ~nprocs:16 ~layout ~mechanism:C.Cache ()
      in
      check int "remote fetches" (2 * 1024 * 15 / 16) r.Listdist.remote_fetches;
      check int "no migrations" 0 r.Listdist.migrations)
    [ Listdist.Blocked; Listdist.Cyclic ]

let test_figure2_crossover () =
  (* migration wins on the blocked layout; caching wins on the cyclic one *)
  let time layout mechanism =
    (Listdist.run ~n:1024 ~nprocs:16 ~layout ~mechanism ()).Listdist.cycles
  in
  check bool "blocked: migrate beats cache" true
    (time Listdist.Blocked C.Migrate < time Listdist.Blocked C.Cache);
  check bool "cyclic: cache beats migrate" true
    (time Listdist.Cyclic C.Cache < time Listdist.Cyclic C.Migrate)

(* --- Speedup sanity --------------------------------------------------------- *)

let test_treeadd_speedup_shape () =
  let row = Suite.speedups ~scale:64 ~procs:[ 1; 4; 16 ] ~migrate_only:false Treeadd.spec in
  match row.Suite.runs with
  | [ (_, s1, _); (_, s4, _); (_, s16, _) ] ->
      check bool "1-proc overhead below 1" true (s1 < 1.0);
      check bool "1-proc overhead moderate" true (s1 > 0.5);
      check bool "monotone" true (s1 < s4 && s4 < s16);
      check bool "meaningful parallelism" true (s16 > 6.)
  | _ -> Alcotest.fail "expected three runs"

let test_em3d_mechanism_gap () =
  (* the paper's headline: M+C crushes migrate-only on EM3D *)
  let cycles policy =
    let cfg = C.make ~nprocs:16 ~policy () in
    let o = Em3d.spec.Common.run cfg ~scale:8 in
    assert o.Common.ok;
    o.Common.kernel_cycles
  in
  check bool "heuristic far faster than migrate-only" true
    (3 * cycles C.Heuristic < cycles C.Migrate_only)

let test_mst_migrations_grow_with_procs () =
  (* O(N*P) migrations: the per-phase processor sweep *)
  let migr nprocs =
    let cfg = C.make ~nprocs () in
    let o = Mst.spec.Common.run cfg ~scale:16 in
    assert o.Common.ok;
    o.Common.kernel_stats.Stats.migrations
  in
  check bool "more processors, more migrations" true (migr 16 > migr 4)

let test_health_remote_fraction_small () =
  (* fewer than two percent of patient accesses cross processors *)
  let cfg = C.make ~nprocs:32 () in
  let o = Health.spec.Common.run cfg ~scale:2 in
  assert o.Common.ok;
  let s = o.Common.total_stats in
  check bool "below 2%" true (Stats.remote_read_fraction s < 0.02)

let test_barneshut_caches_tree () =
  (* the walkers must cache the tree (bottleneck rule), not migrate on it *)
  let cfg = C.make ~nprocs:8 () in
  let o = Barneshut.spec.Common.run cfg ~scale:32 in
  assert o.Common.ok;
  let s = o.Common.total_stats in
  check bool "cache traffic dominates migrations" true
    (s.Stats.cacheable_reads > 100 * s.Stats.migrations)

let test_table3_row_shape () =
  (* Table 3 machinery: the row for EM3D is self-consistent *)
  let r = Tables.table3_row ~scale:8 ~nprocs:8 Em3d.spec in
  check bool "remote read fraction sane" true
    (r.Tables.reads_remote_pct > 1. && r.Tables.reads_remote_pct < 60.);
  check bool "misses bounded by remote accesses" true
    (r.Tables.miss_local <= 100. && r.Tables.miss_local >= 0.);
  check bool "pages were cached" true (r.Tables.pages > 0)

let test_sequential_equals_parallel_checksums () =
  (* the checksum printed by a run is independent of the processor count *)
  List.iter
    (fun (s : Common.spec) ->
      let scale = test_scale s in
      let run nprocs =
        (s.Common.run (C.make ~nprocs ()) ~scale).Common.checksum
      in
      check Alcotest.string
        (s.Common.name ^ " checksum stable across processor counts")
        (run 1) (run 8))
    (* EM3D is excluded: its graph generator takes the processor count as
       a layout parameter, so the workload itself differs across runs *)
    [ Treeadd.spec; Mst.spec; Power.spec; Health.spec ]

let test_benchmark_determinism () =
  (* a simulation is a pure function of the program and configuration *)
  List.iter
    (fun (s : Common.spec) ->
      let run () =
        let o = s.Common.run (C.make ~nprocs:8 ()) ~scale:(test_scale s) in
        (o.Common.total_cycles, o.Common.kernel_cycles,
         o.Common.kernel_stats.Stats.migrations, o.Common.checksum)
      in
      check bool (s.Common.name ^ " deterministic") true (run () = run ()))
    [ Treeadd.spec; Em3d.spec; Voronoi.spec; Health.spec ]

let test_perimeter_image_set () =
  (* the paper computes perimeters of a *set* of quad-tree encoded images:
     every shape verifies on several processor counts *)
  List.iter
    (fun kind ->
      List.iter
        (fun nprocs ->
          let cfg = C.make ~nprocs () in
          let o = Perimeter.run_image ~kind cfg ~scale:16 in
          check bool
            (Printf.sprintf "perimeter %s on %d procs (%s)"
               (Perimeter.image_kind_to_string kind)
               nprocs o.Common.checksum)
            true o.Common.ok)
        [ 1; 8 ])
    [ Perimeter.Disk; Perimeter.Ring; Perimeter.Blobs ]

let test_local_scheme_wins_on_time () =
  (* Appendix A: the local-knowledge scheme has the best (or essentially
     tied) running times, because the suite writes most shared data between
     migrations and write tracking is not free *)
  List.iter
    (fun (s : Common.spec) ->
      let cycles coherence =
        let cfg = C.make ~nprocs:16 ~coherence () in
        let o = s.Common.run cfg ~scale:(test_scale s) in
        assert o.Common.ok;
        Common.measured_cycles s o
      in
      let l = cycles C.Local in
      let g = cycles C.Global in
      let b = cycles C.Bilateral in
      let tolerance = l / 20 (* 5% *) in
      check bool
        (s.Common.name ^ ": local no worse than global (within 5%)")
        true
        (l <= g + tolerance);
      check bool
        (s.Common.name ^ ": local no worse than bilateral (within 5%)")
        true
        (l <= b + tolerance))
    [ Em3d.spec; Health.spec ]

let test_em3d_remote_sweep_monotone () =
  (* more cross-processor edges hurt migrate-only roughly linearly while
     the heuristic's cached version degrades only gently *)
  let points = Em3d.remote_sweep ~nprocs:8 ~scale:8 ~fractions:[ 0.0; 0.2; 0.5 ] () in
  (match points with
  | [ p0; p2; p5 ] ->
      check bool "equal at zero remote" true
        (p0.Em3d.heuristic_cycles = p0.Em3d.migrate_only_cycles);
      check bool "migrate-only grows" true
        (p2.Em3d.migrate_only_cycles < p5.Em3d.migrate_only_cycles);
      check bool "heuristic stays within 2x of local-only" true
        (p5.Em3d.heuristic_cycles < 2 * p0.Em3d.heuristic_cycles);
      check bool "gap exceeds 5x at 20% remote" true
        (p2.Em3d.migrate_only_cycles > 5 * p2.Em3d.heuristic_cycles)
  | _ -> Alcotest.fail "expected three points")

let test_breakeven_matches_prediction () =
  (* footnote 3: with migration = 7x a miss the mechanisms break even near
     86% path-affinity, just under the 90% selection threshold *)
  let points =
    Breakeven.sweep ~n:1024 ~nprocs:16
      ~affinities:[ 0.70; 0.80; 0.84; 0.86; 0.88; 0.92 ]
      ()
  in
  (match Breakeven.crossover points with
  | Some a ->
      check bool "crossover within two points of 86%" true
        (a >= 0.82 && a <= 0.90)
  | None -> Alcotest.fail "no crossover found");
  Alcotest.check (Alcotest.float 0.02) "prediction"
    0.857
    (Breakeven.predicted Olden_config.default_costs)

let test_breakeven_platform_shift () =
  (* Section 7: a NOW favors migration, hardware DSM favors caching *)
  let affs = [ 0.50; 0.90 ] in
  let now =
    Breakeven.sweep ~n:512 ~nprocs:8 ~costs:Olden_config.Presets.now
      ~affinities:affs ()
  in
  List.iter
    (fun p ->
      check bool "NOW: migrate wins even at 50%" true
        (p.Breakeven.migrate_cycles <= p.Breakeven.cache_cycles))
    now;
  let dsm =
    Breakeven.sweep ~n:512 ~nprocs:8 ~costs:Olden_config.Presets.hardware_dsm
      ~affinities:affs ()
  in
  List.iter
    (fun p ->
      check bool "DSM: cache wins up through 90%" true
        (p.Breakeven.cache_cycles <= p.Breakeven.migrate_cycles))
    dsm

let suite =
  verification_tests
  @ [
      Alcotest.test_case "figure2 blocked+migrate" `Quick
        test_figure2_blocked_migrate;
      Alcotest.test_case "figure2 cyclic+migrate" `Quick
        test_figure2_cyclic_migrate;
      Alcotest.test_case "figure2 cache counts" `Quick test_figure2_cache_counts;
      Alcotest.test_case "figure2 crossover" `Quick test_figure2_crossover;
      Alcotest.test_case "treeadd speedup shape" `Slow
        test_treeadd_speedup_shape;
      Alcotest.test_case "em3d mechanism gap" `Slow test_em3d_mechanism_gap;
      Alcotest.test_case "mst migrations grow" `Slow
        test_mst_migrations_grow_with_procs;
      Alcotest.test_case "health remote fraction" `Slow
        test_health_remote_fraction_small;
      Alcotest.test_case "barnes-hut caches tree" `Slow
        test_barneshut_caches_tree;
      Alcotest.test_case "table3 row shape" `Slow test_table3_row_shape;
      Alcotest.test_case "checksums stable" `Slow
        test_sequential_equals_parallel_checksums;
      Alcotest.test_case "benchmark determinism" `Slow
        test_benchmark_determinism;
      Alcotest.test_case "perimeter image set" `Quick
        test_perimeter_image_set;
      Alcotest.test_case "local scheme wins on time" `Slow
        test_local_scheme_wins_on_time;
      Alcotest.test_case "em3d remote sweep" `Slow
        test_em3d_remote_sweep_monotone;
      Alcotest.test_case "break-even matches prediction" `Slow
        test_breakeven_matches_prediction;
      Alcotest.test_case "break-even shifts with platform" `Slow
        test_breakeven_platform_shift;
    ]
