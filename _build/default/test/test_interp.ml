(* The mini-Olden interpreter: the full parse -> typecheck -> analyze ->
   execute path on the simulated machine. *)

module I = Olden_interp.Interp
module C = Olden_config

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let string = Alcotest.string

let run ?(nprocs = 4) src =
  I.run_source (C.make ~nprocs ()) src

let ret src = Value.to_int (run src).I.return_value

let test_arithmetic () =
  check int "arith" 17 (ret "int main() { return 2 + 3 * 5; }");
  check int "division" 3 (ret "int main() { return 10 / 3; }");
  check int "modulo" 1 (ret "int main() { return 10 % 3; }");
  check int "unary minus" (-4) (ret "int main() { return -4; }");
  check int "comparison chain" 1
    (ret "int main() { return 1 < 2 && 2 <= 2 && 3 > 2 && 2 >= 2 && 1 != 2; }")

let test_float_arithmetic () =
  let r = run "float main() { return 1.5 * 4.0; }" in
  Alcotest.check (Alcotest.float 1e-9) "float" 6. (Value.to_float r.I.return_value)

let test_control_flow () =
  check int "if/else" 2 (ret "int main() { if (0 > 1) { return 1; } else { return 2; } }");
  check int "while" 45
    (ret
       "int main() { int s = 0; int i = 0; while (i < 10) { s = s + i; i = i \
        + 1; } return s; }")

let test_short_circuit () =
  (* && must not evaluate its right operand when the left is false;
     a null dereference there would crash *)
  check int "short circuit" 7
    (ret
       {|
struct t { int v; }
int main() {
  t x = null;
  if (x != null && x->v > 0) { return 1; }
  return 7;
}
|})

let test_heap_structures () =
  check int "list sum" 6
    (ret
       {|
struct cell { cell next; int v; }
int main() {
  cell a = alloc(cell, 0);
  cell b = alloc(cell, 0);
  cell c = alloc(cell, 0);
  a->v = 1; b->v = 2; c->v = 3;
  a->next = b; b->next = c; c->next = null;
  int s = 0;
  cell p = a;
  while (p != null) { s = s + p->v; p = p->next; }
  return s;
}
|})

let test_recursion () =
  check int "fib" 55
    (ret
       "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - \
        2); } int main() { return fib(10); }")

let test_futures () =
  check int "future/touch" 30
    (ret
       {|
struct t { int v; }
int work10(int x) { work(100); return x * 10; }
int main() {
  int f = future work10(1);
  int g = future work10(2);
  return touch(f) + touch(g);
}
|})

let treeadd_src depth =
  Printf.sprintf
    {|
struct tree { tree left; tree right; int val; }
tree build(int depth, int lo, int hi) {
  tree t = alloc(tree, lo);
  t->val = 1;
  if (depth == 0) { t->left = null; t->right = null; }
  else {
    int mid = (lo + hi) / 2;
    if (hi - lo < 2) { mid = lo; }
    t->left = build(depth - 1, mid, hi);
    t->right = build(depth - 1, lo, mid);
  }
  return t;
}
int TreeAdd(tree t) {
  if (t == null) { return 0; }
  work(200);
  int l = future TreeAdd(t->left);
  int r = TreeAdd(t->right);
  return touch(l) + r + t->val;
}
int main() { return TreeAdd(build(%d, 0, nprocs())); }
|}
    depth

let test_treeadd_parallel_matches () =
  let expected = (1 lsl 9) - 1 in
  List.iter
    (fun nprocs ->
      check int
        (Printf.sprintf "treeadd on %d procs" nprocs)
        expected
        (Value.to_int (run ~nprocs (treeadd_src 8)).I.return_value))
    [ 1; 2; 8 ]

let test_treeadd_speeds_up () =
  let span nprocs =
    (run ~nprocs (treeadd_src 10)).I.report.Olden_runtime.Engine.makespan
  in
  check bool "8 procs beat 1" true (span 8 * 2 < span 1)

let test_for_loop_and_else_if () =
  check int "for loop with else-if" 1221
    (ret
       {|
int main() {
  int s = 0;
  for (int i = 0; i < 10; i = i + 1) {
    if (i % 3 == 0) { s = s + i; }
    else if (i % 3 == 1) { s = s + 100 * i; }
    else { s = s + 1; }
  }
  return s;
}
|});
  (* a for-loop traversal is still a control loop for the heuristic *)
  let sel =
    Olden_compiler.Heuristic.of_source
      {|
struct t { t next @ 95; int v; }
int f(t l) {
  int s = 0;
  for (t p = l; p != null; p = p->next) {
    s = s + p->v;
  }
  return s;
}
|}
  in
  let c = List.hd sel.Olden_compiler.Heuristic.choices in
  check bool "for-loop induction variable found" true
    (c.Olden_compiler.Heuristic.c_variable = Some "p")

let test_print_output () =
  let r = run "int main() { print(1 + 1); print(7); return 0; }" in
  check string "print" "2\n7\n" r.I.output

let test_rand_deterministic () =
  let src = "int main() { return rand(1000) + rand(1000); }" in
  check int "same seed, same draws" (ret src) (ret src)

let test_runtime_null_error () =
  check bool "null deref raises" true
    (match run "struct t { int v; } int main() { t x = null; return x->v; }" with
    | exception Olden_runtime.Engine.Null_dereference _ -> true
    | _ -> false)

let test_division_by_zero () =
  check bool "division by zero" true
    (match run "int main() { return 1 / 0; }" with
    | exception I.Runtime_error _ -> true
    | _ -> false)

let test_interp_uses_heuristic_sites () =
  (* the mini TreeAdd migrates: running on several processors must show
     migrations, not cache traffic, on the traversal *)
  let r = run ~nprocs:8 (treeadd_src 8) in
  let stats = r.I.report.Olden_runtime.Engine.stats in
  check bool "migrations happened" true (stats.Stats.migrations > 0)

(* Randomized arithmetic programs: the interpreter agrees with a direct
   OCaml evaluation of the same expression tree. *)
type aexp =
  | Lit of int
  | Add of aexp * aexp
  | Sub of aexp * aexp
  | Mul of aexp * aexp
  | Neg of aexp

let rec aexp_to_src = function
  | Lit i -> string_of_int i
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (aexp_to_src a) (aexp_to_src b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (aexp_to_src a) (aexp_to_src b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (aexp_to_src a) (aexp_to_src b)
  | Neg a -> Printf.sprintf "(-%s)" (aexp_to_src a)

let rec aexp_eval = function
  | Lit i -> i
  | Add (a, b) -> aexp_eval a + aexp_eval b
  | Sub (a, b) -> aexp_eval a - aexp_eval b
  | Mul (a, b) -> aexp_eval a * aexp_eval b
  | Neg a -> -aexp_eval a

let gen_aexp =
  QCheck.Gen.(
    sized_size (0 -- 6) (fix (fun self n ->
        if n = 0 then map (fun i -> Lit i) (0 -- 50)
        else
          frequency
            [
              (1, map (fun i -> Lit i) (0 -- 50));
              (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
              (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
              (1, map (fun a -> Neg a) (self (n - 1)));
            ])))

let prop_arithmetic_agrees =
  QCheck.Test.make ~name:"random arithmetic agrees with OCaml" ~count:150
    (QCheck.make ~print:aexp_to_src gen_aexp)
    (fun e ->
      let src = Printf.sprintf "int main() { return %s; }" (aexp_to_src e) in
      ret src = aexp_eval e)

let test_example_programs () =
  (* every shipped mini-Olden program parses, type-checks, and runs *)
  let dir = "../../../examples/programs" in
  let dir = if Sys.file_exists dir then dir else "examples/programs" in
  if Sys.file_exists dir then begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".olden")
      |> List.sort compare
    in
    check bool "programs shipped" true (List.length files >= 3);
    List.iter
      (fun f ->
        let path = Filename.concat dir f in
        let ic = open_in path in
        let src = really_input_string ic (in_channel_length ic) in
        close_in ic;
        let r = run ~nprocs:4 src in
        check bool (f ^ " ran") true
          (String.length r.I.output > 0
          || not (Value.equal r.I.return_value Value.Nil)))
      files
  end

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "float arithmetic" `Quick test_float_arithmetic;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "short circuit" `Quick test_short_circuit;
    Alcotest.test_case "heap structures" `Quick test_heap_structures;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "futures" `Quick test_futures;
    Alcotest.test_case "treeadd parallel matches" `Quick
      test_treeadd_parallel_matches;
    Alcotest.test_case "treeadd speeds up" `Quick test_treeadd_speeds_up;
    Alcotest.test_case "for loop and else-if" `Quick
      test_for_loop_and_else_if;
    Alcotest.test_case "print output" `Quick test_print_output;
    Alcotest.test_case "rand deterministic" `Quick test_rand_deterministic;
    Alcotest.test_case "null dereference" `Quick test_runtime_null_error;
    Alcotest.test_case "division by zero" `Quick test_division_by_zero;
    Alcotest.test_case "interp uses heuristic sites" `Quick
      test_interp_uses_heuristic_sites;
    QCheck_alcotest.to_alcotest prop_arithmetic_agrees;
    Alcotest.test_case "example programs" `Slow test_example_programs;
  ]
