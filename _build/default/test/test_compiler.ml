(* The compiler side: lexer, parser, type checker, affinity algebra,
   update-matrix analysis, and the selection heuristic — including every
   worked example in the paper (Figures 3-5, the Section 4.3 defaults). *)

open Olden_compiler
module C = Olden_config

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* --- Lexer ---------------------------------------------------------------- *)

let tokens src =
  let lx = Lexer.create src in
  let rec go acc =
    match Lexer.next_token lx with
    | Lexer.EOF -> List.rev acc
    | t -> go (t :: acc)
  in
  go []

let test_lexer_basics () =
  check int "token count" 10 (List.length (tokens "int x = 41 + foo(y);"));
  check bool "keywords recognized" true
    (tokens "while" = [ Lexer.KW "while" ]);
  check bool "two-char punct" true (tokens "->" = [ Lexer.PUNCT "->" ]);
  check bool "floats" true (tokens "1.5" = [ Lexer.FLOAT 1.5 ]);
  check bool "comments skipped" true
    (tokens "a // line\n b /* block */ c"
    = [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.IDENT "c" ])

let test_lexer_errors () =
  Alcotest.check_raises "bad char" (Lexer.Error "line 1, col 1: unexpected character '#'")
    (fun () -> ignore (tokens "#"))

(* --- Parser ---------------------------------------------------------------- *)

let parse = Parser.parse_program

let test_parser_struct () =
  let p = parse "struct t { t next @ 85; int v; }" in
  match p.Ast.structs with
  | [ sd ] ->
      check string "name" "t" sd.Ast.sd_name;
      check int "fields" 2 (List.length sd.Ast.sd_fields);
      let f = List.hd sd.Ast.sd_fields in
      check bool "affinity" true (f.Ast.fd_affinity = Some 0.85)
  | _ -> Alcotest.fail "expected one struct"

let test_parser_stmts () =
  let p =
    parse
      {|
struct t { t next; int v; }
int f(t x, int k) {
  int acc = 0;
  while (x != null) {
    acc = acc + x->v * 2;
    if (acc > k) { x->v = 0; } else { x->v = 1; }
    x = x->next;
  }
  return acc;
}
|}
  in
  match p.Ast.funcs with
  | [ f ] ->
      check string "name" "f" f.Ast.f_name;
      check int "params" 2 (List.length f.Ast.f_params);
      check int "statements" 3 (List.length f.Ast.f_body)
  | _ -> Alcotest.fail "expected one function"

let test_parser_precedence () =
  let p = parse "int f() { return 1 + 2 * 3 < 7 && 1 == 1; }" in
  match (List.hd p.Ast.funcs).Ast.f_body with
  | [ Ast.Return (Some (Ast.Binop (Ast.And, lhs, _))) ] -> (
      match lhs with
      | Ast.Binop (Ast.Lt, Ast.Binop (Ast.Add, _, Ast.Binop (Ast.Mul, _, _)), _)
        ->
          ()
      | _ -> Alcotest.fail "precedence shape")
  | _ -> Alcotest.fail "expected return of && expression"

let test_parser_future_touch_alloc () =
  let p =
    parse
      {|
struct t { t next; }
t g(t x) { return x; }
t f(t x) {
  t y = future g(x->next);
  t z = alloc(t, self());
  z->next = touch(y);
  return z;
}
|}
  in
  check int "functions" 2 (List.length p.Ast.funcs)

let test_parser_deref_ids_deterministic () =
  let src = "struct t { t a; t b; } void f(t x) { x->a->b = x->b; }" in
  let count p =
    let sel = Heuristic.of_program p in
    List.length sel.Heuristic.analysis.Analysis.derefs
  in
  check int "same ids both parses" (count (parse src)) (count (parse src));
  check int "three derefs" 3 (count (parse src))

let test_parser_errors () =
  check bool "missing semicolon rejected" true
    (match parse "int f() { return 1 }" with
    | exception Parser.Error _ -> true
    | _ -> false);
  check bool "future of non-call rejected" true
    (match parse "int f() { int x = future 3; return x; }" with
    | exception Parser.Error _ -> true
    | _ -> false)

let test_pretty_print_reparses () =
  let src =
    {|
struct tree { tree left @ 90; tree right @ 70; int val; }
int TreeAdd(tree t) {
  if (t == null) { return 0; }
  int l = future TreeAdd(t->left);
  int r = TreeAdd(t->right);
  return touch(l) + r + t->val;
}
|}
  in
  let p1 = parse src in
  let printed = Format.asprintf "%a" Ast.pp_program p1 in
  let p2 = parse printed in
  check int "same struct count" (List.length p1.Ast.structs)
    (List.length p2.Ast.structs);
  (* the reparse must produce the same selection *)
  let sel1 = Heuristic.of_program p1 and sel2 = Heuristic.of_program p2 in
  check int "same site count"
    (List.length sel1.Heuristic.site_mechanisms)
    (List.length sel2.Heuristic.site_mechanisms);
  List.iter2
    (fun (_, m1) (_, m2) -> check bool "same mechanism" true (m1 = m2))
    sel1.Heuristic.site_mechanisms sel2.Heuristic.site_mechanisms

(* A random-AST printer/parser round trip: pretty-printing any program and
   reparsing it is a fixpoint (printing is id-free, so we compare printed
   forms). *)
let gen_program =
  QCheck.Gen.(
    let var = oneofl [ "x"; "y"; "z" ] in
    let ptr_field = oneofl [ "a"; "b" ] in
    let rec gen_pexpr n =
      if n = 0 then map (fun v -> Ast.Var v) var
      else
        frequency
          [
            (2, map (fun v -> Ast.Var v) var);
            ( 3,
              map2
                (fun base f ->
                  Ast.Deref { Ast.d_id = 0; d_base = base; d_field = f })
                (gen_pexpr (n - 1)) ptr_field );
          ]
    in
    let gen_iexpr n =
      if n = 0 then map (fun i -> Ast.Int_lit i) (0 -- 99)
      else
        frequency
          [
            (2, map (fun i -> Ast.Int_lit i) (0 -- 99));
            ( 2,
              map
                (fun base ->
                  Ast.Deref { Ast.d_id = 0; d_base = base; d_field = "v" })
                (gen_pexpr (n - 1)) );
            ( 1,
              map2
                (fun a b -> Ast.Binop (Ast.Add, a, b))
                (map (fun i -> Ast.Int_lit i) (0 -- 9))
                (map (fun i -> Ast.Int_lit i) (0 -- 9)) );
          ]
    in
    let rec gen_stmt n =
      if n = 0 then map (fun v -> Ast.Return (Some (Ast.Var v))) var
      else
        frequency
          [
            (2, map2 (fun v e -> Ast.Assign (v, e)) var (gen_pexpr 1));
            ( 2,
              map2
                (fun base e ->
                  Ast.Field_assign
                    ({ Ast.d_id = 0; d_base = base; d_field = "v" }, e))
                (gen_pexpr 1) (gen_iexpr 1) );
            ( 1,
              map3
                (fun c th el -> Ast.If (c, [ th ], [ el ]))
                (gen_iexpr 1) (gen_stmt (n - 1)) (gen_stmt (n - 1)) );
            ( 1,
              map2
                (fun c body ->
                  Ast.While { Ast.w_id = 0; w_cond = c; w_body = [ body ] })
                (gen_iexpr 1) (gen_stmt (n - 1)) );
          ]
    in
    let* body = list_size (1 -- 6) (gen_stmt 2) in
    return
      {
        Ast.structs =
          [
            {
              Ast.sd_name = "t";
              sd_fields =
                [
                  { Ast.fd_name = "a"; fd_type = Ast.Tstruct "t"; fd_affinity = Some 0.8 };
                  { Ast.fd_name = "b"; fd_type = Ast.Tstruct "t"; fd_affinity = None };
                  { Ast.fd_name = "v"; fd_type = Ast.Tint; fd_affinity = None };
                ];
            };
          ];
        funcs =
          [
            {
              Ast.f_name = "f";
              f_ret = Ast.Tvoid;
              f_params =
                [ (Ast.Tstruct "t", "x"); (Ast.Tstruct "t", "y"); (Ast.Tstruct "t", "z") ];
              f_body = body;
            };
          ];
      })

let prop_pp_parse_roundtrip =
  QCheck.Test.make ~name:"pretty-print / parse round trip" ~count:200
    (QCheck.make
       ~print:(fun p -> Format.asprintf "%a" Ast.pp_program p)
       gen_program)
    (fun prog ->
      let printed = Format.asprintf "%a" Ast.pp_program prog in
      let reparsed = parse printed in
      let reprinted = Format.asprintf "%a" Ast.pp_program reparsed in
      printed = reprinted)

(* --- Type checker ----------------------------------------------------------- *)

let test_typecheck_accepts () =
  let p =
    parse
      "struct t { t next; int v; } int f(t x) { if (x == null) { return 0; } \
       return x->v + f(x->next); }"
  in
  ignore (Typecheck.check p)

let typecheck_rejects src =
  match Typecheck.check (parse src) with
  | exception Typecheck.Type_error _ -> true
  | _ -> false

let test_typecheck_rejects () =
  check bool "unknown field" true
    (typecheck_rejects "struct t { int v; } int f(t x) { return x->w; }");
  check bool "unbound variable" true
    (typecheck_rejects "int f() { return y; }");
  check bool "deref of int" true
    (typecheck_rejects "struct t { int v; } int f(int x) { return x->v; }");
  check bool "unknown function" true (typecheck_rejects "int f() { return g(); }");
  check bool "arity mismatch" true
    (typecheck_rejects "int g(int a) { return a; } int f() { return g(); }")

(* --- Affinity algebra --------------------------------------------------------- *)

let test_affinity_rules () =
  Alcotest.check (Alcotest.float 1e-9) "path product" 0.63
    (Affinity.along_path [ 0.9; 0.7 ]);
  Alcotest.check (Alcotest.float 1e-9) "join average" 0.8 (Affinity.join 0.9 0.7);
  (* Figure 4: 1 - (1-0.9)(1-0.7) = 0.97 *)
  Alcotest.check (Alcotest.float 1e-9) "recursion combine" 0.97
    (Affinity.recursion_combine [ 0.9; 0.7 ]);
  (* the defaults: two 70% recursive calls -> 91%, above the 90% threshold *)
  Alcotest.check (Alcotest.float 1e-9) "default tree traversal" 0.91
    (Affinity.recursion_combine [ 0.7; 0.7 ])

let prop_affinity_bounds =
  QCheck.Test.make ~name:"affinity combinators stay in [0,1]" ~count:300
    QCheck.(pair (float_bound_inclusive 1.) (float_bound_inclusive 1.))
    (fun (a, b) ->
      let in01 x = x >= 0. && x <= 1. in
      in01 (Affinity.join a b)
      && in01 (Affinity.recursion_combine [ a; b ])
      && in01 (Affinity.along_path [ a; b ])
      && Affinity.recursion_combine [ a; b ] >= Float.max a b -. 1e-12
      && Affinity.along_path [ a; b ] <= Float.min a b +. 1e-12)

(* --- Update matrices (Figures 3 and 4) ---------------------------------------- *)

let loop_matrix src lid =
  let a = Analysis.analyze (parse src) in
  match Analysis.find_loop a lid with
  | Some l -> l
  | None -> Alcotest.failf "no loop %s" (Ast.loop_id_to_string lid)

let fig3 =
  {|
struct matrix { matrix left @ 90; matrix right @ 70; int val; }
void loop(matrix s, matrix t, matrix u) {
  while (s != null) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
|}

let test_figure3_matrix () =
  let l = loop_matrix fig3 (Ast.Lwhile 0) in
  let entry s o = List.find_opt (fun (a, b, _) -> a = s && b = o) l.Analysis.matrix in
  (match entry "s" "s" with
  | Some (_, _, a) -> Alcotest.check (Alcotest.float 1e-9) "(s,s)" 0.9 a
  | None -> Alcotest.fail "missing (s,s)");
  (match entry "t" "t" with
  | Some (_, _, a) -> Alcotest.check (Alcotest.float 1e-9) "(t,t)" 0.63 a
  | None -> Alcotest.fail "missing (t,t)");
  (* u is updated by s, not by itself: no diagonal entry for u *)
  check bool "(u,u) absent" true (entry "u" "u" = None);
  check bool "(u,s) present" true (entry "u" "s" <> None);
  (* induction variables are exactly s and t *)
  let ind = List.map fst (Analysis.induction_variables l) in
  check bool "induction variables" true (List.sort compare ind = [ "s"; "t" ])

let fig4 =
  {|
struct tree { tree left @ 90; tree right @ 70; int val; }
int TreeAdd(tree t) {
  if (t == null) { return 0; }
  return TreeAdd(t->left) + TreeAdd(t->right) + t->val;
}
|}

let test_figure4_matrix () =
  let l = loop_matrix fig4 (Ast.Lrec "TreeAdd") in
  match Analysis.induction_variables l with
  | [ ("t", a) ] -> Alcotest.check (Alcotest.float 1e-9) "97%" 0.97 a
  | _ -> Alcotest.fail "expected t as the only induction variable"

let test_join_omission_rule () =
  (* an update missing from one branch of an if is omitted (Section 4.2) *)
  let src =
    {|
struct t { t next @ 90; int v; }
void f(t x, int k) {
  while (x != null) {
    if (k > 0) { x = x->next; }
    k = k - 1;
  }
}
|}
  in
  let l = loop_matrix src (Ast.Lwhile 0) in
  check bool "one-sided update omitted" true (Analysis.induction_variables l = [])

let test_join_averaging_rule () =
  let src =
    {|
struct t { t a @ 90; t b @ 50; int v; }
void f(t x) {
  while (x != null) {
    if (x->v > 0) { x = x->a; } else { x = x->b; }
  }
}
|}
  in
  let l = loop_matrix src (Ast.Lwhile 0) in
  match Analysis.induction_variables l with
  | [ ("x", a) ] -> Alcotest.check (Alcotest.float 1e-9) "averaged" 0.7 a
  | _ -> Alcotest.fail "expected x averaged across branches"

let test_identity_update_excluded () =
  (* x = x (no dereference) is not a structure-traversing update; scalars
     passed through recursion are not induction variables either *)
  let src =
    {|
struct t { t next; int v; }
int f(t x, float price) {
  if (x == null) { return 0; }
  return f(x->next, price);
}
|}
  in
  let l = loop_matrix src (Ast.Lrec "f") in
  let vars = List.map fst (Analysis.induction_variables l) in
  check bool "only x" true (vars = [ "x" ])

(* --- Selection heuristic (Figure 5, Section 4.3) -------------------------------- *)

let mech_of sel ~func ~var ~field =
  let d =
    List.find
      (fun (d : Analysis.deref_info) ->
        d.Analysis.deref_func = func
        && d.Analysis.dbase = Some var
        && d.Analysis.dfield = field)
      sel.Heuristic.analysis.Analysis.derefs
  in
  Heuristic.mechanism_of_site sel d.Analysis.deref_id

let test_figure5_bottleneck () =
  let sel = Heuristic.of_source Olden_benchmarks.Tables.fig5_src in
  (* WalkAndTraverse's inner tree traversal is demoted to caching *)
  check bool "Traverse cached under parallel walk" true
    (mech_of sel ~func:"Traverse" ~var:"t" ~field:"left" = C.Cache);
  (* TraverseAndWalk's own recursion still migrates *)
  check bool "TraverseAndWalk migrates" true
    (mech_of sel ~func:"TraverseAndWalk" ~var:"t" ~field:"left" = C.Migrate);
  (* the list walk fed a fresh list per node is not a bottleneck *)
  check bool "Walk migrates (fed t->lst, which varies)" true
    (mech_of sel ~func:"Walk" ~var:"l" ~field:"next" = C.Migrate);
  check int "exactly one demotion" 1 (List.length sel.Heuristic.bottlenecks)

let test_defaults_behaviour () =
  (* Section 4.3: with default affinities, list traversals cache, tree
     traversals migrate, tree searches cache *)
  let sel = Heuristic.of_source Olden_benchmarks.Tables.defaults_src in
  check bool "list traversal cached" true
    (mech_of sel ~func:"walk_list" ~var:"l" ~field:"next" = C.Cache);
  check bool "tree traversal migrates" true
    (mech_of sel ~func:"traverse_tree" ~var:"t" ~field:"left" = C.Migrate);
  check bool "tree search cached" true
    (mech_of sel ~func:"search_tree" ~var:"t" ~field:"left" = C.Cache)

let test_parallelizable_below_threshold_migrates () =
  (* a parallel loop with low affinity still migrates: threads are only
     created at migrations (Section 4.3) *)
  let src =
    {|
struct t { t next @ 10; int v; }
int visit(t x) { return x->v; }
void f(t l) {
  while (l != null) {
    future visit(l);
    l = l->next;
  }
}
|}
  in
  let sel = Heuristic.of_source src in
  check bool "parallelizable loop migrates despite 10%" true
    (mech_of sel ~func:"f" ~var:"l" ~field:"next" = C.Migrate)

let test_transitive_bottleneck () =
  (* Barnes-Hut's shape: the parallel loop is two calls above the tree
     walk, and the tree root is invariant — still a bottleneck *)
  let sel = Heuristic.of_source Olden_benchmarks.Barneshut.ir in
  check bool "gravsub demoted to cache" true
    (mech_of sel ~func:"gravsub" ~var:"n" ~field:"child0" = C.Cache);
  check bool "body-list walk still migrates" true
    (mech_of sel ~func:"do_bodies" ~var:"cursor" ~field:"next" = C.Migrate)

let test_no_induction_inherits_parent () =
  let src =
    {|
struct t { t next @ 95; t other; int v; }
void f(t l) {
  while (l != null) {
    t u = l->other;
    while (u != null) {
      u = null;
    }
    l = l->next;
  }
}
|}
  in
  let sel = Heuristic.of_source src in
  let inner =
    List.find
      (fun c -> c.Heuristic.c_lid = Ast.Lwhile 1)
      sel.Heuristic.choices
  in
  (* the inner loop assigns u = null (no induction variable): it inherits
     the parent's migration variable *)
  check bool "inherits parent's selection" true
    (inner.Heuristic.c_mechanism = C.Migrate
    && inner.Heuristic.c_variable = Some "l")

let test_at_most_one_migration_variable () =
  (* two equally good induction variables: only one gets migration *)
  let src =
    {|
struct t { t next @ 95; int v; }
void f(t a, t b) {
  while (a != null) {
    a = a->next;
    b = b->next;
  }
}
|}
  in
  let sel = Heuristic.of_source src in
  let ma = mech_of sel ~func:"f" ~var:"a" ~field:"next" in
  let mb = mech_of sel ~func:"f" ~var:"b" ~field:"next" in
  check bool "exactly one migrates" true
    ((ma = C.Migrate) <> (mb = C.Migrate))

let test_threshold_sensitivity () =
  (* the DESIGN.md ablation: moving the threshold flips decisions exactly
     where the affinities say it should *)
  let src = Olden_benchmarks.Tables.defaults_src in
  (* at the default 90%: lists cache (70%), tree traversals migrate (91%) *)
  let sel90 = Heuristic.of_source src in
  check bool "90%: list cached" true
    (mech_of sel90 ~func:"walk_list" ~var:"l" ~field:"next" = C.Cache);
  (* at 65%: the 70% list walk clears the bar and migrates *)
  let sel65 = Heuristic.of_source ~threshold:0.65 src in
  check bool "65%: list migrates" true
    (mech_of sel65 ~func:"walk_list" ~var:"l" ~field:"next" = C.Migrate);
  (* at 95%: the 91% tree traversal no longer qualifies and is cached *)
  let sel95 = Heuristic.of_source ~threshold:0.95 src in
  check bool "95%: tree traversal cached" true
    (mech_of sel95 ~func:"traverse_tree" ~var:"t" ~field:"left" = C.Cache);
  (* parallelizable loops migrate regardless of the threshold *)
  let par =
    {|
struct t { t next @ 10; int v; }
int visit(t x) { return x->v; }
void f(t l) {
  while (l != null) {
    future visit(l);
    l = l->next;
  }
}
|}
  in
  let selp = Heuristic.of_source ~threshold:0.99 par in
  check bool "parallelizable immune to threshold" true
    (mech_of selp ~func:"f" ~var:"l" ~field:"next" = C.Migrate)

let test_return_summaries () =
  (* the interprocedural extension: a traversal through a helper function
     is still recognized as an induction variable *)
  let src =
    {|
struct t { t next @ 95; int v; }
t step(t x) { return x->next; }
t identity(t x) { return x; }
t two(t x) { return x->next->next; }
int walk(t l) {
  while (l != null) { l = step(l); }
  return 0;
}
int walk2(t l) {
  while (l != null) { l = two(identity(l)); }
  return 0;
}
int opaque(t l) {
  while (l != null) { l = alloc_like(l); }
  return 0;
}
t alloc_like(t x) { if (x->v > 0) { return x->next; } return alloc(t, 0); }
|}
  in
  let sel = Heuristic.of_source src in
  let choice lid =
    List.find (fun c -> c.Heuristic.c_lid = lid) sel.Heuristic.choices
  in
  let c0 = choice (Ast.Lwhile 0) in
  check bool "helper-stepped walk is induction at 95%" true
    (c0.Heuristic.c_variable = Some "l" && c0.Heuristic.c_mechanism = C.Migrate);
  let c1 = choice (Ast.Lwhile 1) in
  (* 0.95 * 0.95 = 90.25% through two composed helpers *)
  check bool "composed helpers still induction" true
    (c1.Heuristic.c_variable = Some "l" && c1.Heuristic.c_mechanism = C.Migrate);
  let c2 = choice (Ast.Lwhile 2) in
  (* a helper that sometimes allocates has no usable summary *)
  check bool "opaque helper yields no induction" true
    (c2.Heuristic.c_variable = None)

let test_benchmark_choices_match_paper () =
  (* Table 2's "heuristic choice" column, from each benchmark's IR model *)
  List.iter
    (fun (s : Olden_benchmarks.Common.spec) ->
      let sel = Heuristic.of_source s.Olden_benchmarks.Common.ir in
      let m = Heuristic.uses_migration sel in
      let c = Heuristic.uses_caching sel in
      match s.Olden_benchmarks.Common.choice with
      | "M" ->
          check bool (s.Olden_benchmarks.Common.name ^ " uses migration") true m
      | "M+C" ->
          check bool
            (s.Olden_benchmarks.Common.name ^ " uses both mechanisms")
            true (m && c)
      | other -> Alcotest.failf "unexpected choice %s" other)
    Olden_benchmarks.Registry.specs

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser struct" `Quick test_parser_struct;
    Alcotest.test_case "parser statements" `Quick test_parser_stmts;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser future/touch/alloc" `Quick
      test_parser_future_touch_alloc;
    Alcotest.test_case "deref ids deterministic" `Quick
      test_parser_deref_ids_deterministic;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "pretty-print reparses" `Quick test_pretty_print_reparses;
    QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "affinity rules" `Quick test_affinity_rules;
    QCheck_alcotest.to_alcotest prop_affinity_bounds;
    Alcotest.test_case "figure 3 matrix" `Quick test_figure3_matrix;
    Alcotest.test_case "figure 4 matrix" `Quick test_figure4_matrix;
    Alcotest.test_case "join omission rule" `Quick test_join_omission_rule;
    Alcotest.test_case "join averaging rule" `Quick test_join_averaging_rule;
    Alcotest.test_case "identity updates excluded" `Quick
      test_identity_update_excluded;
    Alcotest.test_case "figure 5 bottleneck" `Quick test_figure5_bottleneck;
    Alcotest.test_case "section 4.3 defaults" `Quick test_defaults_behaviour;
    Alcotest.test_case "parallelizable below threshold" `Quick
      test_parallelizable_below_threshold_migrates;
    Alcotest.test_case "transitive bottleneck" `Quick test_transitive_bottleneck;
    Alcotest.test_case "no induction inherits parent" `Quick
      test_no_induction_inherits_parent;
    Alcotest.test_case "at most one migration variable" `Quick
      test_at_most_one_migration_variable;
    Alcotest.test_case "threshold sensitivity" `Quick
      test_threshold_sensitivity;
    Alcotest.test_case "return summaries" `Quick test_return_summaries;
    Alcotest.test_case "benchmark choices match paper" `Quick
      test_benchmark_choices_match_paper;
  ]
