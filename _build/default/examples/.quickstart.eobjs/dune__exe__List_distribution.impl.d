examples/list_distribution.ml: Format List Olden_benchmarks
