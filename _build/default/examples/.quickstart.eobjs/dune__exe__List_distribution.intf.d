examples/list_distribution.mli:
