examples/heuristic_tour.ml: Format Olden_benchmarks
