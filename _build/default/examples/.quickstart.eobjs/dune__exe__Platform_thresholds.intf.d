examples/platform_thresholds.mli:
