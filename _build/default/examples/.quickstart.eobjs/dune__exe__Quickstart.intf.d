examples/quickstart.mli:
