examples/quickstart.ml: Config Engine Format Gptr Olden Ops Site Stats Value
