examples/coherence_demo.ml: Common Em3d Format List Olden_benchmarks Olden_config Stats
