examples/minilang_demo.ml: Format List Olden_compiler Olden_config Olden_interp Olden_runtime Stats Value
