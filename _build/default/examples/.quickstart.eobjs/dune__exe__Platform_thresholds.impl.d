examples/platform_thresholds.ml: Format Olden_benchmarks
