examples/heuristic_tour.mli:
