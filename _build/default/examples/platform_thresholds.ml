(* Section 7 of the paper: the migration-vs-caching trade-off is a
   property of the machine, and ports of Olden would move the selection
   threshold accordingly.

     dune exec examples/platform_thresholds.exe

   A list whose next pointers stay local with probability "affinity" is
   traversed under both mechanisms on three cost models: the CM-5 (the
   paper's machine, migration ~7x a miss), a network of workstations
   (migration ~1x: it should be favored almost always), and a hardware-DSM
   hybrid (migration ~35x a miss: caching almost always wins).  The
   measured break-even affinities match 1 - miss/migration — ~86% on the
   CM-5, exactly the paper's footnote 3. *)

let () = Olden_benchmarks.Breakeven.report ~n:2048 Format.std_formatter ()
