(* The three cache-coherence schemes of Appendix A on one workload.

     dune exec examples/coherence_demo.exe

   EM3D makes a good demonstration: its neighbor values are cached, change
   every half-step, and are re-read by other processors, so the protocols'
   bookkeeping differences are visible.  The local-knowledge scheme pays
   no coherence traffic but re-misses after its wholesale invalidations;
   the global scheme (eager release consistency) sends invalidations at
   every release and pays write-tracking on every store; the bilateral
   scheme pays timestamp revalidations instead. *)

open Olden_benchmarks

let () =
  let spec = Em3d.spec in
  Format.printf
    "EM3D on 32 processors under the three coherence schemes@.@.";
  Format.printf "%-10s %12s %10s %10s %12s %12s %14s@." "scheme" "cycles"
    "misses" "invalid." "inval-msgs" "revalid." "write-track";
  List.iter
    (fun coherence ->
      let cfg = Olden_config.make ~nprocs:32 ~coherence () in
      let o = spec.Common.run cfg ~scale:2 in
      assert o.Common.ok;
      let s = o.Common.kernel_stats in
      Format.printf "%-10s %12s %10d %10d %12d %12d %14d@."
        (Olden_config.coherence_to_string coherence)
        (Common.commas o.Common.kernel_cycles)
        s.Stats.cache_misses s.Stats.lines_invalidated
        s.Stats.invalidation_messages s.Stats.revalidations
        s.Stats.write_track_cycles)
    [ Olden_config.Local; Olden_config.Global; Olden_config.Bilateral ];
  Format.printf
    "@.All three produce identical results; the local scheme usually wins \
     on time@.because Olden programs write most shared data between \
     migrations (Appendix A).@."
