(* The full compiler + runtime path: a mini-Olden source program is parsed,
   type-checked, analyzed by the heuristic, and interpreted on the
   simulated machine.

     dune exec examples/minilang_demo.exe

   The program is the paper's running example: TreeAdd over a distributed
   tree, with the tree built in parallel too. *)

let source =
  {|
struct tree {
  tree left;
  tree right;
  int val;
}

tree build(int depth, int lo, int hi) {
  tree t = alloc(tree, lo);
  t->val = 1;
  if (depth == 0) {
    t->left = null;
    t->right = null;
  } else {
    int mid = (lo + hi) / 2;
    if (hi - lo < 2) { mid = lo; }
    t->left = build(depth - 1, mid, hi);
    t->right = build(depth - 1, lo, mid);
  }
  return t;
}

int TreeAdd(tree t) {
  if (t == null) { return 0; }
  int l = future TreeAdd(t->left);
  int r = TreeAdd(t->right);
  return touch(l) + r + t->val;
}

int main() {
  tree root = build(12, 0, nprocs());
  int sum = TreeAdd(root);
  print(sum);
  return sum;
}
|}

let () =
  (* What did the compiler decide? *)
  let selection = Olden_compiler.Heuristic.of_source source in
  Format.printf "--- heuristic selection ---@.%a@.@." Olden_compiler.Heuristic.pp
    selection;
  (* Run on 1 and on 16 simulated processors. *)
  let compiled = Olden_interp.Interp.compile_source source in
  List.iter
    (fun nprocs ->
      let cfg = Olden_config.make ~nprocs () in
      let r = Olden_interp.Interp.run cfg compiled in
      Format.printf
        "%2d processor(s): returned %s, makespan %9d cycles, %d migrations@."
        nprocs
        (Value.to_string r.Olden_interp.Interp.return_value)
        r.Olden_interp.Interp.report.Olden_runtime.Engine.makespan
        r.Olden_interp.Interp.report.Olden_runtime.Engine.stats
          .Stats.migrations)
    [ 1; 4; 16 ]
