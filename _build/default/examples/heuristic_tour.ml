(* A tour of the compile-time heuristic on the paper's own examples
   (Figures 3, 4, and 5, plus the Section 4.3 defaults).

     dune exec examples/heuristic_tour.exe

   For each program we print the update matrices the dataflow analysis
   computes for every control loop, and the mechanism the heuristic picks
   for each dereference site. *)

let () =
  let ppf = Format.std_formatter in
  Olden_benchmarks.Tables.figure3 ppf ();
  Format.printf "@.";
  Olden_benchmarks.Tables.figure4 ppf ();
  Format.printf "@.";
  Olden_benchmarks.Tables.figure5 ppf ();
  Format.printf "@.";
  Olden_benchmarks.Tables.defaults ppf ()
