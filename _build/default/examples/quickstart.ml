(* Quickstart: build a distributed binary tree and sum it in parallel with
   futures, directly against the public runtime API.

     dune exec examples/quickstart.exe

   Everything here is simulated: [Engine.run] executes the program on a
   deterministic model of a message-passing machine, charging cycles for
   local work, pointer tests, cache probes, thread migrations, and future
   bookkeeping exactly as the Olden system of the paper would. *)

open Olden

(* A tree node is three heap words: left, right, value. *)
let off_left = 0
let off_right = 1
let off_value = 2

let () =
  let nprocs = 8 in
  let cfg = Config.make ~nprocs () in

  (* Dereference sites: the compiler's unit of mechanism choice.  A tree
     traversal that visits both children wants computation migration. *)
  let s_left = Site.migrate "tree.left" in
  let s_right = Site.migrate "tree.right" in
  let s_value = Site.migrate "tree.value" in

  let total = ref 0 in
  let report =
    Engine.run cfg (fun () ->
        (* Build a depth-12 tree with subtrees distributed over the
           processors; the futurecalled (left) child goes to the far half
           of the range so its first dereference migrates. *)
        let rec build depth lo hi =
          if depth = 0 then Gptr.null
          else begin
            let node = Ops.alloc ~proc:lo 3 in
            let mid = (lo + hi) / 2 in
            let left, right =
              if hi - lo >= 2 then
                (build (depth - 1) mid hi, build (depth - 1) lo mid)
              else (build (depth - 1) lo hi, build (depth - 1) lo hi)
            in
            Ops.store_ptr s_left node off_left left;
            Ops.store_ptr s_right node off_right right;
            Ops.store_int s_value node off_value 1;
            node
          end
        in
        let root = Ops.call (fun () -> build 12 0 nprocs) in

        Ops.phase "kernel";
        let rec sum t =
          if Gptr.is_null t then 0
          else begin
            let left = Ops.load_ptr s_left t off_left in
            let right = Ops.load_ptr s_right t off_right in
            (* futurecall: the body runs now; if it migrates, this
               continuation is stolen by the processor left idle *)
            let fut = Ops.future (fun () -> Value.Int (sum left)) in
            let right_sum = Ops.call (fun () -> sum right) in
            let v = Ops.load_int s_value t off_value in
            Ops.work 100;
            Value.to_int (Ops.touch fut) + right_sum + v
          end
        in
        total := Ops.call (fun () -> sum root))
  in
  Format.printf "sum = %d (expected %d)@." !total ((1 lsl 12) - 1);
  Format.printf "makespan: %d cycles on %d processors@." report.Engine.makespan
    nprocs;
  Format.printf "migrations: %d, futures: %d, steals: %d@."
    report.Engine.stats.Stats.migrations report.Engine.stats.Stats.futures
    report.Engine.stats.Stats.steals;
  Format.printf "utilization: %.2f@." report.Engine.utilization
