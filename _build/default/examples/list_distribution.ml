(* Figure 2 of the paper: why one mechanism is not enough.

     dune exec examples/list_distribution.exe

   A list of N elements evenly divided over P processors is traversed once,
   under each combination of layout (blocked / cyclic) and mechanism
   (computation migration / software caching).  Migration wins on the
   blocked layout (P-1 thread moves); caching wins on the cyclic layout
   (where migration would move N-1 times). *)

let () =
  let n = 4096 and nprocs = 32 in
  Format.printf "Traversing a %d-element list on %d processors@.@." n nprocs;
  Format.printf
    "paper's counts: blocked+migrate = P-1 = %d migrations;@.%17s cyclic+migrate = N-1 = %d migrations;@.%17s caching = N(P-1)/P = %d remote elements@.@."
    (Olden_benchmarks.Listdist.predicted_migrations ~n ~nprocs
       Olden_benchmarks.Listdist.Blocked)
    ""
    (Olden_benchmarks.Listdist.predicted_migrations ~n ~nprocs
       Olden_benchmarks.Listdist.Cyclic)
    ""
    (Olden_benchmarks.Listdist.predicted_remote_fetches ~n ~nprocs);
  let results = Olden_benchmarks.Listdist.all ~n ~nprocs () in
  List.iter
    (fun r -> Format.printf "%a@." Olden_benchmarks.Listdist.pp_result r)
    results;
  Format.printf
    "@.Each mechanism wins on one layout: the compiler must choose per \
     dereference.@."
