(* The operations available to an Olden program.  These are what the Olden
   compiler emits calls to; benchmark kernels are written directly against
   this interface. *)

let work n = Effect.perform (Effects.Work n)
let self () = Effect.perform Effects.Self
let nprocs () = Effect.perform Effects.Nprocs

(* ALLOC: allocate [words] words on processor [proc] (Section 2). *)
let alloc ~proc words = Effect.perform (Effects.Alloc (proc, words))
let alloc_local words = alloc ~proc:(self ()) words

(* A heap read/write through dereference site [site]. *)
let load site g field = Effect.perform (Effects.Load (site, g, field))
let store site g field v = Effect.perform (Effects.Store (site, g, field, v))

let load_ptr site g field = Value.to_ptr (load site g field)
let load_int site g field = Value.to_int (load site g field)
let load_float site g field = Value.to_float (load site g field)

let store_ptr site g field p = store site g field (Value.Ptr p)
let store_int site g field i = store site g field (Value.Int i)
let store_float site g field f = store site g field (Value.Float f)

(* futurecall / touch (Section 2). *)
let future body = Effect.perform (Effects.Future body)
let touch fut = Effect.perform (Effects.Touch fut)

(* A procedure-call boundary: Olden's return stub.  If the callee migrated,
   the thread returns to the caller's processor when the call completes;
   if it never migrated, the stub costs nothing. *)
let call f =
  let origin = self () in
  let result = f () in
  if self () <> origin then Effect.perform (Effects.Return_to origin);
  result

(* Measurement boundary: synchronize all processors and mark the time;
   used to separate structure building from the measured kernel. *)
let phase name = Effect.perform (Effects.Phase name)
