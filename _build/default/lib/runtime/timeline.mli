(** A text Gantt chart of processor activity, rendered from the busy
    intervals recorded by {!Machine} (enable with
    {!Machine.set_record_intervals} before the run). *)

val buckets :
  nprocs:int -> makespan:int -> width:int -> (int * int * int) list ->
  int array array * int
(** [(grid, bucket_len)]: busy cycles per processor per time bucket. *)

val render : ?width:int -> Format.formatter -> Machine.t -> unit
