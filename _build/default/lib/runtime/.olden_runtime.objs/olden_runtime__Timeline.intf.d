lib/runtime/timeline.mli: Format Machine
