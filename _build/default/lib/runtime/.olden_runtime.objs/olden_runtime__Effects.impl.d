lib/runtime/effects.ml: Effect Gptr Olden_cache Site Value
