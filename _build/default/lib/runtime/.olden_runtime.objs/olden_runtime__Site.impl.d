lib/runtime/site.ml: Format Hashtbl List Olden_config
