lib/runtime/ops.ml: Effect Effects Value
