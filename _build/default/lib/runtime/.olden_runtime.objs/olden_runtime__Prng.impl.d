lib/runtime/prng.ml: Int64
