lib/runtime/timeline.ml: Array Format List Machine
