lib/runtime/engine.mli: Machine Memory Olden_cache Olden_config Stats
