lib/runtime/ops.mli: Effects Gptr Site Value
