lib/runtime/site.mli: Format Olden_config
