lib/runtime/prng.mli:
