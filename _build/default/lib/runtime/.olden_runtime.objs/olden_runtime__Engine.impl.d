lib/runtime/engine.ml: Array Effect Effects Event_queue Fun Gptr List Machine Memory Olden_cache Olden_config Option Printf Site Stack Stats String
