(** Regeneration of the paper's tables and figures (see EXPERIMENTS.md).

    Every function prints to the given formatter; the heavyweight ones run
    the full benchmark suite and verify every run. *)

val table1 : Format.formatter -> unit -> unit
(** Benchmark descriptions and problem sizes. *)

val paper_table2 : (string * float list * float option) list
(** The paper's Table 2 numbers: per benchmark, speedups at 1..32
    processors and the migrate-only speedup at 32 where reported. *)

val table2 :
  ?scale:int -> ?procs:int list -> ?names:string list ->
  Format.formatter -> unit -> unit
(** Speedups for every benchmark (or [names]), with the paper's row
    printed underneath each measured row. *)

type table3_row = {
  t3_name : string;
  writes : int;
  writes_remote_pct : float;
  reads : int;
  reads_remote_pct : float;
  miss_local : float;
  miss_global : float;
  miss_bilateral : float;
  pages : int;
}

val table3_row : ?scale:int -> ?nprocs:int -> Common.spec -> table3_row
(** One benchmark's caching statistics under all three protocols. *)

val mc_specs : unit -> Common.spec list
(** The six benchmarks using both mechanisms (Table 3's rows). *)

val table3 : ?scale:int -> ?nprocs:int -> Format.formatter -> unit -> unit

val appendix_a : ?scale:int -> ?nprocs:int -> Format.formatter -> unit -> unit
(** Kernel cycles under the three coherence schemes: the "local knowledge
    wins on time" comparison. *)

val figure2 : ?n:int -> ?nprocs:int -> Format.formatter -> unit -> unit
(** Blocked vs. cyclic list distributions. *)

val fig3_src : string
val fig4_src : string
val fig5_src : string
val defaults_src : string
(** The paper's example programs, as mini-Olden sources. *)

val show_selection : Format.formatter -> string -> unit
(** Print the update matrices and mechanism selection for a source. *)

val figure3 : Format.formatter -> unit -> unit
val figure4 : Format.formatter -> unit -> unit
val figure5 : Format.formatter -> unit -> unit
val defaults : Format.formatter -> unit -> unit
