(** The break-even path-affinity experiment (Section 4 footnote 3 and the
    Section 7 platform discussion).

    A list whose [next] pointers stay local with probability [affinity] is
    traversed under both mechanisms; they break even near
    [1 - miss_cost / migration_cost] — about 86% for the paper's 7x CM-5
    ratio, just under the 90% selection threshold.  The
    {!Olden_config.Presets} cost models shift the crossover exactly as
    Section 7 predicts for a NOW or a hardware-DSM port. *)

type point = {
  affinity : float;
  migrate_cycles : int;
  cache_cycles : int;
}

val traverse :
  ?n:int -> ?nprocs:int -> ?costs:Olden_config.costs -> affinity:float ->
  mechanism:Olden_config.mechanism -> unit -> int
(** Kernel cycles for one traversal. *)

val measure :
  ?n:int -> ?nprocs:int -> ?costs:Olden_config.costs -> float -> point

val default_affinities : float list

val sweep :
  ?n:int -> ?nprocs:int -> ?costs:Olden_config.costs ->
  ?affinities:float list -> unit -> point list

val crossover : point list -> float option
(** First affinity at which migration is at least as fast as caching. *)

val predicted : Olden_config.costs -> float
(** The model: [1 - miss_round_trip / migration_latency]. *)

val pp_point : Format.formatter -> point -> unit

val report : ?n:int -> ?nprocs:int -> Format.formatter -> unit -> unit
(** Sweep all three machine presets and print measured vs. predicted
    break-even affinities. *)
