(** The ten benchmarks of Table 1, in the paper's order, registered with
    {!Suite}. *)

val specs : Common.spec list

val find : string -> Common.spec option
(** Case-insensitive lookup by name. *)
