(** Figure 2: the blocked vs. cyclic list distributions that motivate
    having both mechanisms.

    A list of N elements evenly divided among P processors is traversed
    once under each (layout, mechanism) combination.  Migration crosses a
    boundary only P-1 times on the blocked layout but N-1 times on the
    cyclic one; caching pays N(P-1)/P remote elements either way. *)

type layout = Blocked | Cyclic

val layout_to_string : layout -> string

type result = {
  layout : layout;
  mechanism : Olden_config.mechanism;
  n : int;
  nprocs : int;
  cycles : int;  (** traversal cycles (kernel only) *)
  migrations : int;
  remote_fetches : int;  (** remote reads through the cache *)
  sum : int;  (** traversal result, for verification *)
}

val run :
  ?n:int -> ?nprocs:int -> layout:layout ->
  mechanism:Olden_config.mechanism -> unit -> result

val predicted_migrations : n:int -> nprocs:int -> layout -> int
(** The paper's counts: P-1 (blocked) or N-1 (cyclic). *)

val predicted_remote_fetches : n:int -> nprocs:int -> int
(** N(P-1)/P remote elements under caching. *)

val all : ?n:int -> ?nprocs:int -> unit -> result list
(** All four combinations. *)

val pp_result : Format.formatter -> result -> unit
