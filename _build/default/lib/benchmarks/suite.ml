(* The benchmark suite and the Table 2 harness: sequential baseline plus
   speedups across processor counts, and the migrate-only ablation. *)

open Common

let all : spec list ref = ref []
let register spec = all := spec :: !all
let specs () = List.rev !all

let find name =
  List.find_opt
    (fun s -> String.lowercase_ascii s.name = String.lowercase_ascii name)
    (specs ())

type speedup_row = {
  spec : spec;
  seq_cycles : int;
  runs : (int * float * outcome) list; (* procs, speedup, outcome *)
  migrate_only_32 : float option;
}

(* Run [spec] sequentially: same program, one processor, no Olden
   overheads (Section 5's "true sequential implementation"). *)
let sequential_cycles ?(scale = 0) ~coherence spec =
  let scale = if scale = 0 then spec.default_scale else scale in
  let cfg = C.sequential_of (C.make ~nprocs:1 ~coherence ()) in
  let outcome = spec.run cfg ~scale in
  if not outcome.ok then
    failwith
      (Printf.sprintf "%s: sequential run failed verification (%s)" spec.name
         outcome.checksum);
  (measured_cycles spec outcome, outcome)

let speedups ?(scale = 0) ?(procs = [ 1; 2; 4; 8; 16; 32 ])
    ?(coherence = C.Local) ?(migrate_only = true) spec : speedup_row =
  let scale = if scale = 0 then spec.default_scale else scale in
  let seq_cycles, _ = sequential_cycles ~scale ~coherence spec in
  let runs =
    List.map
      (fun p ->
        let cfg = C.make ~nprocs:p ~coherence () in
        let outcome = spec.run cfg ~scale in
        if not outcome.ok then
          failwith
            (Printf.sprintf "%s: verification failed on %d processors (%s)"
               spec.name p outcome.checksum);
        let cycles = measured_cycles spec outcome in
        let speedup =
          if cycles = 0 then 0. else float_of_int seq_cycles /. float_of_int cycles
        in
        (p, speedup, outcome))
      procs
  in
  let migrate_only_32 =
    if migrate_only then begin
      let cfg = C.make ~nprocs:32 ~coherence ~policy:C.Migrate_only () in
      let outcome = spec.run cfg ~scale in
      if not outcome.ok then
        failwith (spec.name ^ ": migrate-only verification failed");
      let cycles = measured_cycles spec outcome in
      Some (float_of_int seq_cycles /. float_of_int cycles)
    end
    else None
  in
  { spec; seq_cycles; runs; migrate_only_32 }

let pp_speedup_row ppf row =
  Fmt.pf ppf "%-11s %-4s %12s " row.spec.name row.spec.choice
    (commas row.seq_cycles);
  List.iter (fun (_, s, _) -> Fmt.pf ppf "%6.2f " s) row.runs;
  match row.migrate_only_32 with
  | Some m -> Fmt.pf ppf "%8.2f" m
  | None -> Fmt.pf ppf "%8s" "-"
