lib/benchmarks/treeadd.ml: C Common Gptr Ops Site Value
