lib/benchmarks/bisort.ml: Array C Common Engine Gptr List Memory Olden_config Ops Printf Prng Site Value
