lib/benchmarks/perimeter.ml: Array C Common Float Gptr List Ops Printf Site Value
