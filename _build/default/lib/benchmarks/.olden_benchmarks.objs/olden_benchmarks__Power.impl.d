lib/benchmarks/power.ml: Array C Common Float Gptr Ops Printf Site Value
