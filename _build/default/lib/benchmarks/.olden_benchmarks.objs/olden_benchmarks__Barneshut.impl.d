lib/benchmarks/barneshut.ml: Array C Common Engine Float Gptr List Memory Olden_config Ops Printf Prng Site Value
