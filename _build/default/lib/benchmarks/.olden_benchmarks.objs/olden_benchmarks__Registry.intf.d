lib/benchmarks/registry.mli: Common
