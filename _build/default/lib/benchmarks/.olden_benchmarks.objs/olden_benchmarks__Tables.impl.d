lib/benchmarks/tables.ml: Common Format List Listdist Olden_compiler Olden_config Printf Registry Stats String Suite
