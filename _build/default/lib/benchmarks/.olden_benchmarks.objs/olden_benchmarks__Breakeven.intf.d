lib/benchmarks/breakeven.mli: Format Olden_config
