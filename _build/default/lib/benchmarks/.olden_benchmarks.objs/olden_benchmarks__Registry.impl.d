lib/benchmarks/registry.ml: Barneshut Bisort Common Em3d Health List Mst Perimeter Power String Suite Treeadd Tsp Voronoi
