lib/benchmarks/voronoi.ml: Array C Common Engine Float Gptr Hashtbl List Memory Olden_config Ops Printf Prng Set Site Value
