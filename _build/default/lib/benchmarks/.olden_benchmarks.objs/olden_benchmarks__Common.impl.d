lib/benchmarks/common.ml: Buffer Format List Machine Olden_compiler Olden_config Olden_runtime Printf Stats String
