lib/benchmarks/listdist.mli: Format Olden_config
