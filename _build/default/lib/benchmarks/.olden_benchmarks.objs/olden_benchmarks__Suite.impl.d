lib/benchmarks/suite.ml: C Common Fmt List Printf String
