lib/benchmarks/mst.ml: Array C Common Gptr Ops Printf Site Value
