lib/benchmarks/health.ml: Array C Common Engine Gptr List Memory Ops Printf Site Value
