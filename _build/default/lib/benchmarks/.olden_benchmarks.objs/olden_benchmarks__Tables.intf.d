lib/benchmarks/tables.mli: Common Format
