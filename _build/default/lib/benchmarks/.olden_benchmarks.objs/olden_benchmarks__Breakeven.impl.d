lib/benchmarks/breakeven.ml: Array Common Engine Fmt Gptr List Olden_config Ops Prng Site
