lib/benchmarks/suite.mli: Common Format Olden_config
