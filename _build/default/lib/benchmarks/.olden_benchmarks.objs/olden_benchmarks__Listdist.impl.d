lib/benchmarks/listdist.ml: Array C Common Engine Fmt Gptr Ops Site Stats
