lib/benchmarks/common.mli: Olden_compiler Olden_config Olden_runtime Stats
