lib/benchmarks/em3d.ml: Array C Common Engine Float Format Gptr List Memory Olden_config Ops Printf Prng Site Value
