(** The benchmark suite and the Table 2 harness: sequential baseline plus
    speedups across processor counts, and the migrate-only ablation. *)

val register : Common.spec -> unit
val specs : unit -> Common.spec list
val find : string -> Common.spec option

type speedup_row = {
  spec : Common.spec;
  seq_cycles : int;  (** the true-sequential baseline *)
  runs : (int * float * Common.outcome) list;  (** procs, speedup, outcome *)
  migrate_only_32 : float option;  (** Table 2's last column *)
}

val sequential_cycles :
  ?scale:int -> coherence:Olden_config.coherence -> Common.spec ->
  int * Common.outcome
(** Run the benchmark's sequential baseline (one processor, no Olden
    overheads — Section 5's "true sequential implementation").
    @raise Failure if verification fails. *)

val speedups :
  ?scale:int ->
  ?procs:int list ->
  ?coherence:Olden_config.coherence ->
  ?migrate_only:bool ->
  Common.spec ->
  speedup_row
(** One Table 2 row: baseline plus a run per processor count (default
    1..32) plus the migrate-only run at 32 processors.  Every run is
    verified. *)

val pp_speedup_row : Format.formatter -> speedup_row -> unit
