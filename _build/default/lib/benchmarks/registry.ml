(* The ten benchmarks of Table 1, in the paper's order. *)

let specs : Common.spec list =
  [
    Treeadd.spec;
    Power.spec;
    Tsp.spec;
    Mst.spec;
    Bisort.spec;
    Voronoi.spec;
    Em3d.spec;
    Barneshut.spec;
    Perimeter.spec;
    Health.spec;
  ]

let () = List.iter Suite.register specs

let find name =
  List.find_opt
    (fun (s : Common.spec) ->
      String.lowercase_ascii s.Common.name = String.lowercase_ascii name)
    specs
