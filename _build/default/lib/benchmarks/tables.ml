(* Regeneration of the paper's tables and figures (see EXPERIMENTS.md).

   Table 1: benchmark descriptions.
   Table 2: heuristic choice, sequential cycles, speedups for 1..32
            processors, and the migrate-only speedup at 32.
   Table 3: caching statistics for the M+C benchmarks on 32 processors
            under the three coherence protocols.
   Figure 2: blocked vs. cyclic list traversal under both mechanisms.
   Figures 3-5 and the Section 4.3 defaults are compiler-side and are
   printed from their IR models. *)

module C = Olden_config

let fprintf = Format.fprintf

(* --- Table 1 ----------------------------------------------------------- *)

let table1 ppf () =
  fprintf ppf "Table 1: Benchmark Descriptions@.";
  fprintf ppf "%-11s %-55s %s@." "Benchmark" "Description" "Problem Size";
  List.iter
    (fun (s : Common.spec) ->
      fprintf ppf "%-11s %-55s %s@." s.Common.name s.Common.descr
        s.Common.problem)
    Registry.specs

(* --- Table 2 ----------------------------------------------------------- *)

let paper_table2 =
  (* name, (speedups at 1,2,4,8,16,32), migrate-only at 32 (if reported) *)
  [
    ("TreeAdd", [ 0.73; 1.47; 2.93; 5.90; 11.81; 23.4 ], None);
    ("Power", [ 0.96; 1.94; 3.81; 6.92; 14.85; 27.5 ], None);
    ("TSP", [ 0.95; 1.92; 3.70; 6.70; 10.08; 15.8 ], None);
    ("MST", [ 0.96; 1.36; 2.20; 3.43; 4.56; 5.14 ], None);
    ("Bisort", [ 0.73; 1.35; 2.29; 3.52; 4.92; 6.33 ], Some 6.13);
    ("Voronoi", [ 0.75; 1.38; 2.41; 4.23; 6.88; 8.76 ], Some 0.47);
    ("EM3D", [ 0.86; 1.51; 2.69; 4.48; 6.72; 12.0 ], Some 0.05);
    ("Barnes-Hut", [ 0.74; 1.42; 3.00; 5.29; 8.13; 11.2 ], Some 0.01);
    ("Perimeter", [ 0.86; 1.70; 3.37; 6.09; 9.86; 14.1 ], Some 2.96);
    ("Health", [ 0.73; 1.47; 2.93; 5.72; 11.09; 16.42 ], Some 16.52);
  ]

let table2 ?(scale = 0) ?(procs = [ 1; 2; 4; 8; 16; 32 ]) ?names ppf () =
  let specs =
    match names with
    | None -> Registry.specs
    | Some ns -> List.filter_map Registry.find ns
  in
  fprintf ppf "Table 2: Results (simulated; paper values in parentheses)@.";
  fprintf ppf "%-11s %-6s %14s | %s | %s@." "Benchmark" "Choice" "Seq. cycles"
    (String.concat " "
       (List.map (fun p -> Printf.sprintf "   %5d" p) procs))
    "M-only(32)";
  List.iter
    (fun (s : Common.spec) ->
      let migrate_only = s.Common.choice = "M+C" in
      let row = Suite.speedups ~scale ~procs ~migrate_only s in
      let paper =
        List.assoc_opt s.Common.name
          (List.map (fun (n, sp, m) -> (n, (sp, m))) paper_table2)
      in
      fprintf ppf "%-11s %-6s %14s |" s.Common.name s.Common.choice
        (Common.commas row.Suite.seq_cycles);
      List.iter (fun (_, sp, _) -> fprintf ppf " %7.2f" sp) row.Suite.runs;
      (match row.Suite.migrate_only_32 with
      | Some m -> fprintf ppf " |  %7.2f" m
      | None -> fprintf ppf " |  %7s" "-");
      (match paper with
      | Some (ps, m) ->
          fprintf ppf "@.%11s %6s %14s |" "" "(paper)" "";
          List.iter (fun v -> fprintf ppf " %7.2f" v) ps;
          (match m with
          | Some m -> fprintf ppf " |  %7.2f" m
          | None -> fprintf ppf " |  %7s" "-")
      | None -> ());
      fprintf ppf "@.")
    specs

(* --- Table 3 ----------------------------------------------------------- *)

type table3_row = {
  t3_name : string;
  writes : int;
  writes_remote_pct : float;
  reads : int;
  reads_remote_pct : float;
  miss_local : float;
  miss_global : float;
  miss_bilateral : float;
  pages : int;
}

let table3_row ?(scale = 0) ?(nprocs = 32) (s : Common.spec) =
  let miss coherence =
    let scale = if scale = 0 then s.Common.default_scale else scale in
    let cfg = C.make ~nprocs ~coherence () in
    let o = s.Common.run cfg ~scale in
    if not o.Common.ok then
      failwith (s.Common.name ^ ": verification failed in Table 3 run");
    (o, 100. *. Stats.remote_miss_fraction (Common.measured_stats s o))
  in
  let o_local, miss_local = miss C.Local in
  let _, miss_global = miss C.Global in
  let _, miss_bilateral = miss C.Bilateral in
  let st = Common.measured_stats s o_local in
  {
    t3_name = s.Common.name;
    writes = st.Stats.cacheable_writes;
    writes_remote_pct = 100. *. Stats.remote_write_fraction st;
    reads = st.Stats.cacheable_reads;
    reads_remote_pct = 100. *. Stats.remote_read_fraction st;
    miss_local;
    miss_global;
    miss_bilateral;
    pages = st.Stats.pages_cached;
  }

let mc_specs () =
  List.filter (fun (s : Common.spec) -> s.Common.choice = "M+C") Registry.specs

let table3 ?(scale = 0) ?(nprocs = 32) ppf () =
  fprintf ppf "Table 3: Caching Statistics on %d processors@." nprocs;
  fprintf ppf "%-11s %12s %8s %12s %8s | %7s %7s %7s | %8s@." "Benchmark"
    "Writes" "%Remote" "Reads" "%Remote" "local" "global" "bilat."
    "Pages";
  List.iter
    (fun s ->
      let r = table3_row ~scale ~nprocs s in
      fprintf ppf "%-11s %12s %7.3f%% %12s %7.3f%% | %6.2f%% %6.2f%% %6.2f%% | %8d@."
        r.t3_name (Common.commas r.writes) r.writes_remote_pct
        (Common.commas r.reads) r.reads_remote_pct r.miss_local r.miss_global
        r.miss_bilateral r.pages)
    (mc_specs ())

(* --- Appendix A: protocol running times -------------------------------- *)

(* "the local knowledge scheme has the best running times for our
   benchmark suite": kernel cycles per protocol for the M+C codes. *)
let appendix_a ?(scale = 0) ?(nprocs = 32) ppf () =
  fprintf ppf
    "Appendix A: kernel cycles under the three coherence schemes (%d      processors)@."
    nprocs;
  fprintf ppf "%-11s %14s %14s %14s %10s@." "Benchmark" "local" "global"
    "bilateral" "best";
  List.iter
    (fun (s : Common.spec) ->
      let cycles coherence =
        let scale = if scale = 0 then s.Common.default_scale else scale in
        let cfg = C.make ~nprocs ~coherence () in
        let o = s.Common.run cfg ~scale in
        if not o.Common.ok then
          failwith (s.Common.name ^ ": verification failed in Appendix A run");
        Common.measured_cycles s o
      in
      let l = cycles C.Local
      and g = cycles C.Global
      and b = cycles C.Bilateral in
      let best =
        if l <= g && l <= b then "local"
        else if g <= b then "global"
        else "bilateral"
      in
      fprintf ppf "%-11s %14s %14s %14s %10s@." s.Common.name
        (Common.commas l) (Common.commas g) (Common.commas b) best)
    (mc_specs ())

(* --- Figure 2 ----------------------------------------------------------- *)

let figure2 ?(n = 4096) ?(nprocs = 32) ppf () =
  fprintf ppf "Figure 2: list distributions, N=%d on %d processors@." n nprocs;
  fprintf ppf
    "predicted: blocked/migrate P-1 = %d migrations; cyclic/migrate N-1 = %d; \
     caching N(P-1)/P = %d remote fetches@."
    (Listdist.predicted_migrations ~n ~nprocs Listdist.Blocked)
    (Listdist.predicted_migrations ~n ~nprocs Listdist.Cyclic)
    (Listdist.predicted_remote_fetches ~n ~nprocs);
  List.iter
    (fun r -> fprintf ppf "%a@." Listdist.pp_result r)
    (Listdist.all ~n ~nprocs ())

(* --- Figures 3-5: the compiler-side examples ---------------------------- *)

let fig3_src =
  {|
struct matrix {
  matrix left @ 90;
  matrix right @ 70;
  int val;
}
void loop(matrix s, matrix t, matrix u) {
  while (s != null) {
    s = s->left;
    t = t->right->left;
    u = s->right;
  }
}
|}

let fig4_src =
  {|
struct tree {
  tree left @ 90;
  tree right @ 70;
  int val;
}
int TreeAdd(tree t) {
  if (t == null) { return 0; }
  return TreeAdd(t->left) + TreeAdd(t->right) + t->val;
}
|}

let fig5_src =
  {|
struct tree { tree left @ 95; tree right @ 95; list lst @ 95; }
struct list { list next @ 95; int body; }
void Traverse(tree t) {
  if (t == null) { return; }
  Traverse(t->left);
  Traverse(t->right);
}
void WalkAndTraverse(list l, tree t) {
  while (l != null) {
    future Traverse(t);
    l = l->next;
  }
}
void Walk(list l) {
  while (l != null) {
    work(1);
    l = l->next;
  }
}
void TraverseAndWalk(tree t) {
  if (t == null) { return; }
  future TraverseAndWalk(t->left);
  future TraverseAndWalk(t->right);
  Walk(t->lst);
}
|}

let show_selection ppf src =
  let sel = Olden_compiler.Heuristic.of_source src in
  List.iter
    (fun l -> fprintf ppf "%a@." Olden_compiler.Analysis.pp_matrix l)
    sel.Olden_compiler.Heuristic.analysis.Olden_compiler.Analysis.loops;
  fprintf ppf "%a@." Olden_compiler.Heuristic.pp sel

let figure3 ppf () =
  fprintf ppf "Figure 3: induction variables in a simple loop@.";
  show_selection ppf fig3_src

let figure4 ppf () =
  fprintf ppf "Figure 4: TreeAdd's recursive update (97%% combined affinity)@.";
  show_selection ppf fig4_src

let figure5 ppf () =
  fprintf ppf
    "Figure 5: WalkAndTraverse bottleneck vs TraverseAndWalk (no bottleneck)@.";
  show_selection ppf fig5_src

(* Section 4.3's default behaviours: list traversals cache, tree traversals
   migrate, tree searches cache — all with default 70%% affinities. *)
let defaults_src =
  {|
struct node { node next; node left; node right; int val; }
int walk_list(node l) {
  int n = 0;
  while (l != null) {
    n = n + l->val;
    l = l->next;
  }
  return n;
}
int traverse_tree(node t) {
  if (t == null) { return 0; }
  return traverse_tree(t->left) + traverse_tree(t->right) + t->val;
}
node search_tree(node t, int key) {
  while (t != null) {
    if (t->val < key) { t = t->right; } else { t = t->left; }
  }
  return t;
}
|}

let defaults ppf () =
  fprintf ppf
    "Section 4.3 defaults: lists cache, tree traversals migrate, tree \
     searches cache@.";
  show_selection ppf defaults_src
