(* Figure 2: the blocked vs. cyclic list distributions that motivate having
   both mechanisms.

   A list of N elements evenly divided among P processors is traversed
   once.  Blocked: migration crosses a boundary only P-1 times, while
   caching pays a remote fetch for N(P-1)/P of the elements.  Cyclic: every
   next pointer crosses a boundary, so migration moves N-1 times while
   caching still pays N(P-1)/P fetches.  The paper's counts are exact and
   this module reproduces them, along with the resulting running times. *)

open Common

type layout = Blocked | Cyclic

let layout_to_string = function Blocked -> "blocked" | Cyclic -> "cyclic"

let off_next = 0
let off_value = 1
let node_words = 2

type result = {
  layout : layout;
  mechanism : C.mechanism;
  n : int;
  nprocs : int;
  cycles : int;
  migrations : int;
  remote_fetches : int; (* remote reads through the cache *)
  sum : int;
}

(* Build the list with element i owned by [owner i]; returns the head. *)
let build site_next site_value ~n ~owner =
  let cells = Array.init n (fun i -> Ops.alloc ~proc:(owner i) node_words) in
  for i = n - 1 downto 0 do
    Ops.store_int site_value cells.(i) off_value (i + 1);
    Ops.store_ptr site_next cells.(i) off_next
      (if i = n - 1 then Gptr.null else cells.(i + 1))
  done;
  cells.(0)

let rec walk site_next site_value p acc =
  if Gptr.is_null p then acc
  else begin
    let v = Ops.load_int site_value p off_value in
    Ops.work 4;
    walk site_next site_value (Ops.load_ptr site_next p off_next) (acc + v)
  end

(* Traverse an N-element list under the given layout and mechanism. *)
let run ?(n = 4096) ?(nprocs = 32) ~layout ~mechanism () =
  let cfg = C.make ~nprocs () in
  let engine = Engine.create cfg in
  let sum = ref 0 in
  Engine.exec engine (fun () ->
      let site_next = Site.make ~mech:mechanism "listdist.next" in
      let site_value = Site.make ~mech:mechanism "listdist.value" in
      let owner =
        match layout with
        | Blocked -> fun i -> block_owner ~nprocs ~n i
        | Cyclic -> fun i -> cyclic_owner ~nprocs i
      in
      let head = build site_next site_value ~n ~owner in
      Ops.phase "kernel";
      sum := Ops.call (fun () -> walk site_next site_value head 0));
  let cycles, stats = Engine.interval engine ~start:"kernel" ~stop:None in
  {
    layout;
    mechanism;
    n;
    nprocs;
    cycles;
    migrations = stats.Stats.migrations;
    remote_fetches = stats.Stats.cacheable_reads_remote;
    sum = !sum;
  }

(* The paper's predicted counts for a traversal. *)
let predicted_migrations ~n ~nprocs = function
  | Blocked -> nprocs - 1
  | Cyclic ->
      ignore nprocs;
      n - 1

let predicted_remote_fetches ~n ~nprocs = n * (nprocs - 1) / nprocs

let all ?(n = 4096) ?(nprocs = 32) () =
  [
    run ~n ~nprocs ~layout:Blocked ~mechanism:C.Migrate ();
    run ~n ~nprocs ~layout:Blocked ~mechanism:C.Cache ();
    run ~n ~nprocs ~layout:Cyclic ~mechanism:C.Migrate ();
    run ~n ~nprocs ~layout:Cyclic ~mechanism:C.Cache ();
  ]

let pp_result ppf r =
  Fmt.pf ppf "%-8s %-8s cycles=%-10d migrations=%-6d remote-fetches=%-6d"
    (layout_to_string r.layout)
    (C.mechanism_to_string r.mechanism)
    r.cycles r.migrations r.remote_fetches
