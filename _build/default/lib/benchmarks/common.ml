(* Shared infrastructure for the ten Olden benchmarks.

   Every benchmark provides a [spec]: identity and problem-size strings
   (Table 1), the paper's heuristic-choice column (Table 2), a
   mini-language model of its kernel (so the compiler heuristic actually
   chooses the mechanisms the OCaml kernel uses), and a driver that builds
   the structure, runs the kernel between phase marks, and verifies the
   result against a sequential reference. *)

module C = Olden_config
module Ops = Olden_runtime.Ops
module Site = Olden_runtime.Site
module Engine = Olden_runtime.Engine
module Prng = Olden_runtime.Prng
module Heuristic = Olden_compiler.Heuristic
module Analysis = Olden_compiler.Analysis

type outcome = {
  ok : bool; (* result matches the sequential reference *)
  checksum : string;
  kernel_cycles : int;
  total_cycles : int;
  kernel_stats : Stats.t;
  total_stats : Stats.t;
}

type spec = {
  name : string;
  descr : string; (* Table 1 description *)
  problem : string; (* Table 1 problem size (at scale 1) *)
  choice : string; (* paper's heuristic choice: "M" or "M+C" *)
  whole_program : bool; (* Table 2's W marker *)
  ir : string; (* mini-language model of the kernel *)
  default_scale : int; (* problem-size divisor used by the bench harness *)
  run : C.t -> scale:int -> outcome;
}

(* Cycles counted for Table 2: whole-program benchmarks (Power, Barnes-Hut,
   Health) report total time, the rest kernel-only. *)
let measured_cycles spec outcome =
  if spec.whole_program then outcome.total_cycles else outcome.kernel_cycles

let measured_stats spec outcome =
  if spec.whole_program then outcome.total_stats else outcome.kernel_stats

(* --- Driving a build/kernel program ----------------------------------- *)

(* Driver hook: when set, [execute] records busy intervals and leaves a
   rendered Gantt chart in [last_timeline] (used by olden-run's
   --timeline). *)
let record_timeline = ref false
let last_timeline : string option ref = ref None

(* The program receives the engine so its verification step can inspect
   the heap directly (at host level, free of simulated cost). *)
let execute (cfg : C.t) ~(program : Engine.t -> string * bool) : outcome =
  let engine = Engine.create cfg in
  if !record_timeline then
    Machine.set_record_intervals (Engine.machine engine) true;
  let result = ref ("", false) in
  Engine.exec engine (fun () -> result := program engine);
  if !record_timeline then
    last_timeline :=
      Some
        (Format.asprintf "%a" (Olden_runtime.Timeline.render ?width:None)
           (Engine.machine engine));
  let report = Engine.report engine in
  let kernel_cycles, kernel_stats =
    match List.assoc_opt "kernel" report.Engine.phases with
    | Some _ -> Engine.interval engine ~start:"kernel" ~stop:None
    | None -> (report.Engine.makespan, report.Engine.stats)
  in
  let checksum, ok = !result in
  {
    ok;
    checksum;
    kernel_cycles;
    total_cycles = report.Engine.makespan;
    kernel_stats;
    total_stats = report.Engine.stats;
  }

(* --- Coupling kernels to the compiler heuristic ------------------------ *)

(* Run the heuristic on a benchmark's IR model and return a site factory:
   the site for dereference [func.var->field] gets the mechanism the
   heuristic chose for that dereference in the model.  [fallback] covers
   dereferences the model does not contain (e.g. build-phase stores, which
   the paper does not time). *)
let sites_of_ir ir =
  let sel = Heuristic.of_source ir in
  let mech ~func ~var ~field ~fallback =
    let found =
      List.find_opt
        (fun (d : Analysis.deref_info) ->
          d.Analysis.deref_func = func
          && d.Analysis.dbase = Some var
          && d.Analysis.dfield = field)
        sel.Heuristic.analysis.Analysis.derefs
    in
    match found with
    | Some d -> Heuristic.mechanism_of_site sel d.Analysis.deref_id
    | None -> fallback
  in
  (sel, mech)

let site_of mech_fn ~func ~var ~field ~fallback =
  Site.make
    ~mech:(mech_fn ~func ~var ~field ~fallback)
    (Printf.sprintf "%s.%s->%s" func var field)

(* --- Data-distribution helpers ---------------------------------------- *)

(* Processor owning block [i] of [n] when distributed blocked over
   [nprocs] (Figure 2's blocked layout). *)
let block_owner ~nprocs ~n i =
  if n <= 0 then 0 else min (nprocs - 1) (i * nprocs / n)

(* Cyclic layout (Figure 2). *)
let cyclic_owner ~nprocs i = i mod nprocs

(* Scaled problem size: never below [floor]. *)
let scaled ~scale ~floor n = max floor (n / scale)

(* Format helpers for table output. *)
let commas n =
  let s = string_of_int n in
  let len = String.length s in
  let b = Buffer.create (len + 4) in
  String.iteri
    (fun i ch ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char b ',';
      Buffer.add_char b ch)
    s;
  Buffer.contents b
