(* The break-even path-affinity experiment (Section 4, footnote 3, and the
   Section 7 discussion of other platforms).

   A list is laid out so that each [next] pointer stays on its processor
   with probability [affinity] and otherwise crosses to a random other
   processor.  Traversing it with computation migration costs one
   migration per crossing; with software caching it costs a line fetch
   per remote element (elements are padded to a full line so spatial
   locality does not blur the model).  The mechanisms break even at

       affinity* ~ 1 - miss_cost / migration_cost

   which is ~86% for the paper's 7x CM-5 ratio — just below the 90%
   selection threshold.  On a network of workstations the ratio is small
   and migration wins almost everywhere; with hardware DSM support the
   ratio is large and caching wins almost everywhere (Section 7). *)

open Common

(* One element per cache line, so each remote element is one fetch. *)
let node_words = Olden_config.Geometry.words_per_line
let off_next = 0
let off_value = 1

type point = {
  affinity : float;
  migrate_cycles : int;
  cache_cycles : int;
}

let traverse ?(n = 4096) ?(nprocs = 32) ?costs ~affinity ~mechanism () =
  let costs =
    match costs with Some c -> c | None -> Olden_config.default_costs
  in
  let cfg = Olden_config.make ~nprocs ~costs () in
  let engine = Engine.create cfg in
  let sum = ref 0 in
  Engine.exec engine (fun () ->
      let site_next = Site.make ~mech:mechanism "breakeven.next" in
      let site_value = Site.make ~mech:mechanism "breakeven.value" in
      let prng = Prng.create (int_of_float (affinity *. 1000.) + (7 * n)) in
      (* owners: stay with probability [affinity], else hop somewhere else *)
      let owners = Array.make n 0 in
      for i = 1 to n - 1 do
        owners.(i) <-
          (if nprocs = 1 || Prng.float prng < affinity then owners.(i - 1)
           else (owners.(i - 1) + 1 + Prng.int prng (nprocs - 1)) mod nprocs)
      done;
      let cells =
        Array.init n (fun i -> Ops.alloc ~proc:owners.(i) node_words)
      in
      for i = n - 1 downto 0 do
        Ops.store_int site_value cells.(i) off_value 1;
        Ops.store_ptr site_next cells.(i) off_next
          (if i = n - 1 then Gptr.null else cells.(i + 1))
      done;
      Ops.phase "kernel";
      let rec walk p acc =
        if Gptr.is_null p then acc
        else begin
          let v = Ops.load_int site_value p off_value in
          Ops.work 4;
          walk (Ops.load_ptr site_next p off_next) (acc + v)
        end
      in
      sum := Ops.call (fun () -> walk cells.(0) 0));
  assert (!sum = n);
  fst (Engine.interval engine ~start:"kernel" ~stop:None)

let measure ?n ?nprocs ?costs affinity =
  {
    affinity;
    migrate_cycles =
      traverse ?n ?nprocs ?costs ~affinity ~mechanism:Olden_config.Migrate ();
    cache_cycles =
      traverse ?n ?nprocs ?costs ~affinity ~mechanism:Olden_config.Cache ();
  }

let default_affinities =
  [ 0.50; 0.60; 0.70; 0.75; 0.80; 0.84; 0.86; 0.88; 0.90; 0.92; 0.95; 0.98 ]

let sweep ?n ?nprocs ?costs ?(affinities = default_affinities) () =
  List.map (fun a -> measure ?n ?nprocs ?costs a) affinities

(* First affinity at which migration is at least as fast as caching. *)
let crossover points =
  List.find_map
    (fun p ->
      if p.migrate_cycles <= p.cache_cycles then Some p.affinity else None)
    points

(* The model's prediction: migration per crossing vs a fetch per remote
   element. *)
let predicted (c : Olden_config.costs) =
  1.
  -. (float_of_int (Olden_config.miss_round_trip c)
      /. float_of_int (Olden_config.migration_latency c))

let pp_point ppf p =
  Fmt.pf ppf "affinity %4.0f%%: migrate %9d cycles, cache %9d cycles  %s"
    (100. *. p.affinity) p.migrate_cycles p.cache_cycles
    (if p.migrate_cycles <= p.cache_cycles then "<- migrate wins" else "")

let report ?n ?nprocs ppf () =
  List.iter
    (fun (name, costs) ->
      let points = sweep ?n ?nprocs ~costs () in
      Fmt.pf ppf "@.%s (migration/miss ratio %.1f, predicted break-even %.0f%%):@."
        name
        (Olden_config.Presets.migration_miss_ratio costs)
        (100. *. predicted costs);
      List.iter (fun p -> Fmt.pf ppf "  %a@." pp_point p) points;
      match crossover points with
      | Some a -> Fmt.pf ppf "  measured break-even: %.0f%%@." (100. *. a)
      | None -> Fmt.pf ppf "  no break-even in the sweep (caching always wins)@.")
    Olden_config.Presets.by_name
