(** Update-matrix analysis (Section 4.2 of the paper).

    For every control loop — iterative [while] loops and the recursion of
    a self-recursive function — computes an update matrix: entry [(s, t)]
    is the path-affinity with which [s]'s value at the end of an iteration
    is [t]'s value from the beginning, dereferenced through a path of
    fields.  Diagonal entries identify induction variables.

    The analysis is one abstract iteration of each loop body over the
    domain [Path (origin, affinity, nderefs) | Unknown], with the paper's
    combination rules: field paths multiply, if-joins average (and drop
    updates absent from a branch), multiple recursive-call updates combine
    as [1 - prod (1 - a_i)].  Identity bindings (no dereference) and
    non-pointer variables are not structure-traversing updates.

    Exactness is not required: a wrong matrix yields a slower program,
    never a wrong one (Section 4.1). *)

type absval =
  | Path of string * float * int
      (** origin variable at loop entry, product affinity, dereference
          count *)
  | Unknown

type loop_info = {
  lid : Ast.loop_id;
  in_func : string;
  parent : Ast.loop_id option;  (** innermost enclosing control loop *)
  matrix : (string * string * float) list;
      (** (updatee, origin, affinity) entries *)
  parallel : bool;  (** contains futurecalls: may be parallelized *)
}

type call_info = {
  callee : string;
  caller : string;
  call_loop : Ast.loop_id option;  (** innermost loop containing the call *)
  arg_values : absval list;  (** abstract argument values at the call *)
  is_future : bool;
}

type deref_info = {
  deref_id : int;
  dfield : string;
  dbase : string option;  (** syntactic base variable of the chain *)
  deref_loop : Ast.loop_id option;
  deref_func : string;
}

type t = {
  prog : Ast.program;
  loops : loop_info list;
  calls : call_info list;
  derefs : deref_info list;
}

val analyze : Ast.program -> t

val find_loop : t -> Ast.loop_id -> loop_info option

val induction_variables : loop_info -> (string * float) list
(** Diagonal matrix entries: variables updated by themselves. *)

val pp_matrix : Format.formatter -> loop_info -> unit
