(* A light type checker for the mini-Olden language.

   Its main product is the static struct type of every dereference's base
   expression, which the interpreter needs to turn field names into word
   offsets.  It also rejects programs with unknown structs, fields,
   functions, or obviously ill-typed dereferences — errors the real Olden
   front end (lcc) would catch. *)

open Ast
module Env = Map.Make (String)

exception Type_error of string

type info = {
  deref_struct : (int, string) Hashtbl.t; (* deref id -> base struct name *)
}

let err fmt = Printf.ksprintf (fun s -> raise (Type_error s)) fmt

let rec type_expr prog info (env : typ Env.t) (e : expr) : typ =
  match e with
  | Null -> Tvoid (* null unifies with any pointer *)
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Var v -> (
      match Env.find_opt v env with
      | Some t -> t
      | None -> err "unbound variable %s" v)
  | Deref d -> (
      let bt = type_expr prog info env d.d_base in
      match bt with
      | Tstruct sname -> (
          match find_struct prog sname with
          | None -> err "unknown struct %s" sname
          | Some sd -> (
              match find_field sd d.d_field with
              | None -> err "struct %s has no field %s" sname d.d_field
              | Some fd ->
                  Hashtbl.replace info.deref_struct d.d_id sname;
                  fd.fd_type))
      | Tint | Tfloat | Tvoid ->
          err "dereference of non-pointer expression (field %s)" d.d_field)
  | Call (f, args) | Future_call (f, args) -> (
      match find_func prog f with
      | None -> err "unknown function %s" f
      | Some fn ->
          if List.length args <> List.length fn.f_params then
            err "%s expects %d argument(s), got %d" f
              (List.length fn.f_params) (List.length args);
          List.iter (fun a -> ignore (type_expr prog info env a)) args;
          fn.f_ret)
  | Touch e' -> type_expr prog info env e'
  | Unop (_, e') -> type_expr prog info env e'
  | Binop (op, a, b) -> (
      let ta = type_expr prog info env a in
      let tb = type_expr prog info env b in
      match op with
      | Add | Sub | Mul | Div | Mod -> (
          match (ta, tb) with
          | Tfloat, _ | _, Tfloat -> Tfloat
          | _ -> Tint)
      | Eq | Ne | Lt | Le | Gt | Ge | And | Or -> Tint)
  | Alloc_on (sname, pe) ->
      if find_struct prog sname = None then err "unknown struct %s" sname;
      ignore (type_expr prog info env pe);
      Tstruct sname
  | Builtin (name, args) -> (
      List.iter (fun a -> ignore (type_expr prog info env a)) args;
      match name with
      | "self" | "nprocs" | "rand" -> Tint
      | "work" | "print" -> Tvoid
      | other -> err "unknown builtin %s" other)

let rec check_block prog info env (b : block) : typ Env.t =
  List.fold_left (check_stmt prog info) env b

and check_stmt prog info env (s : stmt) : typ Env.t =
  match s with
  | Decl (t, v, init) ->
      (match t with
      | Tstruct sname when find_struct prog sname = None ->
          err "unknown struct %s in declaration of %s" sname v
      | _ -> ());
      (match init with
      | Some e -> ignore (type_expr prog info env e)
      | None -> ());
      Env.add v t env
  | Assign (v, e) ->
      if not (Env.mem v env) then err "assignment to unbound variable %s" v;
      ignore (type_expr prog info env e);
      env
  | Field_assign (d, e) ->
      ignore (type_expr prog info env (Deref d));
      ignore (type_expr prog info env e);
      env
  | If (c, th, el) ->
      ignore (type_expr prog info env c);
      ignore (check_block prog info env th);
      ignore (check_block prog info env el);
      env
  | While w ->
      ignore (type_expr prog info env w.w_cond);
      ignore (check_block prog info env w.w_body);
      env
  | Return (Some e) ->
      ignore (type_expr prog info env e);
      env
  | Return None -> env
  | Expr e ->
      ignore (type_expr prog info env e);
      env

let check (prog : program) : info =
  let info = { deref_struct = Hashtbl.create 64 } in
  (* struct well-formedness *)
  List.iter
    (fun sd ->
      List.iter
        (fun fd ->
          match fd.fd_type with
          | Tstruct s when find_struct prog s = None ->
              err "struct %s: field %s has unknown type %s" sd.sd_name
                fd.fd_name s
          | Tvoid -> err "struct %s: field %s cannot be void" sd.sd_name fd.fd_name
          | _ -> ())
        sd.sd_fields)
    prog.structs;
  List.iter
    (fun f ->
      let env =
        List.fold_left (fun m (t, v) -> Env.add v t m) Env.empty f.f_params
      in
      ignore (check_block prog info env f.f_body))
    prog.funcs;
  info

let struct_of_deref info d_id = Hashtbl.find_opt info.deref_struct d_id
