(* Mechanism selection (Section 4.3).

   Pass 1 — each control loop in isolation: select the induction variable
   whose self-update has the strongest affinity.  Computation migration is
   chosen for it if that affinity reaches the threshold (90%) or the loop
   is parallelizable (threads are only created at migrations); otherwise
   its dereferences are cached.  A loop with no induction variable inherits
   its parent's migration variable.  Every other pointer variable is
   cached.

   Pass 2 — interactions between nested loops: migration inside a parallel
   loop serializes on the owner of the inner structure's root if the inner
   induction variable's initial value does not change across outer
   iterations (Figure 5's WalkAndTraverse).  The approximation: if the
   inner loop's induction variable (or, across a call boundary, the actual
   argument feeding it) is not updated by the parent loop, demote the inner
   loop's choice to caching. *)

open Ast

type choice = {
  c_lid : loop_id;
  c_func : string;
  c_variable : string option; (* the selected induction variable *)
  c_affinity : float option;
  mutable c_mechanism : Olden_config.mechanism;
  mutable c_reason : string;
}

type t = {
  analysis : Analysis.t;
  choices : choice list;
  site_mechanisms : (int * Olden_config.mechanism) list; (* per deref id *)
  bottlenecks : (loop_id * string) list; (* demoted loops and why *)
}

let threshold = Olden_config.Heuristic_params.threshold

(* --- Pass 1: per-loop selection -------------------------------------- *)

let choose_for_loop ?(threshold = threshold) analysis
    (l : Analysis.loop_info) parent_choice =
  let diag = Analysis.induction_variables l in
  match diag with
  | [] -> (
      (* no induction variable: follow the parent's migration variable *)
      match parent_choice with
      | Some pc when pc.c_mechanism = Olden_config.Migrate ->
          {
            c_lid = l.lid;
            c_func = l.in_func;
            c_variable = pc.c_variable;
            c_affinity = None;
            c_mechanism = Olden_config.Migrate;
            c_reason = "no induction variable; inherits parent's selection";
          }
      | Some _ | None ->
          {
            c_lid = l.lid;
            c_func = l.in_func;
            c_variable = None;
            c_affinity = None;
            c_mechanism = Olden_config.Cache;
            c_reason = "no induction variable; all dereferences cached";
          })
  | _ ->
      let v, a =
        List.fold_left
          (fun (bv, ba) (v, a) -> if a > ba then (v, a) else (bv, ba))
          (fst (List.hd diag), snd (List.hd diag))
          (List.tl diag)
      in
      ignore analysis;
      if a >= threshold then
        {
          c_lid = l.lid;
          c_func = l.in_func;
          c_variable = Some v;
          c_affinity = Some a;
          c_mechanism = Olden_config.Migrate;
          c_reason =
            Printf.sprintf "affinity %.0f%% >= threshold %.0f%%" (100. *. a)
              (100. *. threshold);
        }
      else if l.parallel then
        {
          c_lid = l.lid;
          c_func = l.in_func;
          c_variable = Some v;
          c_affinity = Some a;
          c_mechanism = Olden_config.Migrate;
          c_reason =
            Printf.sprintf
              "affinity %.0f%% below threshold but loop is parallelizable"
              (100. *. a);
        }
      else
        {
          c_lid = l.lid;
          c_func = l.in_func;
          c_variable = Some v;
          c_affinity = Some a;
          c_mechanism = Olden_config.Cache;
          c_reason =
            Printf.sprintf "affinity %.0f%% < threshold %.0f%%" (100. *. a)
              (100. *. threshold);
        }

(* Process loops parents-first so inheritance works. *)
let rec choice_for ?threshold analysis memo (l : Analysis.loop_info) =
  match Hashtbl.find_opt memo l.Analysis.lid with
  | Some c -> c
  | None ->
      let parent_choice =
        match l.Analysis.parent with
        | None -> None
        | Some pid -> (
            match Analysis.find_loop analysis pid with
            | None -> None
            | Some pl -> Some (choice_for ?threshold analysis memo pl))
      in
      let c = choose_for_loop ?threshold analysis l parent_choice in
      Hashtbl.replace memo l.Analysis.lid c;
      c

(* --- Pass 2: bottleneck detection ------------------------------------ *)

(* Is variable [v] updated by loop [l] (it appears as an updatee)? *)
let updated_in (l : Analysis.loop_info) v =
  List.exists (fun (s, _, _) -> s = v) l.Analysis.matrix

(* Ancestor chain of a loop, innermost first, excluding the loop itself. *)
let rec ancestors analysis lid =
  match Analysis.find_loop analysis lid with
  | None -> []
  | Some l -> (
      match l.Analysis.parent with
      | None -> []
      | Some pid -> (
          match Analysis.find_loop analysis pid with
          | None -> []
          | Some pl -> pl :: ancestors analysis pid))

(* Which functions execute (transitively) inside a parallelizable loop:
   their loops can bottleneck on a shared root even when the parallel loop
   is several calls away (Barnes-Hut's tree walk below the per-body loop
   below the parallel spawn).  Fixpoint over the call graph. *)
let parallel_context_functions analysis =
  let ctx : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let loop_parallel_inclusive lid =
    match Analysis.find_loop analysis lid with
    | None -> false
    | Some l ->
        l.Analysis.parallel
        || List.exists (fun a -> a.Analysis.parallel) (ancestors analysis lid)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (c : Analysis.call_info) ->
        if c.Analysis.callee <> c.Analysis.caller then begin
          let in_ctx =
            (match c.Analysis.call_loop with
            | Some lid -> loop_parallel_inclusive lid
            | None -> false)
            || Hashtbl.mem ctx c.Analysis.caller
          in
          if in_ctx && not (Hashtbl.mem ctx c.Analysis.callee) then begin
            Hashtbl.add ctx c.Analysis.callee ();
            changed := true
          end
        end)
      analysis.Analysis.calls
  done;
  ctx

let bottleneck_pass analysis choices =
  let ctx_funcs = parallel_context_functions analysis in
  let in_parallel_context (l : Analysis.loop_info) =
    List.exists
      (fun a -> a.Analysis.parallel)
      (ancestors analysis l.Analysis.lid)
    || Hashtbl.mem ctx_funcs l.Analysis.in_func
  in
  let demoted = ref [] in
  let demote c why =
    c.c_mechanism <- Olden_config.Cache;
    c.c_reason <- why;
    demoted := (c.c_lid, why) :: !demoted
  in
  List.iter
    (fun c ->
      match (c.c_mechanism, c.c_variable) with
      | Olden_config.Cache, _ | _, None -> ()
      | Olden_config.Migrate, Some v -> (
          match Analysis.find_loop analysis c.c_lid with
          | None -> ()
          | Some l ->
              (* Case 1: nested directly below a parallelizable loop in the
                 same function, with [v] not refreshed on the way down. *)
              let direct_bottleneck =
                match ancestors analysis l.Analysis.lid with
                | [] -> false
                | chain ->
                    List.exists (fun a -> a.Analysis.parallel) chain
                    && not (List.exists (fun a -> updated_in a v) chain)
              in
              (* Case 2: the loop heads its function, which is called in a
                 parallel context with an argument for [v] that does not
                 vary across the caller's iterations. *)
              let call_bottleneck =
                l.Analysis.parent = None
                && in_parallel_context l
                &&
                let fname = l.Analysis.in_func in
                let param_index =
                  match Ast.find_func analysis.Analysis.prog fname with
                  | None -> None
                  | Some f ->
                      let rec index i = function
                        | [] -> None
                        | (_, p) :: rest ->
                            if p = v then Some i else index (i + 1) rest
                      in
                      index 0 f.f_params
                in
                match param_index with
                | None -> false
                | Some idx ->
                    List.exists
                      (fun (cinfo : Analysis.call_info) ->
                        cinfo.Analysis.callee = fname
                        && cinfo.Analysis.caller <> fname
                        &&
                        match List.nth_opt cinfo.Analysis.arg_values idx with
                        | Some (Analysis.Path (origin, _, _)) -> (
                            (* invariant unless an enclosing loop of the
                               call refreshes the origin every iteration *)
                            match cinfo.Analysis.call_loop with
                            | None -> true
                            | Some lid ->
                                let loops =
                                  match Analysis.find_loop analysis lid with
                                  | Some pl -> pl :: ancestors analysis lid
                                  | None -> []
                                in
                                not
                                  (List.exists
                                     (fun pl -> updated_in pl origin)
                                     loops))
                        | Some Analysis.Unknown | None ->
                            (* a computed argument generally varies *)
                            false)
                      analysis.Analysis.calls
              in
              if direct_bottleneck || call_bottleneck then
                demote c
                  "induction variable's initial value is invariant across a \
                   parallel loop: migration would serialize on a shared root"))
    choices;
  List.rev !demoted

(* --- Per-site mechanism assignment ----------------------------------- *)

(* The chain of enclosing loops of a loop id, innermost first. *)
let rec loop_chain analysis lid =
  match Analysis.find_loop analysis lid with
  | None -> []
  | Some l -> (
      l
      ::
      (match l.Analysis.parent with
      | None -> []
      | Some pid -> loop_chain analysis pid))

let site_mechanism analysis memo (d : Analysis.deref_info) =
  match (d.Analysis.dbase, d.Analysis.deref_loop) with
  | None, _ | _, None ->
      (* dereference outside any control loop, or through a temporary:
         a single access is cheaper through the cache *)
      Olden_config.Cache
  | Some v, Some lid ->
      let chain = loop_chain analysis lid in
      let migrates =
        List.exists
          (fun l ->
            match Hashtbl.find_opt memo l.Analysis.lid with
            | Some c ->
                c.c_mechanism = Olden_config.Migrate && c.c_variable = Some v
            | None -> false)
          chain
      in
      if migrates then Olden_config.Migrate else Olden_config.Cache

(* [threshold] overrides the 90% default — the knob a port to another
   machine would turn (Section 7; the programmer-facing equivalent is
   scaling the affinities). *)
let select ?threshold (analysis : Analysis.t) : t =
  let memo = Hashtbl.create 16 in
  let choices =
    List.map
      (fun l -> choice_for ?threshold analysis memo l)
      analysis.Analysis.loops
  in
  let bottlenecks = bottleneck_pass analysis choices in
  let site_mechanisms =
    List.map
      (fun d -> (d.Analysis.deref_id, site_mechanism analysis memo d))
      analysis.Analysis.derefs
  in
  { analysis; choices; site_mechanisms; bottlenecks }

let of_program ?threshold prog = select ?threshold (Analysis.analyze prog)
let of_source ?threshold src = of_program ?threshold (Parser.parse_program src)

let mechanism_of_site t deref_id =
  match List.assoc_opt deref_id t.site_mechanisms with
  | Some m -> m
  | None -> Olden_config.Cache

(* Overall characterization, for Table 2's "heuristic choice" column:
   M if every site migrates or none caches remote data, M+C if both
   mechanisms are in use. *)
let uses_migration t =
  List.exists (fun (_, m) -> m = Olden_config.Migrate) t.site_mechanisms

let uses_caching t =
  List.exists (fun (_, m) -> m = Olden_config.Cache) t.site_mechanisms

let pp_choice ppf c =
  Fmt.pf ppf "%s (%s): %s%s -> %s  [%s]"
    (loop_id_to_string c.c_lid)
    c.c_func
    (match c.c_variable with Some v -> v | None -> "<none>")
    (match c.c_affinity with
    | Some a -> Printf.sprintf " @%.0f%%" (100. *. a)
    | None -> "")
    (Olden_config.mechanism_to_string c.c_mechanism)
    c.c_reason

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@,@,@[<v 2>site mechanisms:@,%a@]@]"
    Fmt.(list ~sep:cut pp_choice)
    t.choices
    Fmt.(
      list ~sep:cut (fun ppf (id, m) ->
          let d =
            List.find_opt
              (fun d -> d.Analysis.deref_id = id)
              t.analysis.Analysis.derefs
          in
          match d with
          | Some d ->
              pf ppf "#%d %s->%s (%s): %s" id
                (match d.Analysis.dbase with Some v -> v | None -> "_")
                d.Analysis.dfield d.Analysis.deref_func
                (Olden_config.mechanism_to_string m)
          | None -> pf ppf "#%d: %s" id (Olden_config.mechanism_to_string m)))
    t.site_mechanisms
