(** Recursive-descent parser for the mini-Olden language: a restricted C
    with structs carrying [@] path-affinity hints, [future]/[touch]
    annotations, and placed [alloc] (Section 2 of the paper).

    Dereference sites and while loops are numbered in parse order, so a
    given source text always yields the same ids. *)

exception Error of string

val parse_program : string -> Ast.program
(** @raise Error on a syntax error (with a line number).
    @raise Lexer.Error on a lexical error. *)
