(* Path-affinity arithmetic (Sections 4.1-4.2).

   A path-affinity is the probability that following a pointer path stays
   on the local processor.  The combination rules:

   - a path of several fields multiplies the per-field affinities;
   - an if-join averages the two branches' updates (assume each branch is
     taken half the time);
   - multiple updates via recursion combine as the probability that at
     least one is local: 1 - prod (1 - a_i). *)

type t = float

let check a =
  if a < 0. || a > 1. then invalid_arg (Printf.sprintf "affinity %g out of [0,1]" a);
  a

let of_percent p = check (p /. 100.)
let to_percent a = 100. *. a

(* t = t->f1->f2: affinities along a path multiply. *)
let along_path fields = check (List.fold_left ( *. ) 1. fields)

(* Join point at the end of an if-then-else. *)
let join a b = check ((a +. b) /. 2.)

(* Multiple recursive-call updates: probability at least one is local
   (Figure 4: left 90%, right 70% -> 1 - 0.1*0.3 = 97%). *)
let recursion_combine = function
  | [] -> invalid_arg "Affinity.recursion_combine: no updates"
  | affs -> check (1. -. List.fold_left (fun acc a -> acc *. (1. -. a)) 1. affs)

let default = Olden_config.Heuristic_params.default_affinity
let threshold = Olden_config.Heuristic_params.threshold

let pp ppf a = Fmt.pf ppf "%g%%" (to_percent a)
