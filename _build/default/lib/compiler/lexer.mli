(** Lexer for the mini-Olden language. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string
  | PUNCT of string
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable peeked : (token * int * int) option;
}

exception Error of string

val keywords : string list

val create : string -> t

val next_token : t -> token
(** @raise Error on an unexpected character or unterminated comment. *)

val peek_token : t -> token

val token_to_string : token -> string
