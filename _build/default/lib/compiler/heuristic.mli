(** Mechanism selection (Section 4.3 of the paper).

    Pass 1 considers each control loop in isolation: the induction
    variable with the strongest self-update affinity gets computation
    migration if that affinity reaches the 90% threshold or the loop is
    parallelizable (threads are only created at migrations); every other
    variable is cached; a loop with no induction variable inherits its
    parent's migration variable.

    Pass 2 detects bottlenecks: migration inside a (possibly transitively
    enclosing) parallelizable loop serializes on the owner of the inner
    structure's root when the inner induction variable's initial value is
    invariant across the outer iterations (Figure 5's WalkAndTraverse);
    such loops are demoted to caching. *)

type choice = {
  c_lid : Ast.loop_id;
  c_func : string;
  c_variable : string option;  (** the selected induction variable *)
  c_affinity : float option;
  mutable c_mechanism : Olden_config.mechanism;
  mutable c_reason : string;  (** human-readable justification *)
}

type t = {
  analysis : Analysis.t;
  choices : choice list;  (** one per control loop *)
  site_mechanisms : (int * Olden_config.mechanism) list;
      (** mechanism per dereference id *)
  bottlenecks : (Ast.loop_id * string) list;  (** demoted loops and why *)
}

val threshold : float
(** The 90% selection threshold. *)

val updated_in : Analysis.loop_info -> string -> bool
(** Whether a variable appears as an updatee in a loop's matrix. *)

val parallel_context_functions : Analysis.t -> (string, unit) Hashtbl.t
(** Functions that execute (transitively) inside a parallelizable loop —
    the call-graph fixpoint behind pass 2. *)

val select : ?threshold:float -> Analysis.t -> t
(** [threshold] overrides the 90% default — the knob a port to another
    machine would turn (Section 7). *)

val of_program : ?threshold:float -> Ast.program -> t
val of_source : ?threshold:float -> string -> t

val mechanism_of_site : t -> int -> Olden_config.mechanism
(** The mechanism for a dereference id (caching for unknown ids). *)

val uses_migration : t -> bool
val uses_caching : t -> bool
(** Whether any site uses each mechanism — Table 2's "M" vs "M+C"
    column. *)

val pp_choice : Format.formatter -> choice -> unit
val pp : Format.formatter -> t -> unit
