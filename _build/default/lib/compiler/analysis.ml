(* Update-matrix analysis (Section 4.2).

   For every control loop — iterative [while] loops and the recursion of a
   self-recursive function — we compute an update matrix: entry (s, t) is
   the path-affinity with which [s]'s value at the end of an iteration is
   [t]'s value from the beginning of the iteration, dereferenced through a
   path of fields.  Diagonal entries identify induction variables.

   The analysis is a single abstract iteration of the loop body over the
   domain

     absval ::= Path (origin, affinity) | Unknown

   with the paper's combination rules: field paths multiply affinities,
   if-joins average (and drop updates that do not occur in both branches),
   and multiple recursive-call updates combine as 1 - prod (1 - a_i).

   Exactness is not required: a wrong matrix yields a slower program, never
   a wrong one (Section 4.1). *)

open Ast
module Env = Map.Make (String)
module Sset = Set.Make (String)

(* [Path (origin, affinity, nderefs)]: the value is [origin]'s value at
   loop entry followed by [nderefs] field dereferences whose affinities
   multiply to [affinity].  Identity paths (nderefs = 0) are tracked for
   argument binding but are not structure-traversing updates. *)
type absval = Path of string * float * int | Unknown

type loop_info = {
  lid : loop_id;
  in_func : string;
  parent : loop_id option; (* innermost enclosing control loop *)
  matrix : (string * string * float) list; (* updatee, origin, affinity *)
  parallel : bool; (* contains futurecalls: may be parallelized *)
}

type call_info = {
  callee : string;
  caller : string;
  call_loop : loop_id option; (* innermost loop containing the call *)
  arg_values : absval list; (* abstract argument values at the call *)
  is_future : bool;
}

type deref_info = {
  deref_id : int;
  dfield : string;
  dbase : string option; (* syntactic base variable of the chain *)
  deref_loop : loop_id option;
  deref_func : string;
}

type t = {
  prog : program;
  loops : loop_info list;
  calls : call_info list;
  derefs : deref_info list;
}

(* --- The abstract interpreter ---------------------------------------- *)

(* Interprocedural return summaries (the paper's planned extension toward
   access-path matrices): a function whose every top-level return yields a
   path from the same parameter is summarized as (param index, affinity,
   dereference count); calls to it then propagate paths instead of
   producing Unknown.  Summaries are computed to a small fixpoint. *)
type summary = (int * float * int) option

type walk_state = {
  prog_ : program;
  fname : string;
  summaries : (string, summary) Hashtbl.t;
  mutable loops_acc : loop_info list;
  mutable calls_acc : call_info list;
  mutable derefs_acc : deref_info list;
  mutable rec_sites : (absval list * bool) list; (* recursive call sites *)
  mutable returns_acc : absval list; (* top-level return values *)
}

(* Environment pair: abstract values and variable types. *)
type env = { vals : absval Env.t; typs : typ Env.t }

let lookup_val env v =
  match Env.find_opt v env.vals with Some a -> a | None -> Unknown

let lookup_typ env v = Env.find_opt v env.typs

let struct_of_typ = function Tstruct s -> Some s | Tint | Tfloat | Tvoid -> None

(* Only pointer (struct-typed) variables can traverse the structure. *)
let is_pointer_var env v =
  match lookup_typ env v with Some t -> is_pointer_type t | None -> false

(* Evaluate an expression, collecting dereference and call sites, and
   returning its abstract value and type. *)
let rec eval st ~loop_stack env e : absval * typ option =
  match e with
  | Null -> (Unknown, None)
  | Int_lit _ -> (Unknown, Some Tint)
  | Float_lit _ -> (Unknown, Some Tfloat)
  | Var v -> (lookup_val env v, lookup_typ env v)
  | Deref d ->
      let base_val, base_typ = eval st ~loop_stack env d.d_base in
      st.derefs_acc <-
        {
          deref_id = d.d_id;
          dfield = d.d_field;
          dbase = base_var d.d_base;
          deref_loop = (match loop_stack with l :: _ -> Some l | [] -> None);
          deref_func = st.fname;
        }
        :: st.derefs_acc;
      let field_typ, field_aff =
        match Option.bind base_typ struct_of_typ with
        | None -> (None, Affinity.default)
        | Some sname -> (
            match find_struct st.prog_ sname with
            | None -> (None, Affinity.default)
            | Some sd -> (
                match find_field sd d.d_field with
                | None -> (None, Affinity.default)
                | Some fd ->
                    ( Some fd.fd_type,
                      match fd.fd_affinity with
                      | Some a -> a
                      | None -> Affinity.default )))
      in
      let v =
        match base_val with
        | Path (origin, a, n) -> Path (origin, a *. field_aff, n + 1)
        | Unknown -> Unknown
      in
      (v, field_typ)
  | Call (f, args) | Future_call (f, args) ->
      let is_future = match e with Future_call _ -> true | _ -> false in
      let arg_vals =
        List.map (fun a -> fst (eval st ~loop_stack env a)) args
      in
      st.calls_acc <-
        {
          callee = f;
          caller = st.fname;
          call_loop = (match loop_stack with l :: _ -> Some l | [] -> None);
          arg_values = arg_vals;
          is_future;
        }
        :: st.calls_acc;
      if f = st.fname then st.rec_sites <- (arg_vals, is_future) :: st.rec_sites;
      let ret_typ =
        match find_func st.prog_ f with
        | Some fn -> Some fn.f_ret
        | None -> None
      in
      let ret_val =
        if is_future then Unknown (* value only available after touch *)
        else
          match Hashtbl.find_opt st.summaries f with
          | Some (Some (i, a, n)) -> (
              match List.nth_opt arg_vals i with
              | Some (Path (o, a0, n0)) -> Path (o, a0 *. a, n0 + n)
              | Some Unknown | None -> Unknown)
          | Some None | None -> Unknown
      in
      (ret_val, ret_typ)
  | Touch e' ->
      let _, t = eval st ~loop_stack env e' in
      (Unknown, t)
  | Unop (_, e') ->
      ignore (eval st ~loop_stack env e');
      (Unknown, Some Tint)
  | Binop (_, a, b) ->
      ignore (eval st ~loop_stack env a);
      ignore (eval st ~loop_stack env b);
      (Unknown, Some Tint)
  | Alloc_on (sname, pe) ->
      ignore (eval st ~loop_stack env pe);
      (Unknown, Some (Tstruct sname))
  | Builtin (_, args) ->
      List.iter (fun a -> ignore (eval st ~loop_stack env a)) args;
      (Unknown, Some Tint)

(* Result of walking a block: [None] means every path returned. *)
type flow = (env * Sset.t) option

let merge_if (input : env) (a : flow) (b : flow) : flow =
  match (a, b) with
  | None, None -> None
  | Some r, None | None, Some r -> Some r
  | Some (env_t, asg_t), Some (env_f, asg_f) ->
      let assigned = Sset.union asg_t asg_f in
      let vals =
        Env.merge
          (fun v _ _ ->
            let in_t = Sset.mem v asg_t and in_f = Sset.mem v asg_f in
            if not (in_t || in_f) then Env.find_opt v input.vals
            else if in_t && in_f then
              (* update present in both branches: average the affinities *)
              match (Env.find_opt v env_t.vals, Env.find_opt v env_f.vals) with
              | Some (Path (o1, a1, n1)), Some (Path (o2, a2, n2))
                when o1 = o2 ->
                  Some (Path (o1, Affinity.join a1 a2, max n1 n2))
              | _ -> Some Unknown
            else
              (* update missing from one branch: omit it (Section 4.2) *)
              Some Unknown)
          env_t.vals env_f.vals
      in
      Some ({ vals; typs = input.typs }, assigned)

let rec walk_block st ~loop_stack (env : env) (block : block) : flow =
  List.fold_left
    (fun (flow : flow) stmt ->
      match flow with
      | None -> None (* unreachable after return *)
      | Some (env, assigned) -> walk_stmt st ~loop_stack env assigned stmt)
    (Some (env, Sset.empty))
    block

and walk_stmt st ~loop_stack env assigned stmt : flow =
  match stmt with
  | Decl (t, v, init) ->
      let value =
        match init with
        | None -> Unknown
        | Some e -> fst (eval st ~loop_stack env e)
      in
      Some
        ( { vals = Env.add v value env.vals; typs = Env.add v t env.typs },
          Sset.add v assigned )
  | Assign (v, e) ->
      let value = fst (eval st ~loop_stack env e) in
      Some
        ({ env with vals = Env.add v value env.vals }, Sset.add v assigned)
  | Field_assign (d, e) ->
      (* a heap write: collect the dereference and argument sites, the
         variable environment is unchanged *)
      ignore (eval st ~loop_stack env (Deref d));
      ignore (eval st ~loop_stack env e);
      Some (env, assigned)
  | Expr e ->
      ignore (eval st ~loop_stack env e);
      Some (env, assigned)
  | Return e ->
      (match e with
      | Some e ->
          let v, _ = eval st ~loop_stack env e in
          let inside_while =
            List.exists
              (function Lwhile _ -> true | Lrec _ -> false)
              loop_stack
          in
          if not inside_while then st.returns_acc <- v :: st.returns_acc
      | None -> ());
      None
  | If (c, th, el) ->
      ignore (eval st ~loop_stack env c);
      let ft = walk_block st ~loop_stack env th in
      let fe = walk_block st ~loop_stack env el in
      let ft = Option.map (fun (e, a) -> (e, Sset.union assigned a)) ft in
      let fe = Option.map (fun (e, a) -> (e, Sset.union assigned a)) fe in
      merge_if env ft fe
  | While w ->
      analyze_while st ~loop_stack env w;
      (* after the loop, anything it assigns is unknown *)
      let body_assigned = assigned_vars w.w_body in
      let vals =
        Sset.fold (fun v m -> Env.add v Unknown m) body_assigned env.vals
      in
      Some ({ env with vals }, Sset.union assigned body_assigned)

(* Analyze one while loop: a single abstract iteration of the body from the
   identity environment (every variable in scope at loop entry is a unit
   path from itself), yielding the loop's update matrix. *)
and analyze_while st ~loop_stack env (w : while_loop) =
  let lid = Lwhile w.w_id in
  let scope_vars = Env.fold (fun v _ s -> Sset.add v s) env.vals Sset.empty in
  let identity_vals =
    Sset.fold (fun v m -> Env.add v (Path (v, 1.0, 0)) m) scope_vars Env.empty
  in
  let env0 = { vals = identity_vals; typs = env.typs } in
  ignore (eval st ~loop_stack:(lid :: loop_stack) env0 w.w_cond);
  let out =
    walk_block st ~loop_stack:(lid :: loop_stack) env0 w.w_body
  in
  let matrix =
    match out with
    | None -> [] (* body always returns: not really a loop *)
    | Some (env_out, assigned) ->
        Sset.fold
          (fun v acc ->
            if Sset.mem v scope_vars && is_pointer_var env v then
              (* identity updates (no dereference) do not traverse the
                 structure and are not recorded *)
              match Env.find_opt v env_out.vals with
              | Some (Path (origin, a, n)) when n >= 1 ->
                  (v, origin, a) :: acc
              | Some (Path _ | Unknown) | None -> acc
            else acc)
          assigned []
  in
  st.loops_acc <-
    {
      lid;
      in_func = st.fname;
      parent = (match loop_stack with l :: _ -> Some l | [] -> None);
      matrix = List.rev matrix;
      parallel = block_has_future w.w_body;
    }
    :: st.loops_acc

(* Variables assigned anywhere in a block (including nested loops). *)
and assigned_vars (block : block) : Sset.t =
  List.fold_left
    (fun acc stmt ->
      match stmt with
      | Decl (_, v, _) | Assign (v, _) -> Sset.add v acc
      | Field_assign _ | Expr _ | Return _ -> acc
      | If (_, th, el) ->
          Sset.union acc (Sset.union (assigned_vars th) (assigned_vars el))
      | While w -> Sset.union acc (assigned_vars w.w_body))
    Sset.empty block

(* Futurecalls appearing directly in this loop body (not inside a nested
   while loop, whose parallelism is its own; [deep] includes them, for
   recursion control loops that span the whole function body). *)
and block_has_future ?(deep = false) (block : block) : bool =
  let rec in_expr = function
    | Future_call _ -> true
    | Null | Int_lit _ | Float_lit _ | Var _ -> false
    | Deref d -> in_expr d.d_base
    | Call (_, args) | Builtin (_, args) -> List.exists in_expr args
    | Touch e | Unop (_, e) -> in_expr e
    | Binop (_, a, b) -> in_expr a || in_expr b
    | Alloc_on (_, e) -> in_expr e
  in
  List.exists
    (function
      | Decl (_, _, Some e) | Assign (_, e) | Expr e | Return (Some e) ->
          in_expr e
      | Field_assign (d, e) -> in_expr (Deref d) || in_expr e
      | Decl (_, _, None) | Return None -> false
      | If (c, th, el) ->
          in_expr c || block_has_future ~deep th || block_has_future ~deep el
      | While w -> deep && (in_expr w.w_cond || block_has_future ~deep w.w_body))
    block

(* Whether [f] calls itself directly (the prototype's interprocedural
   analysis is limited to self-recursion, like the paper's). *)
let is_recursive (f : func) =
  let rec in_expr = function
    | Call (g, args) | Future_call (g, args) ->
        g = f.f_name || List.exists in_expr args
    | Null | Int_lit _ | Float_lit _ | Var _ -> false
    | Deref d -> in_expr d.d_base
    | Builtin (_, args) -> List.exists in_expr args
    | Touch e | Unop (_, e) -> in_expr e
    | Binop (_, a, b) -> in_expr a || in_expr b
    | Alloc_on (_, e) -> in_expr e
  in
  let rec in_block b =
    List.exists
      (function
        | Decl (_, _, Some e) | Assign (_, e) | Expr e | Return (Some e) ->
            in_expr e
        | Field_assign (d, e) -> in_expr (Deref d) || in_expr e
        | Decl (_, _, None) | Return None -> false
        | If (c, th, el) -> in_expr c || in_block th || in_block el
        | While w -> in_expr w.w_cond || in_block w.w_body)
      b
  in
  in_block f.f_body

let analyze_func prog summaries (f : func) =
  let st =
    {
      prog_ = prog;
      fname = f.f_name;
      summaries;
      loops_acc = [];
      calls_acc = [];
      derefs_acc = [];
      rec_sites = [];
      returns_acc = [];
    }
  in
  let recursive = is_recursive f in
  let rec_lid = Lrec f.f_name in
  let loop_stack = if recursive then [ rec_lid ] else [] in
  let typs =
    List.fold_left (fun m (t, v) -> Env.add v t m) Env.empty f.f_params
  in
  let vals =
    List.fold_left
      (fun m (_, v) -> Env.add v (Path (v, 1.0, 0)) m)
      Env.empty f.f_params
  in
  ignore (walk_block st ~loop_stack { vals; typs } f.f_body);
  (* the recursion control loop: parameter updates at recursive calls,
     combined across call sites as 1 - prod (1 - a_i) (Figure 4) *)
  if recursive then begin
    let pointer_params =
      List.filter (fun (t, _) -> is_pointer_type t) f.f_params
    in
    ignore pointer_params;
    let param_names =
      List.map (fun (t, v) -> (v, is_pointer_type t)) f.f_params
    in
    let matrix =
      List.concat_map
        (fun (i, (p, is_ptr)) ->
          (* collect, per origin, the affinities this parameter is updated
             with across all recursive call sites; identity and non-pointer
             bindings are not structure-traversing updates *)
          let updates =
            if not is_ptr then []
            else
              List.filter_map
                (fun (args, _) ->
                  match List.nth_opt args i with
                  | Some (Path (o, a, n)) when n >= 1 -> Some (o, a)
                  | Some (Path _ | Unknown) | None -> None)
                st.rec_sites
          in
          let origins = List.sort_uniq compare (List.map fst updates) in
          List.map
            (fun o ->
              let affs =
                List.filter_map
                  (fun (o', a) -> if o' = o then Some a else None)
                  updates
              in
              (p, o, Affinity.recursion_combine affs))
            origins)
        (List.mapi (fun i p -> (i, p)) param_names)
    in
    (* the recursion's control loop spans the whole body: any futurecall
       in it makes the loop parallelizable *)
    let parallel =
      List.exists (fun (_, fut) -> fut) st.rec_sites
      || block_has_future ~deep:true f.f_body
    in
    st.loops_acc <-
      { lid = rec_lid; in_func = f.f_name; parent = None; matrix; parallel }
      :: st.loops_acc
  end;
  (* summarize: every collected return is a path from the same parameter;
     alternative returns average, as at an if-join *)
  let summary =
    let param_index o =
      let rec index i = function
        | [] -> None
        | (_, p) :: rest -> if p = o then Some i else index (i + 1) rest
      in
      index 0 f.f_params
    in
    match st.returns_acc with
    | [] -> None
    | vs ->
        let paths =
          List.map
            (function
              | Path (o, a, n) -> (
                  match param_index o with
                  | Some i -> Some (i, a, n)
                  | None -> None)
              | Unknown -> None)
            vs
        in
        if List.exists (fun p -> p = None) paths then None
        else begin
          match List.filter_map Fun.id paths with
          | [] -> None
          | (i0, _, _) :: _ as all ->
              if List.for_all (fun (i, _, _) -> i = i0) all then begin
                let k = List.length all in
                let a =
                  List.fold_left (fun acc (_, a, _) -> acc +. a) 0. all
                  /. float_of_int k
                in
                let n = List.fold_left (fun m (_, _, n) -> max m n) 0 all in
                Some (i0, a, n)
              end
              else None
        end
  in
  Hashtbl.replace summaries f.f_name summary;
  (st.loops_acc, st.calls_acc, st.derefs_acc)

let analyze (prog : program) : t =
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 8 in
  let one_pass () =
    List.fold_left
      (fun (ls, cs, ds) f ->
        let l, c, d = analyze_func prog summaries f in
        (l @ ls, c @ cs, d @ ds))
      ([], [], []) prog.funcs
  in
  (* summaries feed call sites in later passes; two warm-up rounds reach a
     fixpoint for non-pathological programs (summaries only shrink after
     that, and a stale over-approximation costs performance, not
     correctness) *)
  ignore (one_pass ());
  ignore (one_pass ());
  let loops, calls, derefs = one_pass () in
  {
    prog;
    loops = List.rev loops;
    calls = List.rev calls;
    derefs = List.rev derefs;
  }

let find_loop t lid = List.find_opt (fun l -> l.lid = lid) t.loops

(* Induction variables: diagonal entries of the matrix (Section 4.2). *)
let induction_variables (l : loop_info) =
  List.filter_map
    (fun (s, o, a) -> if s = o then Some (s, a) else None)
    l.matrix

let pp_matrix ppf (l : loop_info) =
  Fmt.pf ppf "@[<v 2>update matrix of %s (in %s)%s:@,%a@]"
    (loop_id_to_string l.lid) l.in_func
    (if l.parallel then " [parallelizable]" else "")
    Fmt.(
      list ~sep:cut (fun ppf (s, o, a) ->
          pf ppf "%s <- %s  @@ %a" s o Affinity.pp a))
    l.matrix
