lib/compiler/typecheck.ml: Ast Hashtbl List Map Printf String
