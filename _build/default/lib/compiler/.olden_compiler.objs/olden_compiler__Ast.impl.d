lib/compiler/ast.ml: Fmt List Olden_config Printf
