lib/compiler/lexer.ml: List Printf String
