lib/compiler/typecheck.mli: Ast
