lib/compiler/heuristic.mli: Analysis Ast Format Hashtbl Olden_config
