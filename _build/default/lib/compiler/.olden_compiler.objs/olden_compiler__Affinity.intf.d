lib/compiler/affinity.mli: Format
