lib/compiler/analysis.mli: Ast Format
