lib/compiler/affinity.ml: Fmt List Olden_config Printf
