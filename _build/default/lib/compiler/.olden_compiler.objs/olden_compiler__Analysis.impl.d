lib/compiler/analysis.ml: Affinity Ast Fmt Fun Hashtbl List Map Option Set String
