lib/compiler/heuristic.ml: Analysis Ast Fmt Hashtbl List Olden_config Parser Printf
