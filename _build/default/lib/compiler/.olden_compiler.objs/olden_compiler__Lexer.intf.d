lib/compiler/lexer.mli:
