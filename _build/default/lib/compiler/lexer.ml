(* Lexer for the mini-Olden language.  Hand-rolled over a string buffer;
   tracks line/column for error reporting. *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string (* struct int float void if else while return null future touch alloc *)
  | PUNCT of string (* -> == != <= >= && || + - * / % < > = ! ( ) { } ; , @ *)
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
  mutable peeked : (token * int * int) option;
}

exception Error of string

let keywords =
  [
    "struct"; "int"; "float"; "void"; "if"; "else"; "while"; "for";
    "return"; "null"; "future"; "touch"; "alloc";
  ]

let create src = { src; pos = 0; line = 1; col = 1; peeked = None }

let fail lx msg =
  raise (Error (Printf.sprintf "line %d, col %d: %s" lx.line lx.col msg))

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src -> (
      match lx.src.[lx.pos + 1] with
      | '/' ->
          while peek_char lx <> None && peek_char lx <> Some '\n' do
            advance lx
          done;
          skip_ws lx
      | '*' ->
          advance lx;
          advance lx;
          let rec loop () =
            match peek_char lx with
            | None -> fail lx "unterminated comment"
            | Some '*' when lx.pos + 1 < String.length lx.src
                            && lx.src.[lx.pos + 1] = '/' ->
                advance lx;
                advance lx
            | Some _ ->
                advance lx;
                loop ()
          in
          loop ();
          skip_ws lx
      | _ -> ())
  | Some _ | None -> ()

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_float =
    match peek_char lx with
    | Some '.' when lx.pos + 1 < String.length lx.src && is_digit lx.src.[lx.pos + 1] ->
        advance lx;
        while (match peek_char lx with Some c -> is_digit c | None -> false) do
          advance lx
        done;
        true
    | _ -> false
  in
  let text = String.sub lx.src start (lx.pos - start) in
  if is_float then FLOAT (float_of_string text) else INT (int_of_string text)

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_ident_char c | None -> false) do
    advance lx
  done;
  let text = String.sub lx.src start (lx.pos - start) in
  if List.mem text keywords then KW text else IDENT text

let two_char_puncts = [ "->"; "=="; "!="; "<="; ">="; "&&"; "||" ]
let one_char_puncts = "+-*/%<>=!(){};,@"

let lex_punct lx =
  let two =
    if lx.pos + 1 < String.length lx.src then
      Some (String.sub lx.src lx.pos 2)
    else None
  in
  match two with
  | Some s when List.mem s two_char_puncts ->
      advance lx;
      advance lx;
      PUNCT s
  | Some _ | None -> (
      match peek_char lx with
      | Some c when String.contains one_char_puncts c ->
          advance lx;
          PUNCT (String.make 1 c)
      | Some c -> fail lx (Printf.sprintf "unexpected character %C" c)
      | None -> EOF)

let next_token lx =
  match lx.peeked with
  | Some (tok, _, _) ->
      lx.peeked <- None;
      tok
  | None -> (
      skip_ws lx;
      match peek_char lx with
      | None -> EOF
      | Some c when is_digit c -> lex_number lx
      | Some c when is_ident_start c -> lex_ident lx
      | Some _ -> lex_punct lx)

let peek_token lx =
  match lx.peeked with
  | Some (tok, _, _) -> tok
  | None ->
      let line = lx.line and col = lx.col in
      let tok = next_token lx in
      lx.peeked <- Some (tok, line, col);
      tok

let token_to_string = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | IDENT s -> s
  | KW s -> s
  | PUNCT s -> Printf.sprintf "'%s'" s
  | EOF -> "<eof>"
