(* Recursive-descent parser for the mini-Olden language.

   Grammar sketch:

     program   ::= (struct_decl | func)*
     struct    ::= "struct" IDENT "{" (type IDENT ("@" NUM)? ";")* "}" ";"?
     func      ::= type IDENT "(" params ")" block
     block     ::= "{" stmt* "}"
     stmt      ::= type IDENT ("=" expr)? ";"
                 | IDENT "=" expr ";"
                 | postfix "->" IDENT "=" expr ";"   (field store)
                 | "if" "(" expr ")" block ("else" (block | if-stmt))?
                 | "while" "(" expr ")" block
                 | "for" "(" stmt expr ";" IDENT "=" expr ")" block
                       (desugared to init + while)
                 | "return" expr? ";"
                 | expr ";"
     expr      ::= precedence-climbing over || && == != < <= > >= + - * / %
     primary   ::= INT | FLOAT | "null" | IDENT | call | "future" call
                 | "touch" "(" expr ")" | "alloc" "(" IDENT "," expr ")"
                 | "(" expr ")" | "!" primary | "-" primary
     postfix   ::= primary ("->" IDENT)*

   Dereference sites are numbered in parse order, so a given source text
   always yields the same site ids. *)

open Ast

exception Error of string

type state = {
  lx : Lexer.t;
  mutable next_deref : int;
  mutable next_while : int;
}

let fail st msg =
  raise
    (Error
       (Printf.sprintf "line %d: %s (next token: %s)" st.lx.Lexer.line msg
          (Lexer.token_to_string (Lexer.peek_token st.lx))))

let fresh_deref st base field =
  let id = st.next_deref in
  st.next_deref <- id + 1;
  { d_id = id; d_base = base; d_field = field }

let fresh_while st cond body =
  let id = st.next_while in
  st.next_while <- id + 1;
  { w_id = id; w_cond = cond; w_body = body }

let eat st tok =
  let got = Lexer.next_token st.lx in
  if got <> tok then
    fail st
      (Printf.sprintf "expected %s, got %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string got))

let eat_punct st s = eat st (Lexer.PUNCT s)

let ident st =
  match Lexer.next_token st.lx with
  | Lexer.IDENT s -> s
  | t -> fail st ("expected identifier, got " ^ Lexer.token_to_string t)

(* A type name: a base-type keyword or a struct name. *)
let parse_typ st =
  match Lexer.next_token st.lx with
  | Lexer.KW "int" -> Tint
  | Lexer.KW "float" -> Tfloat
  | Lexer.KW "void" -> Tvoid
  | Lexer.IDENT s -> Tstruct s
  | t -> fail st ("expected type, got " ^ Lexer.token_to_string t)

let looks_like_typ = function
  | Lexer.KW ("int" | "float" | "void") -> true
  | Lexer.IDENT _ -> true
  | _ -> false

let builtins = [ "self"; "nprocs"; "rand"; "work"; "print" ]

let rec parse_primary st =
  match Lexer.next_token st.lx with
  | Lexer.INT i -> Int_lit i
  | Lexer.FLOAT f -> Float_lit f
  | Lexer.KW "null" -> Null
  | Lexer.KW "future" -> (
      match parse_postfix st with
      | Call (f, args) -> Future_call (f, args)
      | _ -> fail st "future must be applied to a call")
  | Lexer.KW "touch" ->
      eat_punct st "(";
      let e = parse_expr st in
      eat_punct st ")";
      Touch e
  | Lexer.KW "alloc" ->
      eat_punct st "(";
      let s = ident st in
      eat_punct st ",";
      let e = parse_expr st in
      eat_punct st ")";
      Alloc_on (s, e)
  | Lexer.IDENT name -> (
      match Lexer.peek_token st.lx with
      | Lexer.PUNCT "(" ->
          eat_punct st "(";
          let args = parse_args st in
          eat_punct st ")";
          if List.mem name builtins then Builtin (name, args)
          else Call (name, args)
      | _ -> Var name)
  | Lexer.PUNCT "(" ->
      let e = parse_expr st in
      eat_punct st ")";
      e
  | Lexer.PUNCT "!" -> Unop (Not, parse_postfix st)
  | Lexer.PUNCT "-" -> Unop (Neg, parse_postfix st)
  | t -> fail st ("expected expression, got " ^ Lexer.token_to_string t)

and parse_args st =
  match Lexer.peek_token st.lx with
  | Lexer.PUNCT ")" -> []
  | _ ->
      let rec loop acc =
        let e = parse_expr st in
        match Lexer.peek_token st.lx with
        | Lexer.PUNCT "," ->
            eat_punct st ",";
            loop (e :: acc)
        | _ -> List.rev (e :: acc)
      in
      loop []

and parse_postfix st =
  let rec loop e =
    match Lexer.peek_token st.lx with
    | Lexer.PUNCT "->" ->
        eat_punct st "->";
        let f = ident st in
        loop (Deref (fresh_deref st e f))
    | _ -> e
  in
  loop (parse_primary st)

and parse_expr st = parse_binop st 0

and parse_binop st min_prec =
  let prec = function
    | "||" -> Some (1, Or)
    | "&&" -> Some (2, And)
    | "==" -> Some (3, Eq)
    | "!=" -> Some (3, Ne)
    | "<" -> Some (4, Lt)
    | "<=" -> Some (4, Le)
    | ">" -> Some (4, Gt)
    | ">=" -> Some (4, Ge)
    | "+" -> Some (5, Add)
    | "-" -> Some (5, Sub)
    | "*" -> Some (6, Mul)
    | "/" -> Some (6, Div)
    | "%" -> Some (6, Mod)
    | _ -> None
  in
  let lhs = parse_postfix st in
  let rec loop lhs =
    match Lexer.peek_token st.lx with
    | Lexer.PUNCT p -> (
        match prec p with
        | Some (pr, op) when pr >= min_prec ->
            eat_punct st p;
            let rhs = parse_binop st (pr + 1) in
            loop (Binop (op, lhs, rhs))
        | Some _ | None -> lhs)
    | _ -> lhs
  in
  loop lhs

let rec parse_stmts st : Ast.stmt list =
  match Lexer.peek_token st.lx with
  | Lexer.KW "for" ->
      (* for (init; cond; step) { body }  ==>  init; while (cond) { body; step } *)
      eat st (Lexer.KW "for");
      eat_punct st "(";
      let init = parse_stmt st in
      let cond = parse_expr st in
      eat_punct st ";";
      let step_var = ident st in
      eat_punct st "=";
      let step_expr = parse_expr st in
      eat_punct st ")";
      let body = parse_block st in
      [ init; While (fresh_while st cond (body @ [ Assign (step_var, step_expr) ])) ]
  | _ -> [ parse_stmt st ]

and parse_stmt st =
  match Lexer.peek_token st.lx with
  | Lexer.KW "if" ->
      eat st (Lexer.KW "if");
      eat_punct st "(";
      let c = parse_expr st in
      eat_punct st ")";
      let th = parse_block st in
      let el =
        match Lexer.peek_token st.lx with
        | Lexer.KW "else" -> (
            eat st (Lexer.KW "else");
            match Lexer.peek_token st.lx with
            | Lexer.KW "if" -> [ parse_stmt st ] (* else-if chain *)
            | _ -> parse_block st)
        | _ -> []
      in
      If (c, th, el)
  | Lexer.KW "while" ->
      eat st (Lexer.KW "while");
      eat_punct st "(";
      let c = parse_expr st in
      eat_punct st ")";
      let body = parse_block st in
      While (fresh_while st c body)
  | Lexer.KW "return" ->
      eat st (Lexer.KW "return");
      let e =
        match Lexer.peek_token st.lx with
        | Lexer.PUNCT ";" -> None
        | _ -> Some (parse_expr st)
      in
      eat_punct st ";";
      Return e
  | Lexer.KW ("int" | "float" | "void") ->
      let t = parse_typ st in
      let v = ident st in
      let init =
        match Lexer.peek_token st.lx with
        | Lexer.PUNCT "=" ->
            eat_punct st "=";
            Some (parse_expr st)
        | _ -> None
      in
      eat_punct st ";";
      Decl (t, v, init)
  | Lexer.IDENT _ -> parse_ident_stmt st
  | _ ->
      let e = parse_expr st in
      eat_punct st ";";
      Expr e

(* A statement starting with an identifier is ambiguous: it may be a
   declaration ("tree t = ...;"), an assignment ("t = ...;"), a field
   store ("t->next = ...;"), or an expression statement ("f(x);").
   Disambiguate by parsing the leading expression and inspecting what
   follows. *)
and parse_ident_stmt st =
  let first = ident st in
  match Lexer.peek_token st.lx with
  | Lexer.IDENT v ->
      (* "Struct var [= e];" declaration *)
      ignore (Lexer.next_token st.lx);
      let init =
        match Lexer.peek_token st.lx with
        | Lexer.PUNCT "=" ->
            eat_punct st "=";
            Some (parse_expr st)
        | _ -> None
      in
      eat_punct st ";";
      Decl (Tstruct first, v, init)
  | Lexer.PUNCT "=" ->
      eat_punct st "=";
      let e = parse_expr st in
      eat_punct st ";";
      Assign (first, e)
  | _ ->
      (* resume postfix parsing from the identifier *)
      let base =
        match Lexer.peek_token st.lx with
        | Lexer.PUNCT "(" ->
            eat_punct st "(";
            let args = parse_args st in
            eat_punct st ")";
            if List.mem first builtins then Builtin (first, args)
            else Call (first, args)
        | _ -> Var first
      in
      let rec loop e =
        match Lexer.peek_token st.lx with
        | Lexer.PUNCT "->" ->
            eat_punct st "->";
            let f = ident st in
            loop (Deref (fresh_deref st e f))
        | _ -> e
      in
      let e = loop base in
      (match Lexer.peek_token st.lx with
      | Lexer.PUNCT "=" -> (
          eat_punct st "=";
          let rhs = parse_expr st in
          eat_punct st ";";
          match e with
          | Deref d -> Field_assign (d, rhs)
          | _ -> fail st "left-hand side of assignment must be a field")
      | _ ->
          (* an expression statement; allow trailing binary operators *)
          let e =
            match Lexer.peek_token st.lx with
            | Lexer.PUNCT ";" -> e
            | _ -> fail st "expected ';' or '='"
          in
          eat_punct st ";";
          Expr e)

and parse_block st =
  eat_punct st "{";
  let rec loop acc =
    match Lexer.peek_token st.lx with
    | Lexer.PUNCT "}" ->
        eat_punct st "}";
        List.rev acc
    | Lexer.EOF -> fail st "unterminated block"
    | _ -> loop (List.rev_append (parse_stmts st) acc)
  in
  loop []

let parse_field st =
  let t = parse_typ st in
  let name = ident st in
  let affinity =
    match Lexer.peek_token st.lx with
    | Lexer.PUNCT "@" -> (
        eat_punct st "@";
        match Lexer.next_token st.lx with
        | Lexer.INT i -> Some (float_of_int i /. 100.)
        | Lexer.FLOAT f -> Some (f /. 100.)
        | t -> fail st ("expected affinity, got " ^ Lexer.token_to_string t))
    | _ -> None
  in
  eat_punct st ";";
  { fd_name = name; fd_type = t; fd_affinity = affinity }

let parse_struct st =
  eat st (Lexer.KW "struct");
  let name = ident st in
  eat_punct st "{";
  let rec loop acc =
    match Lexer.peek_token st.lx with
    | Lexer.PUNCT "}" ->
        eat_punct st "}";
        List.rev acc
    | _ -> loop (parse_field st :: acc)
  in
  let fields = loop [] in
  (match Lexer.peek_token st.lx with
  | Lexer.PUNCT ";" -> eat_punct st ";"
  | _ -> ());
  { sd_name = name; sd_fields = fields }

let parse_func st =
  let ret = parse_typ st in
  let name = ident st in
  eat_punct st "(";
  let rec params acc =
    match Lexer.peek_token st.lx with
    | Lexer.PUNCT ")" -> List.rev acc
    | _ ->
        let t = parse_typ st in
        let v = ident st in
        let acc = (t, v) :: acc in
        (match Lexer.peek_token st.lx with
        | Lexer.PUNCT "," -> eat_punct st ","
        | _ -> ());
        params acc
  in
  let ps = params [] in
  eat_punct st ")";
  let body = parse_block st in
  { f_name = name; f_ret = ret; f_params = ps; f_body = body }

let parse_program src =
  let st = { lx = Lexer.create src; next_deref = 0; next_while = 0 } in
  let rec loop structs funcs =
    match Lexer.peek_token st.lx with
    | Lexer.EOF -> { structs = List.rev structs; funcs = List.rev funcs }
    | Lexer.KW "struct" -> loop (parse_struct st :: structs) funcs
    | t when looks_like_typ t || t = Lexer.KW "void" ->
        loop structs (parse_func st :: funcs)
    | t ->
        fail st ("expected struct or function, got " ^ Lexer.token_to_string t)
  in
  loop [] []
