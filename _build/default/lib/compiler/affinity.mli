(** Path-affinity arithmetic (Sections 4.1-4.2 of the paper).

    A path-affinity is the probability that following a pointer path stays
    on the local processor.  Affinities are hints: wrong values cost
    performance, never correctness. *)

type t = float
(** Always in [\[0, 1\]]; constructors check. *)

val of_percent : float -> t
val to_percent : t -> float

val along_path : t list -> t
(** A path of several fields: the per-field affinities multiply. *)

val join : t -> t -> t
(** The if-join rule: average the two branches' updates (each branch
    assumed taken half the time). *)

val recursion_combine : t list -> t
(** Multiple updates via recursive calls: the probability at least one is
    local, [1 - prod (1 - a_i)] (Figure 4: left 90% and right 70% combine
    to 97%). @raise Invalid_argument on the empty list. *)

val default : t
(** The default path-affinity, 70% (Section 4.3). *)

val threshold : t
(** The migration threshold, 90% (Section 4.3; the break-even affinity for
    a 7x migration/miss cost ratio is about 86%). *)

val pp : Format.formatter -> t -> unit
