(* Abstract syntax for the annotated C subset Olden takes as input
   (Section 2): structs with path-affinity hints on pointer fields,
   futurecall/touch annotations, and ALLOC with explicit placement.

   Every pointer dereference carries a unique id; the heuristic's output is
   a mechanism per dereference site, keyed by that id. *)

type typ =
  | Tint
  | Tfloat
  | Tvoid
  | Tstruct of string (* struct-typed variables are heap pointers *)

type unop = Neg | Not

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

type expr =
  | Null
  | Int_lit of int
  | Float_lit of float
  | Var of string
  | Deref of deref (* e->f, a heap read *)
  | Call of string * expr list
  | Future_call of string * expr list (* futurecall f(args) *)
  | Touch of expr
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Alloc_on of string * expr (* ALLOC(StructName, processor) *)
  | Builtin of string * expr list (* self(), nprocs(), rand(n) *)

and deref = { d_id : int; d_base : expr; d_field : string }

type stmt =
  | Decl of typ * string * expr option
  | Assign of string * expr
  | Field_assign of deref * expr (* e->f = e2, a heap write *)
  | If of expr * block * block
  | While of while_loop
  | Return of expr option
  | Expr of expr

and while_loop = { w_id : int; w_cond : expr; w_body : block }

and block = stmt list

type field_decl = {
  fd_name : string;
  fd_type : typ;
  fd_affinity : float option; (* path-affinity hint, pointer fields only *)
}

type struct_decl = { sd_name : string; sd_fields : field_decl list }

type func = {
  f_name : string;
  f_ret : typ;
  f_params : (typ * string) list;
  f_body : block;
}

type program = { structs : struct_decl list; funcs : func list }

(* A control loop (Section 4.2): an iterative loop or the recursion of a
   self-recursive function. *)
type loop_id = Lwhile of int | Lrec of string

let loop_id_to_string = function
  | Lwhile i -> Printf.sprintf "while#%d" i
  | Lrec f -> Printf.sprintf "rec(%s)" f

(* --- Lookups --------------------------------------------------------- *)

let find_struct p name = List.find_opt (fun s -> s.sd_name = name) p.structs
let find_func p name = List.find_opt (fun f -> f.f_name = name) p.funcs

let find_field sd name =
  List.find_opt (fun f -> f.fd_name = name) sd.sd_fields

(* Path-affinity of [field] of struct [sname]; the paper's default is 70%
   (Section 4.3). *)
let affinity_of p ~sname ~field =
  match find_struct p sname with
  | None -> Olden_config.Heuristic_params.default_affinity
  | Some sd -> (
      match find_field sd field with
      | Some { fd_affinity = Some a; _ } -> a
      | Some _ | None -> Olden_config.Heuristic_params.default_affinity)

(* Field index (word offset) of [field] in struct [sname]. *)
let field_offset p ~sname ~field =
  match find_struct p sname with
  | None -> None
  | Some sd ->
      let rec index i = function
        | [] -> None
        | f :: rest -> if f.fd_name = field then Some i else index (i + 1) rest
      in
      index 0 sd.sd_fields

let struct_words p sname =
  match find_struct p sname with
  | None -> None
  | Some sd -> Some (List.length sd.sd_fields)

let is_pointer_type = function
  | Tstruct _ -> true
  | Tint | Tfloat | Tvoid -> false

(* The syntactic base variable of a dereference chain: t->right->left is a
   dereference "of" t (Section 4's per-variable mechanism assignment). *)
let rec base_var = function
  | Var v -> Some v
  | Deref d -> base_var d.d_base
  | Null | Int_lit _ | Float_lit _ | Call _ | Future_call _ | Touch _
  | Unop _ | Binop _ | Alloc_on _ | Builtin _ ->
      None

(* --- Pretty-printing ------------------------------------------------- *)

let typ_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tvoid -> "void"
  | Tstruct s -> s

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf = function
  | Null -> Fmt.string ppf "null"
  | Int_lit i -> Fmt.int ppf i
  | Float_lit f -> Fmt.pf ppf "%h" f
  | Var v -> Fmt.string ppf v
  | Deref d -> Fmt.pf ppf "%a->%s" pp_expr d.d_base d.d_field
  | Call (f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args
  | Future_call (f, args) -> Fmt.pf ppf "future %s(%a)" f pp_args args
  | Touch e -> Fmt.pf ppf "touch(%a)" pp_expr e
  | Unop (Neg, e) -> Fmt.pf ppf "(-%a)" pp_expr e
  | Unop (Not, e) -> Fmt.pf ppf "(!%a)" pp_expr e
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_to_string op) pp_expr b
  | Alloc_on (s, e) -> Fmt.pf ppf "alloc(%s, %a)" s pp_expr e
  | Builtin (f, args) -> Fmt.pf ppf "%s(%a)" f pp_args args

and pp_args ppf args = Fmt.(list ~sep:(any ", ") pp_expr) ppf args

let rec pp_stmt ppf = function
  | Decl (t, v, None) -> Fmt.pf ppf "%s %s;" (typ_to_string t) v
  | Decl (t, v, Some e) ->
      Fmt.pf ppf "%s %s = %a;" (typ_to_string t) v pp_expr e
  | Assign (v, e) -> Fmt.pf ppf "%s = %a;" v pp_expr e
  | Field_assign (d, e) ->
      Fmt.pf ppf "%a->%s = %a;" pp_expr d.d_base d.d_field pp_expr e
  | If (c, th, []) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block th
  | If (c, th, el) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@,%a@]@,@[<v 2>} else {@,%a@]@,}" pp_expr c
        pp_block th pp_block el
  | While w ->
      Fmt.pf ppf "@[<v 2>while (%a) {@,%a@]@,}" pp_expr w.w_cond pp_block
        w.w_body
  | Return None -> Fmt.string ppf "return;"
  | Return (Some e) -> Fmt.pf ppf "return %a;" pp_expr e
  | Expr e -> Fmt.pf ppf "%a;" pp_expr e

and pp_block ppf b = Fmt.(list ~sep:cut pp_stmt) ppf b

let pp_func ppf f =
  let pp_param ppf (t, v) = Fmt.pf ppf "%s %s" (typ_to_string t) v in
  Fmt.pf ppf "@[<v 2>%s %s(%a) {@,%a@]@,}" (typ_to_string f.f_ret) f.f_name
    Fmt.(list ~sep:(any ", ") pp_param)
    f.f_params pp_block f.f_body

let pp_struct ppf sd =
  let pp_field ppf fd =
    match fd.fd_affinity with
    | Some a ->
        Fmt.pf ppf "%s %s @@ %g;" (typ_to_string fd.fd_type) fd.fd_name
          (100. *. a)
    | None -> Fmt.pf ppf "%s %s;" (typ_to_string fd.fd_type) fd.fd_name
  in
  Fmt.pf ppf "@[<v 2>struct %s {@,%a@]@,}" sd.sd_name
    Fmt.(list ~sep:cut pp_field)
    sd.sd_fields

let pp_program ppf p =
  Fmt.pf ppf "@[<v>%a@,@,%a@]"
    Fmt.(list ~sep:(any "@,@,") pp_struct)
    p.structs
    Fmt.(list ~sep:(any "@,@,") pp_func)
    p.funcs
