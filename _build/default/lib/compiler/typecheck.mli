(** A light type checker for the mini-Olden language.

    Its main product is the static struct type of every dereference's base
    expression, which the interpreter needs to turn field names into word
    offsets; it also rejects unknown structs/fields/functions and
    ill-typed dereferences. *)

exception Type_error of string

type info

val check : Ast.program -> info
(** @raise Type_error on an ill-typed program. *)

val struct_of_deref : info -> int -> string option
(** Struct name of the base expression of a dereference id. *)
