lib/machine/machine.mli: Format Olden_config Stats
