lib/machine/machine.ml: Array Format List Olden_config Stats
