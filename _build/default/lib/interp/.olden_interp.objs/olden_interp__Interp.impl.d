lib/interp/interp.ml: Analysis Ast Buffer Gptr Hashtbl Heuristic List Olden_compiler Olden_config Olden_runtime Parser Printf Typecheck Value
