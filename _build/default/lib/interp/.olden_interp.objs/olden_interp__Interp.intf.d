lib/interp/interp.mli: Hashtbl Olden_compiler Olden_config Olden_runtime Value
