(** Interpreter for mini-Olden programs on the simulated machine — the
    end-to-end path of the paper's system: parse, type-check, run the
    selection heuristic, then execute with every dereference going through
    the site the compiler created for it. *)

exception Runtime_error of string

(** Language values: runtime values plus first-class futures. *)
type rvalue =
  | V of Value.t
  | F of Olden_runtime.Effects.fut

type compiled = {
  prog : Olden_compiler.Ast.program;
  selection : Olden_compiler.Heuristic.t;
  tc : Olden_compiler.Typecheck.info;
  sites : (int, Olden_runtime.Site.t * int) Hashtbl.t;
      (** dereference id -> (runtime site, field word offset) *)
}

val compile : ?selection:Olden_compiler.Heuristic.t ->
  Olden_compiler.Ast.program -> compiled
(** Type-check, analyze (unless a selection is supplied), and create one
    runtime site per dereference.
    @raise Olden_compiler.Typecheck.Type_error on an ill-typed program. *)

val compile_source : ?selection:Olden_compiler.Heuristic.t -> string -> compiled

type result = {
  return_value : Value.t;
  output : string;  (** everything [print()]ed *)
  report : Olden_runtime.Engine.report;
}

val run : ?entry:string -> ?args:Value.t list -> Olden_config.t -> compiled ->
  result
(** Execute [entry] (default ["main"]) on the simulated machine.
    @raise Runtime_error on dynamic errors (arity, division by zero, ...).
    @raise Olden_runtime.Engine.Null_dereference on a null dereference. *)

val run_source : ?entry:string -> ?args:Value.t list -> Olden_config.t ->
  string -> result
